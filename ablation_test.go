package tcfpram

// Ablation benchmarks for the design choices the paper discusses in Section
// 3.3: OS-level splitting of overly thick flows, the balanced bound, the
// topology's distance metric, and the engine's parallel execution.

import (
	"fmt"
	"testing"

	"tcfpram/internal/exper"

	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/topology"
	"tcfpram/internal/variant"
	"tcfpram/internal/workload"
)

// thickKernel is a 256-lane elementwise kernel used by the ablations.
func thickKernel() *isa.Program {
	b := isa.NewBuilder("thick-kernel")
	b.Label("main")
	b.SetThickImm(256)
	b.Id(isa.TID, isa.V(0))
	for i := 0; i < 6; i++ {
		b.ALUI(isa.MUL, isa.V(1), isa.V(0), 3)
		b.ALU(isa.ADD, isa.V(0), isa.V(0), isa.V(1))
	}
	b.St(isa.V(0), 2000, isa.V(0))
	b.Halt()
	return b.MustBuild()
}

func runKernel(b *testing.B, prog *isa.Program, tweak func(*machine.Config)) *machine.Machine {
	b.Helper()
	cfg := machine.Default(variant.SingleInstruction)
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblation_AutoSplit: fragmenting a 256-lane flow across the groups
// versus running it on one (Section 3.3's OS splitting).
func BenchmarkAblation_AutoSplit(b *testing.B) {
	prog := thickKernel()
	for _, threshold := range []int{0, 64, 32} {
		name := "off"
		if threshold > 0 {
			name = fmt.Sprintf("threshold%d", threshold)
		}
		b.Run(name, func(b *testing.B) {
			var last *machine.Machine
			for i := 0; i < b.N; i++ {
				last = runKernel(b, prog, func(c *machine.Config) { c.AutoSplitThreshold = threshold })
			}
			report(b, last)
			b.ReportMetric(float64(last.Stats().AutoSplits), "autosplits")
		})
	}
}

// BenchmarkAblation_BalancedBound: the bound trades step count against
// per-step width (and fetch bandwidth).
func BenchmarkAblation_BalancedBound(b *testing.B) {
	w := workload.VectorAdd(workload.StyleTCF, 64, 0, 0)
	for _, bound := range []int{2, 4, 16, 64} {
		b.Run(fmt.Sprintf("b%d", bound), func(b *testing.B) {
			var last *machine.Machine
			for i := 0; i < b.N; i++ {
				cfg := machine.Default(variant.Balanced)
				cfg.BalancedBound = bound
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.LoadProgram(w.Program); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				if err := w.Check(m); err != nil {
					b.Fatal(err)
				}
				last = m
			}
			report(b, last)
		})
	}
}

// BenchmarkAblation_Topology: the distance metric shapes the memory latency
// overhead of PRAM-mode steps.
func BenchmarkAblation_Topology(b *testing.B) {
	w := workload.VectorAdd(workload.StyleTCF, 256, 0, 0)
	topos := map[string]func(n int) topology.Topology{
		"ring":    func(n int) topology.Topology { return topology.Must(topology.NewRing(n)) },
		"torus":   func(n int) topology.Topology { return topology.Must(topology.NewTorus2D(n/2, 2)) },
		"uniform": func(n int) topology.Topology { return topology.Must(topology.NewUniform(n, 1)) },
	}
	for _, name := range []string{"ring", "torus", "uniform"} {
		mk := topos[name]
		b.Run(name, func(b *testing.B) {
			var last *machine.Machine
			for i := 0; i < b.N; i++ {
				cfg := machine.Default(variant.SingleInstruction)
				cfg.Groups = 8
				cfg.Topology = mk(8)
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.LoadProgram(w.Program); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				last = m
			}
			report(b, last)
		})
	}
}

// BenchmarkAblation_RegisterStorage compares the Section 3.3 storage options
// for thread-wise intermediate results.
func BenchmarkAblation_RegisterStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Storage(4, 50)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblation_MultiInstrWindow sweeps the XMT engine's per-step
// instruction window: wider windows pack more instructions per step at the
// cost of coarser interleaving.
func BenchmarkAblation_MultiInstrWindow(b *testing.B) {
	w := workload.DependentLoop(workload.StyleFork, 16)
	for _, window := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("w%d", window), func(b *testing.B) {
			var last *machine.Machine
			for i := 0; i < b.N; i++ {
				cfg := machine.Default(variant.MultiInstruction)
				cfg.MultiInstrWindow = window
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.LoadProgram(w.Program); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				if err := w.Check(m); err != nil {
					b.Fatal(err)
				}
				last = m
			}
			report(b, last)
		})
	}
}
