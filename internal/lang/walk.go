package lang

// Inspect traverses the AST rooted at n in depth-first source order,
// calling f for every node (statements, expressions, parallel arms and
// switch cases). If f returns false for a node, its children are not
// visited. n may be a *Program, *FuncDecl, Stmt or Expr; nil nodes are
// skipped.
func Inspect(n any, f func(any) bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *Program:
		if n == nil || !f(n) {
			return
		}
		for _, g := range n.Globals {
			Inspect(g, f)
		}
		for _, fn := range n.Funcs {
			Inspect(fn, f)
		}
	case *FuncDecl:
		if n == nil || !f(n) {
			return
		}
		Inspect(n.Body, f)
	case Stmt:
		inspectStmt(n, f)
	case Expr:
		inspectExpr(n, f)
	}
}

func inspectStmt(s Stmt, f func(any) bool) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *VarDecl:
		if s == nil || !f(s) {
			return
		}
		inspectExpr(s.InitExpr, f)
	case *AssignStmt:
		if s == nil || !f(s) {
			return
		}
		inspectExpr(s.LHS, f)
		inspectExpr(s.RHS, f)
	case *ExprStmt:
		if s == nil || !f(s) {
			return
		}
		inspectExpr(s.X, f)
	case *IfStmt:
		if s == nil || !f(s) {
			return
		}
		inspectExpr(s.Cond, f)
		inspectStmt(s.Then, f)
		inspectStmt(s.Else, f)
	case *WhileStmt:
		if s == nil || !f(s) {
			return
		}
		inspectExpr(s.Cond, f)
		inspectStmt(s.Body, f)
	case *ForStmt:
		if s == nil || !f(s) {
			return
		}
		inspectStmt(s.Init, f)
		inspectExpr(s.Cond, f)
		inspectStmt(s.Post, f)
		inspectStmt(s.Body, f)
	case *BlockStmt:
		if s == nil || !f(s) {
			return
		}
		for _, sub := range s.Stmts {
			inspectStmt(sub, f)
		}
	case *ParallelStmt:
		if s == nil || !f(s) {
			return
		}
		for i := range s.Arms {
			arm := &s.Arms[i]
			if !f(arm) {
				continue
			}
			inspectExpr(arm.Thick, f)
			inspectStmt(arm.Body, f)
		}
	case *ThickStmt:
		if s == nil || !f(s) {
			return
		}
		inspectExpr(s.X, f)
	case *NumaStmt:
		if s == nil || !f(s) {
			return
		}
		inspectExpr(s.X, f)
	case *SwitchStmt:
		if s == nil || !f(s) {
			return
		}
		inspectExpr(s.Subject, f)
		for i := range s.Cases {
			cs := &s.Cases[i]
			if !f(cs) {
				continue
			}
			for _, v := range cs.Values {
				inspectExpr(v, f)
			}
			for _, sub := range cs.Body {
				inspectStmt(sub, f)
			}
		}
	case *ReturnStmt:
		if s == nil || !f(s) {
			return
		}
		inspectExpr(s.X, f)
	case *BarrierStmt, *HaltStmt, *BreakStmt, *ContinueStmt:
		f(s)
	default:
		f(s)
	}
}

func inspectExpr(e Expr, f func(any) bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *IntLit, *Ident, *StrLit:
		f(e)
	case *Unary:
		if e == nil || !f(e) {
			return
		}
		inspectExpr(e.X, f)
	case *Binary:
		if e == nil || !f(e) {
			return
		}
		inspectExpr(e.X, f)
		inspectExpr(e.Y, f)
	case *Index:
		if e == nil || !f(e) {
			return
		}
		inspectExpr(e.Idx, f)
	case *AddrOf:
		if e == nil || !f(e) {
			return
		}
		inspectExpr(e.Idx, f)
	case *Call:
		if e == nil || !f(e) {
			return
		}
		for _, a := range e.Args {
			inspectExpr(a, f)
		}
	default:
		f(e)
	}
}
