package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Lex tokenizes tcf-e source. Comments: // to end of line and /* ... */.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src       string
	off       int
	line, col int
}

// Error is a positioned lex/parse diagnostic. The rendered form is
// "lang: line:col: message" so existing substring matches keep working;
// tooling (tcfvet) unwraps it with errors.As to recover the position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("lang: %s: %s", e.Pos, e.Msg) }

func posErrf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) errf(format string, args ...any) error {
	return posErrf(Pos{Line: l.line, Col: l.col}, format, args...)
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return posErrf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && (isIdentStart(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Pos: pos, Text: word}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: word}, nil
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == 'x' || l.peek() == 'X' ||
			(l.peek() >= 'a' && l.peek() <= 'f') || (l.peek() >= 'A' && l.peek() <= 'F')) {
			l.advance()
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, posErrf(pos, "bad integer literal %q", text)
		}
		return Token{Kind: TokInt, Pos: pos, Text: text, Int: v}, nil
	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, posErrf(pos, "unterminated string")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, posErrf(pos, "unterminated escape")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"':
					b.WriteByte(esc)
				default:
					return Token{}, posErrf(pos, "unknown escape \\%c", esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokString, Pos: pos, Str: b.String()}, nil
	}
	// Operators and punctuation.
	two := func(kind TokKind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	three := func(kind TokKind) (Token, error) {
		l.advance()
		l.advance()
		l.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	one := func(kind TokKind) (Token, error) {
		l.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	d := l.peek2()
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case ':':
		return one(TokColon)
	case '#':
		return one(TokHash)
	case '@':
		return one(TokAt)
	case '~':
		return one(TokTilde)
	case '+':
		if d == '=' {
			return two(TokPlusAssign)
		}
		return one(TokPlus)
	case '-':
		if d == '=' {
			return two(TokMinusAssign)
		}
		return one(TokMinus)
	case '*':
		if d == '=' {
			return two(TokStarAssign)
		}
		return one(TokStar)
	case '/':
		if d == '=' {
			return two(TokSlashAssign)
		}
		return one(TokSlash)
	case '%':
		if d == '=' {
			return two(TokPercentAssign)
		}
		return one(TokPercent)
	case '&':
		if d == '&' {
			return two(TokAndAnd)
		}
		if d == '=' {
			return two(TokAmpAssign)
		}
		return one(TokAmp)
	case '|':
		if d == '|' {
			return two(TokOrOr)
		}
		if d == '=' {
			return two(TokPipeAssign)
		}
		return one(TokPipe)
	case '^':
		if d == '=' {
			return two(TokCaretAssign)
		}
		return one(TokCaret)
	case '!':
		if d == '=' {
			return two(TokNe)
		}
		return one(TokBang)
	case '=':
		if d == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '<':
		if d == '<' {
			if l.off+2 < len(l.src) && l.src[l.off+2] == '=' {
				return three(TokShlAssign)
			}
			return two(TokShl)
		}
		if d == '=' {
			return two(TokLe)
		}
		return one(TokLt)
	case '>':
		if d == '>' {
			if l.off+2 < len(l.src) && l.src[l.off+2] == '=' {
				return three(TokShrAssign)
			}
			return two(TokShr)
		}
		if d == '=' {
			return two(TokGe)
		}
		return one(TokGt)
	}
	return Token{}, l.errf("unexpected character %q", string(c))
}
