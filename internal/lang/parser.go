package lang



// Parse builds the AST of a tcf-e compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF) {
		switch {
		case p.at(TokKwFunc):
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		case p.at(TokKwShared) || p.at(TokKwLocal) || p.at(TokKwInt) || p.at(TokKwThick):
			d, err := p.varDecl(true)
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, d)
		default:
			return nil, p.errf("expected declaration, got %s", p.cur())
		}
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token        { return p.toks[p.pos] }
func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k TokKind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %s, got %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return posErrf(p.cur().Pos, format, args...)
}

// varDecl parses
//
//	["shared"|"local"] ["thick"] "int" name ["[" int "]"] ["@" int]
//	    ["=" initializer] ";"
//
// Top-level register-space declarations are rejected by sema, not here.
func (p *parser) varDecl(topLevel bool) (*VarDecl, error) {
	d := &VarDecl{Pos: p.cur().Pos, ArrayLen: -1, Addr: -1, Space: SpaceReg}
	if topLevel {
		d.Space = SpaceShared
	}
	if p.accept(TokKwShared) {
		d.Space = SpaceShared
	} else if p.accept(TokKwLocal) {
		d.Space = SpaceLocal
	}
	if p.accept(TokKwThick) {
		d.Thick = true
	}
	if _, err := p.expect(TokKwInt); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d.Name = name.Text
	if p.accept(TokLBracket) {
		n, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if n.Int <= 0 {
			return nil, posErrf(n.Pos, "array %s needs positive length", d.Name)
		}
		d.ArrayLen = int(n.Int)
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if p.accept(TokAt) {
		neg := p.accept(TokMinus)
		a, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		d.Addr = a.Int
		if neg {
			d.Addr = -d.Addr
		}
	}
	if p.accept(TokAssign) {
		if p.at(TokLBrace) {
			p.next()
			for {
				neg := p.accept(TokMinus)
				v, err := p.expect(TokInt)
				if err != nil {
					return nil, err
				}
				val := v.Int
				if neg {
					val = -val
				}
				d.InitList = append(d.InitList, val)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.InitExpr = e
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	fn := &FuncDecl{Pos: p.cur().Pos}
	p.next() // func
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	fn.Name = name.Text
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for !p.at(TokRParen) {
		param, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, param.Text)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*BlockStmt, error) {
	b := &BlockStmt{Pos: p.cur().Pos}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for !p.at(TokRBrace) && !p.at(TokEOF) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.at(TokLBrace):
		return p.block()
	case p.at(TokKwInt) || p.at(TokKwThick) || p.at(TokKwShared) || p.at(TokKwLocal):
		return p.varDecl(false)
	case p.at(TokKwIf):
		return p.ifStmt()
	case p.at(TokKwWhile):
		return p.whileStmt()
	case p.at(TokKwFor):
		return p.forStmt()
	case p.at(TokKwParallel):
		return p.parallelStmt()
	case p.at(TokKwSwitch):
		return p.switchStmt()
	case p.at(TokHash):
		return p.thickOrNuma()
	case p.at(TokKwBarrier):
		pos := p.next().Pos
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BarrierStmt{Pos: pos}, nil
	case p.at(TokKwHalt):
		pos := p.next().Pos
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &HaltStmt{Pos: pos}, nil
	case p.at(TokKwBreak):
		pos := p.next().Pos
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil
	case p.at(TokKwContinue):
		pos := p.next().Pos
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	case p.at(TokKwReturn):
		pos := p.next().Pos
		r := &ReturnStmt{Pos: pos}
		if !p.at(TokSemi) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return r, nil
	}
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt parses an assignment or expression statement without the
// trailing semicolon (shared with for-headers).
func (p *parser) simpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if op := p.cur().Kind; isAssignOp(op) {
		p.next()
		switch e.(type) {
		case *Ident, *Index:
		default:
			return nil, posErrf(pos, "assignment target must be a variable or array element")
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, LHS: e, Op: op, RHS: rhs}, nil
	}
	return &ExprStmt{Pos: pos, X: e}, nil
}

func isAssignOp(k TokKind) bool {
	switch k {
	case TokAssign, TokPlusAssign, TokMinusAssign, TokStarAssign, TokSlashAssign,
		TokPercentAssign, TokAmpAssign, TokPipeAssign, TokCaretAssign,
		TokShlAssign, TokShrAssign:
		return true
	}
	return false
}

func (p *parser) ifStmt() (Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.accept(TokKwElse) {
		s.Else, err = p.stmt()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: pos}
	var err error
	if !p.at(TokSemi) {
		if p.at(TokKwInt) || p.at(TokKwThick) {
			s.Init, err = p.varDecl(false) // consumes ';'
			if err != nil {
				return nil, err
			}
		} else {
			s.Init, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(TokSemi) {
		s.Cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		s.Post, err = p.simpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	s.Body, err = p.stmt()
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) switchStmt() (Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	subject, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	s := &SwitchStmt{Pos: pos, Subject: subject}
	for !p.at(TokRBrace) {
		c := SwitchCase{Pos: p.cur().Pos}
		switch {
		case p.accept(TokKwCase):
			for {
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.Values = append(c.Values, v)
				if !p.accept(TokComma) {
					break
				}
			}
		case p.accept(TokKwDefault):
		default:
			return nil, p.errf("expected case or default in switch")
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		for !p.at(TokKwCase) && !p.at(TokKwDefault) && !p.at(TokRBrace) && !p.at(TokEOF) {
			body, err := p.stmt()
			if err != nil {
				return nil, err
			}
			c.Body = append(c.Body, body)
		}
		s.Cases = append(s.Cases, c)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if len(s.Cases) == 0 {
		return nil, posErrf(pos, "switch needs at least one case")
	}
	return s, nil
}

func (p *parser) parallelStmt() (Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	s := &ParallelStmt{Pos: pos}
	for !p.at(TokRBrace) {
		armPos := p.cur().Pos
		if _, err := p.expect(TokHash); err != nil {
			return nil, err
		}
		th, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.Arms = append(s.Arms, ParArm{Pos: armPos, Thick: th, Body: body})
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if len(s.Arms) == 0 {
		return nil, posErrf(pos, "parallel statement needs at least one arm")
	}
	return s, nil
}

// thickOrNuma parses "#expr;" (thickness) or "#1/expr;" (NUMA bunch).
func (p *parser) thickOrNuma() (Stmt, error) {
	pos := p.next().Pos // '#'
	// Lookahead for the literal "1 /" prefix marking NUMA.
	if p.at(TokInt) && p.cur().Int == 1 && p.toks[p.pos+1].Kind == TokSlash {
		p.next() // 1
		p.next() // /
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &NumaStmt{Pos: pos, X: e}, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ThickStmt{Pos: pos, X: e}, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[TokKind]int{
	TokOrOr:    1,
	TokAndAnd:  2,
	TokPipe:    3,
	TokCaret:   4,
	TokAmp:     5,
	TokEq:      6,
	TokNe:      6,
	TokLt:      7,
	TokLe:      7,
	TokGt:      7,
	TokGe:      7,
	TokShl:     8,
	TokShr:     8,
	TokPlus:    9,
	TokMinus:   9,
	TokStar:    10,
	TokSlash:   10,
	TokPercent: 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		pos := p.next().Pos
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus, TokBang, TokTilde:
		tok := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: tok.Pos, Op: tok.Kind, X: x}, nil
	case TokAmp:
		pos := p.next().Pos
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		a := &AddrOf{Pos: pos, Name: name.Text}
		if p.accept(TokLBracket) {
			a.Idx, err = p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
		}
		return a, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokInt:
		p.next()
		return &IntLit{Pos: tok.Pos, Val: tok.Int}, nil
	case TokString:
		p.next()
		return &StrLit{Pos: tok.Pos, Val: tok.Str}, nil
	case TokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.next()
		switch {
		case p.accept(TokLParen):
			c := &Call{Pos: tok.Pos, Name: tok.Text}
			for !p.at(TokRParen) {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return c, nil
		case p.accept(TokLBracket):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &Index{Pos: tok.Pos, Name: tok.Text, Idx: idx}, nil
		default:
			return &Ident{Pos: tok.Pos, Name: tok.Text}, nil
		}
	}
	return nil, p.errf("expected expression, got %s", tok)
}
