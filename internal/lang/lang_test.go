package lang

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`func main() { int x = 0x10; x <<= 2; prints("hi\n"); } // c`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokKwFunc, TokIdent, TokLParen, TokRParen, TokLBrace,
		TokKwInt, TokIdent, TokAssign, TokInt, TokSemi,
		TokIdent, TokShlAssign, TokInt, TokSemi,
		TokIdent, TokLParen, TokString, TokRParen, TokSemi, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i], k)
		}
	}
	if toks[8].Int != 16 {
		t.Fatalf("hex literal = %d", toks[8].Int)
	}
	if toks[16].Str != "hi\n" {
		t.Fatalf("string = %q", toks[16].Str)
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % & | ^ ~ ! << >> < <= > >= == != && || = += -= *= /= %= &= |= ^= <<= >>= # @ :"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokAmp,
		TokPipe, TokCaret, TokTilde, TokBang, TokShl, TokShr, TokLt, TokLe,
		TokGt, TokGe, TokEq, TokNe, TokAndAnd, TokOrOr, TokAssign,
		TokPlusAssign, TokMinusAssign, TokStarAssign, TokSlashAssign,
		TokPercentAssign, TokAmpAssign, TokPipeAssign, TokCaretAssign,
		TokShlAssign, TokShrAssign, TokHash, TokAt, TokColon, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a /* multi\nline */ b // end\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Fatalf("comment handling: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* open", `"bad \q"`, "$", "99999999999999999999999"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Lex("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("pos a = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("pos b = %v", toks[1].Pos)
	}
}

const kitchenSink = `
shared int a[8] @ 100 = {1, 2, 3, -4};
shared int total;
local int scratch[16];

func main() {
    int size = 8;
    #size;
    thick int v = a[tid] * 2;
    a[tid] = v;
    if (size > 4) {
        total = radd(v);
    } else {
        total = 0;
    }
    while (size > 1) {
        size = size / 2;
    }
    for (int i = 0; i < 4; i += 1) {
        scratch[i] = i;
    }
    parallel {
        #4: a[tid] = 0;
        #4: a[tid + 4] = 1;
    }
    #1/8;
    total += 1;
    barrier;
    print(helper(total, 2));
    prints("done");
    halt;
}

func helper(x, y) {
    return x * y + mpadd(&total, 1);
}
`

func TestParseKitchenSink(t *testing.T) {
	prog, err := Parse(kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 3 {
		t.Fatalf("globals = %d", len(prog.Globals))
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(prog.Funcs))
	}
	if prog.Func("main") == nil || prog.Func("helper") == nil || prog.Func("nope") != nil {
		t.Fatal("Func lookup broken")
	}
	g := prog.Globals[0]
	if g.Name != "a" || g.ArrayLen != 8 || g.Addr != 100 || len(g.InitList) != 4 || g.InitList[3] != -4 {
		t.Fatalf("global a = %+v", g)
	}
	if prog.Globals[2].Space != SpaceLocal {
		t.Fatal("scratch should be local")
	}
}

// Property-style: parse → print → parse yields an identical print.
func TestParsePrintRoundTrip(t *testing.T) {
	sources := []string{
		kitchenSink,
		"func main() { print(1 + 2 * 3 - 4 / 2); }",
		"func main() { print((1 + 2) * (3 - 4)); }",
		"func main() { int x = 0; x += 1; x <<= 2; x %= 3; }",
		"func main() { if (1) { halt; } else { barrier; } }",
		"func main() { for (;;) { halt; } }",
		"func main() { #8; thick int v = tid; print(radd(v)); }",
		"func f(a, b) { return a; }\nfunc main() { f(1, 2); }",
		"func main() { #1/4; halt; }",
		"func main() { for (;;) { break; } while (1) { continue; } }",
		"func main() { switch (3) { case 1, 2: halt; case 3: barrier; default: prints(\"d\"); } }",
	}
	for i, src := range sources {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		out1 := Print(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("source %d reparse: %v\n%s", i, err, out1)
		}
		out2 := Print(p2)
		if out1 != out2 {
			t.Fatalf("source %d not stable:\n--- first\n%s\n--- second\n%s", i, out1, out2)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("func main() { print(1 + 2 * 3); }")
	if err != nil {
		t.Fatal(err)
	}
	call := prog.Funcs[0].Body.Stmts[0].(*ExprStmt).X.(*Call)
	bin := call.Args[0].(*Binary)
	if bin.Op != TokPlus {
		t.Fatalf("root op = %v, want +", bin.Op)
	}
	if inner, ok := bin.Y.(*Binary); !ok || inner.Op != TokStar {
		t.Fatalf("rhs = %v", ExprString(bin.Y))
	}
}

func TestParseNumaVsThickness(t *testing.T) {
	prog, err := Parse("func main() { #8; #1/4; #1; }")
	if err != nil {
		t.Fatal(err)
	}
	stmts := prog.Funcs[0].Body.Stmts
	if _, ok := stmts[0].(*ThickStmt); !ok {
		t.Fatalf("#8 parsed as %T", stmts[0])
	}
	if _, ok := stmts[1].(*NumaStmt); !ok {
		t.Fatalf("#1/4 parsed as %T", stmts[1])
	}
	if _, ok := stmts[2].(*ThickStmt); !ok {
		t.Fatalf("#1 parsed as %T", stmts[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"missing-brace", "func main() {", "expected"},
		{"bad-decl", "int;", "expected"},
		{"empty-parallel", "func main() { parallel { } }", "at least one arm"},
		{"zero-array", "shared int a[0];", "positive length"},
		{"assign-to-call", "func main() { f() = 3; }", "assignment target"},
		{"top-level-expr", "1 + 2;", "expected declaration"},
		{"bad-for", "func main() { for (1 1) {} }", "expected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want %q, got %v", c.want, err)
			}
		})
	}
}

func TestSpaceString(t *testing.T) {
	if SpaceReg.String() != "reg" || SpaceShared.String() != "shared" || SpaceLocal.String() != "local" {
		t.Fatal("space names")
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := Lex(`x 42 "s"`)
	if !strings.Contains(toks[0].String(), "x") ||
		!strings.Contains(toks[1].String(), "42") ||
		!strings.Contains(toks[2].String(), "s") {
		t.Fatal("token rendering")
	}
	if TokKind(999).String() == "" {
		t.Fatal("unknown token kind should render")
	}
}
