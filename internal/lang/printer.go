package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the program back to tcf-e source (canonical formatting).
// Parse(Print(p)) is structurally equivalent to p.
func Print(p *Program) string {
	var b strings.Builder
	for _, d := range p.Globals {
		printVarDecl(&b, d, 0, true)
	}
	for i, f := range p.Funcs {
		if i > 0 || len(p.Globals) > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "func %s(%s) ", f.Name, strings.Join(f.Params, ", "))
		printBlock(&b, f.Body, 0)
		b.WriteByte('\n')
	}
	return b.String()
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

func printVarDecl(b *strings.Builder, d *VarDecl, depth int, topLevel bool) {
	indent(b, depth)
	if topLevel || d.Space != SpaceReg {
		switch d.Space {
		case SpaceShared:
			b.WriteString("shared ")
		case SpaceLocal:
			b.WriteString("local ")
		}
	}
	if d.Thick {
		b.WriteString("thick ")
	}
	b.WriteString("int ")
	b.WriteString(d.Name)
	if d.ArrayLen >= 0 {
		fmt.Fprintf(b, "[%d]", d.ArrayLen)
	}
	if d.Addr >= 0 {
		fmt.Fprintf(b, " @ %d", d.Addr)
	}
	if d.InitList != nil {
		b.WriteString(" = {")
		for i, v := range d.InitList {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.FormatInt(v, 10))
		}
		b.WriteString("}")
	} else if d.InitExpr != nil {
		b.WriteString(" = ")
		b.WriteString(ExprString(d.InitExpr))
	}
	b.WriteString(";\n")
}

func printBlock(b *strings.Builder, blk *BlockStmt, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *VarDecl:
		printVarDecl(b, s, depth, false)
	case *AssignStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s %s %s;\n", ExprString(s.LHS), s.Op, ExprString(s.RHS))
	case *ExprStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s;\n", ExprString(s.X))
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "if (%s) ", ExprString(s.Cond))
		printSubStmt(b, s.Then, depth)
		if s.Else != nil {
			indent(b, depth)
			b.WriteString("else ")
			printSubStmt(b, s.Else, depth)
		}
	case *WhileStmt:
		indent(b, depth)
		fmt.Fprintf(b, "while (%s) ", ExprString(s.Cond))
		printSubStmt(b, s.Body, depth)
	case *ForStmt:
		indent(b, depth)
		b.WriteString("for (")
		if s.Init != nil {
			printInline(b, s.Init)
		}
		b.WriteString("; ")
		if s.Cond != nil {
			b.WriteString(ExprString(s.Cond))
		}
		b.WriteString("; ")
		if s.Post != nil {
			printInline(b, s.Post)
		}
		b.WriteString(") ")
		printSubStmt(b, s.Body, depth)
	case *BlockStmt:
		indent(b, depth)
		printBlock(b, s, depth)
		b.WriteByte('\n')
	case *ParallelStmt:
		indent(b, depth)
		b.WriteString("parallel {\n")
		for _, arm := range s.Arms {
			indent(b, depth+1)
			fmt.Fprintf(b, "#%s: ", ExprString(arm.Thick))
			printSubStmt(b, arm.Body, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *ThickStmt:
		indent(b, depth)
		fmt.Fprintf(b, "#%s;\n", ExprString(s.X))
	case *NumaStmt:
		indent(b, depth)
		fmt.Fprintf(b, "#1/%s;\n", ExprString(s.X))
	case *BarrierStmt:
		indent(b, depth)
		b.WriteString("barrier;\n")
	case *ReturnStmt:
		indent(b, depth)
		if s.X != nil {
			fmt.Fprintf(b, "return %s;\n", ExprString(s.X))
		} else {
			b.WriteString("return;\n")
		}
	case *HaltStmt:
		indent(b, depth)
		b.WriteString("halt;\n")
	case *SwitchStmt:
		indent(b, depth)
		fmt.Fprintf(b, "switch (%s) {\n", ExprString(s.Subject))
		for _, c := range s.Cases {
			indent(b, depth)
			if c.Values == nil {
				b.WriteString("default:\n")
			} else {
				vals := make([]string, len(c.Values))
				for i, v := range c.Values {
					vals[i] = ExprString(v)
				}
				fmt.Fprintf(b, "case %s:\n", strings.Join(vals, ", "))
			}
			for _, sub := range c.Body {
				printStmt(b, sub, depth+1)
			}
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *BreakStmt:
		indent(b, depth)
		b.WriteString("break;\n")
	case *ContinueStmt:
		indent(b, depth)
		b.WriteString("continue;\n")
	default:
		panic(fmt.Sprintf("lang: printStmt: unknown %T", s))
	}
}

// printSubStmt prints the statement after a control header: blocks inline,
// other statements on their own indented line.
func printSubStmt(b *strings.Builder, s Stmt, depth int) {
	if blk, ok := s.(*BlockStmt); ok {
		printBlock(b, blk, depth)
		b.WriteByte('\n')
		return
	}
	b.WriteByte('\n')
	printStmt(b, s, depth+1)
}

// printInline renders a simple statement without trailing semicolon/newline
// (for-headers).
func printInline(b *strings.Builder, s Stmt) {
	switch s := s.(type) {
	case *AssignStmt:
		fmt.Fprintf(b, "%s %s %s", ExprString(s.LHS), s.Op, ExprString(s.RHS))
	case *ExprStmt:
		b.WriteString(ExprString(s.X))
	case *VarDecl:
		var tmp strings.Builder
		printVarDecl(&tmp, s, 0, false)
		b.WriteString(strings.TrimSuffix(strings.TrimSpace(tmp.String()), ";"))
	default:
		panic(fmt.Sprintf("lang: printInline: unknown %T", s))
	}
}

// ExprString renders an expression (fully parenthesized for binaries, so
// precedence round-trips trivially).
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return strconv.FormatInt(e.Val, 10)
	case *StrLit:
		return strconv.Quote(e.Val)
	case *Ident:
		return e.Name
	case *Unary:
		return e.Op.String() + ExprString(e.X)
	case *Binary:
		return "(" + ExprString(e.X) + " " + e.Op.String() + " " + ExprString(e.Y) + ")"
	case *Index:
		return e.Name + "[" + ExprString(e.Idx) + "]"
	case *AddrOf:
		if e.Idx == nil {
			return "&" + e.Name
		}
		return "&" + e.Name + "[" + ExprString(e.Idx) + "]"
	case *Call:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = ExprString(a)
		}
		return e.Name + "(" + strings.Join(parts, ", ") + ")"
	}
	panic(fmt.Sprintf("lang: ExprString: unknown %T", e))
}
