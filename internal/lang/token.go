// Package lang implements the front end of tcf-e, the small C-like TCF
// language used for the paper's Section 4 programming examples: thickness
// statements (#expr;), NUMA declarations (#1/expr;), thick (thread-wise) and
// flow-common variables, the parallel statement, flow-level functions, and
// multi(prefix)operation intrinsics.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString

	// Keywords.
	TokKwInt
	TokKwThick
	TokKwShared
	TokKwLocal
	TokKwFunc
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwParallel
	TokKwReturn
	TokKwBarrier
	TokKwHalt
	TokKwBreak
	TokKwContinue
	TokKwSwitch
	TokKwCase
	TokKwDefault

	// Punctuation.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokColon
	TokHash
	TokAt
	TokAmpPrefix // '&' used as address-of (lexed as TokAmp; parser decides)

	// Operators.
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokBang
	TokShl
	TokShr
	TokLt
	TokLe
	TokGt
	TokGe
	TokEq
	TokNe
	TokAndAnd
	TokOrOr
	// Compound assignments.
	TokPlusAssign
	TokMinusAssign
	TokStarAssign
	TokSlashAssign
	TokPercentAssign
	TokAmpAssign
	TokPipeAssign
	TokCaretAssign
	TokShlAssign
	TokShrAssign
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer", TokString: "string",
	TokKwInt: "int", TokKwThick: "thick", TokKwShared: "shared", TokKwLocal: "local",
	TokKwFunc: "func", TokKwIf: "if", TokKwElse: "else", TokKwWhile: "while",
	TokKwFor: "for", TokKwParallel: "parallel", TokKwReturn: "return",
	TokKwBarrier: "barrier", TokKwHalt: "halt",
	TokKwBreak: "break", TokKwContinue: "continue",
	TokKwSwitch: "switch", TokKwCase: "case", TokKwDefault: "default",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokColon: ":", TokHash: "#", TokAt: "@",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokAmp: "&", TokPipe: "|", TokCaret: "^", TokTilde: "~",
	TokBang: "!", TokShl: "<<", TokShr: ">>", TokLt: "<", TokLe: "<=",
	TokGt: ">", TokGe: ">=", TokEq: "==", TokNe: "!=", TokAndAnd: "&&", TokOrOr: "||",
	TokPlusAssign: "+=", TokMinusAssign: "-=", TokStarAssign: "*=",
	TokSlashAssign: "/=", TokPercentAssign: "%=", TokAmpAssign: "&=",
	TokPipeAssign: "|=", TokCaretAssign: "^=", TokShlAssign: "<<=", TokShrAssign: ">>=",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int": TokKwInt, "thick": TokKwThick, "shared": TokKwShared, "local": TokKwLocal,
	"func": TokKwFunc, "if": TokKwIf, "else": TokKwElse, "while": TokKwWhile,
	"for": TokKwFor, "parallel": TokKwParallel, "return": TokKwReturn,
	"barrier": TokKwBarrier, "halt": TokKwHalt,
	"break": TokKwBreak, "continue": TokKwContinue,
	"switch": TokKwSwitch, "case": TokKwCase, "default": TokKwDefault,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string // identifier name / literal text
	Int  int64  // TokInt value
	Str  string // TokString unquoted value
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("ident(%s)", t.Text)
	case TokInt:
		return fmt.Sprintf("int(%d)", t.Int)
	case TokString:
		return fmt.Sprintf("string(%q)", t.Str)
	}
	return t.Kind.String()
}
