package lang

// Space says where a variable lives.
type Space int

const (
	// SpaceReg variables live in flow registers (scalar or thick).
	SpaceReg Space = iota
	// SpaceShared variables live in shared memory.
	SpaceShared
	// SpaceLocal variables live in the group's local memory block.
	SpaceLocal
)

func (s Space) String() string {
	switch s {
	case SpaceReg:
		return "reg"
	case SpaceShared:
		return "shared"
	case SpaceLocal:
		return "local"
	}
	return "space?"
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	GetPos() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// Ident references a variable or builtin (tid, fid, thickness, nproc,
// ngroups, gid, pid).
type Ident struct {
	Pos  Pos
	Name string
}

// Unary is -x, !x or ~x.
type Unary struct {
	Pos Pos
	Op  TokKind
	X   Expr
}

// Binary is a binary operation; && and || evaluate both sides (no
// short-circuit: conditions are flow-level scalars).
type Binary struct {
	Pos  Pos
	Op   TokKind
	X, Y Expr
}

// Index is a[i].
type Index struct {
	Pos  Pos
	Name string
	Idx  Expr
}

// AddrOf is &a[i] (or &a, the base address).
type AddrOf struct {
	Pos  Pos
	Name string
	Idx  Expr // nil for &a
}

// Call invokes a user function or an intrinsic (mpadd/mpand/mpor/mpmax/
// mpmin, madd/mand/mor/mmax/mmin, radd/rand/ror/rmax/rmin, print, prints).
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// StrLit is a string literal (prints only).
type StrLit struct {
	Pos Pos
	Val string
}

func (e *IntLit) exprNode() {}
func (e *Ident) exprNode()  {}
func (e *Unary) exprNode()  {}
func (e *Binary) exprNode() {}
func (e *Index) exprNode()  {}
func (e *AddrOf) exprNode() {}
func (e *Call) exprNode()   {}
func (e *StrLit) exprNode() {}

func (e *IntLit) GetPos() Pos { return e.Pos }
func (e *Ident) GetPos() Pos  { return e.Pos }
func (e *Unary) GetPos() Pos  { return e.Pos }
func (e *Binary) GetPos() Pos { return e.Pos }
func (e *Index) GetPos() Pos  { return e.Pos }
func (e *AddrOf) GetPos() Pos { return e.Pos }
func (e *Call) GetPos() Pos   { return e.Pos }
func (e *StrLit) GetPos() Pos { return e.Pos }

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	GetPos() Pos
}

// VarDecl declares a variable. Top-level declarations live in shared (the
// default) or local memory and may bind an address with @ and preload a
// constant initializer; in-function declarations live in registers (thick
// or flow-common) and may have a runtime initializer expression.
type VarDecl struct {
	Pos      Pos
	Name     string
	Thick    bool
	Space    Space
	ArrayLen int   // -1 for scalars
	Addr     int64 // -1 = assign automatically
	InitList []int64
	InitExpr Expr
}

// AssignStmt is lvalue op= expr (op TokAssign for plain =).
type AssignStmt struct {
	Pos Pos
	LHS Expr // *Ident or *Index
	Op  TokKind
	RHS Expr
}

// ExprStmt evaluates an expression for effect (intrinsic calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt: the whole flow takes one branch; Cond must be scalar.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt loops at flow level.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is for (init; cond; post) body.
type ForStmt struct {
	Pos  Pos
	Init Stmt // *AssignStmt or *VarDecl, may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // *AssignStmt, may be nil
	Body Stmt
}

// BlockStmt is { ... }.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// ParArm is one arm of a parallel statement: "# thickness : stmt".
type ParArm struct {
	Pos   Pos
	Thick Expr
	Body  Stmt
}

// ParallelStmt splits the flow into one child TCF per arm and joins them at
// the end of the statement.
type ParallelStmt struct {
	Pos  Pos
	Arms []ParArm
}

// ThickStmt is the thickness statement "#expr;".
type ThickStmt struct {
	Pos Pos
	X   Expr
}

// NumaStmt is "#1/expr;", declaring NUMA execution with bunch length expr.
type NumaStmt struct {
	Pos Pos
	X   Expr
}

// BarrierStmt is "barrier;".
type BarrierStmt struct{ Pos Pos }

// ReturnStmt returns from a flow-level function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil
}

// HaltStmt terminates the flow.
type HaltStmt struct{ Pos Pos }

// SwitchCase is one arm of a switch: Values nil marks the default case.
// There is no fallthrough — exactly one arm executes (the whole flow takes
// one path, like every TCF control statement).
type SwitchCase struct {
	Pos    Pos
	Values []Expr
	Body   []Stmt
}

// SwitchStmt selects one arm by comparing the scalar subject against the
// case values in order.
type SwitchStmt struct {
	Pos     Pos
	Subject Expr
	Cases   []SwitchCase
}

// BreakStmt leaves the innermost enclosing loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (s *VarDecl) stmtNode()      {}
func (s *AssignStmt) stmtNode()   {}
func (s *ExprStmt) stmtNode()     {}
func (s *IfStmt) stmtNode()       {}
func (s *WhileStmt) stmtNode()    {}
func (s *ForStmt) stmtNode()      {}
func (s *BlockStmt) stmtNode()    {}
func (s *ParallelStmt) stmtNode() {}
func (s *ThickStmt) stmtNode()    {}
func (s *NumaStmt) stmtNode()     {}
func (s *BarrierStmt) stmtNode()  {}
func (s *ReturnStmt) stmtNode()   {}
func (s *HaltStmt) stmtNode()     {}
func (s *SwitchStmt) stmtNode()   {}
func (s *BreakStmt) stmtNode()    {}
func (s *ContinueStmt) stmtNode() {}

func (s *VarDecl) GetPos() Pos      { return s.Pos }
func (s *AssignStmt) GetPos() Pos   { return s.Pos }
func (s *ExprStmt) GetPos() Pos     { return s.Pos }
func (s *IfStmt) GetPos() Pos       { return s.Pos }
func (s *WhileStmt) GetPos() Pos    { return s.Pos }
func (s *ForStmt) GetPos() Pos      { return s.Pos }
func (s *BlockStmt) GetPos() Pos    { return s.Pos }
func (s *ParallelStmt) GetPos() Pos { return s.Pos }
func (s *ThickStmt) GetPos() Pos    { return s.Pos }
func (s *NumaStmt) GetPos() Pos     { return s.Pos }
func (s *BarrierStmt) GetPos() Pos  { return s.Pos }
func (s *ReturnStmt) GetPos() Pos   { return s.Pos }
func (s *HaltStmt) GetPos() Pos     { return s.Pos }
func (s *SwitchStmt) GetPos() Pos   { return s.Pos }
func (s *BreakStmt) GetPos() Pos    { return s.Pos }
func (s *ContinueStmt) GetPos() Pos { return s.Pos }

// FuncDecl is a flow-level function: when a flow of thickness T calls it,
// the function is called once with T implicit threads (Section 2.2).
// Parameters are flow-common scalars.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []string
	Body   *BlockStmt
}

// Program is a parsed tcf-e compilation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
