package lang

import "testing"

// FuzzParse checks the tcf-e front end never panics and that accepted
// programs survive a print/re-parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(kitchenSink)
	f.Add("func main() { }")
	f.Add("func main() { #8; thick int v = tid; print(radd(v)); }")
	f.Add("shared int a[4] @ 10 = {1, -2};\nfunc main() { a[0] += 1; }")
	f.Add("func main() { parallel { #2: halt; #2: barrier; } }")
	f.Add("func main() { switch (1) { case 1: halt; default: barrier; } }")
	f.Add("func main() { for (int i = 0; i < 3; i += 1) { if (i) { break; } } }")
	f.Add("func f(a, b) { return a / b; }\nfunc main() { print(f(6, 2)); }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		out := Print(prog)
		prog2, err := Parse(out)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\nsource:\n%s\nprinted:\n%s", err, src, out)
		}
		if Print(prog2) != out {
			t.Fatalf("print not stable:\n%s\nvs\n%s", out, Print(prog2))
		}
	})
}
