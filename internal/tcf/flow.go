// Package tcf implements the Thick Control Flow abstraction: a control flow
// with a program counter, a flow-level call stack, flow-common scalar state,
// thread-wise vector state, and a dynamically varying thickness (Section
// 2.2). Threads are only implicit — they have no program counters; the flow
// does.
package tcf

import (
	"fmt"

	"tcfpram/internal/isa"
)

// Mode is the execution mode of a flow in the extended PRAM-NUMA model.
type Mode int

const (
	// PRAM mode: per step the flow executes one TCF instruction consisting
	// of Thickness identical data-parallel operations.
	PRAM Mode = iota
	// NUMA mode: thickness 1/T — per step the flow executes up to Bunch
	// consecutive instructions with a single implicit thread, against the
	// group's local memory.
	NUMA
)

func (m Mode) String() string {
	if m == NUMA {
		return "NUMA"
	}
	return "PRAM"
}

// State tracks the flow lifecycle.
type State int

const (
	// Ready flows execute in the next step.
	Ready State = iota
	// Waiting flows are split parents suspended until all children join.
	Waiting
	// Blocked flows wait at a global barrier.
	Blocked
	// Done flows have halted (HALT or JOIN).
	Done
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Waiting:
		return "waiting"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Flow is one thick control flow.
type Flow struct {
	ID int
	PC int

	Mode      Mode
	Thickness int // PRAM-mode thickness; >= 0 (0 = zero data-parallel lanes)
	Bunch     int // NUMA-mode consecutive instructions per step

	State State

	// Register state. Scalar registers are the flow-common registers; the
	// thread-wise bank is allocated lazily per register and sized to the
	// current thickness.
	scalars [isa.NumSRegs]int64
	vectors [isa.NumVRegs][]int64

	// Flow-level call stack (Section 2.2: a call stack is related to each
	// parallel control flow, not to each thread).
	CallStack []int

	// Split/join bookkeeping.
	Parent       *Flow
	LiveChildren int
	ResumePC     int // parent's continuation after the split

	// Placement: global index of the TCF processor hosting the flow.
	Home int

	// Fragment support (Section 3.3: the OS splits overly thick flows into
	// balanced fragments allocated to different TCF processors).
	//
	// IsFragment marks a machine-made fragment of a thicker logical flow;
	// TidOffset is the fragment's first logical implicit-thread index, and
	// TotalThickness the logical thickness of the whole flow (what the
	// THICK instruction reports). For ordinary flows TidOffset is 0 and
	// TotalThickness equals Thickness.
	IsFragment     bool
	TidOffset      int
	TotalThickness int

	// Balanced-variant progress: number of thread slices of the current
	// instruction already executed (0 = instruction not started).
	Offset int

	// InstrFetches counts instruction-memory fetches performed on behalf
	// of this flow (Table 1's "fetches per TCF").
	InstrFetches int64

	// RegWordsPeak tracks the maximum register-file words ever held
	// (scalars + allocated vector words) for Table 1's registers/thread.
	RegWordsPeak int64
}

// New returns a Ready PRAM-mode flow with the given id, entry PC and
// thickness.
func New(id, pc, thickness int) *Flow {
	if thickness < 0 {
		panic("tcf: negative thickness")
	}
	f := &Flow{ID: id, PC: pc, Thickness: thickness, TotalThickness: thickness, Bunch: 1, ResumePC: -1}
	f.noteRegWords()
	return f
}

// Lanes returns the number of data-parallel lanes an instruction of this
// flow executes: Thickness in PRAM mode, 1 in NUMA mode.
func (f *Flow) Lanes() int {
	if f.Mode == NUMA {
		return 1
	}
	return f.Thickness
}

// Scalar returns the value of scalar register r.
func (f *Flow) Scalar(r isa.Reg) int64 {
	if !r.IsScalar() {
		panic(fmt.Sprintf("tcf: Scalar(%s) on non-scalar register", r))
	}
	return f.scalars[r.Index()]
}

// SetScalar stores v into scalar register r.
func (f *Flow) SetScalar(r isa.Reg, v int64) {
	if !r.IsScalar() {
		panic(fmt.Sprintf("tcf: SetScalar(%s) on non-scalar register", r))
	}
	f.scalars[r.Index()] = v
}

// Scalars returns a copy of the scalar register bank (for split inheritance
// and inspection).
func (f *Flow) Scalars() [isa.NumSRegs]int64 { return f.scalars }

// SetScalars replaces the scalar bank (split inheritance: the child flow
// receives the parent's R common registers — the O(R) flow-branch cost of
// Table 1).
func (f *Flow) SetScalars(s [isa.NumSRegs]int64) { f.scalars = s }

// Vector returns the thread-wise bank of register r sized to the current
// lane count, allocating (zeroed) on first use.
func (f *Flow) Vector(r isa.Reg) []int64 {
	if !r.IsVector() {
		panic(fmt.Sprintf("tcf: Vector(%s) on non-vector register", r))
	}
	lanes := f.Lanes()
	v := f.vectors[r.Index()]
	if len(v) < lanes {
		nv := make([]int64, lanes)
		copy(nv, v)
		f.vectors[r.Index()] = nv
		f.noteRegWords()
	}
	return f.vectors[r.Index()][:lanes]
}

// VectorAllocated reports whether register r has lanes allocated (used by
// register accounting without forcing allocation).
func (f *Flow) VectorAllocated(r isa.Reg) bool {
	return r.IsVector() && f.vectors[r.Index()] != nil
}

// Lane reads lane i of register r, treating scalar registers as broadcast
// (every lane observes the common value) — the paper's improved utilization
// of data-parallel execution: identical values need no replication.
func (f *Flow) Lane(r isa.Reg, i int) int64 {
	if r.IsScalar() {
		return f.scalars[r.Index()]
	}
	return f.Vector(r)[i]
}

// SetLane writes lane i of register r. Writing a scalar register from lane
// context stores the common value (last writer within the deterministic lane
// order wins; the engine restricts this to single-lane or reduction cases).
func (f *Flow) SetLane(r isa.Reg, i int, v int64) {
	if r.IsScalar() {
		f.scalars[r.Index()] = v
		return
	}
	f.Vector(r)[i] = v
}

// SetThickness switches the flow to PRAM mode with the given thickness.
// Vector registers keep their first min(old,new) lanes and zero-extend — the
// nested thick block semantics where a new thickness opens a fresh lane
// space.
func (f *Flow) SetThickness(t int) error {
	if t < 0 {
		return fmt.Errorf("tcf: flow %d: negative thickness %d", f.ID, t)
	}
	f.Mode = PRAM
	f.Thickness = t
	f.TotalThickness = t
	for r := range f.vectors {
		if f.vectors[r] != nil && len(f.vectors[r]) < t {
			nv := make([]int64, t)
			copy(nv, f.vectors[r])
			f.vectors[r] = nv
		}
	}
	f.noteRegWords()
	return nil
}

// EnterNUMA switches the flow to NUMA mode with bunch length b (thickness
// 1/b in the paper's notation).
func (f *Flow) EnterNUMA(b int) error {
	if b < 1 {
		return fmt.Errorf("tcf: flow %d: NUMA bunch length %d must be >= 1", f.ID, b)
	}
	f.Mode = NUMA
	f.Bunch = b
	return nil
}

// LeavePRAM returns the flow to PRAM mode with thickness 1 (the PRAM
// instruction).
func (f *Flow) LeavePRAM() {
	f.Mode = PRAM
	f.Thickness = 1
	f.TotalThickness = 1
}

// Call pushes the return address onto the flow-level call stack.
func (f *Flow) Call(returnPC int) { f.CallStack = append(f.CallStack, returnPC) }

// Ret pops the return address; it reports false on empty stack (treated as
// flow termination by the engine).
func (f *Flow) Ret() (int, bool) {
	if len(f.CallStack) == 0 {
		return 0, false
	}
	pc := f.CallStack[len(f.CallStack)-1]
	f.CallStack = f.CallStack[:len(f.CallStack)-1]
	return pc, true
}

// StateDigest returns a 64-bit mixture of the flow's complete architectural
// state: control (PC, mode, lifecycle, call stack), shape (thickness, bunch,
// fragment geometry), split bookkeeping and every register value. Two calls
// return the same digest exactly when the flow is in the same architectural
// state, up to 64-bit mixing collisions. The machine watchdog compares
// digests across steps to prove a state cycle — the definition of livelock —
// without ever misjudging computation that only evolves registers.
func (f *Flow) StateDigest() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	mix(uint64(f.ID))
	mix(uint64(f.PC))
	mix(uint64(f.Mode))
	mix(uint64(f.Thickness))
	mix(uint64(f.Bunch))
	mix(uint64(f.State))
	mix(uint64(int64(f.LiveChildren)))
	mix(uint64(int64(f.ResumePC)))
	mix(uint64(f.Offset))
	mix(uint64(f.TidOffset))
	mix(uint64(f.TotalThickness))
	if f.IsFragment {
		mix(1)
	}
	for _, v := range f.scalars {
		mix(uint64(v))
	}
	for r := range f.vectors {
		for _, v := range f.vectors[r] {
			mix(uint64(v))
		}
		mix(uint64(len(f.vectors[r])))
	}
	for _, pc := range f.CallStack {
		mix(uint64(pc))
	}
	mix(uint64(len(f.CallStack)))
	return h
}

// RegWords returns the current register-file words held by the flow.
func (f *Flow) RegWords() int64 {
	n := int64(isa.NumSRegs)
	for r := range f.vectors {
		n += int64(len(f.vectors[r]))
	}
	return n
}

func (f *Flow) noteRegWords() {
	if w := f.RegWords(); w > f.RegWordsPeak {
		f.RegWordsPeak = w
	}
}

func (f *Flow) String() string {
	mode := f.Mode.String()
	if f.Mode == NUMA {
		mode = fmt.Sprintf("NUMA/%d", f.Bunch)
	}
	return fmt.Sprintf("flow %d @%d thick=%d %s %s", f.ID, f.PC, f.Thickness, mode, f.State)
}
