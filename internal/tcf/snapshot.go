package tcf

import (
	"fmt"

	"tcfpram/internal/checkpoint"
	"tcfpram/internal/isa"
)

// EncodeTo streams the flow's complete state into e. Parent links are
// serialized as flow ids (-1 for none) and re-wired by the machine's restore
// pass once every flow exists. Vector register banks are written with their
// exact allocation lengths: lazy allocation is observable through
// RegWordsPeak and VectorAllocated, so restore must reproduce it, not just
// the values.
func (f *Flow) EncodeTo(e *checkpoint.Encoder) {
	e.Int(f.ID)
	e.Int(f.PC)
	e.Int(int(f.Mode))
	e.Int(f.Thickness)
	e.Int(f.Bunch)
	e.Int(int(f.State))
	e.Int64s(f.scalars[:])
	for r := range f.vectors {
		e.Int64s(f.vectors[r])
	}
	callStack := make([]int64, len(f.CallStack))
	for i, pc := range f.CallStack {
		callStack[i] = int64(pc)
	}
	e.Int64s(callStack)
	parent := -1
	if f.Parent != nil {
		parent = f.Parent.ID
	}
	e.Int(parent)
	e.Int(f.LiveChildren)
	e.Int(f.ResumePC)
	e.Int(f.Home)
	e.Bool(f.IsFragment)
	e.Int(f.TidOffset)
	e.Int(f.TotalThickness)
	e.Int(f.Offset)
	e.Varint(f.InstrFetches)
	e.Varint(f.RegWordsPeak)
}

// DecodeFlow reads one flow written by EncodeTo, returning it together with
// its parent's flow id (-1 for none); the caller resolves the id to a
// pointer after all flows are decoded.
func DecodeFlow(d *checkpoint.Decoder) (*Flow, int, error) {
	f := &Flow{}
	f.ID = d.Int()
	f.PC = d.Int()
	f.Mode = Mode(d.Int())
	f.Thickness = d.Int()
	f.Bunch = d.Int()
	f.State = State(d.Int())
	scalars := d.Int64s()
	if err := d.Err(); err != nil {
		return nil, 0, err
	}
	if f.Mode != PRAM && f.Mode != NUMA {
		return nil, 0, fmt.Errorf("tcf: snapshot flow %d: bad mode %d", f.ID, int(f.Mode))
	}
	if f.State < Ready || f.State > Done {
		return nil, 0, fmt.Errorf("tcf: snapshot flow %d: bad state %d", f.ID, int(f.State))
	}
	if f.Thickness < 0 {
		return nil, 0, fmt.Errorf("tcf: snapshot flow %d: negative thickness %d", f.ID, f.Thickness)
	}
	if len(scalars) != 0 && len(scalars) != isa.NumSRegs {
		return nil, 0, fmt.Errorf("tcf: snapshot flow %d: %d scalar registers, want %d", f.ID, len(scalars), isa.NumSRegs)
	}
	copy(f.scalars[:], scalars)
	for r := range f.vectors {
		f.vectors[r] = d.Int64s()
	}
	callStack := d.Int64s()
	for _, pc := range callStack {
		f.CallStack = append(f.CallStack, int(pc))
	}
	parent := d.Int()
	f.LiveChildren = d.Int()
	f.ResumePC = d.Int()
	f.Home = d.Int()
	f.IsFragment = d.Bool()
	f.TidOffset = d.Int()
	f.TotalThickness = d.Int()
	f.Offset = d.Int()
	f.InstrFetches = d.Varint()
	f.RegWordsPeak = d.Varint()
	if err := d.Err(); err != nil {
		return nil, 0, err
	}
	return f, parent, nil
}
