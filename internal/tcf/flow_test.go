package tcf

import (
	"strings"
	"testing"
	"testing/quick"

	"tcfpram/internal/isa"
)

func TestNewFlowDefaults(t *testing.T) {
	f := New(3, 10, 8)
	if f.ID != 3 || f.PC != 10 || f.Thickness != 8 {
		t.Fatalf("bad flow: %v", f)
	}
	if f.Mode != PRAM || f.State != Ready || f.Bunch != 1 {
		t.Fatalf("bad defaults: %v", f)
	}
	if f.Lanes() != 8 {
		t.Fatalf("Lanes() = %d, want 8", f.Lanes())
	}
}

func TestNewNegativeThicknessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 0, -1)
}

func TestScalarRegisters(t *testing.T) {
	f := New(0, 0, 4)
	f.SetScalar(isa.S(3), 42)
	if got := f.Scalar(isa.S(3)); got != 42 {
		t.Fatalf("scalar = %d", got)
	}
	s := f.Scalars()
	if s[3] != 42 {
		t.Fatal("Scalars copy wrong")
	}
	s[3] = 7 // must not affect the flow
	if f.Scalar(isa.S(3)) != 42 {
		t.Fatal("Scalars must copy")
	}
	var bank [isa.NumSRegs]int64
	bank[0] = 9
	f.SetScalars(bank)
	if f.Scalar(isa.S(0)) != 9 || f.Scalar(isa.S(3)) != 0 {
		t.Fatal("SetScalars failed")
	}
}

func TestScalarAccessorsPanicOnVector(t *testing.T) {
	f := New(0, 0, 4)
	for _, fn := range []func(){
		func() { f.Scalar(isa.V(0)) },
		func() { f.SetScalar(isa.V(0), 1) },
		func() { f.Vector(isa.S(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestVectorLazyAllocationAndLanes(t *testing.T) {
	f := New(0, 0, 4)
	if f.VectorAllocated(isa.V(5)) {
		t.Fatal("V5 should not be allocated yet")
	}
	v := f.Vector(isa.V(5))
	if len(v) != 4 {
		t.Fatalf("lanes = %d, want 4", len(v))
	}
	v[2] = 99
	if f.Lane(isa.V(5), 2) != 99 {
		t.Fatal("lane write lost")
	}
	if !f.VectorAllocated(isa.V(5)) {
		t.Fatal("V5 should be allocated")
	}
}

func TestScalarBroadcastInLaneRead(t *testing.T) {
	f := New(0, 0, 4)
	f.SetScalar(isa.S(1), 77)
	for i := 0; i < 4; i++ {
		if f.Lane(isa.S(1), i) != 77 {
			t.Fatalf("lane %d did not see broadcast scalar", i)
		}
	}
	f.SetLane(isa.S(1), 2, 5)
	if f.Scalar(isa.S(1)) != 5 {
		t.Fatal("SetLane on scalar should store common value")
	}
}

func TestSetThicknessPreservesPrefixAndZeroExtends(t *testing.T) {
	f := New(0, 0, 4)
	v := f.Vector(isa.V(0))
	for i := range v {
		v[i] = int64(i + 1)
	}
	if err := f.SetThickness(8); err != nil {
		t.Fatal(err)
	}
	v = f.Vector(isa.V(0))
	if len(v) != 8 {
		t.Fatalf("lanes = %d", len(v))
	}
	for i := 0; i < 4; i++ {
		if v[i] != int64(i+1) {
			t.Fatalf("lane %d lost: %d", i, v[i])
		}
	}
	for i := 4; i < 8; i++ {
		if v[i] != 0 {
			t.Fatalf("lane %d not zeroed: %d", i, v[i])
		}
	}
	// Shrink keeps storage but exposes fewer lanes.
	if err := f.SetThickness(2); err != nil {
		t.Fatal(err)
	}
	if len(f.Vector(isa.V(0))) != 2 {
		t.Fatal("shrink did not reduce lanes")
	}
	if err := f.SetThickness(-1); err == nil {
		t.Fatal("negative thickness must error")
	}
}

func TestZeroThicknessFlow(t *testing.T) {
	f := New(0, 0, 0)
	if f.Lanes() != 0 {
		t.Fatalf("Lanes() = %d, want 0", f.Lanes())
	}
	if len(f.Vector(isa.V(0))) != 0 {
		t.Fatal("zero-thickness vector must have no lanes")
	}
}

func TestNUMAMode(t *testing.T) {
	f := New(0, 0, 16)
	if err := f.EnterNUMA(4); err != nil {
		t.Fatal(err)
	}
	if f.Mode != NUMA || f.Bunch != 4 {
		t.Fatalf("bad NUMA state: %v", f)
	}
	if f.Lanes() != 1 {
		t.Fatalf("NUMA lanes = %d, want 1", f.Lanes())
	}
	if err := f.EnterNUMA(0); err == nil {
		t.Fatal("bunch 0 must error")
	}
	f.LeavePRAM()
	if f.Mode != PRAM || f.Thickness != 1 {
		t.Fatalf("LeavePRAM: %v", f)
	}
}

func TestCallStack(t *testing.T) {
	f := New(0, 0, 1)
	if _, ok := f.Ret(); ok {
		t.Fatal("empty stack must report false")
	}
	f.Call(10)
	f.Call(20)
	pc, ok := f.Ret()
	if !ok || pc != 20 {
		t.Fatalf("Ret = %d,%v", pc, ok)
	}
	pc, ok = f.Ret()
	if !ok || pc != 10 {
		t.Fatalf("Ret = %d,%v", pc, ok)
	}
}

func TestRegWordsAccounting(t *testing.T) {
	f := New(0, 0, 8)
	base := f.RegWords()
	if base != int64(isa.NumSRegs) {
		t.Fatalf("fresh flow holds %d words, want %d", base, isa.NumSRegs)
	}
	f.Vector(isa.V(0))
	f.Vector(isa.V(1))
	if got := f.RegWords(); got != base+16 {
		t.Fatalf("after two vectors: %d, want %d", got, base+16)
	}
	if f.RegWordsPeak < base+16 {
		t.Fatalf("peak %d too low", f.RegWordsPeak)
	}
}

func TestStringRendering(t *testing.T) {
	f := New(7, 3, 12)
	if s := f.String(); !strings.Contains(s, "flow 7") || !strings.Contains(s, "thick=12") {
		t.Fatalf("bad String: %q", s)
	}
	f.EnterNUMA(4)
	if s := f.String(); !strings.Contains(s, "NUMA/4") {
		t.Fatalf("bad NUMA String: %q", s)
	}
	for _, st := range []State{Ready, Waiting, Blocked, Done, State(9)} {
		if st.String() == "" {
			t.Fatal("state must render")
		}
	}
	if PRAM.String() != "PRAM" || NUMA.String() != "NUMA" {
		t.Fatal("mode names")
	}
}

// Property: growing thickness never loses existing lane values.
func TestThicknessGrowthMonotone(t *testing.T) {
	prop := func(a, b uint8) bool {
		t0 := int(a%16) + 1
		t1 := t0 + int(b%16)
		f := New(0, 0, t0)
		v := f.Vector(isa.V(3))
		for i := range v {
			v[i] = int64(i * 3)
		}
		if err := f.SetThickness(t1); err != nil {
			return false
		}
		v = f.Vector(isa.V(3))
		for i := 0; i < t0; i++ {
			if v[i] != int64(i*3) {
				return false
			}
		}
		return len(v) == t1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
