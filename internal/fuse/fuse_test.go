package fuse

import (
	"testing"

	"tcfpram/internal/isa"
	"tcfpram/internal/tcf"
)

func TestCompileClasses(t *testing.T) {
	p := isa.MustAssemble("classes", `
		LDI V0, 3
		ADD V1, V0, 5
		MUL V2, V1, V1
		LD V3, 64
		RADD S0, V2
		ST 100, V2
		PRINT S0
		HALT
	`)
	fp := Compile(p)
	if len(fp.Code) != p.Len() {
		t.Fatalf("compiled %d instrs, want %d", len(fp.Code), p.Len())
	}
	wantClass := []Class{ClassReg, ClassReg, ClassReg, ClassMem, ClassAtomic, ClassMem, ClassAtomic, ClassControl}
	wantRun := []int{3, 2, 1, 1, 1, 1, 1, 1}
	for pc, fi := range fp.Code {
		if fi.Class != wantClass[pc] {
			t.Errorf("pc %d (%s): class %v, want %v", pc, fi.In.Op, fi.Class, wantClass[pc])
		}
		if fi.Run != wantRun[pc] {
			t.Errorf("pc %d (%s): run %d, want %d", pc, fi.In.Op, fi.Run, wantRun[pc])
		}
		if fi.Class == ClassReg && fi.Kern == nil {
			t.Errorf("pc %d (%s): register class with nil kernel", pc, fi.In.Op)
		}
		if fi.Thick != fi.In.Thick() || fi.Sliceable != fi.In.Sliceable() {
			t.Errorf("pc %d: cached properties diverge from isa.Instr", pc)
		}
	}
}

// refLane is the interpreter's per-lane semantics for the register ops the
// kernels cover, written independently as the test oracle.
func refLane(env Env, f *tcf.Flow, in isa.Instr, i int) int64 {
	val := func(r isa.Reg) int64 {
		if r.IsScalar() {
			return f.Scalar(r)
		}
		v := f.Vector(r)
		if i >= len(v) {
			return 0
		}
		return v[i]
	}
	switch {
	case in.Op == isa.LDI:
		return in.Imm
	case in.Op == isa.MOV:
		return val(in.Ra)
	case in.Op == isa.NEG:
		return -val(in.Ra)
	case in.Op == isa.NOT:
		return ^val(in.Ra)
	case in.Op == isa.SEL:
		if val(in.Ra) != 0 {
			return val(in.Rb)
		}
		return val(in.Rc)
	case in.Op == isa.TID:
		if f.Mode == tcf.NUMA {
			return 0
		}
		return int64(f.TidOffset + i)
	case in.Op == isa.FID:
		return int64(f.ID)
	case in.Op == isa.THICK:
		return int64(f.TotalThickness)
	case in.Op == isa.GID:
		return int64(env.Group)
	case in.Op == isa.PID:
		return int64(f.Home)
	case in.Op == isa.NPROC:
		return int64(env.Procs)
	case in.Op == isa.NGRP:
		return int64(env.Groups)
	case in.Op.IsBinaryALU():
		b := in.Imm
		if !in.HasImm {
			b = val(in.Rb)
		}
		return aluFn(in.Op)(val(in.Ra), b)
	}
	t := int64(0)
	return t
}

// TestKernMatchesReference drives every compiled kernel shape against the
// per-lane reference: all binary ALU opcodes across the four operand shapes,
// the unaries, SEL, and the identity sources — vector and scalar destination.
func TestKernMatchesReference(t *testing.T) {
	alu := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.MIN, isa.MAX,
		isa.SEQ, isa.SNE, isa.SLT, isa.SLE, isa.SGT, isa.SGE}
	var instrs []isa.Instr
	for _, op := range alu {
		instrs = append(instrs,
			isa.Instr{Op: op, Rd: isa.V(0), Ra: isa.V(1), Rb: isa.V(2)},             // vec,vec
			isa.Instr{Op: op, Rd: isa.V(0), Ra: isa.V(1), Rb: isa.S(1)},             // vec,scalar
			isa.Instr{Op: op, Rd: isa.V(0), Ra: isa.S(0), Rb: isa.V(2)},             // scalar,vec
			isa.Instr{Op: op, Rd: isa.V(0), Ra: isa.S(0), Rb: isa.S(1)},             // scalar,scalar
			isa.Instr{Op: op, Rd: isa.V(0), Ra: isa.V(1), Imm: 7, HasImm: true},     // vec,imm
			isa.Instr{Op: op, Rd: isa.S(2), Ra: isa.V(1), Rb: isa.V(2)},             // scalar dest
			isa.Instr{Op: op, Rd: isa.S(2), Ra: isa.S(0), Imm: -3, HasImm: true},    // scalar dest, imm
		)
	}
	instrs = append(instrs,
		isa.Instr{Op: isa.LDI, Rd: isa.V(0), Imm: 42, HasImm: true},
		isa.Instr{Op: isa.LDI, Rd: isa.S(2), Imm: -9, HasImm: true},
		isa.Instr{Op: isa.MOV, Rd: isa.V(0), Ra: isa.V(1)},
		isa.Instr{Op: isa.MOV, Rd: isa.V(0), Ra: isa.S(0)},
		isa.Instr{Op: isa.MOV, Rd: isa.S(2), Ra: isa.V(1)},
		isa.Instr{Op: isa.NEG, Rd: isa.V(0), Ra: isa.V(1)},
		isa.Instr{Op: isa.NOT, Rd: isa.V(0), Ra: isa.S(0)},
		isa.Instr{Op: isa.NEG, Rd: isa.S(2), Ra: isa.S(1)},
		isa.Instr{Op: isa.SEL, Rd: isa.V(0), Ra: isa.V(3), Rb: isa.V(1), Rc: isa.V(2)},
		isa.Instr{Op: isa.SEL, Rd: isa.S(2), Ra: isa.S(0), Rb: isa.S(1), Rc: isa.S(3)},
		isa.Instr{Op: isa.TID, Rd: isa.V(0)},
		isa.Instr{Op: isa.TID, Rd: isa.S(2)},
		isa.Instr{Op: isa.FID, Rd: isa.V(0)},
		isa.Instr{Op: isa.THICK, Rd: isa.V(0)},
		isa.Instr{Op: isa.GID, Rd: isa.S(2)},
		isa.Instr{Op: isa.PID, Rd: isa.V(0)},
		isa.Instr{Op: isa.NPROC, Rd: isa.V(0)},
		isa.Instr{Op: isa.NGRP, Rd: isa.S(2)},
	)

	env := Env{Group: 2, Groups: 4, Procs: 16}
	const lanes = 8
	newFlow := func() *tcf.Flow {
		f := tcf.New(3, 0, lanes)
		f.TidOffset = 5
		// Operand values chosen to hit the edge semantics: zero divisors,
		// out-of-range shifts, negative values, zero/non-zero selectors.
		va, vb, vc, sel := f.Vector(isa.V(1)), f.Vector(isa.V(2)), f.Vector(isa.V(3)), f.Vector(isa.V(3))
		_ = vc
		vals := []int64{7, -3, 0, 64, -1, 100, 2, 9}
		divs := []int64{2, 0, -1, 65, 1, 0, -64, 3}
		for i := 0; i < lanes; i++ {
			va[i] = vals[i]
			vb[i] = divs[i]
			sel[i] = int64(i % 2)
		}
		f.SetScalar(isa.S(0), -17)
		f.SetScalar(isa.S(1), 0)
		f.SetScalar(isa.S(3), 23)
		return f
	}

	for _, in := range instrs {
		kern := compileKern(in)
		if kern == nil {
			t.Fatalf("%s %s: no kernel", in.Op, in.Rd)
			continue
		}
		got, want := newFlow(), newFlow()
		kern(env, got, 0, lanes)
		if in.Rd.IsVector() {
			dst := want.Vector(in.Rd)
			for i := 0; i < lanes; i++ {
				dst[i] = refLane(env, want, in, i)
			}
			g, w := got.Vector(in.Rd), want.Vector(in.Rd)
			for i := range w {
				if g[i] != w[i] {
					t.Fatalf("%s (d=%s a=%s b=%s imm=%v): lane %d = %d, want %d",
						in.Op, in.Rd, in.Ra, in.Rb, in.HasImm, i, g[i], w[i])
				}
			}
		} else {
			w := refLane(env, want, in, 0)
			if g := got.Scalar(in.Rd); g != w {
				t.Fatalf("%s (scalar dest): got %d, want %d", in.Op, g, w)
			}
		}
	}
}

// TestKernPartialRange checks kernels respect [first, end): lanes outside the
// range must be untouched — the property lane chunking is built on.
func TestKernPartialRange(t *testing.T) {
	const lanes = 8
	f := tcf.New(0, 0, lanes)
	src := f.Vector(isa.V(1))
	for i := range src {
		src[i] = int64(10 + i)
	}
	dst := f.Vector(isa.V(0))
	for i := range dst {
		dst[i] = -1
	}
	kern := compileKern(isa.Instr{Op: isa.ADD, Rd: isa.V(0), Ra: isa.V(1), Imm: 1, HasImm: true})
	kern(Env{}, f, 2, 5)
	for i := 0; i < lanes; i++ {
		want := int64(-1)
		if i >= 2 && i < 5 {
			want = int64(10+i) + 1
		}
		if dst[i] != want {
			t.Fatalf("lane %d = %d, want %d", i, dst[i], want)
		}
	}
}
