// Package fuse is the compiled backend's per-flow block compiler: at program
// load time it partitions each straight-line instruction run (discovered by
// isa.Blocks) into superinstructions — precompiled Go closures that execute
// an entire run over a lane range with operand shapes resolved once, at
// compile time, instead of re-decoded on every step.
//
// The compiled program carries, per PC, the instruction's execution class,
// its precomputed thickness/sliceability properties, the length of the fused
// run starting there, and (for pure register operations) a kernel closure.
// The step engine stays the single owner of everything step-resolved: memory
// references, combining traffic, fault decisions, discipline records and
// trace accounting all happen in the engine at run boundaries, which is what
// keeps the compiled backend bit-identical to the interpreter.
package fuse

import (
	"sync/atomic"

	"tcfpram/internal/isa"
	"tcfpram/internal/tcf"
)

// Class is the execution class the engine dispatches on.
type Class uint8

const (
	// ClassReg is a pure register/lane operation with a compiled Kern.
	ClassReg Class = iota
	// ClassMem references shared or local memory or the combining network;
	// the engine executes it with bulk kernels or its per-lane reference
	// path (the fusion boundary of the run).
	ClassMem
	// ClassControl is a flow-level control or structure operation.
	ClassControl
	// ClassAtomic is a flow-atomic operation (reductions, PRINT/PRINTS,
	// NOP) executed by the engine's atomic path.
	ClassAtomic
)

func (c Class) String() string {
	switch c {
	case ClassReg:
		return "reg"
	case ClassMem:
		return "mem"
	case ClassControl:
		return "control"
	case ClassAtomic:
		return "atomic"
	}
	return "class?"
}

// Env is the execution environment a kernel may consult: the identity of the
// group running the flow and the machine shape constants. Passed by value —
// three words — so kernels stay allocation-free.
type Env struct {
	Group  int // executing processor-group index (GID)
	Groups int // P (NGRP)
	Procs  int // P*Tp (NPROC)
}

// Kern executes lanes [first, end) of one register operation on f. Kernels
// never touch memory, combining or flow structure; their effects are exactly
// the interpreter's per-lane semantics for the instruction they were
// compiled from.
type Kern func(env Env, f *tcf.Flow, first, end int)

// Instr is one compiled instruction.
type Instr struct {
	// In is the source instruction.
	In isa.Instr
	// Class selects the engine dispatch path.
	Class Class
	// Thick and Sliceable cache isa.Instr.Thick/Sliceable (instruction-only
	// properties, precomputed off the hot path).
	Thick     bool
	Sliceable bool
	// Run is the length of the fused straight-line run starting at this PC
	// (≥ 1; > 1 only for ClassReg). The engine may execute instructions
	// [pc, pc+Run) back to back without surfacing: the run contains no
	// control transfer, no memory reference and no interior branch target.
	Run int
	// Kern is the compiled lane kernel (ClassReg, nil when the opcode has
	// no lane semantics — the engine falls back and reports the same error
	// the interpreter would).
	Kern Kern
}

// Program is a compiled program: one Instr per source PC.
type Program struct {
	Src  *isa.Program
	Code []Instr
}

// Compile builds the fused program for p. It never fails: opcodes the
// compiler cannot kernelize keep Class assignments that route them through
// the interpreter's own paths, so compiled execution is defined exactly
// where interpreted execution is.
func Compile(p *isa.Program) *Program {
	rl := isa.RunLengths(p)
	code := make([]Instr, p.Len())
	for pc := range p.Instrs {
		in := p.Instrs[pc]
		fi := &code[pc]
		fi.In = in
		fi.Thick = in.Thick()
		fi.Sliceable = in.Sliceable()
		fi.Run = 1
		info := in.Op.Info()
		switch {
		case info.Control:
			fi.Class = ClassControl
		case info.MemRef || info.LocalRef:
			fi.Class = ClassMem
		case !in.Op.Fusible():
			fi.Class = ClassAtomic
		default:
			fi.Class = ClassReg
			fi.Run = rl[pc]
			fi.Kern = compileKern(in)
		}
	}
	return &Program{Src: p, Code: code}
}

// lastCompiled is a single-entry cache for Cached: programs are immutable
// once built, and the common machine lifecycles (benchmark harnesses
// rebuilding one figure workload, pooled servers reloading a tenant program)
// reload the same *isa.Program over and over. One entry keeps the cache
// bounded; misses just compile.
var lastCompiled atomic.Pointer[Program]

// Cached returns the fused program for p, reusing the most recently compiled
// program when it was built from the same *isa.Program. The returned Program
// is shared and must be treated as read-only (the engine already does: it
// only ever reads Code).
func Cached(p *isa.Program) *Program {
	if fp := lastCompiled.Load(); fp != nil && fp.Src == p {
		return fp
	}
	fp := Compile(p)
	lastCompiled.Store(fp)
	return fp
}
