package fuse

import (
	"tcfpram/internal/isa"
	"tcfpram/internal/tcf"
)

// laneVal mirrors the engine's operand read: scalar registers broadcast to
// every lane; vector reads beyond the allocated lane count (possible only
// for flow-level forms on thin flows) yield zero.
func laneVal(f *tcf.Flow, r isa.Reg, i int) int64 {
	if r.IsScalar() {
		return f.Scalar(r)
	}
	v := f.Vector(r)
	if i >= len(v) {
		return 0
	}
	return v[i]
}

func clampShift(b int64) uint {
	if b < 0 {
		return 0
	}
	if b > 63 {
		return 63
	}
	return uint(b)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// aluFn returns the scalar evaluator of a binary ALU opcode, identical to
// the interpreter's trap-free ALU: division/modulo by zero yield zero,
// shifts clamp to [0, 63].
func aluFn(op isa.Op) func(a, b int64) int64 {
	switch op {
	case isa.ADD:
		return func(a, b int64) int64 { return a + b }
	case isa.SUB:
		return func(a, b int64) int64 { return a - b }
	case isa.MUL:
		return func(a, b int64) int64 { return a * b }
	case isa.DIV:
		return func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a / b
		}
	case isa.MOD:
		return func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a % b
		}
	case isa.AND:
		return func(a, b int64) int64 { return a & b }
	case isa.OR:
		return func(a, b int64) int64 { return a | b }
	case isa.XOR:
		return func(a, b int64) int64 { return a ^ b }
	case isa.SHL:
		return func(a, b int64) int64 { return a << clampShift(b) }
	case isa.SHR:
		return func(a, b int64) int64 { return a >> clampShift(b) }
	case isa.MIN:
		return func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		}
	case isa.MAX:
		return func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		}
	case isa.SEQ:
		return func(a, b int64) int64 { return b2i(a == b) }
	case isa.SNE:
		return func(a, b int64) int64 { return b2i(a != b) }
	case isa.SLT:
		return func(a, b int64) int64 { return b2i(a < b) }
	case isa.SLE:
		return func(a, b int64) int64 { return b2i(a <= b) }
	case isa.SGT:
		return func(a, b int64) int64 { return b2i(a > b) }
	case isa.SGE:
		return func(a, b int64) int64 { return b2i(a >= b) }
	}
	return nil
}

// compileKern builds the lane kernel for a register-class instruction,
// resolving operand shapes (vector/scalar/immediate) once. Returns nil for
// opcodes without lane semantics.
func compileKern(in isa.Instr) Kern {
	rd, ra, rb, rc := in.Rd, in.Ra, in.Rb, in.Rc
	imm := in.Imm
	switch {
	case in.Op == isa.LDI:
		if rd.IsVector() {
			return func(_ Env, f *tcf.Flow, first, end int) {
				dst := f.Vector(rd)
				for i := first; i < end; i++ {
					dst[i] = imm
				}
			}
		}
		return func(_ Env, f *tcf.Flow, first, end int) { f.SetScalar(rd, imm) }

	case in.Op == isa.MOV:
		switch {
		case rd.IsVector() && ra.IsVector():
			return func(_ Env, f *tcf.Flow, first, end int) {
				copy(f.Vector(rd)[first:end], f.Vector(ra)[first:end])
			}
		case rd.IsVector():
			return func(_ Env, f *tcf.Flow, first, end int) {
				dst, v := f.Vector(rd), f.Scalar(ra)
				for i := first; i < end; i++ {
					dst[i] = v
				}
			}
		default:
			return func(_ Env, f *tcf.Flow, first, end int) { f.SetScalar(rd, laneVal(f, ra, 0)) }
		}

	case in.Op == isa.NEG, in.Op == isa.NOT:
		neg := in.Op == isa.NEG
		un := func(v int64) int64 { return ^v }
		if neg {
			un = func(v int64) int64 { return -v }
		}
		if rd.IsVector() && ra.IsVector() {
			return func(_ Env, f *tcf.Flow, first, end int) {
				dst, src := f.Vector(rd), f.Vector(ra)
				for i := first; i < end; i++ {
					dst[i] = un(src[i])
				}
			}
		}
		if rd.IsVector() {
			return func(_ Env, f *tcf.Flow, first, end int) {
				dst, v := f.Vector(rd), un(f.Scalar(ra))
				for i := first; i < end; i++ {
					dst[i] = v
				}
			}
		}
		return func(_ Env, f *tcf.Flow, first, end int) { f.SetScalar(rd, un(laneVal(f, ra, 0))) }

	case in.Op.IsBinaryALU():
		return binKern(in)

	case in.Op == isa.SEL:
		if rd.IsVector() {
			return func(_ Env, f *tcf.Flow, first, end int) {
				dst := f.Vector(rd)
				for i := first; i < end; i++ {
					v := laneVal(f, rc, i)
					if laneVal(f, ra, i) != 0 {
						v = laneVal(f, rb, i)
					}
					dst[i] = v
				}
			}
		}
		return func(_ Env, f *tcf.Flow, first, end int) {
			v := laneVal(f, rc, 0)
			if laneVal(f, ra, 0) != 0 {
				v = laneVal(f, rb, 0)
			}
			f.SetScalar(rd, v)
		}

	case in.Op == isa.TID:
		if rd.IsVector() {
			return func(_ Env, f *tcf.Flow, first, end int) {
				dst := f.Vector(rd)
				if f.Mode == tcf.NUMA {
					for i := first; i < end; i++ {
						dst[i] = 0
					}
					return
				}
				off := f.TidOffset
				for i := first; i < end; i++ {
					dst[i] = int64(off + i)
				}
			}
		}
		return func(_ Env, f *tcf.Flow, first, end int) {
			if f.Mode == tcf.NUMA {
				f.SetScalar(rd, 0)
				return
			}
			f.SetScalar(rd, int64(f.TidOffset))
		}

	case in.Op == isa.FID:
		return fillKern(rd, func(_ Env, f *tcf.Flow) int64 { return int64(f.ID) })
	case in.Op == isa.THICK:
		return fillKern(rd, func(_ Env, f *tcf.Flow) int64 { return int64(f.TotalThickness) })
	case in.Op == isa.GID:
		return fillKern(rd, func(env Env, _ *tcf.Flow) int64 { return int64(env.Group) })
	case in.Op == isa.PID:
		return fillKern(rd, func(_ Env, f *tcf.Flow) int64 { return int64(f.Home) })
	case in.Op == isa.NPROC:
		return fillKern(rd, func(env Env, _ *tcf.Flow) int64 { return int64(env.Procs) })
	case in.Op == isa.NGRP:
		return fillKern(rd, func(env Env, _ *tcf.Flow) int64 { return int64(env.Groups) })
	}
	return nil
}

// fillKern broadcasts a flow/environment-derived value into the destination.
func fillKern(rd isa.Reg, val func(Env, *tcf.Flow) int64) Kern {
	if rd.IsVector() {
		return func(env Env, f *tcf.Flow, first, end int) {
			dst, v := f.Vector(rd), val(env, f)
			for i := first; i < end; i++ {
				dst[i] = v
			}
		}
	}
	return func(env Env, f *tcf.Flow, first, end int) { f.SetScalar(rd, val(env, f)) }
}

// binKern compiles a binary ALU instruction. The vector×vector ADD — the
// inner loop of data-parallel arithmetic — gets a dedicated closure; every
// other shape captures the opcode's scalar evaluator.
func binKern(in isa.Instr) Kern {
	rd, ra, rb := in.Rd, in.Ra, in.Rb
	imm, hasImm := in.Imm, in.HasImm
	fn := aluFn(in.Op)
	if fn == nil {
		return nil
	}
	if !rd.IsVector() {
		// Scalar destination: one flow-level operation (lane 0 semantics).
		if hasImm {
			return func(_ Env, f *tcf.Flow, first, end int) {
				f.SetScalar(rd, fn(laneVal(f, ra, 0), imm))
			}
		}
		return func(_ Env, f *tcf.Flow, first, end int) {
			f.SetScalar(rd, fn(laneVal(f, ra, 0), laneVal(f, rb, 0)))
		}
	}
	aVec := ra.IsVector()
	bVec := !hasImm && rb.IsVector()
	switch {
	case aVec && bVec:
		if in.Op == isa.ADD {
			return func(_ Env, f *tcf.Flow, first, end int) {
				dst, av, bv := f.Vector(rd), f.Vector(ra), f.Vector(rb)
				for i := first; i < end; i++ {
					dst[i] = av[i] + bv[i]
				}
			}
		}
		return func(_ Env, f *tcf.Flow, first, end int) {
			dst, av, bv := f.Vector(rd), f.Vector(ra), f.Vector(rb)
			for i := first; i < end; i++ {
				dst[i] = fn(av[i], bv[i])
			}
		}
	case aVec:
		return func(_ Env, f *tcf.Flow, first, end int) {
			dst, av := f.Vector(rd), f.Vector(ra)
			bs := imm
			if !hasImm {
				bs = f.Scalar(rb)
			}
			for i := first; i < end; i++ {
				dst[i] = fn(av[i], bs)
			}
		}
	case bVec:
		return func(_ Env, f *tcf.Flow, first, end int) {
			dst, bv := f.Vector(rd), f.Vector(rb)
			as := f.Scalar(ra)
			for i := first; i < end; i++ {
				dst[i] = fn(as, bv[i])
			}
		}
	default:
		return func(_ Env, f *tcf.Flow, first, end int) {
			dst := f.Vector(rd)
			bs := imm
			if !hasImm {
				bs = f.Scalar(rb)
			}
			v := fn(f.Scalar(ra), bs)
			for i := first; i < end; i++ {
				dst[i] = v
			}
		}
	}
}
