package machine

// Differential testing of the dataflow scheduler: every observable of a run
// (outputs, memory image, complete statistics, the step trace, and the error
// if any) must be bit-identical between Config.Sched = SchedLockstep and
// SchedDataflow — the lockstep engine is the oracle. The cases target each
// dependency edge the dataflow board gates on: cross-group memory
// dependencies (the frontier), hazards (splits/joins/barriers/combining),
// fences (task rotation), strict-mode features (fault plans, preemption,
// watchdog, discipline, Common writes), and the stop conditions (MaxSteps,
// deadlock, cancellation, checkpoint boundaries).

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"tcfpram/internal/isa"
	"tcfpram/internal/mem"
	"tcfpram/internal/tcf"
	"tcfpram/internal/variant"
)

func dataflowOn(c *Config) { c.Sched = SchedDataflow }

func dfErrStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// dfRunObs runs prog under the given scheduler with tracing on and captures
// everything observable about the run.
func dfRunObs(t *testing.T, prog *isa.Program, kind variant.Kind, sched Sched, tweak func(*Config)) (runSnapshot, []*StepRecord, string) {
	t.Helper()
	cfg := Default(kind)
	if tweak != nil {
		tweak(&cfg)
	}
	cfg.Sched = sched
	cfg.TraceEnabled = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	_, runErr := m.Run()
	return snapshotOf(m), m.Trace(), dfErrStr(runErr)
}

// dfCompare demands bit-identity between the two schedulers on one program:
// same error (message for message), same outputs, memory, statistics, and
// per-step trace.
func dfCompare(t *testing.T, prog *isa.Program, kind variant.Kind, tweak func(*Config)) {
	t.Helper()
	lock, lockTrace, lockErr := dfRunObs(t, prog, kind, SchedLockstep, tweak)
	df, dfTrace, dfErr := dfRunObs(t, prog, kind, SchedDataflow, tweak)
	if lockErr != dfErr {
		t.Fatalf("%v: run errors diverged:\nlockstep %q\ndataflow %q", kind, lockErr, dfErr)
	}
	if !reflect.DeepEqual(lock.outputs, df.outputs) {
		t.Fatalf("%v: outputs diverged:\nlockstep %v\ndataflow %v", kind, lock.outputs, df.outputs)
	}
	if !reflect.DeepEqual(lock.memory, df.memory) {
		t.Fatalf("%v: shared memory diverged", kind)
	}
	if !reflect.DeepEqual(lock.stats, df.stats) {
		t.Fatalf("%v: stats diverged:\nlockstep %+v\ndataflow %+v", kind, lock.stats, df.stats)
	}
	if !reflect.DeepEqual(lockTrace, dfTrace) {
		t.Fatalf("%v: step traces diverged (%d vs %d records)", kind, len(lockTrace), len(dfTrace))
	}
}

// TestDataflowDifferentialRandomPrograms runs the random race-free program
// generator under every engine configuration the lockstep differential
// covers, with the dataflow scheduler on both sides of each comparison.
func TestDataflowDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		dp := genDiffProgram(rng)
		// Against the sequential reference.
		runDiff(t, dp, variant.SingleInstruction, dataflowOn)
		// Against the lockstep oracle, across engine configurations.
		dfCompare(t, dp.prog, variant.SingleInstruction, nil)
		dfCompare(t, dp.prog, variant.SingleInstruction, func(c *Config) { c.Parallel = true })
		dfCompare(t, dp.prog, variant.SingleInstruction, func(c *Config) {
			c.Parallel = true
			c.LaneParallelThreshold = 4
		})
		for _, bound := range []int{1, 3, 7} {
			bound := bound
			dfCompare(t, dp.prog, variant.Balanced, func(c *Config) { c.BalancedBound = bound })
		}
		// MultiInstruction is immediate semantics: Sched=dataflow falls back
		// to the lockstep engine, which must be a no-op.
		dfCompare(t, dp.prog, variant.MultiInstruction, nil)
		if !dp.hasReduction {
			dfCompare(t, dp.prog, variant.SingleInstruction, func(c *Config) { c.AutoSplitThreshold = 4 })
		}
	}
}

// TestDataflowAllVariantsBothBackends sweeps all six policies crossed with
// both backends over the standing test programs — the composition matrix the
// scheduler must not disturb.
func TestDataflowAllVariantsBothBackends(t *testing.T) {
	kinds := []variant.Kind{
		variant.SingleInstruction, variant.Balanced, variant.MultiInstruction,
		variant.SingleOperation, variant.ConfigurableSingleOperation, variant.FixedThickness,
	}
	for name, src := range resetPrograms {
		prog := isa.MustAssemble(name, src)
		t.Run(name, func(t *testing.T) {
			for _, kind := range kinds {
				dfCompare(t, prog, kind, nil)
				dfCompare(t, prog, kind, func(c *Config) { c.Backend = BackendFused })
			}
		})
	}
}

// TestDataflowBarrierExchange: the BAR release decision is committer-global
// (no flow anywhere still runnable); the dataflow engine may only take it
// with every runner parked, and must take it at the same step.
func TestDataflowBarrierExchange(t *testing.T) {
	src := `
main:
    SPLIT 1 -> armA, 1 -> armB
    HALT
armA:
    LDI S1, 10
    ST 700, S1
    BAR
    LD S2, 701
    ST 702, S2
    JOIN
armB:
    LDI S1, 20
    ST 701, S1
    BAR
    LD S2, 700
    ST 703, S2
    JOIN
`
	prog := isa.MustAssemble("barrier", src)
	for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced} {
		dfCompare(t, prog, kind, nil)
		dfCompare(t, prog, kind, func(c *Config) { c.Parallel = true })
	}
	m := mustRun(t, variant.SingleInstruction, src, dataflowOn)
	if a, b := m.Shared().Peek(702), m.Shared().Peek(703); a != 20 || b != 10 {
		t.Fatalf("barrier exchange under dataflow got %d/%d, want 20/10", a, b)
	}
}

// dfProducerConsumerSrc is the targeted cross-group memory dependency: the
// consumer group polls a flag the producer group raises only after a long
// private loop, while a third thick flow computes independently — the
// consumer's run-ahead reads must block on the frontier until the producer's
// flag write commits, or it would observe the flag early and finish in fewer
// steps than lockstep.
const dfProducerConsumerSrc = `
main:
    SPLIT 1 -> producer, 1 -> consumer, 6 -> mixer
    HALT
producer:
    LDI S1, 0
ploop:
    ADD S1, S1, 1
    SLT S2, S1, 25
    BNEZ S2, ploop
    LDI S3, 123
    ST 700, S3
    LDI S4, 1
    ST 701, S4
    JOIN
consumer:
cloop:
    LD S1, 701
    BEQZ S1, cloop
    LD S2, 700
    ST 702, S2
    JOIN
mixer:
    TID V0
    LDI S1, 0
mloop:
    ADD V1, V1, 3
    ADD S1, S1, 1
    SLT S2, S1, 40
    BNEZ S2, mloop
    ST V0+710, V1
    JOIN
`

func TestDataflowProducerConsumer(t *testing.T) {
	prog := isa.MustAssemble("prodcons", dfProducerConsumerSrc)
	dfCompare(t, prog, variant.SingleInstruction, nil)
	dfCompare(t, prog, variant.SingleInstruction, func(c *Config) { c.Parallel = true })
	dfCompare(t, prog, variant.Balanced, nil)
	m := mustRun(t, variant.SingleInstruction, dfProducerConsumerSrc, dataflowOn)
	if got := m.Shared().Peek(702); got != 123 {
		t.Fatalf("consumer read %d through the frontier, want 123", got)
	}
}

// TestDataflowTimeSlicePreemption: preemptive multitasking is strict mode
// (the quantum counts committed steps); an oversubscribed task set must
// rotate identically.
func TestDataflowTimeSlicePreemption(t *testing.T) {
	var b strings.Builder
	b.WriteString("main:\n    SPLIT ")
	for i := 0; i < 12; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("2 -> task")
	}
	b.WriteString("\n    HALT\ntask:\n")
	b.WriteString(`    FID S0
    TID V0
    LDI S1, 0
tloop:
    ADD S1, S1, 1
    SLT S2, S1, 9
    BNEZ S2, tloop
    MUL S3, S0, 4
    ADD V0, V0, S3
    ST V0+800, S1
    JOIN
`)
	prog := isa.MustAssemble("timeslice", b.String())
	for _, q := range []int64{1, 3} {
		q := q
		dfCompare(t, prog, variant.SingleInstruction, func(c *Config) { c.TimeSliceSteps = q })
		dfCompare(t, prog, variant.Balanced, func(c *Config) { c.TimeSliceSteps = q })
	}
}

// TestDataflowMaxSteps: the step quota must stop the run with the same error
// and the same committed step count — runners may not overshoot.
func TestDataflowMaxSteps(t *testing.T) {
	prog := isa.MustAssemble("livelock", "main:\n    JMP main\n")
	dfCompare(t, prog, variant.SingleInstruction, func(c *Config) { c.MaxSteps = 64 })
	_, err := runSrc(t, variant.SingleInstruction, "main:\n    JMP main\n", func(c *Config) {
		c.MaxSteps = 64
		dataflowOn(c)
	})
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("want ErrMaxSteps, got %v", err)
	}
}

// TestDataflowWatchdog: the watchdog digests whole-machine state between
// steps, so it forces strict stepping; the kill step must match lockstep
// exactly.
func TestDataflowWatchdog(t *testing.T) {
	prog := isa.MustAssemble("livelock", "main:\n    JMP main\n")
	dfCompare(t, prog, variant.SingleInstruction, func(c *Config) {
		c.WatchdogSteps = 32
		c.MaxSteps = 1 << 20
	})
	m, err := runSrc(t, variant.SingleInstruction, "main:\n    JMP main\n", func(c *Config) {
		c.WatchdogSteps = 32
		c.MaxSteps = 1 << 20
		dataflowOn(c)
	})
	if !errors.Is(err, ErrDeadlock) || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("want the watchdog's ErrDeadlock, got %v", err)
	}
	if m.Stats().Steps >= 1<<20 {
		t.Fatal("watchdog fired only at MaxSteps under dataflow")
	}
}

// TestDataflowFaultPlans: fault plans are strict mode (module fail-stops
// fire at exact step boundaries, reference faults key off refSeq); both
// recoverable and unrecoverable plans must behave identically.
func TestDataflowFaultPlans(t *testing.T) {
	va := isa.MustAssemble("vector-add", vectorAddSrc)
	pc := isa.MustAssemble("prodcons", dfProducerConsumerSrc)
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		dfCompare(t, va, variant.SingleInstruction, func(c *Config) { c.FaultPlan = recoverablePlan(seed) })
		dfCompare(t, pc, variant.SingleInstruction, func(c *Config) { c.FaultPlan = recoverablePlan(seed) })
	}
	m := mustRun(t, variant.SingleInstruction, vectorAddSrc, func(c *Config) {
		c.FaultPlan = recoverablePlan(9)
		dataflowOn(c)
	})
	checkVectorAdd(t, m)
	if m.Stats().Retransmits == 0 {
		t.Fatal("recoverable plan injected nothing under dataflow")
	}
}

// TestDataflowDisciplineViolation: the discipline audit runs on the
// committer before commit; a violating step must stop the machine with the
// lockstep error at the lockstep step.
func TestDataflowDisciplineViolation(t *testing.T) {
	// Every lane computes address 100 (tid*0) and reads it: distinct lanes
	// on one word — a flow-common broadcast load would be exempt.
	src := `
main:
    LDI S0, 8
    SETTHICK S0
    TID V0
    MUL V2, V0, 0
    LD V1, V2+100
    HALT
`
	prog := isa.MustAssemble("erew-violation", src)
	dfCompare(t, prog, variant.SingleInstruction, func(c *Config) { c.MemDiscipline = mem.DisciplineEREW })
	_, err := runSrc(t, variant.SingleInstruction, src, func(c *Config) {
		c.MemDiscipline = mem.DisciplineEREW
		dataflowOn(c)
	})
	if !errors.Is(err, ErrDisciplineViolation) {
		t.Fatalf("want ErrDisciplineViolation, got %v", err)
	}
}

// TestDataflowCommonWritePolicy: Common-policy conflict detection happens at
// commit (committer side), another strict-mode feature.
func TestDataflowCommonWritePolicy(t *testing.T) {
	src := `
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    ST 600, V0
    HALT
`
	prog := isa.MustAssemble("common-conflict", src)
	dfCompare(t, prog, variant.SingleInstruction, func(c *Config) { c.WritePolicy = mem.Common })
}

// TestDataflowDeadlockDetection: the deadlock check scans the global flow
// list, which the committer may only do with runners parked; the zero-ready
// quiescence gate guarantees that exactly when a deadlock is possible.
func TestDataflowDeadlockDetection(t *testing.T) {
	run := func(sched Sched) error {
		cfg := Default(variant.SingleInstruction)
		cfg.Sched = sched
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(isa.MustAssemble("t", "main:\n    HALT\n")); err != nil {
			t.Fatal(err)
		}
		if err := m.Boot(); err != nil {
			t.Fatal(err)
		}
		f := m.Flow(0)
		f.State = tcf.Waiting
		f.LiveChildren = 1 // the child that will never JOIN
		_, err = m.Run()
		return err
	}
	lockErr, dfErr := run(SchedLockstep), run(SchedDataflow)
	if !errors.Is(dfErr, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", dfErr)
	}
	if dfErrStr(lockErr) != dfErrStr(dfErr) {
		t.Fatalf("deadlock errors diverged:\nlockstep %q\ndataflow %q", dfErrStr(lockErr), dfErrStr(dfErr))
	}
}

// TestDataflowCancellation: a canceled context stops the dataflow run with
// the wrapped ErrCanceled; committed state stays consistent (no panic, no
// leaked runners — the race detector covers the rest).
func TestDataflowCancellation(t *testing.T) {
	cfg := Default(variant.SingleInstruction)
	cfg.Sched = SchedDataflow
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(isa.MustAssemble("t", "main:\n    JMP main\n")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestDataflowCheckpointCrossScheduler is the checkpoint half of the
// refactor's contract: (a) a dataflow run writes byte-identical snapshots to
// the lockstep run (runners drained to the exact boundary state), and (b)
// any snapshot resumes bit-identically under either scheduler — Sched, like
// Backend, is excluded from the snapshot's config fingerprint.
func TestDataflowCheckpointCrossScheduler(t *testing.T) {
	prog := isa.MustAssemble("prodcons", dfProducerConsumerSrc)
	cfg := Default(variant.SingleInstruction)

	runWithSink := func(sched Sched) (*memSink, runSnapshot) {
		c := cfg
		c.Sched = sched
		sink := &memSink{}
		c.CheckpointEvery = 3
		c.CheckpointSink = sink
		m, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return sink, snapshotOf(m)
	}

	lockSink, want := runWithSink(SchedLockstep)
	dfSink, got := runWithSink(SchedDataflow)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("checkpointed runs diverged:\nlockstep %+v\ndataflow %+v", want.stats, got.stats)
	}
	if len(lockSink.snaps) == 0 || len(lockSink.snaps) != len(dfSink.snaps) {
		t.Fatalf("checkpoint counts diverged: lockstep %d, dataflow %d", len(lockSink.snaps), len(dfSink.snaps))
	}
	for i := range lockSink.snaps {
		if lockSink.steps[i] != dfSink.steps[i] {
			t.Fatalf("checkpoint %d at different steps: lockstep %d, dataflow %d", i, lockSink.steps[i], dfSink.steps[i])
		}
		if !bytes.Equal(lockSink.snaps[i], dfSink.snaps[i]) {
			t.Fatalf("checkpoint %d (step %d) bytes differ between schedulers", i, lockSink.steps[i])
		}
	}

	// Every snapshot resumes to the oracle result under both schedulers.
	for i, snap := range dfSink.snaps {
		for _, sched := range []Sched{SchedLockstep, SchedDataflow} {
			c := cfg
			c.Sched = sched
			r, err := Restore(bytes.NewReader(snap), c)
			if err != nil {
				t.Fatalf("snapshot %d under %v: %v", i, sched, err)
			}
			if _, err := r.Run(); err != nil {
				t.Fatalf("snapshot %d resume under %v: %v", i, sched, err)
			}
			if resumed := snapshotOf(r); !reflect.DeepEqual(want, resumed) {
				t.Fatalf("snapshot %d resumed under %v diverged from oracle", i, sched)
			}
		}
	}
}

// TestDataflowManualStepThenRun: Step() always steps lockstep; handing the
// machine to RunContext afterwards resumes the dataflow engine mid-run from
// the committed step count.
func TestDataflowManualStepThenRun(t *testing.T) {
	prog := isa.MustAssemble("prodcons", dfProducerConsumerSrc)
	oracle, _, oErr := dfRunObs(t, prog, variant.SingleInstruction, SchedLockstep, nil)
	if oErr != "" {
		t.Fatal(oErr)
	}

	cfg := Default(variant.SingleInstruction)
	cfg.Sched = SchedDataflow
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	stepN(t, m, 5)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshotOf(m); !reflect.DeepEqual(oracle, got) {
		t.Fatalf("manual-steps-then-dataflow diverged:\noracle %+v\ngot    %+v", oracle.stats, got.stats)
	}
}

// TestSchedParseAndConfig covers the Sched knob itself: parsing, rendering,
// and config validation.
func TestSchedParseAndConfig(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Sched
	}{
		{"", SchedLockstep}, {"lockstep", SchedLockstep}, {"dataflow", SchedDataflow},
	} {
		got, err := ParseSched(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSched(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSched("bogus"); err == nil {
		t.Fatal("ParseSched accepted bogus")
	}
	if SchedLockstep.String() != "lockstep" || SchedDataflow.String() != "dataflow" {
		t.Fatal("Sched.String misrenders")
	}
	cfg := Default(variant.SingleInstruction)
	cfg.Sched = Sched(99)
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid Sched accepted by New")
	}
}

// FuzzDataflowVsLockstep fuzzes scheduler equivalence over (program, variant,
// backend, parallelism): any standing program on any policy must be
// bit-identical between the two schedulers.
func FuzzDataflowVsLockstep(f *testing.F) {
	srcs := []string{vectorAddSrc, dfProducerConsumerSrc}
	for name, src := range resetPrograms {
		_ = name
		srcs = append(srcs, src)
	}
	kinds := []variant.Kind{
		variant.SingleInstruction, variant.Balanced, variant.MultiInstruction,
		variant.SingleOperation, variant.ConfigurableSingleOperation, variant.FixedThickness,
	}
	for i := range srcs {
		f.Add(i, 0, false, false)
		f.Add(i, 1, true, false)
		f.Add(i, 5, false, true)
	}
	f.Fuzz(func(t *testing.T, idx, kindIdx int, fused, parallel bool) {
		if idx < 0 {
			idx = -(idx + 1)
		}
		if kindIdx < 0 {
			kindIdx = -(kindIdx + 1)
		}
		src := srcs[idx%len(srcs)]
		kind := kinds[kindIdx%len(kinds)]
		prog, err := isa.Assemble("fuzz", src)
		if err != nil {
			t.Skip()
		}
		dfCompare(t, prog, kind, func(c *Config) {
			if fused {
				c.Backend = BackendFused
			}
			c.Parallel = parallel
		})
	})
}
