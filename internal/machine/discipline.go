package machine

import (
	"fmt"
	"sort"

	"tcfpram/internal/mem"
)

// The memory-discipline cross-checker (Config.MemDiscipline) is the runtime
// counterpart of the tcfvet static analyzer: under EREW or CREW every shared
// read and write of a lockstep step is recorded with full provenance and the
// per-address access sets are audited at the step boundary, before commit.
// A same-step conflict on one word between two distinct (flow, lane) threads
// stops the run with a *DisciplineViolation wrapping ErrDisciplineViolation.
//
// Two accesses from the same (flow, lane) never conflict: a NUMA bunch's
// LD+ST sequence and a flow-common broadcast load (every lane reads one word
// through a single flow-level fetch, recorded as lane 0) are sequential
// semantics within one thread, not concurrent references. Multioperations
// and multiprefixes are exempt by construction — concurrent combining is
// their point — and immediate (non-lockstep) plans serialize memory within
// the step, so nothing is recorded for them.

// discAcc is one recorded shared-memory access, kept word-sized-small so the
// per-step recording arena stays cheap to fill and sort.
type discAcc struct {
	addr  int64
	flow  int
	lane  int
	pc    int
	write bool
}

// DiscAccess is one side of a discipline violation: which thread (flow and
// lane) touched the word, at which program counter, and whether it wrote.
type DiscAccess struct {
	Flow  int
	Lane  int
	PC    int
	Write bool
}

// DisciplineViolation reports the first (in deterministic address/thread
// order) same-step conflict the cross-checker found. It wraps
// ErrDisciplineViolation, so errors.Is dispatches on the sentinel and
// errors.As recovers the provenance.
type DisciplineViolation struct {
	Discipline mem.Discipline
	Step       int64
	Addr       int64
	// Kind is "write-write", "read-write" or "read-read" (the last under
	// EREW only).
	Kind          string
	First, Second DiscAccess
}

func (v *DisciplineViolation) Error() string {
	return fmt.Sprintf("%s violation at step %d: %s conflict on address %d: "+
		"flow %d lane %d pc %d vs flow %d lane %d pc %d",
		v.Discipline, v.Step, v.Kind, v.Addr,
		v.First.Flow, v.First.Lane, v.First.PC,
		v.Second.Flow, v.Second.Lane, v.Second.PC)
}

func (v *DisciplineViolation) Unwrap() error { return ErrDisciplineViolation }

// checkDiscipline audits the step's recorded accesses and returns the first
// violation, or nil. The accesses are sorted by (address, writes-first,
// flow, lane, pc), so the reported pair is deterministic regardless of
// group- or lane-parallel recording order; each equal-address run is then
// scanned in O(run length).
func (m *Machine) checkDiscipline() *DisciplineViolation {
	if len(m.discAccs) == 0 {
		return nil
	}
	d := m.cfg.MemDiscipline
	accs := m.discAccs
	sort.Slice(accs, func(i, j int) bool {
		a, b := &accs[i], &accs[j]
		if a.addr != b.addr {
			return a.addr < b.addr
		}
		if a.write != b.write {
			return a.write // writes first within an address
		}
		if a.flow != b.flow {
			return a.flow < b.flow
		}
		if a.lane != b.lane {
			return a.lane < b.lane
		}
		return a.pc < b.pc
	})
	for lo := 0; lo < len(accs); {
		hi := lo + 1
		for hi < len(accs) && accs[hi].addr == accs[lo].addr {
			hi++
		}
		if v := checkAddrRun(d, accs[lo:hi]); v != nil {
			return v
		}
		lo = hi
	}
	return nil
}

// checkAddrRun checks one equal-address run of sorted accesses. Writes sort
// first, so run[0] is a write whenever the run contains one; any later
// access from a different (flow, lane) then completes a conflicting pair.
// Under EREW the first access conflicts with any differing thread even when
// nothing writes; under CREW a run without writes is always legal.
func checkAddrRun(d mem.Discipline, run []discAcc) *DisciplineViolation {
	if len(run) < 2 {
		return nil
	}
	a := run[0]
	if !a.write && d != mem.DisciplineEREW {
		return nil
	}
	for _, b := range run[1:] {
		if b.flow == a.flow && b.lane == a.lane {
			continue
		}
		kind := "read-read"
		switch {
		case a.write && b.write:
			kind = "write-write"
		case a.write || b.write:
			kind = "read-write"
		}
		return &DisciplineViolation{
			Discipline: d,
			Addr:       a.addr,
			Kind:       kind,
			First:      DiscAccess{Flow: a.flow, Lane: a.lane, PC: a.pc, Write: a.write},
			Second:     DiscAccess{Flow: b.flow, Lane: b.lane, PC: b.pc, Write: b.write},
		}
	}
	return nil
}
