package machine

import "fmt"

// Stats accumulates the measurable quantities behind Table 1 and the
// figure-level experiments.
type Stats struct {
	Steps  int64 // synchronous machine steps executed
	Cycles int64 // simulated cycles (max over groups per step, summed)

	Ops          int64 // executed operation slices (data-parallel work)
	ScalarOps    int64 // flow-level scalar operations
	InstrFetches int64 // instruction-memory fetches

	SharedReads  int64
	SharedWrites int64
	LocalReads   int64
	LocalWrites  int64
	MultiopRefs  int64 // multioperation/multiprefix participations

	// Memory-discipline cross-checker (Config.MemDiscipline): shared
	// accesses recorded for the step-boundary audit. Zero when the checker
	// is off.
	DiscReads  int64
	DiscWrites int64

	OverheadCycles int64 // pipeline fill + latency cycles (not doing ops)
	StallCycles    int64 // NUMA remote-reference stalls

	// Fault recovery (Config.FaultPlan): latency-only, results unchanged.
	FaultStallCycles int64 // retransmission backoff stalls
	Retransmits      int64 // shared references lost and resent
	Reroutes         int64 // shared references detoured around dead routes
	Failovers        int64 // memory modules failed over to their spare

	FlowsCreated     int64
	Splits           int64
	AutoSplits       int64 // OS-level fragmentations of overly thick flows
	Joins            int64
	FlowBranchCycles int64 // register-copy cost paid at splits (O(R) per child)
	TaskSwitches     int64
	TaskSwitchCycles int64

	Barriers int64

	// LaneChunks counts lane ranges executed as parallel chunks (including
	// the chunk run inline by the dispatching group). Wall-clock accounting
	// only; lane parallelism never changes results.
	LaneChunks int64

	MaxLiveFlows int

	PerGroupOps    []int64
	PerGroupCycles []int64

	// Stages attributes the run's costs to the Figure 13 pipeline stages:
	// frontend (task rotation, flow branching), operation generation
	// (fetch + execute), memory resolution (latency, stalls) and commit
	// (writeback events; commit itself costs no cycles in the model).
	Stages [NumStages]StageStats
}

// Stage identifies one stage of the Figure 13 processor pipeline for
// per-stage cost attribution.
type Stage int

const (
	// StageFrontend is the TCF storage buffer: task rotation, flow
	// branching (splits/joins) and balanced splitting of overly thick
	// flows.
	StageFrontend Stage = iota
	// StageOpGen is thickness-driven operation generation: instruction
	// fetch and operation-slice execution.
	StageOpGen
	// StageMemory is shared/local memory resolution: pipeline/latency
	// overhead, NUMA stalls and fault-recovery stalls.
	StageMemory
	// StageCommit is writeback at the step boundary: buffered write commit
	// and multioperation resolution.
	StageCommit

	// NumStages sizes per-stage arrays.
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageFrontend:
		return "frontend"
	case StageOpGen:
		return "opgen"
	case StageMemory:
		return "memory"
	case StageCommit:
		return "commit"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// StageStats is one stage's share of the run: cycles on the critical path
// and countable stage events (fetches, memory references, committed writes,
// task switches + flow branches, depending on the stage).
type StageStats struct {
	Cycles int64
	Events int64
}

// Utilization returns the fraction of group-cycles spent executing operation
// slices (the paper's processor utilization).
func (s *Stats) Utilization() float64 {
	groups := len(s.PerGroupCycles)
	if groups == 0 || s.Cycles == 0 {
		return 0
	}
	total := float64(s.Cycles) * float64(groups)
	return float64(s.Ops+s.ScalarOps) / total
}

// FetchesPerInstr returns the measured instruction fetches per completed
// operation-slice bundle — the "fetches per TCF" row of Table 1 is measured
// per flow instead (see Flow.InstrFetches).
func (s *Stats) FetchesPerInstr() float64 {
	if s.Ops+s.ScalarOps == 0 {
		return 0
	}
	return float64(s.InstrFetches) / float64(s.Ops+s.ScalarOps)
}

func (s *Stats) String() string {
	return fmt.Sprintf("steps=%d cycles=%d ops=%d(+%d scalar) fetches=%d util=%.3f shared r/w=%d/%d local r/w=%d/%d flows=%d splits=%d",
		s.Steps, s.Cycles, s.Ops, s.ScalarOps, s.InstrFetches, s.Utilization(),
		s.SharedReads, s.SharedWrites, s.LocalReads, s.LocalWrites, s.FlowsCreated, s.Splits)
}

// Output is one PRINT/PRINTS record.
type Output struct {
	Flow   int
	Step   int64
	Values []int64 // PRINT: one value per lane (or a single scalar)
	Text   string  // PRINTS
}

func (o Output) String() string {
	if o.Text != "" {
		return fmt.Sprintf("[flow %d @step %d] %s", o.Flow, o.Step, o.Text)
	}
	return fmt.Sprintf("[flow %d @step %d] %v", o.Flow, o.Step, o.Values)
}
