package machine

import (
	"errors"
	"testing"

	"tcfpram/internal/mem"
)

// TestCheckAddrRun covers the pair-finding core on hand-built runs (already
// in the sorted writes-first order checkDiscipline establishes).
func TestCheckAddrRun(t *testing.T) {
	acc := func(flow, lane int, write bool) discAcc {
		return discAcc{addr: 7, flow: flow, lane: lane, pc: 3, write: write}
	}
	cases := []struct {
		name     string
		d        mem.Discipline
		run      []discAcc
		wantKind string // "" = no violation
	}{
		{"single-access", mem.DisciplineEREW, []discAcc{acc(0, 0, true)}, ""},
		{"crew-all-reads", mem.DisciplineCREW,
			[]discAcc{acc(0, 0, false), acc(0, 1, false), acc(1, 0, false)}, ""},
		{"erew-two-reads", mem.DisciplineEREW,
			[]discAcc{acc(0, 0, false), acc(0, 1, false)}, "read-read"},
		{"two-writes", mem.DisciplineCREW,
			[]discAcc{acc(0, 0, true), acc(0, 1, true)}, "write-write"},
		{"write-then-read", mem.DisciplineCREW,
			[]discAcc{acc(0, 0, true), acc(1, 0, false)}, "read-write"},
		{"same-thread-write-read", mem.DisciplineEREW,
			[]discAcc{acc(2, 3, true), acc(2, 3, false)}, ""},
		{"same-thread-then-other", mem.DisciplineCREW,
			[]discAcc{acc(2, 3, true), acc(2, 3, false), acc(2, 4, false)}, "read-write"},
		{"same-lane-other-flow", mem.DisciplineCREW,
			[]discAcc{acc(0, 1, true), acc(1, 1, true)}, "write-write"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := checkAddrRun(tc.d, tc.run)
			if tc.wantKind == "" {
				if v != nil {
					t.Fatalf("unexpected violation: %v", v)
				}
				return
			}
			if v == nil {
				t.Fatalf("want %s violation, got none", tc.wantKind)
			}
			if v.Kind != tc.wantKind {
				t.Fatalf("kind = %q, want %q", v.Kind, tc.wantKind)
			}
			if v.Addr != 7 {
				t.Fatalf("addr = %d, want 7", v.Addr)
			}
			if v.First.Flow == v.Second.Flow && v.First.Lane == v.Second.Lane {
				t.Fatalf("violation pairs a thread with itself: %v", v)
			}
		})
	}
}

// TestCheckDisciplineOrdering feeds a shuffled arena and checks that the
// reported pair is the deterministic lowest-address, writes-first one.
func TestCheckDisciplineOrdering(t *testing.T) {
	m := &Machine{cfg: Config{MemDiscipline: mem.DisciplineCREW}}
	m.discAccs = []discAcc{
		{addr: 50, flow: 3, lane: 1, pc: 9, write: true}, // conflict at 50...
		{addr: 9, flow: 0, lane: 0, pc: 2, write: false}, // lone read, fine
		{addr: 50, flow: 1, lane: 0, pc: 9, write: true}, // ...with this write
		{addr: 12, flow: 2, lane: 0, pc: 4, write: true}, // lone write, fine
	}
	v := m.checkDiscipline()
	if v == nil {
		t.Fatal("want a violation, got none")
	}
	if v.Addr != 50 || v.Kind != "write-write" {
		t.Fatalf("got %v, want write-write at address 50", v)
	}
	// Sorted order puts flow 1 before flow 3.
	if v.First.Flow != 1 || v.Second.Flow != 3 {
		t.Fatalf("pair order = flow %d vs flow %d, want 1 vs 3", v.First.Flow, v.Second.Flow)
	}
	if !errors.Is(v, ErrDisciplineViolation) {
		t.Fatalf("violation does not wrap ErrDisciplineViolation: %v", v)
	}
}

// TestCheckDisciplineEmpty is the hot-path guard: no recorded accesses means
// no work and no violation.
func TestCheckDisciplineEmpty(t *testing.T) {
	m := &Machine{cfg: Config{MemDiscipline: mem.DisciplineEREW}}
	if v := m.checkDiscipline(); v != nil {
		t.Fatalf("empty arena produced %v", v)
	}
}
