// Package machine implements the extended PRAM-NUMA machine of Section 3: P
// processor groups of Tp TCF processor slots, a shared memory with PRAM step
// semantics, per-group local memories, a distance-aware latency model, and a
// step engine realizing the six execution variants of Section 3.2.
//
// The physical organization follows Figure 5/13: each group is one physical
// multithreaded pipeline whose TCF storage buffer holds up to Tp resident
// flows; within a step the pipeline executes the resident TCFs' operation
// slices one by one (the single-processor latency-hiding view of Figure 6).
package machine

import (
	"fmt"

	"tcfpram/internal/fault"
	"tcfpram/internal/mem"
	"tcfpram/internal/topology"
	"tcfpram/internal/variant"
)

// Backend selects the step-engine execution backend. Both backends are
// bit-identical in every architectural respect — outputs, statistics, fault
// decisions, discipline verdicts, checkpoints — and differ only in wall
// clock; the interpreter is the reference (oracle) implementation.
type Backend int

const (
	// BackendInterp is the reference interpreter: per-operation dispatch
	// through the generic exec switch.
	BackendInterp Backend = iota
	// BackendFused precompiles the program (internal/fuse) into per-run
	// fused closures with operand shapes resolved at load time; memory and
	// fault machinery are touched only at run boundaries.
	BackendFused
)

func (b Backend) String() string {
	switch b {
	case BackendInterp:
		return "interp"
	case BackendFused:
		return "fused"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend parses a backend name ("interp" or "fused").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "interp", "":
		return BackendInterp, nil
	case "fused":
		return BackendFused, nil
	}
	return 0, fmt.Errorf("machine: unknown backend %q (want interp or fused)", s)
}

// Config describes a machine instance.
type Config struct {
	// Variant selects the execution model (Section 3.2).
	Variant variant.Kind

	// Backend selects the execution backend (BackendInterp by default; see
	// Backend). Results are bit-identical across backends.
	Backend Backend

	// Sched selects the step scheduling discipline (SchedLockstep by
	// default; see Sched). Results are bit-identical across schedulers:
	// SchedDataflow overlaps the groups' step generation across step
	// boundaries but commits in the exact lockstep order.
	Sched Sched

	// Groups is P, the number of processor groups (physical pipelines).
	Groups int
	// ProcsPerGroup is Tp, the TCF processor slots per group (the capacity
	// of the TCF storage buffer; also the thread count per processor in
	// the thread-based variants).
	ProcsPerGroup int

	// SharedWords sizes the shared memory; LocalWords sizes each group's
	// local memory block.
	SharedWords int
	LocalWords  int

	// Topology is the distance metric between groups and memory blocks.
	// Its Size must equal Groups. Nil defaults to a ring.
	Topology topology.Topology

	// WritePolicy resolves concurrent shared-memory writes.
	WritePolicy mem.Policy

	// PipelineDepth is the per-step pipeline fill/drain overhead in
	// cycles.
	PipelineDepth int
	// MemLatencyBase is the base shared-memory round-trip latency in
	// cycles; the distance to the referenced module is added on top.
	MemLatencyBase int

	// BalancedBound is b, the operation budget per group per step in the
	// Balanced variant.
	BalancedBound int

	// MultiInstrWindow is the maximum instructions a flow executes per
	// step in the MultiInstruction variant.
	MultiInstrWindow int

	// VectorWidth is the fixed thickness of the FixedThickness variant
	// (defaults to ProcsPerGroup).
	VectorWidth int

	// TimeSliceSteps enables preemptive time-shared multitasking: every
	// quantum of steps, each group with pending flows demotes its
	// longest-resident ready flow to the back of the pending queue and
	// promotes the next pending task. Rotating the TCF storage buffer is
	// free on the TCF variants (Table 1's task-switch row); the
	// thread-based variants pay a full Tp-context switch per rotation.
	// 0 disables preemption (tasks rotate only when flows finish).
	TimeSliceSteps int64

	// AutoSplitThreshold enables OS-level splitting of overly thick flows
	// (Section 3.3): when a SETTHICK raises a flow's thickness above the
	// threshold on a control-parallel variant, the machine fragments the
	// flow into threshold-sized pieces allocated across the least-loaded
	// groups. 0 disables splitting.
	AutoSplitThreshold int

	// MaxSteps aborts runaway programs.
	MaxSteps int64

	// MaxThickness bounds the thickness any single flow may reach through
	// SETTHICK or a SPLIT arm. A program exceeding it stops with an error
	// wrapping ErrThicknessLimit — the per-tenant thickness quota of the
	// execution server. 0 disables the bound.
	MaxThickness int

	// WatchdogSteps enables the livelock watchdog: once no observable work
	// (memory traffic, flow creations/completions, barriers, outputs)
	// happens for this many consecutive steps, the watchdog starts cycle
	// detection over the architectural flow state, and a run that provably
	// revisits an identical state stops with an error wrapping ErrDeadlock
	// instead of silently spinning to MaxSteps. Quiet computation that
	// genuinely evolves — register-only arithmetic between two memory
	// operations, however long — is never killed, so the window trades
	// only detection latency, not correctness. 0 disables.
	WatchdogSteps int64

	// MemDiscipline enables the runtime memory-discipline cross-checker:
	// under EREW or CREW every shared read/write of a lockstep step is
	// recorded and the per-address access sets are audited at the step
	// boundary, before commit. A same-step conflict on one word between two
	// distinct (flow, lane) threads stops the run with an error wrapping
	// ErrDisciplineViolation that carries step/PC/address provenance
	// (errors.As against *DisciplineViolation). Off and CRCW record nothing
	// and cost nothing; the checker applies to lockstep plans only —
	// immediate XMT-style semantics serialize memory within the step.
	MemDiscipline mem.Discipline

	// FaultPlan injects deterministic faults (reference loss with
	// retransmission stalls, group→module route detours, memory-module
	// fail-stop with spare failover). Faults change cycle counts only;
	// results are identical to the fault-free run unless the plan is
	// unrecoverable, which surfaces as ErrFaultUnrecoverable. Nil runs
	// fault-free.
	FaultPlan *fault.Plan

	// Parallel executes groups on separate goroutines within a step.
	// Results are identical either way; this only changes wall-clock.
	Parallel bool

	// LaneParallelThreshold gates lane-level parallelism inside a group:
	// when Parallel is set and a sliceable thick instruction spans at least
	// this many lanes, the lane range is partitioned across the worker pool
	// with per-chunk buffers merged in lane order, keeping results
	// bit-identical to serial execution. 0 defaults to 256; negative
	// disables lane parallelism (groups still parallelize).
	LaneParallelThreshold int

	// TraceEnabled records per-slice execution for the trace package.
	TraceEnabled bool

	// StageObserver, when non-nil, receives each step's per-stage cost
	// attribution (Figure 13 stages) right after the step commits. The
	// callback runs on the stepping goroutine; observers must not call back
	// into the machine.
	StageObserver StageObserver

	// CheckpointEvery, when positive and CheckpointSink is non-nil, makes
	// RunContext emit a complete machine snapshot (Machine.Snapshot) every
	// CheckpointEvery steps, at the step boundary. Checkpointing never
	// changes results: restore-then-run is bit-identical to the
	// uninterrupted run. Disabled checkpointing costs nothing — the step
	// loop stays allocation-free. A sink error stops the run.
	CheckpointEvery int64

	// CheckpointSink receives the periodic snapshots (checkpoint.FileSink
	// writes them atomically to disk). Like StageObserver, the callback runs
	// on the stepping goroutine between steps.
	CheckpointSink CheckpointSink
}

// StageObserver receives per-step, per-stage cost deltas from the staged
// engine (see Stats.Stages for the cumulative view).
type StageObserver interface {
	ObserveStage(step int64, stage Stage, d StageStats)
}

// Default returns a small, fully specified configuration for the given
// variant: P=4 groups, Tp=4 slots, 64Ki shared words, 4Ki local words,
// ring topology, arbitrary CRCW.
func Default(kind variant.Kind) Config {
	groups := 4
	if kind == variant.FixedThickness {
		groups = 1 // the vector/SIMD reduction limits the machine to one processor
	}
	return Config{
		Variant:          kind,
		Groups:           groups,
		ProcsPerGroup:    4,
		SharedWords:      1 << 16,
		LocalWords:       1 << 12,
		WritePolicy:      mem.Arbitrary,
		PipelineDepth:    4,
		MemLatencyBase:   8,
		BalancedBound:    4,
		MultiInstrWindow: 8,
		MaxSteps:         1 << 22,
	}
}

// normalize fills defaults and validates; it returns the effective config.
func (c Config) normalize() (Config, error) {
	if !c.Variant.Valid() {
		return c, fmt.Errorf("machine: invalid variant %v", c.Variant)
	}
	if c.Groups <= 0 || c.ProcsPerGroup <= 0 {
		return c, fmt.Errorf("machine: need positive Groups (%d) and ProcsPerGroup (%d)", c.Groups, c.ProcsPerGroup)
	}
	if c.Variant == variant.FixedThickness && c.Groups != 1 {
		// The paper's vector/SIMD reduction limits the machine to one
		// processor with a fixed-width datapath.
		return c, fmt.Errorf("machine: fixed-thickness variant requires exactly one group, got %d", c.Groups)
	}
	if c.SharedWords <= 0 {
		c.SharedWords = 1 << 16
	}
	if c.LocalWords <= 0 {
		c.LocalWords = 1 << 12
	}
	if c.Topology == nil {
		ring, err := topology.NewRing(c.Groups)
		if err != nil {
			return c, fmt.Errorf("machine: %w", err)
		}
		c.Topology = ring
	}
	if c.Topology.Size() != c.Groups {
		return c, fmt.Errorf("machine: topology size %d != groups %d", c.Topology.Size(), c.Groups)
	}
	if c.PipelineDepth < 0 || c.MemLatencyBase < 0 {
		return c, fmt.Errorf("machine: negative latency parameters")
	}
	if c.PipelineDepth == 0 {
		c.PipelineDepth = 4
	}
	if c.BalancedBound <= 0 {
		c.BalancedBound = 4
	}
	if c.MultiInstrWindow <= 0 {
		c.MultiInstrWindow = 8
	}
	if c.VectorWidth <= 0 {
		c.VectorWidth = c.ProcsPerGroup
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 1 << 22
	}
	if c.LaneParallelThreshold == 0 {
		c.LaneParallelThreshold = 256
	}
	if c.WatchdogSteps < 0 {
		return c, fmt.Errorf("machine: negative WatchdogSteps %d", c.WatchdogSteps)
	}
	if c.MaxThickness < 0 {
		return c, fmt.Errorf("machine: negative MaxThickness %d", c.MaxThickness)
	}
	if c.CheckpointEvery < 0 {
		return c, fmt.Errorf("machine: negative CheckpointEvery %d", c.CheckpointEvery)
	}
	if c.FaultPlan != nil {
		if err := c.FaultPlan.Validate(); err != nil {
			return c, fmt.Errorf("machine: %w", err)
		}
	}
	if c.Backend != BackendInterp && c.Backend != BackendFused {
		return c, fmt.Errorf("machine: unknown backend %d", int(c.Backend))
	}
	if c.Sched != SchedLockstep && c.Sched != SchedDataflow {
		return c, fmt.Errorf("machine: unknown scheduler %d", int(c.Sched))
	}
	return c, nil
}

// TotalProcessors returns P*Tp, the number of TCF processor slots.
func (c Config) TotalProcessors() int { return c.Groups * c.ProcsPerGroup }

// machineShape projects the configuration onto the slice a variant.Policy
// consults. Call on a normalized config.
func (c Config) machineShape() variant.MachineShape {
	return variant.MachineShape{
		Groups:           c.Groups,
		ProcsPerGroup:    c.ProcsPerGroup,
		BalancedBound:    c.BalancedBound,
		MultiInstrWindow: c.MultiInstrWindow,
		VectorWidth:      c.VectorWidth,
	}
}

// PolicyShape resolves the variant's registered execution policy and
// returns the step-execution shape it selects for this configuration
// (after normalization).
func (c Config) PolicyShape() (variant.StepShape, error) {
	n, err := c.normalize()
	if err != nil {
		return variant.StepShape{}, err
	}
	pol, err := variant.PolicyFor(n.Variant)
	if err != nil {
		return variant.StepShape{}, fmt.Errorf("machine: %w", err)
	}
	return pol.Shape(n.machineShape()), nil
}
