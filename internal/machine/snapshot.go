package machine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"tcfpram/internal/checkpoint"
	"tcfpram/internal/fuse"
	"tcfpram/internal/isa"
	"tcfpram/internal/tcf"
)

// Snapshot container identity. Bump snapVersion whenever the section layout
// changes; Restore rejects unknown versions instead of guessing.
const (
	snapMagic   = "TCFSNAP\x00"
	snapVersion = 1
)

// CheckpointSink receives periodic machine snapshots from RunContext (see
// Config.CheckpointEvery). The snapshot callback streams the complete state
// into w; the sink decides where it goes (checkpoint.FileSink writes it
// atomically to disk). A sink error stops the run.
type CheckpointSink interface {
	Checkpoint(step int64, snapshot func(w io.Writer) error) error
}

// Snapshot writes a versioned, checksummed snapshot of the complete machine
// state to w. It may only be taken at a step boundary (between Step calls —
// where the strict step synchrony of the model makes the state well-defined:
// no buffered writes, no combiner traffic, no half-executed instruction) and
// only while the machine has not errored.
//
// The snapshot is self-contained: it embeds the loaded program (TCFB
// encoding), the shared-memory image, local memories, every flow with its
// register state and call stack, the storage buffers with their rotation
// cursors, the statistics, the accumulated outputs, and a fingerprint of the
// behavior-relevant configuration (including the fault plan and the
// topology's distance table). Restore on a machine built from an equal
// Config, then running to completion, is bit-identical to the uninterrupted
// run: same outputs, same Stats, same fault decisions — the seeded
// fault.Plan is pure, so restoring Stats.Steps restores the fault cursor,
// and per-step reference sequence numbers start from zero at every boundary.
//
// Not captured: the step trace (Trace records accumulated so far) and the
// StageObserver/CheckpointSink wiring — observational state that never feeds
// back into results.
func (m *Machine) Snapshot(w io.Writer) error {
	if m.runErr != nil {
		return fmt.Errorf("machine: snapshot of a failed machine: %w", m.runErr)
	}
	for _, c := range m.combiners {
		if c.Len() != 0 {
			return fmt.Errorf("machine: snapshot with unresolved multioperation traffic (not at a step boundary)")
		}
	}

	e := checkpoint.NewEncoder(w, snapMagic, snapVersion)

	e.Section("config")
	c := m.cfg
	e.Int(int(c.Variant))
	e.Int(c.Groups)
	e.Int(c.ProcsPerGroup)
	e.Int(c.SharedWords)
	e.Int(c.LocalWords)
	e.Int(int(c.WritePolicy))
	e.Int(c.PipelineDepth)
	e.Int(c.MemLatencyBase)
	e.Int(c.BalancedBound)
	e.Int(c.MultiInstrWindow)
	e.Int(c.VectorWidth)
	e.Varint(c.TimeSliceSteps)
	e.Int(c.AutoSplitThreshold)
	e.Varint(c.MaxSteps)
	e.Int(c.MaxThickness)
	e.Varint(c.WatchdogSteps)
	e.Int(int(c.MemDiscipline))
	e.Uvarint(distHash(m.dist))
	e.Uvarint(c.FaultPlan.Fingerprint())

	e.Section("program")
	if m.prog != nil {
		e.Bool(true)
		e.Bytes(isa.Encode(m.prog))
	} else {
		e.Bool(false)
	}

	e.Section("shared")
	if err := m.shared.EncodeTo(e); err != nil {
		return err
	}

	e.Section("locals")
	for _, g := range m.groups {
		if err := g.Local.EncodeTo(e); err != nil {
			return err
		}
	}

	e.Section("flows")
	flows := m.Flows()
	e.Int(len(flows))
	for _, f := range flows {
		f.EncodeTo(e)
	}
	e.Int(m.nextFlowID)

	e.Section("bufs")
	for _, g := range m.groups {
		e.Ints(flowIDs(g.Buf.Resident))
		e.Ints(flowIDs(g.Buf.Pending))
		e.Int(g.Buf.rrStart)
	}

	e.Section("stats")
	encodeStats(e, &m.stats)

	e.Section("output")
	e.Int(len(m.output))
	for _, o := range m.output {
		e.Int(o.Flow)
		e.Varint(o.Step)
		e.Int64s(o.Values)
		e.String(o.Text)
	}

	return e.Close()
}

// Restore builds a machine from cfg and loads a snapshot previously written
// by Snapshot into it. cfg must describe the same machine the snapshot was
// taken on: every behavior-relevant field (shape, variant, latency model,
// limits, discipline, fault plan, topology distances) is validated against
// the snapshot, and a mismatch fails with an error naming the field — a
// resumed run on a different machine would silently diverge otherwise.
// Result-neutral fields (Parallel, LaneParallelThreshold, TraceEnabled,
// StageObserver, CheckpointEvery/CheckpointSink) are free to differ.
//
// The snapshot embeds the program, so no separate load is needed; the
// restored machine continues with Step/RunContext exactly where the
// snapshot was taken.
func Restore(r io.Reader, cfg Config) (*Machine, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	d, err := checkpoint.NewDecoder(r, snapMagic)
	if err != nil {
		return nil, err
	}
	if v := d.Version(); v != snapVersion {
		return nil, fmt.Errorf("machine: snapshot format version %d, this build reads %d", v, snapVersion)
	}

	d.Section("config")
	c := m.cfg
	for _, f := range []struct {
		name   string
		stored int64
		live   int64
	}{
		{"Variant", int64(d.Int()), int64(c.Variant)},
		{"Groups", int64(d.Int()), int64(c.Groups)},
		{"ProcsPerGroup", int64(d.Int()), int64(c.ProcsPerGroup)},
		{"SharedWords", int64(d.Int()), int64(c.SharedWords)},
		{"LocalWords", int64(d.Int()), int64(c.LocalWords)},
		{"WritePolicy", int64(d.Int()), int64(c.WritePolicy)},
		{"PipelineDepth", int64(d.Int()), int64(c.PipelineDepth)},
		{"MemLatencyBase", int64(d.Int()), int64(c.MemLatencyBase)},
		{"BalancedBound", int64(d.Int()), int64(c.BalancedBound)},
		{"MultiInstrWindow", int64(d.Int()), int64(c.MultiInstrWindow)},
		{"VectorWidth", int64(d.Int()), int64(c.VectorWidth)},
		{"TimeSliceSteps", d.Varint(), c.TimeSliceSteps},
		{"AutoSplitThreshold", int64(d.Int()), int64(c.AutoSplitThreshold)},
		{"MaxSteps", d.Varint(), c.MaxSteps},
		{"MaxThickness", int64(d.Int()), int64(c.MaxThickness)},
		{"WatchdogSteps", d.Varint(), c.WatchdogSteps},
		{"MemDiscipline", int64(d.Int()), int64(c.MemDiscipline)},
		{"Topology distances", int64(d.Uvarint()), int64(distHash(m.dist))},
		{"FaultPlan", int64(d.Uvarint()), int64(c.FaultPlan.Fingerprint())},
	} {
		if err := d.Err(); err != nil {
			return nil, err
		}
		if f.stored != f.live {
			return nil, fmt.Errorf("machine: snapshot %s mismatch: snapshot was taken with %d, restore config has %d", f.name, f.stored, f.live)
		}
	}

	d.Section("program")
	if d.Bool() {
		data := d.Bytes()
		if err := d.Err(); err != nil {
			return nil, err
		}
		p, err := isa.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("machine: snapshot program: %w", err)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("machine: snapshot program: %w", err)
		}
		// Set directly rather than through LoadProgram: the shared image in
		// the snapshot is the post-load state, so re-applying the program's
		// data segments would clobber whatever the run wrote over them.
		m.prog = p
		// Backend is deliberately absent from the snapshot fingerprint: both
		// backends are bit-identical, so a checkpoint taken under one resumes
		// under the other (and the chaos cross-backend differential proves
		// the resumed run identical either way).
		if m.cfg.Backend == BackendFused {
			m.fprog = fuse.Cached(p)
		}
	}

	d.Section("shared")
	if err := m.shared.DecodeFrom(d); err != nil {
		return nil, err
	}

	d.Section("locals")
	for _, g := range m.groups {
		if err := g.Local.DecodeFrom(d); err != nil {
			return nil, err
		}
	}

	d.Section("flows")
	nFlows := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nFlows < 0 || nFlows > 1<<24 {
		return nil, fmt.Errorf("machine: snapshot flow count %d out of range", nFlows)
	}
	parents := make(map[int]int, nFlows)
	for i := 0; i < nFlows; i++ {
		f, parent, err := tcf.DecodeFlow(d)
		if err != nil {
			return nil, err
		}
		if _, dup := m.flows[f.ID]; dup {
			return nil, fmt.Errorf("machine: snapshot has duplicate flow id %d", f.ID)
		}
		if f.Home < 0 || f.Home >= len(m.groups) {
			return nil, fmt.Errorf("machine: snapshot flow %d home group %d outside [0,%d)", f.ID, f.Home, len(m.groups))
		}
		m.addFlow(f)
		m.homeGroup[f.ID] = f.Home
		if parent >= 0 {
			parents[f.ID] = parent
		}
	}
	m.nextFlowID = d.Int()
	//detlint:ignore each iteration links a distinct flow's parent, so order cannot be observed
	for id, pid := range parents {
		p, ok := m.flows[pid]
		if !ok {
			return nil, fmt.Errorf("machine: snapshot flow %d references missing parent %d", id, pid)
		}
		m.flows[id].Parent = p
	}

	d.Section("bufs")
	for _, g := range m.groups {
		var err error
		if g.Buf.Resident, err = m.flowsByID(d.Ints(), g.Buf.Resident); err != nil {
			return nil, err
		}
		if g.Buf.Pending, err = m.flowsByID(d.Ints(), g.Buf.Pending); err != nil {
			return nil, err
		}
		g.Buf.rrStart = d.Int()
	}

	d.Section("stats")
	if err := decodeStats(d, &m.stats); err != nil {
		return nil, err
	}

	d.Section("output")
	nOut := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nOut < 0 || nOut > 1<<26 {
		return nil, fmt.Errorf("machine: snapshot output count %d out of range", nOut)
	}
	for i := 0; i < nOut; i++ {
		o := Output{Flow: d.Int(), Step: d.Varint(), Values: d.Int64s(), Text: d.String()}
		m.output = append(m.output, o)
	}

	if err := d.Close(); err != nil {
		return nil, err
	}
	return m, nil
}

// flowsByID resolves ids into the given (recycled) flow slice.
func (m *Machine) flowsByID(ids []int, into []*tcf.Flow) ([]*tcf.Flow, error) {
	into = into[:0]
	for _, id := range ids {
		f, ok := m.flows[id]
		if !ok {
			return nil, fmt.Errorf("machine: snapshot storage buffer references missing flow %d", id)
		}
		into = append(into, f)
	}
	return into, nil
}

func flowIDs(fs []*tcf.Flow) []int {
	ids := make([]int, len(fs))
	for i, f := range fs {
		ids[i] = f.ID
	}
	return ids
}

// distHash fingerprints the flattened group×module distance table — the
// observable projection of the Topology interface, which cannot itself be
// serialized.
func distHash(dist []int) uint64 {
	h := fnv.New64a()
	var buf [binary.MaxVarintLen64]byte
	for _, d := range dist {
		n := binary.PutVarint(buf[:], int64(d))
		h.Write(buf[:n])
	}
	return h.Sum64()
}

// encodeStats writes every Stats field in declaration order.
func encodeStats(e *checkpoint.Encoder, s *Stats) {
	e.Int64s([]int64{
		s.Steps, s.Cycles, s.Ops, s.ScalarOps, s.InstrFetches,
		s.SharedReads, s.SharedWrites, s.LocalReads, s.LocalWrites, s.MultiopRefs,
		s.DiscReads, s.DiscWrites, s.OverheadCycles, s.StallCycles,
		s.FaultStallCycles, s.Retransmits, s.Reroutes, s.Failovers,
		s.FlowsCreated, s.Splits, s.AutoSplits, s.Joins, s.FlowBranchCycles,
		s.TaskSwitches, s.TaskSwitchCycles, s.Barriers, s.LaneChunks,
		int64(s.MaxLiveFlows),
	})
	e.Int64s(s.PerGroupOps)
	e.Int64s(s.PerGroupCycles)
	for i := range s.Stages {
		e.Varint(s.Stages[i].Cycles)
		e.Varint(s.Stages[i].Events)
	}
}

// decodeStats restores the fields written by encodeStats, preserving the
// machine's pre-allocated per-group slices.
func decodeStats(d *checkpoint.Decoder, s *Stats) error {
	vs := d.Int64s()
	if err := d.Err(); err != nil {
		return err
	}
	if len(vs) != 28 {
		return fmt.Errorf("machine: snapshot stats hold %d scalar counters, want 28", len(vs))
	}
	s.Steps, s.Cycles, s.Ops, s.ScalarOps, s.InstrFetches = vs[0], vs[1], vs[2], vs[3], vs[4]
	s.SharedReads, s.SharedWrites, s.LocalReads, s.LocalWrites, s.MultiopRefs = vs[5], vs[6], vs[7], vs[8], vs[9]
	s.DiscReads, s.DiscWrites, s.OverheadCycles, s.StallCycles = vs[10], vs[11], vs[12], vs[13]
	s.FaultStallCycles, s.Retransmits, s.Reroutes, s.Failovers = vs[14], vs[15], vs[16], vs[17]
	s.FlowsCreated, s.Splits, s.AutoSplits, s.Joins, s.FlowBranchCycles = vs[18], vs[19], vs[20], vs[21], vs[22]
	s.TaskSwitches, s.TaskSwitchCycles, s.Barriers, s.LaneChunks = vs[23], vs[24], vs[25], vs[26]
	s.MaxLiveFlows = int(vs[27])
	for _, tgt := range []*[]int64{&s.PerGroupOps, &s.PerGroupCycles} {
		got := d.Int64s()
		if err := d.Err(); err != nil {
			return err
		}
		if len(got) != len(*tgt) {
			return fmt.Errorf("machine: snapshot per-group stats length %d, want %d", len(got), len(*tgt))
		}
		copy(*tgt, got)
	}
	for i := range s.Stages {
		s.Stages[i].Cycles = d.Varint()
		s.Stages[i].Events = d.Varint()
	}
	return d.Err()
}
