package machine

// Lane-parallel determinism: partitioning a thick instruction's lanes across
// the worker pool must be unobservable — outputs, the memory image and every
// statistic except LaneChunks are bit-identical to serial execution, with
// and without fault injection (chunked refSeq bases must reproduce the exact
// per-reference fault decisions).

import (
	"reflect"
	"testing"

	"tcfpram/internal/fault"
	"tcfpram/internal/isa"
	"tcfpram/internal/variant"
)

const (
	laneParThickness = 513 // odd: the last chunk is ragged
	laneParInputBase = 8000
	laneParOutBase   = 2000
	laneParPrefixOut = 4000
	laneParAuxAddr   = 900
)

// laneParProgram exercises every lane-parallel op class at a thickness well
// above the test threshold: per-lane loads, vector ALU, a multiprefix, two
// stores, a reduction and a scalar print.
func laneParProgram(t *testing.T) *isa.Program {
	t.Helper()
	input := make([]int64, laneParThickness)
	for i := range input {
		input[i] = int64(i*7%23 - 11)
	}
	b := isa.NewBuilder("lanepar")
	b.Label("main")
	b.Data(laneParInputBase, input...)
	b.SetThickImm(laneParThickness)
	b.Id(isa.TID, isa.V(0))
	b.Ld(isa.V(1), isa.V(0), laneParInputBase)
	b.ALUI(isa.MUL, isa.V(2), isa.V(1), 3)
	b.ALU(isa.ADD, isa.V(2), isa.V(2), isa.V(0))
	b.Prefix(isa.MPADD, isa.V(3), isa.RegNone, laneParAuxAddr, isa.V(1))
	b.St(isa.V(0), laneParOutBase, isa.V(2))
	b.St(isa.V(0), laneParPrefixOut, isa.V(3))
	b.Reduce(isa.RADD, isa.S(1), isa.V(2))
	b.Print(isa.S(1))
	b.Halt()
	return b.MustBuild()
}

// runLanePar executes the program under one configuration and returns the
// observable result plus statistics (LaneChunks zeroed — it is the one
// legitimate difference between serial and lane-parallel runs).
func runLanePar(t *testing.T, tweak func(*Config)) ([]Output, []int64, Stats) {
	t.Helper()
	cfg := Default(variant.SingleInstruction)
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(laneParProgram(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := *m.Stats()
	st.LaneChunks = 0
	return m.Outputs(), m.Shared().Snapshot(0, 16384), st
}

func TestLaneParallelBitIdentical(t *testing.T) {
	plans := []*fault.Plan{nil, fault.Random(1, 4, 4), fault.Random(2, 4, 4)}
	for pi, plan := range plans {
		plan := plan
		serialOut, serialMem, serialStats := runLanePar(t, func(c *Config) { c.FaultPlan = plan })
		parOut, parMem, parStats := runLanePar(t, func(c *Config) {
			c.FaultPlan = plan
			c.Parallel = true
			c.LaneParallelThreshold = 64
		})
		if !reflect.DeepEqual(serialOut, parOut) {
			t.Fatalf("plan %d: outputs diverged:\nserial   %v\nparallel %v", pi, serialOut, parOut)
		}
		if !reflect.DeepEqual(serialMem, parMem) {
			t.Fatalf("plan %d: memory image diverged", pi)
		}
		if !reflect.DeepEqual(serialStats, parStats) {
			t.Fatalf("plan %d: stats diverged:\nserial   %+v\nparallel %+v", pi, serialStats, parStats)
		}
	}
}

// TestLaneParallelActuallyChunks guards the test above against silently
// degenerating to the serial path.
func TestLaneParallelActuallyChunks(t *testing.T) {
	cfg := Default(variant.SingleInstruction)
	cfg.Parallel = true
	cfg.LaneParallelThreshold = 64
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(laneParProgram(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().LaneChunks == 0 {
		t.Fatal("no lane chunks recorded; the parallel path never engaged")
	}
}

// TestStepLoopSteadyStateAllocs pins the tentpole property: with tracing
// disabled, the steady-state step loop performs zero heap allocations per
// step once the arenas are warm.
func TestStepLoopSteadyStateAllocs(t *testing.T) {
	b := isa.NewBuilder("steady")
	b.Label("main")
	b.SetThickImm(64)
	b.Id(isa.TID, isa.V(0))
	b.Ldi(isa.S(1), 1<<30)
	b.Label("loop")
	b.ALUI(isa.ADD, isa.V(1), isa.V(1), 1)
	b.St(isa.V(0), laneParOutBase, isa.V(1))
	b.ALUI(isa.SUB, isa.S(1), isa.S(1), 1)
	b.Branch(isa.BNEZ, isa.S(1), "loop")
	b.Halt()
	m, err := New(Default(variant.SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ { // warm the arenas
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.1 {
		t.Fatalf("steady-state step loop allocates %.2f objects/step, want 0", allocs)
	}
}
