package machine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tcfpram/internal/isa"

	"tcfpram/internal/mem"
	"tcfpram/internal/topology"
	"tcfpram/internal/variant"
)

func TestPriorityPolicyAtMachineLevel(t *testing.T) {
	src := `
main:
    LDI S0, 6
    SETTHICK S0
    TID V0
    ADD V1, V0, 10
    ST 800, V1
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, func(c *Config) {
		c.WritePolicy = mem.Priority
	})
	// Lowest implicit thread wins under PRIORITY CRCW.
	if got := m.Shared().Peek(800); got != 10 {
		t.Fatalf("priority winner = %d, want 10", got)
	}
}

func TestNUMARemoteReferenceStalls(t *testing.T) {
	// A NUMA-mode flow referencing shared memory pays base+distance stall
	// cycles inline; a local-memory version pays none.
	remote := `
main:
    NUMA 4
    LD S0, 4095
    LD S1, 4094
    PRAM
    HALT
`
	local := `
main:
    NUMA 4
    LDL S0, 95
    LDL S1, 94
    PRAM
    HALT
`
	mr := mustRun(t, variant.SingleInstruction, remote, nil)
	ml := mustRun(t, variant.SingleInstruction, local, nil)
	if mr.Stats().StallCycles == 0 {
		t.Fatal("remote NUMA references must stall")
	}
	if ml.Stats().StallCycles != 0 {
		t.Fatalf("local NUMA references must not stall, got %d", ml.Stats().StallCycles)
	}
	if mr.Stats().Cycles <= ml.Stats().Cycles {
		t.Fatalf("remote (%d cycles) should cost more than local (%d)", mr.Stats().Cycles, ml.Stats().Cycles)
	}
}

func TestDistanceAffectsOverhead(t *testing.T) {
	// PRAM-mode steps that touch a distant module carry a larger latency
	// overhead than local-module steps: compare uniform distance 0 vs 16.
	src := `
main:
    LDI S0, 16
    SETTHICK S0
    TID V0
    LD V1, V0+1024
    LD V2, V1+2048
    ST V0+4096, V2
    HALT
`
	run := func(d int) int64 {
		m := mustRun(t, variant.SingleInstruction, src, func(c *Config) {
			c.Topology = topology.Must(topology.NewUniform(4, d))
		})
		return m.Stats().Cycles
	}
	near, far := run(0), run(16)
	if far <= near {
		t.Fatalf("distance 16 (%d cycles) should exceed distance 0 (%d)", far, near)
	}
}

func TestLocalMemoryInPRAMMode(t *testing.T) {
	// Thick local-memory access: each lane reads its own local word.
	src := `
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    LDL V1, V0+0
    MUL V1, V1, 2
    STL V0+10, V1
    HALT
`
	cfg := Default(variant.SingleInstruction)
	m, _ := New(cfg)
	m.LoadProgram(mustAsm(t, src))
	m.LocalMem(0).Load(0, []int64{5, 6, 7, 8})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if got := m.LocalMem(0).Peek(10 + i); got != (5+i)*2 {
			t.Fatalf("local[%d] = %d", 10+i, got)
		}
	}
	if m.Stats().LocalReads != 4 || m.Stats().LocalWrites != 4 {
		t.Fatalf("local counters: %d/%d", m.Stats().LocalReads, m.Stats().LocalWrites)
	}
}

func TestVectorPrint(t *testing.T) {
	src := `
main:
    LDI S0, 5
    SETTHICK S0
    TID V0
    MUL V0, V0, 3
    PRINT V0
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	outs := m.Outputs()
	if len(outs) != 1 || len(outs[0].Values) != 5 {
		t.Fatalf("vector print: %v", outs)
	}
	for i, v := range outs[0].Values {
		if v != int64(i*3) {
			t.Fatalf("lane %d = %d", i, v)
		}
	}
	if outs[0].String() == "" {
		t.Fatal("output must render")
	}
}

func TestSelWithScalarCondition(t *testing.T) {
	src := `
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    LDI V1, 100
    LDI S1, 1
    SEL V2, S1, V0, V1
    ST V0+700, V2
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	got := m.Shared().Snapshot(700, 4)
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("sel broadcast condition: %v", got)
		}
	}
}

func TestMinMaxOps(t *testing.T) {
	src := `
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    MIN V1, V0, 2
    MAX V2, V0, 2
    ST V0+700, V1
    ST V0+710, V2
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	mins := m.Shared().Snapshot(700, 4)
	maxs := m.Shared().Snapshot(710, 4)
	wantMin := []int64{0, 1, 2, 2}
	wantMax := []int64{2, 2, 2, 3}
	for i := range wantMin {
		if mins[i] != wantMin[i] || maxs[i] != wantMax[i] {
			t.Fatalf("min/max: %v %v", mins, maxs)
		}
	}
}

func TestDivModByZeroTrapFree(t *testing.T) {
	src := `
main:
    LDI S0, 10
    LDI S1, 0
    DIV S2, S0, S1
    MOD S3, S0, S1
    PRINT S2
    PRINT S3
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	outs := m.Outputs()
	if outs[0].Values[0] != 0 || outs[1].Values[0] != 0 {
		t.Fatalf("div/mod by zero: %v", outs)
	}
}

func TestShiftClamping(t *testing.T) {
	src := `
main:
    LDI S0, 1
    SHL S1, S0, 100
    LDI S2, -5
    SHL S3, S0, S2
    PRINT S1
    PRINT S3
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	outs := m.Outputs()
	if outs[0].Values[0] != -1<<63 || outs[1].Values[0] != 1 {
		t.Fatalf("shift clamping: %v", outs)
	}
}

func TestMultiopVariantsAtMachineLevel(t *testing.T) {
	src := `
.data 100: 5 3 8 1
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    LD V1, V0+100
    MMAX 800, V1
    MMIN 801, V1
    MOR 802, V1
    MAND 803, V1
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, func(c *Config) {
		// Pre-set min word high so MMIN is observable.
		c.SharedWords = 1 << 12
	})
	if got := m.Shared().Peek(800); got != 8 {
		t.Fatalf("mmax = %d", got)
	}
	// MMIN combines with the initial 0 -> stays 0; check MOR/MAND shapes.
	if got := m.Shared().Peek(802); got != (5 | 3 | 8 | 1) {
		t.Fatalf("mor = %d", got)
	}
	if got := m.Shared().Peek(803); got != 0 {
		t.Fatalf("mand with initial 0 = %d", got)
	}
}

func TestMPMaxPrefix(t *testing.T) {
	src := `
.data 100: 5 3 8 1
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    LD V1, V0+100
    MPMAX V2, 800, V1
    ST V0+300, V2
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	got := m.Shared().Snapshot(300, 4)
	want := []int64{0, 5, 5, 8} // running max before each contribution
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mpmax prefixes: %v, want %v", got, want)
		}
	}
	if m.Shared().Peek(800) != 8 {
		t.Fatal("final max")
	}
}

func TestGroupCyclesTracked(t *testing.T) {
	m := mustRun(t, variant.SingleInstruction, vectorAddSrc, func(c *Config) { c.TraceEnabled = true })
	s := m.Stats()
	if len(s.PerGroupCycles) != 4 || s.PerGroupCycles[0] == 0 {
		t.Fatalf("per-group cycles: %v", s.PerGroupCycles)
	}
	for _, rec := range m.Trace() {
		if len(rec.GroupCycles) != 4 {
			t.Fatal("trace group cycles missing")
		}
	}
}

func TestListingRendering(t *testing.T) {
	m := mustRun(t, variant.SingleInstruction, vectorAddSrc, nil)
	l := m.Program().Listing()
	if !strings.Contains(l, "   0    LDI S0, 8") {
		t.Fatalf("listing:\n%s", l)
	}
}

func TestJoinWithoutParentJustHalts(t *testing.T) {
	m := mustRun(t, variant.SingleInstruction, "main:\nJOIN", nil)
	if m.liveFlows() != 0 {
		t.Fatal("JOIN without parent should halt the flow")
	}
}

func TestSplitZeroThicknessArm(t *testing.T) {
	src := `
main:
    SPLIT 0 -> arm, 2 -> arm
    PRINTS "ok"
    HALT
arm:
    LDI S1, 1
    JOIN
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	if len(m.Outputs()) != 1 {
		t.Fatal("zero-thickness arm should still join")
	}
}

func TestNegativeSplitThicknessFails(t *testing.T) {
	src := `
main:
    LDI S0, -3
    SPLIT S0 -> arm
    HALT
arm:
    JOIN
`
	_, err := runSrc(t, variant.SingleInstruction, src, nil)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("expected negative-thickness error, got %v", err)
	}
}

func TestSetThickFromNegativeRegisterFails(t *testing.T) {
	src := "main:\nLDI S0, -1\nSETTHICK S0\nHALT"
	_, err := runSrc(t, variant.SingleInstruction, src, nil)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("expected error, got %v", err)
	}
}

func TestNUMAFromZeroRegisterFails(t *testing.T) {
	src := "main:\nLDI S0, 0\nNUMA S0\nHALT"
	_, err := runSrc(t, variant.SingleInstruction, src, nil)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestMaxLiveFlowsTracked(t *testing.T) {
	src := `
main:
    SPLIT 1 -> w, 1 -> w, 1 -> w
    HALT
w:
    NOP
    JOIN
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	if m.Stats().MaxLiveFlows < 4 {
		t.Fatalf("max live flows = %d, want >= 4", m.Stats().MaxLiveFlows)
	}
	if m.Stats().FlowsCreated != 4 {
		t.Fatalf("flows created = %d", m.Stats().FlowsCreated)
	}
}

func TestPreemptiveTimeSlicing(t *testing.T) {
	// 6 long-running tasks on a 1-group, 2-slot machine. Without a
	// quantum, the first two tasks monopolize the slots until they halt;
	// with one, every task gets started early (interleaved progress).
	src := `
main:
    SPLIT 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w
    HALT
w:
    FID S0
    ST S0+700, S0
    LDI S1, 0
loop:
    ADD S1, S1, 1
    SLT S2, S1, 30
    BNEZ S2, loop
    JOIN
`
	firstTouchSteps := func(quantum int64) []int64 {
		cfg := Default(variant.SingleInstruction)
		cfg.Groups = 1
		cfg.ProcsPerGroup = 3 // parent (waiting) + 2 working slots
		cfg.Topology = nil
		cfg.TimeSliceSteps = quantum
		cfg.TraceEnabled = true
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(mustAsm(t, src)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		first := map[int]int64{}
		for _, rec := range m.Trace() {
			for _, s := range rec.Slices {
				if _, seen := first[s.Flow]; !seen {
					first[s.Flow] = rec.Step
				}
			}
		}
		var starts []int64
		for fid := 1; fid <= 6; fid++ {
			starts = append(starts, first[fid])
		}
		return starts
	}

	fifo := firstTouchSteps(0)
	sliced := firstTouchSteps(8)
	// The last task to start must begin much earlier with slicing.
	maxOf := func(xs []int64) int64 {
		mx := xs[0]
		for _, x := range xs[1:] {
			if x > mx {
				mx = x
			}
		}
		return mx
	}
	if maxOf(sliced) >= maxOf(fifo) {
		t.Fatalf("time slicing should start every task earlier: sliced %v vs fifo %v", sliced, fifo)
	}
	// Preemption must count as (free) task switches on the TCF machine.
	cfg := Default(variant.SingleInstruction)
	cfg.Groups = 1
	cfg.ProcsPerGroup = 3
	cfg.Topology = nil
	cfg.TimeSliceSteps = 8
	m, _ := New(cfg)
	m.LoadProgram(mustAsm(t, src))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TaskSwitches == 0 || m.Stats().TaskSwitchCycles != 0 {
		t.Fatalf("preemptive TCF switching: %d switches, %d cycles",
			m.Stats().TaskSwitches, m.Stats().TaskSwitchCycles)
	}
}

func TestBarrierWithOversubscribedTasks(t *testing.T) {
	// 6 tasks on 2 working slots, all meeting at one barrier: blocked
	// residents must yield their slots so queued tasks can reach the
	// barrier, and the release must wait for every task.
	src := `
main:
    SPLIT 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w
    HALT
w:
    FID S0
    LDI S1, 1
    ST S0+700, S1
    BAR
    LDI S2, 0
    LDI S3, 1
sum:
    LD S4, S3+700
    ADD S2, S2, S4
    ADD S3, S3, 1
    SLT S5, S3, 7
    BNEZ S5, sum
    ST S0+800, S2
    JOIN
`
	m := mustRun(t, variant.SingleInstruction, src, func(c *Config) {
		c.Groups = 1
		c.ProcsPerGroup = 3
		c.Topology = nil
	})
	// After the barrier every task must observe all six pre-barrier
	// writes.
	for fid := int64(1); fid <= 6; fid++ {
		if got := m.Shared().Peek(800 + fid); got != 6 {
			t.Fatalf("task %d saw %d writes, want 6 (barrier released early)", fid, got)
		}
	}
	if m.Stats().Barriers != 6 {
		t.Fatalf("barriers = %d", m.Stats().Barriers)
	}
}

// Property: a split conserves the specified thicknesses exactly — every arm
// becomes one child of precisely the requested thickness, and the parent
// resumes exactly once after all children join.
func TestSplitThicknessConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		arms := make([]isa.Arm, n)
		want := make([]int64, n)
		for i := range arms {
			want[i] = int64(rng.Intn(20))
			arms[i] = isa.ArmImm(want[i], "arm")
		}
		b := isa.NewBuilder("conserve")
		b.Label("main")
		b.Split(arms...)
		b.Prints("resumed")
		b.Halt()
		b.Label("arm")
		b.Id(isa.THICK, isa.S(0))
		b.Op(isa.JOIN)
		m, err := New(Default(variant.SingleInstruction))
		if err != nil {
			return false
		}
		if err := m.LoadProgram(b.MustBuild()); err != nil {
			return false
		}
		if _, err := m.Run(); err != nil {
			return false
		}
		flows := m.Flows()
		if len(flows) != n+1 {
			return false
		}
		got := map[int64]int{}
		for _, f := range flows[1:] {
			got[int64(f.TotalThickness)]++
		}
		wantCount := map[int64]int{}
		for _, w := range want {
			wantCount[w]++
		}
		for k, v := range wantCount {
			if got[k] != v {
				return false
			}
		}
		// Parent resumed exactly once.
		resumed := 0
		for _, o := range m.Outputs() {
			if o.Text == "resumed" {
				resumed++
			}
		}
		return resumed == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
