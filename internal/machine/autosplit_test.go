package machine

import (
	"strings"
	"testing"

	"tcfpram/internal/tcf"
	"tcfpram/internal/variant"
)

// autosplitVecAdd is the thickness-64 vector add; with auto-splitting the
// machine fragments it across groups.
const autosplitVecAdd = `
main:
    LDI S0, 256
    SETTHICK S0
    TID V0
    LD V1, V0+1000
    ADD V2, V1, 5
    ST V0+2000, V2
    HALT
`

func prepVecAdd(t *testing.T, tweak func(*Config)) *Machine {
	t.Helper()
	cfg := Default(variant.SingleInstruction)
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(mustAsm(t, autosplitVecAdd)); err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 256)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	if err := m.Shared().Load(1000, vals); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func checkVecAdd64(t *testing.T, m *Machine) {
	t.Helper()
	got := m.Shared().Snapshot(2000, 256)
	for i := range got {
		if got[i] != int64(i*3+5) {
			t.Fatalf("c[%d] = %d, want %d", i, got[i], i*3+5)
		}
	}
}

func TestAutoSplitPreservesResults(t *testing.T) {
	m := prepVecAdd(t, func(c *Config) { c.AutoSplitThreshold = 64 })
	checkVecAdd64(t, m)
	s := m.Stats()
	if s.AutoSplits != 1 {
		t.Fatalf("auto splits = %d, want 1", s.AutoSplits)
	}
	// 256 lanes at threshold 64: four fragments plus the container.
	if len(m.Flows()) != 5 {
		t.Fatalf("flows = %d, want 5", len(m.Flows()))
	}
	for _, f := range m.Flows()[1:] {
		if !f.IsFragment || f.TotalThickness != 256 {
			t.Fatalf("bad fragment: %+v", f)
		}
		if f.State != tcf.Done {
			t.Fatalf("fragment not done: %v", f)
		}
	}
	if m.Flow(0).State != tcf.Done {
		t.Fatal("container flow should be done after fragments join")
	}
}

func TestAutoSplitSpeedsUpThickFlows(t *testing.T) {
	plain := prepVecAdd(t, nil)
	split := prepVecAdd(t, func(c *Config) { c.AutoSplitThreshold = 64 })
	checkVecAdd64(t, plain)
	checkVecAdd64(t, split)
	// A 256-lane flow on one group versus 64-lane fragments on four groups:
	// the step makespan drops roughly by the group count.
	if split.Stats().Cycles*2 >= plain.Stats().Cycles {
		t.Fatalf("auto-split %d cycles should clearly beat single-group %d",
			split.Stats().Cycles, plain.Stats().Cycles)
	}
	occ := 0
	for _, ops := range split.Stats().PerGroupOps {
		if ops > 60 {
			occ++
		}
	}
	if occ < 4 {
		t.Fatalf("fragments should occupy all groups: %v", split.Stats().PerGroupOps)
	}
}

func TestAutoSplitFragmentTIDsCoverRange(t *testing.T) {
	// The ST results above already prove tid coverage; here check the
	// multiprefix ordering across fragments stays the logical tid order.
	src := `
main:
    LDI S0, 32
    SETTHICK S0
    TID V0
    ADD V1, V0, 1
    MPADD V2, 900, V1
    ST V0+2000, V2
    HALT
`
	cfg := Default(variant.SingleInstruction)
	cfg.AutoSplitThreshold = 8
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(mustAsm(t, src)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	prefix := m.Shared().Snapshot(2000, 32)
	acc := int64(0)
	for i := 0; i < 32; i++ {
		if prefix[i] != acc {
			t.Fatalf("prefix[%d] = %d, want %d (fragment ordering broken)", i, prefix[i], acc)
		}
		acc += int64(i + 1)
	}
	if got := m.Shared().Peek(900); got != acc {
		t.Fatalf("total = %d, want %d", got, acc)
	}
}

func TestAutoSplitBelowThresholdNoop(t *testing.T) {
	src := "main:\nSETTHICK 8\nTID V0\nHALT"
	cfg := Default(variant.SingleInstruction)
	cfg.AutoSplitThreshold = 16
	m, _ := New(cfg)
	m.LoadProgram(mustAsm(t, src))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().AutoSplits != 0 || len(m.Flows()) != 1 {
		t.Fatalf("unexpected split: %d flows", len(m.Flows()))
	}
}

func TestAutoSplitFragmentRejoinsAtModeChanges(t *testing.T) {
	// Fragments reaching a thickness or mode change rejoin the container,
	// which resumes there with the fragments' (identical) scalar state and
	// re-executes the statement — iterative thickness programs compose
	// with auto-splitting.
	src := `
main:
    LDI S1, 5
    SETTHICK 64
    TID V0
    ST V0+2000, V0
    ADD S1, S1, 1
    SETTHICK 4
    THICK S2
    ST 950, S2
    ST 951, S1
    NUMA 2
    LDI S3, 77
    PRAM
    ST 952, S3
    HALT
`
	cfg := Default(variant.SingleInstruction)
	cfg.AutoSplitThreshold = 16
	m, _ := New(cfg)
	m.LoadProgram(mustAsm(t, src))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The thick region ran as fragments covering all 64 tids.
	got := m.Shared().Snapshot(2000, 64)
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("tid store %d = %d", i, got[i])
		}
	}
	// The container resumed at SETTHICK 4 with the fragments' scalars
	// (S1 incremented inside the fragmented region).
	if v := m.Shared().Peek(950); v != 4 {
		t.Fatalf("THICK after rejoin = %d, want 4", v)
	}
	if v := m.Shared().Peek(951); v != 6 {
		t.Fatalf("scalar state after rejoin = %d, want 6", v)
	}
	if v := m.Shared().Peek(952); v != 77 {
		t.Fatalf("NUMA section after rejoin = %d, want 77", v)
	}
	if m.Stats().AutoSplits != 1 {
		t.Fatalf("auto splits = %d", m.Stats().AutoSplits)
	}
}

func TestAutoSplitIterativeThickness(t *testing.T) {
	// A loop that re-sets the thickness every iteration: each round
	// fragments and rejoins.
	src := `
main:
    LDI S0, 0
loop:
    SETTHICK 32
    TID V0
    MUL V1, V0, S0
    ST V0+3000, V1
    SETTHICK 1
    ADD S0, S0, 1
    SLT S1, S0, 3
    BNEZ S1, loop
    HALT
`
	cfg := Default(variant.SingleInstruction)
	cfg.AutoSplitThreshold = 8
	m, _ := New(cfg)
	m.LoadProgram(mustAsm(t, src))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Final round (S0 = 2) wrote tid*2.
	got := m.Shared().Snapshot(3000, 32)
	for i := range got {
		if got[i] != int64(i*2) {
			t.Fatalf("final round: out[%d] = %d, want %d", i, got[i], i*2)
		}
	}
	if m.Stats().AutoSplits != 3 {
		t.Fatalf("auto splits = %d, want 3 (one per round)", m.Stats().AutoSplits)
	}
}

func TestAutoSplitTHICKReportsLogicalThickness(t *testing.T) {
	src := `
main:
    LDI S0, 32
    SETTHICK S0
    THICK S1
    ST 950, S1
    HALT
`
	cfg := Default(variant.SingleInstruction)
	cfg.AutoSplitThreshold = 8
	m, _ := New(cfg)
	m.LoadProgram(mustAsm(t, src))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Shared().Peek(950); got != 32 {
		t.Fatalf("THICK in fragment = %d, want logical 32", got)
	}
}

func TestAutoSplitInsideParallelArm(t *testing.T) {
	// A split child that then exceeds the threshold: the cascade must
	// notify the original parent when the fragments finish.
	src := `
main:
    SPLIT 1 -> arm
    PRINTS "joined"
    HALT
arm:
    LDI S0, 48
    SETTHICK S0
    TID V0
    ST V0+2000, V0
    JOIN
`
	cfg := Default(variant.SingleInstruction)
	cfg.AutoSplitThreshold = 16
	m, _ := New(cfg)
	m.LoadProgram(mustAsm(t, src))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	outs := m.Outputs()
	if len(outs) != 1 || outs[0].Text != "joined" {
		t.Fatalf("parent never resumed: %v", outs)
	}
	got := m.Shared().Snapshot(2000, 48)
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("tid store wrong at %d: %d", i, got[i])
		}
	}
}

func TestAutoSplitRejectsFragmentUnsafeInstructions(t *testing.T) {
	// A flow-level reduction inside a fragment would see only the
	// fragment's lanes; the machine must fail loudly instead.
	src := `
main:
    SETTHICK 64
    TID V0
    RADD S1, V0
    HALT
`
	cfg := Default(variant.SingleInstruction)
	cfg.AutoSplitThreshold = 16
	m, _ := New(cfg)
	m.LoadProgram(mustAsm(t, src))
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "fragment") {
		t.Fatalf("reduction inside fragment should fail, got %v", err)
	}
	// The same program without auto-splitting is fine.
	cfg.AutoSplitThreshold = 0
	m2, _ := New(cfg)
	m2.LoadProgram(mustAsm(t, src))
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
}
