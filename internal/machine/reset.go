package machine

import "fmt"

// Reset returns the machine to its just-built state while keeping every
// internal arena: shared-memory pages are zeroed in place, the group
// execution arenas, write shards and combiner buffers are truncated, and
// flows, statistics, outputs and traces are discarded. The next
// LoadProgram/Run on a Reset machine is bit-identical to the same run on a
// fresh machine with the same Config — the property the serve-layer machine
// pool is built on (and that TestPoolReuseBitIdentity proves).
//
// Reset invalidates everything previously handed out by this machine:
// Stats, Outputs, Trace and Shared snapshots must be copied before calling
// it. Reset must not run concurrently with Step/Run.
func (m *Machine) Reset() {
	m.prog = nil
	m.fprog = nil
	clear(m.flows)
	m.flowList = m.flowList[:0]
	clear(m.homeGroup)
	m.nextFlowID = 0

	m.shared.Reset()
	for _, g := range m.groups {
		g.Local.Reset()
		g.Buf.reset()
	}
	for _, c := range m.combiners {
		c.Reset()
	}
	for _, x := range m.execs {
		x.err = nil
	}

	m.stepOutputs = m.stepOutputs[:0]
	m.stepEvents = m.stepEvents[:0]
	m.routes = m.routes[:0]
	m.discAccs = m.discAccs[:0]

	perOps, perCycles := m.stats.PerGroupOps, m.stats.PerGroupCycles
	clear(perOps)
	clear(perCycles)
	m.stats = Stats{PerGroupOps: perOps, PerGroupCycles: perCycles}

	m.output = m.output[:0]
	m.halted = false
	m.runErr = nil
	m.stepRec = nil
	m.trace = nil
	m.recArena = nil
	m.gcArena = nil
	m.sliceArena = nil

	// Checkpoint wiring is per-run state stamped through SetCheckpointing
	// (the sink typically points at a per-run file), so a recycled machine
	// must not keep writing to the previous run's checkpoint.
	m.cfg.CheckpointEvery = 0
	m.cfg.CheckpointSink = nil
}

// reset empties the storage buffer and rewinds its rotation, keeping the
// slot backing arrays.
func (b *StorageBuf) reset() {
	b.Resident = b.Resident[:0]
	b.Pending = b.Pending[:0]
	b.rrStart = 0
}

// SetLimits adjusts the per-run governance bounds of the machine without
// rebuilding it: maxSteps is the MaxSteps livelock/quota bound (<= 0 selects
// the default), maxThickness the MaxThickness flow-growth quota (0 disables,
// negative is an error). The machine pool uses this to stamp each tenant's
// quota onto a pooled machine, whose shape key deliberately excludes the
// limits. Limits may only change while no flows exist (before Boot, or
// right after Reset).
func (m *Machine) SetLimits(maxSteps int64, maxThickness int) error {
	if len(m.flows) != 0 {
		return fmt.Errorf("machine: SetLimits on a booted machine")
	}
	if maxThickness < 0 {
		return fmt.Errorf("machine: negative MaxThickness %d", maxThickness)
	}
	if maxSteps <= 0 {
		maxSteps = 1 << 22 // the normalize() default
	}
	m.cfg.MaxSteps = maxSteps
	m.cfg.MaxThickness = maxThickness
	return nil
}

// SetCheckpointing wires (or clears) periodic checkpointing on the machine
// without rebuilding it — the serve layer stamps each recoverable run's
// checkpoint file onto a pooled machine this way, mirroring SetLimits.
// Checkpointing is active only when every > 0 and sink is non-nil; Reset
// clears the wiring. Like SetLimits, it may only change while no flows
// exist (before Boot, or right after Reset).
func (m *Machine) SetCheckpointing(every int64, sink CheckpointSink) error {
	if len(m.flows) != 0 {
		return fmt.Errorf("machine: SetCheckpointing on a booted machine")
	}
	if every < 0 {
		return fmt.Errorf("machine: negative CheckpointEvery %d", every)
	}
	m.cfg.CheckpointEvery = every
	m.cfg.CheckpointSink = sink
	return nil
}
