package machine

import (
	"cmp"
	"fmt"
	"slices"

	"tcfpram/internal/tcf"
	"tcfpram/internal/variant"
)

// StepPlan is the hand-off structure between the pipeline stages of one
// step: the frontend stamps the policy's step shape and the step index, the
// backend executes it. It is the only coupling between the two halves of
// the engine.
type StepPlan struct {
	variant.StepShape
	Step int64
}

// Step advances the machine by one synchronous step through the Figure 13
// pipeline: frontend prepare (fault boundary events, plan stamping) →
// backend operation generation → deterministic merge → memory commit →
// frontend retire (cross-flow events, task rotation, barrier release).
// All per-step state lives in arenas on the Machine: the steady-state step
// loop allocates nothing (with tracing disabled).
func (m *Machine) Step() error {
	if m.prog == nil || len(m.flows) == 0 {
		return m.failf("Step before LoadProgram/Boot")
	}
	if m.runErr != nil {
		return m.runErr
	}
	plan, err := m.front.prepare()
	if err != nil {
		return err
	}
	return m.runStep(plan)
}

// runStep drives the staged pipeline for one prepared plan.
func (m *Machine) runStep(plan StepPlan) error {
	stagesBefore := m.stats.Stages

	m.back.generate(plan)
	stepCycles, err := m.back.merge()
	if err != nil {
		return err
	}

	discR, discW, err := m.auditDiscipline()
	if err != nil {
		return err
	}

	if err := m.back.commit(); err != nil {
		return err
	}

	// Frontend retire: cross-flow events (splits, joins, auto-split
	// fragmentation and rejoin) and task rotation both charge their Table 1
	// costs into the step's critical path.
	branchBefore := m.stats.FlowBranchCycles
	eventsBefore := m.stats.Splits + m.stats.Joins + m.stats.AutoSplits
	if err := m.front.retireEvents(); err != nil {
		return err
	}
	stepCycles += m.stats.FlowBranchCycles - branchBefore

	switchBefore := m.stats.TaskSwitchCycles
	switchesBefore := m.stats.TaskSwitches
	m.front.preempt()
	m.front.compact()
	stepCycles += m.stats.TaskSwitchCycles - switchBefore

	m.stats.Stages[StageFrontend].Cycles +=
		(m.stats.FlowBranchCycles - branchBefore) + (m.stats.TaskSwitchCycles - switchBefore)
	m.stats.Stages[StageFrontend].Events +=
		(m.stats.Splits + m.stats.Joins + m.stats.AutoSplits - eventsBefore) +
			(m.stats.TaskSwitches - switchesBefore)

	// Barrier release: only when no flow anywhere can still run toward
	// the barrier and at least one is blocked at a BAR.
	if !m.anyReadyAnywhere() {
		m.releaseBarriers()
	}

	m.finishStep(stepCycles, stagesBefore, discR, discW, nil)

	// Liveness: if nothing can ever run again, fail loudly.
	if m.liveFlows() > 0 && !m.anyReadyAnywhere() {
		return m.failw(ErrDeadlock, "step %d: deadlock: live flows but none ready (missing JOIN?)", m.stats.Steps)
	}
	return nil
}

// auditDiscipline runs the memory-discipline audit (Config.MemDiscipline)
// over the step's recorded access sets, before commit, so a violating step
// stops the machine without applying its writes.
func (m *Machine) auditDiscipline() (discR, discW int64, err error) {
	if len(m.discAccs) == 0 {
		return 0, 0, nil
	}
	for i := range m.discAccs {
		if m.discAccs[i].write {
			discW++
		} else {
			discR++
		}
	}
	m.stats.DiscReads += discR
	m.stats.DiscWrites += discW
	if v := m.checkDiscipline(); v != nil {
		v.Step = m.stats.Steps
		m.runErr = fmt.Errorf("machine: step %d: %w", m.stats.Steps, v)
		return discR, discW, m.runErr
	}
	return discR, discW, nil
}

// releaseBarriers unblocks every BAR-parked flow. Callers have established
// that no flow anywhere can still run toward the barrier.
func (m *Machine) releaseBarriers() {
	for _, f := range m.flowList {
		if f.State == tcf.Blocked {
			f.State = tcf.Ready
		}
	}
}

// finishStep closes the step's books: the cycle floor, cumulative counters,
// trace/stage-observer emission, and the deterministic output ordering.
// pkts selects where the per-group trace data (group cycles, slices) comes
// from: nil reads the groupExec arenas (lockstep), non-nil reads the
// dataflow committer's step packets — the nil case must stay branch-only so
// the lockstep step loop remains allocation-free.
func (m *Machine) finishStep(stepCycles int64, stagesBefore [NumStages]StageStats, discR, discW int64, pkts []*dfPacket) {
	if stepCycles == 0 {
		stepCycles = 1
	}
	m.stats.Cycles += stepCycles
	m.stats.Steps++

	if m.cfg.TraceEnabled || m.cfg.StageObserver != nil {
		var delta [NumStages]StageStats
		for s := range delta {
			delta[s].Cycles = m.stats.Stages[s].Cycles - stagesBefore[s].Cycles
			delta[s].Events = m.stats.Stages[s].Events - stagesBefore[s].Events
		}
		if m.cfg.TraceEnabled {
			// Chunks grow with the trace so short runs stay cheap and long
			// runs amortize: 8, then ~len(trace) capped at 256.
			if len(m.recArena) == 0 {
				m.recArena = make([]StepRecord, min(256, max(8, len(m.trace))))
			}
			rec := &m.recArena[0]
			m.recArena = m.recArena[1:]
			ng := len(m.groups)
			if len(m.gcArena) < ng {
				m.gcArena = make([]int64, min(256, max(8, len(m.trace)))*ng)
			}
			rec.GroupCycles, m.gcArena = m.gcArena[:ng:ng], m.gcArena[ng:]
			rec.Step, rec.Cycles, rec.Stages = m.stats.Steps-1, stepCycles, delta
			rec.DiscReads, rec.DiscWrites = discR, discW
			n := 0
			if pkts == nil {
				for _, x := range m.execs {
					n += len(x.slices)
				}
			} else {
				for _, p := range pkts {
					if p != nil {
						n += len(p.slices)
					}
				}
			}
			if len(m.sliceArena) < n {
				m.sliceArena = make([]SliceExec, max(n, min(128, max(16, 2*len(m.trace)))))
			}
			rec.Slices, m.sliceArena = m.sliceArena[:0:n], m.sliceArena[n:]
			if pkts == nil {
				for _, x := range m.execs {
					rec.GroupCycles[x.g.Index] = x.ops + x.scalarOps + x.stall
					rec.Slices = append(rec.Slices, x.slices...)
				}
			} else {
				for gi, p := range pkts {
					if p == nil {
						continue
					}
					rec.GroupCycles[gi] = p.ops + p.scalarOps + p.stall
					rec.Slices = append(rec.Slices, p.slices...)
				}
			}
			if m.trace == nil {
				m.trace = make([]*StepRecord, 0, 16)
			}
			m.trace = append(m.trace, rec)
		}
		if obs := m.cfg.StageObserver; obs != nil {
			for s := Stage(0); s < NumStages; s++ {
				obs.ObserveStage(m.stats.Steps-1, s, delta[s])
			}
		}
	}

	// Deterministic output ordering within the step: by flow id, then by
	// emission order.
	slices.SortStableFunc(m.stepOutputs, func(a, b Output) int { return cmp.Compare(a.Flow, b.Flow) })
	m.output = append(m.output, m.stepOutputs...)
}

func (m *Machine) anyReadyAnywhere() bool {
	for _, f := range m.flowList {
		if f.State == tcf.Ready {
			return true
		}
	}
	return false
}
