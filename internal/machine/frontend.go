package machine

import (
	"tcfpram/internal/isa"
	"tcfpram/internal/sched"
	"tcfpram/internal/tcf"
)

// StorageBuf is the TCF storage buffer of one group (Figure 13): up to Tp
// resident flows feeding the pipeline, plus the pending queue of flows
// (tasks) beyond the buffer capacity. All residency transitions go through
// its methods; the frontend charges the policy's task-switch costs around
// them.
type StorageBuf struct {
	Resident []*tcf.Flow
	Pending  []*tcf.Flow

	// rrStart rotates the slot a rotating policy (Balanced) serves first,
	// so a thick flow cannot starve its slot-mates of the operation budget.
	rrStart int
}

// Live returns the number of not-Done resident flows.
func (b *StorageBuf) Live() int {
	n := 0
	for _, f := range b.Resident {
		if f.State != tcf.Done {
			n++
		}
	}
	return n
}

// Load returns resident-not-done plus pending flows (placement pressure).
func (b *StorageBuf) Load() int { return b.Live() + len(b.Pending) }

// rotateStart returns the slot to serve first this step and advances the
// rotation.
func (b *StorageBuf) rotateStart(n int) int {
	s := b.rrStart % n
	b.rrStart++
	return s
}

// place makes f resident if a slot is free, otherwise queues it.
func (b *StorageBuf) place(f *tcf.Flow, slots int) {
	if len(b.Resident) < slots {
		b.Resident = append(b.Resident, f)
	} else {
		b.Pending = append(b.Pending, f)
	}
}

// demoteReady parks the longest-resident ready flow at the back of the
// pending queue, reporting whether one was found.
func (b *StorageBuf) demoteReady() bool {
	for i, f := range b.Resident {
		if f.State != tcf.Ready {
			continue
		}
		b.Resident = append(b.Resident[:i], b.Resident[i+1:]...)
		b.Pending = append(b.Pending, f)
		return true
	}
	return false
}

// dropDone compacts Done flows out of the buffer.
func (b *StorageBuf) dropDone() {
	keep := b.Resident[:0]
	for _, f := range b.Resident {
		if f.State != tcf.Done {
			keep = append(keep, f)
		}
	}
	b.Resident = keep
}

// promote moves the queue head into a free slot, reporting whether it did.
func (b *StorageBuf) promote(slots int) bool {
	if len(b.Resident) >= slots || len(b.Pending) == 0 {
		return false
	}
	b.Resident = append(b.Resident, b.Pending[0])
	b.Pending = b.Pending[1:]
	return true
}

// pendingReady reports whether any queued flow could execute.
func (b *StorageBuf) pendingReady() bool {
	for _, f := range b.Pending {
		if f.State == tcf.Ready {
			return true
		}
	}
	return false
}

// displaceBlocked parks one blocked/waiting resident at the back of the
// pending queue and promotes the queue head in its place, reporting whether
// a displacement happened.
func (b *StorageBuf) displaceBlocked() bool {
	idx := -1
	for i, f := range b.Resident {
		if f.State == tcf.Blocked || f.State == tcf.Waiting {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	displaced := b.Resident[idx]
	next := b.Pending[0]
	b.Pending = append(b.Pending[1:], displaced)
	b.Resident[idx] = next
	return true
}

// frontend is the TCF-storage-buffer stage of the Figure 13 pipeline. It
// owns flow residency across the groups' StorageBufs, task-switch
// accounting (charged at the policy's Table 1 rates), and the in-machine
// balanced splitting/rejoin of overly thick flows. Each step it prepares a
// StepPlan for the backend and retires the step's cross-flow events
// afterwards.
type frontend struct {
	m *Machine
}

// prepare opens a step: fail-stop fault events fire at the boundary (a dead
// module's traffic fails over to a mirrored spare before any reference of
// this step), then the policy's step shape is stamped into the plan handed
// to the backend.
func (fr *frontend) prepare() (StepPlan, error) {
	m := fr.m
	if plan := m.cfg.FaultPlan; plan != nil {
		for _, mod := range plan.ModuleFailuresAt(m.stats.Steps) {
			if err := m.shared.FailModule(mod); err != nil {
				return StepPlan{}, m.failw(ErrFaultUnrecoverable, "step %d: %v", m.stats.Steps, err)
			}
			m.stats.Failovers++
		}
	}
	return StepPlan{StepShape: m.shape, Step: m.stats.Steps}, nil
}

// place registers f on group g's storage buffer.
func (fr *frontend) place(f *tcf.Flow, g int) {
	m := fr.m
	f.Home = g
	m.homeGroup[f.ID] = g
	m.groups[g].Buf.place(f, m.cfg.ProcsPerGroup)
}

// leastLoaded picks the group with minimum load (ties: lowest index), the
// horizontal allocation rule of Section 4.
func (fr *frontend) leastLoaded() int {
	best, bestLoad := 0, int(^uint(0)>>1)
	for i, g := range fr.m.groups {
		if l := g.Buf.Load(); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// retireEvents applies the step's deferred cross-flow events: child
// terminations, splits, fragment rejoins and OS auto-splits. Indexed
// iteration over m.stepEvents: completing an auto-split container can
// cascade a further evChildDone for its own parent.
func (fr *frontend) retireEvents() error {
	m := fr.m
	for i := 0; i < len(m.stepEvents); i++ {
		ev := m.stepEvents[i]
		switch ev.kind {
		case evChildDone:
			parent := ev.flow.Parent
			parent.LiveChildren--
			m.stats.Joins++
			if parent.LiveChildren == 0 && parent.State == tcf.Waiting {
				if parent.ResumePC < 0 {
					// Auto-split container: the fragments were the rest
					// of its execution.
					parent.State = tcf.Done
					if parent.Parent != nil {
						m.stepEvents = append(m.stepEvents, deferredEvent{kind: evChildDone, flow: parent})
					}
				} else {
					parent.State = tcf.Ready
					parent.PC = parent.ResumePC
				}
			}
		case evFragmentRejoin:
			parent := ev.flow.Parent
			parent.LiveChildren--
			m.stats.Joins++
			// Fragments are scalar-identical; any of them restores the
			// container's flow-common state and continuation point.
			parent.SetScalars(ev.flow.Scalars())
			parent.ResumePC = ev.pc
			if parent.LiveChildren == 0 && parent.State == tcf.Waiting {
				parent.State = tcf.Ready
				parent.PC = ev.pc
			}
		case evAutoSplit:
			if err := fr.splitOverThick(ev.flow, ev.thick); err != nil {
				return err
			}
		case evSplit:
			m.stats.Splits++
			for _, arm := range ev.arms {
				g := fr.leastLoaded()
				child := m.newFlow(arm.pc, arm.thick, g)
				child.Parent = ev.flow
				child.SetScalars(ev.flow.Scalars())
				// Flow branch cost (Table 1), charged at the policy's
				// rate: the TCF variants copy the R common registers into
				// the child, O(R); the XMT-style multi-instruction model
				// spawns thread contexts in parallel, O(1).
				m.stats.FlowBranchCycles += m.policy.FlowBranchCycles(isa.NumSRegs)
			}
		}
	}
	return nil
}

// splitOverThick is the balanced splitting of overly thick flows (Section
// 3.3): the continuation of f runs as threshold-sized fragments allocated
// across the least-loaded groups, with internal/sched as the single source
// of truth for fragment sizing; f completes when they all rejoin. Each
// fragment pays the TCF flow-branch cost (the R common registers are copied
// into it) regardless of variant — auto-splitting only exists on the
// thickness-aware variants.
func (fr *frontend) splitOverThick(f *tcf.Flow, thick int) error {
	m := fr.m
	m.stats.AutoSplits++
	frags, err := sched.Fragment(thick, m.cfg.AutoSplitThreshold)
	if err != nil {
		return m.failf("auto-split of flow %d: %v", f.ID, err)
	}
	f.LiveChildren = len(frags)
	offset := 0
	for _, size := range frags {
		g := fr.leastLoaded()
		child := m.newFlow(f.PC, size, g)
		child.Parent = f
		child.SetScalars(f.Scalars())
		child.IsFragment = true
		child.TidOffset = offset
		child.TotalThickness = thick
		offset += size
		m.stats.FlowBranchCycles += int64(isa.NumSRegs)
	}
	return nil
}

// preempt rotates one ready resident flow per group back to the pending
// queue when the time-slice quantum expires, giving queued tasks a turn —
// preemptive time-shared multitasking with TCFs as tasks, charged at the
// policy's preemption rate.
func (fr *frontend) preempt() {
	m := fr.m
	q := m.cfg.TimeSliceSteps
	if q <= 0 || m.stats.Steps == 0 || m.stats.Steps%q != 0 {
		return
	}
	for _, g := range m.groups {
		if len(g.Buf.Pending) == 0 {
			continue
		}
		if g.Buf.demoteReady() {
			m.stats.TaskSwitches++
			m.stats.TaskSwitchCycles += m.policy.PreemptCycles(m.cfg.ProcsPerGroup)
		}
	}
}

// compact drops Done flows from the TCF buffers and promotes pending flows
// into freed slots — the zero-cost task switch of the TCF variants
// (Table 1): rotating the TCF storage buffer costs no cycles there.
func (fr *frontend) compact() {
	for _, g := range fr.m.groups {
		fr.compactGroup(g)
	}
}

// compactGroup compacts one group's buffer. The dataflow committer calls it
// per group (in group-index order, like compact) so it can skip groups whose
// runners are mid-step — safe exactly because compaction is a no-op for
// them: no flow of theirs went Done this step and their pending queue is
// empty, or their runner would have fenced itself to the step boundary.
func (fr *frontend) compactGroup(g *Group) {
	m := fr.m
	g.Buf.dropDone()
	for g.Buf.promote(m.cfg.ProcsPerGroup) {
		fr.noteTaskSwitch()
	}
	// Flows parked at a barrier (or waiting on children) do not
	// execute; displace them so queued ready tasks can run — without
	// this, a barrier across an oversubscribed task set deadlocks
	// (blocked flows hold every slot while the tasks that must still
	// reach the barrier sit in the queue).
	for g.Buf.pendingReady() && g.Buf.displaceBlocked() {
		fr.noteTaskSwitch()
	}
}

// noteTaskSwitch accounts one task rotation at the policy's Table 1 rate:
// free for TCF variants, O(1) for XMT spawning, a full Tp-context switch
// for the thread machines.
func (fr *frontend) noteTaskSwitch() {
	m := fr.m
	m.stats.TaskSwitches++
	m.stats.TaskSwitchCycles += m.policy.TaskSwitchCycles(m.cfg.ProcsPerGroup)
}

// SplitPlan previews the frontend's balanced splitting for a flow of the
// given thickness under the current configuration: the fragment sizes the
// Section 3.3 OS-level splitter would create, or nil when splitting is
// disabled, the policy has no control parallelism to rejoin with, or the
// thickness does not exceed the threshold.
func (m *Machine) SplitPlan(thickness int) ([]int, error) {
	th := m.cfg.AutoSplitThreshold
	if th <= 0 || thickness <= th || !m.policy.Props().ControlParallel {
		return nil, nil
	}
	return sched.Fragment(thickness, th)
}
