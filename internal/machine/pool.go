package machine

import (
	"runtime"
	"sync"

	"tcfpram/internal/isa"
	"tcfpram/internal/tcf"
)

// Package-level worker pools execute group steps and lane chunks for every
// Parallel machine in the process; workers start lazily on first use and
// persist for the process lifetime, replacing the goroutine spawn per step.
// Jobs are plain structs and submit never blocks (the job runs inline when
// the queue is full), so dispatching allocates nothing.
type poolJob struct {
	grp  *groupExec // whole-group step, or
	lane *laneChunk // one lane range of a thick instruction
	wg   *sync.WaitGroup
}

func (j poolJob) run() {
	if j.grp != nil {
		j.grp.runGroup()
	} else {
		j.lane.run()
	}
	j.wg.Done()
}

type workPool struct {
	once sync.Once
	jobs chan poolJob
}

func (p *workPool) start() {
	n := runtime.GOMAXPROCS(0)
	p.jobs = make(chan poolJob, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range p.jobs {
				j.run()
			}
		}()
	}
}

// submit hands j to the pool, running it inline when the queue is full.
func (p *workPool) submit(j poolJob) {
	p.once.Do(p.start)
	select {
	case p.jobs <- j:
	default:
		j.run()
	}
}

// groupPool runs whole-group steps; lanePool runs lane chunks. The worker
// sets are separate because a group step blocks waiting for its lane chunks:
// on a single pool, every worker could be a blocked group step while the
// chunks they wait on sit queued behind further group jobs.
var groupPool, lanePool workPool

// laneChunk is one contiguous lane range of a thick instruction, executed on
// a private worker arena and merged back in lane order.
type laneChunk struct {
	w        *groupExec
	f        *tcf.Flow
	in       isa.Instr
	first, n int
}

func (c *laneChunk) run() {
	c.w.execLaneRange(c.f, c.in, c.first, c.n)
}

// laneParallelOK reports whether the lanes of in may execute concurrently.
// Local-memory accesses have immediate semantics (a lane's STL is visible to
// higher lanes' LDLs within the instruction on colliding addresses), so they
// stay serial; everything else either buffers its effects (ST, multiops) or
// writes a private lane slot.
func laneParallelOK(in isa.Instr) bool {
	switch in.Op {
	case isa.LDL, isa.STL:
		return false
	}
	return true
}

// refsPerLane returns how many shared-memory references one lane of in
// issues — the per-chunk refSeq stride that keeps fault-plan decisions
// identical to serial execution. Every lane of a given sliceable op issues
// the same count (0 or 1), which is what makes the stride exact.
func refsPerLane(in isa.Instr) int64 {
	if in.Op == isa.LD || in.Op == isa.ST || in.Op.IsMultiop() || in.Op.IsMultiprefix() {
		return 1
	}
	return 0
}

// touchOperands materializes every vector register the instruction's lanes
// will access, mirroring exactly which registers serial execution touches.
// Lane chunks then index the backing arrays concurrently without ever
// hitting Flow's lazy vector allocation.
func touchOperands(f *tcf.Flow, in isa.Instr) {
	touch := func(r isa.Reg) {
		if r.IsVector() {
			f.Vector(r)
		}
	}
	switch {
	case in.Op == isa.LDI:
		touch(in.Rd)
	case in.Op == isa.MOV, in.Op == isa.NEG, in.Op == isa.NOT:
		touch(in.Rd)
		touch(in.Ra)
	case in.Op.IsBinaryALU():
		touch(in.Rd)
		touch(in.Ra)
		if !in.HasImm {
			touch(in.Rb)
		}
	case in.Op == isa.SEL:
		touch(in.Rd)
		touch(in.Ra)
		touch(in.Rb)
		touch(in.Rc)
	case in.Op == isa.LD:
		touch(in.Rd)
		touch(in.Ra)
	case in.Op == isa.ST, in.Op.IsMultiop():
		touch(in.Ra)
		touch(in.Rb)
	case in.Op.IsMultiprefix():
		touch(in.Rd)
		touch(in.Ra)
		touch(in.Rb)
	default:
		touch(in.Rd)
	}
}

// execLanes executes lanes [0,w) of a sliceable instruction, fanning out to
// the worker pool when the machine is Parallel and the lane count reaches
// the configured threshold. Results are bit-identical to the serial loop:
// chunk buffers merge in lane order, and each chunk's refSeq starts at the
// value serial execution would have reached at its first lane.
func (x *groupExec) execLanes(f *tcf.Flow, in isa.Instr, w int) {
	th := x.m.cfg.LaneParallelThreshold
	if th <= 0 || !x.m.cfg.Parallel || x.immediate || w < th || !laneParallelOK(in) {
		x.execLaneRange(f, in, 0, w)
		return
	}

	touchOperands(f, in)
	// At least two chunks even on a single-proc runtime: enabling Parallel
	// asks for the chunked code path, and the deterministic merge must be
	// exercised (and testable) regardless of GOMAXPROCS.
	workers := max(2, runtime.GOMAXPROCS(0))
	chunks := (w + th - 1) / th
	if chunks > workers {
		chunks = workers
	}
	n := (w + chunks - 1) / chunks // lanes per chunk
	chunks = (w + n - 1) / n       // drop empty trailing chunks
	if chunks < 2 {
		x.execLaneRange(f, in, 0, w)
		return
	}

	for len(x.lw) < chunks-1 {
		x.lw = append(x.lw, &groupExec{m: x.m, g: x.g, fenv: x.fenv, rowMax: x.rowMax})
	}
	if cap(x.chunks) < chunks-1 {
		x.chunks = make([]laneChunk, chunks-1)
	}
	x.chunks = x.chunks[:chunks-1]

	base := x.refSeq
	refs := refsPerLane(in)
	x.wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		first := c * n
		size := n
		if first+size > w {
			size = w - first
		}
		wk := x.lw[c-1]
		wk.resetLaneWorker(base+int64(first)*refs, x.step)
		x.chunks[c-1] = laneChunk{w: wk, f: f, in: in, first: first, n: size}
		lanePool.submit(poolJob{lane: &x.chunks[c-1], wg: &x.wg})
	}
	// Chunk 0 runs inline on this arena, so its writes land first — the
	// worker merges below then restore exact serial order.
	x.execLaneRange(f, in, 0, n)
	x.wg.Wait()
	for c := 1; c < chunks; c++ {
		x.mergeLaneWorker(x.lw[c-1])
	}
	x.refSeq = base + int64(w)*refs
	x.laneChunks += int64(chunks)
}
