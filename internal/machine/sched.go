package machine

import "fmt"

// Sched selects the step-engine scheduling discipline. Both schedulers are
// bit-identical in every architectural respect — outputs, statistics, fault
// decisions, discipline verdicts, checkpoints — and differ only in wall
// clock; the lockstep engine is the reference (oracle) implementation.
type Sched int

const (
	// SchedLockstep is the reference scheduler: every group advances
	// through each step's generate→merge→commit→retire pipeline in global
	// synchrony, one step at a time.
	SchedLockstep Sched = iota
	// SchedDataflow lets groups run ahead of each other independently:
	// each group generates its steps on a dedicated runner goroutine and
	// publishes them as step-tagged packets, while a single committer
	// applies the packets in the exact lockstep order. Groups block only
	// on actual dependency edges — a shared-memory page whose writer
	// hasn't committed (internal/mem.Frontier), a cross-flow event
	// (split/join/barrier/multiop) that must retire first, or the bounded
	// packet ring. Only the PRAM-lockstep step shapes run asynchronously;
	// the immediate-semantics MultiInstruction variant serializes groups
	// within a step by definition and falls back to the lockstep engine.
	SchedDataflow
)

func (s Sched) String() string {
	switch s {
	case SchedLockstep:
		return "lockstep"
	case SchedDataflow:
		return "dataflow"
	}
	return fmt.Sprintf("Sched(%d)", int(s))
}

// ParseSched parses a scheduler name ("lockstep" or "dataflow").
func ParseSched(s string) (Sched, error) {
	switch s {
	case "lockstep", "":
		return SchedLockstep, nil
	case "dataflow":
		return SchedDataflow, nil
	}
	return 0, fmt.Errorf("machine: unknown scheduler %q (want lockstep or dataflow)", s)
}
