package machine

import "errors"

// The error taxonomy of the public run paths. Every way a run can stop
// abnormally wraps exactly one of these sentinels, so callers can dispatch
// with errors.Is instead of matching message strings.
var (
	// ErrDeadlock: live flows exist but none can ever run again (missing
	// JOIN, or the progress watchdog saw no observable progress).
	ErrDeadlock = errors.New("deadlock")
	// ErrMaxSteps: the MaxSteps livelock bound was exceeded.
	ErrMaxSteps = errors.New("max steps exceeded")
	// ErrCanceled: the RunContext context was canceled between steps.
	ErrCanceled = errors.New("run canceled")
	// ErrFaultUnrecoverable: the fault plan exceeded what the recovery
	// machinery can mask (retries exhausted, or no spare module remains).
	ErrFaultUnrecoverable = errors.New("unrecoverable fault")
	// ErrDisciplineViolation: the memory-discipline cross-checker
	// (Config.MemDiscipline) observed a same-step conflict forbidden by the
	// selected PRAM model. errors.As against *DisciplineViolation recovers
	// the step, address and both accesses.
	ErrDisciplineViolation = errors.New("memory discipline violation")
	// ErrThicknessLimit: a flow tried to grow past Config.MaxThickness
	// (SETTHICK or a SPLIT arm). This is the per-tenant thickness quota of
	// the execution server; 0 disables the bound.
	ErrThicknessLimit = errors.New("thickness limit exceeded")
)
