package machine

import (
	"slices"

	"tcfpram/internal/fuse"
	"tcfpram/internal/isa"
	"tcfpram/internal/mem"
	"tcfpram/internal/tcf"
)

// Fused backend (Config.Backend == BackendFused): the step engine runs the
// program fuse.Compile built at load time. Dispatch stays inside the same
// runGroup/runFlow loop all six variant policies share — only the innermost
// execution switches change:
//
//   - execWhole routes through the compiled instruction's class instead of
//     re-deriving it from opcode metadata every step;
//   - execLaneRange routes lane ranges (including lane-parallel chunks)
//     through compiled kernels and bulk memory kernels;
//   - runFlow and execNUMABunch walk fused straight-line runs — several
//     register instructions back to back with registers untouched by any
//     step machinery in between.
//
// Everything the run boundary owns — shared references, fault decisions,
// refSeq accounting, discipline records, combining traffic, trace slices —
// executes on exactly the interpreter's code paths, which is what makes the
// two backends bit-identical (the corpus and chaos differentials prove it).

// execWholeFused is execWhole on a compiled instruction: the class and
// thickness discrimination was done at compile time.
func (x *groupExec) execWholeFused(f *tcf.Flow, slot int, in isa.Instr, fi *fuse.Instr) {
	if fragmentUnsafe(f, in) {
		x.failf("flow %d: %s funnels thread-wise data into flow-common state inside an auto-split fragment; disable AutoSplitThreshold for this program", f.ID, in.Op)
		return
	}
	switch fi.Class {
	case fuse.ClassControl:
		x.record(f, slot, in, 0, 1, f.Mode == tcf.NUMA)
		x.scalarOps++
		x.applyControl(f, in)

	case fuse.ClassReg:
		if !fi.Thick {
			x.record(f, slot, in, 0, 1, f.Mode == tcf.NUMA)
			if fi.Kern != nil {
				fi.Kern(x.fenv, f, 0, 1)
			} else {
				x.execAtomic(f, in)
			}
			x.scalarOps++
			f.PC++
			return
		}
		w := f.Lanes()
		x.record(f, slot, in, 0, w, f.Mode == tcf.NUMA)
		x.execLanes(f, in, w)
		x.ops += int64(w)
		f.PC++

	case fuse.ClassMem:
		if !fi.Thick {
			x.record(f, slot, in, 0, 1, f.Mode == tcf.NUMA)
			x.execAtomic(f, in)
			x.scalarOps++
			f.PC++
			return
		}
		w := f.Lanes()
		x.record(f, slot, in, 0, w, f.Mode == tcf.NUMA)
		x.execLanes(f, in, w)
		x.ops += int64(w)
		f.PC++

	default: // fuse.ClassAtomic
		w := 1
		if fi.Thick {
			w = f.Lanes()
		}
		x.record(f, slot, in, 0, w, f.Mode == tcf.NUMA)
		x.execAtomic(f, in)
		if w <= 1 {
			x.scalarOps++
		} else {
			x.ops += int64(w)
		}
		f.PC++
	}
}

// fusedLaneRange executes lanes [first, first+n) of the compiled instruction
// at f.PC, returning false when the caller must fall back to the
// interpreter's per-lane reference path (the oracle for refSeq accounting,
// discipline records, forwarding and NUMA stalls).
func (x *groupExec) fusedLaneRange(f *tcf.Flow, fi *fuse.Instr, first, n int) bool {
	if fi.Class == fuse.ClassReg {
		if fi.Kern == nil {
			return false
		}
		fi.Kern(x.fenv, f, first, first+n)
		return true
	}
	// Bulk shared-memory kernels engage only on the uniform fast path:
	// fault-free, no discipline recording, lockstep (buffered) semantics,
	// PRAM mode, no store-to-load forwarding. Per-reference bookkeeping is
	// then loop-invariant — refSeq never advances without a fault plan — so
	// hoisting it out of the lane loop is observationally identical. Under
	// the dataflow scheduler loads take the reference path too: loadShared
	// is where the per-page frontier gate lives (the bulk ST kernel below
	// stays engaged — buffered stores need no gating).
	if n <= 0 || x.m.cfg.FaultPlan != nil || x.disc || x.immediate || x.fwdOn || f.Mode == tcf.NUMA {
		return false
	}
	if x.df != nil && fi.In.Op == isa.LD {
		return false
	}
	in := &fi.In
	end := first + n
	sh := x.m.shared
	// maxDist only grows toward the group's row maximum; once it saturates
	// the per-lane module lookup is dead work, so the loops below drop it.
	rowMax := x.rowMax
	switch in.Op {
	case isa.LD:
		if !in.Rd.IsVector() {
			return false
		}
		row := x.m.dist[x.g.Index*x.m.nmods:][:x.m.nmods]
		dst := f.Vector(in.Rd)
		maxDist := x.maxDist
		if in.Ra.IsVector() {
			av := f.Vector(in.Ra)
			imm := in.Imm
			rd := sh.Reader()
			i := first
			for ; i < end && maxDist < rowMax; i++ {
				addr := av[i] + imm
				if d := row[sh.ModuleOf(addr)]; d > maxDist {
					maxDist = d
				}
				dst[i] = rd.Peek(addr)
			}
			for ; i < end; i++ {
				dst[i] = rd.Peek(av[i] + imm)
			}
		} else {
			// Flow-common broadcast: one word, fetched once per lane in the
			// reference path; the module distance is the same every time.
			base := in.Imm
			if in.Ra != isa.RegNone {
				base += f.Scalar(in.Ra)
			}
			if d := row[sh.ModuleOf(base)]; d > maxDist {
				maxDist = d
			}
			v := sh.Peek(base)
			for i := first; i < end; i++ {
				dst[i] = v
			}
		}
		x.maxDist = maxDist
		x.anyShared = true
		x.sharedReads += int64(n)
		return true

	case isa.ST:
		row := x.m.dist[x.g.Index*x.m.nmods:][:x.m.nmods]
		var av, bv []int64
		var bs int64
		base := in.Imm
		if in.Ra.IsVector() {
			av = f.Vector(in.Ra)
		} else if in.Ra != isa.RegNone {
			base += f.Scalar(in.Ra)
		}
		if in.Rb.IsVector() {
			bv = f.Vector(in.Rb)
		} else {
			bs = f.Scalar(in.Rb)
		}
		writes := slices.Grow(x.writes, n)
		fid := f.ID
		maxDist := x.maxDist
		i := first
		for ; i < end && maxDist < rowMax; i++ {
			addr := base
			if av != nil {
				addr += av[i]
			}
			val := bs
			if bv != nil {
				val = bv[i]
			}
			if d := row[sh.ModuleOf(addr)]; d > maxDist {
				maxDist = d
			}
			writes = append(writes, mem.Write{Addr: addr, Val: val,
				Key: mem.Key{Flow: fid, Thread: i, Seq: 0}})
		}
		for ; i < end; i++ {
			addr := base
			if av != nil {
				addr += av[i]
			}
			val := bs
			if bv != nil {
				val = bv[i]
			}
			writes = append(writes, mem.Write{Addr: addr, Val: val,
				Key: mem.Key{Flow: fid, Thread: i, Seq: 0}})
		}
		x.writes = writes
		x.maxDist = maxDist
		x.anyShared = true
		x.sharedWrites += int64(n)
		return true
	}
	return false
}

// runFusedRun executes the fused straight-line run starting at f.PC: up to
// maxInstrs register instructions back to back via their compiled kernels,
// with per-instruction fetch, trace and budget accounting identical to the
// generic loop. It returns the number of window slots consumed; 0 means the
// caller must take the generic path (not a register run, a fragment — whose
// safety check lives there — or a lane range wide enough to fan out to the
// chunk pool).
func (x *groupExec) runFusedRun(f *tcf.Flow, slot int, plan StepPlan, budget *int, maxInstrs int) int {
	fp := x.m.fprog
	if f.PC < 0 || f.PC >= len(fp.Code) || f.IsFragment {
		return 0
	}
	fi := &fp.Code[f.PC]
	if fi.Class != fuse.ClassReg || fi.Kern == nil {
		return 0
	}
	// Lane ranges at or above the chunking threshold take the generic path,
	// where execLanes fans them out to the worker pool exactly as the
	// interpreter would.
	chunky := x.m.cfg.Parallel && !x.immediate && x.m.cfg.LaneParallelThreshold > 0
	th := x.m.cfg.LaneParallelThreshold
	numa := f.Mode == tcf.NUMA
	trace := x.m.cfg.TraceEnabled
	consumed := 0
	for {
		w := 1
		if fi.Thick {
			w = f.Lanes()
		}
		if fi.Thick && chunky && w >= th {
			break
		}
		x.fetches++
		f.InstrFetches++
		if plan.PerThreadFetch {
			if extra := int64(w - 1); extra > 0 {
				x.fetches += extra
				f.InstrFetches += extra
			}
		}
		if trace {
			x.slices = append(x.slices, SliceExec{
				Group: x.g.Index, Slot: slot, Flow: f.ID, PC: f.PC, Op: fi.In.Op,
				FirstLane: 0, Lanes: w, NUMA: numa,
			})
		}
		fi.Kern(x.fenv, f, 0, w)
		if fi.Thick {
			x.ops += int64(w)
		} else {
			x.scalarOps++
		}
		if plan.Budget > 0 {
			*budget -= w
		}
		f.PC++
		consumed++
		if consumed >= maxInstrs || fi.Run <= 1 {
			break
		}
		fi = &fp.Code[f.PC]
		if fi.Class != fuse.ClassReg || fi.Kern == nil {
			break
		}
	}
	return consumed
}
