package machine

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"

	"tcfpram/internal/fuse"
	"tcfpram/internal/isa"
	"tcfpram/internal/mem"
	"tcfpram/internal/multiop"
	"tcfpram/internal/tcf"
	"tcfpram/internal/variant"
)

// Group is one physical pipeline: Tp TCF processor slots sharing a local
// memory block. Buf is the group's TCF storage buffer (Figure 13), owned by
// the frontend.
type Group struct {
	Index int
	Local *mem.Local
	Buf   StorageBuf
}

// Machine is one extended PRAM-NUMA machine instance, organized as the
// staged pipeline of Figure 13: the frontend owns the TCF storage buffers
// (residency, task rotation, balanced splitting of overly thick flows), the
// backend owns operation generation, memory resolution and commit, and each
// step hands a StepPlan from the one to the other.
type Machine struct {
	cfg    Config
	policy variant.Policy
	shape  variant.StepShape
	prog   *isa.Program
	// fprog is the compiled program of the fused backend (Config.Backend ==
	// BackendFused), built at LoadProgram/Restore; nil under the interpreter.
	fprog *fuse.Program

	front frontend
	back  backend

	shared *mem.Shared
	groups []*Group

	flows      map[int]*tcf.Flow
	flowList   []*tcf.Flow // same flows in creation (= id) order: the per-step scans iterate this, not the map
	homeGroup  map[int]int // flow id -> group index
	nextFlowID int

	combiners [len(combineKinds)]*multiop.Combiner

	// Step-engine state, allocated once and reused every step (exec.go):
	// per-group execution arenas, the flattened group×module distance
	// table, and the merge scratch slices.
	execs       []*groupExec
	nmods       int
	dist        []int
	stepOutputs []Output
	stepEvents  []deferredEvent
	routes      []prefixRoute
	discAccs    []discAcc // step's recorded accesses (Config.MemDiscipline)
	wg          sync.WaitGroup

	// dfFront is the dataflow scheduler's per-page dependency frontier,
	// non-nil only while runDataflow drives the machine; groupExec.reset
	// captures it so generation gates shared reads on the write frontier.
	dfFront *mem.Frontier

	stats  Stats
	output []Output

	halted  bool
	runErr  error
	stepRec *StepRecord // current step's trace record (when tracing)
	trace   []*StepRecord

	// recArena/gcArena chunk-allocate trace records and their GroupCycles
	// rows so tracing costs ~1 allocation per step instead of several.
	// Records handed out stay alive through m.trace; Reset drops both.
	recArena   []StepRecord
	gcArena    []int64
	sliceArena []SliceExec
}

// New builds a machine for cfg (normalized) with an empty program.
func New(cfg Config) (*Machine, error) {
	c, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	pol, err := variant.PolicyFor(c.Variant)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	shared, err := mem.NewShared(c.SharedWords, c.Groups, c.WritePolicy)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	m := &Machine{
		cfg:       c,
		policy:    pol,
		shape:     pol.Shape(c.machineShape()),
		shared:    shared,
		flows:     make(map[int]*tcf.Flow, 8),
		flowList:  make([]*tcf.Flow, 0, 8),
		homeGroup: make(map[int]int, 8),
	}
	m.front.m = m
	m.back.m = m
	copy(m.combiners[:], multiop.NewCombinerBank(combineKinds[:]))
	m.shared.SetParallel(c.Parallel)
	m.stats.PerGroupOps = make([]int64, c.Groups)
	m.stats.PerGroupCycles = make([]int64, c.Groups)
	// One backing array per kind: the per-group structs are small and
	// always allocated together, so batching them keeps machine
	// construction (pool misses, benchmark iterations) cheap.
	garr := make([]Group, c.Groups)
	xarr := make([]groupExec, c.Groups)
	m.groups = make([]*Group, c.Groups)
	m.execs = make([]*groupExec, c.Groups)
	for i := 0; i < c.Groups; i++ {
		local, err := mem.NewLocal(i, c.LocalWords)
		if err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		garr[i] = Group{Index: i, Local: local}
		xarr[i] = groupExec{m: m, g: &garr[i],
			fenv: fuse.Env{Group: i, Groups: c.Groups, Procs: c.TotalProcessors()}}
		m.groups[i] = &garr[i]
		m.execs[i] = &xarr[i]
	}
	// Group→module distances never change (failover remaps the module
	// index, not the metric), so the hot path indexes a flat table instead
	// of calling into the topology per reference.
	m.nmods = m.shared.Modules()
	m.dist = make([]int, c.Groups*m.nmods)
	for g := 0; g < c.Groups; g++ {
		for mod := 0; mod < m.nmods; mod++ {
			m.dist[g*m.nmods+mod] = c.Topology.Distance(g, mod)
		}
	}
	for _, x := range m.execs {
		for _, d := range m.dist[x.g.Index*m.nmods:][:m.nmods] {
			x.rowMax = max(x.rowMax, d)
		}
	}
	return m, nil
}

// combineKinds lists the combining-operation kinds with a global combiner;
// combinerIndex maps a kind to its slot.
var combineKinds = [...]isa.Op{isa.ADD, isa.AND, isa.OR, isa.MAX, isa.MIN}

func combinerIndex(op isa.Op) int {
	switch op {
	case isa.ADD:
		return 0
	case isa.AND:
		return 1
	case isa.OR:
		return 2
	case isa.MAX:
		return 3
	case isa.MIN:
		return 4
	}
	panic(fmt.Sprintf("machine: no combiner for %s", op))
}

// Config returns the effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// Shared exposes the shared memory (inspection, preloading workloads).
func (m *Machine) Shared() *mem.Shared { return m.shared }

// LocalMem exposes group g's local memory.
func (m *Machine) LocalMem(g int) *mem.Local { return m.groups[g].Local }

// Stats returns the accumulated statistics.
func (m *Machine) Stats() *Stats { return &m.stats }

// Outputs returns the PRINT/PRINTS records in deterministic order.
func (m *Machine) Outputs() []Output { return m.output }

// Trace returns the recorded step trace (TraceEnabled configs only).
func (m *Machine) Trace() []*StepRecord { return m.trace }

// Flows returns all flows ever created, sorted by id.
func (m *Machine) Flows() []*tcf.Flow {
	out := append([]*tcf.Flow(nil), m.flowList...)
	slices.SortFunc(out, func(a, b *tcf.Flow) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// addFlow registers f in both flow containers.
func (m *Machine) addFlow(f *tcf.Flow) {
	m.flows[f.ID] = f
	m.flowList = append(m.flowList, f)
}

// Flow returns the flow with the given id, or nil.
func (m *Machine) Flow(id int) *tcf.Flow { return m.flows[id] }

// LoadProgram installs p and preloads its data segments into shared memory.
func (m *Machine) LoadProgram(p *isa.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, d := range p.Data {
		if err := m.shared.Load(d.Addr, d.Words); err != nil {
			return fmt.Errorf("machine: loading %s: %w", p.Name, err)
		}
	}
	m.prog = p
	m.fprog = nil
	if m.cfg.Backend == BackendFused {
		m.fprog = fuse.Cached(p)
	}
	return nil
}

// Program returns the loaded program.
func (m *Machine) Program() *isa.Program { return m.prog }

// newFlow allocates a flow and registers it on group g (resident if a slot
// is free, otherwise pending).
func (m *Machine) newFlow(pc, thickness, g int) *tcf.Flow {
	f := tcf.New(m.nextFlowID, pc, thickness)
	m.nextFlowID++
	m.addFlow(f)
	m.front.place(f, g)
	m.stats.FlowsCreated++
	if live := m.liveFlows(); live > m.stats.MaxLiveFlows {
		m.stats.MaxLiveFlows = live
	}
	return f
}

// liveFlows counts flows not yet Done.
func (m *Machine) liveFlows() int {
	n := 0
	for _, f := range m.flowList {
		if f.State != tcf.Done {
			n++
		}
	}
	return n
}

// Boot creates the initial flow population the variant's policy prescribes:
//
//   - TCF variants (SingleInstruction, Balanced, MultiInstruction): one flow
//     of thickness 1 at the program entry (Section 2.2: a program starts
//     with a flow of thickness one).
//   - Thread variants (SingleOperation, ConfigurableSingleOperation): P*Tp
//     flows of thickness 1, one per slot; flow id = global thread id.
//   - FixedThickness: one flow of the fixed vector width on group 0.
func (m *Machine) Boot() error {
	if m.prog == nil {
		return fmt.Errorf("machine: Boot before LoadProgram")
	}
	if len(m.flows) != 0 {
		return fmt.Errorf("machine: already booted")
	}
	entry := m.prog.Entry()
	for _, bf := range m.policy.BootFlows(m.cfg.machineShape()) {
		m.newFlow(entry, bf.Thickness, bf.Group)
	}
	return nil
}

// Done reports whether every flow has terminated (or the machine errored).
func (m *Machine) Done() bool {
	if m.halted || m.runErr != nil {
		return true
	}
	if len(m.flows) == 0 {
		return false
	}
	return m.liveFlows() == 0
}

// Err returns the runtime error that stopped the machine, if any.
func (m *Machine) Err() error { return m.runErr }

// Run boots (if needed) and steps the machine until completion. It returns
// the final statistics.
func (m *Machine) Run() (*Stats, error) { return m.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the context is checked
// between steps, and a canceled run stops with an error wrapping
// ErrCanceled. The progress watchdog (Config.WatchdogSteps) also runs here,
// converting silent livelock into an error wrapping ErrDeadlock.
func (m *Machine) RunContext(ctx context.Context) (*Stats, error) {
	if len(m.flows) == 0 {
		if err := m.Boot(); err != nil {
			return nil, err
		}
	}
	// The dataflow scheduler applies to lockstep step shapes; immediate
	// (XMT-style) semantics serialize memory within the step and keep the
	// lockstep engine. Manual Step() always steps lockstep.
	if m.cfg.Sched == SchedDataflow && m.shape.Lockstep {
		return m.runDataflow(ctx)
	}
	wd := newWatchdog(m.cfg.WatchdogSteps)
	for !m.Done() {
		if err := ctx.Err(); err != nil {
			m.runErr = fmt.Errorf("machine: %w after %d steps: %v", ErrCanceled, m.stats.Steps, err)
			break
		}
		if m.stats.Steps >= m.cfg.MaxSteps {
			m.runErr = fmt.Errorf("machine: exceeded MaxSteps=%d (livelock?): %w", m.cfg.MaxSteps, ErrMaxSteps)
			break
		}
		if wd.window > 0 && wd.observe(m) {
			m.runErr = fmt.Errorf("machine: watchdog: state cycle with no observable work over %d+ steps (silent livelock): %w", wd.window, ErrDeadlock)
			break
		}
		if err := m.Step(); err != nil {
			m.runErr = err
			break
		}
		// Periodic checkpointing (Config.CheckpointEvery): the snapshot is
		// taken here, at the step boundary, where the machine state is
		// well-defined. The trigger lives in RunContext rather than Step so
		// the direct step loop stays allocation-free when disabled.
		if every := m.cfg.CheckpointEvery; every > 0 && m.cfg.CheckpointSink != nil && m.stats.Steps%every == 0 {
			if err := m.cfg.CheckpointSink.Checkpoint(m.stats.Steps, m.Snapshot); err != nil {
				m.runErr = fmt.Errorf("machine: checkpoint at step %d: %w", m.stats.Steps, err)
				break
			}
		}
	}
	return &m.stats, m.runErr
}

// progressMark summarizes the observable work of the run: memory traffic
// (issued and committed references, local reads and writes), flow
// population events (splits, joins, creations), barriers and outputs.
// Every term is monotone, so the mark is constant over a stretch of steps
// exactly when the machine did no observable work in that stretch. Quiet is
// not itself livelock — register-only computation is quiet too — so the
// watchdog treats a quiet stretch only as the trigger to start cycle
// detection (watchdog.go). Spin-waiting on shared or local memory still
// counts as work (the reads are issued traffic), so lockstep polling
// patterns never even reach the detector.
func (m *Machine) progressMark() int64 {
	_, committed, issued := m.shared.Stats()
	return committed + issued +
		m.stats.LocalReads + m.stats.LocalWrites +
		m.stats.FlowsCreated + m.stats.Splits + m.stats.Joins +
		m.stats.Barriers + int64(len(m.output))
}

// failf records a runtime error and stops the machine.
func (m *Machine) failf(format string, args ...any) error {
	err := fmt.Errorf("machine: "+format, args...)
	m.runErr = err
	return err
}

// failw is failf wrapping a sentinel from the error taxonomy.
func (m *Machine) failw(sentinel error, format string, args ...any) error {
	err := fmt.Errorf("machine: "+format+": %w", append(args, sentinel)...)
	m.runErr = err
	return err
}
