package machine

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"

	"tcfpram/internal/isa"
	"tcfpram/internal/mem"
	"tcfpram/internal/multiop"
	"tcfpram/internal/tcf"
	"tcfpram/internal/variant"
)

// Group is one physical pipeline: Tp TCF processor slots sharing a local
// memory block. Resident holds the flows in the TCF storage buffer; Pending
// queues flows (tasks) beyond the buffer capacity.
type Group struct {
	Index    int
	Local    *mem.Local
	Resident []*tcf.Flow
	Pending  []*tcf.Flow

	// rrStart rotates the slot the Balanced engine serves first, so a
	// thick flow cannot starve its slot-mates of the operation budget.
	rrStart int
}

// live returns the number of not-Done resident flows.
func (g *Group) live() int {
	n := 0
	for _, f := range g.Resident {
		if f.State != tcf.Done {
			n++
		}
	}
	return n
}

// load returns resident-not-done plus pending flows (placement pressure).
func (g *Group) load() int { return g.live() + len(g.Pending) }

// Machine is one extended PRAM-NUMA machine instance.
type Machine struct {
	cfg  Config
	prog *isa.Program

	shared *mem.Shared
	groups []*Group

	flows      map[int]*tcf.Flow
	homeGroup  map[int]int // flow id -> group index
	nextFlowID int

	combiners [len(combineKinds)]*multiop.Combiner

	// Step-engine state, allocated once and reused every step (exec.go):
	// per-group execution arenas, the flattened group×module distance
	// table, and the merge scratch slices.
	execs       []*groupExec
	nmods       int
	dist        []int
	stepOutputs []Output
	stepEvents  []deferredEvent
	routes      []prefixRoute
	wg          sync.WaitGroup

	stats  Stats
	output []Output

	halted  bool
	runErr  error
	stepRec *StepRecord // current step's trace record (when tracing)
	trace   []*StepRecord
}

// New builds a machine for cfg (normalized) with an empty program.
func New(cfg Config) (*Machine, error) {
	c, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:       c,
		shared:    mem.NewShared(c.SharedWords, c.Groups, c.WritePolicy),
		flows:     make(map[int]*tcf.Flow),
		homeGroup: make(map[int]int),
	}
	for i, kind := range combineKinds {
		m.combiners[i] = multiop.NewCombiner(kind)
	}
	m.shared.SetParallel(c.Parallel)
	m.stats.PerGroupOps = make([]int64, c.Groups)
	m.stats.PerGroupCycles = make([]int64, c.Groups)
	for i := 0; i < c.Groups; i++ {
		m.groups = append(m.groups, &Group{Index: i, Local: mem.NewLocal(i, c.LocalWords)})
		m.execs = append(m.execs, &groupExec{m: m, g: m.groups[i]})
	}
	// Group→module distances never change (failover remaps the module
	// index, not the metric), so the hot path indexes a flat table instead
	// of calling into the topology per reference.
	m.nmods = m.shared.Modules()
	m.dist = make([]int, c.Groups*m.nmods)
	for g := 0; g < c.Groups; g++ {
		for mod := 0; mod < m.nmods; mod++ {
			m.dist[g*m.nmods+mod] = c.Topology.Distance(g, mod)
		}
	}
	return m, nil
}

// combineKinds lists the combining-operation kinds with a global combiner;
// combinerIndex maps a kind to its slot.
var combineKinds = [...]isa.Op{isa.ADD, isa.AND, isa.OR, isa.MAX, isa.MIN}

func combinerIndex(op isa.Op) int {
	switch op {
	case isa.ADD:
		return 0
	case isa.AND:
		return 1
	case isa.OR:
		return 2
	case isa.MAX:
		return 3
	case isa.MIN:
		return 4
	}
	panic(fmt.Sprintf("machine: no combiner for %s", op))
}

// Config returns the effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// Shared exposes the shared memory (inspection, preloading workloads).
func (m *Machine) Shared() *mem.Shared { return m.shared }

// LocalMem exposes group g's local memory.
func (m *Machine) LocalMem(g int) *mem.Local { return m.groups[g].Local }

// Stats returns the accumulated statistics.
func (m *Machine) Stats() *Stats { return &m.stats }

// Outputs returns the PRINT/PRINTS records in deterministic order.
func (m *Machine) Outputs() []Output { return m.output }

// Trace returns the recorded step trace (TraceEnabled configs only).
func (m *Machine) Trace() []*StepRecord { return m.trace }

// Flows returns all flows ever created, sorted by id.
func (m *Machine) Flows() []*tcf.Flow {
	out := make([]*tcf.Flow, 0, len(m.flows))
	for _, f := range m.flows {
		out = append(out, f)
	}
	slices.SortFunc(out, func(a, b *tcf.Flow) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// Flow returns the flow with the given id, or nil.
func (m *Machine) Flow(id int) *tcf.Flow { return m.flows[id] }

// LoadProgram installs p and preloads its data segments into shared memory.
func (m *Machine) LoadProgram(p *isa.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, d := range p.Data {
		if err := m.shared.Load(d.Addr, d.Words); err != nil {
			return fmt.Errorf("machine: loading %s: %w", p.Name, err)
		}
	}
	m.prog = p
	return nil
}

// Program returns the loaded program.
func (m *Machine) Program() *isa.Program { return m.prog }

// newFlow allocates a flow and registers it on group g (resident if a slot
// is free, otherwise pending).
func (m *Machine) newFlow(pc, thickness, g int) *tcf.Flow {
	f := tcf.New(m.nextFlowID, pc, thickness)
	m.nextFlowID++
	m.flows[f.ID] = f
	m.placeFlow(f, g)
	m.stats.FlowsCreated++
	if live := m.liveFlows(); live > m.stats.MaxLiveFlows {
		m.stats.MaxLiveFlows = live
	}
	return f
}

func (m *Machine) placeFlow(f *tcf.Flow, g int) {
	grp := m.groups[g]
	f.Home = g
	m.homeGroup[f.ID] = g
	if len(grp.Resident) < m.cfg.ProcsPerGroup {
		grp.Resident = append(grp.Resident, f)
	} else {
		grp.Pending = append(grp.Pending, f)
	}
}

// leastLoadedGroup picks the group with minimum load (ties: lowest index),
// the horizontal allocation rule of Section 4.
func (m *Machine) leastLoadedGroup() int {
	best, bestLoad := 0, int(^uint(0)>>1)
	for i, g := range m.groups {
		if l := g.load(); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// liveFlows counts flows not yet Done.
func (m *Machine) liveFlows() int {
	n := 0
	for _, f := range m.flows {
		if f.State != tcf.Done {
			n++
		}
	}
	return n
}

// preemptGroups rotates one ready resident flow per group back to the
// pending queue when the time-slice quantum expires, giving queued tasks a
// turn — preemptive time-shared multitasking with TCFs as tasks.
func (m *Machine) preemptGroups() {
	q := m.cfg.TimeSliceSteps
	if q <= 0 || m.stats.Steps == 0 || m.stats.Steps%q != 0 {
		return
	}
	for _, g := range m.groups {
		if len(g.Pending) == 0 {
			continue
		}
		for i, f := range g.Resident {
			if f.State != tcf.Ready {
				continue
			}
			g.Resident = append(g.Resident[:i], g.Resident[i+1:]...)
			g.Pending = append(g.Pending, f)
			m.stats.TaskSwitches++
			if m.cfg.Variant.Props().FixedThreads {
				m.stats.TaskSwitchCycles += int64(m.cfg.ProcsPerGroup)
			}
			break
		}
	}
}

// compactGroups drops Done flows from the TCF buffers and promotes pending
// flows into freed slots — the zero-cost task switch of the TCF variants
// (Table 1): rotating the TCF storage buffer costs no cycles.
func (m *Machine) compactGroups() {
	for _, g := range m.groups {
		keep := g.Resident[:0]
		for _, f := range g.Resident {
			if f.State != tcf.Done {
				keep = append(keep, f)
			}
		}
		g.Resident = keep
		for len(g.Resident) < m.cfg.ProcsPerGroup && len(g.Pending) > 0 {
			g.Resident = append(g.Resident, g.Pending[0])
			g.Pending = g.Pending[1:]
			m.noteTaskSwitch()
		}
		// Flows parked at a barrier (or waiting on children) do not
		// execute; displace them so queued ready tasks can run — without
		// this, a barrier across an oversubscribed task set deadlocks
		// (blocked flows hold every slot while the tasks that must still
		// reach the barrier sit in the queue).
		for pendingReady(g.Pending) {
			idx := -1
			for i, f := range g.Resident {
				if f.State == tcf.Blocked || f.State == tcf.Waiting {
					idx = i
					break
				}
			}
			if idx < 0 {
				break
			}
			displaced := g.Resident[idx]
			next := g.Pending[0]
			g.Pending = append(g.Pending[1:], displaced)
			g.Resident[idx] = next
			m.noteTaskSwitch()
		}
	}
}

// pendingReady reports whether any queued flow could execute.
func pendingReady(pending []*tcf.Flow) bool {
	for _, f := range pending {
		if f.State == tcf.Ready {
			return true
		}
	}
	return false
}

// noteTaskSwitch accounts one task rotation: free for TCF variants, O(1)
// for XMT spawning, a full Tp-context switch for the thread machines
// (Table 1).
func (m *Machine) noteTaskSwitch() {
	m.stats.TaskSwitches++
	if m.cfg.Variant.Props().FixedThreads {
		m.stats.TaskSwitchCycles += int64(m.cfg.ProcsPerGroup)
	} else if m.cfg.Variant == variant.MultiInstruction {
		m.stats.TaskSwitchCycles++
	}
}

// Boot creates the initial flow population for the configured variant:
//
//   - TCF variants (SingleInstruction, Balanced, MultiInstruction): one flow
//     of thickness 1 at the program entry (Section 2.2: a program starts
//     with a flow of thickness one).
//   - Thread variants (SingleOperation, ConfigurableSingleOperation): P*Tp
//     flows of thickness 1, one per slot; flow id = global thread id.
//   - FixedThickness: one flow of the fixed vector width on group 0.
func (m *Machine) Boot() error {
	if m.prog == nil {
		return fmt.Errorf("machine: Boot before LoadProgram")
	}
	if len(m.flows) != 0 {
		return fmt.Errorf("machine: already booted")
	}
	entry := m.prog.Entry()
	switch {
	case m.cfg.Variant.Props().FixedThreads:
		for g := 0; g < m.cfg.Groups; g++ {
			for s := 0; s < m.cfg.ProcsPerGroup; s++ {
				m.newFlow(entry, 1, g)
			}
		}
	case m.cfg.Variant == variant.FixedThickness:
		m.newFlow(entry, m.cfg.VectorWidth, 0)
	default:
		m.newFlow(entry, 1, 0)
	}
	return nil
}

// Done reports whether every flow has terminated (or the machine errored).
func (m *Machine) Done() bool {
	if m.halted || m.runErr != nil {
		return true
	}
	if len(m.flows) == 0 {
		return false
	}
	return m.liveFlows() == 0
}

// Err returns the runtime error that stopped the machine, if any.
func (m *Machine) Err() error { return m.runErr }

// Run boots (if needed) and steps the machine until completion. It returns
// the final statistics.
func (m *Machine) Run() (*Stats, error) { return m.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the context is checked
// between steps, and a canceled run stops with an error wrapping
// ErrCanceled. The progress watchdog (Config.WatchdogSteps) also runs here,
// converting silent livelock into an error wrapping ErrDeadlock.
func (m *Machine) RunContext(ctx context.Context) (*Stats, error) {
	if len(m.flows) == 0 {
		if err := m.Boot(); err != nil {
			return nil, err
		}
	}
	var lastProgress int64 = -1
	var lastProgressStep int64
	for !m.Done() {
		if err := ctx.Err(); err != nil {
			m.runErr = fmt.Errorf("machine: %w after %d steps: %v", ErrCanceled, m.stats.Steps, err)
			break
		}
		if m.stats.Steps >= m.cfg.MaxSteps {
			m.runErr = fmt.Errorf("machine: exceeded MaxSteps=%d (livelock?): %w", m.cfg.MaxSteps, ErrMaxSteps)
			break
		}
		if w := m.cfg.WatchdogSteps; w > 0 {
			if p := m.progressMark(); p != lastProgress {
				lastProgress, lastProgressStep = p, m.stats.Steps
			} else if m.stats.Steps-lastProgressStep >= w {
				m.runErr = fmt.Errorf("machine: watchdog: no observable progress in %d steps (silent livelock): %w", w, ErrDeadlock)
				break
			}
		}
		if err := m.Step(); err != nil {
			m.runErr = err
			break
		}
	}
	return &m.stats, m.runErr
}

// progressMark summarizes the observable progress of the run: committed
// memory traffic, flow population changes, control-flow advancement,
// barriers and outputs. A step that changes none of these brought the
// computation no closer to termination. A self-jump leaves every term
// unchanged, so the watchdog catches it; a loop that branches moves the PC
// sum and is (conservatively) treated as progress.
func (m *Machine) progressMark() int64 {
	_, committed, issued := m.shared.Stats()
	mark := committed + issued + m.stats.LocalWrites + m.stats.FlowsCreated +
		m.stats.Joins + m.stats.Barriers + int64(m.liveFlows()) + int64(len(m.output))
	for _, f := range m.flows {
		if f.State != tcf.Done {
			mark += int64(f.PC)
		}
	}
	return mark
}

// failf records a runtime error and stops the machine.
func (m *Machine) failf(format string, args ...any) error {
	err := fmt.Errorf("machine: "+format, args...)
	m.runErr = err
	return err
}

// failw is failf wrapping a sentinel from the error taxonomy.
func (m *Machine) failw(sentinel error, format string, args ...any) error {
	err := fmt.Errorf("machine: "+format+": %w", append(args, sentinel)...)
	m.runErr = err
	return err
}
