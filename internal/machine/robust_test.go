package machine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"tcfpram/internal/fault"
	"tcfpram/internal/isa"
	"tcfpram/internal/tcf"
	"tcfpram/internal/variant"
)

func TestMaxStepsWrapsTypedError(t *testing.T) {
	_, err := runSrc(t, variant.SingleInstruction, "main:\n    JMP main\n",
		func(c *Config) { c.MaxSteps = 64 })
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("want ErrMaxSteps, got %v", err)
	}
	if !strings.Contains(err.Error(), "MaxSteps") {
		t.Fatalf("error should name MaxSteps: %v", err)
	}
}

func TestWatchdogCatchesSilentLivelock(t *testing.T) {
	m, err := runSrc(t, variant.SingleInstruction, "main:\n    JMP main\n",
		func(c *Config) {
			c.WatchdogSteps = 32
			c.MaxSteps = 1 << 20
		})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock from the watchdog, got %v", err)
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error should name the watchdog: %v", err)
	}
	if m.Stats().Steps >= 1<<20 {
		t.Fatal("watchdog fired only at MaxSteps; it saved nothing")
	}
}

func TestWatchdogTolleratesRealProgress(t *testing.T) {
	// A working program whose run is longer than the watchdog window must
	// not be killed, even with a window far smaller than the run.
	m := mustRun(t, variant.SingleInstruction, vectorAddSrc,
		func(c *Config) { c.WatchdogSteps = 2 })
	checkVectorAdd(t, m)
}

func TestWatchdogCatchesEmptyLoop(t *testing.T) {
	// The shape `while (1) { }` compiles to: materialize the condition,
	// branch on it, jump back. It rewrites the same register with the same
	// constant every iteration — no memory traffic, no flow events — so
	// only state-cycle detection can tell it from real computation.
	src := `
loop:
    LDI S1, 1
    BEQZ S1, done
    JMP loop
done:
    HALT
`
	m, err := runSrc(t, variant.SingleInstruction, src, func(c *Config) {
		c.WatchdogSteps = 64
		c.MaxSteps = 1 << 20
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock from the watchdog, got %v", err)
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error should name the watchdog: %v", err)
	}
	if s := m.Stats().Steps; s >= 1<<12 {
		t.Fatalf("period-3 cycle took %d steps to catch; detection is broken", s)
	}
}

func TestWatchdogTolleratesRegisterOnlyCompute(t *testing.T) {
	// A long register-only computation is exactly as quiet as a livelock —
	// no memory traffic for tens of thousands of steps — but its state
	// never repeats. The watchdog must let it run to completion even with
	// a window far smaller than the quiet stretch.
	src := `
.data 300: 0
main:
    LDI S1, 20000
    LDI S2, 1
loop:
    BEQZ S1, done
    SUB S1, S1, S2
    JMP loop
done:
    ST S2+300, S2
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, func(c *Config) {
		c.WatchdogSteps = 64
		c.MaxSteps = 1 << 20
	})
	if s := m.Stats().Steps; s < 20000 {
		t.Fatalf("countdown finished after only %d steps; it never ran", s)
	}
}

func TestMissingJoinDeadlockMessage(t *testing.T) {
	// The step-level deadlock check fires when live flows exist but none
	// can ever become ready. Normal assembly cannot reach it (barrier
	// release rescues blocked flows and HALT implies JOIN), so model the
	// broken state a missing join notification would leave behind: a
	// parent waiting on a child count that never drains.
	m, err := New(Default(variant.SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(isa.MustAssemble("t", "main:\n    HALT\n")); err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	f := m.Flow(0)
	f.State = tcf.Waiting
	f.LiveChildren = 1 // the child that will never JOIN
	err = m.Step()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if !strings.Contains(err.Error(), "missing JOIN") {
		t.Fatalf("deadlock message should hint at the missing JOIN: %v", err)
	}
}

func TestRunContextCanceledBetweenSteps(t *testing.T) {
	cfg := Default(variant.SingleInstruction)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(isa.MustAssemble("t", "main:\n    JMP main\n")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// recoverablePlan exercises all three machine-level fault classes: reference
// loss with retransmission, route detours, and one module fail-stop.
func recoverablePlan(seed int64) *fault.Plan {
	return &fault.Plan{
		Seed:        seed,
		MemDropRate: 0.05,
		Routes: []fault.RouteFault{
			{Group: 0, Module: 1, Interval: fault.Interval{From: 0, To: 0}},
			{Group: 2, Module: 3, Interval: fault.Interval{From: 1, To: 40}},
		},
		Modules: []fault.ModuleFault{{Module: 2, Step: 2}},
	}
}

func TestFaultPlanChangesCyclesNotResults(t *testing.T) {
	clean := mustRun(t, variant.SingleInstruction, vectorAddSrc, nil)
	faulty := mustRun(t, variant.SingleInstruction, vectorAddSrc,
		func(c *Config) { c.FaultPlan = recoverablePlan(9) })
	checkVectorAdd(t, faulty)

	cs, fs := clean.Stats(), faulty.Stats()
	if fs.Retransmits == 0 {
		t.Fatal("5% reference loss caused no retransmissions")
	}
	if fs.Reroutes == 0 {
		t.Fatal("dead routes caused no detours")
	}
	if fs.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", fs.Failovers)
	}
	if fs.FaultStallCycles == 0 {
		t.Fatal("retransmissions cost no stall cycles")
	}
	if fs.Cycles <= cs.Cycles {
		t.Fatalf("faults should inflate cycles: %d vs clean %d", fs.Cycles, cs.Cycles)
	}
	if fs.Steps != cs.Steps {
		t.Fatalf("recoverable faults must not change the step count: %d vs %d", fs.Steps, cs.Steps)
	}
}

func TestFaultPlanDeterministicInSeed(t *testing.T) {
	run := func(seed int64) *Stats {
		m := mustRun(t, variant.SingleInstruction, vectorAddSrc,
			func(c *Config) { c.FaultPlan = recoverablePlan(seed) })
		return m.Stats()
	}
	a, b := run(5), run(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan seed, different stats:\n%+v\n%+v", a, b)
	}
	differs := false
	for seed := int64(6); seed < 16 && !differs; seed++ {
		c := run(seed)
		differs = a.Retransmits != c.Retransmits || a.FaultStallCycles != c.FaultStallCycles
	}
	if !differs {
		t.Fatal("ten different plan seeds produced identical fault stats; seed unused")
	}
}

func TestTotalReferenceLossIsUnrecoverable(t *testing.T) {
	_, err := runSrc(t, variant.SingleInstruction, vectorAddSrc,
		func(c *Config) { c.FaultPlan = &fault.Plan{Seed: 1, MemDropRate: 1} })
	if !errors.Is(err, ErrFaultUnrecoverable) {
		t.Fatalf("want ErrFaultUnrecoverable, got %v", err)
	}
}

func TestModuleExhaustionIsUnrecoverable(t *testing.T) {
	plan := &fault.Plan{Seed: 1}
	for mod := 0; mod < 4; mod++ {
		plan.Modules = append(plan.Modules, fault.ModuleFault{Module: mod, Step: 1})
	}
	_, err := runSrc(t, variant.SingleInstruction, vectorAddSrc,
		func(c *Config) { c.FaultPlan = plan })
	if !errors.Is(err, ErrFaultUnrecoverable) {
		t.Fatalf("want ErrFaultUnrecoverable, got %v", err)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := Default(variant.SingleInstruction)
	cfg.WatchdogSteps = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative WatchdogSteps accepted")
	}
	cfg = Default(variant.SingleInstruction)
	cfg.FaultPlan = &fault.Plan{Seed: 1, DropRate: 2}
	if _, err := New(cfg); err == nil {
		t.Fatal("out-of-range fault plan accepted")
	}
}
