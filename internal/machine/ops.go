package machine

import (
	"fmt"
	"sync"

	"tcfpram/internal/fuse"
	"tcfpram/internal/isa"
	"tcfpram/internal/mem"
	"tcfpram/internal/multiop"
	"tcfpram/internal/tcf"
)

// aluEval computes a binary ALU operation. Division and modulo by zero yield
// zero (the simulated ALU is trap-free). Shifts clamp to [0,63].
func aluEval(op isa.Op, a, b int64) int64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.MUL:
		return a * b
	case isa.DIV:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.MOD:
		if b == 0 {
			return 0
		}
		return a % b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.SHL:
		return a << clampShift(b)
	case isa.SHR:
		return a >> clampShift(b)
	case isa.MIN:
		if a < b {
			return a
		}
		return b
	case isa.MAX:
		if a > b {
			return a
		}
		return b
	case isa.SEQ:
		return b2i(a == b)
	case isa.SNE:
		return b2i(a != b)
	case isa.SLT:
		return b2i(a < b)
	case isa.SLE:
		return b2i(a <= b)
	case isa.SGT:
		return b2i(a > b)
	case isa.SGE:
		return b2i(a >= b)
	}
	panic(fmt.Sprintf("machine: aluEval on %s", op))
}

func clampShift(b int64) uint {
	if b < 0 {
		return 0
	}
	if b > 63 {
		return 63
	}
	return uint(b)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// isThick reports whether the instruction executes one operation per lane of
// the flow (as opposed to a single flow-level operation). Thickness is an
// instruction property — the flow argument is kept for call-site symmetry;
// isa.Instr.Thick is the single source of truth (shared with the fuse
// compiler).
func isThick(f *tcf.Flow, in isa.Instr) bool {
	return in.Thick()
}

// width returns the number of operation slices the instruction occupies for
// this flow: Lanes() for thick instructions, 1 for flow-level ones.
func width(f *tcf.Flow, in isa.Instr) int {
	if isThick(f, in) {
		return f.Lanes()
	}
	return 1
}

// laneVal reads operand r for lane i: scalars broadcast, vector reads beyond
// the lane count (possible only for flow-level instructions on thin flows)
// yield zero.
func laneVal(f *tcf.Flow, r isa.Reg, i int) int64 {
	if r.IsScalar() {
		return f.Scalar(r)
	}
	v := f.Vector(r)
	if i >= len(v) {
		return 0
	}
	return v[i]
}

// fragmentUnsafe reports whether an instruction cannot execute correctly in
// an auto-split fragment: anything funnelling thread-wise data into the
// flow-common scalar state would act on the fragment's lanes only
// (reductions, and scalar-destination operations with thread-wise sources —
// the lane-0 extract). The OS may only fragment flows whose continuation is
// free of such instructions; the machine fails loudly otherwise.
func fragmentUnsafe(f *tcf.Flow, in isa.Instr) bool {
	if !f.IsFragment {
		return false
	}
	if in.Op.IsReduction() {
		return true
	}
	if !in.Rd.IsScalar() {
		return false
	}
	switch in.Op.Info().Args {
	case isa.ArgsDA:
		return in.Ra.IsVector()
	case isa.ArgsDAB:
		return in.Ra.IsVector() || (!in.HasImm && in.Rb.IsVector())
	case isa.ArgsDABC:
		return in.Ra.IsVector() || in.Rb.IsVector() || in.Rc.IsVector()
	case isa.ArgsDMem:
		return in.Ra.IsVector()
	}
	return false
}

// prefixRoute records where a multiprefix result must be delivered at the
// end of the step.
type prefixRoute struct {
	flow *tcf.Flow
	reg  isa.Reg
	lane int
}

// pendingContrib is a combining contribution gathered during the parallel
// phase, before the global combiners see it. The route is stored by value
// (hasRoute distinguishes plain multioperations) so accumulating
// contributions never allocates.
type pendingContrib struct {
	kind     isa.Op
	c        multiop.Contribution
	route    prefixRoute
	hasRoute bool
}

// eventKind tags deferred cross-flow events processed after the parallel
// phase.
type eventKind int

const (
	evSplit eventKind = iota
	evChildDone
	evAutoSplit
	// evFragmentRejoin: an auto-split fragment reached a thickness/mode/
	// structure change; the container resumes at that PC (with the
	// fragment's scalar state — identical across fragments by the
	// fragment-safety guard) once every fragment arrives.
	evFragmentRejoin
)

type armSpec struct {
	thick int
	pc    int
}

type deferredEvent struct {
	kind  eventKind
	flow  *tcf.Flow // split parent, finished child, or auto-split victim
	arms  []armSpec
	thick int // evAutoSplit: the logical thickness to fragment
	pc    int // evFragmentRejoin: where the container resumes
}

// groupCounters is the per-step statistics block of one group's execution —
// every scalar the merge stage folds into Stats. It is split out of
// groupExec so the dataflow scheduler can snapshot it into a step packet
// with one struct copy; the lockstep engine reads it off the exec directly.
type groupCounters struct {
	ops       int64
	scalarOps int64
	fetches   int64

	anyShared bool
	maxDist   int
	stall     int64

	// Fault-injection accounting (Config.FaultPlan): retransmission and
	// detour stalls inflate cycles, never values.
	faultStall  int64
	retransmits int64
	reroutes    int64

	sharedReads  int64
	sharedWrites int64
	localReads   int64
	localWrites  int64
	multiopRefs  int64
	barriers     int64
	laneChunks   int64
}

// groupExec carries the per-group execution state of one step. Groups run
// independently (optionally on separate goroutines); their outputs are
// merged deterministically afterwards. One arena per group lives on the
// Machine and is reset — never reallocated — every step.
type groupExec struct {
	m *Machine
	g *Group

	// fenv is the group's compiled-kernel environment (fused backend):
	// everything a fuse.Kern may read besides the flow itself.
	fenv fuse.Env

	// plan is the StepPlan stamped at reset; runGroup executes it.
	plan StepPlan
	// immediate caches !plan.Lockstep: XMT-style memory semantics where
	// loads see the current state and stores apply instantly.
	immediate bool

	// step is the step index this arena is generating — identical to the
	// machine's committed Steps under lockstep, but ahead of it when the
	// dataflow scheduler lets this group run ahead. Everything step-indexed
	// on the generation path (fault decisions, PRINT provenance) reads
	// this, never m.stats.Steps.
	step int64

	// df gates shared reads on the write frontier when the dataflow
	// scheduler is active (nil under lockstep): a read of a page with
	// uncommitted writes from an earlier step blocks until the committer
	// catches up, preserving the pre-step memory image exactly.
	df *mem.Frontier

	groupCounters

	// rowMax is the largest group→module distance in this group's row of
	// the distance table — the saturation bound for maxDist, set at build.
	rowMax int

	// refSeq numbers the group's shared references within the step so each
	// one gets an independent deterministic fault decision.
	refSeq int64

	writes   []mem.Write
	contribs []pendingContrib
	events   []deferredEvent
	outputs  []Output
	slices   []SliceExec

	// disc caches "the memory-discipline cross-checker records this step"
	// (Config.MemDiscipline checks and the plan is lockstep); accs is the
	// group's reused recording arena, audited after the merge.
	disc bool
	accs []discAcc

	// fwd is the store-to-load forwarding table of the flow currently
	// executing a NUMA bunch (its own same-step shared stores). The map is
	// allocated once and cleared per bunch; fwdOn gates lookups.
	fwd   map[int64]int64
	fwdOn bool

	// Lane-parallel state: lw holds one private worker arena per lane
	// chunk (chunk 0 runs inline on this groupExec), chunks the dispatch
	// records handed to the pool.
	lw     []*groupExec
	chunks []laneChunk
	wg     sync.WaitGroup

	err error
}

// reset prepares the arena for a new step under plan, keeping every
// allocation.
func (x *groupExec) reset(plan StepPlan) {
	x.plan = plan
	x.immediate = !plan.Lockstep
	x.step = plan.Step
	x.df = x.m.dfFront
	x.groupCounters = groupCounters{}
	x.refSeq = 0
	x.writes = x.writes[:0]
	x.contribs = x.contribs[:0]
	x.events = x.events[:0]
	x.outputs = x.outputs[:0]
	x.slices = x.slices[:0]
	x.disc = plan.Lockstep && x.m.cfg.MemDiscipline.Checks()
	x.accs = x.accs[:0]
	x.fwdOn = false
	x.err = nil
}

// resetLaneWorker prepares a worker clone for one lane chunk whose shared
// references start at refSeq (the parent's sequence at the chunk's first
// lane, keeping fault decisions identical to serial execution).
func (x *groupExec) resetLaneWorker(refSeq, step int64) {
	x.immediate = false
	x.step = step
	x.df = x.m.dfFront
	x.groupCounters = groupCounters{}
	x.refSeq = refSeq
	x.writes = x.writes[:0]
	x.contribs = x.contribs[:0]
	// Lane workers only exist under lockstep plans (execLanes never fans
	// out in immediate mode), so the parent's lockstep gate is implied.
	x.disc = x.m.cfg.MemDiscipline.Checks()
	x.accs = x.accs[:0]
	x.fwdOn = false
	x.err = nil
}

// mergeLaneWorker folds a completed chunk's effects back into the parent in
// lane order: called for chunks 1..n-1 after chunk 0 ran inline, so the
// merged buffers are byte-for-byte what serial execution would have built.
func (x *groupExec) mergeLaneWorker(w *groupExec) {
	x.writes = append(x.writes, w.writes...)
	x.contribs = append(x.contribs, w.contribs...)
	x.accs = append(x.accs, w.accs...)
	x.ops += w.ops
	x.sharedReads += w.sharedReads
	x.sharedWrites += w.sharedWrites
	x.localReads += w.localReads
	x.localWrites += w.localWrites
	x.multiopRefs += w.multiopRefs
	x.stall += w.stall
	x.faultStall += w.faultStall
	x.retransmits += w.retransmits
	x.reroutes += w.reroutes
	x.anyShared = x.anyShared || w.anyShared
	if w.maxDist > x.maxDist {
		x.maxDist = w.maxDist
	}
	if x.err == nil && w.err != nil {
		x.err = w.err
	}
}

func (x *groupExec) failf(format string, args ...any) {
	if x.err == nil {
		x.err = fmt.Errorf("machine: group %d: %s", x.g.Index, fmt.Sprintf(format, args...))
	}
}

// failw is failf wrapping a sentinel from the error taxonomy.
func (x *groupExec) failw(sentinel error, format string, args ...any) {
	if x.err == nil {
		x.err = fmt.Errorf("machine: group %d: %s: %w", x.g.Index, fmt.Sprintf(format, args...), sentinel)
	}
}

// noteShared records a shared-memory reference for the latency model. With
// a fault plan, the reference may detour around a dead route (extra
// distance) or be lost and retransmitted (backoff stall); both inflate
// cycles without touching the referenced value.
func (x *groupExec) noteShared(addr int64, numaMode bool) {
	module := x.m.shared.ModuleOf(addr)
	dist := x.m.dist[x.g.Index*x.m.nmods+module]
	if plan := x.m.cfg.FaultPlan; plan != nil {
		step := x.step
		if plan.RouteDown(x.g.Index, module, step) {
			dist += plan.Detour()
			x.reroutes++
		}
		x.refSeq++
		if r, ok := plan.MemRetries(x.g.Index, module, step, x.refSeq); r > 0 {
			if !ok {
				x.failw(ErrFaultUnrecoverable,
					"step %d: shared reference to module %d lost %d times, retries exhausted",
					step, module, r)
				return
			}
			x.retransmits += int64(r)
			x.faultStall += plan.RetryPenalty(r)
		}
	}
	if numaMode {
		// NUMA-mode references stall inline: base + distance cycles.
		x.stall += int64(x.m.cfg.MemLatencyBase + dist)
		return
	}
	x.anyShared = true
	if dist > x.maxDist {
		x.maxDist = dist
	}
}

// loadShared performs a shared-memory read with the step semantics of the
// engine (pre-step snapshot, or immediate in XMT mode) plus store-to-load
// forwarding of the flow's own same-step writes. lane identifies the
// reading thread for the discipline cross-checker; flow-common broadcast
// loads pass lane 0 (one flow-level fetch, not per-lane references).
func (x *groupExec) loadShared(f *tcf.Flow, addr int64, lane int) int64 {
	x.sharedReads++
	if x.disc {
		x.accs = append(x.accs, discAcc{addr: addr, flow: f.ID, lane: lane, pc: f.PC})
	}
	x.noteShared(addr, f.Mode == tcf.NUMA)
	if x.immediate {
		return x.m.shared.Peek(addr)
	}
	if x.fwdOn {
		if v, ok := x.fwd[addr]; ok {
			return v
		}
	}
	if x.df != nil {
		// Dataflow scheduling: block until every earlier step's write to
		// this page has committed, so the Peek below sees exactly the
		// pre-step image lockstep execution would.
		x.df.WaitRead(x.df.PageOf(addr), x.step)
	}
	return x.m.shared.Peek(addr)
}

// storeShared buffers (or immediately applies) a shared-memory write.
func (x *groupExec) storeShared(f *tcf.Flow, addr, val int64, lane, seq int) {
	x.sharedWrites++
	if x.disc {
		x.accs = append(x.accs, discAcc{addr: addr, flow: f.ID, lane: lane, pc: f.PC, write: true})
	}
	x.noteShared(addr, f.Mode == tcf.NUMA)
	if x.immediate {
		x.m.shared.Poke(addr, val)
		return
	}
	x.writes = append(x.writes, mem.Write{Addr: addr, Val: val,
		Key: mem.Key{Flow: f.ID, Thread: lane, Seq: seq}})
	if x.fwdOn {
		x.fwd[addr] = val
	}
}

// effAddr computes the effective address of a memory operand for lane i.
func effAddr(f *tcf.Flow, in isa.Instr, i int) int64 {
	if in.Ra == isa.RegNone {
		return in.Imm
	}
	return laneVal(f, in.Ra, i) + in.Imm
}

// execLane executes lane i of an elementwise instruction.
func (x *groupExec) execLane(f *tcf.Flow, in isa.Instr, i, seq int) {
	switch {
	case in.Op == isa.LDI:
		f.SetLane(in.Rd, i, in.Imm)
	case in.Op == isa.MOV:
		f.SetLane(in.Rd, i, laneVal(f, in.Ra, i))
	case in.Op == isa.NEG:
		f.SetLane(in.Rd, i, -laneVal(f, in.Ra, i))
	case in.Op == isa.NOT:
		f.SetLane(in.Rd, i, ^laneVal(f, in.Ra, i))
	case in.Op.IsBinaryALU():
		b := in.Imm
		if !in.HasImm {
			b = laneVal(f, in.Rb, i)
		}
		f.SetLane(in.Rd, i, aluEval(in.Op, laneVal(f, in.Ra, i), b))
	case in.Op == isa.SEL:
		v := laneVal(f, in.Rc, i)
		if laneVal(f, in.Ra, i) != 0 {
			v = laneVal(f, in.Rb, i)
		}
		f.SetLane(in.Rd, i, v)
	case in.Op == isa.TID:
		if f.Mode == tcf.NUMA {
			f.SetLane(in.Rd, i, 0)
		} else {
			// Fragments of an auto-split flow carry their logical
			// thread-index offset.
			f.SetLane(in.Rd, i, int64(f.TidOffset+i))
		}
	case in.Op == isa.FID:
		f.SetLane(in.Rd, i, int64(f.ID))
	case in.Op == isa.THICK:
		// Report the logical thickness: a fragment answers for the whole
		// flow it belongs to.
		f.SetLane(in.Rd, i, int64(f.TotalThickness))
	case in.Op == isa.GID:
		f.SetLane(in.Rd, i, int64(x.g.Index))
	case in.Op == isa.PID:
		f.SetLane(in.Rd, i, int64(f.Home))
	case in.Op == isa.NPROC:
		f.SetLane(in.Rd, i, int64(x.m.cfg.TotalProcessors()))
	case in.Op == isa.NGRP:
		f.SetLane(in.Rd, i, int64(x.m.cfg.Groups))
	case in.Op == isa.LD:
		f.SetLane(in.Rd, i, x.loadShared(f, effAddr(f, in, i), i))
	case in.Op == isa.ST:
		x.storeShared(f, effAddr(f, in, i), laneVal(f, in.Rb, i), i, seq)
	case in.Op == isa.LDL:
		x.localReads++
		f.SetLane(in.Rd, i, x.g.Local.Read(effAddr(f, in, i)))
	case in.Op == isa.STL:
		x.localWrites++
		x.g.Local.Write(effAddr(f, in, i), laneVal(f, in.Rb, i))
	case in.Op.IsMultiop():
		x.multiopRefs++
		addr := effAddr(f, in, i)
		x.noteShared(addr, f.Mode == tcf.NUMA)
		kind := in.Op.CombineKind()
		val := laneVal(f, in.Rb, i)
		if x.immediate {
			// XMT-style semantics: combine against the current state,
			// lane order within the flow.
			x.m.shared.Poke(addr, multiop.Apply(kind, x.m.shared.Peek(addr), val))
			return
		}
		x.contribs = append(x.contribs, pendingContrib{
			kind: kind,
			c: multiop.Contribution{Addr: addr, Val: val,
				Key: multiop.Key{Flow: f.ID, Thread: i, Seq: seq}},
		})
	case in.Op.IsMultiprefix():
		x.multiopRefs++
		addr := effAddr(f, in, i)
		x.noteShared(addr, f.Mode == tcf.NUMA)
		kind := in.Op.CombineKind()
		val := laneVal(f, in.Rb, i)
		if x.immediate {
			cur := x.m.shared.Peek(addr)
			f.SetLane(in.Rd, i, cur)
			x.m.shared.Poke(addr, multiop.Apply(kind, cur, val))
			return
		}
		x.contribs = append(x.contribs, pendingContrib{
			kind: kind,
			c: multiop.Contribution{Addr: addr, Val: val,
				Key: multiop.Key{Flow: f.ID, Thread: i, Seq: seq}, WantPrefix: true},
			route:    prefixRoute{flow: f, reg: in.Rd, lane: i},
			hasRoute: true,
		})
	default:
		x.failf("flow %d: opcode %s has no lane semantics", f.ID, in.Op)
	}
}

// execLaneRange executes lanes [first, first+n) of a sliceable instruction
// with seq 0, in lane order. Under the fused backend the range runs through
// the compiled kernel (or bulk memory kernel) when one applies; every other
// case — and the whole interpreter backend — takes the reference per-lane
// path below.
func (x *groupExec) execLaneRange(f *tcf.Flow, in isa.Instr, first, n int) {
	if fp := x.m.fprog; fp != nil && x.fusedLaneRange(f, &fp.Code[f.PC], first, n) {
		return
	}
	x.execLaneRangeInterp(f, in, first, n)
}

// execLaneRangeInterp is the reference lane-range loop — exactly the serial
// execLane loop, but the hot op classes hoist register-file lookups out of
// the lane loop. Vector operands of a sliceable instruction always span the
// full lane count (Flow.Vector sizes them to Lanes()), so the bulk loops
// index directly.
func (x *groupExec) execLaneRangeInterp(f *tcf.Flow, in isa.Instr, first, n int) {
	end := first + n
	switch {
	case in.Op.IsBinaryALU() && in.Rd.IsVector():
		dst := f.Vector(in.Rd)
		var av, bv []int64
		var as, bs int64
		if in.Ra.IsVector() {
			av = f.Vector(in.Ra)
		} else {
			as = f.Scalar(in.Ra)
		}
		switch {
		case in.HasImm:
			bs = in.Imm
		case in.Rb.IsVector():
			bv = f.Vector(in.Rb)
		default:
			bs = f.Scalar(in.Rb)
		}
		op := in.Op
		switch {
		case av != nil && bv != nil:
			for i := first; i < end; i++ {
				dst[i] = aluEval(op, av[i], bv[i])
			}
		case av != nil:
			for i := first; i < end; i++ {
				dst[i] = aluEval(op, av[i], bs)
			}
		case bv != nil:
			for i := first; i < end; i++ {
				dst[i] = aluEval(op, as, bv[i])
			}
		default:
			v := aluEval(op, as, bs)
			for i := first; i < end; i++ {
				dst[i] = v
			}
		}
	case in.Op == isa.LDI && in.Rd.IsVector():
		dst := f.Vector(in.Rd)
		for i := first; i < end; i++ {
			dst[i] = in.Imm
		}
	case in.Op == isa.MOV && in.Rd.IsVector():
		dst := f.Vector(in.Rd)
		if in.Ra.IsVector() {
			copy(dst[first:end], f.Vector(in.Ra)[first:end])
		} else {
			v := f.Scalar(in.Ra)
			for i := first; i < end; i++ {
				dst[i] = v
			}
		}
	case in.Op == isa.TID && in.Rd.IsVector():
		dst := f.Vector(in.Rd)
		if f.Mode == tcf.NUMA {
			for i := first; i < end; i++ {
				dst[i] = 0
			}
		} else {
			for i := first; i < end; i++ {
				dst[i] = int64(f.TidOffset + i)
			}
		}
	case in.Op == isa.LD && in.Rd.IsVector():
		dst := f.Vector(in.Rd)
		if in.Ra.IsVector() {
			av := f.Vector(in.Ra)
			for i := first; i < end; i++ {
				dst[i] = x.loadShared(f, av[i]+in.Imm, i)
			}
		} else {
			// Flow-common broadcast: every lane reads the one word the flow
			// fetched, so the discipline checker sees a single thread (lane
			// 0), not per-lane concurrent reads.
			base := in.Imm
			if in.Ra != isa.RegNone {
				base += f.Scalar(in.Ra)
			}
			for i := first; i < end; i++ {
				dst[i] = x.loadShared(f, base, 0)
			}
		}
	case in.Op == isa.ST:
		var av, bv []int64
		var bs int64
		base := in.Imm
		if in.Ra.IsVector() {
			av = f.Vector(in.Ra)
		} else if in.Ra != isa.RegNone {
			base += f.Scalar(in.Ra)
		}
		if in.Rb.IsVector() {
			bv = f.Vector(in.Rb)
		} else {
			bs = f.Scalar(in.Rb)
		}
		for i := first; i < end; i++ {
			addr := base
			if av != nil {
				addr += av[i]
			}
			val := bs
			if bv != nil {
				val = bv[i]
			}
			x.storeShared(f, addr, val, i, 0)
		}
	default:
		for i := first; i < end; i++ {
			x.execLane(f, in, i, 0)
		}
	}
}

// execAtomic executes flow-level instructions: reductions, prints, and the
// degenerate scalar forms. Control instructions are handled by the caller.
func (x *groupExec) execAtomic(f *tcf.Flow, in isa.Instr) {
	switch {
	case in.Op.IsReduction():
		kind := in.Op.CombineKind()
		acc := multiop.Identity(kind)
		v := f.Vector(in.Ra)
		for _, e := range v {
			acc = multiop.Apply(kind, acc, e)
		}
		f.SetScalar(in.Rd, acc)
	case in.Op == isa.PRINT:
		out := Output{Flow: f.ID, Step: x.step}
		switch {
		case in.HasImm:
			out.Values = []int64{in.Imm}
		case in.Ra.IsScalar():
			out.Values = []int64{f.Scalar(in.Ra)}
		default:
			out.Values = append([]int64(nil), f.Vector(in.Ra)...)
		}
		x.outputs = append(x.outputs, out)
	case in.Op == isa.PRINTS:
		x.outputs = append(x.outputs, Output{Flow: f.ID, Step: x.step, Text: in.Sym})
	case in.Op == isa.NOP:
	default:
		x.execLane(f, in, 0, 0)
	}
}
