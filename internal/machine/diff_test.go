package machine

// Differential testing: random race-free thick programs are executed on the
// lockstep variants (single-instruction, balanced with several bounds, the
// multi-instruction engine, and the parallel step engine) and compared
// against a direct Go reference evaluation. Any divergence is a machine bug.

import (
	"math/rand"
	"testing"

	"tcfpram/internal/isa"
	"tcfpram/internal/variant"
)

const (
	diffThickness = 11
	diffInputBase = 1000
	diffOutBase   = 2000
	diffAuxBase   = 900
)

// diffProgram is a randomly generated straight-line thick program plus its
// reference semantics.
type diffProgram struct {
	prog *isa.Program
	// want is the expected content of the output region (one word per
	// lane per store instruction).
	want []int64
	// wantAux is the expected combining word contents.
	wantAux []int64
	// hasReduction marks programs that are not fragment-safe (auto-split
	// rejects flow-level reductions inside fragments).
	hasReduction bool
}

// genDiffProgram builds a race-free random program: a single flow of fixed
// thickness computing on vector registers V1..V5 and scalars S1..S2, with
// loads from a random input array, occasional reductions and multiprefixes,
// and stores to disjoint per-lane addresses.
func genDiffProgram(rng *rand.Rand) diffProgram {
	b := isa.NewBuilder("diff")
	b.Label("main")
	b.SetThickImm(diffThickness)
	b.Id(isa.TID, isa.V(0))

	input := make([]int64, diffThickness)
	for i := range input {
		input[i] = int64(rng.Intn(41) - 20)
	}
	b.Data(diffInputBase, input...)

	// Reference state.
	lanes := diffThickness
	vregs := [6][]int64{} // V0..V5
	for r := range vregs {
		vregs[r] = make([]int64, lanes)
	}
	for i := 0; i < lanes; i++ {
		vregs[0][i] = int64(i)
	}
	sregs := [3]int64{} // S0..S2 (S0 unused)
	var want, wantAux []int64
	hasReduction := false
	auxUsed := 0
	stores := 0

	aluOps := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.MIN, isa.MAX, isa.SLT, isa.SGT, isa.SEQ}
	steps := 5 + rng.Intn(25)
	for k := 0; k < steps; k++ {
		switch rng.Intn(10) {
		case 0: // load from input, indexed by V0 (race-free)
			d := 1 + rng.Intn(5)
			b.Ld(isa.V(d), isa.V(0), diffInputBase)
			for i := 0; i < lanes; i++ {
				vregs[d][i] = input[i]
			}
		case 1: // LDI broadcast
			d := 1 + rng.Intn(5)
			imm := int64(rng.Intn(21) - 10)
			b.Ldi(isa.V(d), imm)
			for i := 0; i < lanes; i++ {
				vregs[d][i] = imm
			}
		case 2: // reduction into a scalar
			hasReduction = true
			sd := 1 + rng.Intn(2)
			sr := 1 + rng.Intn(5)
			b.Reduce(isa.RADD, isa.S(sd), isa.V(sr))
			sum := int64(0)
			for i := 0; i < lanes; i++ {
				sum += vregs[sr][i]
			}
			sregs[sd] = sum
		case 3: // ALU with scalar operand (broadcast)
			op := aluOps[rng.Intn(len(aluOps))]
			d, a := 1+rng.Intn(5), rng.Intn(6)
			sr := 1 + rng.Intn(2)
			b.ALU(op, isa.V(d), isa.V(a), isa.S(sr))
			for i := 0; i < lanes; i++ {
				vregs[d][i] = aluEval(op, vregs[a][i], sregs[sr])
			}
		case 4: // SEL
			d, c, xx, y := 1+rng.Intn(5), rng.Intn(6), rng.Intn(6), rng.Intn(6)
			b.Sel(isa.V(d), isa.V(c), isa.V(xx), isa.V(y))
			for i := 0; i < lanes; i++ {
				if vregs[c][i] != 0 {
					vregs[d][i] = vregs[xx][i]
				} else {
					vregs[d][i] = vregs[y][i]
				}
			}
		case 5: // multiprefix over a fresh aux word
			d, v := 1+rng.Intn(5), rng.Intn(6)
			addr := int64(diffAuxBase + auxUsed)
			auxUsed++
			b.Prefix(isa.MPADD, isa.V(d), isa.RegNone, addr, isa.V(v))
			acc := int64(0)
			for i := 0; i < lanes; i++ {
				pre := acc
				acc += vregs[v][i]
				vregs[d][i] = pre
			}
			wantAux = append(wantAux, acc)
		case 6: // store to a disjoint per-lane region
			v := rng.Intn(6)
			base := int64(diffOutBase + stores*diffThickness)
			stores++
			b.St(isa.V(0), base, isa.V(v))
			want = append(want, vregs[v]...)
		default: // plain vector ALU with immediate
			op := aluOps[rng.Intn(len(aluOps))]
			d, a := 1+rng.Intn(5), rng.Intn(6)
			imm := int64(rng.Intn(11) - 5)
			b.ALUI(op, isa.V(d), isa.V(a), imm)
			for i := 0; i < lanes; i++ {
				vregs[d][i] = aluEval(op, vregs[a][i], imm)
			}
		}
	}
	// Final store so every program observes something.
	v := rng.Intn(6)
	base := int64(diffOutBase + stores*diffThickness)
	b.St(isa.V(0), base, isa.V(v))
	want = append(want, vregs[v]...)
	b.Halt()
	return diffProgram{prog: b.MustBuild(), want: want, wantAux: wantAux, hasReduction: hasReduction}
}

// runDiff executes dp on a machine and compares against the reference.
func runDiff(t *testing.T, dp diffProgram, kind variant.Kind, tweak func(*Config)) {
	t.Helper()
	cfg := Default(kind)
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(dp.prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("%v: %v\n%s", kind, err, dp.prog.Listing())
	}
	got := m.Shared().Snapshot(diffOutBase, len(dp.want))
	for i := range dp.want {
		if got[i] != dp.want[i] {
			t.Fatalf("%v: out[%d] = %d, want %d\n%s", kind, i, got[i], dp.want[i], dp.prog.Listing())
		}
	}
	for i, w := range dp.wantAux {
		if got := m.Shared().Peek(int64(diffAuxBase + i)); got != w {
			t.Fatalf("%v: aux[%d] = %d, want %d", kind, i, got, w)
		}
	}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		dp := genDiffProgram(rng)
		runDiff(t, dp, variant.SingleInstruction, nil)
		runDiff(t, dp, variant.SingleInstruction, func(c *Config) { c.Parallel = true })
		runDiff(t, dp, variant.SingleInstruction, func(c *Config) {
			c.Parallel = true
			c.LaneParallelThreshold = 4 // force lane chunking at thickness 11
		})
		runDiff(t, dp, variant.MultiInstruction, nil)
		for _, bound := range []int{1, 3, 7} {
			bound := bound
			runDiff(t, dp, variant.Balanced, func(c *Config) { c.BalancedBound = bound })
		}
		// Auto-splitting must not change semantics (fragment-safe
		// programs only: fragments reject flow-level reductions).
		if !dp.hasReduction {
			runDiff(t, dp, variant.SingleInstruction, func(c *Config) { c.AutoSplitThreshold = 4 })
		}
	}
}

// genNUMADiff builds a random NUMA-mode sequential program (bunch length
// drawn per trial) exercising store-to-load forwarding and bunch
// boundaries, with its sequential reference.
func genNUMADiff(rng *rand.Rand) diffProgram {
	b := isa.NewBuilder("numadiff")
	b.Label("main")
	bunch := 1 + rng.Intn(9)
	b.NumaImm(int64(bunch))

	sregs := [4]int64{}
	memRef := map[int64]int64{}
	var want []int64
	steps := 8 + rng.Intn(30)
	outSlots := 0
	ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.MIN, isa.MAX}
	for k := 0; k < steps; k++ {
		switch rng.Intn(6) {
		case 0: // LDI
			d := 1 + rng.Intn(3)
			v := int64(rng.Intn(31) - 15)
			b.Ldi(isa.S(d), v)
			sregs[d] = v
		case 1: // store to a small shared region
			a := int64(diffAuxBase + rng.Intn(4))
			r := 1 + rng.Intn(3)
			b.St(isa.RegNone, a, isa.S(r))
			memRef[a] = sregs[r]
		case 2: // load back (forwarding within the bunch must hold)
			a := int64(diffAuxBase + rng.Intn(4))
			d := 1 + rng.Intn(3)
			b.Ld(isa.S(d), isa.RegNone, a)
			sregs[d] = memRef[a]
		case 3: // spill a result to the output region
			r := 1 + rng.Intn(3)
			b.St(isa.RegNone, int64(diffOutBase+outSlots), isa.S(r))
			want = append(want, sregs[r])
			outSlots++
		default: // ALU
			op := ops[rng.Intn(len(ops))]
			d, a2 := 1+rng.Intn(3), 1+rng.Intn(3)
			imm := int64(rng.Intn(9) - 4)
			b.ALUI(op, isa.S(d), isa.S(a2), imm)
			sregs[d] = aluEval(op, sregs[a2], imm)
		}
	}
	b.Op(isa.PRAM)
	b.Halt()
	return diffProgram{prog: b.MustBuild(), want: want}
}

func TestDifferentialNUMAPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		dp := genNUMADiff(rng)
		runDiff(t, dp, variant.SingleInstruction, nil)
		runDiff(t, dp, variant.MultiInstruction, nil)
		for _, bound := range []int{1, 2, 5} {
			bound := bound
			runDiff(t, dp, variant.Balanced, func(c *Config) { c.BalancedBound = bound })
		}
		runDiff(t, dp, variant.ConfigurableSingleOperation, nil)
	}
}
