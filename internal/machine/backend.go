package machine

import (
	"tcfpram/internal/isa"
	"tcfpram/internal/mem"
	"tcfpram/internal/tcf"
)

// backend is the execution half of the Figure 13 pipeline: thickness-driven
// operation generation across the groups, deterministic merging of their
// buffered memory traffic, and the step-boundary commit (buffered writes +
// multioperation resolution). It consumes the StepPlan the frontend
// prepared; nothing in it branches on the variant kind.
type backend struct {
	m *Machine
}

// generate runs the operation-generation stage: every group executes its
// resident flows' share of the step under the plan's shape. Immediate
// semantics must execute groups serially (they touch memory directly);
// lockstep groups are independent within a step, so group 0 runs inline
// while the rest go to the worker pool.
func (bk *backend) generate(plan StepPlan) {
	m := bk.m
	execs := m.execs
	for _, x := range execs {
		x.reset(plan)
	}
	if plan.Lockstep && m.cfg.Parallel && len(execs) > 1 {
		m.wg.Add(len(execs) - 1)
		for _, x := range execs[1:] {
			groupPool.submit(poolJob{grp: x, wg: &m.wg})
		}
		execs[0].runGroup()
		m.wg.Wait()
	} else {
		for _, x := range execs {
			x.runGroup()
		}
	}
}

// merge folds the groups' arenas into the machine deterministically (group
// order): buffered writes and combining contributions move toward the
// commit stage, outputs and deferred events are collected, statistics and
// per-stage attribution accumulate, and the step's cycle count is the
// maximum over groups.
func (bk *backend) merge() (int64, error) {
	m := bk.m
	m.stepOutputs = m.stepOutputs[:0]
	m.stepEvents = m.stepEvents[:0]
	m.routes = m.routes[:0]
	m.discAccs = m.discAccs[:0]
	var stepCycles int64
	for _, x := range m.execs {
		if x.err != nil {
			m.runErr = x.err
			return 0, x.err
		}
		gc := m.foldGroup(x.g.Index, &x.groupCounters,
			x.writes, x.contribs, x.outputs, x.events, x.accs)
		if gc > stepCycles {
			stepCycles = gc
		}
	}
	return stepCycles, nil
}

// foldGroup folds one group's generated step into the machine: buffered
// writes and combining contributions move toward the commit stage, outputs
// and deferred events are collected, statistics and per-stage attribution
// accumulate. It returns the group's cycle count for the step (the step's
// cycle count is the maximum over groups). Shared by the lockstep merge
// (reading the groupExec arenas directly) and the dataflow committer
// (reading published step packets); both call it in group-index order,
// which is what makes the two schedulers bit-identical.
func (m *Machine) foldGroup(gi int, c *groupCounters,
	writes []mem.Write, contribs []pendingContrib, outputs []Output,
	events []deferredEvent, accs []discAcc) int64 {
	m.shared.BufferWrites(writes)
	for i := range contribs {
		pc := &contribs[i]
		cb := pc.c
		if pc.hasRoute {
			m.routes = append(m.routes, pc.route)
			cb.Dest = len(m.routes) - 1
		}
		m.combiners[combinerIndex(pc.kind)].Add(cb)
	}
	m.stepOutputs = append(m.stepOutputs, outputs...)
	m.stepEvents = append(m.stepEvents, events...)
	m.discAccs = append(m.discAccs, accs...)

	opsCycles := c.ops + c.scalarOps
	var overhead int64
	if c.fetches > 0 {
		overhead = int64(m.cfg.PipelineDepth)
		if c.anyShared {
			if l := int64(m.cfg.MemLatencyBase + c.maxDist); l > overhead {
				overhead = l
			}
		}
	}
	gc := opsCycles + overhead + c.stall + c.faultStall
	m.stats.PerGroupOps[gi] += opsCycles
	m.stats.PerGroupCycles[gi] += gc
	m.stats.Ops += c.ops
	m.stats.ScalarOps += c.scalarOps
	m.stats.InstrFetches += c.fetches
	m.stats.SharedReads += c.sharedReads
	m.stats.SharedWrites += c.sharedWrites
	m.stats.LocalReads += c.localReads
	m.stats.LocalWrites += c.localWrites
	m.stats.MultiopRefs += c.multiopRefs
	m.stats.OverheadCycles += overhead
	m.stats.StallCycles += c.stall
	m.stats.FaultStallCycles += c.faultStall
	m.stats.Retransmits += c.retransmits
	m.stats.Reroutes += c.reroutes
	m.stats.Barriers += c.barriers
	m.stats.LaneChunks += c.laneChunks

	m.stats.Stages[StageOpGen].Cycles += opsCycles
	m.stats.Stages[StageOpGen].Events += c.fetches
	m.stats.Stages[StageMemory].Cycles += overhead + c.stall + c.faultStall
	m.stats.Stages[StageMemory].Events += c.sharedReads + c.sharedWrites +
		c.localReads + c.localWrites + c.multiopRefs
	m.stats.Stages[StageCommit].Events += int64(len(writes) + len(contribs))
	return gc
}

// commit is the writeback stage: buffered writes apply with the configured
// concurrent-write policy, and combining traffic resolves with prefix
// results routed back into the participating lanes.
func (bk *backend) commit() error {
	m := bk.m
	conflicts := m.shared.ApplyStep()
	if len(conflicts) > 0 {
		return m.failf("step %d: %s", m.stats.Steps, conflicts[0])
	}
	for _, comb := range m.combiners {
		if comb.Len() == 0 {
			continue
		}
		finals, prefixes := comb.Resolve(m.shared.Peek)
		//detlint:ignore each iteration pokes a distinct address, so order cannot be observed
		for addr, v := range finals {
			m.shared.Poke(addr, v)
		}
		for _, p := range prefixes {
			rt := &m.routes[p.Dest]
			rt.flow.Vector(rt.reg)[rt.lane] = p.Prefix
		}
	}
	return nil
}

// ---- per-group operation generation ----

// runGroup executes this group's share of one step under the plan stamped
// at reset: every policy's discipline (single-instruction, budgeted
// balanced slices, multi-instruction windows) is one pass of the same loop.
func (x *groupExec) runGroup() {
	plan := x.plan
	n := len(x.g.Buf.Resident)
	if n == 0 {
		return
	}
	start := 0
	if plan.Rotate {
		start = x.g.Buf.rotateStart(n)
	}
	budget := plan.Budget
	for k := 0; k < n; k++ {
		if x.err != nil || (plan.Budget > 0 && budget <= 0) {
			break
		}
		slot := (start + k) % n
		f := x.g.Buf.Resident[slot]
		if f.State != tcf.Ready {
			continue
		}
		x.runFlow(f, slot, plan, &budget)
	}
}

// runFlow advances one flow by its share of the step: up to Window
// instructions, NUMA bunches under lockstep, and budgeted lane slices when
// the plan's Slice discipline lets thick instructions continue across
// steps. budget is decremented by the operation slices consumed (only
// meaningful when plan.Budget > 0).
func (x *groupExec) runFlow(f *tcf.Flow, slot int, plan StepPlan, budget *int) {
	for k := 0; k < plan.Window; k++ {
		if f.State != tcf.Ready || x.err != nil {
			return
		}
		if plan.Lockstep && f.Mode == tcf.NUMA {
			n := f.Bunch
			if plan.Budget > 0 && n > *budget {
				n = *budget
			}
			*budget -= x.execNUMABunch(f, slot, n)
			return
		}
		if fp := x.m.fprog; fp != nil && !plan.Slice {
			// Fused straight-line run: consecutive register instructions
			// execute back to back through their compiled kernels, up to the
			// remaining window. Sliced plans keep the generic path — every
			// instruction there is an offset-carrying lane slice.
			if adv := x.runFusedRun(f, slot, plan, budget, plan.Window-k); adv > 0 {
				k += adv - 1
				continue
			}
		}
		in, ok := x.fetch(f)
		if !ok {
			return
		}
		if plan.PerThreadFetch {
			// XMT threads carry their own program counters: instruction
			// delivery is per thread, so a thickness-u instruction costs u
			// fetches (Table 1's per-thread fetch discipline), unlike the
			// fetch-once TCF variants.
			if extra := int64(width(f, in) - 1); extra > 0 {
				x.fetches += extra
				f.InstrFetches += extra
			}
		}
		if plan.Slice && sliceable(f, in) {
			w := width(f, in)
			n := w - f.Offset
			if plan.Budget > 0 && n > *budget {
				n = *budget
			}
			x.record(f, slot, in, f.Offset, n, false)
			x.execLaneRange(f, in, f.Offset, n)
			x.ops += int64(n)
			*budget -= n
			f.Offset += n
			if f.Offset >= w {
				f.Offset = 0
				f.PC++
			}
			return
		}
		// Without lockstep, synchronization ops end the flow's window: the
		// spawned/joined population must settle at the step boundary.
		stop := !plan.Lockstep && in.Op.Info().Control &&
			(in.Op == isa.SPLIT || in.Op == isa.JOIN || in.Op == isa.BAR || in.Op == isa.HALT)
		x.execWhole(f, slot, in)
		if plan.Budget > 0 {
			// Atomic instructions complete in one step; charge their full
			// width against the budget.
			*budget -= width(f, in)
		}
		if stop {
			return
		}
	}
}
