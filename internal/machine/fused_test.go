package machine

import (
	"bytes"
	"reflect"
	"testing"

	"tcfpram/internal/isa"
	"tcfpram/internal/variant"
)

func TestParseBackend(t *testing.T) {
	cases := []struct {
		s    string
		want Backend
		ok   bool
	}{
		{"interp", BackendInterp, true},
		{"", BackendInterp, true},
		{"fused", BackendFused, true},
		{"jit", 0, false},
		{"Fused", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.s)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v, ok=%v", c.s, got, err, c.want, c.ok)
		}
	}
	if BackendInterp.String() != "interp" || BackendFused.String() != "fused" {
		t.Errorf("Backend.String: %q, %q", BackendInterp, BackendFused)
	}
	if _, err := New(Config{Variant: variant.SingleInstruction, Groups: 1, ProcsPerGroup: 1, Backend: Backend(9)}); err == nil {
		t.Error("New accepted an unknown backend")
	}
}

// TestSnapshotRestoreAcrossBackends pins the cross-backend resume contract:
// the snapshot fingerprint deliberately excludes Backend, and a run
// checkpointed under either backend resumes bit-identically under the other
// — outputs, memory image and complete statistics. Both directions, at every
// kill point.
func TestSnapshotRestoreAcrossBackends(t *testing.T) {
	backends := []Backend{BackendInterp, BackendFused}
	for name, src := range resetPrograms {
		t.Run(name, func(t *testing.T) {
			prog := isa.MustAssemble(name, src)
			for _, kind := range []variant.Kind{variant.SingleInstruction, variant.MultiInstruction} {
				oracleCfg := Default(kind)
				oracle, err := New(oracleCfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := oracle.LoadProgram(prog); err != nil {
					t.Fatal(err)
				}
				if _, err := oracle.Run(); err != nil {
					t.Fatalf("%v oracle: %v", kind, err)
				}
				want := snapshotOf(oracle)
				total := int(oracle.Stats().Steps)

				for _, from := range backends {
					for _, to := range backends {
						for kill := 0; kill <= total; kill++ {
							fromCfg := Default(kind)
							fromCfg.Backend = from
							m, err := New(fromCfg)
							if err != nil {
								t.Fatal(err)
							}
							if err := m.LoadProgram(prog); err != nil {
								t.Fatal(err)
							}
							stepN(t, m, kill)
							var buf bytes.Buffer
							if err := m.Snapshot(&buf); err != nil {
								t.Fatalf("%v %v->%v kill=%d: snapshot: %v", kind, from, to, kill, err)
							}
							toCfg := Default(kind)
							toCfg.Backend = to
							r, err := Restore(bytes.NewReader(buf.Bytes()), toCfg)
							if err != nil {
								t.Fatalf("%v %v->%v kill=%d: restore: %v", kind, from, to, kill, err)
							}
							if _, err := r.Run(); err != nil {
								t.Fatalf("%v %v->%v kill=%d: resumed run: %v", kind, from, to, kill, err)
							}
							if got := snapshotOf(r); !reflect.DeepEqual(got, want) {
								t.Fatalf("%v %v->%v kill=%d: resumed run differs from oracle\ngot  %+v\nwant %+v",
									kind, from, to, kill, got.stats, want.stats)
							}
						}
					}
				}
			}
		})
	}
}

// TestFusedResetReuse: a Reset fused machine re-running a program matches a
// fresh fused machine (the pooled-machine contract, fused edition), and
// Reset drops the compiled program with the source program.
func TestFusedResetReuse(t *testing.T) {
	prog := isa.MustAssemble("va", vectorAddSrc)
	cfg := Default(variant.SingleInstruction)
	cfg.Backend = BackendFused
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if fresh.fprog == nil {
		t.Fatal("fused backend did not compile at LoadProgram")
	}
	if _, err := fresh.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(fresh)

	fresh.Reset()
	if fresh.fprog != nil {
		t.Fatal("Reset kept the compiled program")
	}
	if err := fresh.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if fresh.fprog == nil {
		t.Fatal("reload did not recompile")
	}
	if _, err := fresh.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshotOf(fresh); !reflect.DeepEqual(got, want) {
		t.Fatalf("reset fused machine diverged:\ngot  %+v\nwant %+v", got.stats, want.stats)
	}
}
