package machine

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"tcfpram/internal/fault"
	"tcfpram/internal/isa"
	"tcfpram/internal/variant"
)

// memSink collects checkpoints in memory, one buffer per write.
type memSink struct {
	steps []int64
	snaps [][]byte
	fail  error // when set, the next Checkpoint returns it
}

func (s *memSink) Checkpoint(step int64, snap func(w io.Writer) error) error {
	if s.fail != nil {
		return s.fail
	}
	var buf bytes.Buffer
	if err := snap(&buf); err != nil {
		return err
	}
	s.steps = append(s.steps, step)
	s.snaps = append(s.snaps, buf.Bytes())
	return nil
}

// stepN boots m and advances at most n steps (stopping early when done).
func stepN(t *testing.T, m *Machine, n int) {
	t.Helper()
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n && !m.Done(); i++ {
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestSnapshotRestoreBitIdentity: snapshot mid-run, restore into a new
// machine, run to completion — outputs, memory image and the full Stats must
// match the uninterrupted oracle at every kill point.
func TestSnapshotRestoreBitIdentity(t *testing.T) {
	for name, src := range resetPrograms {
		t.Run(name, func(t *testing.T) {
			prog := isa.MustAssemble(name, src)
			for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction} {
				cfg := Default(kind)
				oracle, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := oracle.LoadProgram(prog); err != nil {
					t.Fatal(err)
				}
				if _, err := oracle.Run(); err != nil {
					t.Fatalf("%v oracle: %v", kind, err)
				}
				want := snapshotOf(oracle)
				total := int(oracle.Stats().Steps)

				for kill := 0; kill <= total; kill++ {
					m, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := m.LoadProgram(prog); err != nil {
						t.Fatal(err)
					}
					stepN(t, m, kill)
					var buf bytes.Buffer
					if err := m.Snapshot(&buf); err != nil {
						t.Fatalf("%v kill=%d: snapshot: %v", kind, kill, err)
					}
					r, err := Restore(bytes.NewReader(buf.Bytes()), cfg)
					if err != nil {
						t.Fatalf("%v kill=%d: restore: %v", kind, kill, err)
					}
					if _, err := r.Run(); err != nil {
						t.Fatalf("%v kill=%d: resumed run: %v", kind, kill, err)
					}
					if got := snapshotOf(r); !reflect.DeepEqual(got, want) {
						t.Fatalf("%v kill=%d: resumed run differs from oracle\ngot  %+v\nwant %+v",
							kind, kill, got.stats, want.stats)
					}
				}
			}
		})
	}
}

// TestSnapshotRestoreWithFaultPlan: the fault plan's decisions are pure
// functions of (seed, step, seq), so a restored run must replay exactly the
// faults the uninterrupted run saw — same Retransmits, same Failovers, same
// cycle counts.
func TestSnapshotRestoreWithFaultPlan(t *testing.T) {
	prog := isa.MustAssemble("vector-add", vectorAddSrc)
	cfg := Default(variant.SingleInstruction)
	cfg.FaultPlan = &fault.Plan{
		Seed:        42,
		MemDropRate: 0.25, // aggressive: every run sees retransmission stalls
		Modules:     []fault.ModuleFault{{Module: 1, Step: 2}},
	}

	oracle, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(oracle)
	if oracle.Stats().Retransmits == 0 && oracle.Stats().Failovers == 0 {
		t.Fatal("fault plan injected nothing; test is vacuous")
	}

	for kill := 1; kill < int(oracle.Stats().Steps); kill++ {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		stepN(t, m, kill)
		var buf bytes.Buffer
		if err := m.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		r, err := Restore(bytes.NewReader(buf.Bytes()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if got := snapshotOf(r); !reflect.DeepEqual(got, want) {
			t.Fatalf("kill=%d: faulted resume differs\ngot  %+v\nwant %+v", kill, got.stats, want.stats)
		}
	}
}

// TestRestoreConfigMismatch: restore onto a machine that differs in any
// behavior-relevant field must fail with an error naming the field.
func TestRestoreConfigMismatch(t *testing.T) {
	prog := isa.MustAssemble("vector-add", vectorAddSrc)
	cfg := Default(variant.SingleInstruction)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	stepN(t, m, 2)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		field string
		tweak func(*Config)
	}{
		{"Groups", func(c *Config) { c.Groups = 2 }},
		{"ProcsPerGroup", func(c *Config) { c.ProcsPerGroup = 8 }},
		{"SharedWords", func(c *Config) { c.SharedWords = 1 << 12 }},
		{"MemLatencyBase", func(c *Config) { c.MemLatencyBase = 2 }},
		{"MaxSteps", func(c *Config) { c.MaxSteps = 99 }},
		{"WatchdogSteps", func(c *Config) { c.WatchdogSteps = 17 }},
		{"FaultPlan", func(c *Config) { c.FaultPlan = fault.Random(7, 4, 4) }},
	}
	for _, tc := range cases {
		bad := cfg
		tc.tweak(&bad)
		_, err := Restore(bytes.NewReader(buf.Bytes()), bad)
		if err == nil {
			t.Fatalf("%s mismatch accepted", tc.field)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Fatalf("%s mismatch error %q does not name the field", tc.field, err)
		}
	}

	// Result-neutral knobs may differ freely.
	free := cfg
	free.Parallel = true
	free.LaneParallelThreshold = 8
	if _, err := Restore(bytes.NewReader(buf.Bytes()), free); err != nil {
		t.Fatalf("result-neutral config change rejected: %v", err)
	}
}

// TestSnapshotRefusedOnFailedMachine: a machine that stopped with an error
// has no well-defined boundary state to save.
func TestSnapshotRefusedOnFailedMachine(t *testing.T) {
	spin := isa.MustAssemble("spin", `
main:
    JMP main
`)
	m, err := New(Default(variant.SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetLimits(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(spin); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
	if err := m.Snapshot(io.Discard); err == nil {
		t.Fatal("snapshot of a failed machine accepted")
	}
}

// TestRestoreRejectsCorruptSnapshot: bit flips and truncation must be
// detected, never silently restored.
func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	prog := isa.MustAssemble("vector-add", vectorAddSrc)
	cfg := Default(variant.SingleInstruction)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	stepN(t, m, 2)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := Restore(bytes.NewReader(data[:len(data)/2]), cfg); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	for _, flip := range []int{len(data) / 3, len(data) / 2, len(data) - 12} {
		mut := append([]byte(nil), data...)
		mut[flip] ^= 0x40
		if _, err := Restore(bytes.NewReader(mut), cfg); err == nil {
			t.Fatalf("bit flip at %d accepted", flip)
		}
	}
}

// TestRunContextCheckpointing: the CheckpointEvery trigger fires at exact
// step multiples, the last snapshot resumes bit-identically, and a sink
// failure stops the run.
func TestRunContextCheckpointing(t *testing.T) {
	prog := isa.MustAssemble("multiop", resetPrograms["multiop"])
	cfg := Default(variant.SingleInstruction)

	oracle, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(oracle)
	if oracle.Stats().Steps < 4 {
		t.Fatalf("program too short (%d steps) to exercise checkpointing", oracle.Stats().Steps)
	}

	sink := &memSink{}
	ckpt := cfg
	ckpt.CheckpointEvery = 2
	ckpt.CheckpointSink = sink
	m, err := New(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshotOf(m); !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpointing changed results\ngot  %+v\nwant %+v", got.stats, want.stats)
	}
	if len(sink.snaps) == 0 {
		t.Fatal("no checkpoints written")
	}
	for i, s := range sink.steps {
		if s%2 != 0 {
			t.Fatalf("checkpoint %d at step %d, want a multiple of CheckpointEvery", i, s)
		}
	}

	// Resume from every snapshot written along the way.
	for i, snap := range sink.snaps {
		r, err := Restore(bytes.NewReader(snap), cfg)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if r.Stats().Steps != sink.steps[i] {
			t.Fatalf("snapshot %d restored at step %d, want %d", i, r.Stats().Steps, sink.steps[i])
		}
		if _, err := r.Run(); err != nil {
			t.Fatalf("snapshot %d resume: %v", i, err)
		}
		if got := snapshotOf(r); !reflect.DeepEqual(got, want) {
			t.Fatalf("snapshot %d: resumed run differs from oracle", i)
		}
	}

	// A failing sink stops the run with its error.
	bad := &memSink{fail: errors.New("disk full")}
	ckpt.CheckpointSink = bad
	m2, err := New(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("sink failure err = %v, want the sink's error", err)
	}
}

// TestSetCheckpointingGuards: rejected once flows exist; cleared by Reset.
func TestSetCheckpointingGuards(t *testing.T) {
	m, err := New(Default(variant.SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetCheckpointing(-1, nil); err == nil {
		t.Fatal("negative CheckpointEvery accepted")
	}
	sink := &memSink{}
	if err := m.SetCheckpointing(4, sink); err != nil {
		t.Fatal(err)
	}
	if m.Config().CheckpointEvery != 4 || m.Config().CheckpointSink == nil {
		t.Fatal("SetCheckpointing did not stick")
	}
	if err := m.LoadProgram(isa.MustAssemble("t", vectorAddSrc)); err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCheckpointing(4, sink); err == nil {
		t.Fatal("SetCheckpointing accepted on a booted machine")
	}
	m.Reset()
	if m.Config().CheckpointEvery != 0 || m.Config().CheckpointSink != nil {
		t.Fatal("Reset kept the checkpoint wiring")
	}
}

// TestRestoredMachineIsSnapshottable: a restored machine can itself be
// snapshotted and restored (checkpoint chains across repeated crashes).
func TestRestoredMachineIsSnapshottable(t *testing.T) {
	prog := isa.MustAssemble("split-print", resetPrograms["split-print"])
	cfg := Default(variant.SingleInstruction)
	oracle, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(oracle)

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	stepN(t, m, 1)
	for !m.Done() {
		var buf bytes.Buffer
		if err := m.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if m, err = Restore(bytes.NewReader(buf.Bytes()), cfg); err != nil {
			t.Fatal(err)
		}
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := snapshotOf(m); !reflect.DeepEqual(got, want) {
		t.Fatalf("crash-every-step run differs from oracle\ngot  %+v\nwant %+v", got.stats, want.stats)
	}
}
