package machine

import (
	"cmp"
	"slices"

	"tcfpram/internal/isa"
	"tcfpram/internal/sched"
	"tcfpram/internal/tcf"
	"tcfpram/internal/variant"
)

// SliceExec records one executed slice bundle for tracing: flow f on group
// g/slot s executed lanes [FirstLane, FirstLane+Lanes) of the instruction at
// PC (Lanes = 1 per instruction in NUMA bunches).
type SliceExec struct {
	Group, Slot int
	Flow        int
	PC          int
	Op          isa.Op
	FirstLane   int
	Lanes       int
	NUMA        bool
}

// StepRecord is one step of the execution trace.
type StepRecord struct {
	Step        int64
	Cycles      int64
	GroupCycles []int64
	Slices      []SliceExec
}

// Step advances the machine by one synchronous step.
func (m *Machine) Step() error {
	if m.prog == nil || len(m.flows) == 0 {
		return m.failf("Step before LoadProgram/Boot")
	}
	if m.runErr != nil {
		return m.runErr
	}
	// Fail-stop events fire at step boundaries: a dead module's traffic
	// fails over to a mirrored spare before any reference of this step.
	if plan := m.cfg.FaultPlan; plan != nil {
		for _, mod := range plan.ModuleFailuresAt(m.stats.Steps) {
			if err := m.shared.FailModule(mod); err != nil {
				return m.failw(ErrFaultUnrecoverable, "step %d: %v", m.stats.Steps, err)
			}
			m.stats.Failovers++
		}
	}
	if m.cfg.Variant == variant.MultiInstruction {
		return m.stepEngine(false)
	}
	return m.stepEngine(true)
}

// stepEngine runs one step. lockstep selects PRAM step semantics (buffered
// writes, one TCF instruction per flow); otherwise the XMT-style
// multi-instruction engine with immediate memory semantics runs. All
// per-step state lives in arenas on the Machine: the steady-state step loop
// allocates nothing (with tracing disabled).
func (m *Machine) stepEngine(lockstep bool) error {
	execs := m.execs
	for _, x := range execs {
		x.reset(lockstep)
	}
	// Immediate semantics must execute groups serially (they touch memory
	// directly); lockstep groups are independent within a step. Group 0
	// runs inline while the rest go to the worker pool.
	if lockstep && m.cfg.Parallel && len(execs) > 1 {
		m.wg.Add(len(execs) - 1)
		for _, x := range execs[1:] {
			groupPool.submit(poolJob{grp: x, wg: &m.wg})
		}
		execs[0].runGroup()
		m.wg.Wait()
	} else {
		for _, x := range execs {
			x.runGroup()
		}
	}

	// Deterministic merge in group order.
	stepOutputs := m.stepOutputs[:0]
	events := m.stepEvents[:0]
	routes := m.routes[:0]
	var stepCycles int64
	for _, x := range execs {
		if x.err != nil {
			m.runErr = x.err
			return x.err
		}
		for _, w := range x.writes {
			m.shared.BufferWrite(w.Addr, w.Val, w.Key)
		}
		for i := range x.contribs {
			pc := &x.contribs[i]
			c := pc.c
			if pc.hasRoute {
				routes = append(routes, pc.route)
				c.Dest = len(routes) - 1
			}
			m.combiners[combinerIndex(pc.kind)].Add(c)
		}
		stepOutputs = append(stepOutputs, x.outputs...)
		events = append(events, x.events...)

		opsCycles := x.ops + x.scalarOps
		var overhead int64
		if x.fetches > 0 {
			overhead = int64(m.cfg.PipelineDepth)
			if x.anyShared {
				if l := int64(m.cfg.MemLatencyBase + x.maxDist); l > overhead {
					overhead = l
				}
			}
		}
		gc := opsCycles + overhead + x.stall + x.faultStall
		if gc > stepCycles {
			stepCycles = gc
		}
		gi := x.g.Index
		m.stats.PerGroupOps[gi] += opsCycles
		m.stats.PerGroupCycles[gi] += gc
		m.stats.Ops += x.ops
		m.stats.ScalarOps += x.scalarOps
		m.stats.InstrFetches += x.fetches
		m.stats.SharedReads += x.sharedReads
		m.stats.SharedWrites += x.sharedWrites
		m.stats.LocalReads += x.localReads
		m.stats.LocalWrites += x.localWrites
		m.stats.MultiopRefs += x.multiopRefs
		m.stats.OverheadCycles += overhead
		m.stats.StallCycles += x.stall
		m.stats.FaultStallCycles += x.faultStall
		m.stats.Retransmits += x.retransmits
		m.stats.Reroutes += x.reroutes
		m.stats.Barriers += x.barriers
		m.stats.LaneChunks += x.laneChunks
	}

	// Commit buffered writes; resolve combining traffic.
	conflicts := m.shared.ApplyStep()
	if len(conflicts) > 0 {
		return m.failf("step %d: %s", m.stats.Steps, conflicts[0])
	}
	for _, comb := range m.combiners {
		if comb.Len() == 0 {
			continue
		}
		finals, prefixes := comb.Resolve(m.shared.Peek)
		for addr, v := range finals {
			m.shared.Poke(addr, v)
		}
		for _, p := range prefixes {
			rt := &routes[p.Dest]
			rt.flow.Vector(rt.reg)[rt.lane] = p.Prefix
		}
	}

	// Cross-flow events: child terminations, splits and OS auto-splits.
	// Indexed iteration: completing an auto-split container can cascade a
	// further evChildDone for its own parent.
	branchBefore := m.stats.FlowBranchCycles
	for i := 0; i < len(events); i++ {
		ev := events[i]
		switch ev.kind {
		case evChildDone:
			parent := ev.flow.Parent
			parent.LiveChildren--
			m.stats.Joins++
			if parent.LiveChildren == 0 && parent.State == tcf.Waiting {
				if parent.ResumePC < 0 {
					// Auto-split container: the fragments were the rest
					// of its execution.
					parent.State = tcf.Done
					if parent.Parent != nil {
						events = append(events, deferredEvent{kind: evChildDone, flow: parent})
					}
				} else {
					parent.State = tcf.Ready
					parent.PC = parent.ResumePC
				}
			}
		case evFragmentRejoin:
			parent := ev.flow.Parent
			parent.LiveChildren--
			m.stats.Joins++
			// Fragments are scalar-identical; any of them restores the
			// container's flow-common state and continuation point.
			parent.SetScalars(ev.flow.Scalars())
			parent.ResumePC = ev.pc
			if parent.LiveChildren == 0 && parent.State == tcf.Waiting {
				parent.State = tcf.Ready
				parent.PC = ev.pc
			}
		case evAutoSplit:
			m.stats.AutoSplits++
			offset := 0
			frags := sched.Fragment(ev.thick, m.cfg.AutoSplitThreshold)
			ev.flow.LiveChildren = len(frags)
			for _, size := range frags {
				g := m.leastLoadedGroup()
				child := m.newFlow(ev.flow.PC, size, g)
				child.Parent = ev.flow
				child.SetScalars(ev.flow.Scalars())
				child.IsFragment = true
				child.TidOffset = offset
				child.TotalThickness = ev.thick
				offset += size
				m.stats.FlowBranchCycles += int64(isa.NumSRegs)
			}
		case evSplit:
			m.stats.Splits++
			for _, arm := range ev.arms {
				g := m.leastLoadedGroup()
				child := m.newFlow(arm.pc, arm.thick, g)
				child.Parent = ev.flow
				child.SetScalars(ev.flow.Scalars())
				// Flow branch cost (Table 1): the TCF variants copy the
				// R common registers into the child, O(R); the XMT-style
				// multi-instruction model spawns thread contexts in
				// parallel, O(1).
				if m.cfg.Variant == variant.MultiInstruction {
					m.stats.FlowBranchCycles++
				} else {
					m.stats.FlowBranchCycles += int64(isa.NumSRegs)
				}
			}
		}
	}
	stepCycles += m.stats.FlowBranchCycles - branchBefore

	// Task rotation: preempt at quantum boundaries, drop finished flows,
	// promote pending tasks (including displacing barrier-blocked
	// residents so queued tasks can reach the barrier).
	switchBefore := m.stats.TaskSwitchCycles
	m.preemptGroups()
	m.compactGroups()
	stepCycles += m.stats.TaskSwitchCycles - switchBefore

	// Barrier release: only when no flow anywhere can still run toward
	// the barrier and at least one is blocked at a BAR.
	if !m.anyReadyAnywhere() {
		for _, f := range m.flows {
			if f.State == tcf.Blocked {
				f.State = tcf.Ready
			}
		}
	}

	if stepCycles == 0 {
		stepCycles = 1
	}
	m.stats.Cycles += stepCycles
	m.stats.Steps++

	if m.cfg.TraceEnabled {
		rec := &StepRecord{Step: m.stats.Steps - 1, Cycles: stepCycles,
			GroupCycles: make([]int64, len(m.groups))}
		for _, x := range execs {
			rec.GroupCycles[x.g.Index] = x.ops + x.scalarOps + x.stall
			rec.Slices = append(rec.Slices, x.slices...)
		}
		m.trace = append(m.trace, rec)
	}

	// Deterministic output ordering within the step: by flow id, then by
	// emission order.
	slices.SortStableFunc(stepOutputs, func(a, b Output) int { return cmp.Compare(a.Flow, b.Flow) })
	m.output = append(m.output, stepOutputs...)

	// Hand the (possibly grown) scratch slices back to the machine.
	m.stepOutputs = stepOutputs[:0]
	m.stepEvents = events[:0]
	m.routes = routes[:0]

	// Liveness: if nothing can ever run again, fail loudly.
	if m.liveFlows() > 0 && !m.anyReadyAnywhere() {
		return m.failw(ErrDeadlock, "step %d: deadlock: live flows but none ready (missing JOIN?)", m.stats.Steps)
	}
	return nil
}

func (m *Machine) anyReadyAnywhere() bool {
	for _, f := range m.flows {
		if f.State == tcf.Ready {
			return true
		}
	}
	return false
}

// ---- per-group engines ----

// runGroup dispatches to the engine selected at reset time.
func (x *groupExec) runGroup() {
	switch {
	case !x.lockstep:
		x.runMulti()
	case x.m.cfg.Variant == variant.Balanced:
		x.runBalanced()
	default:
		x.runSingleInstruction()
	}
}

// runSingleInstruction executes one TCF instruction of every resident ready
// flow (the Single-instruction variant, and the thread variants where every
// flow is a thickness-1 thread; Figures 7, 10, 11, 12).
func (x *groupExec) runSingleInstruction() {
	for slot, f := range x.g.Resident {
		if f.State != tcf.Ready || x.err != nil {
			continue
		}
		if f.Mode == tcf.NUMA {
			x.execNUMABunch(f, slot, f.Bunch)
		} else if in, ok := x.fetch(f); ok {
			x.execWhole(f, slot, in)
		}
	}
}

// runBalanced executes at most BalancedBound operation slices per step,
// continuing partially executed TCF instructions across steps (Figure 8).
// Each flow advances by at most one instruction per step.
func (x *groupExec) runBalanced() {
	budget := x.m.cfg.BalancedBound
	n := len(x.g.Resident)
	if n == 0 {
		return
	}
	start := x.g.rrStart % n
	x.g.rrStart++
	for k := 0; k < n; k++ {
		slot := (start + k) % n
		f := x.g.Resident[slot]
		if budget <= 0 || x.err != nil {
			break
		}
		if f.State != tcf.Ready {
			continue
		}
		if f.Mode == tcf.NUMA {
			n := f.Bunch
			if n > budget {
				n = budget
			}
			budget -= x.execNUMABunch(f, slot, n)
			continue
		}
		in, ok := x.fetch(f)
		if !ok {
			continue
		}
		if !sliceable(f, in) {
			// Atomic instructions complete in one step; charge their
			// full width against the budget.
			x.execWhole(f, slot, in)
			budget -= width(f, in)
			continue
		}
		w := width(f, in)
		remaining := w - f.Offset
		n := remaining
		if n > budget {
			n = budget
		}
		x.record(f, slot, in, f.Offset, n, false)
		x.execLaneRange(f, in, f.Offset, n)
		x.ops += int64(n)
		budget -= n
		f.Offset += n
		if f.Offset >= w {
			f.Offset = 0
			f.PC++
		}
	}
}

// runMulti is the XMT-style engine: each flow executes up to
// MultiInstrWindow instructions with immediate memory semantics; lockstep
// between flows is abandoned (Figure 9).
func (x *groupExec) runMulti() {
	for slot, f := range x.g.Resident {
		if x.err != nil {
			return
		}
		for k := 0; k < x.m.cfg.MultiInstrWindow; k++ {
			if f.State != tcf.Ready || x.err != nil {
				break
			}
			in, ok := x.fetch(f)
			if !ok {
				break
			}
			// XMT threads carry their own program counters: instruction
			// delivery is per thread, so a thickness-u instruction costs
			// u fetches (Table 1's Tp fetches per TCF), unlike the
			// fetch-once TCF variants.
			if extra := int64(width(f, in) - 1); extra > 0 {
				x.fetches += extra
				f.InstrFetches += extra
			}
			stop := in.Op.Info().Control &&
				(in.Op == isa.SPLIT || in.Op == isa.JOIN || in.Op == isa.BAR || in.Op == isa.HALT)
			x.execWhole(f, slot, in)
			if stop {
				break
			}
		}
	}
}

// fetch reads the instruction at f.PC, counting the fetch; a PC past the end
// halts the flow (falling off the program).
func (x *groupExec) fetch(f *tcf.Flow) (isa.Instr, bool) {
	if f.PC < 0 || f.PC >= x.m.prog.Len() {
		x.halt(f)
		return isa.Instr{}, false
	}
	x.fetches++
	f.InstrFetches++
	return x.m.prog.At(f.PC), true
}

// execWhole executes one fetched instruction across its full width.
func (x *groupExec) execWhole(f *tcf.Flow, slot int, in isa.Instr) {
	if fragmentUnsafe(f, in) {
		x.failf("flow %d: %s funnels thread-wise data into flow-common state inside an auto-split fragment; disable AutoSplitThreshold for this program", f.ID, in.Op)
		return
	}
	if in.Op.Info().Control {
		x.record(f, slot, in, 0, 1, f.Mode == tcf.NUMA)
		x.scalarOps++
		x.applyControl(f, in)
		return
	}
	w := width(f, in)
	if !sliceable(f, in) {
		x.record(f, slot, in, 0, w, f.Mode == tcf.NUMA)
		x.execAtomic(f, in)
		if w <= 1 {
			x.scalarOps++
		} else {
			x.ops += int64(w)
		}
		f.PC++
		return
	}
	x.record(f, slot, in, 0, w, f.Mode == tcf.NUMA)
	x.execLanes(f, in, w)
	x.ops += int64(w)
	f.PC++
}

// execNUMABunch executes up to n consecutive instructions of a NUMA-mode
// flow (thickness 1/T) with sequential semantics. It returns the number of
// instructions executed.
func (x *groupExec) execNUMABunch(f *tcf.Flow, slot, n int) int {
	if !x.immediate {
		if x.fwd == nil {
			x.fwd = make(map[int64]int64, 16)
		}
		clear(x.fwd)
		x.fwdOn = true
		defer func() { x.fwdOn = false }()
	}
	executed := 0
	for k := 0; k < n; k++ {
		if f.State != tcf.Ready || x.err != nil {
			break
		}
		in, ok := x.fetch(f)
		if !ok {
			break
		}
		executed++
		if in.Op.Info().Control {
			x.record(f, slot, in, 0, 1, true)
			x.scalarOps++
			x.applyControl(f, in)
			// Mode/structure changes end the bunch; plain branches and
			// calls continue executing consecutive instructions.
			switch in.Op {
			case isa.SETTHICK, isa.NUMA, isa.PRAM, isa.SPLIT, isa.BAR, isa.JOIN, isa.HALT:
				return executed
			}
			continue
		}
		x.record(f, slot, in, 0, 1, true)
		seq := k
		if !sliceable(f, in) {
			x.execAtomic(f, in)
			x.scalarOps++
		} else {
			x.execLane(f, in, 0, seq)
			x.ops++
		}
		f.PC++
		// Combining operations resolve at the step boundary; end the
		// bunch so the next instruction observes their results.
		if !x.immediate && (in.Op.IsMultiop() || in.Op.IsMultiprefix()) {
			return executed
		}
	}
	return executed
}

// sliceable reports whether the instruction can be split lane-by-lane across
// steps (Balanced variant).
func sliceable(f *tcf.Flow, in isa.Instr) bool {
	return isThick(f, in) && !in.Op.IsReduction() && in.Op != isa.PRINT
}

// record appends a trace slice when tracing is enabled.
func (x *groupExec) record(f *tcf.Flow, slot int, in isa.Instr, first, lanes int, numa bool) {
	if !x.m.cfg.TraceEnabled {
		return
	}
	x.slices = append(x.slices, SliceExec{
		Group: x.g.Index, Slot: slot, Flow: f.ID, PC: f.PC, Op: in.Op,
		FirstLane: first, Lanes: lanes, NUMA: numa,
	})
}

// rejoinFragment ends an auto-split fragment at a thickness/mode/structure
// change: the container resumes at this PC once all fragments arrive.
func (x *groupExec) rejoinFragment(f *tcf.Flow) {
	f.State = tcf.Done
	x.events = append(x.events, deferredEvent{kind: evFragmentRejoin, flow: f, pc: f.PC})
}

// halt terminates f; if it is a split child, the parent is notified at the
// step boundary (HALT inside an arm is treated as an implicit JOIN).
func (x *groupExec) halt(f *tcf.Flow) {
	if f.State == tcf.Done {
		return
	}
	f.State = tcf.Done
	if f.Parent != nil {
		x.events = append(x.events, deferredEvent{kind: evChildDone, flow: f})
	}
}

// applyControl executes a control instruction (flow-level).
func (x *groupExec) applyControl(f *tcf.Flow, in isa.Instr) {
	props := x.m.cfg.Variant.Props()
	switch in.Op {
	case isa.JMP:
		f.PC = in.Target
	case isa.BEQZ:
		if f.Scalar(in.Ra) == 0 {
			f.PC = in.Target
		} else {
			f.PC++
		}
	case isa.BNEZ:
		if f.Scalar(in.Ra) != 0 {
			f.PC = in.Target
		} else {
			f.PC++
		}
	case isa.CALL:
		f.Call(f.PC + 1)
		f.PC = in.Target
	case isa.RET:
		if pc, ok := f.Ret(); ok {
			f.PC = pc
		} else {
			x.halt(f)
		}
	case isa.SETTHICK:
		if !props.VariableThickness {
			x.failf("flow %d: SETTHICK unsupported by the %s variant (fixed thread set)", f.ID, x.m.cfg.Variant)
			return
		}
		if f.IsFragment {
			x.rejoinFragment(f)
			return
		}
		t := in.Imm
		if !in.HasImm {
			t = f.Scalar(in.Ra)
		}
		if t < 0 {
			x.failf("flow %d: SETTHICK to negative thickness %d", f.ID, t)
			return
		}
		if err := f.SetThickness(int(t)); err != nil {
			x.failf("%v", err)
			return
		}
		f.PC++
		// OS-level splitting of overly thick flows (Section 3.3): the
		// continuation runs as threshold-sized fragments on the
		// least-loaded groups; this flow completes when they all halt.
		if th := x.m.cfg.AutoSplitThreshold; th > 0 && int(t) > th && props.ControlParallel {
			f.State = tcf.Waiting
			f.ResumePC = -1 // sentinel: finish (do not resume) at join
			x.events = append(x.events, deferredEvent{kind: evAutoSplit, flow: f, thick: int(t)})
		}
	case isa.NUMA:
		if !props.NUMAOperation {
			x.failf("flow %d: NUMA mode unsupported by the %s variant", f.ID, x.m.cfg.Variant)
			return
		}
		if f.IsFragment {
			x.rejoinFragment(f)
			return
		}
		b := in.Imm
		if !in.HasImm {
			b = f.Scalar(in.Ra)
		}
		if b < 1 {
			x.failf("flow %d: NUMA bunch length %d must be >= 1", f.ID, b)
			return
		}
		if err := f.EnterNUMA(int(b)); err != nil {
			x.failf("%v", err)
			return
		}
		f.PC++
	case isa.PRAM:
		if !props.NUMAOperation {
			x.failf("flow %d: PRAM mode switch unsupported by the %s variant", f.ID, x.m.cfg.Variant)
			return
		}
		if f.IsFragment {
			x.rejoinFragment(f)
			return
		}
		f.LeavePRAM()
		f.PC++
	case isa.SPLIT:
		if !props.ControlParallel {
			x.failf("flow %d: SPLIT unsupported by the %s variant (no control parallelism)", f.ID, x.m.cfg.Variant)
			return
		}
		if f.IsFragment {
			// A parallel statement must execute once for the whole flow:
			// rejoin and let the container run it.
			x.rejoinFragment(f)
			return
		}
		ev := deferredEvent{kind: evSplit, flow: f}
		for _, arm := range in.Arms {
			t := arm.ThickImm
			if arm.Thick != isa.RegNone {
				t = f.Scalar(arm.Thick)
			}
			if t < 0 {
				x.failf("flow %d: SPLIT arm with negative thickness %d", f.ID, t)
				return
			}
			ev.arms = append(ev.arms, armSpec{thick: int(t), pc: arm.Target})
		}
		f.State = tcf.Waiting
		f.ResumePC = f.PC + 1
		f.LiveChildren = len(ev.arms)
		x.events = append(x.events, ev)
	case isa.JOIN:
		x.halt(f)
	case isa.BAR:
		f.State = tcf.Blocked
		f.PC++
		x.barriers++
	case isa.HALT:
		x.halt(f)
	default:
		x.failf("flow %d: unhandled control op %s", f.ID, in.Op)
	}
}
