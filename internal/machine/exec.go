package machine

import (
	"tcfpram/internal/fuse"
	"tcfpram/internal/isa"
	"tcfpram/internal/tcf"
)

// SliceExec records one executed slice bundle for tracing: flow f on group
// g/slot s executed lanes [FirstLane, FirstLane+Lanes) of the instruction at
// PC (Lanes = 1 per instruction in NUMA bunches).
type SliceExec struct {
	Group, Slot int
	Flow        int
	PC          int
	Op          isa.Op
	FirstLane   int
	Lanes       int
	NUMA        bool
}

// StepRecord is one step of the execution trace, including the step's
// per-stage cost attribution (Figure 13 pipeline stages).
type StepRecord struct {
	Step        int64
	Cycles      int64
	GroupCycles []int64
	Slices      []SliceExec
	Stages      [NumStages]StageStats
	// DiscReads/DiscWrites are the step's accesses recorded by the
	// memory-discipline cross-checker (zero when Config.MemDiscipline is
	// off).
	DiscReads  int64
	DiscWrites int64
}

// fetch reads the instruction at f.PC, counting the fetch; a PC past the end
// halts the flow (falling off the program).
func (x *groupExec) fetch(f *tcf.Flow) (isa.Instr, bool) {
	if f.PC < 0 || f.PC >= x.m.prog.Len() {
		x.halt(f)
		return isa.Instr{}, false
	}
	x.fetches++
	f.InstrFetches++
	return x.m.prog.At(f.PC), true
}

// execWhole executes one fetched instruction across its full width.
func (x *groupExec) execWhole(f *tcf.Flow, slot int, in isa.Instr) {
	if fp := x.m.fprog; fp != nil {
		x.execWholeFused(f, slot, in, &fp.Code[f.PC])
		return
	}
	if fragmentUnsafe(f, in) {
		x.failf("flow %d: %s funnels thread-wise data into flow-common state inside an auto-split fragment; disable AutoSplitThreshold for this program", f.ID, in.Op)
		return
	}
	if in.Op.Info().Control {
		x.record(f, slot, in, 0, 1, f.Mode == tcf.NUMA)
		x.scalarOps++
		x.applyControl(f, in)
		return
	}
	w := width(f, in)
	if !sliceable(f, in) {
		x.record(f, slot, in, 0, w, f.Mode == tcf.NUMA)
		x.execAtomic(f, in)
		if w <= 1 {
			x.scalarOps++
		} else {
			x.ops += int64(w)
		}
		f.PC++
		return
	}
	x.record(f, slot, in, 0, w, f.Mode == tcf.NUMA)
	x.execLanes(f, in, w)
	x.ops += int64(w)
	f.PC++
}

// execNUMABunch executes up to n consecutive instructions of a NUMA-mode
// flow (thickness 1/T) with sequential semantics. It returns the number of
// instructions executed.
func (x *groupExec) execNUMABunch(f *tcf.Flow, slot, n int) int {
	if !x.immediate {
		if x.fwd == nil {
			x.fwd = make(map[int64]int64, 16)
		}
		clear(x.fwd)
		x.fwdOn = true
		defer func() { x.fwdOn = false }()
	}
	executed := 0
	for k := 0; k < n; k++ {
		if f.State != tcf.Ready || x.err != nil {
			break
		}
		in, ok := x.fetch(f)
		if !ok {
			break
		}
		executed++
		if in.Op.Info().Control {
			x.record(f, slot, in, 0, 1, true)
			x.scalarOps++
			x.applyControl(f, in)
			// Mode/structure changes end the bunch; plain branches and
			// calls continue executing consecutive instructions.
			switch in.Op {
			case isa.SETTHICK, isa.NUMA, isa.PRAM, isa.SPLIT, isa.BAR, isa.JOIN, isa.HALT:
				return executed
			}
			continue
		}
		if fp := x.m.fprog; fp != nil {
			if fi := &fp.Code[f.PC]; fi.Class == fuse.ClassReg && fi.Kern != nil {
				// Fused straight-line run: consecutive register instructions
				// of the bunch execute back to back through their compiled
				// kernels, with per-instruction fetch and trace accounting.
				x.record(f, slot, in, 0, 1, true)
				fi.Kern(x.fenv, f, 0, 1)
				if fi.Thick {
					x.ops++
				} else {
					x.scalarOps++
				}
				f.PC++
				for fi.Run > 1 && k+1 < n {
					fj := &fp.Code[f.PC]
					if fj.Class != fuse.ClassReg || fj.Kern == nil {
						break
					}
					k++
					executed++
					x.fetches++
					f.InstrFetches++
					x.record(f, slot, fj.In, 0, 1, true)
					fj.Kern(x.fenv, f, 0, 1)
					if fj.Thick {
						x.ops++
					} else {
						x.scalarOps++
					}
					f.PC++
					fi = fj
				}
				continue
			}
		}
		x.record(f, slot, in, 0, 1, true)
		seq := k
		if !sliceable(f, in) {
			x.execAtomic(f, in)
			x.scalarOps++
		} else {
			x.execLane(f, in, 0, seq)
			x.ops++
		}
		f.PC++
		// Combining operations resolve at the step boundary; end the
		// bunch so the next instruction observes their results.
		if !x.immediate && (in.Op.IsMultiop() || in.Op.IsMultiprefix()) {
			return executed
		}
	}
	return executed
}

// sliceable reports whether the instruction can be split lane-by-lane across
// steps (Balanced variant). Like isThick, it delegates to the instruction
// property shared with the fuse compiler.
func sliceable(f *tcf.Flow, in isa.Instr) bool {
	return in.Sliceable()
}

// record appends a trace slice when tracing is enabled.
func (x *groupExec) record(f *tcf.Flow, slot int, in isa.Instr, first, lanes int, numa bool) {
	if !x.m.cfg.TraceEnabled {
		return
	}
	x.slices = append(x.slices, SliceExec{
		Group: x.g.Index, Slot: slot, Flow: f.ID, PC: f.PC, Op: in.Op,
		FirstLane: first, Lanes: lanes, NUMA: numa,
	})
}

// rejoinFragment ends an auto-split fragment at a thickness/mode/structure
// change: the container resumes at this PC once all fragments arrive.
func (x *groupExec) rejoinFragment(f *tcf.Flow) {
	f.State = tcf.Done
	x.events = append(x.events, deferredEvent{kind: evFragmentRejoin, flow: f, pc: f.PC})
}

// halt terminates f; if it is a split child, the parent is notified at the
// step boundary (HALT inside an arm is treated as an implicit JOIN).
func (x *groupExec) halt(f *tcf.Flow) {
	if f.State == tcf.Done {
		return
	}
	f.State = tcf.Done
	if f.Parent != nil {
		x.events = append(x.events, deferredEvent{kind: evChildDone, flow: f})
	}
}

// applyControl executes a control instruction (flow-level).
func (x *groupExec) applyControl(f *tcf.Flow, in isa.Instr) {
	props := x.m.policy.Props()
	switch in.Op {
	case isa.JMP:
		f.PC = in.Target
	case isa.BEQZ:
		if f.Scalar(in.Ra) == 0 {
			f.PC = in.Target
		} else {
			f.PC++
		}
	case isa.BNEZ:
		if f.Scalar(in.Ra) != 0 {
			f.PC = in.Target
		} else {
			f.PC++
		}
	case isa.CALL:
		f.Call(f.PC + 1)
		f.PC = in.Target
	case isa.RET:
		if pc, ok := f.Ret(); ok {
			f.PC = pc
		} else {
			x.halt(f)
		}
	case isa.SETTHICK:
		if !props.VariableThickness {
			x.failf("flow %d: SETTHICK unsupported by the %s variant (fixed thread set)", f.ID, x.m.cfg.Variant)
			return
		}
		if f.IsFragment {
			x.rejoinFragment(f)
			return
		}
		t := in.Imm
		if !in.HasImm {
			t = f.Scalar(in.Ra)
		}
		if t < 0 {
			x.failf("flow %d: SETTHICK to negative thickness %d", f.ID, t)
			return
		}
		if lim := x.m.cfg.MaxThickness; lim > 0 && t > int64(lim) {
			x.failw(ErrThicknessLimit, "flow %d: SETTHICK to %d exceeds MaxThickness=%d", f.ID, t, lim)
			return
		}
		if err := f.SetThickness(int(t)); err != nil {
			x.failf("%v", err)
			return
		}
		f.PC++
		// OS-level splitting of overly thick flows (Section 3.3): the
		// continuation runs as threshold-sized fragments on the
		// least-loaded groups; this flow completes when they all halt.
		if th := x.m.cfg.AutoSplitThreshold; th > 0 && int(t) > th && props.ControlParallel {
			f.State = tcf.Waiting
			f.ResumePC = -1 // sentinel: finish (do not resume) at join
			x.events = append(x.events, deferredEvent{kind: evAutoSplit, flow: f, thick: int(t)})
		}
	case isa.NUMA:
		if !props.NUMAOperation {
			x.failf("flow %d: NUMA mode unsupported by the %s variant", f.ID, x.m.cfg.Variant)
			return
		}
		if f.IsFragment {
			x.rejoinFragment(f)
			return
		}
		b := in.Imm
		if !in.HasImm {
			b = f.Scalar(in.Ra)
		}
		if b < 1 {
			x.failf("flow %d: NUMA bunch length %d must be >= 1", f.ID, b)
			return
		}
		if err := f.EnterNUMA(int(b)); err != nil {
			x.failf("%v", err)
			return
		}
		f.PC++
	case isa.PRAM:
		if !props.NUMAOperation {
			x.failf("flow %d: PRAM mode switch unsupported by the %s variant", f.ID, x.m.cfg.Variant)
			return
		}
		if f.IsFragment {
			x.rejoinFragment(f)
			return
		}
		f.LeavePRAM()
		f.PC++
	case isa.SPLIT:
		if !props.ControlParallel {
			x.failf("flow %d: SPLIT unsupported by the %s variant (no control parallelism)", f.ID, x.m.cfg.Variant)
			return
		}
		if f.IsFragment {
			// A parallel statement must execute once for the whole flow:
			// rejoin and let the container run it.
			x.rejoinFragment(f)
			return
		}
		ev := deferredEvent{kind: evSplit, flow: f}
		for _, arm := range in.Arms {
			t := arm.ThickImm
			if arm.Thick != isa.RegNone {
				t = f.Scalar(arm.Thick)
			}
			if t < 0 {
				x.failf("flow %d: SPLIT arm with negative thickness %d", f.ID, t)
				return
			}
			if lim := x.m.cfg.MaxThickness; lim > 0 && t > int64(lim) {
				x.failw(ErrThicknessLimit, "flow %d: SPLIT arm thickness %d exceeds MaxThickness=%d", f.ID, t, lim)
				return
			}
			ev.arms = append(ev.arms, armSpec{thick: int(t), pc: arm.Target})
		}
		f.State = tcf.Waiting
		f.ResumePC = f.PC + 1
		f.LiveChildren = len(ev.arms)
		x.events = append(x.events, ev)
	case isa.JOIN:
		x.halt(f)
	case isa.BAR:
		f.State = tcf.Blocked
		f.PC++
		x.barriers++
	case isa.HALT:
		x.halt(f)
	default:
		x.failf("flow %d: unhandled control op %s", f.ID, in.Op)
	}
}
