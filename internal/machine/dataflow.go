package machine

import (
	"context"
	"fmt"
	"sync"

	"tcfpram/internal/mem"
	"tcfpram/internal/tcf"
)

// The dataflow scheduler (Config.Sched == SchedDataflow) decouples the
// groups' step generation from the global step loop: one runner goroutine
// per group generates steps into a ring of step packets, running ahead of
// the other groups until an actual dependency edge stops it, while the
// committer (the RunContext caller goroutine) folds the packets into the
// machine strictly in (step, group) order — the exact order the lockstep
// engine uses, which is what makes the two schedulers bit-identical.
//
// The dependency edges a runner blocks on:
//
//   - memory: a shared read of a page with published-but-uncommitted writes
//     from an earlier step waits for the committer (mem.Frontier; the gate
//     lives in loadShared). Everything else about PRAM step semantics is
//     already order-free: writes are buffered into the packet and applied by
//     the committer.
//   - watermark: step n is generated only after every group has published
//     step n-1, so the frontier holds every earlier write before anyone
//     reads ahead.
//   - hazards: a step whose commit mutates global machine state beyond
//     plain stores — deferred events (splits, joins, rejoins), barriers,
//     combining traffic, or an execution error — parks every runner until
//     that step has fully retired, because its retirement can change any
//     group's flow population.
//   - fences: a group whose own step left a Done flow behind or has queued
//     pending flows parks until the committer compacts its buffer (task
//     rotation is committer work, charged in lockstep order).
//   - quiescence: a group with zero ready flows parks until the committer
//     retires its step — only committer-side actions (barrier release,
//     joins) can wake its flows.
//
// Strict mode (fault plans, time-slice preemption, the watchdog, the
// memory-discipline checker, Common-policy writes) degrades run-ahead to
// "generate step n only after n-1 fully retired": the groups of one step
// still execute concurrently, but every step boundary is a global barrier,
// because those features observe or mutate cross-group state between
// arbitrary steps. Results remain bit-identical; only overlap is lost.
//
// After a run that stops early (cancellation), flows that ran ahead may
// hold register state from beyond the reported step count; committed state
// (memory, outputs, statistics) is always exact. Every other stop — normal
// completion, program errors, MaxSteps, deadlock — leaves the machine
// bit-identical to the lockstep engine's stop.

// dfRing is the per-group ring depth: how many steps a group may run ahead
// of the committer before recycling packet storage would overtake it.
const dfRing = 8

// dfPacket is one group's published step: the counters and buffers the
// lockstep merge would have read straight off the groupExec arena, plus the
// scheduling flags the board gates on. Slices are swapped (not copied) with
// the exec arena at publish and recycled when the ring slot comes around
// again.
type dfPacket struct {
	groupCounters

	writes   []mem.Write
	contribs []pendingContrib
	events   []deferredEvent
	outputs  []Output
	slices   []SliceExec
	accs     []discAcc
	err      error

	// pages is the deduplicated set of frontier pages the step's writes
	// touch — published before the packet, committed with it.
	pages []int32

	// hazard: retiring this step can mutate another group's state (events,
	// barrier, combining traffic, or an error stops the run).
	hazard bool
	// fence: compacting this group's buffer after this step is not a no-op
	// (a flow went Done, or pending flows are queued).
	fence bool
	// ready counts the group's Ready flows (resident and pending) right
	// after generation; the committer sums these instead of scanning the
	// global flow list while runners are mid-step.
	ready int
}

// dfBoard is the scheduling state shared between the runners and the
// committer. Everything is guarded by one mutex with a single broadcast
// condition: board transitions happen once per step per group, so the lock
// is far off the per-operation hot path (per-read gating goes through
// mem.Frontier's atomic fast path instead).
type dfBoard struct {
	mu   sync.Mutex
	cond *sync.Cond

	strict bool

	generated  []int64 // per group, last published step
	retired    int64   // last fully committed step
	lastHazard int64   // highest published hazard step
	pauseAt    int64   // highest step runners may generate (checkpoint/MaxSteps ladder)
	stopped    bool

	rings [][]dfPacket // [group][dfRing] packet storage
	pkts  []*dfPacket  // committer's per-step view, reused
}

func newDFBoard(groups int, start int64, strict bool) *dfBoard {
	b := &dfBoard{
		strict:     strict,
		generated:  make([]int64, groups),
		retired:    start - 1,
		lastHazard: start - 1,
		pauseAt:    start - 1,
		rings:      make([][]dfPacket, groups),
		pkts:       make([]*dfPacket, groups),
	}
	for i := range b.generated {
		b.generated[i] = start - 1
		b.rings[i] = make([]dfPacket, dfRing)
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// canGenerate evaluates every runner gate for group gi's step n. Caller
// holds b.mu. parkAfter carries the group's own fence/quiescence verdict
// from its previous step.
func (b *dfBoard) canGenerate(gi int, n int64, parkAfter bool) bool {
	if n > b.pauseAt || b.retired < n-dfRing {
		return false
	}
	if (b.strict || parkAfter || b.lastHazard >= n-1) && b.retired < n-1 {
		return false
	}
	for _, gen := range b.generated {
		if gen < n-1 {
			return false
		}
	}
	return true
}

// waitGenerate blocks until group gi may generate step n (true) or the run
// is stopping (false).
func (b *dfBoard) waitGenerate(gi int, n int64, parkAfter bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.stopped {
			return false
		}
		if b.canGenerate(gi, n, parkAfter) {
			return true
		}
		b.cond.Wait()
	}
}

// publish announces group gi's packet for step n. The packet contents and
// the frontier publication must be complete before this call; the board
// mutex orders them before any observer that sees generated[gi] >= n.
// Hazards are recorded before the generation watermark moves, so a group
// passing its watermark for n+1 always sees a hazard published at n.
func (b *dfBoard) publish(gi int, n int64, hazard bool) {
	b.mu.Lock()
	if hazard && n > b.lastHazard {
		b.lastHazard = n
	}
	b.generated[gi] = n
	b.cond.Broadcast()
	b.mu.Unlock()
}

// waitStep blocks until every group has published step k and returns the
// step's packets in group order.
func (b *dfBoard) waitStep(k int64) []*dfPacket {
	b.mu.Lock()
	for {
		ok := true
		for _, gen := range b.generated {
			if gen < k {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		b.cond.Wait()
	}
	b.mu.Unlock()
	for gi := range b.rings {
		b.pkts[gi] = &b.rings[gi][k%dfRing]
	}
	return b.pkts
}

// signalRetired marks step k fully committed, releasing parked runners.
func (b *dfBoard) signalRetired(k int64) {
	b.mu.Lock()
	b.retired = k
	b.cond.Broadcast()
	b.mu.Unlock()
}

// setPauseAt raises the generation ceiling (strict stepping, checkpoint
// boundaries, the MaxSteps cap).
func (b *dfBoard) setPauseAt(n int64) {
	b.mu.Lock()
	b.pauseAt = n
	b.cond.Broadcast()
	b.mu.Unlock()
}

// stop wakes everyone for exit.
func (b *dfBoard) stop() {
	b.mu.Lock()
	b.stopped = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// dfPauseTarget returns the highest step the runners may generate given the
// committed step count: one short of the next checkpoint boundary (the
// snapshot must observe the machine exactly as the lockstep engine would at
// that boundary — no flow advanced beyond it), and never past MaxSteps
// (so a run stopped by the step quota leaves flows in the lockstep state).
func (m *Machine) dfPauseTarget(steps int64) int64 {
	t := m.cfg.MaxSteps - 1
	if every := m.cfg.CheckpointEvery; every > 0 && m.cfg.CheckpointSink != nil {
		if nb := (steps/every+1)*every - 1; nb < t {
			t = nb
		}
	}
	return t
}

// runDataflow is the dataflow scheduler's RunContext: runner goroutines
// generate, this goroutine commits in lockstep order. Only called for
// lockstep step shapes — immediate (XMT-style) semantics serialize memory
// within the step and keep the lockstep engine.
func (m *Machine) runDataflow(ctx context.Context) (*Stats, error) {
	if m.Done() {
		return &m.stats, m.runErr
	}
	strict := m.cfg.FaultPlan != nil || m.cfg.TimeSliceSteps > 0 ||
		m.cfg.WatchdogSteps > 0 || m.cfg.MemDiscipline.Checks() ||
		m.cfg.WritePolicy == mem.Common

	// The page table must exist before readers race with the committer
	// materializing pages: with the table in place, page installation only
	// stores into a fixed slot, and the frontier handshake orders same-page
	// access.
	m.shared.EnsurePageTable()
	m.dfFront = mem.NewFrontier(m.cfg.SharedWords)

	start := m.stats.Steps
	b := newDFBoard(len(m.groups), start, strict)
	if !strict {
		b.pauseAt = m.dfPauseTarget(start)
	}
	wd := newWatchdog(m.cfg.WatchdogSteps)

	var runners sync.WaitGroup
	for gi := range m.execs {
		runners.Add(1)
		go func(gi int) {
			defer runners.Done()
			m.dfRunner(b, gi, start)
		}(gi)
	}

	for k := start; ; k++ {
		// Pre-step checks in the exact lockstep loop order. In strict mode
		// every runner is parked here (step k is not yet released), so the
		// watchdog's state digest and the fault plan's module failures act on
		// the same machine state they would under lockstep.
		if err := ctx.Err(); err != nil {
			m.runErr = fmt.Errorf("machine: %w after %d steps: %v", ErrCanceled, m.stats.Steps, err)
			break
		}
		if k >= m.cfg.MaxSteps {
			m.runErr = fmt.Errorf("machine: exceeded MaxSteps=%d (livelock?): %w", m.cfg.MaxSteps, ErrMaxSteps)
			break
		}
		if strict {
			if wd.window > 0 && wd.observe(m) {
				m.runErr = fmt.Errorf("machine: watchdog: state cycle with no observable work over %d+ steps (silent livelock): %w", wd.window, ErrDeadlock)
				break
			}
			if _, err := m.front.prepare(); err != nil {
				break // prepare recorded m.runErr
			}
			b.setPauseAt(k)
		}

		pkts := b.waitStep(k)
		finished, err := m.dfCommitStep(k, pkts, strict)
		if err != nil {
			break
		}
		if every := m.cfg.CheckpointEvery; every > 0 && m.cfg.CheckpointSink != nil && m.stats.Steps%every == 0 {
			// Boundary: pauseAt capped generation at k, every packet of k has
			// arrived, so all runners are parked and the snapshot sees the
			// exact lockstep boundary state.
			if err := m.cfg.CheckpointSink.Checkpoint(m.stats.Steps, m.Snapshot); err != nil {
				m.runErr = fmt.Errorf("machine: checkpoint at step %d: %w", m.stats.Steps, err)
				break
			}
			if !strict {
				b.setPauseAt(m.dfPauseTarget(m.stats.Steps))
			}
		}
		if finished {
			break
		}
		b.signalRetired(k)
	}

	b.stop()
	m.dfFront.Stop()
	runners.Wait()
	m.dfFront = nil
	return &m.stats, m.runErr
}

// dfCommitStep retires step k from its packets: the same sequence as the
// lockstep runStep, with every fold in group order. It reports whether the
// run completed (no live flows remain).
func (m *Machine) dfCommitStep(k int64, pkts []*dfPacket, strict bool) (finished bool, err error) {
	stagesBefore := m.stats.Stages
	m.stepOutputs = m.stepOutputs[:0]
	m.stepEvents = m.stepEvents[:0]
	m.routes = m.routes[:0]
	m.discAccs = m.discAccs[:0]

	var stepCycles int64
	hazard := false
	sumReady := 0
	for gi, p := range pkts {
		if p.err != nil {
			m.runErr = p.err
			return false, p.err
		}
		if gc := m.foldGroup(gi, &p.groupCounters, p.writes, p.contribs, p.outputs, p.events, p.accs); gc > stepCycles {
			stepCycles = gc
		}
		hazard = hazard || p.hazard
		sumReady += p.ready
	}

	discR, discW, err := m.auditDiscipline()
	if err != nil {
		return false, err
	}
	if err := m.back.commit(); err != nil {
		return false, err
	}
	// Writes are in the backing store; release the readers waiting on them.
	for _, p := range pkts {
		m.dfFront.Commit(k, p.pages)
	}

	branchBefore := m.stats.FlowBranchCycles
	eventsBefore := m.stats.Splits + m.stats.Joins + m.stats.AutoSplits
	if err := m.front.retireEvents(); err != nil {
		return false, err
	}
	stepCycles += m.stats.FlowBranchCycles - branchBefore

	// parked: every runner is provably blocked on this step's retirement
	// (strict stepping, a published hazard, or no group has a ready flow —
	// the zero-ready gate), so global flow scans and cross-group mutation
	// are race-free and land in the exact lockstep state.
	parked := strict || hazard || sumReady == 0

	switchBefore := m.stats.TaskSwitchCycles
	switchesBefore := m.stats.TaskSwitches
	m.front.preempt()
	if parked {
		m.front.compact()
	} else {
		// Only fenced groups (whose runners hold at the boundary) compact;
		// for every other group compaction is provably a no-op this step, so
		// skipping it is charge-identical to the lockstep sweep.
		for gi, p := range pkts {
			if p.fence {
				m.front.compactGroup(m.groups[gi])
			}
		}
	}
	stepCycles += m.stats.TaskSwitchCycles - switchBefore

	m.stats.Stages[StageFrontend].Cycles +=
		(m.stats.FlowBranchCycles - branchBefore) + (m.stats.TaskSwitchCycles - switchBefore)
	m.stats.Stages[StageFrontend].Events +=
		(m.stats.Splits + m.stats.Joins + m.stats.AutoSplits - eventsBefore) +
			(m.stats.TaskSwitches - switchesBefore)

	if parked {
		if !m.anyReadyAnywhere() {
			m.releaseBarriers()
		}
		m.finishStep(stepCycles, stagesBefore, discR, discW, pkts)
		if m.liveFlows() == 0 {
			return true, nil
		}
		if !m.anyReadyAnywhere() {
			return false, m.failw(ErrDeadlock, "step %d: deadlock: live flows but none ready (missing JOIN?)", m.stats.Steps)
		}
		return false, nil
	}
	// Some group still has ready flows, so no barrier can release, the run
	// is not done, and no deadlock is possible — exactly the branches the
	// lockstep engine would take, without touching the flow list that the
	// running groups are mutating.
	m.finishStep(stepCycles, stagesBefore, discR, discW, pkts)
	return false, nil
}

// dfRunner is group gi's generation loop: gate, generate, publish.
func (m *Machine) dfRunner(b *dfBoard, gi int, start int64) {
	x := m.execs[gi]
	g := m.groups[gi]
	// pageMark dedups the step's written pages; stamped with n+1 so it never
	// needs clearing between steps.
	pageMark := make([]int64, m.dfFront.Pages())
	parkAfter := false
	for n := start; ; n++ {
		if !b.waitGenerate(gi, n, parkAfter) {
			return
		}
		x.reset(StepPlan{StepShape: m.shape, Step: n})
		x.runGroup()
		parkAfter = m.dfPublish(b, x, g, gi, n, pageMark)
	}
}

// dfPublish moves the generated step off the exec arena into the ring
// packet and announces it: frontier first (a reader that has observed the
// packet must also observe its pending writes), then the board. It returns
// whether the runner must park until the step retires (fence or no ready
// work left).
func (m *Machine) dfPublish(b *dfBoard, x *groupExec, g *Group, gi int, n int64, pageMark []int64) bool {
	p := &b.rings[gi][n%dfRing]
	p.groupCounters = x.groupCounters
	p.writes, x.writes = x.writes, p.writes[:0]
	p.contribs, x.contribs = x.contribs, p.contribs[:0]
	p.events, x.events = x.events, p.events[:0]
	p.outputs, x.outputs = x.outputs, p.outputs[:0]
	p.slices, x.slices = x.slices, p.slices[:0]
	p.accs, x.accs = x.accs, p.accs[:0]
	p.err = x.err

	p.pages = p.pages[:0]
	mark := n + 1
	for i := range p.writes {
		if pg := m.dfFront.PageOf(p.writes[i].Addr); pg >= 0 && pageMark[pg] != mark {
			pageMark[pg] = mark
			p.pages = append(p.pages, int32(pg))
		}
	}

	ready := 0
	doneSeen := false
	for _, f := range g.Buf.Resident {
		switch f.State {
		case tcf.Ready:
			ready++
		case tcf.Done:
			doneSeen = true
		}
	}
	for _, f := range g.Buf.Pending {
		if f.State == tcf.Ready {
			ready++
		}
	}
	p.ready = ready
	p.hazard = p.err != nil || len(p.events) > 0 || len(p.contribs) > 0 || p.barriers > 0
	p.fence = doneSeen || len(g.Buf.Pending) > 0

	m.dfFront.Publish(n, p.pages)
	b.publish(gi, n, p.hazard)
	return p.fence || ready == 0
}
