package machine

import (
	"strings"
	"testing"

	"tcfpram/internal/isa"
	"tcfpram/internal/mem"
	"tcfpram/internal/tcf"
	"tcfpram/internal/variant"
)

// runSrc assembles src and runs it on a fresh machine of the given variant,
// applying tweak (if non-nil) to the config first. It fails the test on any
// build/boot error; runtime errors are returned.
func runSrc(t *testing.T, kind variant.Kind, src string, tweak func(*Config)) (*Machine, error) {
	t.Helper()
	cfg := Default(kind)
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(isa.MustAssemble("test", src)); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	return m, err
}

// mustRun is runSrc that requires success.
func mustRun(t *testing.T, kind variant.Kind, src string, tweak func(*Config)) *Machine {
	t.Helper()
	m, err := runSrc(t, kind, src, tweak)
	if err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	return m
}

const vectorAddSrc = `
.data 100: 1 2 3 4 5 6 7 8
.data 200: 10 20 30 40 50 60 70 80
main:
    LDI S0, 8
    SETTHICK S0
    TID V0
    LD V1, V0+100
    LD V2, V0+200
    ADD V3, V1, V2
    ST V0+300, V3
    HALT
`

func checkVectorAdd(t *testing.T, m *Machine) {
	t.Helper()
	got := m.Shared().Snapshot(300, 8)
	want := []int64{11, 22, 33, 44, 55, 66, 77, 88}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestVectorAddTCFVariants(t *testing.T) {
	for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction} {
		t.Run(kind.String(), func(t *testing.T) {
			checkVectorAdd(t, mustRun(t, kind, vectorAddSrc, nil))
		})
	}
}

func TestVectorAddFixedThickness(t *testing.T) {
	// The SIMD variant has a fixed width; the thickness statement is
	// unavailable, so the kernel predicates on tid < size instead
	// (Section 4's conditional execution for vector units).
	src := `
.data 100: 1 2 3 4 5 6 7 8
.data 200: 10 20 30 40 50 60 70 80
main:
    TID V0
    SLT V4, V0, 8
    LD V1, V0+100
    LD V2, V0+200
    ADD V3, V1, V2
    LD V5, V0+300
    SEL V3, V4, V3, V5
    ST V0+300, V3
    HALT
`
	m := mustRun(t, variant.FixedThickness, src, func(c *Config) {
		c.VectorWidth = 16
	})
	checkVectorAdd(t, m)
}

func TestVectorAddThreadStyle(t *testing.T) {
	// Thread variants program against a fixed thread set; thread id is the
	// flow id and sizes that do not match P*Tp need a guard (Section 4).
	src := `
.data 100: 1 2 3 4 5 6 7 8
.data 200: 10 20 30 40 50 60 70 80
main:
    FID S0
    SLT S1, S0, 8
    BEQZ S1, done
    LD S2, S0+100
    LD S3, S0+200
    ADD S4, S2, S3
    ST S0+300, S4
done:
    HALT
`
	for _, kind := range []variant.Kind{variant.SingleOperation, variant.ConfigurableSingleOperation} {
		t.Run(kind.String(), func(t *testing.T) {
			checkVectorAdd(t, mustRun(t, kind, src, nil))
		})
	}
}

func TestSetThickRejectedOnFixedThreadVariants(t *testing.T) {
	for _, kind := range []variant.Kind{variant.SingleOperation, variant.ConfigurableSingleOperation, variant.FixedThickness} {
		_, err := runSrc(t, kind, "main:\nSETTHICK 4\nHALT", nil)
		if err == nil || !strings.Contains(err.Error(), "SETTHICK") {
			t.Errorf("%v: expected SETTHICK error, got %v", kind, err)
		}
	}
}

func TestNUMARejectedWhereUnsupported(t *testing.T) {
	for _, kind := range []variant.Kind{variant.SingleOperation, variant.FixedThickness} {
		_, err := runSrc(t, kind, "main:\nNUMA 4\nHALT", nil)
		if err == nil || !strings.Contains(err.Error(), "NUMA") {
			t.Errorf("%v: expected NUMA error, got %v", kind, err)
		}
	}
}

func TestSplitRejectedWhereUnsupported(t *testing.T) {
	src := "main:\nSPLIT 2 -> a, 2 -> b\nHALT\na: JOIN\nb: JOIN"
	for _, kind := range []variant.Kind{variant.SingleOperation, variant.ConfigurableSingleOperation, variant.FixedThickness} {
		_, err := runSrc(t, kind, src, nil)
		if err == nil || !strings.Contains(err.Error(), "SPLIT") {
			t.Errorf("%v: expected SPLIT error, got %v", kind, err)
		}
	}
}

func TestParallelSplitJoin(t *testing.T) {
	src := `
.data 100: 1 2 3 4
.data 200: 10 20 30 40
main:
    SPLIT 4 -> addArm, 4 -> clrArm
    PRINTS "joined"
    HALT
addArm:
    TID V0
    LD V1, V0+100
    LD V2, V0+200
    ADD V3, V1, V2
    ST V0+300, V3
    JOIN
clrArm:
    TID V0
    ADD V0, V0, 4
    LDI V1, 99
    ST V0+300, V1
    JOIN
`
	for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction} {
		t.Run(kind.String(), func(t *testing.T) {
			m := mustRun(t, kind, src, nil)
			got := m.Shared().Snapshot(300, 8)
			want := []int64{11, 22, 33, 44, 99, 99, 99, 99}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mem[%d] = %d, want %d (all %v)", 300+i, got[i], want[i], got)
				}
			}
			outs := m.Outputs()
			if len(outs) != 1 || outs[0].Text != "joined" {
				t.Fatalf("parent did not resume after join: %v", outs)
			}
			if m.Stats().Splits != 1 || m.Stats().Joins != 2 {
				t.Fatalf("splits/joins = %d/%d", m.Stats().Splits, m.Stats().Joins)
			}
		})
	}
}

func TestSplitInheritsScalars(t *testing.T) {
	src := `
main:
    LDI S2, 123
    SPLIT 1 -> arm
    HALT
arm:
    PRINT S2
    JOIN
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	outs := m.Outputs()
	if len(outs) != 1 || outs[0].Values[0] != 123 {
		t.Fatalf("child did not inherit scalars: %v", outs)
	}
	if m.Stats().FlowBranchCycles != int64(isa.NumSRegs) {
		t.Fatalf("flow branch cycles = %d, want %d", m.Stats().FlowBranchCycles, isa.NumSRegs)
	}
}

func TestNestedSplit(t *testing.T) {
	src := `
main:
    SPLIT 2 -> outer
    PRINTS "done"
    HALT
outer:
    SPLIT 3 -> inner, 1 -> inner
    JOIN
inner:
    THICK S0
    PRINT S0
    JOIN
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	if m.Stats().Splits != 2 {
		t.Fatalf("splits = %d, want 2", m.Stats().Splits)
	}
	outs := m.Outputs()
	if len(outs) != 3 {
		t.Fatalf("outputs = %v", outs)
	}
	if outs[len(outs)-1].Text != "done" {
		t.Fatalf("parent resumed out of order: %v", outs)
	}
}

func TestMultiprefixOrdered(t *testing.T) {
	src := `
.data 100: 3 1 4 1 5 9 2 6
main:
    LDI S0, 8
    SETTHICK S0
    TID V0
    LD V1, V0+100
    MPADD V2, 500, V1
    ST V0+300, V2
    HALT
`
	for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction} {
		t.Run(kind.String(), func(t *testing.T) {
			m := mustRun(t, kind, src, nil)
			prefix := m.Shared().Snapshot(300, 8)
			vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
			acc := int64(0)
			for i, v := range vals {
				if prefix[i] != acc {
					t.Fatalf("prefix[%d] = %d, want %d", i, prefix[i], acc)
				}
				acc += v
			}
			if got := m.Shared().Peek(500); got != acc {
				t.Fatalf("final sum = %d, want %d", got, acc)
			}
		})
	}
}

func TestMultioperationCombines(t *testing.T) {
	src := `
main:
    LDI S0, 16
    SETTHICK S0
    LDI V1, 1
    MADD 600, V1
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	if got := m.Shared().Peek(600); got != 16 {
		t.Fatalf("madd result = %d, want 16", got)
	}
}

func TestReductions(t *testing.T) {
	src := `
.data 100: 3 1 4 1 5
main:
    LDI S0, 5
    SETTHICK S0
    TID V0
    LD V1, V0+100
    RADD S1, V1
    RMAX S2, V1
    RMIN S3, V1
    PRINT S1
    PRINT S2
    PRINT S3
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	outs := m.Outputs()
	if len(outs) != 3 {
		t.Fatalf("outputs: %v", outs)
	}
	if outs[0].Values[0] != 14 || outs[1].Values[0] != 5 || outs[2].Values[0] != 1 {
		t.Fatalf("reductions wrong: %v", outs)
	}
}

func TestDependentLoopLogStepScan(t *testing.T) {
	// Section 4's dependent loop: log-step inclusive prefix product,
	// relying on the lockstep PRAM write semantics.
	src := `
.data 100: 1 2 3 4 5 6 7 8
main:
    LDI S0, 8
    SETTHICK S0
    LDI S1, 1
loop:
    SGE S2, S1, S0
    BNEZ S2, done
    TID V0
    SUB V1, V0, S1
    SGE V2, V1, 0
    LD V3, V1+100
    LD V4, V0+100
    MUL V5, V4, V3
    SEL V6, V2, V5, V4
    ST V0+100, V6
    SHL S1, S1, 1
    JMP loop
done:
    HALT
`
	for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced} {
		t.Run(kind.String(), func(t *testing.T) {
			m := mustRun(t, kind, src, nil)
			got := m.Shared().Snapshot(100, 8)
			want := int64(1)
			for i := 0; i < 8; i++ {
				want := want * int64(i+1)
				_ = want
			}
			acc := int64(1)
			for i := 0; i < 8; i++ {
				acc *= int64(i + 1)
				if got[i] != acc {
					t.Fatalf("scan[%d] = %d, want %d (all %v)", i, got[i], acc, got)
				}
			}
		})
	}
}

func TestNUMABunchSequentialSemantics(t *testing.T) {
	// A NUMA bunch runs consecutive instructions with sequential semantics
	// against the local memory: an 8-iteration accumulation loop.
	src := `
main:
    NUMA 4
    LDI S0, 0
    LDI S1, 0
loop:
    LDL S2, S1+0
    ADD S0, S0, S2
    ADD S1, S1, 1
    SLT S3, S1, 8
    BNEZ S3, loop
    PRAM
    PRINT S0
    HALT
`
	m := func() *Machine {
		cfg := Default(variant.SingleInstruction)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(isa.MustAssemble("numa", src)); err != nil {
			t.Fatal(err)
		}
		if err := m.LocalMem(0).Load(0, []int64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}()
	outs := m.Outputs()
	if len(outs) != 1 || outs[0].Values[0] != 36 {
		t.Fatalf("NUMA accumulation = %v, want 36", outs)
	}
	// Bunch length 4 must cut the step count roughly 4x versus bunch 1:
	// the loop body is ~5 instructions * 8 iterations.
	if m.Stats().Steps > 20 {
		t.Fatalf("NUMA bunch did not batch instructions: %d steps", m.Stats().Steps)
	}
}

func TestNUMAStoreToLoadForwarding(t *testing.T) {
	// Within one bunch, a store to shared memory must be visible to the
	// flow's own subsequent load (sequential semantics), even though the
	// write commits only at the step boundary.
	src := `
main:
    NUMA 8
    LDI S0, 77
    ST 900, S0
    LD S1, 900
    PRINT S1
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	outs := m.Outputs()
	if len(outs) != 1 || outs[0].Values[0] != 77 {
		t.Fatalf("forwarding broken: %v", outs)
	}
}

func TestBarrierSynchronizesMultiInstruction(t *testing.T) {
	// Two flows exchange values across a barrier. Without the barrier the
	// XMT-style engine gives no cross-flow ordering; with it both reads
	// observe the other side's write.
	src := `
main:
    SPLIT 1 -> armA, 1 -> armB
    HALT
armA:
    LDI S1, 10
    ST 700, S1
    BAR
    LD S2, 701
    ST 702, S2
    JOIN
armB:
    LDI S1, 20
    ST 701, S1
    BAR
    LD S2, 700
    ST 703, S2
    JOIN
`
	for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction} {
		t.Run(kind.String(), func(t *testing.T) {
			m := mustRun(t, kind, src, nil)
			if a, b := m.Shared().Peek(702), m.Shared().Peek(703); a != 20 || b != 10 {
				t.Fatalf("barrier exchange got %d/%d, want 20/10", a, b)
			}
			if m.Stats().Barriers != 2 {
				t.Fatalf("barriers = %d", m.Stats().Barriers)
			}
		})
	}
}

func TestCallRet(t *testing.T) {
	src := `
main:
    LDI S0, 5
    CALL double
    CALL double
    PRINT S0
    HALT
double:
    ADD S0, S0, S0
    RET
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	outs := m.Outputs()
	if len(outs) != 1 || outs[0].Values[0] != 20 {
		t.Fatalf("call/ret: %v", outs)
	}
}

func TestRetOnEmptyStackHalts(t *testing.T) {
	m := mustRun(t, variant.SingleInstruction, "main:\nRET", nil)
	if m.liveFlows() != 0 {
		t.Fatal("RET on empty stack should terminate the flow")
	}
}

func TestFallingOffProgramHalts(t *testing.T) {
	m := mustRun(t, variant.SingleInstruction, "main:\nNOP", nil)
	if m.liveFlows() != 0 {
		t.Fatal("flow should halt at program end")
	}
}

func TestZeroThicknessExecutesScalarOnly(t *testing.T) {
	src := `
main:
    SETTHICK 0
    TID V0
    LDI S0, 42
    PRINT S0
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	outs := m.Outputs()
	if len(outs) != 1 || outs[0].Values[0] != 42 {
		t.Fatalf("zero-thickness flow: %v", outs)
	}
}

func TestCommonPolicyConflictFailsRun(t *testing.T) {
	src := `
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    ST 800, V0
    HALT
`
	_, err := runSrc(t, variant.SingleInstruction, src, func(c *Config) {
		c.WritePolicy = mem.Common
	})
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("expected common-CRCW conflict, got %v", err)
	}
}

func TestArbitraryPolicyLowestLaneWins(t *testing.T) {
	src := `
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    ST 800, V0
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	if got := m.Shared().Peek(800); got != 0 {
		t.Fatalf("winner = %d, want lane 0's value 0", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A split whose arm loops forever at a barrier... simpler: a parent
	// waiting for a child that never joins cannot happen (HALT implies
	// join), so force livelock instead via MaxSteps.
	src := `
main:
    JMP main
`
	_, err := runSrc(t, variant.SingleInstruction, src, func(c *Config) { c.MaxSteps = 100 })
	if err == nil || !strings.Contains(err.Error(), "MaxSteps") {
		t.Fatalf("expected MaxSteps error, got %v", err)
	}
}

func TestIdentityOps(t *testing.T) {
	src := `
main:
    NPROC S0
    NGRP S1
    GID S2
    PID S3
    FID S4
    PRINT S0
    PRINT S1
    PRINT S2
    PRINT S3
    PRINT S4
    HALT
`
	m := mustRun(t, variant.SingleInstruction, src, nil)
	outs := m.Outputs()
	want := []int64{16, 4, 0, 0, 0}
	for i, w := range want {
		if outs[i].Values[0] != w {
			t.Fatalf("identity %d = %d, want %d", i, outs[i].Values[0], w)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	run := func(par bool) []int64 {
		m := mustRun(t, variant.SingleInstruction, vectorAddSrc, func(c *Config) { c.Parallel = par })
		return m.Shared().Snapshot(300, 8)
	}
	s, p := run(false), run(true)
	for i := range s {
		if s[i] != p[i] {
			t.Fatalf("parallel/serial divergence at %d: %d vs %d", i, s[i], p[i])
		}
	}
}

func TestBalancedMatchesSingleInstructionResults(t *testing.T) {
	for _, src := range []string{vectorAddSrc} {
		a := mustRun(t, variant.SingleInstruction, src, nil).Shared().Snapshot(300, 8)
		b := mustRun(t, variant.Balanced, src, func(c *Config) { c.BalancedBound = 3 }).Shared().Snapshot(300, 8)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("balanced diverges at %d: %d vs %d", i, a[i], b[i])
			}
		}
	}
}

func TestBalancedBoundsOpsPerStep(t *testing.T) {
	m := mustRun(t, variant.Balanced, vectorAddSrc, func(c *Config) {
		c.BalancedBound = 2
		c.TraceEnabled = true
	})
	for _, rec := range m.Trace() {
		perGroup := map[int]int{}
		for _, s := range rec.Slices {
			if s.Op.Info().Control || s.Op.IsReduction() {
				continue
			}
			perGroup[s.Group] += s.Lanes
		}
		for g, n := range perGroup {
			if n > 2 {
				t.Fatalf("step %d group %d executed %d lanes > bound 2", rec.Step, g, n)
			}
		}
	}
	// Thickness-8 instructions must refetch ceil(8/2) = 4 times.
	f := m.Flow(0)
	if f.InstrFetches < 8 {
		t.Fatalf("balanced refetching too low: %d", f.InstrFetches)
	}
}

func TestSingleInstructionFetchOncePerTCFInstruction(t *testing.T) {
	m := mustRun(t, variant.SingleInstruction, vectorAddSrc, nil)
	// 8 instructions, one fetch each despite thickness 8 (Table 1).
	if got := m.Flow(0).InstrFetches; got != 8 {
		t.Fatalf("fetches = %d, want 8", got)
	}
}

func TestStatsSanity(t *testing.T) {
	m := mustRun(t, variant.SingleInstruction, vectorAddSrc, nil)
	s := m.Stats()
	if s.Steps == 0 || s.Cycles == 0 || s.Ops == 0 {
		t.Fatalf("empty stats: %+v", s)
	}
	if s.SharedReads != 16 { // two LD x 8 lanes
		t.Fatalf("shared reads = %d, want 16", s.SharedReads)
	}
	if s.SharedWrites != 8 {
		t.Fatalf("shared writes = %d, want 8", s.SharedWrites)
	}
	if u := s.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization out of range: %f", u)
	}
	if s.String() == "" {
		t.Fatal("stats must render")
	}
}

func TestTaskSwitchCostsByVariant(t *testing.T) {
	// Oversubscribe: more flows than TCF slots forces task rotation.
	src := `
main:
    SPLIT 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w, 1 -> w
    HALT
w:
    NOP
    JOIN
`
	m := mustRun(t, variant.SingleInstruction, src, func(c *Config) {
		c.Groups = 2
		c.ProcsPerGroup = 2
		c.Topology = nil
	})
	s := m.Stats()
	if s.TaskSwitches == 0 {
		t.Fatal("expected task switches with 18 flows on 4 slots")
	}
	if s.TaskSwitchCycles != 0 {
		t.Fatalf("TCF task switch must be free, cost %d", s.TaskSwitchCycles)
	}
}

func TestBootPopulationByVariant(t *testing.T) {
	for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction} {
		cfg := Default(kind)
		m, _ := New(cfg)
		m.LoadProgram(isa.MustAssemble("t", "main: HALT"))
		m.Boot()
		if len(m.Flows()) != 1 || m.Flows()[0].Thickness != 1 {
			t.Errorf("%v: boot = %v", kind, m.Flows())
		}
	}
	for _, kind := range []variant.Kind{variant.SingleOperation, variant.ConfigurableSingleOperation} {
		cfg := Default(kind)
		m, _ := New(cfg)
		m.LoadProgram(isa.MustAssemble("t", "main: HALT"))
		m.Boot()
		if len(m.Flows()) != 16 {
			t.Errorf("%v: booted %d flows, want 16", kind, len(m.Flows()))
		}
	}
	cfg := Default(variant.FixedThickness)
	m, _ := New(cfg)
	m.LoadProgram(isa.MustAssemble("t", "main: HALT"))
	m.Boot()
	if len(m.Flows()) != 1 || m.Flows()[0].Thickness != cfg.ProcsPerGroup {
		t.Errorf("fixed-thickness boot: %v", m.Flows())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Variant: variant.Kind(99), Groups: 1, ProcsPerGroup: 1}); err == nil {
		t.Error("invalid variant accepted")
	}
	if _, err := New(Config{Variant: variant.SingleInstruction, Groups: 0, ProcsPerGroup: 1}); err == nil {
		t.Error("zero groups accepted")
	}
	cfg := Default(variant.FixedThickness)
	cfg.Groups = 2
	if _, err := New(cfg); err == nil {
		t.Error("fixed-thickness with 2 groups accepted")
	}
	cfg = Default(variant.SingleInstruction)
	cfg.Topology = nil
	if m, err := New(cfg); err != nil || m.Config().Topology == nil {
		t.Error("nil topology should default")
	}
}

func TestBootErrors(t *testing.T) {
	m, _ := New(Default(variant.SingleInstruction))
	if err := m.Boot(); err == nil {
		t.Error("Boot before LoadProgram accepted")
	}
	m.LoadProgram(isa.MustAssemble("t", "main: HALT"))
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err == nil {
		t.Error("double Boot accepted")
	}
}

func TestStepBeforeBootFails(t *testing.T) {
	m, _ := New(Default(variant.SingleInstruction))
	if err := m.Step(); err == nil {
		t.Error("Step before boot accepted")
	}
}

func TestTraceRecorded(t *testing.T) {
	m := mustRun(t, variant.SingleInstruction, vectorAddSrc, func(c *Config) { c.TraceEnabled = true })
	tr := m.Trace()
	if len(tr) == 0 {
		t.Fatal("no trace")
	}
	sawThick := false
	for _, rec := range tr {
		for _, s := range rec.Slices {
			if s.Lanes == 8 {
				sawThick = true
			}
		}
	}
	if !sawThick {
		t.Fatal("trace missing thick slices")
	}
}

func TestMultiInstructionExecutesWindow(t *testing.T) {
	// With a window of 8 the straight-line body collapses into few steps.
	m := mustRun(t, variant.MultiInstruction, vectorAddSrc, nil)
	if m.Stats().Steps > 3 {
		t.Fatalf("multi-instruction steps = %d, want few", m.Stats().Steps)
	}
}

func TestFlowStateAccessors(t *testing.T) {
	m := mustRun(t, variant.SingleInstruction, vectorAddSrc, nil)
	if m.Flow(0) == nil || m.Flow(0).State != tcf.Done {
		t.Fatal("flow 0 should be done")
	}
	if m.Flow(99) != nil {
		t.Fatal("unknown flow should be nil")
	}
	if !m.Done() || m.Err() != nil {
		t.Fatal("machine should be cleanly done")
	}
}

// mustAsm assembles test source.
func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	return isa.MustAssemble("test", src)
}
