package machine

import "tcfpram/internal/tcf"

// The progress watchdog (Config.WatchdogSteps) distinguishes livelock from
// long-running computation by proving a state cycle rather than by timing
// out. A quiet stretch — steps with no observable work (see progressMark) —
// is necessary but not sufficient evidence of livelock: a register-only
// computation (Collatz, a countdown, any arithmetic between two memory
// operations) is equally quiet while making real progress. What separates
// the two is that a livelocked machine revisits an identical architectural
// state: quiet + deterministic stepping + a repeated state means the machine
// is in a loop it can never leave.
//
// The detector is Brent's cycle-finding over the machine's flow-state digest.
// Once a quiet stretch reaches WatchdogSteps, every further quiet step
// digests the full flow population and compares it against an anchor; a
// match proves the cycle and kills the run with ErrDeadlock. The anchor
// slides forward with doubling horizons, so a cycle of any period is found
// within ~2x its length once detection engages. Any observable work resets
// the detector completely, so the digest is never computed for programs that
// touch memory at least once per window — the watchdog costs nothing on the
// non-quiet path.
type watchdog struct {
	window   int64  // quiet steps before cycle detection engages
	lastMark int64  // progress mark at the last observed work event
	markStep int64  // step at which lastMark was recorded
	anchor   uint64 // Brent anchor digest
	lambda   int64  // quiet steps since the anchor was planted
	power    int64  // anchor horizon; doubles when exceeded
	armed    bool   // anchor holds a valid digest
}

func newWatchdog(window int64) watchdog {
	return watchdog{window: window, lastMark: -1}
}

// observe is called once per step boundary while the watchdog is enabled. It
// reports true when the machine provably entered a state cycle with no
// observable work — silent livelock.
func (d *watchdog) observe(m *Machine) bool {
	if mark := m.progressMark(); mark != d.lastMark {
		d.lastMark, d.markStep = mark, m.stats.Steps
		d.armed = false
		return false
	}
	if m.stats.Steps-d.markStep < d.window {
		return false
	}
	dig := m.stateDigest()
	if !d.armed {
		d.anchor, d.lambda, d.power, d.armed = dig, 0, d.window, true
		return false
	}
	d.lambda++
	if dig == d.anchor {
		return true
	}
	if d.lambda >= d.power {
		d.anchor, d.lambda = dig, 0
		d.power *= 2
	}
	return false
}

// stateDigest combines the per-flow state digests order-independently (the
// flow map iterates in arbitrary order), covering the complete architectural
// state that can evolve during a quiet stretch: with no memory traffic, no
// flow events and no outputs, registers, PCs and flow bookkeeping are the
// only state the machine can change.
func (m *Machine) stateDigest() uint64 {
	var h uint64
	for _, f := range m.flowList {
		if f.State != tcf.Done {
			h ^= f.StateDigest()
		}
	}
	return h
}
