package machine

import (
	"reflect"
	"testing"

	"tcfpram/internal/isa"
	"tcfpram/internal/variant"
)

// panicObserver panics from inside Step once the machine reaches step at —
// the deepest injectable seam, so the panic unwinds out of a step with live
// flows, populated storage buffers and mid-run statistics still in place.
type panicObserver struct {
	at    int64
	armed bool
}

func (p *panicObserver) ObserveStage(step int64, stage Stage, d StageStats) {
	if p.armed && step >= p.at {
		panic("injected mid-step panic")
	}
}

// TestResetAfterMidStepPanic: a machine abandoned by a panic in the middle
// of a run — the state the serve layer recovers from — must come back from
// Reset bit-identical to a fresh build: same outputs, same memory image,
// same Stats on the next run. This is the property that would let a pool
// Release a panicked machine instead of discarding it.
func TestResetAfterMidStepPanic(t *testing.T) {
	for name, src := range resetPrograms {
		t.Run(name, func(t *testing.T) {
			prog := isa.MustAssemble(name, src)
			for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction} {
				// Oracle: an uninterrupted run on a fresh machine. The
				// observer hangs on the config disarmed so the victim's
				// configuration is identical.
				obs := &panicObserver{}
				cfg := Default(kind)
				cfg.StageObserver = obs
				oracle, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := oracle.LoadProgram(prog); err != nil {
					t.Fatal(err)
				}
				if _, err := oracle.Run(); err != nil {
					t.Fatalf("%v oracle: %v", kind, err)
				}
				want := snapshotOf(oracle)
				total := oracle.Stats().Steps

				stride := total / 4
				if stride < 1 {
					stride = 1
				}
				for kill := int64(0); kill < total; kill += stride {
					m, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := m.LoadProgram(prog); err != nil {
						t.Fatal(err)
					}
					obs.at, obs.armed = kill, true
					panicked := func() (p bool) {
						defer func() { p = recover() != nil }()
						_, _ = m.Run()
						return false
					}()
					obs.armed = false
					if !panicked {
						t.Fatalf("%v kill=%d: injected panic never fired", kind, kill)
					}

					// The serve layer recovers the panic; Reset must scrub
					// every trace of the interrupted run.
					m.Reset()
					if err := m.LoadProgram(prog); err != nil {
						t.Fatalf("%v kill=%d: reload after reset: %v", kind, kill, err)
					}
					if _, err := m.Run(); err != nil {
						t.Fatalf("%v kill=%d: rerun after reset: %v", kind, kill, err)
					}
					if got := snapshotOf(m); !reflect.DeepEqual(got, want) {
						t.Fatalf("%v kill=%d: post-panic Reset is not bit-identical\ngot  %+v\nwant %+v",
							kind, kill, got.stats, want.stats)
					}
				}
			}
		})
	}
}
