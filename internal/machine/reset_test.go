package machine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tcfpram/internal/isa"
	"tcfpram/internal/variant"
)

// snapshot captures everything observable about a finished run that a
// pooled-machine reuse must reproduce bit-identically.
type runSnapshot struct {
	stats   Stats
	outputs []Output
	memory  []int64
}

func snapshotOf(m *Machine) runSnapshot {
	st := *m.Stats()
	st.PerGroupOps = append([]int64(nil), st.PerGroupOps...)
	st.PerGroupCycles = append([]int64(nil), st.PerGroupCycles...)
	return runSnapshot{
		stats:   st,
		outputs: append([]Output(nil), m.Outputs()...),
		memory:  m.Shared().Snapshot(0, 2048),
	}
}

// resetPrograms exercises thickness changes, splits, shared and local
// memory, multioperations and printing — the state surfaces Reset must
// scrub.
var resetPrograms = map[string]string{
	"vector-add": vectorAddSrc,
	"multiop": `
.data 100: 1 2 3 4 5 6 7 8
main:
    LDI S0, 8
    SETTHICK S0
    TID V0
    LD V1, V0+100
    MADD 500, V1
    HALT
`,
	"split-print": `
main:
    SPLIT 2 -> left, 3 -> right
    LDI S1, 7
    ST S1+600, S1
    HALT
left:
    TID V0
    ST V0+610, V0
    JOIN
right:
    TID V0
    ST V0+620, V0
    JOIN
`,
}

// TestMachineResetBitIdentity: a Reset machine re-running a program must be
// indistinguishable from a fresh machine — stats, outputs and memory image.
func TestMachineResetBitIdentity(t *testing.T) {
	for name, src := range resetPrograms {
		t.Run(name, func(t *testing.T) {
			prog := isa.MustAssemble(name, src)
			for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced} {
				cfg := Default(kind)
				fresh, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.LoadProgram(prog); err != nil {
					t.Fatal(err)
				}
				if _, err := fresh.Run(); err != nil {
					t.Fatalf("%v fresh: %v", kind, err)
				}
				want := snapshotOf(fresh)

				pooled, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				// Dirty the machine with a different program first, then
				// Reset and re-run the one under test — three generations.
				for i := 0; i < 3; i++ {
					if err := pooled.LoadProgram(isa.MustAssemble("dirty", vectorAddSrc)); err != nil {
						t.Fatal(err)
					}
					if _, err := pooled.Run(); err != nil {
						t.Fatal(err)
					}
					pooled.Reset()
					if err := pooled.LoadProgram(prog); err != nil {
						t.Fatal(err)
					}
					if _, err := pooled.Run(); err != nil {
						t.Fatalf("%v reused gen %d: %v", kind, i, err)
					}
					got := snapshotOf(pooled)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%v gen %d: reused run differs from fresh\ngot  %+v\nwant %+v",
							kind, i, got.stats, want.stats)
					}
					pooled.Reset()
				}
			}
		})
	}
}

// TestMachineResetAfterAbnormalStop: reuse after quota aborts and canceled
// runs must still be bit-identical to fresh execution.
func TestMachineResetAfterAbnormalStop(t *testing.T) {
	prog := isa.MustAssemble("vector-add", vectorAddSrc)
	cfg := Default(variant.SingleInstruction)
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Run(); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(fresh)

	spin := isa.MustAssemble("spin", `
main:
    LDI S0, 1
loop:
    ST S0+900, S0
    ADD S0, S0, 1
    JMP loop
`)

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Faulted run: MaxSteps quota.
	if err := m.SetLimits(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(spin); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("spin: err = %v, want ErrMaxSteps", err)
	}
	m.Reset()

	// Canceled run.
	if err := m.SetLimits(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(spin); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled: err = %v, want ErrCanceled", err)
	}
	m.Reset()

	// Clean run after both aborts.
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := snapshotOf(m); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-abort reuse differs from fresh\ngot  %+v\nwant %+v", got.stats, want.stats)
	}
}

// TestMaxThicknessQuota: SETTHICK and SPLIT growth past MaxThickness stop
// the run with ErrThicknessLimit; the same programs run clean unbounded.
func TestMaxThicknessQuota(t *testing.T) {
	setthick := `
main:
    LDI S0, 64
    SETTHICK S0
    TID V0
    ST V0+100, V0
    HALT
`
	split := `
main:
    SPLIT 64 -> arm
    HALT
arm:
    JOIN
`
	for name, src := range map[string]string{"setthick": setthick, "split": split} {
		t.Run(name, func(t *testing.T) {
			if _, err := runSrc(t, variant.SingleInstruction, src, nil); err != nil {
				t.Fatalf("unbounded: %v", err)
			}
			_, err := runSrc(t, variant.SingleInstruction, src, func(c *Config) { c.MaxThickness = 63 })
			if !errors.Is(err, ErrThicknessLimit) {
				t.Fatalf("bounded: err = %v, want ErrThicknessLimit", err)
			}
			if _, err := runSrc(t, variant.SingleInstruction, src, func(c *Config) { c.MaxThickness = 64 }); err != nil {
				t.Fatalf("bound exactly at need: %v", err)
			}
		})
	}
}

// TestSetLimitsGuards: limits are rejected once flows exist and on bad
// values.
func TestSetLimitsGuards(t *testing.T) {
	m, err := New(Default(variant.SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetLimits(0, -1); err == nil {
		t.Fatal("negative MaxThickness accepted")
	}
	if err := m.LoadProgram(isa.MustAssemble("t", vectorAddSrc)); err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := m.SetLimits(10, 0); err == nil {
		t.Fatal("SetLimits accepted on a booted machine")
	}
}
