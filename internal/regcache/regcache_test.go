package regcache

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Lines: 0, Ways: 1, LaneBlock: 1},
		{Lines: 7, Ways: 2, LaneBlock: 1},
		{Lines: 8, Ways: 2, LaneBlock: 0},
		{Lines: 8, Ways: 2, LaneBlock: 1, MissPenalty: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, _ := New(Config{Lines: 8, Ways: 2, LaneBlock: 4, MissPenalty: 10})
	if cost := c.Touch(0, 1, 0); cost != 10 {
		t.Fatalf("cold access cost %d, want 10", cost)
	}
	if cost := c.Touch(0, 1, 0); cost != 0 {
		t.Fatalf("warm access cost %d, want 0", cost)
	}
	h, m, _, rate := c.Stats()
	if h != 1 || m != 1 || rate != 0.5 {
		t.Fatalf("stats: %d/%d rate %f", h, m, rate)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped two-line cache: fill a set beyond its ways and the
	// least recently used line must leave.
	c, _ := New(Config{Lines: 2, Ways: 2, LaneBlock: 1, MissPenalty: 1})
	// All keys land in the single set (2 lines / 2 ways = 1 set).
	c.Touch(0, 0, 0) // miss
	c.Touch(0, 1, 0) // miss
	c.Touch(0, 0, 0) // hit (MRU: reg0, reg1)
	c.Touch(0, 2, 0) // miss, evicts reg1 (LRU); set is [r2, r0]
	if cost := c.Touch(0, 1, 0); cost != 1 {
		t.Fatal("reg1 should have been evicted")
	}
	// Re-touching reg1 evicted reg0; reg2 (still resident) must hit.
	if cost := c.Touch(0, 2, 0); cost != 0 {
		t.Fatal("reg2 should have survived")
	}
	_, _, ev, _ := c.Stats()
	if ev < 2 {
		t.Fatalf("evictions = %d", ev)
	}
}

func TestAccessInstrBlocks(t *testing.T) {
	c, _ := New(Config{Lines: 64, Ways: 4, LaneBlock: 8, MissPenalty: 5})
	// Thickness 20 -> 3 blocks per register; 2 registers -> 6 cold misses.
	if stall := c.AccessInstr(0, 20, 1, 2); stall != 30 {
		t.Fatalf("cold stall = %d, want 30", stall)
	}
	if stall := c.AccessInstr(0, 20, 1, 2); stall != 0 {
		t.Fatalf("warm stall = %d, want 0", stall)
	}
	if stall := c.AccessInstr(0, 0, 1); stall != 0 {
		t.Fatal("zero thickness should cost nothing")
	}
}

func TestReset(t *testing.T) {
	c, _ := New(DefaultConfig())
	c.AccessInstr(0, 64, 1, 2, 3)
	c.Reset()
	h, m, ev, _ := c.Stats()
	if h != 0 || m != 0 || ev != 0 {
		t.Fatal("reset did not clear counters")
	}
	if cost := c.Touch(0, 1, 0); cost == 0 {
		t.Fatal("reset did not clear contents")
	}
}

// Property: hit rate is within [0,1] and hits+misses equals total accesses.
func TestAccountingConsistency(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		c, _ := New(Config{Lines: 16, Ways: 4, LaneBlock: 4, MissPenalty: 3})
		accesses := int64(0)
		r := int(seed % 7)
		if r < 0 {
			r = -r
		}
		for i := 0; i < int(n); i++ {
			c.Touch(i%3, (i*r)%5, i%4)
			accesses++
		}
		h, m, _, rate := c.Stats()
		if h+m != accesses {
			return false
		}
		return rate >= 0 && rate <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// The Section 3.3 comparison: for kernels whose working set fits, the cached
// register file converges to near-zero cost per access — far below
// memory-to-memory — while local-memory operands sit at unit cost.
func TestStorageSchemeComparison(t *testing.T) {
	cfg := DefaultConfig()
	const memLatency = 12
	m2m, err := CostPerOp(MemoryToMemory, cfg, 64, 4, 50, memLatency)
	if err != nil {
		t.Fatal(err)
	}
	crf, err := CostPerOp(CachedRegisterFile, cfg, 64, 4, 50, memLatency)
	if err != nil {
		t.Fatal(err)
	}
	lmo, err := CostPerOp(LocalMemoryOperands, cfg, 64, 4, 50, memLatency)
	if err != nil {
		t.Fatal(err)
	}
	if m2m != memLatency {
		t.Fatalf("m2m = %f", m2m)
	}
	if lmo != 1 {
		t.Fatalf("lmo = %f", lmo)
	}
	if crf >= lmo {
		t.Fatalf("fitting cached register file (%.3f) should beat local memory (%.1f)", crf, lmo)
	}
	// When the thickness overflows the physical block, the cache thrashes
	// and the advantage collapses toward memory-to-memory.
	thrash, err := CostPerOp(CachedRegisterFile, cfg, 4096, 8, 10, memLatency)
	if err != nil {
		t.Fatal(err)
	}
	if thrash <= crf {
		t.Fatalf("thrashing cost %.3f should exceed fitting cost %.3f", thrash, crf)
	}
	for _, s := range Schemes() {
		if s.String() == "" {
			t.Fatal("scheme must render")
		}
	}
	if _, err := CostPerOp(StorageScheme(9), cfg, 1, 1, 1, 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
