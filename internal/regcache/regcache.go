// Package regcache models the "cached register file" of Section 3.3: the
// in-principle unbounded thickness of TCFs needs somewhere to keep
// thread-wise intermediate results, and one of the paper's three options is
// a limited physical register block acting as a cache over the virtual
// (thickness-indexed) register space, backed by memory.
//
// The model is a set-associative cache of register lines; each line holds
// one virtual register's values for a block of consecutive implicit
// threads. Executing a thickness-u instruction touches ceil(u/LaneBlock)
// lines per thread-wise operand; misses cost a memory round trip. The
// experiments compare its effective cost per operation against the paper's
// two alternatives (memory-to-memory and local-memory operands).
package regcache

import "fmt"

// Config sizes the cache.
type Config struct {
	// Lines is the number of physical register lines.
	Lines int
	// Ways is the set associativity (Lines must divide by Ways).
	Ways int
	// LaneBlock is the number of consecutive lanes per line.
	LaneBlock int
	// MissPenalty is the cycles to fill a line from backing memory.
	MissPenalty int
}

// DefaultConfig is a small register block: 64 lines, 4-way, 8 lanes/line,
// 8-cycle fill.
func DefaultConfig() Config {
	return Config{Lines: 64, Ways: 4, LaneBlock: 8, MissPenalty: 8}
}

// key identifies a virtual register line: register r of flow f, lane block
// b.
type key struct {
	flow, reg, block int
}

// Cache is the register cache state.
type Cache struct {
	cfg  Config
	sets [][]entry // per set: slots ordered most-recently-used first

	hits      int64
	misses    int64
	evictions int64
}

type entry struct {
	k     key
	valid bool
}

// New builds a cache; Lines must be positive and divisible by Ways,
// LaneBlock and MissPenalty positive.
func New(cfg Config) (*Cache, error) {
	if cfg.Lines <= 0 || cfg.Ways <= 0 || cfg.Lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("regcache: need Lines > 0 divisible by Ways (have %d/%d)", cfg.Lines, cfg.Ways)
	}
	if cfg.LaneBlock <= 0 {
		return nil, fmt.Errorf("regcache: LaneBlock must be positive")
	}
	if cfg.MissPenalty < 0 {
		return nil, fmt.Errorf("regcache: negative MissPenalty")
	}
	nsets := cfg.Lines / cfg.Ways
	sets := make([][]entry, nsets)
	for i := range sets {
		sets[i] = make([]entry, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

func (c *Cache) setOf(k key) int {
	h := k.flow*31 + k.reg*17 + k.block
	n := len(c.sets)
	return ((h % n) + n) % n
}

// Touch accesses one virtual register line, returning the cycle cost (0 on
// hit, MissPenalty on miss) and updating LRU state.
func (c *Cache) Touch(flow, reg, block int) int {
	k := key{flow, reg, block}
	set := c.sets[c.setOf(k)]
	for i := range set {
		if set[i].valid && set[i].k == k {
			// Move to MRU position.
			hit := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = hit
			c.hits++
			return 0
		}
	}
	c.misses++
	if set[len(set)-1].valid {
		c.evictions++
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = entry{k: k, valid: true}
	return c.cfg.MissPenalty
}

// AccessInstr models one thickness-u instruction of flow f touching the
// given thread-wise registers; it returns the total stall cycles.
func (c *Cache) AccessInstr(flow, u int, regs ...int) int {
	if u <= 0 {
		return 0
	}
	blocks := (u + c.cfg.LaneBlock - 1) / c.cfg.LaneBlock
	stall := 0
	for _, r := range regs {
		for b := 0; b < blocks; b++ {
			stall += c.Touch(flow, r, b)
		}
	}
	return stall
}

// Stats reports hit/miss counts and the hit rate.
func (c *Cache) Stats() (hits, misses, evictions int64, hitRate float64) {
	total := c.hits + c.misses
	rate := 0.0
	if total > 0 {
		rate = float64(c.hits) / float64(total)
	}
	return c.hits, c.misses, c.evictions, rate
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = entry{}
		}
	}
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// StorageScheme compares the paper's three options for thread-wise
// intermediate results.
type StorageScheme int

const (
	// MemoryToMemory keeps every operand in shared memory: every access
	// pays the memory latency.
	MemoryToMemory StorageScheme = iota
	// CachedRegisterFile uses this package's model.
	CachedRegisterFile
	// LocalMemoryOperands keeps operands in the group's local memory at
	// unit cost but bounded by its size.
	LocalMemoryOperands
)

func (s StorageScheme) String() string {
	switch s {
	case MemoryToMemory:
		return "memory-to-memory"
	case CachedRegisterFile:
		return "cached-register-file"
	case LocalMemoryOperands:
		return "local-memory"
	}
	return fmt.Sprintf("StorageScheme(%d)", int(s))
}

// Schemes lists the three options.
func Schemes() []StorageScheme {
	return []StorageScheme{MemoryToMemory, CachedRegisterFile, LocalMemoryOperands}
}

// CostPerOp estimates the average extra cycles per thread-wise operand
// access for a kernel of the given thickness with `regsLive` live registers
// re-touched every instruction, under each scheme. memLatency is the shared
// round trip; the cached register file is simulated with cfg.
func CostPerOp(scheme StorageScheme, cfg Config, thickness, regsLive, instrs, memLatency int) (float64, error) {
	switch scheme {
	case MemoryToMemory:
		return float64(memLatency), nil
	case LocalMemoryOperands:
		return 1, nil
	case CachedRegisterFile:
		c, err := New(cfg)
		if err != nil {
			return 0, err
		}
		regs := make([]int, regsLive)
		for i := range regs {
			regs[i] = i
		}
		stall := 0
		for k := 0; k < instrs; k++ {
			stall += c.AccessInstr(0, thickness, regs...)
		}
		accesses := instrs * regsLive * ((thickness + cfg.LaneBlock - 1) / cfg.LaneBlock)
		if accesses == 0 {
			return 0, nil
		}
		return float64(stall) / float64(accesses), nil
	}
	return 0, fmt.Errorf("regcache: unknown scheme %v", scheme)
}
