// Package network implements a cycle-level packet-switched interconnect
// simulator for the ESM substrate (Figure 1): routers on a 2-D mesh or torus
// with per-output FIFO queues and dimension-order routing. It validates the
// analytic distance-latency model the step engine uses and drives the
// bandwidth experiments that motivate emulated shared memory: with enough
// bisection bandwidth, uniformly random traffic is delivered with latency
// proportional to distance plus bounded queueing.
package network

import (
	"fmt"
	"math/rand"
)

// Packet is one memory reference in flight.
type Packet struct {
	ID       int
	Src, Dst int
	Injected int64 // cycle of injection
	Arrived  int64 // cycle of delivery (valid once delivered)
	hops     int
}

// Hops returns the number of router-to-router hops the packet took.
func (p *Packet) Hops() int { return p.hops }

// Latency returns the delivery latency in cycles.
func (p *Packet) Latency() int64 { return p.Arrived - p.Injected }

// Kind selects the network geometry.
type Kind int

const (
	// Mesh2D is a width×height mesh with dimension-order (X then Y)
	// routing.
	Mesh2D Kind = iota
	// Torus2D adds wraparound links in both dimensions.
	Torus2D
)

func (k Kind) String() string {
	if k == Torus2D {
		return "torus"
	}
	return "mesh"
}

// Config describes a network instance.
type Config struct {
	Kind   Kind
	Width  int
	Height int
	// LinkCapacity is the packets one link forwards per cycle (>=1).
	LinkCapacity int
	// InjectionQueue bounds the per-node injection queue (0 = unbounded).
	InjectionQueue int
}

// Network is the simulator state.
type Network struct {
	cfg   Config
	clock int64

	// queues[node][dir] are the output FIFOs. Directions: 0=east, 1=west,
	// 2=north, 3=south, 4=eject.
	queues [][5][]*Packet
	inject [][]*Packet

	delivered []*Packet
	nextID    int
	inFlight  int

	// Stats.
	injectedCount  int64
	deliveredCount int64
	totalLatency   int64
	totalHops      int64
	maxLatency     int64
	dropped        int64
}

const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
	dirEject
)

// New builds a network.
func New(cfg Config) (*Network, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("network: bad dimensions %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.LinkCapacity <= 0 {
		cfg.LinkCapacity = 1
	}
	n := cfg.Width * cfg.Height
	return &Network{
		cfg:    cfg,
		queues: make([][5][]*Packet, n),
		inject: make([][]*Packet, n),
	}, nil
}

// Size returns the node count.
func (n *Network) Size() int { return n.cfg.Width * n.cfg.Height }

// Clock returns the current cycle.
func (n *Network) Clock() int64 { return n.clock }

// InFlight returns the number of packets not yet delivered.
func (n *Network) InFlight() int { return n.inFlight }

// Delivered returns the packets delivered so far.
func (n *Network) Delivered() []*Packet { return n.delivered }

func (n *Network) coord(node int) (x, y int) { return node % n.cfg.Width, node / n.cfg.Width }

func (n *Network) node(x, y int) int { return y*n.cfg.Width + x }

// Inject queues a packet from src to dst. It reports false when the
// injection queue is bounded and full (the packet is dropped and counted).
func (n *Network) Inject(src, dst int) bool {
	if src < 0 || src >= n.Size() || dst < 0 || dst >= n.Size() {
		panic(fmt.Sprintf("network: inject (%d->%d) out of range", src, dst))
	}
	if n.cfg.InjectionQueue > 0 && len(n.inject[src]) >= n.cfg.InjectionQueue {
		n.dropped++
		return false
	}
	p := &Packet{ID: n.nextID, Src: src, Dst: dst, Injected: n.clock}
	n.nextID++
	n.inject[src] = append(n.inject[src], p)
	n.inFlight++
	n.injectedCount++
	return true
}

// route decides the output direction for a packet at node (dimension-order:
// correct X first, then Y; torus picks the shorter way around).
func (n *Network) route(node int, p *Packet) int {
	x, y := n.coord(node)
	dx, dy := n.coord(p.Dst)
	if x != dx {
		if n.cfg.Kind == Torus2D {
			right := (dx - x + n.cfg.Width) % n.cfg.Width
			if right <= n.cfg.Width-right {
				return dirEast
			}
			return dirWest
		}
		if dx > x {
			return dirEast
		}
		return dirWest
	}
	if y != dy {
		if n.cfg.Kind == Torus2D {
			down := (dy - y + n.cfg.Height) % n.cfg.Height
			if down <= n.cfg.Height-down {
				return dirSouth
			}
			return dirNorth
		}
		if dy > y {
			return dirSouth
		}
		return dirNorth
	}
	return dirEject
}

// neighbor returns the node one hop in dir from node (wrapping on a torus).
func (n *Network) neighbor(node, dir int) int {
	x, y := n.coord(node)
	switch dir {
	case dirEast:
		x++
	case dirWest:
		x--
	case dirNorth:
		y--
	case dirSouth:
		y++
	}
	if n.cfg.Kind == Torus2D {
		x = (x + n.cfg.Width) % n.cfg.Width
		y = (y + n.cfg.Height) % n.cfg.Height
	}
	if x < 0 || x >= n.cfg.Width || y < 0 || y >= n.cfg.Height {
		panic("network: routed off the mesh edge")
	}
	return n.node(x, y)
}

// Step advances the network by one cycle: each link forwards up to
// LinkCapacity packets; ejections deliver; injections enter the routers.
func (n *Network) Step() {
	// Phase 1: move packets at the heads of output queues across links.
	type move struct {
		pkt  *Packet
		to   int
		isEj bool
	}
	var moves []move
	for node := range n.queues {
		for dir := 0; dir < 5; dir++ {
			q := n.queues[node][dir]
			cap := n.cfg.LinkCapacity
			for i := 0; i < len(q) && i < cap; i++ {
				p := q[i]
				if dir == dirEject {
					moves = append(moves, move{pkt: p, to: node, isEj: true})
				} else {
					moves = append(moves, move{pkt: p, to: n.neighbor(node, dir)})
				}
			}
			if len(q) > cap {
				n.queues[node][dir] = q[cap:]
			} else {
				n.queues[node][dir] = q[:0]
			}
		}
	}
	n.clock++
	for _, mv := range moves {
		if mv.isEj {
			mv.pkt.Arrived = n.clock
			n.delivered = append(n.delivered, mv.pkt)
			n.deliveredCount++
			n.inFlight--
			lat := mv.pkt.Latency()
			n.totalLatency += lat
			n.totalHops += int64(mv.pkt.hops)
			if lat > n.maxLatency {
				n.maxLatency = lat
			}
			continue
		}
		mv.pkt.hops++
		dir := n.route(mv.to, mv.pkt)
		n.queues[mv.to][dir] = append(n.queues[mv.to][dir], mv.pkt)
	}
	// Phase 2: injections enter their source router.
	for node := range n.inject {
		q := n.inject[node]
		k := n.cfg.LinkCapacity
		if k > len(q) {
			k = len(q)
		}
		for i := 0; i < k; i++ {
			p := q[i]
			dir := n.route(node, p)
			n.queues[node][dir] = append(n.queues[node][dir], p)
		}
		n.inject[node] = q[k:]
	}
}

// Drain steps until all in-flight packets are delivered or maxCycles pass;
// it returns true on full delivery.
func (n *Network) Drain(maxCycles int64) bool {
	for c := int64(0); n.inFlight > 0 && c < maxCycles; c++ {
		n.Step()
	}
	return n.inFlight == 0
}

// Stats summarizes delivery quality.
type Stats struct {
	Injected   int64
	Delivered  int64
	Dropped    int64
	AvgLatency float64
	MaxLatency int64
	AvgHops    float64
	Cycles     int64
	// Throughput is delivered packets per node per cycle.
	Throughput float64
}

// Stats returns the current summary.
func (n *Network) Stats() Stats {
	s := Stats{
		Injected:   n.injectedCount,
		Delivered:  n.deliveredCount,
		Dropped:    n.dropped,
		MaxLatency: n.maxLatency,
		Cycles:     n.clock,
	}
	if n.deliveredCount > 0 {
		s.AvgLatency = float64(n.totalLatency) / float64(n.deliveredCount)
		s.AvgHops = float64(n.totalHops) / float64(n.deliveredCount)
	}
	if n.clock > 0 {
		s.Throughput = float64(n.deliveredCount) / float64(n.clock) / float64(n.Size())
	}
	return s
}

// RandomTraffic injects `count` uniformly random packets per node (seeded,
// deterministic) and drains the network. It returns the stats.
func RandomTraffic(cfg Config, perNode int, seed int64) (Stats, error) {
	n, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < perNode; i++ {
		for src := 0; src < n.Size(); src++ {
			n.Inject(src, rng.Intn(n.Size()))
		}
		n.Step()
	}
	if !n.Drain(int64(perNode*n.Size())*10 + 10000) {
		return n.Stats(), fmt.Errorf("network: drain did not complete (%d in flight)", n.InFlight())
	}
	return n.Stats(), nil
}
