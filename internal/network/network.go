// Package network implements a cycle-level packet-switched interconnect
// simulator for the ESM substrate (Figure 1): routers on a 2-D mesh or torus
// with per-output FIFO queues and dimension-order routing. It validates the
// analytic distance-latency model the step engine uses and drives the
// bandwidth experiments that motivate emulated shared memory: with enough
// bisection bandwidth, uniformly random traffic is delivered with latency
// proportional to distance plus bounded queueing.
//
// The simulator is fault-tolerant: given a fault.Plan it routes adaptively
// around dead links (minimal-adaptive fallback with livelock protection),
// stalls faulted routers, and recovers dropped or corrupted packets with an
// end-to-end retransmission protocol under exponential backoff. Recoverable
// faults change latency and cycle counts only — every injected packet is
// still delivered exactly once.
package network

import (
	"fmt"
	"math/rand"

	"tcfpram/internal/fault"
)

// Packet is one memory reference in flight.
type Packet struct {
	ID       int
	Src, Dst int
	Injected int64 // cycle of first injection
	Arrived  int64 // cycle of delivery (valid once delivered)
	hops     int

	// Fault-recovery state.
	attempt   int  // retransmission attempt (0 = first transmission)
	corrupt   bool // fails the receiver checksum; discarded at ejection
	misroutes int  // non-minimal hops taken to dodge dead links
	retryAt   int64
}

// Hops returns the number of router-to-router hops the packet's delivered
// attempt took.
func (p *Packet) Hops() int { return p.hops }

// Latency returns the end-to-end delivery latency in cycles, including any
// retransmission waits.
func (p *Packet) Latency() int64 { return p.Arrived - p.Injected }

// Attempts returns how many times the packet was (re)transmitted.
func (p *Packet) Attempts() int { return p.attempt + 1 }

// Kind selects the network geometry.
type Kind int

const (
	// Mesh2D is a width×height mesh with dimension-order (X then Y)
	// routing.
	Mesh2D Kind = iota
	// Torus2D adds wraparound links in both dimensions.
	Torus2D
)

func (k Kind) String() string {
	if k == Torus2D {
		return "torus"
	}
	return "mesh"
}

// Config describes a network instance.
type Config struct {
	Kind   Kind
	Width  int
	Height int
	// LinkCapacity is the packets one link forwards per cycle (>=1).
	LinkCapacity int
	// InjectionQueue bounds the per-node injection queue (0 = unbounded).
	InjectionQueue int
	// Faults is the deterministic fault plan to inject (nil = fault-free).
	Faults *fault.Plan
}

// Network is the simulator state.
type Network struct {
	cfg   Config
	plan  *fault.Plan
	clock int64

	// queues[node][dir] are the output FIFOs. Directions: 0=east, 1=west,
	// 2=north, 3=south, 4=eject.
	queues [][5][]*Packet
	inject [][]*Packet
	// retries holds lost packets waiting out their retransmission backoff.
	retries []*Packet

	delivered []*Packet
	nextID    int
	inFlight  int

	// Stats.
	injectedCount  int64
	deliveredCount int64
	totalLatency   int64
	totalHops      int64
	maxLatency     int64
	dropped        int64

	// Fault-recovery stats.
	retransmits   int64
	lostInFlight  int64
	corrupted     int64
	reroutes      int64
	misroutes     int64
	routerStalls  int64
	livelockKills int64
}

const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
	dirEject
)

// New builds a network.
func New(cfg Config) (*Network, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("network: bad dimensions %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.LinkCapacity <= 0 {
		cfg.LinkCapacity = 1
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("network: %w", err)
		}
	}
	n := cfg.Width * cfg.Height
	return &Network{
		cfg:    cfg,
		plan:   cfg.Faults,
		queues: make([][5][]*Packet, n),
		inject: make([][]*Packet, n),
	}, nil
}

// Size returns the node count.
func (n *Network) Size() int { return n.cfg.Width * n.cfg.Height }

// Clock returns the current cycle.
func (n *Network) Clock() int64 { return n.clock }

// InFlight returns the number of packets not yet delivered (including lost
// packets waiting for retransmission).
func (n *Network) InFlight() int { return n.inFlight }

// Delivered returns the packets delivered so far.
func (n *Network) Delivered() []*Packet { return n.delivered }

func (n *Network) coord(node int) (x, y int) { return node % n.cfg.Width, node / n.cfg.Width }

func (n *Network) node(x, y int) int { return y*n.cfg.Width + x }

// Inject queues a packet from src to dst. accepted is false when the
// injection queue is bounded and full (the packet is dropped and counted);
// an error reports out-of-range endpoints.
func (n *Network) Inject(src, dst int) (accepted bool, err error) {
	if src < 0 || src >= n.Size() || dst < 0 || dst >= n.Size() {
		return false, fmt.Errorf("network: inject (%d->%d) out of range [0,%d)", src, dst, n.Size())
	}
	if n.cfg.InjectionQueue > 0 && len(n.inject[src]) >= n.cfg.InjectionQueue {
		n.dropped++
		return false, nil
	}
	p := &Packet{ID: n.nextID, Src: src, Dst: dst, Injected: n.clock}
	n.nextID++
	if n.plan != nil {
		p.corrupt = n.plan.CorruptAttempt(p.ID, 0)
	}
	n.inject[src] = append(n.inject[src], p)
	n.inFlight++
	n.injectedCount++
	return true, nil
}

// route decides the preferred output direction for a packet at node
// (dimension-order: correct X first, then Y; torus picks the shorter way
// around).
func (n *Network) route(node int, p *Packet) int {
	x, y := n.coord(node)
	dx, dy := n.coord(p.Dst)
	if x != dx {
		if n.cfg.Kind == Torus2D {
			right := (dx - x + n.cfg.Width) % n.cfg.Width
			if right <= n.cfg.Width-right {
				return dirEast
			}
			return dirWest
		}
		if dx > x {
			return dirEast
		}
		return dirWest
	}
	if y != dy {
		if n.cfg.Kind == Torus2D {
			down := (dy - y + n.cfg.Height) % n.cfg.Height
			if down <= n.cfg.Height-down {
				return dirSouth
			}
			return dirNorth
		}
		if dy > y {
			return dirSouth
		}
		return dirNorth
	}
	return dirEject
}

// productiveDirs returns every output direction that reduces the packet's
// distance to its destination, preferred (dimension-order) direction first.
func (n *Network) productiveDirs(node int, p *Packet) []int {
	x, y := n.coord(node)
	dx, dy := n.coord(p.Dst)
	var dirs []int
	addX := func() {
		if x == dx {
			return
		}
		if n.cfg.Kind == Torus2D {
			right := (dx - x + n.cfg.Width) % n.cfg.Width
			if right <= n.cfg.Width-right {
				dirs = append(dirs, dirEast)
			} else {
				dirs = append(dirs, dirWest)
			}
			return
		}
		if dx > x {
			dirs = append(dirs, dirEast)
		} else {
			dirs = append(dirs, dirWest)
		}
	}
	addY := func() {
		if y == dy {
			return
		}
		if n.cfg.Kind == Torus2D {
			down := (dy - y + n.cfg.Height) % n.cfg.Height
			if down <= n.cfg.Height-down {
				dirs = append(dirs, dirSouth)
			} else {
				dirs = append(dirs, dirNorth)
			}
			return
		}
		if dy > y {
			dirs = append(dirs, dirSouth)
		} else {
			dirs = append(dirs, dirNorth)
		}
	}
	addX()
	addY()
	return dirs
}

// linkAlive reports whether the output link (node, dir) exists and is up.
func (n *Network) linkAlive(node, dir int, cycle int64) bool {
	x, y := n.coord(node)
	if n.cfg.Kind != Torus2D {
		switch dir {
		case dirEast:
			if x == n.cfg.Width-1 {
				return false
			}
		case dirWest:
			if x == 0 {
				return false
			}
		case dirNorth:
			if y == 0 {
				return false
			}
		case dirSouth:
			if y == n.cfg.Height-1 {
				return false
			}
		}
	}
	return n.plan == nil || !n.plan.LinkDown(node, dir, cycle)
}

// adaptiveRoute picks an output for p at node: the first alive productive
// direction (minimal-adaptive), else any alive direction (a counted
// misroute). It returns dirEject at the destination and -1 when the node
// has no alive output at all.
func (n *Network) adaptiveRoute(node int, p *Packet) int {
	if node == p.Dst {
		return dirEject
	}
	if n.plan == nil {
		return n.route(node, p)
	}
	// Productive directions never point off the mesh, so a dead one is a
	// fault; picking a later choice is an adaptive re-route.
	for i, d := range n.productiveDirs(node, p) {
		if n.linkAlive(node, d, n.clock) {
			if i > 0 {
				n.reroutes++
			}
			return d
		}
	}
	for d := 0; d < 4; d++ {
		if n.linkAlive(node, d, n.clock) {
			p.misroutes++
			n.misroutes++
			return d
		}
	}
	return -1
}

// misrouteLimit bounds the non-minimal hops a packet may take dodging dead
// links before the livelock guard recalls it to its source for
// retransmission.
func (n *Network) misrouteLimit() int {
	return 4*(n.cfg.Width+n.cfg.Height) + 16
}

// lose takes a packet out of flight and schedules its end-to-end
// retransmission after an exponential-backoff timeout. It returns an error
// when the retry budget is exhausted (the fault plan is unrecoverable).
func (n *Network) lose(p *Packet) error {
	if p.attempt >= n.plan.Retries() {
		return fmt.Errorf("network: packet %d (%d->%d) lost after %d attempts: %w",
			p.ID, p.Src, p.Dst, p.Attempts(), ErrUnrecoverable)
	}
	p.retryAt = n.clock + n.plan.Backoff(p.attempt)
	p.attempt++
	n.retries = append(n.retries, p)
	return nil
}

// ErrUnrecoverable reports a fault the retransmission protocol could not
// mask within its retry budget.
var ErrUnrecoverable = fmt.Errorf("unrecoverable network fault")

// neighbor returns the node one hop in dir from node (wrapping on a torus).
func (n *Network) neighbor(node, dir int) (int, error) {
	x, y := n.coord(node)
	switch dir {
	case dirEast:
		x++
	case dirWest:
		x--
	case dirNorth:
		y--
	case dirSouth:
		y++
	}
	if n.cfg.Kind == Torus2D {
		x = (x + n.cfg.Width) % n.cfg.Width
		y = (y + n.cfg.Height) % n.cfg.Height
	}
	if x < 0 || x >= n.cfg.Width || y < 0 || y >= n.cfg.Height {
		return 0, fmt.Errorf("network: routed off the mesh edge at node %d dir %d", node, dir)
	}
	return n.node(x, y), nil
}

// Step advances the network by one cycle: due retransmissions re-enter,
// each link forwards up to LinkCapacity packets (adaptively re-routing
// around dead links), ejections deliver (corrupted arrivals are rejected
// and retransmitted), and injections enter the routers.
func (n *Network) Step() error {
	// Phase 0: re-inject packets whose retransmission timeout expired.
	if len(n.retries) > 0 {
		keep := n.retries[:0]
		for _, p := range n.retries {
			if p.retryAt > n.clock {
				keep = append(keep, p)
				continue
			}
			p.hops = 0
			p.misroutes = 0
			p.corrupt = n.plan.CorruptAttempt(p.ID, p.attempt)
			n.inject[p.Src] = append(n.inject[p.Src], p)
			n.retransmits++
		}
		n.retries = keep
	}

	// Phase 1: move packets at the heads of output queues across links.
	type move struct {
		pkt  *Packet
		to   int
		isEj bool
	}
	var moves []move
	var rerouted []*Packet // dead-link refugees, re-queued after the sweep
	var reroutedAt []int
	for node := range n.queues {
		if n.plan != nil && n.plan.RouterStalled(node, n.clock) {
			n.routerStalls++
			continue
		}
		for dir := 0; dir < 5; dir++ {
			q := n.queues[node][dir]
			if len(q) == 0 {
				continue
			}
			cap := n.cfg.LinkCapacity
			if dir != dirEject && !n.linkAlive(node, dir, n.clock) {
				// The committed output died: pull up to a link's worth of
				// packets back and re-route them around the fault.
				take := len(q)
				if take > cap {
					take = cap
				}
				for i := 0; i < take; i++ {
					q[i].misroutes++
					n.misroutes++
					rerouted = append(rerouted, q[i])
					reroutedAt = append(reroutedAt, node)
					n.reroutes++
				}
				n.queues[node][dir] = append(q[:0:0], q[take:]...)
				continue
			}
			for i := 0; i < len(q) && i < cap; i++ {
				p := q[i]
				if dir == dirEject {
					moves = append(moves, move{pkt: p, to: node, isEj: true})
					continue
				}
				to, err := n.neighbor(node, dir)
				if err != nil {
					return err
				}
				moves = append(moves, move{pkt: p, to: to})
			}
			if len(q) > cap {
				n.queues[node][dir] = q[cap:]
			} else {
				n.queues[node][dir] = q[:0]
			}
		}
	}
	n.clock++
	for _, mv := range moves {
		if mv.isEj {
			p := mv.pkt
			if p.corrupt {
				// Receiver checksum fails: discard, await retransmission.
				n.corrupted++
				if err := n.lose(p); err != nil {
					return err
				}
				continue
			}
			p.Arrived = n.clock
			n.delivered = append(n.delivered, p)
			n.deliveredCount++
			n.inFlight--
			lat := p.Latency()
			n.totalLatency += lat
			n.totalHops += int64(p.hops)
			if lat > n.maxLatency {
				n.maxLatency = lat
			}
			continue
		}
		p := mv.pkt
		if n.plan != nil && n.plan.DropPacket(p.ID, p.attempt, p.hops) {
			// Lost on the wire: the source times out and retransmits.
			n.lostInFlight++
			if err := n.lose(p); err != nil {
				return err
			}
			continue
		}
		p.hops++
		if err := n.enqueue(mv.to, p); err != nil {
			return err
		}
	}
	// Dead-link refugees re-enter their router after the sweep so they
	// cannot hop twice in one cycle.
	for i, p := range rerouted {
		if err := n.enqueue(reroutedAt[i], p); err != nil {
			return err
		}
	}
	// Phase 2: injections enter their source router.
	for node := range n.inject {
		q := n.inject[node]
		k := n.cfg.LinkCapacity
		if k > len(q) {
			k = len(q)
		}
		taken := 0
		for i := 0; i < k; i++ {
			if err := n.enqueue(node, q[i]); err != nil {
				return err
			}
			taken++
		}
		n.inject[node] = q[taken:]
	}
	return nil
}

// enqueue routes p at node onto an output queue, applying the livelock guard
// and handling isolated nodes (no alive output) by falling back to
// retransmission.
func (n *Network) enqueue(node int, p *Packet) error {
	if n.plan != nil && p.misroutes > n.misrouteLimit() {
		// Livelock protection: too many non-minimal hops; recall to the
		// source and retransmit after backoff (the fault may clear).
		n.livelockKills++
		return n.lose(p)
	}
	dir := n.adaptiveRoute(node, p)
	if dir < 0 {
		// Node has no alive output: treat as a loss and retry later.
		return n.lose(p)
	}
	n.queues[node][dir] = append(n.queues[node][dir], p)
	return nil
}

// Drain steps until all in-flight packets are delivered or maxCycles pass;
// it reports full delivery and surfaces unrecoverable faults.
func (n *Network) Drain(maxCycles int64) (bool, error) {
	for c := int64(0); n.inFlight > 0 && c < maxCycles; c++ {
		if err := n.Step(); err != nil {
			return false, err
		}
	}
	return n.inFlight == 0, nil
}

// Stats summarizes delivery quality.
type Stats struct {
	Injected   int64
	Delivered  int64
	Dropped    int64
	AvgLatency float64
	MaxLatency int64
	AvgHops    float64
	Cycles     int64
	// Throughput is delivered packets per node per cycle.
	Throughput float64

	// Fault recovery.
	Retransmits   int64 // lost packets re-sent end-to-end
	LostInFlight  int64 // packets dropped crossing a link
	Corrupted     int64 // deliveries rejected by the receiver checksum
	Reroutes      int64 // packets pulled off a dead output link
	Misroutes     int64 // non-minimal hops taken around faults
	RouterStalls  int64 // router-cycles lost to stalled routers
	LivelockKills int64 // packets recalled by the livelock guard
}

// Stats returns the current summary.
func (n *Network) Stats() Stats {
	s := Stats{
		Injected:      n.injectedCount,
		Delivered:     n.deliveredCount,
		Dropped:       n.dropped,
		MaxLatency:    n.maxLatency,
		Cycles:        n.clock,
		Retransmits:   n.retransmits,
		LostInFlight:  n.lostInFlight,
		Corrupted:     n.corrupted,
		Reroutes:      n.reroutes,
		Misroutes:     n.misroutes,
		RouterStalls:  n.routerStalls,
		LivelockKills: n.livelockKills,
	}
	if n.deliveredCount > 0 {
		s.AvgLatency = float64(n.totalLatency) / float64(n.deliveredCount)
		s.AvgHops = float64(n.totalHops) / float64(n.deliveredCount)
	}
	if n.clock > 0 {
		s.Throughput = float64(n.deliveredCount) / float64(n.clock) / float64(n.Size())
	}
	return s
}

// drainBudget sizes the Drain bound for a load, leaving generous room for
// retransmission backoff under a fault plan.
func (n *Network) drainBudget(packets int) int64 {
	budget := int64(packets)*10 + 10000
	if n.plan != nil {
		budget += int64(n.plan.Retries()) * n.plan.Backoff(n.plan.Retries()/2) * 4
	}
	return budget
}

// RandomTraffic injects `count` uniformly random packets per node (seeded,
// deterministic) and drains the network. It returns the stats.
func RandomTraffic(cfg Config, perNode int, seed int64) (Stats, error) {
	n, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < perNode; i++ {
		for src := 0; src < n.Size(); src++ {
			if _, err := n.Inject(src, rng.Intn(n.Size())); err != nil {
				return n.Stats(), err
			}
		}
		if err := n.Step(); err != nil {
			return n.Stats(), err
		}
	}
	ok, err := n.Drain(n.drainBudget(perNode * n.Size()))
	if err != nil {
		return n.Stats(), err
	}
	if !ok {
		return n.Stats(), fmt.Errorf("network: drain did not complete (%d in flight)", n.InFlight())
	}
	return n.Stats(), nil
}
