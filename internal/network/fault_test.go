package network

import (
	"errors"
	"testing"

	"tcfpram/internal/fault"
)

// faultyCfg is an 8x8 mesh with a moderately hostile but recoverable plan.
func faultyCfg(seed int64) Config {
	return Config{
		Kind: Mesh2D, Width: 8, Height: 8, LinkCapacity: 2,
		Faults: &fault.Plan{
			Seed:        seed,
			DropRate:    0.01,
			CorruptRate: 0.005,
			Links: []fault.LinkFault{
				{Node: 9, Dir: 0, Interval: fault.Interval{From: 4, To: 200}},
				{Node: 36, Dir: 3, Interval: fault.Interval{From: 0, To: 150}},
			},
			Routers: []fault.RouterFault{
				{Node: 20, Interval: fault.Interval{From: 10, To: 40}},
			},
			RetryTimeout: 8,
			MaxRetries:   16,
		},
	}
}

func TestFaultyNetworkStillDeliversEverything(t *testing.T) {
	s, err := RandomTraffic(faultyCfg(3), 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Delivered != s.Injected {
		t.Fatalf("delivered %d of %d under recoverable faults", s.Delivered, s.Injected)
	}
	if s.Retransmits == 0 {
		t.Fatal("plan with 1% drop rate caused no retransmissions; faults did not fire")
	}
	if s.Reroutes == 0 {
		t.Fatal("dead links caused no re-routes; adaptive routing did not fire")
	}
	if s.Corrupted == 0 {
		t.Fatal("corruption rate 0.5% rejected no deliveries")
	}
}

func TestFaultsInflateLatencyOnly(t *testing.T) {
	clean, err := RandomTraffic(Config{Kind: Mesh2D, Width: 8, Height: 8, LinkCapacity: 2}, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := RandomTraffic(faultyCfg(3), 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Delivered != clean.Delivered {
		t.Fatalf("delivery count changed: %d vs %d", faulty.Delivered, clean.Delivered)
	}
	if faulty.AvgLatency <= clean.AvgLatency {
		t.Fatalf("faults should inflate latency: %.2f vs clean %.2f", faulty.AvgLatency, clean.AvgLatency)
	}
	if faulty.Cycles <= clean.Cycles {
		t.Fatalf("faults should inflate cycles: %d vs clean %d", faulty.Cycles, clean.Cycles)
	}
}

func TestFaultStatsDeterministicInSeed(t *testing.T) {
	a, err := RandomTraffic(faultyCfg(11), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomTraffic(faultyCfg(11), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a, b)
	}
	c, err := RandomTraffic(faultyCfg(12), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different fault seeds produced identical stats; plan seed unused")
	}
}

func TestDeadLinkReRoutesAroundFault(t *testing.T) {
	// Kill the east link out of node 0 forever; a 0->3 packet on a 4x1-ish
	// mesh row must detour through another row and still arrive.
	cfg := Config{
		Kind: Mesh2D, Width: 4, Height: 2, LinkCapacity: 1,
		Faults: &fault.Plan{
			Seed:  1,
			Links: []fault.LinkFault{{Node: 0, Dir: dirEast, Interval: fault.Interval{From: 0, To: 0}}},
		},
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustInject(t, n, 0, 3)
	mustDrain(t, n, 1000)
	p := n.Delivered()[0]
	if p.Hops() <= 3 {
		t.Fatalf("hops %d: packet cannot have crossed the dead link minimally", p.Hops())
	}
	if n.Stats().Misroutes == 0 {
		t.Fatal("detour around a permanently dead link must count misroutes")
	}
}

func TestIsolatedDestinationUnrecoverable(t *testing.T) {
	// 2x1 mesh: node 0's only link east is dead forever, so 0->1 can never
	// be delivered; the retry budget must exhaust into an error, not hang.
	cfg := Config{
		Kind: Mesh2D, Width: 2, Height: 1, LinkCapacity: 1,
		Faults: &fault.Plan{
			Seed:         1,
			Links:        []fault.LinkFault{{Node: 0, Dir: dirEast, Interval: fault.Interval{From: 0, To: 0}}},
			RetryTimeout: 2,
			MaxRetries:   3,
		},
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Inject(0, 1); err != nil {
		t.Fatal(err)
	}
	_, err = n.Drain(100000)
	if err == nil {
		t.Fatal("permanently partitioned traffic should be unrecoverable")
	}
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("want ErrUnrecoverable, got %v", err)
	}
}

func TestRouterStallDelaysTraffic(t *testing.T) {
	stall := Config{
		Kind: Mesh2D, Width: 4, Height: 4, LinkCapacity: 1,
		Faults: &fault.Plan{
			Seed:    1,
			Routers: []fault.RouterFault{{Node: 1, Interval: fault.Interval{From: 0, To: 50}}},
		},
	}
	n, err := New(stall)
	if err != nil {
		t.Fatal(err)
	}
	mustInject(t, n, 0, 2) // dimension-order path passes through node 1
	mustDrain(t, n, 10000)
	p := n.Delivered()[0]
	if p.Latency() <= 4 {
		t.Fatalf("latency %d: stalled router did not delay the packet", p.Latency())
	}
	if n.Stats().RouterStalls == 0 {
		t.Fatal("router stall cycles not counted")
	}
}

func TestCorruptedDeliveriesRetransmit(t *testing.T) {
	cfg := Config{
		Kind: Mesh2D, Width: 4, Height: 4, LinkCapacity: 2,
		Faults: &fault.Plan{
			Seed:         5,
			CorruptRate:  0.2,
			RetryTimeout: 4,
			MaxRetries:   20,
		},
	}
	s, err := RandomTraffic(cfg, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Corrupted == 0 {
		t.Fatal("20% corruption rate rejected nothing")
	}
	if s.Delivered != s.Injected {
		t.Fatalf("corruption must be recovered: %d of %d delivered", s.Delivered, s.Injected)
	}
	if s.Retransmits < s.Corrupted {
		t.Fatalf("every corrupted delivery retransmits: %d < %d", s.Retransmits, s.Corrupted)
	}
}

func TestFaultFreeBehaviorUnchangedByNilPlan(t *testing.T) {
	// A Config with a zero-value plan must behave identically to no plan.
	clean, err := RandomTraffic(Config{Kind: Torus2D, Width: 6, Height: 6, LinkCapacity: 2}, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := RandomTraffic(Config{Kind: Torus2D, Width: 6, Height: 6, LinkCapacity: 2,
		Faults: &fault.Plan{Seed: 123}}, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if clean != zero {
		t.Fatalf("zero-value plan changed behavior:\n%+v\n%+v", clean, zero)
	}
}

func TestRandomPlansDrainOnTorus(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := Config{Kind: Torus2D, Width: 6, Height: 6, LinkCapacity: 2,
			Faults: fault.Random(seed, 36, 0)}
		s, err := RandomTraffic(cfg, 8, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.Delivered != s.Injected {
			t.Fatalf("seed %d: %d of %d delivered", seed, s.Delivered, s.Injected)
		}
	}
}
