package network

import (
	"fmt"
	"math/bits"
	"strings"
)

// Pattern generates a destination for each source node — the classic NoC
// evaluation traffic patterns used to probe bisection bandwidth and path
// diversity of the ESM interconnect.
type Pattern int

const (
	// Transpose sends (x, y) -> (y, x); stresses the mesh diagonal.
	Transpose Pattern = iota
	// BitReversal sends node i to the bit-reversed index; adversarial for
	// dimension-order routing.
	BitReversal
	// Neighbor sends to (x+1, y): nearest-neighbor, the friendliest load.
	Neighbor
	// Tornado sends halfway around each dimension; worst case for rings
	// and tori.
	Tornado
)

func (p Pattern) String() string {
	switch p {
	case Transpose:
		return "transpose"
	case BitReversal:
		return "bit-reversal"
	case Neighbor:
		return "neighbor"
	case Tornado:
		return "tornado"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Patterns lists all defined traffic patterns.
func Patterns() []Pattern { return []Pattern{Transpose, BitReversal, Neighbor, Tornado} }

// ParsePattern resolves a pattern name.
func ParsePattern(s string) (Pattern, error) {
	for _, p := range Patterns() {
		if strings.EqualFold(s, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("network: unknown traffic pattern %q (want transpose, bit-reversal, neighbor or tornado)", s)
}

// Dest computes the destination of src under the pattern on a w×h geometry.
// Undefined patterns and non-positive geometries are errors.
func (p Pattern) Dest(src, w, h int) (int, error) {
	if w <= 0 || h <= 0 || src < 0 || src >= w*h {
		return 0, fmt.Errorf("network: %s source %d outside %dx%d geometry", p, src, w, h)
	}
	x, y := src%w, src/w
	switch p {
	case Transpose:
		// Clamp for non-square geometries.
		nx, ny := y%w, x%h
		return ny*w + nx, nil
	case BitReversal:
		n := w * h
		width := bits.Len(uint(n - 1))
		if width == 0 {
			return src, nil
		}
		rev := int(bits.Reverse(uint(src)) >> (bits.UintSize - width))
		return rev % n, nil
	case Neighbor:
		return y*w + (x+1)%w, nil
	case Tornado:
		return ((y+h/2)%h)*w + (x+w/2)%w, nil
	}
	return 0, fmt.Errorf("network: unknown pattern %d", int(p))
}

// PatternTraffic injects perNode rounds of the pattern and drains; every
// node sends to its pattern destination each round.
func PatternTraffic(cfg Config, p Pattern, perNode int) (Stats, error) {
	n, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	for round := 0; round < perNode; round++ {
		for src := 0; src < n.Size(); src++ {
			dst, err := p.Dest(src, cfg.Width, cfg.Height)
			if err != nil {
				return n.Stats(), err
			}
			if _, err := n.Inject(src, dst); err != nil {
				return n.Stats(), err
			}
		}
		if err := n.Step(); err != nil {
			return n.Stats(), err
		}
	}
	ok, err := n.Drain(n.drainBudget(perNode * n.Size()))
	if err != nil {
		return n.Stats(), err
	}
	if !ok {
		return n.Stats(), fmt.Errorf("network: %s drain did not complete (%d in flight)", p, n.InFlight())
	}
	return n.Stats(), nil
}
