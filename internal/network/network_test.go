package network

import (
	"testing"
	"testing/quick"

	"tcfpram/internal/topology"
)

func mesh4x4() Config { return Config{Kind: Mesh2D, Width: 4, Height: 4, LinkCapacity: 1} }

// mustInject injects and fails the test on rejection or error.
func mustInject(t *testing.T, n *Network, src, dst int) {
	t.Helper()
	ok, err := n.Inject(src, dst)
	if err != nil || !ok {
		t.Fatalf("inject %d->%d: ok=%v err=%v", src, dst, ok, err)
	}
}

// mustDrain drains and fails the test on a stuck network or error.
func mustDrain(t *testing.T, n *Network, maxCycles int64) {
	t.Helper()
	ok, err := n.Drain(maxCycles)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !ok {
		t.Fatalf("drain stuck with %d in flight", n.InFlight())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Width: 0, Height: 4}); err == nil {
		t.Fatal("zero width accepted")
	}
	n, err := New(mesh4x4())
	if err != nil || n.Size() != 16 {
		t.Fatalf("New: %v size %d", err, n.Size())
	}
}

func TestSinglePacketLatencyEqualsDistancePlusConstant(t *testing.T) {
	topo := topology.Must(topology.NewMesh2D(4, 4))
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			n, _ := New(mesh4x4())
			mustInject(t, n, src, dst)
			mustDrain(t, n, 1000)
			p := n.Delivered()[0]
			if p.Hops() != topo.Distance(src, dst) {
				t.Fatalf("%d->%d hops %d, want %d", src, dst, p.Hops(), topo.Distance(src, dst))
			}
			// Uncontended latency: one cycle per hop plus injection and
			// ejection cycles.
			want := int64(topo.Distance(src, dst)) + 2
			if p.Latency() != want {
				t.Fatalf("%d->%d latency %d, want %d", src, dst, p.Latency(), want)
			}
		}
	}
}

func TestTorusUsesWraparound(t *testing.T) {
	n, _ := New(Config{Kind: Torus2D, Width: 4, Height: 4, LinkCapacity: 1})
	mustInject(t, n, 0, 3) // distance 1 around the wrap
	mustDrain(t, n, 100)
	if got := n.Delivered()[0].Hops(); got != 1 {
		t.Fatalf("torus hops = %d, want 1 (wraparound)", got)
	}
}

// Property: every packet is delivered (no loss) and its hop count equals the
// topology distance under dimension-order routing.
func TestAllDeliveredWithExactHops(t *testing.T) {
	topo := topology.Must(topology.NewMesh2D(5, 3))
	prop := func(seed int64) bool {
		s, err := RandomTraffic(Config{Kind: Mesh2D, Width: 5, Height: 3, LinkCapacity: 2}, 4, seed)
		if err != nil {
			return false
		}
		return s.Injected == s.Delivered && s.Dropped == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	// Hop exactness on a fixed instance.
	n, _ := New(Config{Kind: Mesh2D, Width: 5, Height: 3, LinkCapacity: 1})
	mustInject(t, n, 0, 14)
	mustInject(t, n, 14, 0)
	mustInject(t, n, 7, 7)
	mustDrain(t, n, 1000)
	for _, p := range n.Delivered() {
		if p.Hops() != topo.Distance(p.Src, p.Dst) {
			t.Fatalf("%d->%d hops %d != distance %d", p.Src, p.Dst, p.Hops(), topo.Distance(p.Src, p.Dst))
		}
	}
}

func TestSelfTrafficDeliversLocally(t *testing.T) {
	n, _ := New(mesh4x4())
	mustInject(t, n, 5, 5)
	mustDrain(t, n, 10)
	p := n.Delivered()[0]
	if p.Hops() != 0 || p.Latency() != 2 {
		t.Fatalf("local delivery hops=%d latency=%d", p.Hops(), p.Latency())
	}
}

func TestCongestionRaisesLatency(t *testing.T) {
	// All nodes target node 0: the ejection port serializes and average
	// latency must exceed the uncontended average distance.
	n, _ := New(mesh4x4())
	for src := 1; src < 16; src++ {
		mustInject(t, n, src, 0)
	}
	mustDrain(t, n, 10000)
	s := n.Stats()
	if s.AvgLatency <= s.AvgHops+2 {
		t.Fatalf("hotspot latency %.2f should exceed uncontended %.2f", s.AvgLatency, s.AvgHops+2)
	}
}

func TestLinkCapacityIncreasesThroughput(t *testing.T) {
	slow, err := RandomTraffic(Config{Kind: Mesh2D, Width: 4, Height: 4, LinkCapacity: 1}, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RandomTraffic(Config{Kind: Mesh2D, Width: 4, Height: 4, LinkCapacity: 4}, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= slow.Cycles {
		t.Fatalf("capacity 4 (%d cycles) should beat capacity 1 (%d cycles)", fast.Cycles, slow.Cycles)
	}
	if fast.AvgLatency >= slow.AvgLatency {
		t.Fatalf("capacity 4 latency %.2f should beat %.2f", fast.AvgLatency, slow.AvgLatency)
	}
}

func TestTorusBeatsMeshOnRandomTraffic(t *testing.T) {
	m, err := RandomTraffic(Config{Kind: Mesh2D, Width: 6, Height: 6, LinkCapacity: 1}, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	to, err := RandomTraffic(Config{Kind: Torus2D, Width: 6, Height: 6, LinkCapacity: 1}, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if to.AvgHops >= m.AvgHops {
		t.Fatalf("torus hops %.2f should beat mesh %.2f", to.AvgHops, m.AvgHops)
	}
}

func TestBoundedInjectionQueueDrops(t *testing.T) {
	n, _ := New(Config{Kind: Mesh2D, Width: 2, Height: 2, LinkCapacity: 1, InjectionQueue: 2})
	ok := 0
	for i := 0; i < 10; i++ {
		accepted, err := n.Inject(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if accepted {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("accepted %d, want 2", ok)
	}
	if n.Stats().Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", n.Stats().Dropped)
	}
}

func TestInjectOutOfRangeIsError(t *testing.T) {
	n, _ := New(mesh4x4())
	for _, pair := range [][2]int{{0, 99}, {-1, 0}, {16, 0}, {0, -5}} {
		if _, err := n.Inject(pair[0], pair[1]); err == nil {
			t.Fatalf("inject %d->%d accepted", pair[0], pair[1])
		}
	}
	// Errors must not corrupt the stats.
	if s := n.Stats(); s.Injected != 0 || s.Dropped != 0 {
		t.Fatalf("failed injects counted: %+v", s)
	}
}

func TestStatsFields(t *testing.T) {
	s, err := RandomTraffic(mesh4x4(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Injected != 8*16 || s.Delivered != s.Injected {
		t.Fatalf("inj/del = %d/%d", s.Injected, s.Delivered)
	}
	if s.AvgLatency <= 0 || s.MaxLatency < int64(s.AvgLatency) || s.Throughput <= 0 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.Retransmits != 0 || s.Reroutes != 0 || s.Corrupted != 0 {
		t.Fatalf("fault counters nonzero without a fault plan: %+v", s)
	}
	if Mesh2D.String() != "mesh" || Torus2D.String() != "torus" {
		t.Fatal("kind names")
	}
}

// The Figure 1 shape: average latency grows with machine size on a mesh
// under uniform random traffic (distance-aware network).
func TestLatencyGrowsWithSize(t *testing.T) {
	small, err := RandomTraffic(Config{Kind: Mesh2D, Width: 2, Height: 2, LinkCapacity: 2}, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RandomTraffic(Config{Kind: Mesh2D, Width: 8, Height: 8, LinkCapacity: 2}, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if large.AvgLatency <= small.AvgLatency {
		t.Fatalf("8x8 latency %.2f should exceed 2x2 latency %.2f", large.AvgLatency, small.AvgLatency)
	}
}
