package network

import (
	"testing"
	"testing/quick"

	"tcfpram/internal/topology"
)

func mesh4x4() Config { return Config{Kind: Mesh2D, Width: 4, Height: 4, LinkCapacity: 1} }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Width: 0, Height: 4}); err == nil {
		t.Fatal("zero width accepted")
	}
	n, err := New(mesh4x4())
	if err != nil || n.Size() != 16 {
		t.Fatalf("New: %v size %d", err, n.Size())
	}
}

func TestSinglePacketLatencyEqualsDistancePlusConstant(t *testing.T) {
	topo := topology.NewMesh2D(4, 4)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			n, _ := New(mesh4x4())
			n.Inject(src, dst)
			if !n.Drain(1000) {
				t.Fatalf("packet %d->%d stuck", src, dst)
			}
			p := n.Delivered()[0]
			if p.Hops() != topo.Distance(src, dst) {
				t.Fatalf("%d->%d hops %d, want %d", src, dst, p.Hops(), topo.Distance(src, dst))
			}
			// Uncontended latency: one cycle per hop plus injection and
			// ejection cycles.
			want := int64(topo.Distance(src, dst)) + 2
			if p.Latency() != want {
				t.Fatalf("%d->%d latency %d, want %d", src, dst, p.Latency(), want)
			}
		}
	}
}

func TestTorusUsesWraparound(t *testing.T) {
	n, _ := New(Config{Kind: Torus2D, Width: 4, Height: 4, LinkCapacity: 1})
	n.Inject(0, 3) // distance 1 around the wrap
	if !n.Drain(100) {
		t.Fatal("stuck")
	}
	if got := n.Delivered()[0].Hops(); got != 1 {
		t.Fatalf("torus hops = %d, want 1 (wraparound)", got)
	}
}

// Property: every packet is delivered (no loss) and its hop count equals the
// topology distance under dimension-order routing.
func TestAllDeliveredWithExactHops(t *testing.T) {
	topo := topology.NewMesh2D(5, 3)
	prop := func(seed int64) bool {
		s, err := RandomTraffic(Config{Kind: Mesh2D, Width: 5, Height: 3, LinkCapacity: 2}, 4, seed)
		if err != nil {
			return false
		}
		return s.Injected == s.Delivered && s.Dropped == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	// Hop exactness on a fixed instance.
	n, _ := New(Config{Kind: Mesh2D, Width: 5, Height: 3, LinkCapacity: 1})
	n.Inject(0, 14)
	n.Inject(14, 0)
	n.Inject(7, 7)
	if !n.Drain(1000) {
		t.Fatal("stuck")
	}
	for _, p := range n.Delivered() {
		if p.Hops() != topo.Distance(p.Src, p.Dst) {
			t.Fatalf("%d->%d hops %d != distance %d", p.Src, p.Dst, p.Hops(), topo.Distance(p.Src, p.Dst))
		}
	}
}

func TestSelfTrafficDeliversLocally(t *testing.T) {
	n, _ := New(mesh4x4())
	n.Inject(5, 5)
	if !n.Drain(10) {
		t.Fatal("local packet stuck")
	}
	p := n.Delivered()[0]
	if p.Hops() != 0 || p.Latency() != 2 {
		t.Fatalf("local delivery hops=%d latency=%d", p.Hops(), p.Latency())
	}
}

func TestCongestionRaisesLatency(t *testing.T) {
	// All nodes target node 0: the ejection port serializes and average
	// latency must exceed the uncontended average distance.
	n, _ := New(mesh4x4())
	for src := 1; src < 16; src++ {
		n.Inject(src, 0)
	}
	if !n.Drain(10000) {
		t.Fatal("hotspot traffic stuck")
	}
	s := n.Stats()
	if s.AvgLatency <= s.AvgHops+2 {
		t.Fatalf("hotspot latency %.2f should exceed uncontended %.2f", s.AvgLatency, s.AvgHops+2)
	}
}

func TestLinkCapacityIncreasesThroughput(t *testing.T) {
	slow, err := RandomTraffic(Config{Kind: Mesh2D, Width: 4, Height: 4, LinkCapacity: 1}, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RandomTraffic(Config{Kind: Mesh2D, Width: 4, Height: 4, LinkCapacity: 4}, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= slow.Cycles {
		t.Fatalf("capacity 4 (%d cycles) should beat capacity 1 (%d cycles)", fast.Cycles, slow.Cycles)
	}
	if fast.AvgLatency >= slow.AvgLatency {
		t.Fatalf("capacity 4 latency %.2f should beat %.2f", fast.AvgLatency, slow.AvgLatency)
	}
}

func TestTorusBeatsMeshOnRandomTraffic(t *testing.T) {
	m, err := RandomTraffic(Config{Kind: Mesh2D, Width: 6, Height: 6, LinkCapacity: 1}, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	to, err := RandomTraffic(Config{Kind: Torus2D, Width: 6, Height: 6, LinkCapacity: 1}, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if to.AvgHops >= m.AvgHops {
		t.Fatalf("torus hops %.2f should beat mesh %.2f", to.AvgHops, m.AvgHops)
	}
}

func TestBoundedInjectionQueueDrops(t *testing.T) {
	n, _ := New(Config{Kind: Mesh2D, Width: 2, Height: 2, LinkCapacity: 1, InjectionQueue: 2})
	ok := 0
	for i := 0; i < 10; i++ {
		if n.Inject(0, 3) {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("accepted %d, want 2", ok)
	}
	if n.Stats().Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", n.Stats().Dropped)
	}
}

func TestInjectPanicsOutOfRange(t *testing.T) {
	n, _ := New(mesh4x4())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Inject(0, 99)
}

func TestStatsFields(t *testing.T) {
	s, err := RandomTraffic(mesh4x4(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Injected != 8*16 || s.Delivered != s.Injected {
		t.Fatalf("inj/del = %d/%d", s.Injected, s.Delivered)
	}
	if s.AvgLatency <= 0 || s.MaxLatency < int64(s.AvgLatency) || s.Throughput <= 0 {
		t.Fatalf("bad stats: %+v", s)
	}
	if Mesh2D.String() != "mesh" || Torus2D.String() != "torus" {
		t.Fatal("kind names")
	}
}

// The Figure 1 shape: average latency grows with machine size on a mesh
// under uniform random traffic (distance-aware network).
func TestLatencyGrowsWithSize(t *testing.T) {
	small, err := RandomTraffic(Config{Kind: Mesh2D, Width: 2, Height: 2, LinkCapacity: 2}, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RandomTraffic(Config{Kind: Mesh2D, Width: 8, Height: 8, LinkCapacity: 2}, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if large.AvgLatency <= small.AvgLatency {
		t.Fatalf("8x8 latency %.2f should exceed 2x2 latency %.2f", large.AvgLatency, small.AvgLatency)
	}
}
