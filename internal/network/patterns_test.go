package network

import "testing"

// dest is the error-free Dest for valid test geometries.
func dest(t *testing.T, p Pattern, src, w, h int) int {
	t.Helper()
	d, err := p.Dest(src, w, h)
	if err != nil {
		t.Fatalf("%s dest(%d, %dx%d): %v", p, src, w, h, err)
	}
	return d
}

func TestPatternDestsInRange(t *testing.T) {
	for _, p := range Patterns() {
		for _, dims := range [][2]int{{4, 4}, {8, 8}, {5, 3}, {1, 1}, {2, 8}} {
			w, h := dims[0], dims[1]
			for src := 0; src < w*h; src++ {
				d := dest(t, p, src, w, h)
				if d < 0 || d >= w*h {
					t.Fatalf("%s on %dx%d: dest(%d) = %d out of range", p, w, h, src, d)
				}
			}
		}
		if p.String() == "" {
			t.Fatal("pattern must render")
		}
	}
}

func TestDestRejectsMalformedInputs(t *testing.T) {
	if _, err := Pattern(99).Dest(0, 4, 4); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	if _, err := Transpose.Dest(16, 4, 4); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := Transpose.Dest(0, 0, 4); err == nil {
		t.Fatal("zero-width geometry accepted")
	}
}

func TestParsePattern(t *testing.T) {
	for _, p := range Patterns() {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParsePattern("TORNADO"); err != nil || got != Tornado {
		t.Fatalf("case-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := ParsePattern("zigzag"); err == nil {
		t.Fatal("unknown pattern name accepted")
	}
}

func TestTransposeOnSquare(t *testing.T) {
	// (x,y) -> (y,x) on 4x4: node 1 = (1,0) -> (0,1) = node 4.
	if got := dest(t, Transpose, 1, 4, 4); got != 4 {
		t.Fatalf("transpose dest = %d, want 4", got)
	}
	if got := dest(t, Transpose, 5, 4, 4); got != 5 { // diagonal fixed point
		t.Fatalf("diagonal = %d, want 5", got)
	}
}

func TestBitReversal(t *testing.T) {
	// 16 nodes: node 1 (0001) -> 8 (1000).
	if got := dest(t, BitReversal, 1, 4, 4); got != 8 {
		t.Fatalf("bit reversal = %d, want 8", got)
	}
	if got := dest(t, BitReversal, 0, 4, 4); got != 0 {
		t.Fatalf("bit reversal of 0 = %d", got)
	}
}

func TestNeighborWraps(t *testing.T) {
	if got := dest(t, Neighbor, 3, 4, 4); got != 0 {
		t.Fatalf("neighbor wrap = %d, want 0", got)
	}
}

func TestTornadoHalfway(t *testing.T) {
	// 4x4: (0,0) -> (2,2) = node 10.
	if got := dest(t, Tornado, 0, 4, 4); got != 10 {
		t.Fatalf("tornado = %d, want 10", got)
	}
}

func TestPatternTrafficDelivers(t *testing.T) {
	for _, p := range Patterns() {
		for _, kind := range []Kind{Mesh2D, Torus2D} {
			s, err := PatternTraffic(Config{Kind: kind, Width: 4, Height: 4, LinkCapacity: 2}, p, 8)
			if err != nil {
				t.Fatalf("%s on %s: %v", p, kind, err)
			}
			if s.Injected != s.Delivered || s.Injected != 8*16 {
				t.Fatalf("%s on %s: inj/del %d/%d", p, kind, s.Injected, s.Delivered)
			}
		}
	}
}

func TestNeighborIsCheapestPattern(t *testing.T) {
	cfg := Config{Kind: Torus2D, Width: 8, Height: 8, LinkCapacity: 1}
	neighbor, err := PatternTraffic(cfg, Neighbor, 8)
	if err != nil {
		t.Fatal(err)
	}
	tornado, err := PatternTraffic(cfg, Tornado, 8)
	if err != nil {
		t.Fatal(err)
	}
	if neighbor.AvgLatency >= tornado.AvgLatency {
		t.Fatalf("neighbor latency %.2f should undercut tornado %.2f",
			neighbor.AvgLatency, tornado.AvgLatency)
	}
	if neighbor.AvgHops != 1 {
		t.Fatalf("neighbor hops = %.2f, want 1", neighbor.AvgHops)
	}
}

func TestTornadoWorstOnTorus(t *testing.T) {
	cfg := Config{Kind: Torus2D, Width: 8, Height: 8, LinkCapacity: 1}
	tornado, err := PatternTraffic(cfg, Tornado, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Tornado distance on an 8x8 torus is 4+4 = 8 hops for every packet.
	if tornado.AvgHops != 8 {
		t.Fatalf("tornado hops = %.2f, want 8", tornado.AvgHops)
	}
}
