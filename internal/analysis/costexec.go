package analysis

import (
	"fmt"
	"slices"

	"tcfpram/internal/codegen"
	"tcfpram/internal/isa"
	"tcfpram/internal/multiop"
	"tcfpram/internal/variant"
)

// The abstract cost executor. It mirrors the step engine's lockstep
// single-instruction shapes (SingleInstruction, SingleOperation,
// ConfigurableSingleOperation, FixedThickness) instruction for instruction
// over the compressed value domain of costval.go, reproducing exactly the
// accounting the real engine folds into Stats: per-group operation counts,
// the pipeline-fill/latency-hiding overhead formula, NUMA stall charging,
// same-step write arbitration, combining-operation resolution, split/join
// retirement with Table 1 flow-branch rates, and storage-buffer promotion
// with task-switch rates. Because tcf-e programs are closed (no external
// input), corpus-scale programs execute fully concretely and every
// prediction is exact — equal to the measured Stats of a real run on either
// backend under either scheduler.
//
// Whenever a value the analysis *needs* (a branch condition, a shared
// address, a SETTHICK operand) degrades to unknown — or an analysis budget
// runs out — the executor aborts with costStop and the report downgrades to
// sound lower bounds: everything accounted before the stop has provably
// been spent by any real run reaching that point, because stats accumulate
// only at the fold/finish boundaries the engine itself commits at.

const (
	costPageShift = 10 // mirrors internal/mem pageShift
	costPageWords = 1 << costPageShift
)

// costStop aborts abstract execution; run() recovers it into a Min-only
// report.
type costStop struct{ reason string }

type flowState uint8

const (
	fsReady flowState = iota
	fsBlocked
	fsWaiting
	fsDone
)

type flowMode uint8

const (
	amPRAM flowMode = iota
	amNUMA
)

// absFlow is the abstract image of one tcf.Flow: PC, scheduling state,
// mode/thickness, the 16 scalar registers as abstract values and the 32
// vector registers as full-backing compressed images.
type absFlow struct {
	id             int
	pc             int
	state          flowState
	mode           flowMode
	thickness      int64
	totalThickness int64
	bunch          int64
	tidOffset      int64
	home           int

	scalars   [isa.NumSRegs]aval
	vecs      [isa.NumVRegs]*avec
	callStack []int

	parent       *absFlow
	resumePC     int
	liveChildren int
}

func (f *absFlow) lanes() int {
	if f.mode == amNUMA {
		return 1
	}
	return int(f.thickness)
}

func (f *absFlow) scalar(r isa.Reg) aval { return f.scalars[r.Index()] }

// read returns operand r as a w-lane view: scalar registers broadcast,
// vector registers use the engine's truncate/zero-extend Vector semantics.
func (f *absFlow) read(r isa.Reg, w, cap int) *avec {
	if r.IsScalar() {
		v := f.scalars[r.Index()]
		if !v.ok {
			return unkVec(w)
		}
		return uniVec(w, v.v)
	}
	return viewVec(f.vecs[r.Index()], w, cap)
}

// writeDest stores a w-lane result: scalar destinations take lane 0 (only
// reachable with w == 1), vector destinations overwrite the low lanes of
// the backing and keep its tail, as the engine's SetLane loop does.
func (f *absFlow) writeDest(r isa.Reg, res *avec, cap int) {
	if r.IsScalar() {
		f.scalars[r.Index()] = res.lane(0)
		return
	}
	f.vecs[r.Index()] = overwriteLow(f.vecs[r.Index()], res, cap)
}

// setThickness mirrors Flow.SetThickness. The engine zero-extends every
// allocated vector backing; in the abstract domain absent tail lanes
// already read as zero, so no register mutation is needed.
func (f *absFlow) setThickness(t int64) {
	f.mode = amPRAM
	f.thickness = t
	f.totalThickness = t
}

// absMem is an abstract word store (shared or group-local). Out-of-range
// peeks read zero and pokes are dropped, exactly like mem.Shared.Peek/Poke
// and mem.Local. Once the tracking budget is exceeded or a bulk symbolic
// write lands, values degrade to unknown — cost accounting stays exact.
type absMem struct {
	words  map[int64]aval
	size   int64
	budget int
	lost   bool
}

func newAbsMem(size int64, budget int) absMem {
	return absMem{words: make(map[int64]aval), size: size, budget: budget}
}

func (m *absMem) peek(addr int64) aval {
	if addr < 0 || addr >= m.size {
		return known(0)
	}
	if v, ok := m.words[addr]; ok {
		return v
	}
	if m.lost {
		return unknown
	}
	return known(0)
}

func (m *absMem) poke(addr int64, v aval) {
	if addr < 0 || addr >= m.size {
		return
	}
	if _, ok := m.words[addr]; !ok && len(m.words) >= m.budget {
		m.lost = true
		return
	}
	m.words[addr] = v
}

func (m *absMem) loseAll() {
	clear(m.words)
	m.lost = true
}

// absWrite is one buffered same-step shared write. A uniform-address thick
// store coalesces into a single record covering threads [0, count);
// arbitration still sees the lowest key of the range.
type absWrite struct {
	addr              int64
	val               aval
	flow, thread, seq int
	count             int64
}

// absContrib is one combining-operation contribution (multiop.Contrib).
type absContrib struct {
	kind              isa.Op
	addr              int64
	val               aval
	flow, thread, seq int
	wantPrefix        bool
	rd                isa.Reg
	rflow             *absFlow
}

type absEventKind uint8

const (
	aevSplit absEventKind = iota
	aevChildDone
)

type absArm struct {
	thick int64
	pc    int
}

type absEvent struct {
	kind absEventKind
	flow *absFlow
	arms []absArm
}

// costCounters mirrors the per-step groupCounters the backend folds.
type costCounters struct {
	ops, scalarOps, fetches                                         int64
	sharedReads, sharedWrites, localReads, localWrites, multiopRefs int64
	stall, barriers                                                 int64
	anyShared                                                       bool
	maxDist                                                         int
}

type absGroup struct {
	index             int
	resident, pending []*absFlow
	local             absMem
	readPages         map[int64]struct{}
	writePages        map[int64]struct{}
	cnt               costCounters
	writes            []absWrite
	contribs          []absContrib
	events            []absEvent
	err               string
	fwd               map[int64]aval
	fwdOn             bool
}

func (g *absGroup) beginStep() {
	g.cnt = costCounters{}
	g.writes = g.writes[:0]
	g.contribs = g.contribs[:0]
	g.events = g.events[:0]
	g.err = ""
}

func (g *absGroup) fail(msg string) {
	if g.err == "" {
		g.err = msg
	}
}

// load mirrors StorageBuf.Load: live residents plus everything pending.
func (g *absGroup) load() int {
	n := len(g.pending)
	for _, f := range g.resident {
		if f.state != fsDone {
			n++
		}
	}
	return n
}

// costTotals mirrors the Stats fields the report predicts.
type costTotals struct {
	steps, cycles, ops, scalarOps, fetches                          int64
	sharedReads, sharedWrites, localReads, localWrites, multiopRefs int64
	overhead, stall, branchCycles, switchCycles, barriers           int64
	splits, joins, flowsCreated, maxLiveFlows                       int64
}

type costExec struct {
	c     *codegen.Compiled
	prog  *isa.Program
	p     CostParams
	pol   variant.Policy
	props variant.Properties

	groups []*absGroup
	flows  []*absFlow
	nextID int

	shared     absMem
	nmods      int
	dist       [][]int
	moduleRefs []int64

	st       costTotals
	maxThick int64

	pendingWrites   []absWrite
	pendingContribs []absContrib
	stepEvents      []absEvent

	conflicts     int64
	conflictsLost bool
	footLost      bool

	concCap  int
	laneLeft int64
}

func newCostExec(c *codegen.Compiled, p CostParams, pol variant.Policy, _ variant.StepShape) *costExec {
	ex := &costExec{
		c:        c,
		prog:     c.Program,
		p:        p,
		pol:      pol,
		props:    pol.Props(),
		nmods:    p.Groups,
		concCap:  p.MaxConcreteLanes,
		laneLeft: p.MaxLaneWork,
	}
	ex.shared = newAbsMem(int64(p.SharedWords), p.MaxTrackedWords)
	ex.moduleRefs = make([]int64, ex.nmods)
	ex.dist = make([][]int, p.Groups)
	for gi := range ex.dist {
		row := make([]int, ex.nmods)
		for m := range row {
			row[m] = p.Topology.Distance(gi, m)
		}
		ex.dist[gi] = row
	}
	ex.groups = make([]*absGroup, p.Groups)
	for gi := range ex.groups {
		ex.groups[gi] = &absGroup{
			index:      gi,
			local:      newAbsMem(int64(p.LocalWords), p.MaxTrackedWords),
			readPages:  make(map[int64]struct{}),
			writePages: make(map[int64]struct{}),
			fwd:        make(map[int64]aval),
		}
	}
	return ex
}

// run drives the abstract machine to completion (or a budget/unknown stop)
// and fills the report.
func (ex *costExec) run(rep *CostReport) {
	defer func() {
		if r := recover(); r != nil {
			cs, ok := r.(costStop)
			if !ok {
				panic(r)
			}
			ex.fill(rep, false, cs.reason, "")
		}
	}()
	if !ex.preload(rep) {
		return
	}
	entry := ex.prog.Entry()
	for _, bf := range ex.pol.BootFlows(ex.machineShape()) {
		g := 0
		if bf.Group >= 0 && bf.Group < len(ex.groups) {
			g = bf.Group
		}
		ex.newFlow(entry, int64(bf.Thickness), ex.groups[g])
	}
	for ex.liveFlows() > 0 {
		if ex.st.steps >= ex.p.MaxSteps {
			ex.fill(rep, false, fmt.Sprintf("analysis step budget exhausted (%d abstract steps)", ex.p.MaxSteps), "")
			return
		}
		if note := ex.runStep(); note != "" {
			ex.fill(rep, true, "", "predicted runtime error: "+note)
			return
		}
	}
	ex.fill(rep, true, "", "")
}

func (ex *costExec) machineShape() variant.MachineShape {
	return variant.MachineShape{
		Groups: ex.p.Groups, ProcsPerGroup: ex.p.ProcsPerGroup,
		VectorWidth: ex.p.VectorWidth,
	}
}

// preload mirrors LoadProgram: shared data segments, plus every group's
// local memory receiving each local segment.
func (ex *costExec) preload(rep *CostReport) bool {
	for _, seg := range ex.prog.Data {
		if seg.Addr < 0 || seg.Addr+int64(len(seg.Words)) > int64(ex.p.SharedWords) {
			rep.Reason = fmt.Sprintf("data segment [%d,%d) outside shared memory (%d words)",
				seg.Addr, seg.Addr+int64(len(seg.Words)), ex.p.SharedWords)
			return false
		}
		for i, w := range seg.Words {
			ex.shared.poke(seg.Addr+int64(i), known(w))
		}
	}
	for _, g := range ex.groups {
		for _, seg := range ex.c.LocalData {
			if seg.Addr < 0 || seg.Addr+int64(len(seg.Words)) > int64(ex.p.LocalWords) {
				rep.Reason = fmt.Sprintf("local data segment [%d,%d) outside local memory (%d words)",
					seg.Addr, seg.Addr+int64(len(seg.Words)), ex.p.LocalWords)
				return false
			}
			for i, w := range seg.Words {
				g.local.poke(seg.Addr+int64(i), known(w))
			}
		}
	}
	return true
}

func (ex *costExec) newFlow(pc int, thickness int64, g *absGroup) *absFlow {
	f := &absFlow{
		id: ex.nextID, pc: pc, state: fsReady, mode: amPRAM,
		thickness: thickness, totalThickness: thickness, bunch: 1,
		resumePC: -1, home: g.index,
	}
	for i := range f.scalars {
		f.scalars[i] = known(0)
	}
	ex.nextID++
	ex.flows = append(ex.flows, f)
	if len(g.resident) < ex.p.ProcsPerGroup {
		g.resident = append(g.resident, f)
	} else {
		g.pending = append(g.pending, f)
	}
	ex.st.flowsCreated++
	if live := int64(ex.liveFlows()); live > ex.st.maxLiveFlows {
		ex.st.maxLiveFlows = live
	}
	if thickness > ex.maxThick {
		ex.maxThick = thickness
	}
	return f
}

func (ex *costExec) liveFlows() int {
	n := 0
	for _, f := range ex.flows {
		if f.state != fsDone {
			n++
		}
	}
	return n
}

func (ex *costExec) anyReady() bool {
	for _, f := range ex.flows {
		if f.state == fsReady {
			return true
		}
	}
	return false
}

func (ex *costExec) releaseBarriers() {
	for _, f := range ex.flows {
		if f.state == fsBlocked {
			f.state = fsReady
		}
	}
}

// runStep mirrors Machine.runStep: generate → merge/fold → commit → retire
// split/join events → compact storage buffers → barrier release → finish.
// A non-empty return is a predicted runtime error: the machine's merge
// aborts before commit, so earlier groups' counters are folded and the
// step never finishes — exactly what the totals now hold.
func (ex *costExec) runStep() string {
	ex.pendingWrites = ex.pendingWrites[:0]
	ex.pendingContribs = ex.pendingContribs[:0]
	ex.stepEvents = ex.stepEvents[:0]
	for _, g := range ex.groups {
		g.beginStep()
		ex.runGroup(g)
	}
	var stepCycles int64
	for _, g := range ex.groups {
		if g.err != "" {
			return g.err
		}
		ex.fold(g, &stepCycles)
	}
	ex.commit()
	b0 := ex.st.branchCycles
	ex.retireEvents()
	stepCycles += ex.st.branchCycles - b0
	s0 := ex.st.switchCycles
	ex.compact()
	stepCycles += ex.st.switchCycles - s0
	if !ex.anyReady() {
		ex.releaseBarriers()
	}
	if stepCycles == 0 {
		stepCycles = 1
	}
	ex.st.cycles += stepCycles
	ex.st.steps++
	if ex.liveFlows() > 0 && !ex.anyReady() {
		return "deadlock: no flow is runnable"
	}
	return ""
}

func (ex *costExec) runGroup(g *absGroup) {
	n := len(g.resident)
	for k := 0; k < n; k++ {
		if g.err != "" {
			break
		}
		f := g.resident[k]
		if f.state != fsReady {
			continue
		}
		ex.runFlow(g, f)
	}
}

func (ex *costExec) runFlow(g *absGroup, f *absFlow) {
	if f.state != fsReady || g.err != "" {
		return
	}
	if f.mode == amNUMA {
		ex.execBunch(g, f)
		return
	}
	if f.pc < 0 || f.pc >= ex.prog.Len() {
		ex.halt(g, f)
		return
	}
	g.cnt.fetches++
	ex.chargeLaneWork(1)
	ex.execWhole(g, f, ex.prog.At(f.pc))
}

func (ex *costExec) halt(g *absGroup, f *absFlow) {
	if f.state == fsDone {
		return
	}
	f.state = fsDone
	if f.parent != nil {
		g.events = append(g.events, absEvent{kind: aevChildDone, flow: f})
	}
}

func (ex *costExec) chargeLaneWork(n int64) {
	ex.laneLeft -= n
	if ex.laneLeft < 0 {
		panic(costStop{"analysis lane-work budget exhausted"})
	}
}

func (ex *costExec) execWhole(g *absGroup, f *absFlow, in isa.Instr) {
	if in.Op.Info().Control {
		g.cnt.scalarOps++
		ex.applyControl(g, f, in)
		return
	}
	w := 1
	if in.Thick() {
		w = f.lanes()
	}
	ex.chargeLaneWork(int64(w))
	if !in.Sliceable() {
		ex.execAtomic(g, f, in)
		if w <= 1 {
			g.cnt.scalarOps++
		} else {
			g.cnt.ops += int64(w)
		}
		f.pc++
		return
	}
	ex.execLanes(g, f, in, w, 0)
	g.cnt.ops += int64(w)
	f.pc++
}

// execBunch mirrors execNUMABunch for lockstep plans: up to Bunch
// consecutive instructions with store-to-load forwarding, mode changes and
// combining operations ending the bunch.
func (ex *costExec) execBunch(g *absGroup, f *absFlow) {
	clear(g.fwd)
	g.fwdOn = true
	defer func() { g.fwdOn = false }()
	for k := int64(0); k < f.bunch; k++ {
		if f.state != fsReady || g.err != "" {
			break
		}
		if f.pc < 0 || f.pc >= ex.prog.Len() {
			ex.halt(g, f)
			break
		}
		g.cnt.fetches++
		ex.chargeLaneWork(1)
		in := ex.prog.At(f.pc)
		if in.Op.Info().Control {
			g.cnt.scalarOps++
			ex.applyControl(g, f, in)
			switch in.Op {
			case isa.SETTHICK, isa.NUMA, isa.PRAM, isa.SPLIT, isa.BAR, isa.JOIN, isa.HALT:
				return
			}
			continue
		}
		if !in.Sliceable() {
			ex.execAtomic(g, f, in)
			g.cnt.scalarOps++
		} else {
			ex.execLanes(g, f, in, 1, int(k))
			g.cnt.ops++
		}
		f.pc++
		if in.Op.IsMultiop() || in.Op.IsMultiprefix() {
			return
		}
	}
}

// execAtomic mirrors the engine's non-sliceable path: reductions fold the
// Lanes()-truncated source vector; PRINT/PRINTS/NOP cost nothing beyond
// the caller's op accounting; everything else is single-lane semantics.
func (ex *costExec) execAtomic(g *absGroup, f *absFlow, in isa.Instr) {
	switch {
	case in.Op.IsReduction():
		v := f.read(in.Ra, f.lanes(), ex.concCap)
		f.scalars[in.Rd.Index()] = reduceVec(in.Op.CombineKind(), v, ex.concCap)
	case in.Op == isa.PRINT, in.Op == isa.PRINTS, in.Op == isa.NOP:
		// Program output does not feed back into cost.
	default:
		ex.execLanes(g, f, in, 1, 0)
	}
}

func (ex *costExec) execLanes(g *absGroup, f *absFlow, in isa.Instr, w, seq int) {
	if w == 0 {
		return
	}
	cap := ex.concCap
	op := in.Op
	switch {
	case op == isa.LDI:
		f.writeDest(in.Rd, uniVec(w, in.Imm), cap)
	case op == isa.MOV, op == isa.NEG, op == isa.NOT:
		f.writeDest(in.Rd, unaryVec(op, f.read(in.Ra, w, cap), cap), cap)
	case op.IsBinaryALU():
		a := f.read(in.Ra, w, cap)
		var b *avec
		if in.HasImm {
			b = uniVec(w, in.Imm)
		} else {
			b = f.read(in.Rb, w, cap)
		}
		f.writeDest(in.Rd, aluVec(op, a, b, cap), cap)
	case op == isa.SEL:
		f.writeDest(in.Rd, selVec(f.read(in.Ra, w, cap), f.read(in.Rb, w, cap), f.read(in.Rc, w, cap), cap), cap)
	case op == isa.TID:
		if f.mode == amNUMA {
			f.writeDest(in.Rd, uniVec(w, 0), cap)
		} else {
			f.writeDest(in.Rd, affVec(w, f.tidOffset, 1), cap)
		}
	case op == isa.FID:
		f.writeDest(in.Rd, uniVec(w, int64(f.id)), cap)
	case op == isa.THICK:
		f.writeDest(in.Rd, uniVec(w, f.totalThickness), cap)
	case op == isa.GID:
		f.writeDest(in.Rd, uniVec(w, int64(g.index)), cap)
	case op == isa.PID:
		f.writeDest(in.Rd, uniVec(w, int64(f.home)), cap)
	case op == isa.NPROC:
		f.writeDest(in.Rd, uniVec(w, int64(ex.p.Groups*ex.p.ProcsPerGroup)), cap)
	case op == isa.NGRP:
		f.writeDest(in.Rd, uniVec(w, int64(ex.p.Groups)), cap)
	case op == isa.LD:
		f.writeDest(in.Rd, ex.doLoad(g, f, ex.addrVec(f, in, w), w), cap)
	case op == isa.ST:
		ex.doStore(g, f, ex.addrVec(f, in, w), f.read(in.Rb, w, cap), w, seq)
	case op == isa.LDL:
		f.writeDest(in.Rd, ex.doLocalLoad(g, ex.addrVec(f, in, w), w), cap)
	case op == isa.STL:
		ex.doLocalStore(g, ex.addrVec(f, in, w), f.read(in.Rb, w, cap), w)
	case op.IsMultiop(), op.IsMultiprefix():
		ex.doCombine(g, f, in, w, seq)
	default:
		panic(costStop{fmt.Sprintf("opcode %s has no abstract lane semantics", op)})
	}
}

// addrVec is effAddr over all w lanes: Imm alone, or base register plus Imm.
func (ex *costExec) addrVec(f *absFlow, in isa.Instr, w int) *avec {
	if in.Ra == isa.RegNone {
		return uniVec(w, in.Imm)
	}
	return aluVec(isa.ADD, f.read(in.Ra, w, ex.concCap), uniVec(w, in.Imm), ex.concCap)
}

// moduleOf mirrors mem.HomeModuleOf (identity remap: no fault plans here).
func (ex *costExec) moduleOf(addr int64) int {
	m := int64(ex.nmods)
	if m&(m-1) == 0 {
		return int(addr & (m - 1))
	}
	return int(((addr % m) + m) % m)
}

// noteSharedN charges n same-address shared references: NUMA mode stalls
// inline per reference, PRAM mode feeds the latency-hiding overhead term.
func (ex *costExec) noteSharedN(g *absGroup, addr, n int64, numa bool) {
	mod := ex.moduleOf(addr)
	ex.moduleRefs[mod] += n
	d := ex.dist[g.index][mod]
	if numa {
		g.cnt.stall += n * int64(ex.p.MemLatencyBase+d)
	} else {
		g.cnt.anyShared = true
		if d > g.cnt.maxDist {
			g.cnt.maxDist = d
		}
	}
}

// noteSharedBulk charges the w references of a non-wrapping affine address
// sequence by walking the module residue cycle once (period ≤ nmods).
func (ex *costExec) noteSharedBulk(g *absGroup, base, stride int64, w int, numa bool) {
	m := ex.nmods
	r := ex.moduleOf(base)
	s := ex.moduleOf(stride)
	period := 1
	for cur := (r + s) % m; cur != r; cur = (cur + s) % m {
		period++
	}
	full, rem := int64(w/period), w%period
	cur := r
	for k := 0; k < period; k++ {
		cnt := full
		if k < rem {
			cnt++
		}
		if cnt > 0 {
			d := ex.dist[g.index][cur]
			ex.moduleRefs[cur] += cnt
			if numa {
				g.cnt.stall += cnt * int64(ex.p.MemLatencyBase+d)
			} else {
				g.cnt.anyShared = true
				if d > g.cnt.maxDist {
					g.cnt.maxDist = d
				}
			}
		}
		cur = (cur + s) % m
	}
}

func (ex *costExec) notePage(g *absGroup, addr int64, write bool) {
	if addr < 0 || addr >= int64(ex.p.SharedWords) {
		return
	}
	pg := addr >> costPageShift
	if write {
		g.writePages[pg] = struct{}{}
	} else {
		g.readPages[pg] = struct{}{}
	}
}

// notePageBulk records the page span of a non-wrapping affine sequence.
// Strides wider than a page (or absurd spans) give up on footprint
// exactness rather than enumerating.
func (ex *costExec) notePageBulk(g *absGroup, base, stride int64, w int, write bool) {
	span, ok := mulNoWrap(stride, int64(w-1))
	if !ok {
		ex.footLost = true
		return
	}
	last, ok := addNoWrap(base, span)
	if !ok {
		ex.footLost = true
		return
	}
	lo, hi := base, last
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi < 0 || lo >= int64(ex.p.SharedWords) {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if max := int64(ex.p.SharedWords) - 1; hi > max {
		hi = max
	}
	abss := stride
	if abss < 0 {
		abss = -abss
	}
	if abss <= 0 || abss > costPageWords {
		ex.footLost = true
		return
	}
	loPg, hiPg := lo>>costPageShift, hi>>costPageShift
	if hiPg-loPg+1 > 1<<16 {
		ex.footLost = true
		return
	}
	for pg := loPg; pg <= hiPg; pg++ {
		if write {
			g.writePages[pg] = struct{}{}
		} else {
			g.readPages[pg] = struct{}{}
		}
	}
}

// affNoWrap verifies the lane addresses base + i*stride stay inside the
// 64-bit space for i in [0, w).
func affNoWrap(base, stride int64, w int) bool {
	span, ok := mulNoWrap(stride, int64(w-1))
	if !ok {
		return false
	}
	_, ok = addNoWrap(base, span)
	return ok
}

func avalVec(w int, v aval) *avec {
	if v.ok {
		return uniVec(w, v.v)
	}
	return unkVec(w)
}

func (ex *costExec) doLoad(g *absGroup, f *absFlow, av *avec, w int) *avec {
	numa := f.mode == amNUMA
	switch av.kind {
	case cvUni:
		addr := av.base
		g.cnt.sharedReads += int64(w)
		ex.noteSharedN(g, addr, int64(w), numa)
		ex.notePage(g, addr, false)
		if g.fwdOn {
			if fv, ok := g.fwd[addr]; ok {
				return avalVec(w, fv)
			}
		}
		return avalVec(w, ex.shared.peek(addr))
	case cvAff, cvConc:
		if w <= ex.concCap {
			addrs := av.materialize(ex.concCap)
			vals := make([]int64, w)
			allKnown := true
			for i := 0; i < w; i++ {
				a := addrs[i]
				g.cnt.sharedReads++
				ex.noteSharedN(g, a, 1, numa)
				ex.notePage(g, a, false)
				pv := ex.shared.peek(a)
				if g.fwdOn {
					if fv, ok := g.fwd[a]; ok {
						pv = fv
					}
				}
				if !pv.ok {
					allKnown = false
				} else {
					vals[i] = pv.v
				}
			}
			if allKnown {
				return concVec(vals)
			}
			return unkVec(w)
		}
		if av.kind == cvAff {
			if !affNoWrap(av.base, av.stride, w) {
				panic(costStop{"shared address sequence wraps the 64-bit space"})
			}
			g.cnt.sharedReads += int64(w)
			ex.noteSharedBulk(g, av.base, av.stride, w, numa)
			ex.notePageBulk(g, av.base, av.stride, w, false)
			return unkVec(w)
		}
	}
	panic(costStop{fmt.Sprintf("unresolved shared-memory load address (pc %d)", f.pc)})
}

func (ex *costExec) doStore(g *absGroup, f *absFlow, av, bv *avec, w, seq int) {
	numa := f.mode == amNUMA
	inRange := func(a int64) bool { return a >= 0 && a < int64(ex.p.SharedWords) }
	switch av.kind {
	case cvUni:
		addr := av.base
		g.cnt.sharedWrites += int64(w)
		ex.noteSharedN(g, addr, int64(w), numa)
		ex.notePage(g, addr, true)
		if inRange(addr) {
			g.writes = append(g.writes, absWrite{
				addr: addr, val: bv.lane(0), flow: f.id, thread: 0, seq: seq, count: int64(w),
			})
		}
		if g.fwdOn {
			g.fwd[addr] = bv.lane(w - 1)
		}
		return
	case cvAff, cvConc:
		if w <= ex.concCap {
			addrs := av.materialize(ex.concCap)
			for i := 0; i < w; i++ {
				a := addrs[i]
				g.cnt.sharedWrites++
				ex.noteSharedN(g, a, 1, numa)
				ex.notePage(g, a, true)
				if inRange(a) {
					g.writes = append(g.writes, absWrite{
						addr: a, val: bv.lane(i), flow: f.id, thread: i, seq: seq, count: 1,
					})
				}
				if g.fwdOn {
					g.fwd[a] = bv.lane(i)
				}
			}
			return
		}
		if av.kind == cvAff {
			if !affNoWrap(av.base, av.stride, w) {
				panic(costStop{"shared address sequence wraps the 64-bit space"})
			}
			g.cnt.sharedWrites += int64(w)
			ex.noteSharedBulk(g, av.base, av.stride, w, numa)
			ex.notePageBulk(g, av.base, av.stride, w, true)
			// The written range is too wide to track word by word: values
			// degrade across the whole image, and same-step collisions with
			// these writes can no longer be counted.
			ex.shared.loseAll()
			ex.conflictsLost = true
			return
		}
	}
	panic(costStop{fmt.Sprintf("unresolved shared-memory store address (pc %d)", f.pc)})
}

func (ex *costExec) doLocalLoad(g *absGroup, av *avec, w int) *avec {
	g.cnt.localReads += int64(w)
	switch av.kind {
	case cvUni:
		return avalVec(w, g.local.peek(av.base))
	case cvAff, cvConc:
		if w <= ex.concCap {
			addrs := av.materialize(ex.concCap)
			vals := make([]int64, w)
			for i := 0; i < w; i++ {
				pv := g.local.peek(addrs[i])
				if !pv.ok {
					return unkVec(w)
				}
				vals[i] = pv.v
			}
			return concVec(vals)
		}
	}
	// Local reads carry no distance cost, so an untracked address only
	// degrades the value, never the accounting.
	return unkVec(w)
}

func (ex *costExec) doLocalStore(g *absGroup, av, bv *avec, w int) {
	g.cnt.localWrites += int64(w)
	switch av.kind {
	case cvUni:
		// Lane order applies immediately: the last lane's value sticks.
		g.local.poke(av.base, bv.lane(w-1))
		return
	case cvAff, cvConc:
		if w <= ex.concCap {
			addrs := av.materialize(ex.concCap)
			for i := 0; i < w; i++ {
				g.local.poke(addrs[i], bv.lane(i))
			}
			return
		}
	}
	g.local.loseAll()
}

func (ex *costExec) doCombine(g *absGroup, f *absFlow, in isa.Instr, w, seq int) {
	if w > ex.concCap {
		panic(costStop{"combining traffic exceeds the analysis lane budget"})
	}
	av := ex.addrVec(f, in, w)
	addrs := av.materialize(ex.concCap)
	if addrs == nil {
		panic(costStop{fmt.Sprintf("unresolved combining address (pc %d)", f.pc)})
	}
	numa := f.mode == amNUMA
	bv := f.read(in.Rb, w, ex.concCap)
	kind := in.Op.CombineKind()
	want := in.Op.IsMultiprefix()
	for i := 0; i < w; i++ {
		a := addrs[i]
		g.cnt.multiopRefs++
		ex.noteSharedN(g, a, 1, numa)
		ex.notePage(g, a, false)
		ex.notePage(g, a, true)
		c := absContrib{kind: kind, addr: a, val: bv.lane(i), flow: f.id, thread: i, seq: seq}
		if want {
			c.wantPrefix, c.rd, c.rflow = true, in.Rd, f
		}
		g.contribs = append(g.contribs, c)
	}
}

func (ex *costExec) applyControl(g *absGroup, f *absFlow, in isa.Instr) {
	switch in.Op {
	case isa.JMP:
		f.pc = in.Target
	case isa.BEQZ, isa.BNEZ:
		c := f.scalar(in.Ra)
		if !c.ok {
			panic(costStop{fmt.Sprintf("unresolved branch condition (pc %d)", f.pc)})
		}
		if (c.v == 0) == (in.Op == isa.BEQZ) {
			f.pc = in.Target
		} else {
			f.pc++
		}
	case isa.CALL:
		f.callStack = append(f.callStack, f.pc+1)
		f.pc = in.Target
	case isa.RET:
		if n := len(f.callStack); n > 0 {
			f.pc = f.callStack[n-1]
			f.callStack = f.callStack[:n-1]
		} else {
			ex.halt(g, f)
		}
	case isa.SETTHICK:
		if !ex.props.VariableThickness {
			g.fail(fmt.Sprintf("SETTHICK: variant %s has fixed thickness", ex.pol.Kind()))
			return
		}
		t := known(in.Imm)
		if !in.HasImm {
			t = f.scalar(in.Ra)
		}
		if !t.ok {
			panic(costStop{fmt.Sprintf("unresolved SETTHICK thickness (pc %d)", f.pc)})
		}
		if t.v < 0 {
			g.fail(fmt.Sprintf("SETTHICK: negative thickness %d", t.v))
			return
		}
		if ex.p.MaxThickness > 0 && t.v > int64(ex.p.MaxThickness) {
			g.fail(fmt.Sprintf("thickness %d exceeds limit %d", t.v, ex.p.MaxThickness))
			return
		}
		f.setThickness(t.v)
		if t.v > ex.maxThick {
			ex.maxThick = t.v
		}
		f.pc++
	case isa.NUMA:
		if !ex.props.NUMAOperation {
			g.fail(fmt.Sprintf("NUMA: variant %s has no NUMA mode", ex.pol.Kind()))
			return
		}
		b := known(in.Imm)
		if !in.HasImm {
			b = f.scalar(in.Ra)
		}
		if !b.ok {
			panic(costStop{fmt.Sprintf("unresolved NUMA bunch (pc %d)", f.pc)})
		}
		if b.v < 1 {
			g.fail(fmt.Sprintf("NUMA: bunch %d must be >= 1", b.v))
			return
		}
		f.mode = amNUMA
		f.bunch = b.v
		f.pc++
	case isa.PRAM:
		if !ex.props.NUMAOperation {
			g.fail(fmt.Sprintf("PRAM: variant %s has no NUMA mode", ex.pol.Kind()))
			return
		}
		f.mode = amPRAM
		f.thickness, f.totalThickness = 1, 1
		f.pc++
	case isa.SPLIT:
		if !ex.props.ControlParallel {
			g.fail(fmt.Sprintf("SPLIT: variant %s has no control parallelism", ex.pol.Kind()))
			return
		}
		arms := make([]absArm, 0, len(in.Arms))
		for _, a := range in.Arms {
			t := known(a.ThickImm)
			if a.Thick != isa.RegNone {
				t = f.scalar(a.Thick)
			}
			if !t.ok {
				panic(costStop{fmt.Sprintf("unresolved split-arm thickness (pc %d)", f.pc)})
			}
			if t.v < 0 {
				g.fail(fmt.Sprintf("SPLIT: negative arm thickness %d", t.v))
				return
			}
			if ex.p.MaxThickness > 0 && t.v > int64(ex.p.MaxThickness) {
				g.fail(fmt.Sprintf("thickness %d exceeds limit %d", t.v, ex.p.MaxThickness))
				return
			}
			arms = append(arms, absArm{thick: t.v, pc: a.Target})
		}
		f.state = fsWaiting
		f.resumePC = f.pc + 1
		f.liveChildren = len(arms)
		g.events = append(g.events, absEvent{kind: aevSplit, flow: f, arms: arms})
	case isa.BAR:
		f.state = fsBlocked
		f.pc++
		g.cnt.barriers++
	case isa.JOIN, isa.HALT:
		ex.halt(g, f)
	}
}

// fold mirrors foldGroup: the group cycle under the extended cost model is
// ops + max(pipeline fill, hidden memory latency) + NUMA stalls.
func (ex *costExec) fold(g *absGroup, stepCycles *int64) {
	c := &g.cnt
	opsCycles := c.ops + c.scalarOps
	var overhead int64
	if c.fetches > 0 {
		overhead = int64(ex.p.PipelineDepth)
		if c.anyShared {
			if lat := int64(ex.p.MemLatencyBase + c.maxDist); lat > overhead {
				overhead = lat
			}
		}
	}
	if gc := opsCycles + overhead + c.stall; gc > *stepCycles {
		*stepCycles = gc
	}
	t := &ex.st
	t.ops += c.ops
	t.scalarOps += c.scalarOps
	t.fetches += c.fetches
	t.sharedReads += c.sharedReads
	t.sharedWrites += c.sharedWrites
	t.localReads += c.localReads
	t.localWrites += c.localWrites
	t.multiopRefs += c.multiopRefs
	t.overhead += overhead
	t.stall += c.stall
	t.barriers += c.barriers
	ex.pendingWrites = append(ex.pendingWrites, g.writes...)
	ex.pendingContribs = append(ex.pendingContribs, g.contribs...)
	ex.stepEvents = append(ex.stepEvents, g.events...)
}

func applyAval(kind isa.Op, a, b aval) aval {
	if !a.ok || !b.ok {
		return unknown
	}
	return known(multiop.Apply(kind, a.v, b.v))
}

// commit mirrors the end-of-step memory resolution: buffered writes
// arbitrate lowest-key-first per address, then combining contributions
// resolve kind by kind in the engine's fixed order, routing prefix values
// back into participant registers.
func (ex *costExec) commit() {
	ws := ex.pendingWrites
	slices.SortFunc(ws, func(a, b absWrite) int {
		switch {
		case a.addr != b.addr:
			return cmp64(a.addr, b.addr)
		case a.flow != b.flow:
			return a.flow - b.flow
		case a.thread != b.thread:
			return a.thread - b.thread
		default:
			return a.seq - b.seq
		}
	})
	for i := 0; i < len(ws); {
		j := i + 1
		weight := ws[i].count
		for j < len(ws) && ws[j].addr == ws[i].addr {
			weight += ws[j].count
			j++
		}
		ex.shared.poke(ws[i].addr, ws[i].val)
		ex.conflicts += weight - 1
		i = j
	}
	for _, kind := range []isa.Op{isa.ADD, isa.AND, isa.OR, isa.MAX, isa.MIN} {
		var cs []absContrib
		for _, c := range ex.pendingContribs {
			if c.kind == kind {
				cs = append(cs, c)
			}
		}
		if len(cs) == 0 {
			continue
		}
		slices.SortFunc(cs, func(a, b absContrib) int {
			switch {
			case a.addr != b.addr:
				return cmp64(a.addr, b.addr)
			case a.flow != b.flow:
				return a.flow - b.flow
			case a.thread != b.thread:
				return a.thread - b.thread
			default:
				return a.seq - b.seq
			}
		})
		for i := 0; i < len(cs); {
			addr := cs[i].addr
			acc := ex.shared.peek(addr)
			j := i
			for ; j < len(cs) && cs[j].addr == addr; j++ {
				c := cs[j]
				if c.wantPrefix {
					idx := c.rd.Index()
					c.rflow.vecs[idx] = setLaneVec(c.rflow.vecs[idx], c.thread, c.rflow.lanes(), ex.concCap, acc)
				}
				acc = applyAval(kind, acc, c.val)
			}
			ex.shared.poke(addr, acc)
			i = j
		}
	}
}

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// retireEvents mirrors the frontend: join bookkeeping cascades parent
// completion; splits place children least-loaded-first and charge the
// Table 1 flow-branch rate per child.
func (ex *costExec) retireEvents() {
	for i := 0; i < len(ex.stepEvents); i++ {
		ev := ex.stepEvents[i]
		switch ev.kind {
		case aevChildDone:
			parent := ev.flow.parent
			parent.liveChildren--
			ex.st.joins++
			if parent.liveChildren == 0 && parent.state == fsWaiting {
				if parent.resumePC < 0 {
					parent.state = fsDone
					if parent.parent != nil {
						ex.stepEvents = append(ex.stepEvents, absEvent{kind: aevChildDone, flow: parent})
					}
				} else {
					parent.state = fsReady
					parent.pc = parent.resumePC
				}
			}
		case aevSplit:
			ex.st.splits++
			for _, arm := range ev.arms {
				g := ex.leastLoaded()
				child := ex.newFlow(arm.pc, arm.thick, g)
				child.parent = ev.flow
				child.scalars = ev.flow.scalars
				ex.st.branchCycles += ex.pol.FlowBranchCycles(isa.NumSRegs)
			}
		}
	}
}

func (ex *costExec) leastLoaded() *absGroup {
	best := ex.groups[0]
	bestLoad := best.load()
	for _, g := range ex.groups[1:] {
		if l := g.load(); l < bestLoad {
			best, bestLoad = g, l
		}
	}
	return best
}

// compact mirrors compactGroup: drop Done residents, promote pending flows
// into free slots, then displace Blocked/Waiting residents while runnable
// flows wait — each movement charging the variant's task-switch rate.
func (ex *costExec) compact() {
	for _, g := range ex.groups {
		kept := g.resident[:0]
		for _, f := range g.resident {
			if f.state != fsDone {
				kept = append(kept, f)
			}
		}
		g.resident = kept
		for len(g.resident) < ex.p.ProcsPerGroup && len(g.pending) > 0 {
			g.resident = append(g.resident, g.pending[0])
			g.pending = g.pending[1:]
			ex.st.switchCycles += ex.pol.TaskSwitchCycles(ex.p.ProcsPerGroup)
		}
		for ex.pendingReady(g) {
			idx := -1
			for i, f := range g.resident {
				if f.state == fsBlocked || f.state == fsWaiting {
					idx = i
					break
				}
			}
			if idx < 0 {
				break
			}
			displaced := g.resident[idx]
			g.resident[idx] = g.pending[0]
			g.pending = append(g.pending[1:], displaced)
			ex.st.switchCycles += ex.pol.TaskSwitchCycles(ex.p.ProcsPerGroup)
		}
	}
}

func (ex *costExec) pendingReady(g *absGroup) bool {
	for _, f := range g.pending {
		if f.state == fsReady {
			return true
		}
	}
	return false
}

// fill converts the accumulated totals into a report. Resolved runs pin
// every bound; stopped runs report sound lower bounds only.
func (ex *costExec) fill(rep *CostReport, resolved bool, reason, note string) {
	rep.Resolved = resolved
	rep.Reason = reason
	rep.Note = note
	mk := exactBound
	if !resolved {
		mk = minOnly
	}
	t := &ex.st
	rep.Steps = mk(t.steps)
	rep.Cycles = mk(t.cycles)
	rep.Ops = mk(t.ops)
	rep.ScalarOps = mk(t.scalarOps)
	rep.InstrFetches = mk(t.fetches)
	rep.SharedReads = mk(t.sharedReads)
	rep.SharedWrites = mk(t.sharedWrites)
	rep.LocalReads = mk(t.localReads)
	rep.LocalWrites = mk(t.localWrites)
	rep.MultiopRefs = mk(t.multiopRefs)
	rep.OverheadCycles = mk(t.overhead)
	rep.StallCycles = mk(t.stall)
	rep.FlowBranchCycles = mk(t.branchCycles)
	rep.TaskSwitchCycles = mk(t.switchCycles)
	rep.Barriers = mk(t.barriers)
	rep.Splits = mk(t.splits)
	rep.Joins = mk(t.joins)
	rep.FlowsCreated = mk(t.flowsCreated)
	rep.MaxLiveFlows = mk(t.maxLiveFlows)
	rep.MaxThickness = mk(ex.maxThick)

	rep.WordsPerModule = append([]int64(nil), ex.moduleRefs...)
	if resolved && !ex.conflictsLost {
		rep.WriteConflicts = exactBound(ex.conflicts)
	} else {
		rep.WriteConflicts = minOnly(ex.conflicts)
	}

	n := len(ex.groups)
	rep.GroupReadPages = make([][]int64, n)
	rep.GroupWritePages = make([][]int64, n)
	all := make(map[int64]struct{})
	for i, g := range ex.groups {
		rep.GroupReadPages[i] = pagesOf(g.readPages)
		rep.GroupWritePages[i] = pagesOf(g.writePages)
		for pg := range g.readPages {
			all[pg] = struct{}{}
		}
		for pg := range g.writePages {
			all[pg] = struct{}{}
		}
	}
	if resolved && !ex.footLost {
		rep.FootprintPages = exactBound(int64(len(all)))
		total := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				total++
				if pagesDisjoint(ex.groups[i].writePages, ex.groups[j].readPages) &&
					pagesDisjoint(ex.groups[i].writePages, ex.groups[j].writePages) &&
					pagesDisjoint(ex.groups[j].writePages, ex.groups[i].readPages) {
					rep.IndependentGroupPairs = append(rep.IndependentGroupPairs, [2]int{i, j})
				}
			}
		}
		rep.ScheduleNote = fmt.Sprintf(
			"%d/%d group pairs provably independent at page granularity: dataflow run-ahead between them never blocks on a shared-page frontier",
			len(rep.IndependentGroupPairs), total)
	} else {
		rep.FootprintPages = minOnly(int64(len(all)))
		rep.ScheduleNote = "footprint incomplete; no group independence proven"
	}
}

func pagesDisjoint(a, b map[int64]struct{}) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for pg := range a {
		if _, ok := b[pg]; ok {
			return false
		}
	}
	return true
}
