package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcfpram/internal/diag"
	"tcfpram/internal/mem"
	"tcfpram/internal/variant"
)

var update = flag.Bool("update", false, "rewrite the expected .golden files")

// TestGolden renders the analyzer's findings for every testdata/golden
// program and compares them byte for byte against the checked-in .golden
// file next to it. Each program selects its analysis options with a
// first-line directive:
//
//	// golden: discipline=<off|erew|crew|crcw> [variant=<name>]
//
// After an intentional diagnostic change, regenerate with
//
//	go test ./internal/analysis -run TestGolden -update
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "*.te"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden programs in testdata/golden")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			opts, err := goldenOptions(string(src))
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			// Base name only, so goldens are stable across working dirs.
			got := diag.Render(AnalyzeSource(filepath.Base(path), string(src), opts))
			goldenPath := path + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s\n--- got ---\n%s--- want ---\n%s",
					goldenPath, got, want)
			}
		})
	}
}

// goldenOptions parses the program's first-line // golden: directive.
func goldenOptions(src string) (Options, error) {
	line, _, _ := strings.Cut(src, "\n")
	rest, ok := strings.CutPrefix(strings.TrimSpace(line), "// golden:")
	if !ok {
		return Options{}, fmt.Errorf("first line is not a // golden: directive: %q", line)
	}
	var opts Options
	for _, field := range strings.Fields(rest) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Options{}, fmt.Errorf("bad directive field %q", field)
		}
		switch key {
		case "discipline":
			d, err := mem.ParseDiscipline(val)
			if err != nil {
				return Options{}, err
			}
			opts.Discipline = d
		case "variant":
			k, err := variant.ParseKind(val)
			if err != nil {
				return Options{}, err
			}
			opts.Variant = k
		default:
			return Options{}, fmt.Errorf("unknown directive key %q", key)
		}
	}
	return opts, nil
}
