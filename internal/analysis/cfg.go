package analysis

import (
	"tcfpram/internal/lang"
)

// cfgBlock is one basic block of the flow-level CFG: a run of leaf
// statements executed in order, followed by zero or more trailing
// expressions (branch conditions, switch subjects and case values,
// parallel-arm thickness expressions) evaluated at the block's end.
type cfgBlock struct {
	id    int
	stmts []lang.Stmt
	exprs []lang.Expr

	succs, preds []*cfgBlock

	// arm is set on the entry block of a parallel arm: thickness inside the
	// arm is the arm's declared thickness, not the parent flow's.
	arm       *lang.ParArm
	reachable bool
}

// cfg is the flow-level control-flow graph of one function. Edges follow
// the structured control of tcf-e: branches, loops (with break/continue),
// switch arms, and parallel splits joining at the statement's end. Edges
// out of constant conditions are pruned, so code behind `if (0)` or after
// `while (1)` shows up as unreachable.
type cfg struct {
	fn     *lang.FuncDecl
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

type loopCtx struct {
	brk, cont *cfgBlock
}

type cfgBuilder struct {
	g     *cfg
	cur   *cfgBlock
	loops []loopCtx
}

func buildCFG(fn *lang.FuncDecl) *cfg {
	g := &cfg{fn: fn}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	if fn.Body != nil {
		for _, s := range fn.Body.Stmts {
			b.stmt(s)
		}
	}
	b.edge(b.cur, g.exit)
	g.markReachable()
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	bl := &cfgBlock{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// terminate ends the current block with an edge to target (exit for
// return/halt, a loop block for break/continue) and opens a fresh,
// predecessor-less block: any statements appended there are unreachable.
func (b *cfgBuilder) terminate(target *cfgBlock) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		for _, sub := range s.Stmts {
			b.stmt(sub)
		}
	case *lang.VarDecl, *lang.AssignStmt, *lang.ExprStmt,
		*lang.ThickStmt, *lang.NumaStmt, *lang.BarrierStmt:
		b.cur.stmts = append(b.cur.stmts, s)
	case *lang.IfStmt:
		b.cur.exprs = append(b.cur.exprs, s.Cond)
		cond := b.cur
		cv, isConst := foldPlain(s.Cond)
		after := b.newBlock()
		thenB := b.newBlock()
		if !isConst || cv != 0 {
			b.edge(cond, thenB)
		}
		b.cur = thenB
		b.stmt(s.Then)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseB := b.newBlock()
			if !isConst || cv == 0 {
				b.edge(cond, elseB)
			}
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else if !isConst || cv == 0 {
			b.edge(cond, after)
		}
		b.cur = after
	case *lang.WhileStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		head.exprs = append(head.exprs, s.Cond)
		cv, isConst := foldPlain(s.Cond)
		body := b.newBlock()
		after := b.newBlock()
		if !isConst || cv != 0 {
			b.edge(head, body)
		}
		if !isConst || cv == 0 {
			b.edge(head, after)
		}
		b.loops = append(b.loops, loopCtx{brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *lang.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			head.exprs = append(head.exprs, s.Cond)
			cv, isConst := foldPlain(s.Cond)
			if !isConst || cv != 0 {
				b.edge(head, body)
			}
			if !isConst || cv == 0 {
				b.edge(head, after)
			}
		} else {
			b.edge(head, body)
		}
		b.loops = append(b.loops, loopCtx{brk: after, cont: post})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, post)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = after
	case *lang.SwitchStmt:
		b.cur.exprs = append(b.cur.exprs, s.Subject)
		subj := b.cur
		after := b.newBlock()
		hasDefault := false
		for i := range s.Cases {
			cs := &s.Cases[i]
			if cs.Values == nil {
				hasDefault = true
			}
			subj.exprs = append(subj.exprs, cs.Values...)
			cb := b.newBlock()
			b.edge(subj, cb)
			b.cur = cb
			for _, sub := range cs.Body {
				b.stmt(sub)
			}
			b.edge(b.cur, after)
		}
		if !hasDefault {
			b.edge(subj, after)
		}
		b.cur = after
	case *lang.ParallelStmt:
		pre := b.cur
		join := b.newBlock()
		for i := range s.Arms {
			arm := &s.Arms[i]
			pre.exprs = append(pre.exprs, arm.Thick)
			ab := b.newBlock()
			ab.arm = arm
			b.edge(pre, ab)
			// Arms run as separate flows: break/continue cannot cross the
			// split (sema enforces this), so the loop stack is hidden.
			saved := b.loops
			b.loops = nil
			b.cur = ab
			b.stmt(arm.Body)
			b.edge(b.cur, join)
			b.loops = saved
		}
		if len(s.Arms) == 0 {
			b.edge(pre, join)
		}
		b.cur = join
	case *lang.ReturnStmt:
		b.cur.stmts = append(b.cur.stmts, s)
		b.terminate(b.g.exit)
	case *lang.HaltStmt:
		b.cur.stmts = append(b.cur.stmts, s)
		b.terminate(b.g.exit)
	case *lang.BreakStmt:
		if n := len(b.loops); n > 0 {
			b.terminate(b.loops[n-1].brk)
		} else {
			b.terminate(b.g.exit)
		}
	case *lang.ContinueStmt:
		if n := len(b.loops); n > 0 {
			b.terminate(b.loops[n-1].cont)
		} else {
			b.terminate(b.g.exit)
		}
	default:
		// Unknown statement kinds (future AST growth) conservatively join
		// the current block.
		b.cur.stmts = append(b.cur.stmts, s)
	}
}

func (g *cfg) markReachable() {
	work := []*cfgBlock{g.entry}
	g.entry.reachable = true
	for len(work) > 0 {
		bl := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range bl.succs {
			if !s.reachable {
				s.reachable = true
				work = append(work, s)
			}
		}
	}
}
