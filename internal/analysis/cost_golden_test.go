package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcfpram/internal/analysis"
	"tcfpram/internal/variant"
)

var updateCost = flag.Bool("update-cost", false, "rewrite testdata/cost_corpus.golden")

// TestCostGolden pins the rendered prediction of every corpus program under
// the reference TCF variant. The validation gate proves these numbers equal
// measured Stats; the golden file makes any model drift reviewable in a
// diff. Regenerate with
//
//	go test ./internal/analysis -run TestCostGolden -update-cost
func TestCostGolden(t *testing.T) {
	var b strings.Builder
	for _, path := range corpusFiles(t) {
		c := compileCorpus(t, path)
		rep := analysis.Cost(c, analysis.DefaultCostParams(variant.SingleInstruction))
		b.WriteString(rep.Render())
	}
	got := b.String()
	golden := filepath.Join("testdata", "cost_corpus.golden")
	if *updateCost {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-cost): %v", err)
	}
	if got != string(want) {
		t.Errorf("cost predictions drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
