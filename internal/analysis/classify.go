package analysis

import (
	"tcfpram/internal/lang"
	"tcfpram/internal/sema"
)

// foldOp evaluates one binary operator on constants with the machine's ALU
// semantics: trap-free division/modulo (0 on zero divisor), shifts clamped
// to [0,63], non-short-circuit boolean operators.
func foldOp(op lang.TokKind, a, b int64) (int64, bool) {
	switch op {
	case lang.TokPlus:
		return a + b, true
	case lang.TokMinus:
		return a - b, true
	case lang.TokStar:
		return a * b, true
	case lang.TokSlash:
		if b == 0 {
			return 0, true
		}
		return a / b, true
	case lang.TokPercent:
		if b == 0 {
			return 0, true
		}
		return a % b, true
	case lang.TokAmp:
		return a & b, true
	case lang.TokPipe:
		return a | b, true
	case lang.TokCaret:
		return a ^ b, true
	case lang.TokShl:
		return a << clampShift(b), true
	case lang.TokShr:
		return a >> clampShift(b), true
	case lang.TokLt:
		return b2i(a < b), true
	case lang.TokLe:
		return b2i(a <= b), true
	case lang.TokGt:
		return b2i(a > b), true
	case lang.TokGe:
		return b2i(a >= b), true
	case lang.TokEq:
		return b2i(a == b), true
	case lang.TokNe:
		return b2i(a != b), true
	case lang.TokAndAnd:
		return b2i(a != 0 && b != 0), true
	case lang.TokOrOr:
		return b2i(a != 0 || b != 0), true
	}
	return 0, false
}

func clampShift(b int64) uint {
	if b < 0 {
		return 0
	}
	if b > 63 {
		return 63
	}
	return uint(b)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// foldPlain evaluates e when it is built from literals only (no symbol
// environment). The CFG builder uses it to prune constant branches.
func foldPlain(e lang.Expr) (int64, bool) {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.Val, true
	case *lang.Unary:
		v, ok := foldPlain(e.X)
		if !ok {
			return 0, false
		}
		return foldUnary(e.Op, v)
	case *lang.Binary:
		a, ok1 := foldPlain(e.X)
		b, ok2 := foldPlain(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		return foldOp(e.Op, a, b)
	}
	return 0, false
}

func foldUnary(op lang.TokKind, v int64) (int64, bool) {
	switch op {
	case lang.TokMinus:
		return -v, true
	case lang.TokTilde:
		return ^v, true
	case lang.TokBang:
		return b2i(v == 0), true
	}
	return 0, false
}

// fold evaluates e using the function's constant environment: literals,
// known-constant scalar variables, and operators with ALU semantics.
func (fa *funcAnalysis) fold(e lang.Expr) (int64, bool) {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.Val, true
	case *lang.Ident:
		if sym := fa.a.info.Syms[e]; sym != nil {
			if v, ok := fa.constEnv[sym]; ok {
				return v, true
			}
		}
		return 0, false
	case *lang.Unary:
		v, ok := fa.fold(e.X)
		if !ok {
			return 0, false
		}
		return foldUnary(e.Op, v)
	case *lang.Binary:
		a, ok1 := fa.fold(e.X)
		b, ok2 := fa.fold(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		return foldOp(e.Op, a, b)
	}
	return 0, false
}

// idxKind classifies how an index expression maps the implicit threads of a
// thick access onto addresses.
type idxKind int

const (
	// idxUnknown: nothing provable.
	idxUnknown idxKind = iota
	// idxCommon: lane-invariant — every thread computes the same value, so
	// a thick access through it collides whenever thickness >= 2.
	idxCommon
	// idxAffine: coef*tid + off with coef != 0 — injective over threads.
	idxAffine
	// idxMod: at most `mod` distinct values across threads — collides by
	// pigeonhole whenever thickness > mod.
	idxMod
	// idxDup: two distinct threads provably compute the same value whenever
	// thickness >= 2 (e.g. tid/k with k > 1).
	idxDup
)

// idxInfo is the result of classifying an index expression.
type idxInfo struct {
	kind     idxKind
	val      int64 // idxCommon: the value, when valKnown
	valKnown bool
	coef     int64 // idxAffine: tid coefficient (never 0)
	off      int64 // idxAffine: constant offset, when offKnown
	offKnown bool
	mod      int64 // idxMod: distinct-value bound (>= 2)
}

func commonVal(v int64) idxInfo { return idxInfo{kind: idxCommon, val: v, valKnown: true} }
func commonAny() idxInfo        { return idxInfo{kind: idxCommon} }
func unknownIdx() idxInfo       { return idxInfo{kind: idxUnknown} }
func colliding(i idxInfo) bool  { return i.kind == idxCommon || i.kind == idxMod || i.kind == idxDup }

// collides reports whether the classified index provably maps two distinct
// threads to the same address under the given thickness.
func (i idxInfo) collides(t thick) bool {
	if !t.known {
		return false
	}
	switch i.kind {
	case idxCommon, idxDup:
		return t.n >= 2
	case idxMod:
		return t.n > i.mod
	}
	return false
}

const maxClassifyDepth = 24

// classify determines the thread→value shape of an index expression. It is
// deliberately conservative: anything it cannot prove is idxUnknown, and
// only provable collisions are ever reported.
func (fa *funcAnalysis) classify(e lang.Expr, depth int) idxInfo {
	if depth > maxClassifyDepth || e == nil {
		return unknownIdx()
	}
	// Scalar-kinded expressions are flow-common by the type system: every
	// thread sees the same value regardless of the expression's shape.
	if k, ok := fa.a.info.Kinds[e]; ok && k == sema.KindScalar {
		if v, folded := fa.fold(e); folded {
			return commonVal(v)
		}
		return commonAny()
	}
	switch e := e.(type) {
	case *lang.IntLit:
		return commonVal(e.Val)
	case *lang.Ident:
		if e.Name == "tid" {
			return idxInfo{kind: idxAffine, coef: 1, off: 0, offKnown: true}
		}
		sym := fa.a.info.Syms[e]
		if sym == nil {
			return unknownIdx()
		}
		if sym.Space != lang.SpaceReg || !sym.Thick {
			return commonAny()
		}
		// Thick register with a single defining expression: propagate.
		if def, ok := fa.singleDef[sym]; ok {
			return fa.classify(def, depth+1)
		}
		return unknownIdx()
	case *lang.Unary:
		x := fa.classify(e.X, depth+1)
		switch e.Op {
		case lang.TokMinus:
			switch x.kind {
			case idxCommon:
				if x.valKnown {
					return commonVal(-x.val)
				}
				return commonAny()
			case idxAffine:
				return idxInfo{kind: idxAffine, coef: -x.coef, off: -x.off, offKnown: x.offKnown}
			case idxMod, idxDup:
				return x // bijective: duplicates and bound preserved
			}
		case lang.TokTilde:
			// ^x = -x-1: bijective, same shape as minus.
			switch x.kind {
			case idxCommon:
				if x.valKnown {
					return commonVal(^x.val)
				}
				return commonAny()
			case idxAffine:
				return idxInfo{kind: idxAffine, coef: -x.coef}
			case idxMod, idxDup:
				return x
			}
		case lang.TokBang:
			// Boolean-valued: at most two distinct values across threads.
			if x.kind == idxCommon {
				if x.valKnown {
					return commonVal(b2i(x.val == 0))
				}
				return commonAny()
			}
			if x.kind != idxUnknown {
				return idxInfo{kind: idxMod, mod: 2}
			}
		}
		return unknownIdx()
	case *lang.Binary:
		return fa.combine(e.Op, fa.classify(e.X, depth+1), fa.classify(e.Y, depth+1))
	}
	return unknownIdx()
}

// combine merges two classified operands under a binary operator.
func (fa *funcAnalysis) combine(op lang.TokKind, x, y idxInfo) idxInfo {
	// Comparisons and boolean connectives produce at most two distinct
	// values whenever either side is classifiable at all.
	switch op {
	case lang.TokLt, lang.TokLe, lang.TokGt, lang.TokGe, lang.TokEq, lang.TokNe,
		lang.TokAndAnd, lang.TokOrOr:
		if x.kind == idxCommon && y.kind == idxCommon {
			if x.valKnown && y.valKnown {
				if v, ok := foldOp(op, x.val, y.val); ok {
					return commonVal(v)
				}
			}
			return commonAny()
		}
		if x.kind != idxUnknown && y.kind != idxUnknown {
			return idxInfo{kind: idxMod, mod: 2}
		}
		return unknownIdx()
	}

	// Lane-invariant on both sides: lane-invariant result.
	if x.kind == idxCommon && y.kind == idxCommon {
		if x.valKnown && y.valKnown {
			if v, ok := foldOp(op, x.val, y.val); ok {
				return commonVal(v)
			}
		}
		return commonAny()
	}

	// A provably-colliding operand combined with a lane-invariant one stays
	// colliding under ANY operator: if threads s and t agree on the value,
	// they agree on any function of it and a flow-common operand. The
	// distinct-value bound can only shrink.
	if colliding(x) && x.kind != idxCommon && y.kind == idxCommon {
		return x
	}
	if colliding(y) && y.kind != idxCommon && x.kind == idxCommon {
		return y
	}

	// common ⊕ colliding where the colliding side is idxCommon was handled
	// above; the remaining interesting cases involve an affine operand.
	switch op {
	case lang.TokPlus:
		if x.kind == idxAffine && y.kind == idxCommon {
			return affineShift(x, y, false)
		}
		if x.kind == idxCommon && y.kind == idxAffine {
			return affineShift(y, x, false)
		}
		if x.kind == idxAffine && y.kind == idxAffine {
			return affineSum(x, y, 1)
		}
		if x.kind == idxCommon && colliding(y) {
			return y
		}
	case lang.TokMinus:
		if x.kind == idxAffine && y.kind == idxCommon {
			return affineShift(x, y, true)
		}
		if x.kind == idxCommon && y.kind == idxAffine {
			n := idxInfo{kind: idxAffine, coef: -y.coef, off: -y.off, offKnown: y.offKnown}
			return affineShift(n, x, false)
		}
		if x.kind == idxAffine && y.kind == idxAffine {
			return affineSum(x, y, -1)
		}
		if x.kind == idxCommon && colliding(y) {
			return y
		}
	case lang.TokStar:
		if x.kind == idxAffine && y.kind == idxCommon {
			return affineScale(x, y)
		}
		if x.kind == idxCommon && y.kind == idxAffine {
			return affineScale(y, x)
		}
	case lang.TokSlash:
		if x.kind == idxAffine && y.kind == idxCommon && y.valKnown {
			k := y.val
			switch {
			case k == 0:
				return commonVal(0) // trap-free ALU: x/0 == 0
			case k == 1:
				return x
			case k == -1:
				return idxInfo{kind: idxAffine, coef: -x.coef, off: -x.off, offKnown: x.offKnown}
			case abs64(x.coef) < abs64(k):
				// Consecutive threads land in the same quotient bucket.
				return idxInfo{kind: idxDup}
			}
		}
	case lang.TokPercent:
		if x.kind == idxAffine && y.kind == idxCommon && y.valKnown {
			k := abs64(y.val)
			switch {
			case k == 0:
				return commonVal(0) // trap-free ALU: x%0 == 0
			case k == 1:
				return commonVal(0)
			default:
				return idxInfo{kind: idxMod, mod: k}
			}
		}
	case lang.TokShl:
		if x.kind == idxAffine && y.kind == idxCommon && y.valKnown {
			c := y.val
			if c == 0 {
				return x
			}
			if c > 0 && c < 63 {
				coef := x.coef << uint(c)
				if coef>>uint(c) == x.coef && coef != 0 {
					return idxInfo{kind: idxAffine, coef: coef,
						off: x.off << uint(c), offKnown: x.offKnown}
				}
			}
		}
	case lang.TokShr:
		if x.kind == idxAffine && y.kind == idxCommon && y.valKnown {
			c := y.val
			if c == 0 {
				return x
			}
			if c > 0 && c < 63 && abs64(x.coef) < int64(1)<<uint(c) {
				return idxInfo{kind: idxDup}
			}
		}
	}
	return unknownIdx()
}

func affineShift(a idxInfo, c idxInfo, sub bool) idxInfo {
	out := idxInfo{kind: idxAffine, coef: a.coef}
	if a.offKnown && c.valKnown {
		if sub {
			out.off, out.offKnown = a.off-c.val, true
		} else {
			out.off, out.offKnown = a.off+c.val, true
		}
	}
	return out
}

func affineSum(a, b idxInfo, sign int64) idxInfo {
	coef := a.coef + sign*b.coef
	if coef == 0 {
		// e.g. tid - tid: lane-invariant.
		if a.offKnown && b.offKnown {
			return commonVal(a.off + sign*b.off)
		}
		return commonAny()
	}
	out := idxInfo{kind: idxAffine, coef: coef}
	if a.offKnown && b.offKnown {
		out.off, out.offKnown = a.off+sign*b.off, true
	}
	return out
}

func affineScale(a idxInfo, c idxInfo) idxInfo {
	if !c.valKnown {
		// Unknown scalar factor could be zero: not provably injective, not
		// provably colliding.
		return unknownIdx()
	}
	if c.val == 0 {
		return commonVal(0)
	}
	coef := a.coef * c.val
	if coef/c.val != a.coef || coef == 0 {
		return unknownIdx() // overflow
	}
	out := idxInfo{kind: idxAffine, coef: coef}
	if a.offKnown {
		out.off, out.offKnown = a.off*c.val, true
	}
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
