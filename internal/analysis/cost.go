package analysis

import (
	"fmt"
	"sort"
	"strings"

	"tcfpram/internal/codegen"
	"tcfpram/internal/topology"
	"tcfpram/internal/variant"
)

// This file is the public face of the static cost analyzer: predicted
// step/cycle/traffic bounds for a compiled tcf-e program under the extended
// PRAM-NUMA cost model, computed without building a machine. The heavy
// lifting is the abstract executor in costexec.go, which mirrors the step
// engine's cost equations (pipeline fill, latency hiding, NUMA stalls,
// Table 1 task-switch/flow-branch rates) over the compressed value domain
// of costval.go; the CFG + thickness dataflow that tcfvet already owns
// provides the static thickness ceiling that stands in whenever abstract
// execution cannot finish.

// Bound is a predicted [Min, Max] interval. Max == -1 means the analyzer
// could not bound the quantity from above; Min is always a sound lower
// bound. A resolved prediction has Min == Max.
type Bound struct {
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

func exactBound(v int64) Bound { return Bound{Min: v, Max: v} }
func minOnly(v int64) Bound    { return Bound{Min: v, Max: -1} }

// Exact reports whether the bound pins one value.
func (b Bound) Exact() bool { return b.Max >= 0 && b.Min == b.Max }

func (b Bound) String() string {
	if b.Exact() {
		return fmt.Sprintf("%d", b.Min)
	}
	if b.Max < 0 {
		return fmt.Sprintf(">=%d", b.Min)
	}
	return fmt.Sprintf("[%d,%d]", b.Min, b.Max)
}

// CostParams describes the machine the prediction is for (mirroring the
// behavior-relevant machine.Config fields) plus the analysis budgets.
type CostParams struct {
	Variant        variant.Kind
	Groups         int
	ProcsPerGroup  int
	SharedWords    int
	LocalWords     int
	PipelineDepth  int
	MemLatencyBase int
	VectorWidth    int
	MaxThickness   int
	// Topology is the group↔module distance metric; nil selects the
	// machine default (a bidirectional ring of Groups nodes).
	Topology topology.Topology

	// MaxSteps bounds abstract machine steps before the analyzer gives up
	// with lower bounds only (default 1<<20).
	MaxSteps int64
	// MaxConcreteLanes caps per-register lane materialization; thicker
	// vectors stay in the compressed domain or degrade to unknown
	// (default 1<<16).
	MaxConcreteLanes int
	// MaxTrackedWords caps the abstract shared/local memory image; past
	// it, written values are dropped (costs stay exact, values degrade)
	// (default 1<<20).
	MaxTrackedWords int
	// MaxLaneWork caps total abstract lane-operations (instruction width
	// summed over all executed instructions) before the analyzer gives up
	// with lower bounds only (default 1<<26).
	MaxLaneWork int64
}

// DefaultCostParams returns parameters matching machine.Default(kind).
func DefaultCostParams(kind variant.Kind) CostParams {
	groups := 4
	if kind == variant.FixedThickness {
		groups = 1
	}
	return CostParams{
		Variant:        kind,
		Groups:         groups,
		ProcsPerGroup:  4,
		SharedWords:    1 << 16,
		LocalWords:     1 << 12,
		PipelineDepth:  4,
		MemLatencyBase: 8,
	}
}

func (p *CostParams) normalize() error {
	if p.Groups <= 0 {
		p.Groups = 4
		if p.Variant == variant.FixedThickness {
			p.Groups = 1
		}
	}
	if p.ProcsPerGroup <= 0 {
		p.ProcsPerGroup = 4
	}
	if p.SharedWords <= 0 {
		p.SharedWords = 1 << 16
	}
	if p.LocalWords <= 0 {
		p.LocalWords = 1 << 12
	}
	if p.PipelineDepth <= 0 {
		p.PipelineDepth = 4
	}
	if p.MemLatencyBase < 0 {
		return fmt.Errorf("analysis: negative MemLatencyBase")
	}
	if p.VectorWidth <= 0 {
		p.VectorWidth = p.ProcsPerGroup
	}
	if p.Topology == nil {
		ring, err := topology.NewRing(p.Groups)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		p.Topology = ring
	}
	if p.Topology.Size() != p.Groups {
		return fmt.Errorf("analysis: topology size %d != groups %d", p.Topology.Size(), p.Groups)
	}
	if p.MaxSteps <= 0 {
		p.MaxSteps = 1 << 20
	}
	if p.MaxConcreteLanes <= 0 {
		p.MaxConcreteLanes = 1 << 16
	}
	if p.MaxTrackedWords <= 0 {
		p.MaxTrackedWords = 1 << 20
	}
	if p.MaxLaneWork <= 0 {
		p.MaxLaneWork = 1 << 26
	}
	return nil
}

// CostReport is the predicted cost of one program on one machine shape.
// When Resolved is true every bound is exact: the abstract executor ran the
// program to completion and the predictions equal the measured Stats of a
// real run on either backend under either scheduler. Otherwise Reason says
// what stopped the analysis and every bound is a sound lower bound.
type CostReport struct {
	Program  string `json:"program"`
	Variant  string `json:"variant"`
	Resolved bool   `json:"resolved"`
	Reason   string `json:"reason,omitempty"`
	// Note flags predicted abnormal terminations (deadlock, runtime
	// errors): the bounds are still exact up to the predicted stop.
	Note string `json:"note,omitempty"`

	Steps            Bound `json:"steps"`
	Cycles           Bound `json:"cycles"`
	Ops              Bound `json:"ops"`
	ScalarOps        Bound `json:"scalar_ops"`
	InstrFetches     Bound `json:"instr_fetches"`
	SharedReads      Bound `json:"shared_reads"`
	SharedWrites     Bound `json:"shared_writes"`
	LocalReads       Bound `json:"local_reads"`
	LocalWrites      Bound `json:"local_writes"`
	MultiopRefs      Bound `json:"multiop_refs"`
	OverheadCycles   Bound `json:"overhead_cycles"`
	StallCycles      Bound `json:"stall_cycles"`
	FlowBranchCycles Bound `json:"flow_branch_cycles"`
	TaskSwitchCycles Bound `json:"task_switch_cycles"`
	Barriers         Bound `json:"barriers"`
	Splits           Bound `json:"splits"`
	Joins            Bound `json:"joins"`
	FlowsCreated     Bound `json:"flows_created"`
	MaxLiveFlows     Bound `json:"max_live_flows"`
	MaxThickness     Bound `json:"max_thickness"`

	// Shared-memory footprint at the memory system's page granularity
	// (1024 words), plus per-module reference pressure and the same-step
	// write-collision estimate.
	FootprintPages Bound   `json:"footprint_pages"`
	WordsPerModule []int64 `json:"words_per_module,omitempty"`
	WriteConflicts Bound   `json:"write_conflicts"`

	// GroupReadPages/GroupWritePages are the shared pages each group's
	// flows touched; IndependentGroupPairs lists group pairs whose page
	// sets never alias (writes of one never meet reads or writes of the
	// other) — the static proof the dataflow scheduler needs that
	// run-ahead between the pair can never be ordered by a frontier wait.
	GroupReadPages        [][]int64 `json:"group_read_pages,omitempty"`
	GroupWritePages       [][]int64 `json:"group_write_pages,omitempty"`
	IndependentGroupPairs [][2]int  `json:"independent_group_pairs,omitempty"`
	ScheduleNote          string    `json:"schedule_note,omitempty"`
}

// Cost predicts the execution cost of a compiled program under params.
func Cost(c *codegen.Compiled, params CostParams) *CostReport {
	p := params
	rep := &CostReport{Variant: p.Variant.String()}
	if c != nil && c.Program != nil {
		rep.Program = c.Program.Name
	}
	if err := p.normalize(); err != nil {
		rep.Reason = err.Error()
		return rep
	}
	if c == nil || c.Program == nil {
		rep.Reason = "no compiled program"
		return rep
	}

	ceil, ceilKnown := staticThickCeiling(c, p.Variant)

	pol, err := variant.PolicyFor(p.Variant)
	if err != nil {
		rep.Reason = err.Error()
		return rep
	}
	shape := pol.Shape(variant.MachineShape{
		Groups: p.Groups, ProcsPerGroup: p.ProcsPerGroup,
		VectorWidth: p.VectorWidth,
	})
	if !shape.Lockstep || shape.Window != 1 || shape.Budget != 0 || shape.Slice || shape.PerThreadFetch {
		// The Balanced and XMT step shapes slice instructions across steps
		// or fetch per thread; the abstract executor models the lockstep
		// single-instruction shapes only. Fall back to the static pass.
		rep.Reason = fmt.Sprintf("variant %s: step shape not supported by the abstract executor (static bounds only)", p.Variant)
		rep.Steps = minOnly(1)
		rep.Cycles = minOnly(1)
		rep.InstrFetches = minOnly(1)
		if ceilKnown {
			rep.MaxThickness = Bound{Min: 1, Max: ceil}
		} else {
			rep.MaxThickness = minOnly(1)
		}
		return rep
	}

	ex := newCostExec(c, p, pol, shape)
	ex.run(rep)

	if !rep.Resolved && ceilKnown && rep.MaxThickness.Max < 0 {
		// The dataflow ceiling still bounds thickness even when abstract
		// execution could not finish.
		rep.MaxThickness.Max = ceil
	}
	return rep
}

// CostSource compiles tcf-e source and predicts its cost.
func CostSource(name, src string, params CostParams) (*CostReport, error) {
	c, err := codegen.CompileSource(name, src)
	if err != nil {
		return nil, err
	}
	return Cost(c, params), nil
}

// staticThickCeiling computes the maximum thickness any flow can reach, by
// running the tcfvet CFG + thickness dataflow over every function reachable
// from main and joining every reachable block state and parallel-arm
// thickness. It reports ok=false when any reachable state is unknown (a
// thickness set from a non-constant expression).
func staticThickCeiling(c *codegen.Compiled, kind variant.Kind) (int64, bool) {
	info := c.Info
	if info == nil || info.Prog == nil {
		return 0, false
	}
	a := &analyzer{
		opts:      Options{Variant: kind},
		prog:      info.Prog,
		info:      info,
		callThick: map[string]thickState{},
	}
	a.buildGlobalConst()
	a.callThick["main"] = thickState{seen: true, t: thick{known: true, n: 1}}
	order, _ := a.callOrder()

	ceil, ok := int64(1), true
	note := func(t thick) {
		if !t.known {
			ok = false
			return
		}
		if t.n > ceil {
			ceil = t.n
		}
	}
	for _, name := range order {
		fi := info.Funcs[name]
		if fi == nil || fi.Decl == nil {
			continue
		}
		fa := &funcAnalysis{a: a, fn: fi.Decl, entry: a.callThick[name].t}
		fa.buildEnv()
		fa.g = buildCFG(fi.Decl)
		fa.thicknessDataflow()
		for _, bl := range fa.g.blocks {
			st, seen := fa.thickIn[bl]
			if !seen || !bl.reachable {
				continue
			}
			note(st.t)
			note(fa.blockOutThick(bl))
			// Join call-site thickness into callees, as checkBlocks does,
			// so the dataflow seeds functions in caller-first order.
			t := st.t
			for _, s := range bl.stmts {
				fa.propagateCalls(s, t)
				t = transferThick(fa, s, t)
			}
			for _, e := range bl.exprs {
				fa.propagateCalls(e, t)
			}
			if bl.arm != nil {
				note(fa.armThick(bl.arm))
			}
		}
	}
	return ceil, ok
}

// Render formats a report for terminal output.
func (r *CostReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: variant=%s", r.Program, r.Variant)
	if r.Resolved {
		b.WriteString(" resolved=exact")
	} else {
		fmt.Fprintf(&b, " resolved=false (%s)", r.Reason)
	}
	if r.Note != "" {
		fmt.Fprintf(&b, " note=%q", r.Note)
	}
	b.WriteString("\n")
	row := func(name string, v Bound) {
		fmt.Fprintf(&b, "  %-18s %s\n", name, v)
	}
	row("steps", r.Steps)
	row("cycles", r.Cycles)
	row("ops", r.Ops)
	row("scalar-ops", r.ScalarOps)
	row("fetches", r.InstrFetches)
	row("shared-reads", r.SharedReads)
	row("shared-writes", r.SharedWrites)
	row("local-reads", r.LocalReads)
	row("local-writes", r.LocalWrites)
	row("multiop-refs", r.MultiopRefs)
	row("overhead-cycles", r.OverheadCycles)
	row("stall-cycles", r.StallCycles)
	row("branch-cycles", r.FlowBranchCycles)
	row("switch-cycles", r.TaskSwitchCycles)
	row("barriers", r.Barriers)
	row("splits", r.Splits)
	row("max-thickness", r.MaxThickness)
	row("max-live-flows", r.MaxLiveFlows)
	row("footprint-pages", r.FootprintPages)
	row("write-conflicts", r.WriteConflicts)
	if len(r.WordsPerModule) > 0 {
		fmt.Fprintf(&b, "  %-18s %v\n", "refs-per-module", r.WordsPerModule)
	}
	if len(r.IndependentGroupPairs) > 0 {
		fmt.Fprintf(&b, "  %-18s %v\n", "independent-pairs", r.IndependentGroupPairs)
	}
	if r.ScheduleNote != "" {
		fmt.Fprintf(&b, "  %-18s %s\n", "schedule", r.ScheduleNote)
	}
	return b.String()
}

// pagesOf flattens a page set into a sorted slice.
func pagesOf(set map[int64]struct{}) []int64 {
	if len(set) == 0 {
		return nil
	}
	out := make([]int64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
