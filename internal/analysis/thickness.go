package analysis

import (
	"tcfpram/internal/lang"
)

// thick is the thickness-analysis lattice value: either a known constant
// thread count or unknown.
type thick struct {
	known bool
	n     int64
}

func joinThick(a, b thick) thick {
	if a.known && b.known && a.n == b.n {
		return a
	}
	return thick{}
}

// thickState distinguishes "not yet reached" (seen == false) from a real
// lattice value, so the first propagation into a block just adopts it.
type thickState struct {
	seen bool
	t    thick
}

func (s thickState) join(t thick) thickState {
	if !s.seen {
		return thickState{seen: true, t: t}
	}
	return thickState{seen: true, t: joinThick(s.t, t)}
}

// thicknessDataflow runs a forward fixpoint over the CFG computing the
// thickness at entry to every block. Thickness changes at `thickness N;`
// statements, `numa` statements (thickness 1 per bunch flow) and on entry
// to parallel arms (the arm's declared thickness).
func (fa *funcAnalysis) thicknessDataflow() {
	fa.thickIn = make(map[*cfgBlock]thickState, len(fa.g.blocks))
	fa.thickIn[fa.g.entry] = thickState{seen: true, t: fa.entry}

	work := []*cfgBlock{fa.g.entry}
	inWork := map[*cfgBlock]bool{fa.g.entry: true}
	for len(work) > 0 {
		bl := work[0]
		work = work[1:]
		inWork[bl] = false

		out := fa.blockOutThick(bl)
		for _, succ := range bl.succs {
			in := out
			if succ.arm != nil {
				in = fa.armThick(succ.arm)
			}
			old := fa.thickIn[succ]
			next := old.join(in)
			if next != old {
				fa.thickIn[succ] = next
				if !inWork[succ] {
					work = append(work, succ)
					inWork[succ] = true
				}
			}
		}
	}
}

// armThick evaluates a parallel arm's declared thickness.
func (fa *funcAnalysis) armThick(arm *lang.ParArm) thick {
	if v, ok := fa.fold(arm.Thick); ok {
		return thick{known: true, n: v}
	}
	return thick{}
}

// blockOutThick replays a block's statements over its entry thickness.
func (fa *funcAnalysis) blockOutThick(bl *cfgBlock) thick {
	t := fa.thickIn[bl].t
	for _, s := range bl.stmts {
		t = transferThick(fa, s, t)
	}
	return t
}

func transferThick(fa *funcAnalysis, s lang.Stmt, t thick) thick {
	switch s := s.(type) {
	case *lang.ThickStmt:
		if v, ok := fa.fold(s.X); ok {
			return thick{known: true, n: v}
		}
		return thick{}
	case *lang.NumaStmt:
		// NUMA execution turns the flow into single-thread bunches.
		return thick{known: true, n: 1}
	}
	return t
}
