// Validation gate for the static cost analyzer: over the whole tcf-e
// corpus, on every variant the abstract executor supports, across BOTH
// backends (interp, fused) and BOTH schedulers (lockstep, dataflow), a
// resolved prediction must equal the measured Stats field for field.
//
// The documented tolerance band is therefore ZERO for resolved
// predictions: the analyzer mirrors the engine's cost equations exactly,
// and any drift between the two is a bug in one of them. Unresolved
// predictions (analysis budget stops) must still be sound lower bounds.
package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcfpram/internal/analysis"
	"tcfpram/internal/codegen"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// supportedKinds are the lockstep single-instruction step shapes the
// abstract executor models (cost.go falls back to static bounds for
// Balanced and MultiInstruction).
var supportedKinds = []variant.Kind{
	variant.SingleInstruction,
	variant.SingleOperation,
	variant.ConfigurableSingleOperation,
	variant.FixedThickness,
}

func corpusFiles(tb testing.TB) []string {
	tb.Helper()
	files, err := filepath.Glob(filepath.Join("..", "codegen", "testdata", "*.te"))
	if err != nil {
		tb.Fatal(err)
	}
	if len(files) < 10 {
		tb.Fatalf("corpus too small: %d programs", len(files))
	}
	return files
}

func compileCorpus(tb testing.TB, path string) *codegen.Compiled {
	tb.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := codegen.CompileSource(filepath.Base(path), string(src))
	if err != nil {
		tb.Fatalf("compile %s: %v", path, err)
	}
	return c
}

// measure runs the program on the real engine and returns the measured
// stats plus the run error (capability rejections, runtime errors).
func measure(tb testing.TB, c *codegen.Compiled, kind variant.Kind, backend machine.Backend, sched machine.Sched) (*machine.Stats, error) {
	tb.Helper()
	cfg := machine.Default(kind)
	cfg.Backend = backend
	cfg.Sched = sched
	m, err := machine.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.LoadProgram(c.Program); err != nil {
		tb.Fatal(err)
	}
	for _, seg := range c.LocalData {
		for g := 0; g < cfg.Groups; g++ {
			if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				tb.Fatal(err)
			}
		}
	}
	_, runErr := m.Run()
	return m.Stats(), runErr
}

// statRows flattens the Stats fields the analyzer predicts, in report
// order, so mismatches name the field.
func statRows(st *machine.Stats) []struct {
	name string
	v    int64
} {
	return []struct {
		name string
		v    int64
	}{
		{"steps", st.Steps},
		{"cycles", st.Cycles},
		{"ops", st.Ops},
		{"scalar_ops", st.ScalarOps},
		{"instr_fetches", st.InstrFetches},
		{"shared_reads", st.SharedReads},
		{"shared_writes", st.SharedWrites},
		{"local_reads", st.LocalReads},
		{"local_writes", st.LocalWrites},
		{"multiop_refs", st.MultiopRefs},
		{"overhead_cycles", st.OverheadCycles},
		{"stall_cycles", st.StallCycles},
		{"flow_branch_cycles", st.FlowBranchCycles},
		{"task_switch_cycles", st.TaskSwitchCycles},
		{"barriers", st.Barriers},
		{"splits", st.Splits},
		{"joins", st.Joins},
		{"flows_created", st.FlowsCreated},
		{"max_live_flows", int64(st.MaxLiveFlows)},
	}
}

func reportBounds(rep *analysis.CostReport) []analysis.Bound {
	return []analysis.Bound{
		rep.Steps, rep.Cycles, rep.Ops, rep.ScalarOps, rep.InstrFetches,
		rep.SharedReads, rep.SharedWrites, rep.LocalReads, rep.LocalWrites,
		rep.MultiopRefs, rep.OverheadCycles, rep.StallCycles,
		rep.FlowBranchCycles, rep.TaskSwitchCycles, rep.Barriers,
		rep.Splits, rep.Joins, rep.FlowsCreated, rep.MaxLiveFlows,
	}
}

// TestCostPredictionsMatchMeasuredStats is the corpus validation gate.
func TestCostPredictionsMatchMeasuredStats(t *testing.T) {
	backends := []machine.Backend{machine.BackendInterp, machine.BackendFused}
	scheds := []machine.Sched{machine.SchedLockstep, machine.SchedDataflow}
	for _, path := range corpusFiles(t) {
		c := compileCorpus(t, path)
		for _, kind := range supportedKinds {
			rep := analysis.Cost(c, analysis.DefaultCostParams(kind))
			for _, backend := range backends {
				for _, sched := range scheds {
					name := fmt.Sprintf("%s/%s/%v/%v", filepath.Base(path), kind, backend, sched)
					t.Run(name, func(t *testing.T) {
						st, runErr := measure(t, c, kind, backend, sched)
						if runErr != nil {
							// The engine rejected or aborted the program; the
							// analyzer must have predicted an abnormal stop
							// (or given up), never a clean resolution.
							if rep.Resolved && rep.Note == "" {
								t.Fatalf("engine error %q but analyzer predicted a clean run", runErr)
							}
							return
						}
						rows := statRows(st)
						bounds := reportBounds(rep)
						if rep.Resolved {
							if rep.Note != "" {
								t.Fatalf("predicted runtime error %q but the run finished cleanly", rep.Note)
							}
							for i, row := range rows {
								if !bounds[i].Exact() || bounds[i].Min != row.v {
									t.Errorf("%s: predicted %v, measured %d", row.name, bounds[i], row.v)
								}
							}
							return
						}
						// Unresolved predictions must still be sound lower
						// bounds on the measured run.
						for i, row := range rows {
							if bounds[i].Min > row.v {
								t.Errorf("%s: lower bound %d exceeds measured %d (reason %q)",
									row.name, bounds[i].Min, row.v, rep.Reason)
							}
						}
					})
				}
			}
		}
	}
}

// TestCostResolvesCorpus pins that the analyzer fully resolves the entire
// corpus under the reference TCF variant — the predictions the golden file
// records are exact, not fallbacks.
func TestCostResolvesCorpus(t *testing.T) {
	for _, path := range corpusFiles(t) {
		c := compileCorpus(t, path)
		rep := analysis.Cost(c, analysis.DefaultCostParams(variant.SingleInstruction))
		if !rep.Resolved {
			t.Errorf("%s: not resolved: %s", filepath.Base(path), rep.Reason)
		}
	}
}

// TestCostIndependentPairsSafe cross-checks the dataflow-schedulability
// verdict: for every corpus program, a pair reported independent must have
// disjoint write-vs-read/write page sets in the report itself.
func TestCostIndependentPairsSafe(t *testing.T) {
	for _, path := range corpusFiles(t) {
		c := compileCorpus(t, path)
		rep := analysis.Cost(c, analysis.DefaultCostParams(variant.SingleInstruction))
		if !rep.Resolved {
			continue
		}
		pageSet := func(ps []int64) map[int64]bool {
			m := make(map[int64]bool, len(ps))
			for _, p := range ps {
				m[p] = true
			}
			return m
		}
		for _, pair := range rep.IndependentGroupPairs {
			i, j := pair[0], pair[1]
			wi, wj := pageSet(rep.GroupWritePages[i]), pageSet(rep.GroupWritePages[j])
			ri, rj := pageSet(rep.GroupReadPages[i]), pageSet(rep.GroupReadPages[j])
			for p := range wi {
				if rj[p] || wj[p] {
					t.Errorf("%s: pair %v aliases page %d", filepath.Base(path), pair, p)
				}
			}
			for p := range wj {
				if ri[p] {
					t.Errorf("%s: pair %v aliases page %d", filepath.Base(path), pair, p)
				}
			}
		}
	}
}

// TestCostUnsupportedShapesFallBack checks Balanced and MultiInstruction
// degrade to static Min-only bounds instead of pretending exactness.
func TestCostUnsupportedShapesFallBack(t *testing.T) {
	c := compileCorpus(t, filepath.Join("..", "codegen", "testdata", "reduce.te"))
	for _, kind := range []variant.Kind{variant.Balanced, variant.MultiInstruction} {
		rep := analysis.Cost(c, analysis.DefaultCostParams(kind))
		if rep.Resolved {
			t.Fatalf("%v: unsupported shape reported resolved", kind)
		}
		if !strings.Contains(rep.Reason, "step shape") {
			t.Fatalf("%v: unexpected reason %q", kind, rep.Reason)
		}
		if rep.MaxThickness.Max < 0 {
			t.Fatalf("%v: static thickness ceiling missing: %+v", kind, rep.MaxThickness)
		}
	}
}
