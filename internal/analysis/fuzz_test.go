package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"tcfpram/internal/mem"
)

// FuzzAnalyze throws arbitrary source at the full analyzer pipeline
// (parse → sema → CFG → dataflow → checks) under both restrictive
// disciplines. The only contract is totality: any input, however
// malformed, must come back as diagnostics, never a panic.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"",
		"func main() { }",
		"func main() { #8; thick int v = tid; print(radd(v)); }",
		"shared int a[4] @ 10 = {1, -2};\nfunc main() { a[0] += 1; }",
		"func main() { parallel { #2: halt; #2: barrier; } }",
		"func main() { switch (1) { case 1: halt; default: barrier; } }",
		"func main() { for (int i = 0; i < 3; i += 1) { if (i) { break; } } }",
		"func f(a, b) { return a / b; }\nfunc main() { print(f(6, 2)); }",
		"func main() { numa 2 { int x = 1; print(x); } }",
		"shared int a[8] @ 100;\nfunc main() { #8; a[tid % 4] = tid; }",
		"func main() { #0; print(1); halt; print(2); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, dir := range []string{"golden", "violations"} {
		paths, err := filepath.Glob(filepath.Join("testdata", dir, "*.te"))
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, d := range []mem.Discipline{mem.DisciplineEREW, mem.DisciplineCREW} {
			_ = AnalyzeSource("fuzz.te", src, Options{Discipline: d})
		}
	})
}
