package analysis_test

import (
	"fmt"
	"os"
	"testing"

	"tcfpram/internal/analysis"
	"tcfpram/internal/variant"
)

// fuzzParams keeps abstract execution cheap enough for the fuzzer while
// still exercising every degradation path (step fuel, lane budget, value
// materialization caps).
func fuzzParams() analysis.CostParams {
	p := analysis.DefaultCostParams(variant.SingleInstruction)
	p.MaxSteps = 2048
	p.MaxConcreteLanes = 256
	p.MaxTrackedWords = 4096
	p.MaxLaneWork = 1 << 16
	return p
}

// FuzzCostAnalyze: the analyzer must never panic on any input the compiler
// accepts, and its predictions must be internally consistent (Min <= Max on
// bounded intervals, exactness only when resolved) and monotone in
// thickness for a thickness-parametric workload.
func FuzzCostAnalyze(f *testing.F) {
	for _, path := range corpusFiles(f) {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src), uint8(4))
	}
	f.Add("func main() { #3; thick int v = tid; print(radd(v)); }", uint8(9))
	f.Fuzz(func(t *testing.T, src string, n uint8) {
		rep, err := analysis.CostSource("fuzz", src, fuzzParams())
		if err == nil {
			checkReportInvariants(t, rep)
		}

		// Monotonicity: the same data-parallel workload at double the
		// thickness can only cost more (steps stay fixed, lane work grows).
		t1 := 1 + int(n%64)
		lo := costOfThickness(t, t1)
		hi := costOfThickness(t, 2*t1)
		if lo.Resolved && hi.Resolved {
			if hi.Ops.Min < lo.Ops.Min {
				t.Fatalf("ops not monotone in thickness: %d lanes -> %d ops, %d lanes -> %d ops",
					t1, lo.Ops.Min, 2*t1, hi.Ops.Min)
			}
			if hi.Cycles.Min < lo.Cycles.Min {
				t.Fatalf("cycles not monotone in thickness: %d lanes -> %d cycles, %d lanes -> %d",
					t1, lo.Cycles.Min, 2*t1, hi.Cycles.Min)
			}
		}
	})
}

func costOfThickness(t *testing.T, thickness int) *analysis.CostReport {
	t.Helper()
	src := fmt.Sprintf(`shared int out[128] @ 0;
func main() {
	#%d;
	thick int v = tid * 3 + 1;
	out[tid %% 128] = v;
	print(radd(v));
}`, thickness)
	rep, err := analysis.CostSource("thick", src, fuzzParams())
	if err != nil {
		t.Fatalf("thickness template failed to compile: %v", err)
	}
	checkReportInvariants(t, rep)
	return rep
}

func checkReportInvariants(t *testing.T, rep *analysis.CostReport) {
	t.Helper()
	for i, b := range reportBounds(rep) {
		if b.Min < 0 {
			t.Fatalf("bound %d has negative min %d", i, b.Min)
		}
		if b.Max >= 0 && b.Max < b.Min {
			t.Fatalf("bound %d inverted: [%d,%d]", i, b.Min, b.Max)
		}
		if rep.Resolved && !b.Exact() {
			t.Fatalf("resolved report has inexact bound %d: [%d,%d]", i, b.Min, b.Max)
		}
	}
}
