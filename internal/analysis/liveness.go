package analysis

import (
	"tcfpram/internal/diag"
	"tcfpram/internal/lang"
	"tcfpram/internal/sema"
)

// stmtDef returns the register symbol a leaf statement defines, if any, and
// whether the definition is a plain `=` assignment (the only kind reported
// as a dead store; declarations and compound assignments are exempt).
func (fa *funcAnalysis) stmtDef(s lang.Stmt) (sym *sema.Sym, plain bool) {
	switch s := s.(type) {
	case *lang.VarDecl:
		sym := fa.a.info.Syms[s]
		if sym != nil && sym.Space == lang.SpaceReg {
			return sym, false
		}
	case *lang.AssignStmt:
		if id, ok := s.LHS.(*lang.Ident); ok {
			sym := fa.a.info.Syms[id]
			if sym != nil && sym.Space == lang.SpaceReg {
				return sym, s.Op == lang.TokAssign
			}
		}
	}
	return nil, false
}

// forEachUse calls f for every register symbol a leaf statement reads. The
// left-hand side of a plain `=` assignment is not a use; a compound
// assignment's LHS is (old value is loaded), and an indexed LHS uses the
// symbols in its index expression.
func (fa *funcAnalysis) forEachUse(s lang.Stmt, f func(*sema.Sym)) {
	use := func(n any) { fa.exprUses(n, f) }
	switch s := s.(type) {
	case *lang.VarDecl:
		use(s.InitExpr)
	case *lang.AssignStmt:
		use(s.RHS)
		switch lhs := s.LHS.(type) {
		case *lang.Ident:
			if s.Op != lang.TokAssign {
				if sym := fa.a.info.Syms[lhs]; sym != nil && sym.Space == lang.SpaceReg {
					f(sym)
				}
			}
		case *lang.Index:
			use(lhs.Idx)
			if s.Op != lang.TokAssign {
				// Memory LHS: old value comes from memory, not a register,
				// but the index is evaluated (already handled above).
				_ = lhs
			}
		}
	case *lang.ExprStmt:
		use(s.X)
	case *lang.ThickStmt:
		use(s.X)
	case *lang.NumaStmt:
		use(s.X)
	case *lang.ReturnStmt:
		use(s.X)
	}
}

// exprUses calls f for every register symbol read inside an expression.
func (fa *funcAnalysis) exprUses(n any, f func(*sema.Sym)) {
	if n == nil {
		return
	}
	e, ok := n.(lang.Expr)
	if !ok || e == nil {
		return
	}
	lang.Inspect(e, func(n any) bool {
		if id, ok := n.(*lang.Ident); ok {
			if sym := fa.a.info.Syms[id]; sym != nil && sym.Space == lang.SpaceReg {
				f(sym)
			}
		}
		return true
	})
}

// liveness runs a backward fixpoint computing, for each block, the set of
// register symbols live at block exit; then reports dead stores: plain `=`
// assignments to registers whose value is never read afterwards.
func (fa *funcAnalysis) liveness() {
	out := make(map[*cfgBlock]map[*sema.Sym]bool, len(fa.g.blocks))
	for _, bl := range fa.g.blocks {
		out[bl] = map[*sema.Sym]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := len(fa.g.blocks) - 1; i >= 0; i-- {
			bl := fa.g.blocks[i]
			in := fa.blockLiveIn(bl, out[bl], nil)
			for _, pred := range bl.preds {
				po := out[pred]
				for sym := range in {
					if !po[sym] {
						po[sym] = true
						changed = true
					}
				}
			}
		}
	}

	// Reporting pass: replay each reachable block backward and flag plain
	// stores into dead registers.
	for _, bl := range fa.g.blocks {
		if !bl.reachable {
			continue
		}
		fa.blockLiveIn(bl, out[bl], func(s *lang.AssignStmt, sym *sema.Sym) {
			// A store whose right-hand side calls a function still has
			// effects; only the binding is dead, which is too noisy to flag.
			hasCall := false
			lang.Inspect(s.RHS, func(n any) bool {
				if _, ok := n.(*lang.Call); ok {
					hasCall = true
				}
				return true
			})
			if hasCall {
				return
			}
			fa.a.report(diag.New(s.Pos, diag.Warning, "dead-store",
				"value assigned to %s is never used", sym.Name))
		})
	}
}

// blockLiveIn computes the live-in set of a block from its live-out set,
// optionally reporting dead plain stores through deadf.
func (fa *funcAnalysis) blockLiveIn(bl *cfgBlock, liveOut map[*sema.Sym]bool,
	deadf func(*lang.AssignStmt, *sema.Sym)) map[*sema.Sym]bool {
	live := make(map[*sema.Sym]bool, len(liveOut))
	for sym := range liveOut {
		live[sym] = true
	}
	for i := len(bl.exprs) - 1; i >= 0; i-- {
		fa.exprUses(bl.exprs[i], func(sym *sema.Sym) { live[sym] = true })
	}
	for i := len(bl.stmts) - 1; i >= 0; i-- {
		s := bl.stmts[i]
		sym, plain := fa.stmtDef(s)
		if sym != nil {
			if plain && !live[sym] && deadf != nil {
				deadf(s.(*lang.AssignStmt), sym)
			}
			if plain || isDecl(s) {
				delete(live, sym)
			}
		}
		fa.forEachUse(s, func(sym *sema.Sym) { live[sym] = true })
	}
	return live
}

func isDecl(s lang.Stmt) bool {
	_, ok := s.(*lang.VarDecl)
	return ok
}

// reportUnreachable flags statements in blocks the CFG cannot reach: code
// after halt/return/break/continue and branches behind constant conditions.
// Only the first statement of each unreachable region is reported.
func (fa *funcAnalysis) reportUnreachable() {
	reported := map[*cfgBlock]bool{}
	for _, bl := range fa.g.blocks {
		// Blocks are in creation (≈ source) order, so the first
		// statement-bearing block of a region is seen before the blocks
		// markRegion suppresses. Empty blocks carry nothing to point at.
		if bl.reachable || reported[bl] || len(bl.stmts) == 0 {
			continue
		}
		fa.reportUnreachableAt(bl)
		markRegion(bl, reported)
	}
}

func (fa *funcAnalysis) reportUnreachableAt(bl *cfgBlock) {
	fa.a.report(diag.New(bl.stmts[0].GetPos(), diag.Warning, "unreachable-code", "unreachable code"))
}

// markRegion suppresses duplicate reports for blocks downstream of an
// already-reported unreachable region.
func markRegion(root *cfgBlock, reported map[*cfgBlock]bool) {
	work := []*cfgBlock{root}
	reported[root] = true
	for len(work) > 0 {
		bl := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range bl.succs {
			if !s.reachable && !reported[s] {
				reported[s] = true
				work = append(work, s)
			}
		}
	}
}
