package analysis

import (
	"fmt"

	"tcfpram/internal/diag"
	"tcfpram/internal/lang"
	"tcfpram/internal/mem"
	"tcfpram/internal/sema"
)

// access is one shared/local-memory access a statement performs: which
// symbol, whether it writes, whether the access is thick (one address per
// thread) and the classification of its index expression.
type access struct {
	pos   lang.Pos
	sym   *sema.Sym
	write bool
	thick bool
	idx   idxInfo
}

// addrRange resolves the access to a [lo,hi) word interval when possible:
// the exact word for flow-common indices, the whole array otherwise.
func (acc access) addrRange() (lo, hi int64) {
	if acc.idx.kind == idxCommon && acc.idx.valKnown {
		lo = acc.sym.Addr + acc.idx.val
		return lo, lo + 1
	}
	if acc.sym.ArrayLen >= 0 {
		n := int64(acc.sym.ArrayLen)
		if n < 1 {
			n = 1
		}
		return acc.sym.Addr, acc.sym.Addr + n
	}
	return acc.sym.Addr, acc.sym.Addr + 1
}

func (fa *funcAnalysis) memSym(n any) *sema.Sym {
	sym := fa.a.info.Syms[n]
	if sym != nil && sym.Space != lang.SpaceReg {
		return sym
	}
	return nil
}

// stmtAccesses collects the memory accesses of one leaf statement,
// mirroring codegen's access widths: a store through an index is thick iff
// the index or the stored value is thick; a load through an index is thick
// iff the index is thick; scalar-variable accesses are always scalar.
// Multioperation intrinsics are exempt — concurrent combining is their
// point — so &-arguments contribute no access (their index expressions,
// evaluated in registers, still do).
func (fa *funcAnalysis) stmtAccesses(s lang.Stmt) []access {
	var out []access
	add := func(a access) { out = append(out, a) }
	switch s := s.(type) {
	case *lang.VarDecl:
		fa.exprAccesses(s.InitExpr, add)
	case *lang.AssignStmt:
		fa.exprAccesses(s.RHS, add)
		switch lhs := s.LHS.(type) {
		case *lang.Ident:
			if sym := fa.memSym(lhs); sym != nil {
				if s.Op != lang.TokAssign {
					add(access{pos: lhs.Pos, sym: sym, idx: commonVal(0)})
				}
				add(access{pos: lhs.Pos, sym: sym, write: true, idx: commonVal(0)})
			}
		case *lang.Index:
			fa.exprAccesses(lhs.Idx, add)
			if sym := fa.memSym(lhs); sym != nil {
				idxThick := fa.a.info.Kinds[lhs.Idx] == sema.KindThick
				rhsThick := fa.a.info.Kinds[s.RHS] == sema.KindThick
				ci := fa.classify(lhs.Idx, 0)
				if s.Op != lang.TokAssign {
					add(access{pos: lhs.Pos, sym: sym, thick: idxThick, idx: ci})
				}
				add(access{pos: lhs.Pos, sym: sym, write: true,
					thick: idxThick || rhsThick, idx: ci})
			}
		}
	case *lang.ExprStmt:
		fa.exprAccesses(s.X, add)
	case *lang.ThickStmt:
		fa.exprAccesses(s.X, add)
	case *lang.NumaStmt:
		fa.exprAccesses(s.X, add)
	case *lang.ReturnStmt:
		fa.exprAccesses(s.X, add)
	}
	return out
}

// exprAccesses collects the loads an expression performs.
func (fa *funcAnalysis) exprAccesses(e lang.Expr, add func(access)) {
	if e == nil {
		return
	}
	lang.Inspect(e, func(n any) bool {
		switch n := n.(type) {
		case *lang.Index:
			if sym := fa.memSym(n); sym != nil {
				add(access{pos: n.Pos, sym: sym,
					thick: fa.a.info.Kinds[n.Idx] == sema.KindThick,
					idx:   fa.classify(n.Idx, 0)})
			}
		case *lang.Ident:
			if sym := fa.memSym(n); sym != nil {
				add(access{pos: n.Pos, sym: sym, idx: commonVal(0)})
			}
		}
		return true
	})
}

// checkAccess reports a discipline violation when one thick instruction
// provably touches the same word from two threads in one step.
func (fa *funcAnalysis) checkAccess(acc access, t thick) {
	d := fa.a.opts.Discipline
	if !d.Checks() || !acc.thick || !acc.idx.collides(t) {
		return
	}
	if acc.write {
		fa.reportAccess(acc, t, "concurrent-write",
			"concurrent write to %s under %s: %s")
	} else if d == mem.DisciplineEREW {
		fa.reportAccess(acc, t, "concurrent-read",
			"concurrent read of %s under %s: %s")
	}
}

func (fa *funcAnalysis) reportAccess(acc access, t thick, check, format string) {
	d := fa.a.report(diag.New(acc.pos, diag.Error, check, format,
		acc.sym.Name, fa.a.opts.Discipline, collideWhy(acc.idx, t)))
	d.Addr, d.AddrEnd = acc.addrRange()
}

func collideWhy(i idxInfo, t thick) string {
	switch i.kind {
	case idxCommon:
		if i.valKnown {
			return fmt.Sprintf("all %d threads access index %d in one step", t.n, i.val)
		}
		return fmt.Sprintf("the index is flow-common across all %d threads", t.n)
	case idxMod:
		return fmt.Sprintf("the index takes at most %d distinct values over %d threads", i.mod, t.n)
	case idxDup:
		return fmt.Sprintf("the index provably repeats among the %d threads", t.n)
	}
	return "the index provably collides"
}

// checkParallel walks the function body and, for every parallel statement,
// checks arm thickness sanity, barriers inside arms on lockstep variants,
// and constant-address conflicts between sibling arms (arms run as
// concurrent flows, so same-step accesses to one word are possible).
func (fa *funcAnalysis) checkParallel() {
	lockstep := fa.a.opts.Variant.Props().Lockstep
	var walk func(n any, inArm bool)
	walk = func(n any, inArm bool) {
		lang.Inspect(n, func(m any) bool {
			switch m := m.(type) {
			case *lang.BarrierStmt:
				if inArm && lockstep {
					fa.a.report(diag.New(m.Pos, diag.Warning, "barrier-in-parallel",
						"barrier inside a parallel arm: on lockstep variants sibling arms "+
							"advance one instruction per step and a barrier here can deadlock "+
							"arms of different lengths"))
				}
			case *lang.ParallelStmt:
				fa.checkParallelStmt(m)
				for i := range m.Arms {
					walk(m.Arms[i].Body, true)
				}
				return false // arms handled above
			}
			return true
		})
	}
	if fa.fn.Body != nil {
		walk(fa.fn.Body, false)
	}
}

func (fa *funcAnalysis) checkParallelStmt(p *lang.ParallelStmt) {
	// Arm thickness sanity.
	for i := range p.Arms {
		arm := &p.Arms[i]
		if v, ok := fa.fold(arm.Thick); ok {
			if v == 0 {
				fa.a.report(diag.New(arm.Pos, diag.Warning, "zero-thickness",
					"parallel arm with constant thickness 0 spawns no threads"))
			} else if v < 0 {
				fa.a.report(diag.New(arm.Pos, diag.Error, "negative-thickness",
					"parallel arm thickness is the constant %d; the machine rejects negative thickness", v))
			}
		}
	}
	d := fa.a.opts.Discipline
	if !d.Checks() {
		return
	}
	// Constant-address conflict check between sibling arms.
	type armAcc struct {
		arm  int
		addr int64
		acc  access
	}
	var all []armAcc
	for i := range p.Arms {
		for _, acc := range fa.constAddrAccesses(p.Arms[i].Body) {
			lo, hi := acc.addrRange()
			if hi != lo+1 || acc.idx.kind != idxCommon || !acc.idx.valKnown {
				continue
			}
			all = append(all, armAcc{arm: i, addr: lo, acc: acc})
		}
	}
	seen := map[string]bool{}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if a.arm == b.arm || a.addr != b.addr {
				continue
			}
			var check string
			switch {
			case a.acc.write && b.acc.write:
				check = "concurrent-write"
			case a.acc.write || b.acc.write:
				check = "read-write-overlap"
			case d == mem.DisciplineEREW:
				check = "concurrent-read"
			default:
				continue
			}
			key := fmt.Sprintf("%d:%d:%s", a.addr, b.arm, check)
			if seen[key] {
				continue
			}
			seen[key] = true
			dg := fa.a.report(diag.New(b.acc.pos, diag.Warning, check,
				"parallel arms may %s %s (word %d) in the same step under %s: "+
					"sibling arm access at %s",
				pairVerb(a.acc.write, b.acc.write), b.acc.sym.Name, a.addr,
				d, a.acc.pos))
			dg.Addr, dg.AddrEnd = a.addr, a.addr+1
		}
	}
}

func pairVerb(w1, w2 bool) string {
	switch {
	case w1 && w2:
		return "both write"
	case w1 || w2:
		return "read and write"
	}
	return "both read"
}

// constAddrAccesses collects every access in an arm body whose address is a
// compile-time constant (flow-common known index or scalar variable).
func (fa *funcAnalysis) constAddrAccesses(body lang.Stmt) []access {
	var out []access
	add := func(a access) { out = append(out, a) }
	lang.Inspect(body, func(n any) bool {
		if s, ok := n.(lang.Stmt); ok {
			switch s.(type) {
			case *lang.VarDecl, *lang.AssignStmt, *lang.ExprStmt,
				*lang.ThickStmt, *lang.NumaStmt, *lang.ReturnStmt:
				for _, acc := range fa.stmtAccesses(s) {
					add(acc)
				}
				return false // stmtAccesses covered the subtree
			}
			return true
		}
		if e, ok := n.(lang.Expr); ok {
			// Trailing expressions of control statements (conditions,
			// subjects, nested arm thicknesses) reach here directly.
			fa.exprAccesses(e, add)
			return false
		}
		return true
	})
	return out
}
