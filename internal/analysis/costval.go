package analysis

import (
	"tcfpram/internal/isa"
	"tcfpram/internal/multiop"
)

// The cost executor's value domain. Scalars are either a known 64-bit word
// or unknown; vectors are compressed whole-register shapes so that
// register-level computation over huge thicknesses stays O(1) per
// instruction:
//
//   - cvUni:  every lane holds the same value (LDI, scalar broadcasts);
//   - cvAff:  lane i holds base + i*stride (TID, linear index arithmetic);
//   - cvConc: an explicit per-lane image, used below the materialization
//     cap (corpus-scale programs run fully concrete and therefore exact);
//   - cvUnk:  value lost to a budget (cost accounting can stay exact —
//     operation counts never depend on the values — but anything
//     control- or address-relevant computed from it stops the analysis).
//
// Affine forms are exact under two's-complement wraparound: ADD/SUB/MUL-
// by-uniform/SHL-by-uniform are ring operations mod 2^64, so the closed
// forms match the engine's aluEval lane for lane.

// aval is a scalar abstract value.
type aval struct {
	ok bool
	v  int64
}

func known(v int64) aval { return aval{ok: true, v: v} }

var unknown = aval{}

type vkind uint8

const (
	cvUni vkind = iota
	cvAff
	cvConc
	cvUnk
)

// avec is a vector abstract value covering exactly n lanes. The flow
// register file stores the full backing image (the engine's Flow.Vector
// backing); views of other lengths are derived with the engine's
// zero-extension semantics.
type avec struct {
	kind vkind
	n    int
	// base/stride describe cvUni (stride unused) and cvAff lanes.
	base, stride int64
	// vals is the cvConc per-lane image.
	vals []int64
}

func uniVec(n int, v int64) *avec { return &avec{kind: cvUni, n: n, base: v} }
func unkVec(n int) *avec          { return &avec{kind: cvUnk, n: n} }
func concVec(vals []int64) *avec  { return &avec{kind: cvConc, n: len(vals), vals: vals} }
func affVec(n int, b, s int64) *avec {
	if s == 0 {
		return uniVec(n, b)
	}
	return &avec{kind: cvAff, n: n, base: b, stride: s}
}

// lane reads lane i with the engine's semantics: indices beyond the
// representation read as zero (laneVal on a shorter backing).
func (v *avec) lane(i int) aval {
	if v == nil || i >= v.n {
		return known(0)
	}
	switch v.kind {
	case cvUni:
		return known(v.base)
	case cvAff:
		return known(v.base + int64(i)*v.stride)
	case cvConc:
		return known(v.vals[i])
	}
	return unknown
}

// materialize returns a concrete lane image, or nil when the vector holds
// unknown lanes or exceeds the cap.
func (v *avec) materialize(cap int) []int64 {
	if v == nil {
		return []int64{}
	}
	if v.n > cap {
		return nil
	}
	switch v.kind {
	case cvConc:
		return v.vals
	case cvUni:
		out := make([]int64, v.n)
		for i := range out {
			out[i] = v.base
		}
		return out
	case cvAff:
		out := make([]int64, v.n)
		for i := range out {
			out[i] = v.base + int64(i)*v.stride
		}
		return out
	}
	return nil
}

// viewVec derives an n-lane view of backing b: truncation keeps the low
// lanes, extension appends zeros (exactly Flow.Vector's lazy grow).
func viewVec(b *avec, n, cap int) *avec {
	if n < 0 {
		n = 0
	}
	if b == nil {
		return uniVec(n, 0)
	}
	if b.n == n {
		return b
	}
	if b.n > n {
		switch b.kind {
		case cvUni:
			return uniVec(n, b.base)
		case cvAff:
			return affVec(n, b.base, b.stride)
		case cvConc:
			return concVec(b.vals[:n])
		}
		return unkVec(n)
	}
	// Extension with zeros.
	switch {
	case b.kind == cvUni && b.base == 0:
		return uniVec(n, 0)
	case b.kind == cvUnk:
		return unkVec(n)
	}
	if vals := b.materialize(cap); vals != nil && n <= cap {
		out := make([]int64, n)
		copy(out, vals)
		return concVec(out)
	}
	return unkVec(n)
}

// tailVec is the lanes [from, b.n) of b.
func tailVec(b *avec, from int) *avec {
	switch b.kind {
	case cvUni:
		return uniVec(b.n-from, b.base)
	case cvAff:
		return affVec(b.n-from, b.base+int64(from)*b.stride, b.stride)
	case cvConc:
		return concVec(b.vals[from:])
	}
	return unkVec(b.n - from)
}

// overwriteLow replaces the low nv.n lanes of backing old with nv, keeping
// old's tail — the engine's SetLane loop over a wider backing.
func overwriteLow(old, nv *avec, cap int) *avec {
	if old == nil || old.n <= nv.n {
		return nv
	}
	tail := tailVec(old, nv.n)
	if nv.kind == cvUni && tail.kind == cvUni && nv.base == tail.base {
		return uniVec(old.n, nv.base)
	}
	if nv.kind == cvAff && tail.kind == cvAff && nv.stride == tail.stride &&
		tail.base == nv.base+int64(nv.n)*nv.stride {
		return affVec(old.n, nv.base, nv.stride)
	}
	hv, tv := nv.materialize(cap), tail.materialize(cap)
	if hv == nil || tv == nil || old.n > cap {
		return unkVec(old.n)
	}
	out := make([]int64, 0, old.n)
	out = append(out, hv...)
	out = append(out, tv...)
	return concVec(out)
}

// setLaneVec point-updates lane i of backing b after growing it to at
// least `lanes` lanes (Flow.Vector grows to Lanes() before indexing).
func setLaneVec(b *avec, i, lanes, cap int, v aval) *avec {
	n := lanes
	if b != nil && b.n > n {
		n = b.n
	}
	if i >= n {
		n = i + 1
	}
	grown := viewVec(b, n, cap)
	if !v.ok || grown.kind == cvUnk {
		// Unknown lanes poison the whole register conservatively.
		return unkVec(n)
	}
	if grown.kind == cvConc {
		if grown.vals[i] == v.v {
			return grown
		}
		out := append([]int64(nil), grown.vals...)
		out[i] = v.v
		return concVec(out)
	}
	if grown.lane(i) == v {
		return grown
	}
	vals := grown.materialize(cap)
	if vals == nil {
		return unkVec(n)
	}
	out := append([]int64(nil), vals...)
	out[i] = v.v
	return concVec(out)
}

// aluEval mirrors the engine's scalar ALU exactly (internal/machine/ops.go).
func aluEval(op isa.Op, a, b int64) int64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.MUL:
		return a * b
	case isa.DIV:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.MOD:
		if b == 0 {
			return 0
		}
		return a % b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.SHL:
		return a << clampShift(b)
	case isa.SHR:
		return a >> clampShift(b)
	case isa.MIN:
		if a < b {
			return a
		}
		return b
	case isa.MAX:
		if a > b {
			return a
		}
		return b
	case isa.SEQ:
		return b2i(a == b)
	case isa.SNE:
		return b2i(a != b)
	case isa.SLT:
		return b2i(a < b)
	case isa.SLE:
		return b2i(a <= b)
	case isa.SGT:
		return b2i(a > b)
	case isa.SGE:
		return b2i(a >= b)
	}
	return 0
}

// aluVec applies a binary ALU op lane-wise over two equal-length views.
// Affine closed forms are used where they are exact under wraparound;
// everything else materializes below the cap and degrades to unknown above.
func aluVec(op isa.Op, a, b *avec, cap int) *avec {
	n := a.n
	if a.kind == cvUni && b.kind == cvUni {
		return uniVec(n, aluEval(op, a.base, b.base))
	}
	if a.kind != cvUnk && b.kind != cvUnk && a.kind != cvConc && b.kind != cvConc {
		// Both uni/aff: treat uni as stride 0.
		ab, as := a.base, a.stride
		if a.kind == cvUni {
			as = 0
		}
		bb, bs := b.base, b.stride
		if b.kind == cvUni {
			bs = 0
		}
		switch op {
		case isa.ADD:
			return affVec(n, ab+bb, as+bs)
		case isa.SUB:
			return affVec(n, ab-bb, as-bs)
		case isa.MUL:
			if bs == 0 {
				return affVec(n, ab*bb, as*bb)
			}
			if as == 0 {
				return affVec(n, ab*bb, ab*bs)
			}
		case isa.SHL:
			if bs == 0 {
				s := clampShift(bb)
				return affVec(n, ab<<s, as<<s)
			}
		}
	}
	av, bv := a.materialize(cap), b.materialize(cap)
	if av == nil || bv == nil {
		return unkVec(n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = aluEval(op, av[i], bv[i])
	}
	return concVec(out)
}

// unaryVec applies MOV/NEG/NOT lane-wise.
func unaryVec(op isa.Op, a *avec, cap int) *avec {
	switch a.kind {
	case cvUni:
		switch op {
		case isa.MOV:
			return a
		case isa.NEG:
			return uniVec(a.n, -a.base)
		case isa.NOT:
			return uniVec(a.n, ^a.base)
		}
	case cvAff:
		switch op {
		case isa.MOV:
			return a
		case isa.NEG:
			return affVec(a.n, -a.base, -a.stride)
		case isa.NOT:
			return affVec(a.n, ^a.base, -a.stride)
		}
	case cvConc:
		if op == isa.MOV {
			return a
		}
		out := make([]int64, a.n)
		for i, v := range a.vals {
			if op == isa.NEG {
				out[i] = -v
			} else {
				out[i] = ^v
			}
		}
		return concVec(out)
	}
	return unkVec(a.n)
}

// selVec is the lane-wise SEL (cond ? then : else).
func selVec(cond, then, els *avec, cap int) *avec {
	n := cond.n
	if cond.kind == cvUni {
		if cond.base != 0 {
			return then
		}
		return els
	}
	cv, tv, ev := cond.materialize(cap), then.materialize(cap), els.materialize(cap)
	if cv == nil || tv == nil || ev == nil {
		return unkVec(n)
	}
	out := make([]int64, n)
	for i := range out {
		if cv[i] != 0 {
			out[i] = tv[i]
		} else {
			out[i] = ev[i]
		}
	}
	return concVec(out)
}

// triangular returns 0+1+...+(m-1) mod 2^64, computed with a parity split
// so the division by two happens before any wraparound.
func triangular(m int64) int64 {
	um := uint64(m)
	if um == 0 {
		return 0
	}
	if um%2 == 0 {
		return int64((um / 2) * (um - 1))
	}
	return int64(um * ((um - 1) / 2))
}

// addNoWrap reports a+b with an overflow flag.
func addNoWrap(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// mulNoWrap reports a*b with an overflow flag.
func mulNoWrap(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// reduceVec folds a view under one of the combining operators exactly as
// execAtomic does (identity-seeded left fold with multiop.Apply).
func reduceVec(kind isa.Op, v *avec, cap int) aval {
	n := v.n
	if n == 0 {
		return known(multiop.Identity(kind))
	}
	switch v.kind {
	case cvUni:
		switch kind {
		case isa.ADD:
			return known(int64(uint64(v.base) * uint64(n)))
		case isa.AND, isa.OR, isa.MAX, isa.MIN:
			return known(v.base)
		}
	case cvAff:
		switch kind {
		case isa.ADD:
			// Sum of base + i*stride over i in [0, n): exact mod 2^64.
			s := int64(uint64(v.base)*uint64(n)) + int64(uint64(v.stride)*uint64(triangular(int64(n))))
			return known(s)
		case isa.MAX, isa.MIN:
			// Endpoints are only the extrema when the sequence does not
			// wrap; verify before using the closed form.
			if span, ok := mulNoWrap(v.stride, int64(n-1)); ok {
				if last, ok := addNoWrap(v.base, span); ok {
					if (kind == isa.MAX) == (v.stride > 0) {
						return known(last)
					}
					return known(v.base)
				}
			}
		}
	}
	vals := v.materialize(cap)
	if vals == nil {
		return unknown
	}
	acc := multiop.Identity(kind)
	for _, e := range vals {
		acc = multiop.Apply(kind, acc, e)
	}
	return known(acc)
}
