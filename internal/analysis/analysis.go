// Package analysis implements tcfvet: a static analyzer for tcf-e
// programs. It builds a flow-level control-flow graph per function, runs a
// thickness dataflow over it, and reports position-carrying diagnostics in
// two families:
//
//   - memory discipline under a selectable PRAM model (EREW/CREW/CRCW):
//     thick stores through provably non-injective index expressions,
//     concurrent reads under EREW, and constant-address conflicts between
//     parallel arms;
//   - flow hygiene: unreachable code, dead stores, zero or negative
//     thickness, barriers inside parallel arms on lockstep variants,
//     constant out-of-range indices and overlapping @ placements.
//
// The analyzer is deliberately conservative: it only reports collisions it
// can prove (known thickness and a classified index), so CRCW-legal
// programs that merely might collide stay quiet.
package analysis

import (
	"errors"

	"tcfpram/internal/codegen"
	"tcfpram/internal/diag"
	"tcfpram/internal/lang"
	"tcfpram/internal/mem"
	"tcfpram/internal/sema"
	"tcfpram/internal/variant"
)

// Options configures one analysis run.
type Options struct {
	// File is the name stamped into diagnostics.
	File string
	// Discipline selects the memory model checked. DisciplineOff and
	// DisciplineCRCW disable discipline checks (hygiene checks still run).
	Discipline mem.Discipline
	// Variant is the execution variant assumed for variant-sensitive checks
	// (barrier-in-parallel fires on lockstep variants only). The zero value
	// is the fully general single-instruction TCF variant.
	Variant variant.Kind
}

// Analyze runs all checks over a sema-checked program.
func Analyze(prog *lang.Program, info *sema.Info, opts Options) []diag.Diagnostic {
	a := &analyzer{
		opts:      opts,
		prog:      prog,
		info:      info,
		callThick: map[string]thickState{},
	}
	a.buildGlobalConst()
	a.checkPlacements()

	// main runs with thickness 1; everything else inherits the join of its
	// (analyzed) call sites, so callers go first.
	a.callThick["main"] = thickState{seen: true, t: thick{known: true, n: 1}}
	order, reached := a.callOrder()
	for _, name := range order {
		a.analyzeFunc(info.Funcs[name])
	}
	// Functions unreachable from main are still checked, with unknown
	// entry thickness; by running last their call sites cannot pollute the
	// thickness of functions the program actually uses.
	for _, fd := range prog.Funcs {
		if !reached[fd.Name] {
			a.analyzeFunc(info.Funcs[fd.Name])
		}
	}
	diag.Sort(a.diags)
	return a.diags
}

// AnalyzeSource parses, checks and analyzes source text. Front-end
// failures come back as a single diagnostic (check "parse" or "sema")
// carrying the error's position.
func AnalyzeSource(file, src string, opts Options) []diag.Diagnostic {
	opts.File = file
	prog, err := lang.Parse(src)
	if err != nil {
		return []diag.Diagnostic{frontendDiag(file, err, "parse")}
	}
	info, err := sema.Check(prog)
	if err != nil {
		return []diag.Diagnostic{frontendDiag(file, err, "sema")}
	}
	return Analyze(prog, info, opts)
}

// AnalyzeAndCompile parses and checks src exactly once, runs the analyzer
// over the checked program, and — when neither the front end nor the
// analyzer reports an error — compiles the same checked parse into a
// runnable program. This is the single-parse path the execution server's
// vet gate uses: AnalyzeSource followed by codegen.CompileSource would
// parse and type-check the program twice.
//
// A nil compiled result with a nil error means the program was rejected by
// the diagnostics; a non-nil error is a codegen failure after a clean vet.
func AnalyzeAndCompile(file, src string, opts Options) ([]diag.Diagnostic, *codegen.Compiled, error) {
	opts.File = file
	prog, err := lang.Parse(src)
	if err != nil {
		return []diag.Diagnostic{frontendDiag(file, err, "parse")}, nil, nil
	}
	info, err := sema.Check(prog)
	if err != nil {
		return []diag.Diagnostic{frontendDiag(file, err, "sema")}, nil, nil
	}
	ds := Analyze(prog, info, opts)
	if diag.HasErrors(ds) {
		return ds, nil, nil
	}
	c, cerr := codegen.CompileChecked(info)
	if cerr != nil {
		return ds, nil, cerr
	}
	c.Program.Name = file
	return ds, c, nil
}

func frontendDiag(file string, err error, check string) diag.Diagnostic {
	pos := lang.Pos{Line: 1, Col: 1}
	msg := err.Error()
	var le *lang.Error
	var se *sema.Error
	switch {
	case errors.As(err, &le):
		pos, msg = le.Pos, le.Msg
	case errors.As(err, &se):
		pos, msg = se.Pos, se.Msg
	}
	d := diag.New(pos, diag.Error, check, "%s", msg)
	d.File = file
	return d
}

type analyzer struct {
	opts  Options
	prog  *lang.Program
	info  *sema.Info
	diags []diag.Diagnostic

	// callThick joins the flow thickness observed at analyzed call sites of
	// each function, keyed by function name.
	callThick map[string]thickState
	// globalConst holds memory-scalar globals that are provably constant:
	// initialized once, never assigned, never targeted by &.
	globalConst map[*sema.Sym]int64
}

// report appends a diagnostic (stamping the file name) and returns a
// pointer to the stored copy so callers can attach address provenance.
func (a *analyzer) report(d diag.Diagnostic) *diag.Diagnostic {
	d.File = a.opts.File
	a.diags = append(a.diags, d)
	return &a.diags[len(a.diags)-1]
}

// buildGlobalConst finds memory-scalar globals whose value cannot change:
// their initializer word (or 0) participates in constant folding.
func (a *analyzer) buildGlobalConst() {
	a.globalConst = map[*sema.Sym]int64{}
	mutated := map[*sema.Sym]bool{}
	lang.Inspect(a.prog, func(n any) bool {
		switch n := n.(type) {
		case *lang.AssignStmt:
			if sym := a.info.Syms[n.LHS]; sym != nil {
				mutated[sym] = true
			}
		case *lang.AddrOf:
			if sym := a.info.Syms[n]; sym != nil {
				mutated[sym] = true
			}
		}
		return true
	})
	for _, g := range a.prog.Globals {
		sym := a.info.Syms[g]
		if sym == nil || sym.Space == lang.SpaceReg || sym.ArrayLen >= 0 || mutated[sym] {
			continue
		}
		v := int64(0)
		switch {
		case g.InitExpr != nil:
			fv, ok := foldPlain(g.InitExpr)
			if !ok {
				continue // sema requires const global inits; stay safe anyway
			}
			v = fv
		case len(g.InitList) > 0:
			v = g.InitList[0]
		}
		a.globalConst[sym] = v
	}
}

// callOrder returns the functions reachable from main in caller-before-
// callee order (sema rejects recursion, so the call graph is a DAG).
func (a *analyzer) callOrder() (order []string, reached map[string]bool) {
	reached = map[string]bool{}
	var visit func(name string)
	var post []string
	visit = func(name string) {
		if reached[name] {
			return
		}
		fi := a.info.Funcs[name]
		if fi == nil {
			return
		}
		reached[name] = true
		for _, callee := range fi.Calls {
			visit(callee)
		}
		post = append(post, name)
	}
	visit("main")
	// Post-order lists callees first; reverse for callers-first.
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	return order, reached
}

// funcAnalysis is the per-function analysis state.
type funcAnalysis struct {
	a     *analyzer
	fn    *lang.FuncDecl
	g     *cfg
	entry thick

	thickIn map[*cfgBlock]thickState

	// constEnv maps provably-constant scalar symbols (locals with a single
	// constant initialization, plus constant globals) to their value.
	constEnv map[*sema.Sym]int64
	// singleDef maps thick registers with exactly one definition to the
	// defining expression, for copy propagation in the index classifier.
	singleDef map[*sema.Sym]lang.Expr
}

func (a *analyzer) analyzeFunc(fi *sema.FuncInfo) {
	if fi == nil || fi.Decl == nil {
		return
	}
	fa := &funcAnalysis{
		a:     a,
		fn:    fi.Decl,
		entry: a.callThick[fi.Decl.Name].t,
	}
	fa.buildEnv()
	fa.g = buildCFG(fi.Decl)
	fa.thicknessDataflow()
	fa.checkBlocks()
	fa.liveness()
	fa.reportUnreachable()
	fa.checkParallel()
	fa.checkBounds()
}

// buildEnv computes the function's constant environment and the
// single-definition table used by the index classifier.
func (fa *funcAnalysis) buildEnv() {
	fa.constEnv = map[*sema.Sym]int64{}
	for sym, v := range fa.a.globalConst {
		fa.constEnv[sym] = v
	}
	fa.singleDef = map[*sema.Sym]lang.Expr{}
	if fa.fn.Body == nil {
		return
	}
	defCount := map[*sema.Sym]int{}
	lang.Inspect(fa.fn.Body, func(n any) bool {
		switch n := n.(type) {
		case *lang.VarDecl:
			if sym := fa.a.info.Syms[n]; sym != nil && sym.Space == lang.SpaceReg {
				defCount[sym]++
			}
		case *lang.AssignStmt:
			if id, ok := n.LHS.(*lang.Ident); ok {
				if sym := fa.a.info.Syms[id]; sym != nil && sym.Space == lang.SpaceReg {
					defCount[sym]++
				}
			}
		}
		return true
	})
	// Source order matters: a later constant local may fold through an
	// earlier one. Inspect visits in source order.
	lang.Inspect(fa.fn.Body, func(n any) bool {
		decl, ok := n.(*lang.VarDecl)
		if !ok || decl.InitExpr == nil {
			return true
		}
		sym := fa.a.info.Syms[decl]
		if sym == nil || sym.Space != lang.SpaceReg || defCount[sym] != 1 {
			return true
		}
		if sym.Thick {
			fa.singleDef[sym] = decl.InitExpr
		} else if v, folded := fa.fold(decl.InitExpr); folded {
			fa.constEnv[sym] = v
		}
		return true
	})
}

// checkBlocks replays every reachable block over its entry thickness,
// running the per-statement discipline and thickness-sanity checks and
// propagating flow thickness into call sites.
func (fa *funcAnalysis) checkBlocks() {
	for _, bl := range fa.g.blocks {
		if !bl.reachable {
			continue
		}
		t := fa.thickIn[bl].t
		for _, s := range bl.stmts {
			fa.checkStmt(s, t)
			t = transferThick(fa, s, t)
		}
		for _, e := range bl.exprs {
			for _, acc := range collectExprAccesses(fa, e) {
				fa.checkAccess(acc, t)
			}
			fa.propagateCalls(e, t)
		}
	}
}

func collectExprAccesses(fa *funcAnalysis, e lang.Expr) []access {
	var out []access
	fa.exprAccesses(e, func(a access) { out = append(out, a) })
	return out
}

func (fa *funcAnalysis) checkStmt(s lang.Stmt, t thick) {
	switch s := s.(type) {
	case *lang.ThickStmt:
		if v, ok := fa.fold(s.X); ok {
			if v == 0 {
				fa.a.report(diag.New(s.Pos, diag.Warning, "zero-thickness",
					"thickness set to the constant 0: no threads execute the region that follows"))
			} else if v < 0 {
				fa.a.report(diag.New(s.Pos, diag.Error, "negative-thickness",
					"thickness set to the constant %d; the machine rejects negative thickness", v))
			}
		}
	case *lang.NumaStmt:
		if v, ok := fa.fold(s.X); ok && v <= 0 {
			fa.a.report(diag.New(s.Pos, diag.Warning, "zero-thickness",
				"NUMA bunch length is the constant %d; it must be positive to make progress", v))
		}
	}
	for _, acc := range fa.stmtAccesses(s) {
		fa.checkAccess(acc, t)
	}
	fa.propagateCalls(s, t)
}

// propagateCalls joins the current flow thickness into the entry state of
// every user function called from n.
func (fa *funcAnalysis) propagateCalls(n any, t thick) {
	lang.Inspect(n, func(m any) bool {
		if c, ok := m.(*lang.Call); ok {
			if fa.a.info.Funcs[c.Name] != nil {
				fa.a.callThick[c.Name] = fa.a.callThick[c.Name].join(t)
			}
		}
		return true
	})
}
