package analysis

import (
	"tcfpram/internal/diag"
	"tcfpram/internal/lang"
)

// checkBounds flags constant indices that provably land outside their
// array, and constant non-zero indexing of scalar memory variables (which
// silently aliases a neighboring word).
func (fa *funcAnalysis) checkBounds() {
	if fa.fn.Body == nil {
		return
	}
	lang.Inspect(fa.fn.Body, func(n any) bool {
		switch n := n.(type) {
		case *lang.Index:
			fa.checkIndex(n.Pos, n, n.Idx, diag.Error)
		case *lang.AddrOf:
			if n.Idx != nil {
				// Address computation: out-of-range is still suspicious
				// (multiops write through it) but kept a warning.
				fa.checkIndex(n.Pos, n, n.Idx, diag.Warning)
			}
		}
		return true
	})
}

func (fa *funcAnalysis) checkIndex(pos lang.Pos, node any, idx lang.Expr, sev diag.Severity) {
	sym := fa.memSym(node)
	if sym == nil {
		return
	}
	v, ok := fa.fold(idx)
	if !ok {
		return
	}
	if sym.ArrayLen < 0 {
		if v != 0 {
			d := fa.a.report(diag.New(pos, diag.Warning, "index-out-of-range",
				"indexing scalar variable %s with constant %d accesses a neighboring word", sym.Name, v))
			d.Addr, d.AddrEnd = sym.Addr+v, sym.Addr+v+1
		}
		return
	}
	if v < 0 || v >= int64(sym.ArrayLen) {
		d := fa.a.report(diag.New(pos, sev, "index-out-of-range",
			"constant index %d is out of range for %s[%d]", v, sym.Name, sym.ArrayLen))
		d.Addr, d.AddrEnd = sym.Addr+v, sym.Addr+v+1
	}
}

// checkPlacements flags explicitly placed (@addr) globals whose word
// intervals overlap another global in the same memory space.
func (a *analyzer) checkPlacements() {
	type region struct {
		decl *lang.VarDecl
		lo   int64
		hi   int64
	}
	bySpace := map[lang.Space][]region{}
	for _, g := range a.prog.Globals {
		sym := a.info.Syms[g]
		if sym == nil || sym.Space == lang.SpaceReg {
			continue
		}
		n := int64(1)
		if sym.ArrayLen >= 0 {
			n = int64(sym.ArrayLen)
			if n < 1 {
				n = 1
			}
		}
		bySpace[sym.Space] = append(bySpace[sym.Space],
			region{decl: g, lo: sym.Addr, hi: sym.Addr + n})
	}
	for _, regs := range bySpace {
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				x, y := regs[i], regs[j]
				if x.lo < y.hi && y.lo < x.hi {
					// Report at the later declaration in source order.
					if y.decl.Pos.Line < x.decl.Pos.Line {
						x, y = y, x
					}
					d := a.report(diag.New(y.decl.Pos, diag.Warning, "address-overlap",
						"@ placement of %s (words %d..%d) overlaps %s (words %d..%d)",
						y.decl.Name, y.lo, y.hi-1, x.decl.Name, x.lo, x.hi-1))
					lo, hi := maxI64(x.lo, y.lo), minI64(x.hi, y.hi)
					d.Addr, d.AddrEnd = lo, hi
				}
			}
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
