package fault

import "math"

// Fingerprint returns a structural hash of the plan covering every field
// that influences a fault decision. Because a Plan is pure — all decisions
// are functions of these fields plus the query arguments — two plans with
// equal fingerprints make identical fault decisions at every step, which is
// exactly the property a machine snapshot needs to validate on restore: the
// resumed run replays the same faults the interrupted run would have seen.
// A nil plan fingerprints to 0; non-nil plans never do.
func (p *Plan) Fingerprint() uint64 {
	if p == nil {
		return 0
	}
	vs := []int64{
		p.Seed,
		int64(math.Float64bits(p.DropRate)),
		int64(math.Float64bits(p.CorruptRate)),
		int64(math.Float64bits(p.MemDropRate)),
		int64(p.RetryTimeout), int64(p.MaxRetries), int64(p.DetourPenalty),
		int64(len(p.Links)), int64(len(p.Routers)), int64(len(p.Routes)), int64(len(p.Modules)),
	}
	for _, l := range p.Links {
		vs = append(vs, int64(l.Node), int64(l.Dir), l.From, l.To)
	}
	for _, r := range p.Routers {
		vs = append(vs, int64(r.Node), r.From, r.To)
	}
	for _, r := range p.Routes {
		vs = append(vs, int64(r.Group), int64(r.Module), r.From, r.To)
	}
	for _, m := range p.Modules {
		vs = append(vs, int64(m.Module), m.Step)
	}
	h := mix(vs...)
	if h == 0 {
		h = 1 // reserve 0 for "no plan"
	}
	return h
}
