// Package fault defines deterministic, seeded fault plans shared by the
// interconnect simulator (internal/network), the memory system
// (internal/mem) and the step engine (internal/machine).
//
// A Plan is a pure description: every query (is this link down at cycle c?
// does this packet attempt drop on hop h?) is a pure function of the plan
// fields and the query arguments, computed with a splitmix-style hash of the
// seed. There is no mutable random state, so the same seed produces the same
// fault behavior regardless of execution order or goroutine interleaving —
// the determinism guarantee the chaos tests rely on.
//
// The plan distinguishes three fault classes:
//
//   - transient faults (packet drop/corruption, reference loss) recovered by
//     end-to-end retransmission with exponential backoff;
//   - interval faults (link down, router stall, group→module route down)
//     recovered by adaptive re-routing or detour latency;
//   - fail-stop faults (memory module death) recovered by step-granular
//     failover to a mirrored spare module.
//
// All recoveries preserve results; only cycle counts change. A plan is
// unrecoverable only when retries exhaust or no spare module remains, which
// the consuming layers surface as a structured error instead of a hang.
package fault

import (
	"fmt"
)

// Interval is a half-open activity window [From, To) in cycles (network
// layer) or steps (machine layer). To <= 0 means "never clears".
type Interval struct {
	From, To int64
}

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t int64) bool {
	return t >= iv.From && (iv.To <= 0 || t < iv.To)
}

// LinkFault takes one router output link of the packet network down for an
// interval of cycles. Dir uses the network package's direction encoding
// (0=east, 1=west, 2=north, 3=south).
type LinkFault struct {
	Node, Dir int
	Interval
}

// RouterFault stalls a whole router (nothing forwards) for an interval of
// cycles.
type RouterFault struct {
	Node int
	Interval
}

// RouteFault takes the analytic group→module route of the machine's latency
// model down for an interval of steps: references detour and pay
// DetourPenalty extra distance.
type RouteFault struct {
	Group, Module int
	Interval
}

// ModuleFault fail-stops a shared-memory module at the given machine step.
// The memory system fails over to a mirrored spare at the step boundary.
type ModuleFault struct {
	Module int
	Step   int64
}

// Plan is one deterministic fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed keys every probabilistic decision in the plan.
	Seed int64

	// DropRate is the probability a packet is lost on one link traversal;
	// CorruptRate the probability one delivery attempt arrives corrupted
	// (detected by the receiver's checksum and treated as a loss).
	DropRate    float64
	CorruptRate float64

	// MemDropRate is the probability one shared-memory reference of the
	// step engine is lost in the emulated interconnect and must be
	// retransmitted (stall cycles, never a value change).
	MemDropRate float64

	Links   []LinkFault
	Routers []RouterFault
	Routes  []RouteFault
	Modules []ModuleFault

	// RetryTimeout is the base end-to-end retransmission timeout in
	// cycles; attempt k waits RetryTimeout<<k (exponential backoff).
	// Defaults to 16.
	RetryTimeout int
	// MaxRetries bounds the retransmission attempts before the fault is
	// declared unrecoverable. Defaults to 12.
	MaxRetries int
	// DetourPenalty is the extra distance a re-routed machine-layer
	// reference pays. Defaults to 2.
	DetourPenalty int
}

// Timeout returns the effective base retransmission timeout.
func (p *Plan) Timeout() int64 {
	if p.RetryTimeout <= 0 {
		return 16
	}
	return int64(p.RetryTimeout)
}

// Retries returns the effective retry budget.
func (p *Plan) Retries() int {
	if p.MaxRetries <= 0 {
		return 12
	}
	return p.MaxRetries
}

// Detour returns the effective re-route distance penalty.
func (p *Plan) Detour() int {
	if p.DetourPenalty <= 0 {
		return 2
	}
	return p.DetourPenalty
}

// Validate rejects malformed plans.
func (p *Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"DropRate", p.DropRate}, {"CorruptRate", p.CorruptRate}, {"MemDropRate", p.MemDropRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", r.name, r.v)
		}
	}
	for _, l := range p.Links {
		if l.Dir < 0 || l.Dir > 3 {
			return fmt.Errorf("fault: link fault direction %d outside [0,3]", l.Dir)
		}
	}
	return nil
}

// LinkDown reports whether the output link (node, dir) is dead at cycle c.
func (p *Plan) LinkDown(node, dir int, c int64) bool {
	for _, l := range p.Links {
		if l.Node == node && l.Dir == dir && l.Contains(c) {
			return true
		}
	}
	return false
}

// RouterStalled reports whether the router at node forwards nothing at
// cycle c.
func (p *Plan) RouterStalled(node int, c int64) bool {
	for _, r := range p.Routers {
		if r.Node == node && r.Contains(c) {
			return true
		}
	}
	return false
}

// RouteDown reports whether the analytic group→module route is detouring at
// the given step.
func (p *Plan) RouteDown(group, module int, step int64) bool {
	for _, r := range p.Routes {
		if r.Group == group && r.Module == module && r.Contains(step) {
			return true
		}
	}
	return false
}

// ModuleFailuresAt returns the modules that fail-stop exactly at step.
func (p *Plan) ModuleFailuresAt(step int64) []int {
	var out []int
	for _, m := range p.Modules {
		if m.Step == step {
			out = append(out, m.Module)
		}
	}
	return out
}

// DropPacket reports whether the packet's given attempt is lost crossing its
// hop-th link.
func (p *Plan) DropPacket(id, attempt, hop int) bool {
	return p.chance(p.DropRate, 0x44524f50, int64(id), int64(attempt), int64(hop))
}

// CorruptAttempt reports whether the packet's given delivery attempt arrives
// corrupted (rejected by the receiver's checksum).
func (p *Plan) CorruptAttempt(id, attempt int) bool {
	return p.chance(p.CorruptRate, 0x434f5252, int64(id), int64(attempt), 0)
}

// MemRetries returns how many retransmissions the seq-th shared reference of
// the group in the step needs before succeeding, and whether it succeeds
// within the retry budget at all.
func (p *Plan) MemRetries(group, module int, step, seq int64) (retries int, ok bool) {
	if p.MemDropRate <= 0 {
		return 0, true
	}
	max := p.Retries()
	for a := 0; a < max; a++ {
		if !p.chance(p.MemDropRate, 0x4d454d44, int64(group)<<20^int64(module), step, seq<<4+int64(a)) {
			return a, true
		}
	}
	return max, false
}

// RetryPenalty returns the stall cycles of n back-to-back retransmissions
// under exponential backoff: sum of Timeout<<k for k < n.
func (p *Plan) RetryPenalty(n int) int64 {
	var total int64
	t := p.Timeout()
	for k := 0; k < n; k++ {
		total += t << k
	}
	return total
}

// Backoff returns the wait before retransmission attempt k (0-based).
func (p *Plan) Backoff(attempt int) int64 {
	if attempt > 20 {
		attempt = 20
	}
	return p.Timeout() << attempt
}

// chance makes one deterministic probabilistic decision keyed by (seed, tag,
// a, b, c).
func (p *Plan) chance(rate float64, tag, a, b, c int64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := mix(p.Seed, tag, a, b, c)
	return float64(h>>11)/(1<<53) < rate
}

// mix is a splitmix64-style avalanche over the inputs.
func mix(vs ...int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= uint64(v)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Random builds a recoverable plan for a fabric of the given node count and
// module count: a few transient link outages, a router stall, group→module
// detours, one module fail-stop (when a spare exists), and modest drop and
// corruption rates. All intervals clear, so retransmission always
// eventually succeeds. Deterministic in seed.
func Random(seed int64, nodes, modules int) *Plan {
	h := func(i int64) int64 { return int64(mix(seed, 0x52414e44, i, 0, 0) >> 1) }
	p := &Plan{
		Seed:        seed,
		DropRate:    0.001 + float64(h(1)%64)/8000,  // 0.1% .. 0.9%
		CorruptRate: float64(h(2)%32) / 8000,        // 0 .. 0.4%
		MemDropRate: 0.005 + float64(h(3)%128)/4000, // 0.5% .. 3.7%
	}
	if nodes > 1 {
		nLinks := 1 + int(h(4)%3)
		for i := 0; i < nLinks; i++ {
			start := 2 + h(10+int64(i))%64
			p.Links = append(p.Links, LinkFault{
				Node:     int(h(20+int64(i)) % int64(nodes)),
				Dir:      int(h(30+int64(i)) % 4),
				Interval: Interval{From: start, To: start + 32 + h(40+int64(i))%256},
			})
		}
		start := 4 + h(50)%32
		p.Routers = append(p.Routers, RouterFault{
			Node:     int(h(51) % int64(nodes)),
			Interval: Interval{From: start, To: start + 4 + h(52)%24},
		})
	}
	if modules > 0 {
		nRoutes := 1 + int(h(5)%2)
		for i := 0; i < nRoutes; i++ {
			start := h(60+int64(i)) % 8
			p.Routes = append(p.Routes, RouteFault{
				Group:    int(h(70+int64(i)) % int64(modules)),
				Module:   int(h(80+int64(i)) % int64(modules)),
				Interval: Interval{From: start, To: start + 8 + h(90+int64(i))%64},
			})
		}
	}
	if modules > 1 {
		p.Modules = append(p.Modules, ModuleFault{
			Module: int(h(6) % int64(modules)),
			Step:   1 + h(7)%32,
		})
	}
	return p
}
