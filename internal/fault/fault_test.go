package fault

import "testing"

func TestIntervalContains(t *testing.T) {
	iv := Interval{From: 10, To: 20}
	for _, c := range []struct {
		t    int64
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if got := iv.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	open := Interval{From: 5, To: 0}
	if !open.Contains(1 << 40) {
		t.Error("open interval must never clear")
	}
	if open.Contains(4) {
		t.Error("open interval active before From")
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	p := &Plan{}
	for i := 0; i < 1000; i++ {
		if p.DropPacket(i, 0, i%7) || p.CorruptAttempt(i, 0) {
			t.Fatal("zero plan dropped or corrupted a packet")
		}
		if r, ok := p.MemRetries(i%4, i%3, int64(i), int64(i)); r != 0 || !ok {
			t.Fatal("zero plan retried a memory reference")
		}
	}
	if p.LinkDown(0, 0, 5) || p.RouterStalled(0, 5) || p.RouteDown(0, 0, 5) {
		t.Fatal("zero plan has interval faults")
	}
	if len(p.ModuleFailuresAt(0)) != 0 {
		t.Fatal("zero plan fails modules")
	}
}

func TestDecisionsDeterministicInSeed(t *testing.T) {
	a := &Plan{Seed: 42, DropRate: 0.3, CorruptRate: 0.2, MemDropRate: 0.25}
	b := &Plan{Seed: 42, DropRate: 0.3, CorruptRate: 0.2, MemDropRate: 0.25}
	c := &Plan{Seed: 43, DropRate: 0.3, CorruptRate: 0.2, MemDropRate: 0.25}
	same, diff := 0, 0
	for i := 0; i < 2000; i++ {
		if a.DropPacket(i, 1, 2) != b.DropPacket(i, 1, 2) {
			t.Fatal("same seed must give same decisions")
		}
		ra, oka := a.MemRetries(1, 2, 3, int64(i))
		rb, okb := b.MemRetries(1, 2, 3, int64(i))
		if ra != rb || oka != okb {
			t.Fatal("same seed must give same retry counts")
		}
		if a.DropPacket(i, 1, 2) == c.DropPacket(i, 1, 2) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds never disagreed; hash is not mixing")
	}
}

func TestDropRateRoughlyCalibrated(t *testing.T) {
	p := &Plan{Seed: 7, DropRate: 0.25}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.DropPacket(i, 0, 0) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.20 || got > 0.30 {
		t.Fatalf("empirical drop rate %.3f for configured 0.25", got)
	}
}

func TestMemRetriesExhaustion(t *testing.T) {
	p := &Plan{Seed: 1, MemDropRate: 1, MaxRetries: 5}
	r, ok := p.MemRetries(0, 0, 0, 0)
	if ok || r != 5 {
		t.Fatalf("rate-1 plan should exhaust retries: got r=%d ok=%v", r, ok)
	}
}

func TestRetryPenaltyBackoff(t *testing.T) {
	p := &Plan{RetryTimeout: 8}
	if got := p.RetryPenalty(3); got != 8+16+32 {
		t.Fatalf("RetryPenalty(3) = %d, want 56", got)
	}
	if got := p.Backoff(2); got != 32 {
		t.Fatalf("Backoff(2) = %d, want 32", got)
	}
	if p.RetryPenalty(0) != 0 {
		t.Fatal("no retries, no penalty")
	}
}

func TestDefaults(t *testing.T) {
	p := &Plan{}
	if p.Timeout() != 16 || p.Retries() != 12 || p.Detour() != 2 {
		t.Fatalf("defaults: timeout=%d retries=%d detour=%d", p.Timeout(), p.Retries(), p.Detour())
	}
}

func TestValidate(t *testing.T) {
	if err := (&Plan{DropRate: 1.5}).Validate(); err == nil {
		t.Error("DropRate 1.5 accepted")
	}
	if err := (&Plan{Links: []LinkFault{{Dir: 9}}}).Validate(); err == nil {
		t.Error("direction 9 accepted")
	}
	if err := (&Plan{DropRate: 0.5}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestRandomPlansRecoverableAndSeeded(t *testing.T) {
	a, b := Random(9, 16, 4), Random(9, 16, 4)
	if a.DropRate != b.DropRate || len(a.Links) != len(b.Links) || a.MemDropRate != b.MemDropRate {
		t.Fatal("Random not deterministic in seed")
	}
	for seed := int64(0); seed < 32; seed++ {
		p := Random(seed, 16, 4)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.DropRate <= 0 || p.DropRate > 0.01 {
			t.Fatalf("seed %d: drop rate %v outside transient band", seed, p.DropRate)
		}
		for _, l := range p.Links {
			if l.To <= 0 {
				t.Fatalf("seed %d: permanent link fault; plan not recoverable", seed)
			}
		}
		for _, r := range p.Routers {
			if r.To <= 0 {
				t.Fatalf("seed %d: permanent router stall", seed)
			}
		}
	}
}
