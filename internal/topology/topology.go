// Package topology provides the distance metric of the (extended) PRAM-NUMA
// model: the relative distance between a processor group and a target memory
// block, which the distance-aware interconnection network turns into routing
// latency (latency proportional to distance, Section 2.1 / 3.1).
package topology

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadShape reports an invalid topology shape (nonpositive node count or
// distance, hypercube dimension out of range). Constructors return it
// (wrapped) instead of panicking: topologies are built from untrusted
// request parameters on the serve path, so a bad shape must fail the one
// request, not the process.
var ErrBadShape = errors.New("topology: invalid shape")

// Topology defines a distance metric over n processor groups, where group i
// is co-located with memory block i.
type Topology interface {
	// Name identifies the topology family and size.
	Name() string
	// Size returns the number of groups/blocks.
	Size() int
	// Distance returns the hop distance from group g to memory block m.
	// Distance(g, g) == 0.
	Distance(g, m int) int
	// Diameter returns the maximum distance between any pair.
	Diameter() int
}

// Must unwraps a constructor result, panicking on error. For trusted
// call sites (tests, compiled-in experiment sweeps) where the shape is a
// constant; request-path code must handle the error instead.
func Must[T Topology](t T, err error) T {
	if err != nil {
		panic(err)
	}
	return t
}

func checkSize(n int) error {
	if n <= 0 {
		return fmt.Errorf("size %d must be positive: %w", n, ErrBadShape)
	}
	return nil
}

func checkPair(t Topology, g, m int) {
	if g < 0 || g >= t.Size() || m < 0 || m >= t.Size() {
		panic(fmt.Sprintf("topology: pair (%d,%d) out of range for size %d", g, m, t.Size()))
	}
}

// Ring is a bidirectional ring of n nodes.
type Ring struct{ n int }

// NewRing returns a ring topology of n nodes.
func NewRing(n int) (Ring, error) {
	if err := checkSize(n); err != nil {
		return Ring{}, err
	}
	return Ring{n}, nil
}

func (r Ring) Name() string { return fmt.Sprintf("ring(%d)", r.n) }
func (r Ring) Size() int    { return r.n }

func (r Ring) Distance(g, m int) int {
	checkPair(r, g, m)
	d := g - m
	if d < 0 {
		d = -d
	}
	if alt := r.n - d; alt < d {
		d = alt
	}
	return d
}

func (r Ring) Diameter() int { return r.n / 2 }

// Mesh2D is a w×h mesh without wraparound; node i sits at (i mod w, i / w).
type Mesh2D struct{ w, h int }

// NewMesh2D returns a w×h mesh.
func NewMesh2D(w, h int) (Mesh2D, error) {
	if err := checkSize(w); err != nil {
		return Mesh2D{}, err
	}
	if err := checkSize(h); err != nil {
		return Mesh2D{}, err
	}
	return Mesh2D{w, h}, nil
}

// NewSquareMesh returns the smallest square-ish mesh with at least n nodes
// that has exactly n nodes when n is a perfect square; otherwise it returns
// a 1×n mesh degenerating to a line. Prefer explicit dimensions.
func NewSquareMesh(n int) (Mesh2D, error) {
	if err := checkSize(n); err != nil {
		return Mesh2D{}, err
	}
	s := int(math.Sqrt(float64(n)))
	if s*s == n {
		return Mesh2D{s, s}, nil
	}
	return Mesh2D{n, 1}, nil
}

func (m Mesh2D) Name() string     { return fmt.Sprintf("mesh(%dx%d)", m.w, m.h) }
func (m Mesh2D) Size() int        { return m.w * m.h }
func (m Mesh2D) Dims() (w, h int) { return m.w, m.h }

// Coord returns the (x, y) position of node i.
func (m Mesh2D) Coord(i int) (x, y int) { return i % m.w, i / m.w }

func (m Mesh2D) Distance(g, t int) int {
	checkPair(m, g, t)
	gx, gy := m.Coord(g)
	tx, ty := m.Coord(t)
	return abs(gx-tx) + abs(gy-ty)
}

func (m Mesh2D) Diameter() int { return (m.w - 1) + (m.h - 1) }

// Torus2D is a w×h mesh with wraparound links in both dimensions.
type Torus2D struct{ w, h int }

// NewTorus2D returns a w×h torus.
func NewTorus2D(w, h int) (Torus2D, error) {
	if err := checkSize(w); err != nil {
		return Torus2D{}, err
	}
	if err := checkSize(h); err != nil {
		return Torus2D{}, err
	}
	return Torus2D{w, h}, nil
}

func (t Torus2D) Name() string     { return fmt.Sprintf("torus(%dx%d)", t.w, t.h) }
func (t Torus2D) Size() int        { return t.w * t.h }
func (t Torus2D) Dims() (w, h int) { return t.w, t.h }

// Coord returns the (x, y) position of node i.
func (t Torus2D) Coord(i int) (x, y int) { return i % t.w, i / t.w }

func (t Torus2D) Distance(g, m int) int {
	checkPair(t, g, m)
	gx, gy := t.Coord(g)
	mx, my := t.Coord(m)
	dx := abs(gx - mx)
	if alt := t.w - dx; alt < dx {
		dx = alt
	}
	dy := abs(gy - my)
	if alt := t.h - dy; alt < dy {
		dy = alt
	}
	return dx + dy
}

func (t Torus2D) Diameter() int { return t.w/2 + t.h/2 }

// Hypercube is a binary d-cube of 2^d nodes; distance is Hamming distance.
type Hypercube struct{ d int }

// NewHypercube returns a hypercube of dimension d (2^d nodes).
func NewHypercube(d int) (Hypercube, error) {
	if d < 0 || d > 30 {
		return Hypercube{}, fmt.Errorf("hypercube dimension %d outside [0,30]: %w", d, ErrBadShape)
	}
	return Hypercube{d}, nil
}

func (h Hypercube) Name() string { return fmt.Sprintf("hypercube(%d)", h.d) }
func (h Hypercube) Size() int    { return 1 << h.d }

func (h Hypercube) Distance(g, m int) int {
	checkPair(h, g, m)
	x := uint32(g ^ m)
	c := 0
	for x != 0 {
		c += int(x & 1)
		x >>= 1
	}
	return c
}

func (h Hypercube) Diameter() int { return h.d }

// Uniform treats every remote block as equidistant at distance d (a crossbar
// or an idealized high-bandwidth network); local access is distance 0.
type Uniform struct {
	n int
	d int
}

// NewUniform returns a uniform-distance topology of n nodes at distance d.
func NewUniform(n, d int) (Uniform, error) {
	if err := checkSize(n); err != nil {
		return Uniform{}, err
	}
	if d < 0 {
		return Uniform{}, fmt.Errorf("uniform distance %d must be nonnegative: %w", d, ErrBadShape)
	}
	return Uniform{n, d}, nil
}

func (u Uniform) Name() string { return fmt.Sprintf("uniform(%d,d=%d)", u.n, u.d) }
func (u Uniform) Size() int    { return u.n }

func (u Uniform) Distance(g, m int) int {
	checkPair(u, g, m)
	if g == m {
		return 0
	}
	return u.d
}

func (u Uniform) Diameter() int {
	if u.n == 1 {
		return 0
	}
	return u.d
}

// AverageDistance returns the mean pairwise distance of t, a useful summary
// for calibrating latency models.
func AverageDistance(t Topology) float64 {
	n := t.Size()
	if n == 1 {
		return 0
	}
	sum := 0
	for g := 0; g < n; g++ {
		for m := 0; m < n; m++ {
			sum += t.Distance(g, m)
		}
	}
	return float64(sum) / float64(n*n)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
