package topology

import (
	"errors"
	"testing"
	"testing/quick"
)

func all() []Topology {
	return []Topology{
		Must(NewRing(1)), Must(NewRing(2)), Must(NewRing(7)), Must(NewRing(8)),
		Must(NewMesh2D(1, 1)), Must(NewMesh2D(4, 4)), Must(NewMesh2D(3, 5)),
		Must(NewTorus2D(4, 4)), Must(NewTorus2D(5, 3)),
		Must(NewHypercube(0)), Must(NewHypercube(3)), Must(NewHypercube(5)),
		Must(NewUniform(1, 4)), Must(NewUniform(8, 4)), Must(NewUniform(8, 0)),
	}
}

// Metric axioms: identity, symmetry, non-negativity, bounded by diameter.
func TestMetricAxioms(t *testing.T) {
	for _, topo := range all() {
		n := topo.Size()
		maxSeen := 0
		for g := 0; g < n; g++ {
			if d := topo.Distance(g, g); d != 0 {
				t.Errorf("%s: Distance(%d,%d) = %d, want 0", topo.Name(), g, g, d)
			}
			for m := 0; m < n; m++ {
				d := topo.Distance(g, m)
				if d < 0 {
					t.Errorf("%s: negative distance %d", topo.Name(), d)
				}
				if d != topo.Distance(m, g) {
					t.Errorf("%s: asymmetric distance (%d,%d)", topo.Name(), g, m)
				}
				if d > topo.Diameter() {
					t.Errorf("%s: distance %d exceeds diameter %d", topo.Name(), d, topo.Diameter())
				}
				if d > maxSeen {
					maxSeen = d
				}
			}
		}
		if n > 1 && maxSeen != topo.Diameter() {
			t.Errorf("%s: max distance %d != diameter %d", topo.Name(), maxSeen, topo.Diameter())
		}
	}
}

// Triangle inequality (all implemented metrics are graph distances).
func TestTriangleInequality(t *testing.T) {
	for _, topo := range all() {
		n := topo.Size()
		if n > 16 {
			continue
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					if topo.Distance(a, c) > topo.Distance(a, b)+topo.Distance(b, c) {
						t.Fatalf("%s: triangle violated (%d,%d,%d)", topo.Name(), a, b, c)
					}
				}
			}
		}
	}
}

func TestKnownDistances(t *testing.T) {
	r := Must(NewRing(8))
	if r.Distance(0, 4) != 4 || r.Distance(0, 7) != 1 || r.Distance(2, 6) != 4 {
		t.Error("ring distances wrong")
	}
	m := Must(NewMesh2D(4, 4))
	if m.Distance(0, 15) != 6 || m.Distance(0, 3) != 3 || m.Distance(5, 10) != 2 {
		t.Error("mesh distances wrong")
	}
	to := Must(NewTorus2D(4, 4))
	if to.Distance(0, 3) != 1 || to.Distance(0, 15) != 2 {
		t.Error("torus distances wrong")
	}
	h := Must(NewHypercube(3))
	if h.Distance(0, 7) != 3 || h.Distance(1, 2) != 2 || h.Distance(5, 5) != 0 {
		t.Error("hypercube distances wrong")
	}
	u := Must(NewUniform(8, 4))
	if u.Distance(0, 1) != 4 || u.Distance(3, 3) != 0 {
		t.Error("uniform distances wrong")
	}
}

func TestSquareMesh(t *testing.T) {
	m := Must(NewSquareMesh(16))
	if w, h := m.Dims(); w != 4 || h != 4 {
		t.Fatalf("square mesh dims = %dx%d", w, h)
	}
	m = Must(NewSquareMesh(6))
	if m.Size() != 6 {
		t.Fatalf("non-square fallback size = %d", m.Size())
	}
}

func TestTorusWraparoundNeverFartherThanMesh(t *testing.T) {
	prop := func(a, b uint8) bool {
		mesh := Must(NewMesh2D(6, 6))
		tor := Must(NewTorus2D(6, 6))
		g, m := int(a)%36, int(b)%36
		return tor.Distance(g, m) <= mesh.Distance(g, m)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAverageDistance(t *testing.T) {
	if got := AverageDistance(Must(NewUniform(1, 5))); got != 0 {
		t.Fatalf("avg of singleton = %f", got)
	}
	got := AverageDistance(Must(NewUniform(4, 6)))
	want := 6.0 * 12 / 16 // 12 off-diagonal pairs of 16
	if got != want {
		t.Fatalf("avg uniform = %f, want %f", got, want)
	}
	if AverageDistance(Must(NewMesh2D(4, 4))) <= 0 {
		t.Fatal("mesh average distance must be positive")
	}
}

func TestConstructorErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"ring(0)", func() error { _, err := NewRing(0); return err }()},
		{"mesh(0,3)", func() error { _, err := NewMesh2D(0, 3); return err }()},
		{"torus(3,0)", func() error { _, err := NewTorus2D(3, 0); return err }()},
		{"hypercube(-1)", func() error { _, err := NewHypercube(-1); return err }()},
		{"hypercube(31)", func() error { _, err := NewHypercube(31); return err }()},
		{"uniform(0,1)", func() error { _, err := NewUniform(0, 1); return err }()},
		{"uniform(4,-1)", func() error { _, err := NewUniform(4, -1); return err }()},
		{"squaremesh(0)", func() error { _, err := NewSquareMesh(0); return err }()},
	} {
		if !errors.Is(tc.err, ErrBadShape) {
			t.Errorf("%s: err = %v, want ErrBadShape", tc.name, tc.err)
		}
	}
}

// Distance on out-of-range pairs still panics: pair indices come from the
// machine's own loops, never from requests, so a violation is a library bug.
func TestDistancePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Must(NewRing(4)).Distance(0, 9)
}

func TestNames(t *testing.T) {
	for _, topo := range all() {
		if topo.Name() == "" {
			t.Error("empty topology name")
		}
	}
}
