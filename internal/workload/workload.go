// Package workload generates the paper's Section 4 kernels as machine
// programs, in the programming style each variant requires: TCF thickness
// statements for the extended model, thread loops/guards for the fixed
// thread set of PRAM-NUMA/ESM machines, fork rounds for the XMT-style
// multi-instruction model, and predicated strip-mining for the vector/SIMD
// reduction. Every workload carries a checker that verifies the machine's
// final memory/output state against a sequential reference.
package workload

import (
	"fmt"

	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
)

// Standard data-segment base addresses. The spacing bounds workload sizes
// to MaxSize elements per array (the default machine has 64Ki shared words).
const (
	BaseA   = 10000
	BaseB   = 24000
	BaseC   = 38000
	BaseAux = 500
	MaxSize = 8192
)

func checkSize(size int) {
	if size < 1 || size > MaxSize {
		panic(fmt.Sprintf("workload: size %d out of range [1,%d]", size, MaxSize))
	}
}

// Workload couples a program with its verification.
type Workload struct {
	Name    string
	Program *isa.Program
	// Check verifies the post-run machine state.
	Check func(m *machine.Machine) error
}

// inputs deterministically generates the two input arrays.
func inputs(size int) (a, b []int64) {
	a = make([]int64, size)
	b = make([]int64, size)
	for i := 0; i < size; i++ {
		a[i] = int64(i*7%101 + 1)
		b[i] = int64(i*13%89 + 2)
	}
	return a, b
}

func checkRange(m *machine.Machine, base int64, want []int64, what string) error {
	got := m.Shared().Snapshot(base, len(want))
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: word %d = %d, want %d", what, i, got[i], want[i])
		}
	}
	return nil
}

// Style names the programming convention used to express a kernel.
type Style int

const (
	// StyleTCF uses the thickness statement of the extended model.
	StyleTCF Style = iota
	// StyleThread uses the fixed-thread loop/guard convention of
	// PRAM-NUMA/ESM machines (thread id = flow id).
	StyleThread
	// StyleSIMD uses predicated strip-mining on a fixed-width vector flow.
	StyleSIMD
	// StyleFork uses XMT-style fork/join rounds (SPLIT/JOIN).
	StyleFork
)

func (s Style) String() string {
	switch s {
	case StyleTCF:
		return "tcf"
	case StyleThread:
		return "thread"
	case StyleSIMD:
		return "simd"
	case StyleFork:
		return "fork"
	}
	return fmt.Sprintf("Style(%d)", int(s))
}

// VectorAdd builds c = a + b over size elements (Section 4's opening
// example). nthreads is the machine's thread count for StyleThread; width is
// the vector width for StyleSIMD.
func VectorAdd(style Style, size, nthreads, width int) Workload {
	checkSize(size)
	a, b := inputs(size)
	want := make([]int64, size)
	for i := range want {
		want[i] = a[i] + b[i]
	}
	bld := isa.NewBuilder(fmt.Sprintf("vecadd-%s-%d", style, size))
	bld.Data(BaseA, a...).Data(BaseB, b...)
	bld.Label("main")
	switch style {
	case StyleTCF:
		// #size; c. = a. + b.
		bld.Ldi(isa.S(0), int64(size)).SetThick(isa.S(0))
		bld.Id(isa.TID, isa.V(0))
		bld.Ld(isa.V(1), isa.V(0), BaseA)
		bld.Ld(isa.V(2), isa.V(0), BaseB)
		bld.ALU(isa.ADD, isa.V(3), isa.V(1), isa.V(2))
		bld.St(isa.V(0), BaseC, isa.V(3))
		bld.Halt()
	case StyleThread:
		// for (i = thread_id; i < size; i += number_of_threads) …
		bld.Id(isa.FID, isa.S(0))
		bld.Mov(isa.S(2), isa.S(0))
		bld.Label("loop")
		bld.ALUI(isa.SLT, isa.S(3), isa.S(2), int64(size))
		bld.Branch(isa.BEQZ, isa.S(3), "done")
		bld.Ld(isa.S(4), isa.S(2), BaseA)
		bld.Ld(isa.S(5), isa.S(2), BaseB)
		bld.ALU(isa.ADD, isa.S(6), isa.S(4), isa.S(5))
		bld.St(isa.S(2), BaseC, isa.S(6))
		bld.ALUI(isa.ADD, isa.S(2), isa.S(2), int64(nthreads))
		bld.Jmp("loop")
		bld.Label("done").Halt()
	case StyleSIMD:
		// Strip-mined predicated loop over chunks of the fixed width.
		bld.Ldi(isa.S(0), 0) // base offset
		bld.Label("loop")
		bld.ALUI(isa.SLT, isa.S(2), isa.S(0), int64(size))
		bld.Branch(isa.BEQZ, isa.S(2), "done")
		bld.Id(isa.TID, isa.V(0))
		bld.ALU(isa.ADD, isa.V(0), isa.V(0), isa.S(0))
		bld.ALUI(isa.SLT, isa.V(4), isa.V(0), int64(size))
		bld.Ld(isa.V(1), isa.V(0), BaseA)
		bld.Ld(isa.V(2), isa.V(0), BaseB)
		bld.ALU(isa.ADD, isa.V(3), isa.V(1), isa.V(2))
		bld.Ld(isa.V(5), isa.V(0), BaseC)
		bld.Sel(isa.V(3), isa.V(4), isa.V(3), isa.V(5))
		bld.St(isa.V(0), BaseC, isa.V(3))
		bld.ALUI(isa.ADD, isa.S(0), isa.S(0), int64(width))
		bld.Jmp("loop")
		bld.Label("done").Halt()
	case StyleFork:
		// fork (_thread_id = 0; _thread_id < size) c[..] = a[..]+b[..]
		bld.Split(isa.ArmImm(int64(size), "body"))
		bld.Halt()
		bld.Label("body")
		bld.Id(isa.TID, isa.V(0))
		bld.Ld(isa.V(1), isa.V(0), BaseA)
		bld.Ld(isa.V(2), isa.V(0), BaseB)
		bld.ALU(isa.ADD, isa.V(3), isa.V(1), isa.V(2))
		bld.St(isa.V(0), BaseC, isa.V(3))
		bld.Op(isa.JOIN)
	}
	p := bld.MustBuild()
	return Workload{
		Name:    p.Name,
		Program: p,
		Check: func(m *machine.Machine) error {
			return checkRange(m, BaseC, want, "vecadd")
		},
	}
}

// lowTLPExpected evaluates the sequential chain x -> 3x+1 n times from 1.
func lowTLPExpected(n int) int64 {
	x := int64(1)
	for i := 0; i < n; i++ {
		x = x*3 + 1
	}
	return x
}

// LowTLP builds a purely sequential dependent chain of length n. With
// numaBunch > 1 the flow declares NUMA execution (#1/T), recovering the
// utilization that PRAM-mode thickness-1 execution wastes (Figure 2 /
// Section 4's low-parallelism case). numaBunch = 0 stays in PRAM mode.
func LowTLP(n, numaBunch int) Workload {
	bld := isa.NewBuilder(fmt.Sprintf("lowtlp-%d-b%d", n, numaBunch))
	bld.Label("main")
	if numaBunch > 1 {
		bld.NumaImm(int64(numaBunch))
	}
	bld.Ldi(isa.S(0), 1)
	bld.Ldi(isa.S(1), 0)
	bld.Label("loop")
	bld.ALUI(isa.MUL, isa.S(0), isa.S(0), 3)
	bld.ALUI(isa.ADD, isa.S(0), isa.S(0), 1)
	bld.ALUI(isa.ADD, isa.S(1), isa.S(1), 1)
	bld.ALUI(isa.SLT, isa.S(2), isa.S(1), int64(n))
	bld.Branch(isa.BNEZ, isa.S(2), "loop")
	if numaBunch > 1 {
		bld.Op(isa.PRAM)
	}
	want := lowTLPExpected(n)
	bld.Ldi(isa.S(3), 9000). // result address
					St(isa.S(3), 0, isa.S(0))
	bld.Halt()
	return Workload{
		Name:    fmt.Sprintf("lowtlp-%d-b%d", n, numaBunch),
		Program: bld.MustBuild(),
		Check: func(m *machine.Machine) error {
			if got := m.Shared().Peek(9000); got != want {
				return fmt.Errorf("lowtlp: got %d, want %d", got, want)
			}
			return nil
		},
	}
}

// ConditionalHalves builds the two-way conditional of Section 4: the lower
// half of c receives a+b, the upper half is cleared to zero.
func ConditionalHalves(style Style, size int) Workload {
	checkSize(size)
	a, b := inputs(size)
	half := size / 2
	want := make([]int64, size)
	for i := 0; i < half; i++ {
		want[i] = a[i] + b[i]
	}
	bld := isa.NewBuilder(fmt.Sprintf("cond-%s-%d", style, size))
	bld.Data(BaseA, a...).Data(BaseB, b...)
	// Poison c so clearing is observable.
	poison := make([]int64, size)
	for i := range poison {
		poison[i] = -1
	}
	bld.Data(BaseC, poison...)
	bld.Label("main")
	switch style {
	case StyleTCF:
		// parallel { #size/2: c.=a.+b.;  #size/2: c.[#+id]=0; }
		bld.Split(isa.ArmImm(int64(half), "lower"), isa.ArmImm(int64(size-half), "upper"))
		bld.Halt()
		bld.Label("lower")
		bld.Id(isa.TID, isa.V(0))
		bld.Ld(isa.V(1), isa.V(0), BaseA)
		bld.Ld(isa.V(2), isa.V(0), BaseB)
		bld.ALU(isa.ADD, isa.V(3), isa.V(1), isa.V(2))
		bld.St(isa.V(0), BaseC, isa.V(3))
		bld.Op(isa.JOIN)
		bld.Label("upper")
		bld.Id(isa.TID, isa.V(0))
		bld.ALUI(isa.ADD, isa.V(0), isa.V(0), int64(half))
		bld.Ldi(isa.V(1), 0)
		bld.St(isa.V(0), BaseC, isa.V(1))
		bld.Op(isa.JOIN)
	case StyleThread:
		// if (thread_id < size/2) …; if (thread_id >= size/2) … clear.
		bld.Id(isa.FID, isa.S(0))
		bld.ALUI(isa.SGE, isa.S(1), isa.S(0), int64(size))
		bld.Branch(isa.BNEZ, isa.S(1), "done")
		bld.ALUI(isa.SLT, isa.S(1), isa.S(0), int64(half))
		bld.Branch(isa.BEQZ, isa.S(1), "upper")
		bld.Ld(isa.S(4), isa.S(0), BaseA)
		bld.Ld(isa.S(5), isa.S(0), BaseB)
		bld.ALU(isa.ADD, isa.S(6), isa.S(4), isa.S(5))
		bld.St(isa.S(0), BaseC, isa.S(6))
		bld.Jmp("done")
		bld.Label("upper")
		bld.Ldi(isa.S(6), 0)
		bld.St(isa.S(0), BaseC, isa.S(6))
		bld.Label("done").Halt()
	case StyleSIMD:
		// Sequential predicated execution of both branches (no control
		// parallelism in the vector model).
		bld.Id(isa.TID, isa.V(0))
		bld.ALUI(isa.SLT, isa.V(4), isa.V(0), int64(half)) // lower mask
		bld.Ld(isa.V(1), isa.V(0), BaseA)
		bld.Ld(isa.V(2), isa.V(0), BaseB)
		bld.ALU(isa.ADD, isa.V(3), isa.V(1), isa.V(2))
		bld.Ld(isa.V(5), isa.V(0), BaseC)
		bld.Sel(isa.V(3), isa.V(4), isa.V(3), isa.V(5))
		bld.St(isa.V(0), BaseC, isa.V(3))
		bld.ALUI(isa.SGE, isa.V(4), isa.V(0), int64(half))
		bld.ALUI(isa.SLT, isa.V(6), isa.V(0), int64(size))
		bld.ALU(isa.AND, isa.V(4), isa.V(4), isa.V(6)) // upper mask
		bld.Ldi(isa.V(7), 0)
		bld.Ld(isa.V(5), isa.V(0), BaseC)
		bld.Sel(isa.V(7), isa.V(4), isa.V(7), isa.V(5))
		bld.St(isa.V(0), BaseC, isa.V(7))
		bld.Halt()
	case StyleFork:
		bld.Split(isa.ArmImm(int64(half), "lower"), isa.ArmImm(int64(size-half), "upper"))
		bld.Halt()
		bld.Label("lower")
		bld.Id(isa.TID, isa.V(0))
		bld.Ld(isa.V(1), isa.V(0), BaseA)
		bld.Ld(isa.V(2), isa.V(0), BaseB)
		bld.ALU(isa.ADD, isa.V(3), isa.V(1), isa.V(2))
		bld.St(isa.V(0), BaseC, isa.V(3))
		bld.Op(isa.JOIN)
		bld.Label("upper")
		bld.Id(isa.TID, isa.V(0))
		bld.ALUI(isa.ADD, isa.V(0), isa.V(0), int64(half))
		bld.Ldi(isa.V(1), 0)
		bld.St(isa.V(0), BaseC, isa.V(1))
		bld.Op(isa.JOIN)
	}
	return Workload{
		Name:    fmt.Sprintf("cond-%s-%d", style, size),
		Program: bld.MustBuild(),
		Check: func(m *machine.Machine) error {
			return checkRange(m, BaseC, want, "cond")
		},
	}
}

// PrefixSum builds the ordered multiprefix of Section 4:
// prefix(source, MPADD, &sum, source). The exclusive prefix lands in c, the
// total in word BaseAux.
func PrefixSum(style Style, size, nthreads int) Workload {
	checkSize(size)
	a, _ := inputs(size)
	want := make([]int64, size)
	acc := int64(0)
	for i := range a {
		want[i] = acc
		acc += a[i]
	}
	total := acc
	bld := isa.NewBuilder(fmt.Sprintf("prefix-%s-%d", style, size))
	bld.Data(BaseA, a...)
	bld.Label("main")
	switch style {
	case StyleTCF:
		bld.Ldi(isa.S(0), int64(size)).SetThick(isa.S(0))
		bld.Id(isa.TID, isa.V(0))
		bld.Ld(isa.V(1), isa.V(0), BaseA)
		bld.Prefix(isa.MPADD, isa.V(2), isa.RegNone, BaseAux, isa.V(1))
		bld.St(isa.V(0), BaseC, isa.V(2))
		bld.Halt()
	case StyleThread:
		// for (i = thread_id; i < size; i += nthreads)
		//     prefix(source[i], MPADD, &sum, source[i]);
		bld.Id(isa.FID, isa.S(0))
		bld.Mov(isa.S(2), isa.S(0))
		bld.Label("loop")
		bld.ALUI(isa.SLT, isa.S(3), isa.S(2), int64(size))
		bld.Branch(isa.BEQZ, isa.S(3), "done")
		bld.Ld(isa.S(4), isa.S(2), BaseA)
		bld.Mov(isa.V(1), isa.S(4))
		bld.Prefix(isa.MPADD, isa.V(2), isa.RegNone, BaseAux, isa.V(1))
		bld.Mov(isa.S(5), isa.V(2))
		bld.St(isa.S(2), BaseC, isa.S(5))
		bld.ALUI(isa.ADD, isa.S(2), isa.S(2), int64(nthreads))
		bld.Jmp("loop")
		bld.Label("done").Halt()
	default:
		panic(fmt.Sprintf("workload: prefix has no %s form", style))
	}
	return Workload{
		Name:    fmt.Sprintf("prefix-%s-%d", style, size),
		Program: bld.MustBuild(),
		Check: func(m *machine.Machine) error {
			if err := checkRange(m, BaseC, want, "prefix"); err != nil {
				return err
			}
			if got := m.Shared().Peek(BaseAux); got != total {
				return fmt.Errorf("prefix total = %d, want %d", got, total)
			}
			return nil
		},
	}
}

// DependentLoop builds the log-step inclusive scan (product) of Section 4:
// for (i=1; i<size; i<<=1) source[t] *= source[t-i]. StyleTCF relies on the
// lockstep PRAM semantics; StyleFork resynchronizes each round with a
// fork/join (the XMT convention); StyleThread runs on the fixed thread set.
func DependentLoop(style Style, size int) Workload {
	checkSize(size)
	a := make([]int64, size)
	for i := range a {
		a[i] = int64(i%3 + 1)
	}
	want := make([]int64, size)
	acc := int64(1)
	for i := range a {
		acc *= a[i]
		want[i] = acc
	}
	bld := isa.NewBuilder(fmt.Sprintf("deploop-%s-%d", style, size))
	bld.Data(BaseA, a...)
	bld.Label("main")
	// Round body: given round stride in S1, update source (thickness
	// already set or fixed).
	emitBody := func(end isa.Op) {
		bld.Id(isa.TID, isa.V(0))
		bld.ALU(isa.SUB, isa.V(1), isa.V(0), isa.S(1))
		bld.ALUI(isa.SGE, isa.V(2), isa.V(1), 0)
		bld.Ld(isa.V(3), isa.V(1), BaseA)
		bld.Ld(isa.V(4), isa.V(0), BaseA)
		bld.ALU(isa.MUL, isa.V(5), isa.V(4), isa.V(3))
		bld.Sel(isa.V(6), isa.V(2), isa.V(5), isa.V(4))
		bld.St(isa.V(0), BaseA, isa.V(6))
		bld.Op(end)
	}
	switch style {
	case StyleTCF:
		bld.Ldi(isa.S(0), int64(size)).SetThick(isa.S(0))
		bld.Ldi(isa.S(1), 1)
		bld.Label("loop")
		bld.ALU(isa.SGE, isa.S(2), isa.S(1), isa.S(0))
		bld.Branch(isa.BNEZ, isa.S(2), "done")
		emitBody(isa.NOP)
		bld.ALUI(isa.SHL, isa.S(1), isa.S(1), 1)
		bld.Jmp("loop")
		bld.Label("done").Halt()
	case StyleFork:
		// Master of thickness 1 forks a size-thick flow per round; the
		// join is the only synchronization (no lockstep to rely on).
		bld.Ldi(isa.S(0), int64(size))
		bld.Ldi(isa.S(1), 1)
		bld.Label("loop")
		bld.ALU(isa.SGE, isa.S(2), isa.S(1), isa.S(0))
		bld.Branch(isa.BNEZ, isa.S(2), "done")
		bld.Split(isa.ArmReg(isa.S(0), "body"))
		bld.ALUI(isa.SHL, isa.S(1), isa.S(1), 1)
		bld.Jmp("loop")
		bld.Label("done").Halt()
		bld.Label("body")
		emitBody(isa.JOIN)
	case StyleThread:
		// Threads run the body under the machine lockstep; requires
		// size <= thread count.
		bld.Id(isa.FID, isa.S(3))
		bld.ALUI(isa.SGE, isa.S(4), isa.S(3), int64(size))
		bld.Branch(isa.BNEZ, isa.S(4), "done")
		bld.Ldi(isa.S(0), int64(size))
		bld.Ldi(isa.S(1), 1)
		bld.Label("loop")
		bld.ALU(isa.SGE, isa.S(2), isa.S(1), isa.S(0))
		bld.Branch(isa.BNEZ, isa.S(2), "done")
		// Thread-wise body on scalar registers (tid = flow id).
		bld.ALU(isa.SUB, isa.S(5), isa.S(3), isa.S(1))
		bld.ALUI(isa.SGE, isa.S(6), isa.S(5), 0)
		bld.Ld(isa.S(7), isa.S(5), BaseA)
		bld.Ld(isa.S(8), isa.S(3), BaseA)
		bld.ALU(isa.MUL, isa.S(9), isa.S(8), isa.S(7))
		bld.Mov(isa.V(0), isa.S(9))
		bld.Mov(isa.V(1), isa.S(8))
		bld.Mov(isa.V(2), isa.S(6))
		bld.Sel(isa.V(3), isa.V(2), isa.V(0), isa.V(1))
		bld.Mov(isa.S(9), isa.V(3))
		bld.St(isa.S(3), BaseA, isa.S(9))
		bld.ALUI(isa.SHL, isa.S(1), isa.S(1), 1)
		bld.Jmp("loop")
		bld.Label("done").Halt()
	default:
		panic(fmt.Sprintf("workload: dependent loop has no %s form", style))
	}
	return Workload{
		Name:    fmt.Sprintf("deploop-%s-%d", style, size),
		Program: bld.MustBuild(),
		Check: func(m *machine.Machine) error {
			return checkRange(m, BaseA, want, "deploop")
		},
	}
}

// Multitask builds k independent tasks (each a small vector kernel of the
// given thickness) dispatched as parallel TCFs — the time-shared
// multitasking experiment (Section 4: TCFs as tasks).
func Multitask(k, thickness int) Workload {
	bld := isa.NewBuilder(fmt.Sprintf("multitask-%d x%d", k, thickness))
	bld.Label("main")
	arms := make([]isa.Arm, k)
	for i := range arms {
		arms[i] = isa.ArmImm(int64(thickness), "task")
	}
	bld.Split(arms...)
	bld.Halt()
	bld.Label("task")
	bld.Id(isa.TID, isa.V(0))
	bld.Id(isa.FID, isa.S(0))
	bld.ALUI(isa.MUL, isa.S(1), isa.S(0), int64(thickness))
	bld.ALU(isa.ADD, isa.V(0), isa.V(0), isa.S(1))
	bld.ALUI(isa.MUL, isa.V(1), isa.V(0), 2)
	bld.St(isa.V(0), BaseC, isa.V(1))
	bld.Op(isa.JOIN)
	return Workload{
		Name:    fmt.Sprintf("multitask-%dx%d", k, thickness),
		Program: bld.MustBuild(),
		Check: func(m *machine.Machine) error {
			// Every task wrote 2*index at its slice; flow ids are
			// assigned 1..k to the children in order.
			for task := 0; task < k; task++ {
				fid := int64(task + 1)
				for lane := 0; lane < thickness; lane++ {
					idx := fid*int64(thickness) + int64(lane)
					if got := m.Shared().Peek(BaseC + idx); got != 2*idx {
						return fmt.Errorf("multitask: word %d = %d, want %d", idx, got, 2*idx)
					}
				}
			}
			return nil
		},
	}
}

// GroupParallel builds `arms` independent TCFs of the given thickness, each
// iterating a private scalar chain (x -> 3x+1) over its own disjoint slice
// of BaseC for `iters` rounds — the multi-group engine-throughput workload.
// There are no cross-arm dependencies: every arm reads and writes only its
// own region, so a step engine free to overlap groups (worker pools, the
// dataflow scheduler) can scale with cores, while the lockstep barrier pays
// a global synchronization every step.
func GroupParallel(arms, thickness, iters int) Workload {
	size := arms * thickness
	checkSize(size)
	a, _ := inputs(size)
	want := make([]int64, size)
	for i := range want {
		x := a[i]
		for k := 0; k < iters; k++ {
			x = x*3 + 1
		}
		want[i] = x
	}
	bld := isa.NewBuilder(fmt.Sprintf("grouppar-%dx%d-i%d", arms, thickness, iters))
	bld.Data(BaseA, a...)
	bld.Label("main")
	shares := make([]isa.Arm, arms)
	for i := range shares {
		shares[i] = isa.ArmImm(int64(thickness), "work")
	}
	bld.Split(shares...)
	bld.Halt()
	bld.Label("work")
	bld.Id(isa.TID, isa.V(0))
	bld.Id(isa.FID, isa.S(0))
	// Children are flows 1..arms; global index = (fid-1)*thickness + tid.
	bld.ALUI(isa.SUB, isa.S(0), isa.S(0), 1)
	bld.ALUI(isa.MUL, isa.S(0), isa.S(0), int64(thickness))
	bld.ALU(isa.ADD, isa.V(0), isa.V(0), isa.S(0))
	bld.Ld(isa.V(1), isa.V(0), BaseA)
	bld.Ldi(isa.S(1), 0)
	bld.Label("loop")
	bld.ALUI(isa.MUL, isa.V(1), isa.V(1), 3)
	bld.ALUI(isa.ADD, isa.V(1), isa.V(1), 1)
	bld.St(isa.V(0), BaseC, isa.V(1))
	bld.ALUI(isa.ADD, isa.S(1), isa.S(1), 1)
	bld.ALUI(isa.SLT, isa.S(2), isa.S(1), int64(iters))
	bld.Branch(isa.BNEZ, isa.S(2), "loop")
	bld.Op(isa.JOIN)
	return Workload{
		Name:    fmt.Sprintf("grouppar-%dx%d-i%d", arms, thickness, iters),
		Program: bld.MustBuild(),
		Check: func(m *machine.Machine) error {
			return checkRange(m, BaseC, want, "grouppar")
		},
	}
}

// Allocation builds the horizontal-vs-vertical allocation experiment of
// Section 4: total application thickness tApp split into `arms` flows (1 =
// vertical, P = horizontal), each doing `iters` elementwise instructions.
func Allocation(tApp, arms, iters int) Workload {
	bld := isa.NewBuilder(fmt.Sprintf("alloc-%d-%d", tApp, arms))
	bld.Label("main")
	shares := make([]isa.Arm, arms)
	per := tApp / arms
	for i := range shares {
		shares[i] = isa.ArmImm(int64(per), "work")
	}
	bld.Split(shares...)
	bld.Halt()
	bld.Label("work")
	bld.Id(isa.TID, isa.V(0))
	bld.Ldi(isa.S(0), 0)
	bld.Label("loop")
	bld.ALUI(isa.ADD, isa.V(1), isa.V(1), 1)
	bld.ALUI(isa.ADD, isa.S(0), isa.S(0), 1)
	bld.ALUI(isa.SLT, isa.S(1), isa.S(0), int64(iters))
	bld.Branch(isa.BNEZ, isa.S(1), "loop")
	bld.Op(isa.JOIN)
	return Workload{
		Name:    fmt.Sprintf("alloc-%d-%d", tApp, arms),
		Program: bld.MustBuild(),
		Check:   func(*machine.Machine) error { return nil },
	}
}
