package workload

import (
	"strings"
	"testing"

	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// runOn executes w on a fresh machine of the given variant and verifies it.
func runOn(t *testing.T, kind variant.Kind, w Workload, tweak func(*machine.Config)) *machine.Machine {
	t.Helper()
	cfg := machine.Default(kind)
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(w.Program); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("%s on %v: %v", w.Name, kind, err)
	}
	if err := w.Check(m); err != nil {
		t.Fatalf("%s on %v: %v", w.Name, kind, err)
	}
	return m
}

func TestVectorAddAllStylesAndVariants(t *testing.T) {
	const size = 37 // deliberately not a multiple of anything
	cases := []struct {
		kind  variant.Kind
		style Style
	}{
		{variant.SingleInstruction, StyleTCF},
		{variant.Balanced, StyleTCF},
		{variant.MultiInstruction, StyleTCF},
		{variant.MultiInstruction, StyleFork},
		{variant.SingleOperation, StyleThread},
		{variant.ConfigurableSingleOperation, StyleThread},
		{variant.SingleInstruction, StyleFork},
	}
	for _, c := range cases {
		t.Run(c.kind.String()+"/"+c.style.String(), func(t *testing.T) {
			runOn(t, c.kind, VectorAdd(c.style, size, 16, 0), nil)
		})
	}
	t.Run("fixed-thickness/simd", func(t *testing.T) {
		runOn(t, variant.FixedThickness, VectorAdd(StyleSIMD, size, 0, 8), func(c *machine.Config) {
			c.ProcsPerGroup = 8
			c.VectorWidth = 8
		})
	})
}

func TestVectorAddSmallSizes(t *testing.T) {
	for _, size := range []int{1, 2, 15, 16, 17} {
		runOn(t, variant.SingleInstruction, VectorAdd(StyleTCF, size, 16, 0), nil)
		runOn(t, variant.SingleOperation, VectorAdd(StyleThread, size, 16, 0), nil)
	}
}

func TestLowTLP(t *testing.T) {
	// PRAM-mode chain.
	m1 := runOn(t, variant.SingleInstruction, LowTLP(64, 0), nil)
	// NUMA bunch of 4 on the same variant.
	m4 := runOn(t, variant.SingleInstruction, LowTLP(64, 4), nil)
	if m4.Stats().Steps*2 >= m1.Stats().Steps {
		t.Fatalf("NUMA bunch should cut steps: %d vs %d", m4.Stats().Steps, m1.Stats().Steps)
	}
}

func TestLowTLPOnConfigurableSingleOperation(t *testing.T) {
	// The original PRAM-NUMA: thread flows can bunch. All 16 threads run
	// the chain; correctness only needs one result, overwrites agree.
	runOn(t, variant.ConfigurableSingleOperation, LowTLP(32, 4), nil)
}

func TestConditionalHalves(t *testing.T) {
	cases := []struct {
		kind  variant.Kind
		style Style
	}{
		{variant.SingleInstruction, StyleTCF},
		{variant.Balanced, StyleTCF},
		{variant.MultiInstruction, StyleFork},
		{variant.SingleOperation, StyleThread},
	}
	for _, c := range cases {
		t.Run(c.kind.String()+"/"+c.style.String(), func(t *testing.T) {
			runOn(t, c.kind, ConditionalHalves(c.style, 12), nil)
		})
	}
	t.Run("fixed-thickness/simd", func(t *testing.T) {
		runOn(t, variant.FixedThickness, ConditionalHalves(StyleSIMD, 12), func(c *machine.Config) {
			c.ProcsPerGroup = 12
			c.VectorWidth = 12
		})
	})
}

func TestPrefixSum(t *testing.T) {
	runOn(t, variant.SingleInstruction, PrefixSum(StyleTCF, 50, 0), nil)
	runOn(t, variant.Balanced, PrefixSum(StyleTCF, 50, 0), nil)
	runOn(t, variant.SingleOperation, PrefixSum(StyleThread, 50, 16), nil)
}

func TestPrefixSumPanicsOnBadStyle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PrefixSum(StyleSIMD, 8, 0)
}

func TestDependentLoop(t *testing.T) {
	runOn(t, variant.SingleInstruction, DependentLoop(StyleTCF, 16), nil)
	runOn(t, variant.Balanced, DependentLoop(StyleTCF, 16), nil)
	// XMT fork/join version must work without lockstep.
	runOn(t, variant.MultiInstruction, DependentLoop(StyleFork, 16), nil)
	// Thread version on the lockstep thread machine (size <= threads).
	runOn(t, variant.SingleOperation, DependentLoop(StyleThread, 16), nil)
}

func TestDependentLoopPanicsOnBadStyle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DependentLoop(StyleSIMD, 8)
}

func TestMultitask(t *testing.T) {
	m := runOn(t, variant.SingleInstruction, Multitask(24, 4), nil)
	// 24 tasks on 16 slots: rotation must have happened, for free.
	if m.Stats().TaskSwitches == 0 {
		t.Fatal("expected task rotation")
	}
	if m.Stats().TaskSwitchCycles != 0 {
		t.Fatalf("TCF task switching must be free, cost %d", m.Stats().TaskSwitchCycles)
	}
}

func TestAllocationHorizontalBeatsVertical(t *testing.T) {
	const tApp, iters = 64, 8
	vertical := runOn(t, variant.SingleInstruction, Allocation(tApp, 1, iters), nil)
	horizontal := runOn(t, variant.SingleInstruction, Allocation(tApp, 4, iters), nil)
	v, h := vertical.Stats().Cycles, horizontal.Stats().Cycles
	if h >= v {
		t.Fatalf("horizontal allocation (%d cycles) should beat vertical (%d)", h, v)
	}
}

func TestStyleString(t *testing.T) {
	for _, s := range []Style{StyleTCF, StyleThread, StyleSIMD, StyleFork, Style(9)} {
		if s.String() == "" {
			t.Fatal("style must render")
		}
	}
	if !strings.Contains(StyleTCF.String(), "tcf") {
		t.Fatal("tcf style name")
	}
}

func TestWorkloadNamesUnique(t *testing.T) {
	names := map[string]bool{}
	for _, w := range []Workload{
		VectorAdd(StyleTCF, 8, 16, 0),
		VectorAdd(StyleThread, 8, 16, 0),
		LowTLP(8, 0),
		LowTLP(8, 4),
		ConditionalHalves(StyleTCF, 8),
		PrefixSum(StyleTCF, 8, 0),
		DependentLoop(StyleTCF, 8),
		Multitask(4, 2),
		Allocation(16, 4, 2),
	} {
		if names[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
	}
}

// Cross-variant equivalence: every lockstep-capable workload/style pair must
// produce identical results on the single-instruction and balanced engines
// at several bounds.
func TestCrossVariantEquivalence(t *testing.T) {
	type cse struct {
		w     Workload
		kinds []variant.Kind
	}
	cases := []cse{
		{VectorAdd(StyleTCF, 33, 0, 0), []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction}},
		{ConditionalHalves(StyleTCF, 10), []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction}},
		{PrefixSum(StyleTCF, 21, 0), []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction}},
		{DependentLoop(StyleTCF, 16), []variant.Kind{variant.SingleInstruction, variant.Balanced}},
		{Multitask(20, 3), []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction}},
	}
	for _, c := range cases {
		for _, kind := range c.kinds {
			for _, bound := range []int{1, 4, 7} {
				bound := bound
				if kind != variant.Balanced && bound != 4 {
					continue
				}
				runOn(t, kind, c.w, func(cfg *machine.Config) {
					cfg.BalancedBound = bound
				})
			}
		}
	}
}

// TestGroupParallel verifies the multi-group throughput workload under every
// engine configuration the step-throughput benchmark sweeps: serial lockstep,
// the pooled lockstep engine, and the dataflow scheduler.
func TestGroupParallel(t *testing.T) {
	w := GroupParallel(8, 64, 12)
	runOn(t, variant.SingleInstruction, w, nil)
	runOn(t, variant.SingleInstruction, w, func(c *machine.Config) { c.Parallel = true })
	runOn(t, variant.SingleInstruction, w, func(c *machine.Config) {
		c.Parallel = true
		c.Sched = machine.SchedDataflow
	})
	runOn(t, variant.Balanced, w, func(c *machine.Config) { c.Sched = machine.SchedDataflow })
	m := runOn(t, variant.SingleInstruction, w, nil)
	if m.Stats().Splits == 0 {
		t.Fatal("group-parallel workload never split; it cannot exercise multiple groups")
	}
}
