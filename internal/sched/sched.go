// Package sched provides the flow-allocation policies discussed in Sections
// 3.3 and 4: balanced partitioning of application thickness across processor
// groups (horizontal allocation), fragmenting of overly thick flows for the
// balanced single-instruction execution, and TCF-as-task multitask planning.
package sched

import (
	"errors"
	"fmt"
)

// ErrBadParam is the sentinel wrapped by every scheduling primitive that is
// handed an impossible parameter (non-positive part count or bound, negative
// total or thickness). Dispatch with errors.Is, like the machine's run-error
// taxonomy.
var ErrBadParam = errors.New("bad parameter")

// Partition splits total units into parts nearly equal shares (difference at
// most one, larger shares first). parts must be positive; total must be
// non-negative; violations return an error wrapping ErrBadParam.
func Partition(total, parts int) ([]int, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("sched: parts must be positive, got %d: %w", parts, ErrBadParam)
	}
	if total < 0 {
		return nil, fmt.Errorf("sched: negative total %d: %w", total, ErrBadParam)
	}
	out := make([]int, parts)
	base := total / parts
	rem := total % parts
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out, nil
}

// Fragment splits a flow of thickness u into fragments of at most bound
// lanes each — the OS-level splitting of overly thick flows that the
// balanced single-instruction execution requires (Section 3.3). A zero u
// yields a single empty fragment. A non-positive bound or negative u returns
// an error wrapping ErrBadParam.
func Fragment(u, bound int) ([]int, error) {
	if bound <= 0 {
		return nil, fmt.Errorf("sched: bound must be positive, got %d: %w", bound, ErrBadParam)
	}
	if u < 0 {
		return nil, fmt.Errorf("sched: negative thickness %d: %w", u, ErrBadParam)
	}
	if u == 0 {
		return []int{0}, nil
	}
	var out []int
	for u > 0 {
		n := bound
		if u < bound {
			n = u
		}
		out = append(out, n)
		u -= n
	}
	return out, nil
}

// HorizontalShares returns the per-group thickness shares for allocating an
// application of thickness tApp horizontally across p groups — the
// allocation Section 4 recommends over vertical allocation (a single
// tApp-thick flow on one group).
func HorizontalShares(tApp, p int) ([]int, error) { return Partition(tApp, p) }

// Imbalance returns max(shares) - min(shares); horizontal allocation keeps
// this at most 1.
func Imbalance(shares []int) int {
	if len(shares) == 0 {
		return 0
	}
	mn, mx := shares[0], shares[0]
	for _, s := range shares[1:] {
		if s < mn {
			mn = s
		}
		if s > mx {
			mx = s
		}
	}
	return mx - mn
}

// Makespan estimates the step makespan of executing shares of operations on
// their groups, one TCF instruction per step per group: it is simply the
// maximal share (the slowest group bounds the step).
func Makespan(shares []int) int {
	mx := 0
	for _, s := range shares {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Task models one multitasking workload unit: in the extended model a task
// is simply a TCF of some thickness; in thread machines it is a full set of
// thread contexts.
type Task struct {
	ID        int
	Thickness int
}

// SwitchCost returns the context-switch cost in cycles for rotating a task
// in and out (Table 1): zero when tasks are TCFs held in the TCF storage
// buffer, Tp context saves/restores when every one of the Tp thread slots
// must be switched, and 1 for single-threaded spawn-style switching.
type SwitchCost int

const (
	// SwitchTCF is the TCF-variant cost: rotating the TCF buffer is free.
	SwitchTCF SwitchCost = iota
	// SwitchThreads is the thread-machine cost: all Tp contexts move.
	SwitchThreads
	// SwitchSingle is the single-threaded cost: one context moves.
	SwitchSingle
)

// Cycles evaluates the switch cost for a machine with tp thread slots.
func (s SwitchCost) Cycles(tp int) int {
	switch s {
	case SwitchTCF:
		return 0
	case SwitchThreads:
		return tp
	case SwitchSingle:
		return 1
	}
	panic(fmt.Sprintf("sched: unknown switch cost %d", int(s)))
}

// RoundRobinPlan simulates time-shared multitasking of tasks with a quantum
// of steps each and returns the total switch overhead in cycles after
// `rounds` full rounds.
func RoundRobinPlan(tasks []Task, rounds, tp int, cost SwitchCost) int {
	if rounds < 0 {
		panic("sched: negative rounds")
	}
	switches := rounds * len(tasks)
	return switches * cost.Cycles(tp)
}
