package sched

import (
	"errors"
	"testing"
	"testing/quick"
)

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestPartitionKnown(t *testing.T) {
	cases := []struct {
		total, parts int
		want         []int
	}{
		{10, 2, []int{5, 5}},
		{10, 3, []int{4, 3, 3}},
		{2, 4, []int{1, 1, 0, 0}},
		{0, 3, []int{0, 0, 0}},
		{7, 1, []int{7}},
	}
	for _, c := range cases {
		got, err := Partition(c.total, c.parts)
		if err != nil {
			t.Fatalf("Partition(%d,%d): %v", c.total, c.parts, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("Partition(%d,%d) = %v", c.total, c.parts, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Partition(%d,%d) = %v, want %v", c.total, c.parts, got, c.want)
			}
		}
	}
}

// Properties: shares sum to total, imbalance <= 1, none negative.
func TestPartitionProperties(t *testing.T) {
	prop := func(total uint16, parts uint8) bool {
		p := int(parts%32) + 1
		tot := int(total % 4096)
		shares, err := Partition(tot, p)
		if err != nil || sum(shares) != tot || Imbalance(shares) > 1 {
			return false
		}
		for _, s := range shares {
			if s < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFragment(t *testing.T) {
	got, err := Fragment(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Fragment(10,4) = %v", got)
		}
	}
	if got, err := Fragment(0, 4); err != nil || len(got) != 1 || got[0] != 0 {
		t.Fatalf("Fragment(0,4) = %v, %v", got, err)
	}
	if got, err := Fragment(3, 4); err != nil || len(got) != 1 || got[0] != 3 {
		t.Fatalf("Fragment(3,4) = %v, %v", got, err)
	}
}

// Properties: fragments sum to u, each within (0, bound] except the empty
// case, and count = ceil(u/bound).
func TestFragmentProperties(t *testing.T) {
	prop := func(u uint16, bound uint8) bool {
		b := int(bound%16) + 1
		uu := int(u % 2048)
		fr, err := Fragment(uu, b)
		if err != nil || sum(fr) != uu {
			return false
		}
		wantCount := (uu + b - 1) / b
		if uu == 0 {
			wantCount = 1
		}
		if len(fr) != wantCount {
			return false
		}
		for _, f := range fr {
			if f > b || (f <= 0 && uu != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBadParams covers the error taxonomy: every reachable misuse of the
// partitioning primitives returns an error wrapping ErrBadParam instead of
// panicking (PR-2 error discipline).
func TestBadParams(t *testing.T) {
	for _, c := range []struct {
		name string
		call func() ([]int, error)
	}{
		{"Partition zero parts", func() ([]int, error) { return Partition(1, 0) }},
		{"Partition negative total", func() ([]int, error) { return Partition(-1, 2) }},
		{"Fragment zero bound", func() ([]int, error) { return Fragment(1, 0) }},
		{"Fragment negative thickness", func() ([]int, error) { return Fragment(-1, 2) }},
		{"HorizontalShares zero groups", func() ([]int, error) { return HorizontalShares(8, 0) }},
	} {
		out, err := c.call()
		if err == nil || !errors.Is(err, ErrBadParam) {
			t.Errorf("%s: got (%v, %v), want ErrBadParam", c.name, out, err)
		}
		if out != nil {
			t.Errorf("%s: non-nil shares %v alongside error", c.name, out)
		}
	}
}

// TestPanics pins the remaining programmer-error panics: these guard
// unreachable states (corrupt enum, negative round count from a caller bug),
// not data-dependent inputs, so they stay panics.
func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SwitchCost(9).Cycles(4) },
		func() { RoundRobinPlan(nil, -1, 4, SwitchTCF) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Horizontal allocation dominates vertical: for any application thickness,
// makespan of horizontal shares <= makespan of vertical allocation, and it
// is ~P times smaller for divisible loads (the Section 4 claim).
func TestHorizontalBeatsVertical(t *testing.T) {
	prop := func(tApp uint16, p uint8) bool {
		groups := int(p%8) + 1
		total := int(tApp%1024) + 1
		shares, err := HorizontalShares(total, groups)
		if err != nil {
			return false
		}
		horizontal := Makespan(shares)
		vertical := Makespan(append([]int{total}, make([]int, groups-1)...))
		if horizontal > vertical {
			return false
		}
		// Exactly divisible: speedup exactly P.
		if total%groups == 0 && horizontal != total/groups {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchCosts(t *testing.T) {
	if SwitchTCF.Cycles(16) != 0 {
		t.Error("TCF switch must be free")
	}
	if SwitchThreads.Cycles(16) != 16 {
		t.Error("thread switch must cost Tp")
	}
	if SwitchSingle.Cycles(16) != 1 {
		t.Error("single switch must cost 1")
	}
}

func TestRoundRobinPlan(t *testing.T) {
	tasks := []Task{{0, 8}, {1, 4}, {2, 2}}
	if got := RoundRobinPlan(tasks, 10, 4, SwitchTCF); got != 0 {
		t.Fatalf("TCF plan cost = %d", got)
	}
	if got := RoundRobinPlan(tasks, 10, 4, SwitchThreads); got != 10*3*4 {
		t.Fatalf("thread plan cost = %d, want 120", got)
	}
}

func TestMakespanAndImbalance(t *testing.T) {
	if Makespan(nil) != 0 || Imbalance(nil) != 0 {
		t.Fatal("empty cases")
	}
	if Makespan([]int{3, 9, 1}) != 9 {
		t.Fatal("makespan")
	}
	if Imbalance([]int{3, 9, 1}) != 8 {
		t.Fatal("imbalance")
	}
}
