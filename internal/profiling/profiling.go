// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the command-line tools so benchmark workloads can be inspected with
// `go tool pprof` without ad-hoc plumbing in every main.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile to cpuPath when it is non-empty and returns a
// stop function that finalizes the CPU profile and, when memPath is
// non-empty, writes an allocation heap profile. The stop function is safe to
// call exactly once, typically via defer.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush unreached allocations so the profile reflects live heap
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
