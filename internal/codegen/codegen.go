// Package codegen compiles checked tcf-e programs to the TCF machine ISA.
//
// Register allocation is static: every function gets a frame of scalar (S)
// and thick (V) registers. Frames of callees start after the frames of all
// their callers (the call graph is acyclic — sema rejects recursion), so a
// call never clobbers live caller state and the flow-level call stack only
// needs return addresses, exactly as the machine provides. Expression
// temporaries are stack-allocated within the frame and released as soon as
// they are consumed: every emitted instruction reads all its sources before
// writing any lane, so a result may safely reuse its operands' registers —
// the register pressure of an expression is its depth, not its node count.
package codegen

import (
	"fmt"
	"sort"

	"tcfpram/internal/isa"
	"tcfpram/internal/lang"
	"tcfpram/internal/sema"
)

// Compiled is the result of compilation.
type Compiled struct {
	Program *isa.Program
	Info    *sema.Info
	// LocalData must be preloaded into every group's local memory before
	// running (initializers of `local` globals).
	LocalData []sema.DataSeg
}

// Compile type-checks and compiles a parsed program.
func Compile(prog *lang.Program) (*Compiled, error) {
	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	return CompileChecked(info)
}

// CompileSource parses, checks and compiles tcf-e source.
func CompileSource(name, src string) (*Compiled, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := Compile(prog)
	if err != nil {
		return nil, err
	}
	c.Program.Name = name
	return c, nil
}

// CompileChecked compiles an already-checked program.
func CompileChecked(info *sema.Info) (*Compiled, error) {
	// Pass 1: measure frame sizes with zero bases.
	sizes := map[string]frameSize{}
	for _, fn := range info.Prog.Funcs {
		g := newGen(info, isa.NewBuilder("measure"), map[string]int{})
		fr, err := g.compileFunc(fn, 0, 0)
		if err != nil {
			return nil, err
		}
		sizes[fn.Name] = fr.size()
	}
	// Bases: topological order over the call DAG; base(f) = max frame end
	// of any caller.
	sBase, vBase, err := frameBases(info, sizes)
	if err != nil {
		return nil, err
	}
	// Pass 2: emit for real. main first so that the entry label is PC 0.
	b := isa.NewBuilder("tcf-e")
	for _, d := range info.Data {
		b.Data(d.Addr, d.Words...)
	}
	g := newGen(info, b, sBase)
	ordered := orderedFuncs(info)
	for _, fn := range ordered {
		if _, err := g.compileFunc(fn, sBase[fn.Name], vBase[fn.Name]); err != nil {
			return nil, err
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Compiled{Program: p, Info: info, LocalData: info.LocalData}, nil
}

// orderedFuncs returns main first, then the rest in declaration order.
func orderedFuncs(info *sema.Info) []*lang.FuncDecl {
	out := []*lang.FuncDecl{info.Prog.Func("main")}
	for _, fn := range info.Prog.Funcs {
		if fn.Name != "main" {
			out = append(out, fn)
		}
	}
	return out
}

type frameSize struct{ s, v int }

// frameBases assigns register frame bases so callee frames start after all
// caller frames.
func frameBases(info *sema.Info, sizes map[string]frameSize) (sBase, vBase map[string]int, err error) {
	sBase = map[string]int{}
	vBase = map[string]int{}
	// Longest-path layering over the call DAG, iterated to fixpoint (the
	// graph is small and acyclic).
	names := make([]string, 0, len(info.Funcs))
	for name := range info.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for changed := true; changed; {
		changed = false
		for _, name := range names {
			fi := info.Funcs[name]
			for _, callee := range fi.Calls {
				sEnd := sBase[name] + sizes[name].s
				vEnd := vBase[name] + sizes[name].v
				if sBase[callee] < sEnd {
					sBase[callee] = sEnd
					changed = true
				}
				if vBase[callee] < vEnd {
					vBase[callee] = vEnd
					changed = true
				}
			}
		}
	}
	for _, name := range names {
		if sBase[name]+sizes[name].s > isa.NumSRegs {
			return nil, nil, fmt.Errorf("codegen: scalar register file exhausted in %s (need %d of %d); flatten the call chain or use fewer variables",
				name, sBase[name]+sizes[name].s, isa.NumSRegs)
		}
		if vBase[name]+sizes[name].v > isa.NumVRegs {
			return nil, nil, fmt.Errorf("codegen: thick register file exhausted in %s (need %d of %d)",
				name, vBase[name]+sizes[name].v, isa.NumVRegs)
		}
	}
	return sBase, vBase, nil
}

// frame tracks register allocation within one function.
type frame struct {
	name         string
	sBase, vBase int
	sVar         map[*sema.Sym]int
	vVar         map[*sema.Sym]int
	sCount       int
	vCount       int
	sTemp, sMax  int
	vTemp, vMax  int
	retSlot      int // scalar slot of the return value (-1 if none)
}

func (fr *frame) size() frameSize {
	return frameSize{s: fr.sCount + fr.sMax, v: fr.vCount + fr.vMax}
}

type gen struct {
	info   *sema.Info
	b      *isa.Builder
	fr     *frame
	labels int
	// loops is the enclosing-loop label stack for break/continue.
	loops []loopLabels
	// calleeSBase maps function name to its scalar frame base (zero map in
	// the measuring pass; the real layout in the emit pass).
	calleeSBase map[string]int
}

func newGen(info *sema.Info, b *isa.Builder, sBases map[string]int) *gen {
	return &gen{info: info, b: b, calleeSBase: sBases}
}

// loopLabels are the jump targets of the innermost loop.
type loopLabels struct {
	breakL    string
	continueL string
}

func (g *gen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf(".%s%d", prefix, g.labels)
}

func (g *gen) errf(pos lang.Pos, format string, args ...any) error {
	return fmt.Errorf("codegen: %s: %s", pos, fmt.Sprintf(format, args...))
}

// ---- frame register helpers ----

func (g *gen) sVarReg(sym *sema.Sym) isa.Reg {
	slot, ok := g.fr.sVar[sym]
	if !ok {
		slot = g.fr.sCount
		g.fr.sCount++
		g.fr.sVar[sym] = slot
	}
	return g.sReg(slot)
}

func (g *gen) vVarReg(sym *sema.Sym) isa.Reg {
	slot, ok := g.fr.vVar[sym]
	if !ok {
		slot = g.fr.vCount
		g.fr.vCount++
		g.fr.vVar[sym] = slot
	}
	return g.vReg(slot)
}

func (g *gen) sReg(slot int) isa.Reg {
	idx := g.fr.sBase + slot
	if idx >= isa.NumSRegs {
		// Pass 2 has validated totals; this guards pass-1 overflow with
		// a deferred error via panic/recover-free saturation: report at
		// Build time by emitting S15 (validation in frameBases catches
		// the real overflow).
		idx = isa.NumSRegs - 1
	}
	return isa.S(idx)
}

func (g *gen) vReg(slot int) isa.Reg {
	idx := g.fr.vBase + slot
	if idx >= isa.NumVRegs {
		idx = isa.NumVRegs - 1
	}
	return isa.V(idx)
}

// temp allocation (stack discipline within the expression being compiled).

func (g *gen) allocS() isa.Reg {
	slot := g.fr.sCount + g.fr.sTemp
	g.fr.sTemp++
	if g.fr.sTemp > g.fr.sMax {
		g.fr.sMax = g.fr.sTemp
	}
	return g.sReg(slot)
}

func (g *gen) allocV() isa.Reg {
	slot := g.fr.vCount + g.fr.vTemp
	g.fr.vTemp++
	if g.fr.vTemp > g.fr.vMax {
		g.fr.vMax = g.fr.vTemp
	}
	return g.vReg(slot)
}

// mark/release implement temp stack frames around expression evaluation.
type mark struct{ s, v int }

func (g *gen) mark() mark     { return mark{g.fr.sTemp, g.fr.vTemp} }
func (g *gen) release(m mark) { g.fr.sTemp, g.fr.vTemp = m.s, m.v }

// value is an expression result: an immediate constant or a register.
type value struct {
	imm   int64
	isImm bool
	reg   isa.Reg
	thick bool
}

func immVal(v int64) value   { return value{imm: v, isImm: true} }
func regVal(r isa.Reg) value { return value{reg: r, thick: r.IsVector()} }

// materialize puts v into a register (scalar for immediates).
func (g *gen) materialize(v value) isa.Reg {
	if !v.isImm {
		return v.reg
	}
	r := g.allocS()
	g.b.Ldi(r, v.imm)
	return r
}

// ---- function compilation ----

func (g *gen) compileFunc(fn *lang.FuncDecl, sBase, vBase int) (*frame, error) {
	fi := g.info.Funcs[fn.Name]
	g.fr = &frame{
		name: fn.Name, sBase: sBase, vBase: vBase,
		sVar: map[*sema.Sym]int{}, vVar: map[*sema.Sym]int{},
		retSlot: -1,
	}
	if fi.Returns {
		g.fr.retSlot = g.fr.sCount
		g.fr.sCount++
	}
	for _, p := range fi.Params {
		g.sVarReg(p)
	}
	g.b.Label(funcLabel(fn.Name))
	if err := g.stmt(fn.Body); err != nil {
		return nil, err
	}
	// Fallthrough epilogue.
	if fn.Name == "main" {
		g.b.Halt()
	} else {
		g.b.Op(isa.RET)
	}
	return g.fr, nil
}

func funcLabel(name string) string {
	if name == "main" {
		return "main"
	}
	return "fn_" + name
}

// paramReg returns the register of callee's i'th parameter given its frame
// base (recomputed from the same deterministic layout).
func (g *gen) calleeFrameLayout(name string) (retReg isa.Reg, params []isa.Reg) {
	// The layout mirrors compileFunc: [ret?][params...].
	fi := g.info.Funcs[name]
	base := g.calleeSBase[name]
	slot := 0
	if fi.Returns {
		retReg = isa.S(min(base+slot, isa.NumSRegs-1))
		slot++
	}
	for range fi.Params {
		params = append(params, isa.S(min(base+slot, isa.NumSRegs-1)))
		slot++
	}
	return retReg, params
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
