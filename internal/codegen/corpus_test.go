package codegen

// Corpus tests: every testdata/*.te program carries an "// EXPECT:" line
// listing the values it must print. Each program is compiled and run on the
// single-instruction, balanced and multi-instruction engines; printed values
// must match on all of them. This is the compiler's end-to-end regression
// suite — add a .te file and an EXPECT line to extend it.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// expectOf extracts the expected printed values from the EXPECT annotation.
func expectOf(t *testing.T, src string) []int64 {
	t.Helper()
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "// EXPECT:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "// EXPECT:"))
		out := make([]int64, 0, len(fields))
		for _, f := range fields {
			var v int64
			if _, err := fmt.Sscanf(f, "%d", &v); err != nil {
				t.Fatalf("bad EXPECT value %q", f)
			}
			out = append(out, v)
		}
		return out
	}
	t.Fatal("corpus program has no // EXPECT: line")
	return nil
}

func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.te"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corpus too small: %d programs", len(files))
	}
	kinds := []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			srcBytes, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(srcBytes)
			want := expectOf(t, src)
			c, err := CompileSource(file, src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, kind := range kinds {
				cfg := machine.Default(kind)
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.LoadProgram(c.Program); err != nil {
					t.Fatal(err)
				}
				for _, seg := range c.LocalData {
					for g := 0; g < cfg.Groups; g++ {
						if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
							t.Fatal(err)
						}
					}
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				got := outputs(m)
				if len(got) != len(want) {
					t.Fatalf("%v: printed %v, want %v", kind, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v: printed %v, want %v", kind, got, want)
					}
				}
			}
		})
	}
}
