package codegen

// Differential testing of expression compilation: random scalar expression
// trees are rendered to tcf-e source, compiled, executed, and compared with
// a direct Go evaluation. This exercises constant folding, immediate forms,
// temp allocation and operator lowering.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// exprNode is a tiny expression tree with its own evaluator.
type exprNode struct {
	op   string // "", "lit", "var", unary "-","!","~", or a binary operator
	lit  int64
	vidx int
	l, r *exprNode
}

var binaryOps = []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"<", "<=", ">", ">=", "==", "!=", "&&", "||"}

func genExpr(rng *rand.Rand, depth int) *exprNode {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return &exprNode{op: "lit", lit: int64(rng.Intn(21) - 10)}
		}
		return &exprNode{op: "var", vidx: rng.Intn(3)}
	}
	switch rng.Intn(6) {
	case 0:
		return &exprNode{op: "-", l: genExpr(rng, depth-1)}
	case 1:
		return &exprNode{op: "!", l: genExpr(rng, depth-1)}
	case 2:
		return &exprNode{op: "~", l: genExpr(rng, depth-1)}
	default:
		op := binaryOps[rng.Intn(len(binaryOps))]
		return &exprNode{op: op, l: genExpr(rng, depth-1), r: genExpr(rng, depth-1)}
	}
}

func (e *exprNode) render() string {
	switch e.op {
	case "lit":
		if e.lit < 0 {
			return fmt.Sprintf("(0 - %d)", -e.lit)
		}
		return fmt.Sprintf("%d", e.lit)
	case "var":
		return fmt.Sprintf("v%d", e.vidx)
	case "-", "!", "~":
		return "(" + e.op + e.l.render() + ")"
	default:
		return "(" + e.l.render() + " " + e.op + " " + e.r.render() + ")"
	}
}

func (e *exprNode) eval(vars []int64) int64 {
	switch e.op {
	case "lit":
		return e.lit
	case "var":
		return vars[e.vidx]
	case "-":
		return -e.l.eval(vars)
	case "!":
		return b2i(e.l.eval(vars) == 0)
	case "~":
		return ^e.l.eval(vars)
	}
	a, b := e.l.eval(vars), e.r.eval(vars)
	switch e.op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		if b == 0 {
			return 0
		}
		return a / b
	case "%":
		if b == 0 {
			return 0
		}
		return a % b
	case "&":
		return a & b
	case "|":
		return a | b
	case "^":
		return a ^ b
	case "<<":
		s := b
		if s < 0 {
			s = 0
		}
		if s > 63 {
			s = 63
		}
		return a << uint(s)
	case ">>":
		s := b
		if s < 0 {
			s = 0
		}
		if s > 63 {
			s = 63
		}
		return a >> uint(s)
	case "<":
		return b2i(a < b)
	case "<=":
		return b2i(a <= b)
	case ">":
		return b2i(a > b)
	case ">=":
		return b2i(a >= b)
	case "==":
		return b2i(a == b)
	case "!=":
		return b2i(a != b)
	case "&&":
		return b2i(a != 0 && b != 0)
	case "||":
		return b2i(a != 0 || b != 0)
	}
	panic("bad op " + e.op)
}

func TestExpressionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		vars := []int64{int64(rng.Intn(15) - 7), int64(rng.Intn(15) - 7), int64(rng.Intn(15) - 7)}
		var exprs []*exprNode
		var want []int64
		var b strings.Builder
		fmt.Fprintf(&b, "func main() {\n")
		fmt.Fprintf(&b, "    int v0 = %s;\n    int v1 = %s;\n    int v2 = %s;\n",
			lit(vars[0]), lit(vars[1]), lit(vars[2]))
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			e := genExpr(rng, 4)
			exprs = append(exprs, e)
			want = append(want, e.eval(vars))
			fmt.Fprintf(&b, "    print(%s);\n", e.render())
		}
		b.WriteString("}\n")
		src := b.String()

		c, err := CompileSource("exprdiff", src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		m, err := machine.New(machine.Default(variant.SingleInstruction))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(c.Program); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		got := outputs(m)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d outputs, want %d\n%s", trial, len(got), len(want), src)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d expr %d: got %d, want %d\nexpr: %s\n%s",
					trial, i, got[i], want[i], exprs[i].render(), src)
			}
		}
	}
}

func lit(v int64) string {
	if v < 0 {
		return fmt.Sprintf("0 - %d", -v)
	}
	return fmt.Sprintf("%d", v)
}
