package codegen

import (
	"strings"
	"testing"

	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// run compiles src and executes it on the given variant, returning the
// machine for inspection.
func run(t *testing.T, kind variant.Kind, src string) *machine.Machine {
	t.Helper()
	m, err := tryRun(t, kind, src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tryRun(t *testing.T, kind variant.Kind, src string) (*machine.Machine, error) {
	t.Helper()
	c, err := CompileSource("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := machine.Default(kind)
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(c.Program); err != nil {
		t.Fatal(err)
	}
	for _, seg := range c.LocalData {
		for g := 0; g < cfg.Groups; g++ {
			if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, err = m.Run()
	return m, err
}

// outputs collects scalar print values.
func outputs(m *machine.Machine) []int64 {
	var out []int64
	for _, o := range m.Outputs() {
		out = append(out, o.Values...)
	}
	return out
}

func TestVectorAddSection4(t *testing.T) {
	src := `
shared int a[8] @ 100 = {1, 2, 3, 4, 5, 6, 7, 8};
shared int b[8] @ 200 = {10, 20, 30, 40, 50, 60, 70, 80};
shared int c[8] @ 300;

func main() {
    #8;
    c[tid] = a[tid] + b[tid];
}
`
	m := run(t, variant.SingleInstruction, src)
	got := m.Shared().Snapshot(300, 8)
	for i := 0; i < 8; i++ {
		want := int64(i+1) + int64(i+1)*10
		if got[i] != want {
			t.Fatalf("c[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestArithmeticAndPrint(t *testing.T) {
	src := `
func main() {
    int x = 5;
    int y = x * 3 + 2;
    print(y);
    print(y / 4);
    print(y % 4);
    print(-y);
    print(~0);
    print(!0);
    print(!7);
    print(1 << 4);
    print(256 >> 3);
    print(7 & 12);
    print(7 | 12);
    print(7 ^ 12);
    print(3 < 4);
    print(4 <= 4);
    print(5 > 6);
    print(5 >= 6);
    print(5 == 5);
    print(5 != 5);
    print(1 && 2);
    print(1 && 0);
    print(0 || 3);
    print(0 || 0);
}
`
	m := run(t, variant.SingleInstruction, src)
	want := []int64{17, 4, 1, -17, -1, 1, 0, 16, 32, 4, 15, 11, 1, 1, 0, 0, 1, 0, 1, 0, 1, 0}
	got := outputs(m)
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNonConstantFoldingPaths(t *testing.T) {
	// Same operations but through runtime variables (no constant folding).
	src := `
func main() {
    int a = 7;
    int b = 12;
    print(a & b);
    print(a | b);
    print(a ^ b);
    print((a < b) && (b < 100));
    print((a > b) || (b > 100));
    print(2 - a);
    print(100 / a);
}
`
	m := run(t, variant.SingleInstruction, src)
	want := []int64{4, 15, 11, 1, 0, -5, 14}
	got := outputs(m)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func main() {
    int sum = 0;
    for (int i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) {
            sum += i;
        } else {
            sum += 1;
        }
    }
    print(sum);
    int n = 0;
    while (n < 5) {
        n += 2;
    }
    print(n);
}
`
	m := run(t, variant.SingleInstruction, src)
	got := outputs(m)
	if got[0] != 25 || got[1] != 6 {
		t.Fatalf("control flow outputs %v, want [25 6]", got)
	}
}

func TestFunctionsAndReturns(t *testing.T) {
	src := `
func main() {
    print(fib(10));
    print(addmul(3, 4));
}

func addmul(x, y) {
    return x * y + helper(x);
}

func helper(v) {
    return v + 1;
}

func fib(n) {
    int a = 0;
    int b = 1;
    for (int i = 0; i < n; i += 1) {
        int t = a + b;
        a = b;
        b = t;
    }
    return a;
}
`
	m := run(t, variant.SingleInstruction, src)
	got := outputs(m)
	if got[0] != 55 || got[1] != 16 {
		t.Fatalf("function outputs %v, want [55 16]", got)
	}
}

func TestFlowLevelCallWithThickness(t *testing.T) {
	// A thickness-8 flow calls a function once; the body executes across
	// the whole thickness (Section 2.2's novel call semantics).
	src := `
shared int c[8] @ 300;

func main() {
    #8;
    store();
}

func store() {
    c[tid] = tid * 2;
}
`
	m := run(t, variant.SingleInstruction, src)
	got := m.Shared().Snapshot(300, 8)
	for i := range got {
		if got[i] != int64(2*i) {
			t.Fatalf("c = %v", got)
		}
	}
	// One CALL instruction, not eight.
	if m.Stats().Splits != 0 {
		t.Fatal("call must not split the flow")
	}
}

func TestParallelStatement(t *testing.T) {
	src := `
shared int a[4] @ 100 = {1, 2, 3, 4};
shared int b[4] @ 200 = {5, 6, 7, 8};
shared int c[8] @ 300;

func main() {
    int half = 4;
    parallel {
        #half: c[tid] = a[tid] + b[tid];
        #half: c[tid + 4] = 0 - 1;
    }
    prints("joined");
}
`
	m := run(t, variant.SingleInstruction, src)
	got := m.Shared().Snapshot(300, 8)
	want := []int64{6, 8, 10, 12, -1, -1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c = %v, want %v", got, want)
		}
	}
	outs := m.Outputs()
	if outs[len(outs)-1].Text != "joined" {
		t.Fatal("parent did not resume")
	}
}

func TestThickVariablesAndReductions(t *testing.T) {
	src := `
func main() {
    #10;
    thick int v = tid + 1;
    print(radd(v));
    print(rmax(v));
    print(rmin(v));
    thick int mask = v & 1;
    print(ror(mask));
    print(rand(mask));
}
`
	m := run(t, variant.SingleInstruction, src)
	got := outputs(m)
	want := []int64{55, 10, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reductions %v, want %v", got, want)
		}
	}
}

func TestMultiprefixIntrinsics(t *testing.T) {
	src := `
shared int sum @ 600;
shared int pre[8] @ 700;

func main() {
    #8;
    thick int p = mpadd(&sum, tid + 1);
    pre[tid] = p;
    madd(&sum, 100);
}
`
	m := run(t, variant.SingleInstruction, src)
	got := m.Shared().Snapshot(700, 8)
	acc := int64(0)
	for i := 0; i < 8; i++ {
		if got[i] != acc {
			t.Fatalf("prefix[%d] = %d, want %d", i, got[i], acc)
		}
		acc += int64(i + 1)
	}
	if total := m.Shared().Peek(600); total != 36+800 {
		t.Fatalf("sum = %d, want 836", total)
	}
}

func TestMemoryScalarsAndCompound(t *testing.T) {
	src := `
shared int counter @ 900 = 5;

func main() {
    counter += 10;
    counter *= 2;
    print(counter);
}
`
	m := run(t, variant.SingleInstruction, src)
	if got := outputs(m); got[0] != 30 {
		t.Fatalf("counter = %v, want 30", got)
	}
	if m.Shared().Peek(900) != 30 {
		t.Fatal("memory not updated")
	}
}

func TestLocalMemoryVariables(t *testing.T) {
	src := `
local int buf[4] = {10, 20, 30, 40};
local int acc;

func main() {
    #1/8;
    acc = buf[0] + buf[1] + buf[2] + buf[3];
    print(acc);
}
`
	m := run(t, variant.SingleInstruction, src)
	if got := outputs(m); got[0] != 100 {
		t.Fatalf("local acc = %v, want 100", got)
	}
}

func TestNumaStatementAndThicknessStatement(t *testing.T) {
	src := `
func main() {
    #1/4;
    int x = 0;
    for (int i = 0; i < 16; i += 1) {
        x += i;
    }
    print(x);
    #4;
    thick int v = tid;
    print(radd(v));
}
`
	m := run(t, variant.SingleInstruction, src)
	got := outputs(m)
	if got[0] != 120 || got[1] != 6 {
		t.Fatalf("outputs %v, want [120 6]", got)
	}
}

func TestDependentLoopCompiled(t *testing.T) {
	// The Section 4 dependent loop written in tcf-e.
	src := `
shared int src[8] @ 100 = {1, 2, 3, 4, 5, 6, 7, 8};

func main() {
    int size = 8;
    #size;
    for (int i = 1; i < size; i = i << 1) {
        thick int take = tid - i >= 0;
        thick int other = src[tid - i];
        thick int mine = src[tid];
        thick int prod = mine * other;
        thick int res = 0;
        if (1) {
            res = prod;
        }
        src[tid] = take * res + (1 - take) * mine;
    }
    print(src[0]);
}
`
	m := run(t, variant.SingleInstruction, src)
	got := m.Shared().Snapshot(100, 8)
	acc := int64(1)
	for i := 0; i < 8; i++ {
		acc *= int64(i + 1)
		if got[i] != acc {
			t.Fatalf("scan[%d] = %d, want %d (all %v)", i, got[i], acc, got)
		}
	}
}

func TestBarrierCompiles(t *testing.T) {
	src := `
func main() {
    barrier;
    prints("after");
}
`
	m := run(t, variant.SingleInstruction, src)
	if m.Stats().Barriers != 1 {
		t.Fatal("barrier not executed")
	}
}

func TestHaltStatement(t *testing.T) {
	src := `
func main() {
    prints("before");
    halt;
    prints("after");
}
`
	m := run(t, variant.SingleInstruction, src)
	outs := m.Outputs()
	if len(outs) != 1 || outs[0].Text != "before" {
		t.Fatalf("halt did not stop the flow: %v", outs)
	}
}

func TestBuiltinIdentifiers(t *testing.T) {
	src := `
func main() {
    print(nproc);
    print(ngroups);
    print(fid);
    print(thickness);
    #4;
    thick int t = tid;
    print(rmax(t));
}
`
	m := run(t, variant.SingleInstruction, src)
	got := outputs(m)
	want := []int64{16, 4, 0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("builtins %v, want %v", got, want)
		}
	}
}

func TestRegisterExhaustionReported(t *testing.T) {
	// A deep call chain overflows the statically allocated scalar file.
	var b strings.Builder
	b.WriteString("func main() { print(f0(1)); }\n")
	for i := 0; i < 8; i++ {
		if i < 7 {
			b.WriteString(strings.ReplaceAll(strings.ReplaceAll(
				"func fN(a) { int x = a + N; int y = x * 2; return fM(y) + x; }\n",
				"N", itoa(i)), "M", itoa(i+1)))
		} else {
			b.WriteString("func f7(a) { return a; }\n")
		}
	}
	_, err := CompileSource("deep", b.String())
	if err == nil || !strings.Contains(err.Error(), "register file exhausted") {
		t.Fatalf("expected register exhaustion, got %v", err)
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestCompileErrorsSurface(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"parse", "func main( {", "expected"},
		{"sema", "func main() { x = 1; }", "undeclared"},
		{"recursion", "func main() { f(); }\nfunc f() { f(); }", "recursive"},
		{"thick-cond", "func main() { #4; thick int v = tid; if (v) { } }", "scalar"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := CompileSource(c.name, c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestCompiledRunsOnAllLockstepVariants(t *testing.T) {
	src := `
shared int c[8] @ 300;

func main() {
    #8;
    c[tid] = tid * tid;
}
`
	for _, kind := range []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction} {
		t.Run(kind.String(), func(t *testing.T) {
			m := run(t, kind, src)
			for i := int64(0); i < 8; i++ {
				if got := m.Shared().Peek(300 + i); got != i*i {
					t.Fatalf("c[%d] = %d", i, got)
				}
			}
		})
	}
}

func TestAutoAddressAllocation(t *testing.T) {
	src := `
shared int a[16];
shared int b;

func main() {
    a[3] = 7;
    b = a[3] + 1;
    print(b);
}
`
	c, err := CompileSource("auto", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Info.SharedTop <= 8192 {
		t.Fatalf("auto allocation did not advance: top %d", c.Info.SharedTop)
	}
	m, err := tryRun(t, variant.SingleInstruction, src)
	if err != nil {
		t.Fatal(err)
	}
	if got := outputs(m); got[0] != 8 {
		t.Fatalf("auto-addressed vars broken: %v", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
func main() {
    int sum = 0;
    for (int i = 0; i < 100; i += 1) {
        if (i == 10) {
            break;
        }
        if (i % 2 == 1) {
            continue;
        }
        sum += i;
    }
    print(sum);
    int n = 0;
    while (1) {
        n += 1;
        if (n >= 7) {
            break;
        }
    }
    print(n);
    int k = 0;
    int odd = 0;
    while (k < 10) {
        k += 1;
        if (k % 2 == 0) {
            continue;
        }
        odd += 1;
    }
    print(odd);
}
`
	m := run(t, variant.SingleInstruction, src)
	got := outputs(m)
	want := []int64{20, 7, 5} // 0+2+4+6+8 = 20
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outputs %v, want %v", got, want)
		}
	}
}

func TestNestedLoopBreak(t *testing.T) {
	src := `
func main() {
    int count = 0;
    for (int i = 0; i < 5; i += 1) {
        for (int j = 0; j < 5; j += 1) {
            if (j == 2) {
                break;
            }
            count += 1;
        }
    }
    print(count);
}
`
	m := run(t, variant.SingleInstruction, src)
	if got := outputs(m); got[0] != 10 {
		t.Fatalf("nested break: %v, want 10", got)
	}
}

func TestBreakOutsideLoopRejected(t *testing.T) {
	for _, src := range []string{
		"func main() { break; }",
		"func main() { continue; }",
		"func main() { for (;;) { parallel { #2: break; } } }",
	} {
		if _, err := CompileSource("bad", src); err == nil || !strings.Contains(err.Error(), "outside a loop") {
			t.Fatalf("%q: want loop error, got %v", src, err)
		}
	}
}

func TestSwitchStatement(t *testing.T) {
	src := `
func main() {
    for (int i = 0; i < 6; i += 1) {
        switch (i) {
        case 0:
            print(100);
        case 1, 2:
            print(200);
        case 5 - 2:
            print(300);
        default:
            print(999);
        }
    }
    // Switch with no default falls through to nothing.
    switch (42) {
    case 1:
        print(1);
    }
    prints("end");
}
`
	m := run(t, variant.SingleInstruction, src)
	got := outputs(m)
	want := []int64{100, 200, 200, 300, 999, 999}
	if len(got) != len(want) {
		t.Fatalf("outputs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outputs %v, want %v", got, want)
		}
	}
	outs := m.Outputs()
	if outs[len(outs)-1].Text != "end" {
		t.Fatal("missing end marker")
	}
}

func TestSwitchErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"func main() { switch (1) { } }", "at least one case"},
		{"func main() { switch (1) { default: default: } }", "duplicate default"},
		{"func main() { #4; thick int v = tid; switch (v) { case 1: halt; } }", "must be scalar"},
		{"func main() { #4; thick int v = tid; switch (1) { case v: halt; } }", "must be scalar"},
		{"func main() { switch (1) { nope: } }", "expected case or default"},
	}
	for _, c := range cases {
		if _, err := CompileSource("sw", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%q: want %q, got %v", c.src, c.want, err)
		}
	}
}

func TestSwitchVariablesScoped(t *testing.T) {
	src := `
func main() {
    switch (2) {
    case 1:
        int x = 1;
        print(x);
    case 2:
        int x = 2;
        print(x);
    }
}
`
	m := run(t, variant.SingleInstruction, src)
	if got := outputs(m); len(got) != 1 || got[0] != 2 {
		t.Fatalf("switch scoping: %v", got)
	}
}

func TestAssertIntrinsic(t *testing.T) {
	src := `
func main() {
    assert(1 + 1 == 2);
    prints("passed");
    assert(2 > 5);
    prints("unreachable");
}
`
	m := run(t, variant.SingleInstruction, src)
	outs := m.Outputs()
	if len(outs) != 2 || outs[0].Text != "passed" || !strings.Contains(outs[1].Text, "assertion failed at") {
		t.Fatalf("assert outputs: %v", outs)
	}
}

func TestAssertThickRejected(t *testing.T) {
	_, err := CompileSource("a", "func main() { #4; thick int v = tid; assert(v); }")
	if err == nil || !strings.Contains(err.Error(), "must be scalar") {
		t.Fatalf("thick assert: %v", err)
	}
}
