package codegen

import (
	"tcfpram/internal/isa"
	"tcfpram/internal/lang"
	"tcfpram/internal/sema"
)

func (g *gen) stmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.BlockStmt:
		for _, sub := range s.Stmts {
			if err := g.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *lang.VarDecl:
		return g.varDecl(s)
	case *lang.AssignStmt:
		return g.assign(s)
	case *lang.ExprStmt:
		m := g.mark()
		defer g.release(m)
		_, err := g.expr(s.X)
		return err
	case *lang.IfStmt:
		return g.ifStmt(s)
	case *lang.WhileStmt:
		return g.whileStmt(s)
	case *lang.ForStmt:
		return g.forStmt(s)
	case *lang.ParallelStmt:
		return g.parallelStmt(s)
	case *lang.SwitchStmt:
		return g.switchStmt(s)
	case *lang.ThickStmt:
		m := g.mark()
		defer g.release(m)
		v, err := g.expr(s.X)
		if err != nil {
			return err
		}
		if v.isImm {
			g.b.SetThickImm(v.imm)
		} else {
			g.b.SetThick(v.reg)
		}
		return nil
	case *lang.NumaStmt:
		m := g.mark()
		defer g.release(m)
		v, err := g.expr(s.X)
		if err != nil {
			return err
		}
		if v.isImm {
			g.b.NumaImm(v.imm)
		} else {
			g.b.Numa(v.reg)
		}
		return nil
	case *lang.BarrierStmt:
		g.b.Op(isa.BAR)
		return nil
	case *lang.HaltStmt:
		g.b.Halt()
		return nil
	case *lang.BreakStmt:
		if len(g.loops) == 0 {
			return g.errf(s.Pos, "break outside a loop")
		}
		g.b.Jmp(g.loops[len(g.loops)-1].breakL)
		return nil
	case *lang.ContinueStmt:
		if len(g.loops) == 0 {
			return g.errf(s.Pos, "continue outside a loop")
		}
		g.b.Jmp(g.loops[len(g.loops)-1].continueL)
		return nil
	case *lang.ReturnStmt:
		if s.X != nil {
			m := g.mark()
			v, err := g.expr(s.X)
			if err != nil {
				return err
			}
			ret := g.sReg(g.fr.retSlot)
			if v.isImm {
				g.b.Ldi(ret, v.imm)
			} else if v.reg != ret {
				g.b.Mov(ret, v.reg)
			}
			g.release(m)
		}
		if g.fr.name == "main" {
			g.b.Halt()
		} else {
			g.b.Op(isa.RET)
		}
		return nil
	}
	return g.errf(s.GetPos(), "unhandled statement %T", s)
}

func (g *gen) varDecl(d *lang.VarDecl) error {
	sym := g.info.Syms[d]
	var dst isa.Reg
	if sym.Thick {
		dst = g.vVarReg(sym)
	} else {
		dst = g.sVarReg(sym)
	}
	if d.InitExpr == nil {
		// Zero-initialize for predictability.
		g.b.Ldi(dst, 0)
		return nil
	}
	m := g.mark()
	defer g.release(m)
	v, err := g.expr(d.InitExpr)
	if err != nil {
		return err
	}
	g.storeTo(dst, v)
	return nil
}

// storeTo moves a value into a specific register.
func (g *gen) storeTo(dst isa.Reg, v value) {
	if v.isImm {
		g.b.Ldi(dst, v.imm)
		return
	}
	if v.reg != dst {
		g.b.Mov(dst, v.reg)
	}
}

// assignOpKind maps compound assignment tokens to ALU opcodes.
var assignOps = map[lang.TokKind]isa.Op{
	lang.TokPlusAssign:    isa.ADD,
	lang.TokMinusAssign:   isa.SUB,
	lang.TokStarAssign:    isa.MUL,
	lang.TokSlashAssign:   isa.DIV,
	lang.TokPercentAssign: isa.MOD,
	lang.TokAmpAssign:     isa.AND,
	lang.TokPipeAssign:    isa.OR,
	lang.TokCaretAssign:   isa.XOR,
	lang.TokShlAssign:     isa.SHL,
	lang.TokShrAssign:     isa.SHR,
}

func (g *gen) assign(s *lang.AssignStmt) error {
	m := g.mark()
	defer g.release(m)
	switch lhs := s.LHS.(type) {
	case *lang.Ident:
		sym := g.info.Syms[lhs]
		if sym.Space != lang.SpaceReg {
			return g.assignMemScalar(s, sym)
		}
		var dst isa.Reg
		if sym.Thick {
			dst = g.vVarReg(sym)
		} else {
			dst = g.sVarReg(sym)
		}
		if s.Op == lang.TokAssign {
			v, err := g.expr(s.RHS)
			if err != nil {
				return err
			}
			g.storeTo(dst, v)
			return nil
		}
		op := assignOps[s.Op]
		v, err := g.expr(s.RHS)
		if err != nil {
			return err
		}
		if v.isImm {
			g.b.ALUI(op, dst, dst, v.imm)
		} else {
			g.b.ALU(op, dst, dst, v.reg)
		}
		return nil
	case *lang.Index:
		return g.assignElement(s, lhs)
	}
	return g.errf(s.Pos, "invalid assignment target")
}

// assignMemScalar handles stores to shared/local memory scalars.
func (g *gen) assignMemScalar(s *lang.AssignStmt, sym *sema.Sym) error {
	store, load := isa.ST, isa.LD
	if sym.Space == lang.SpaceLocal {
		store, load = isa.STL, isa.LDL
	}
	v, err := g.expr(s.RHS)
	if err != nil {
		return err
	}
	if s.Op == lang.TokAssign {
		r := g.materialize(v)
		g.b.Emit(isa.Instr{Op: store, Ra: isa.RegNone, Imm: sym.Addr, Rb: r})
		return nil
	}
	old := g.allocS()
	g.b.Emit(isa.Instr{Op: load, Rd: old, Ra: isa.RegNone, Imm: sym.Addr})
	op := assignOps[s.Op]
	if v.isImm {
		g.b.ALUI(op, old, old, v.imm)
	} else {
		g.b.ALU(op, old, old, v.reg)
	}
	g.b.Emit(isa.Instr{Op: store, Ra: isa.RegNone, Imm: sym.Addr, Rb: old})
	return nil
}

// assignElement handles a[idx] op= rhs for shared/local arrays.
func (g *gen) assignElement(s *lang.AssignStmt, lhs *lang.Index) error {
	sym := g.info.Syms[lhs]
	store, load := isa.ST, isa.LD
	if sym.Space == lang.SpaceLocal {
		store, load = isa.STL, isa.LDL
	}
	idx, err := g.expr(lhs.Idx)
	if err != nil {
		return err
	}
	rhs, err := g.expr(s.RHS)
	if err != nil {
		return err
	}
	base, disp := g.memOperand(idx, sym.Addr)
	if s.Op == lang.TokAssign {
		r := g.materialize(rhs)
		g.b.Emit(isa.Instr{Op: store, Ra: base, Imm: disp, Rb: r})
		return nil
	}
	// Read-modify-write: the load sees the pre-step value (PRAM step
	// semantics) or the current value (NUMA/sequential) — either way this
	// is the element-wise compound update.
	var old isa.Reg
	if idx.thick || rhs.thick {
		old = g.allocV()
	} else {
		old = g.allocS()
	}
	g.b.Emit(isa.Instr{Op: load, Rd: old, Ra: base, Imm: disp})
	op := assignOps[s.Op]
	if rhs.isImm {
		g.b.ALUI(op, old, old, rhs.imm)
	} else {
		g.b.ALU(op, old, old, rhs.reg)
	}
	g.b.Emit(isa.Instr{Op: store, Ra: base, Imm: disp, Rb: old})
	return nil
}

// memOperand converts an index value plus static base address into the
// machine's (base register, displacement) form.
func (g *gen) memOperand(idx value, addr int64) (isa.Reg, int64) {
	if idx.isImm {
		return isa.RegNone, addr + idx.imm
	}
	return idx.reg, addr
}

func (g *gen) ifStmt(s *lang.IfStmt) error {
	m := g.mark()
	cond, err := g.expr(s.Cond)
	if err != nil {
		return err
	}
	condReg := g.materialize(cond)
	elseL := g.label("else")
	endL := g.label("endif")
	g.b.Branch(isa.BEQZ, condReg, elseL)
	g.release(m)
	if err := g.stmt(s.Then); err != nil {
		return err
	}
	if s.Else != nil {
		g.b.Jmp(endL)
	}
	g.b.Label(elseL)
	if s.Else != nil {
		if err := g.stmt(s.Else); err != nil {
			return err
		}
		g.b.Label(endL)
	}
	return nil
}

func (g *gen) whileStmt(s *lang.WhileStmt) error {
	top := g.label("while")
	end := g.label("endwhile")
	g.b.Label(top)
	m := g.mark()
	cond, err := g.expr(s.Cond)
	if err != nil {
		return err
	}
	g.b.Branch(isa.BEQZ, g.materialize(cond), end)
	g.release(m)
	g.loops = append(g.loops, loopLabels{breakL: end, continueL: top})
	err = g.stmt(s.Body)
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.b.Jmp(top)
	g.b.Label(end)
	return nil
}

func (g *gen) forStmt(s *lang.ForStmt) error {
	if s.Init != nil {
		if err := g.stmt(s.Init); err != nil {
			return err
		}
	}
	top := g.label("for")
	post := g.label("forpost")
	end := g.label("endfor")
	g.b.Label(top)
	if s.Cond != nil {
		m := g.mark()
		cond, err := g.expr(s.Cond)
		if err != nil {
			return err
		}
		g.b.Branch(isa.BEQZ, g.materialize(cond), end)
		g.release(m)
	}
	g.loops = append(g.loops, loopLabels{breakL: end, continueL: post})
	err := g.stmt(s.Body)
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.b.Label(post)
	if s.Post != nil {
		if err := g.stmt(s.Post); err != nil {
			return err
		}
	}
	g.b.Jmp(top)
	g.b.Label(end)
	return nil
}

// switchStmt compiles the flow-level switch: the subject is compared
// against the case values in order; exactly one arm executes.
func (g *gen) switchStmt(s *lang.SwitchStmt) error {
	m := g.mark()
	subj, err := g.expr(s.Subject)
	if err != nil {
		return err
	}
	subjReg := g.materialize(subj)
	end := g.label("endswitch")
	labels := make([]string, len(s.Cases))
	defaultLabel := end
	for i, cs := range s.Cases {
		labels[i] = g.label("case")
		if cs.Values == nil {
			defaultLabel = labels[i]
			continue
		}
		for _, v := range cs.Values {
			vm := g.mark()
			val, err := g.expr(v)
			if err != nil {
				return err
			}
			cmp := g.allocS()
			if val.isImm {
				g.b.ALUI(isa.SEQ, cmp, subjReg, val.imm)
			} else {
				g.b.ALU(isa.SEQ, cmp, subjReg, val.reg)
			}
			g.b.Branch(isa.BNEZ, cmp, labels[i])
			g.release(vm)
		}
	}
	g.b.Jmp(defaultLabel)
	g.release(m)
	for i, cs := range s.Cases {
		g.b.Label(labels[i])
		for _, sub := range cs.Body {
			if err := g.stmt(sub); err != nil {
				return err
			}
		}
		g.b.Jmp(end)
	}
	g.b.Label(end)
	return nil
}

func (g *gen) parallelStmt(s *lang.ParallelStmt) error {
	m := g.mark()
	arms := make([]isa.Arm, len(s.Arms))
	labels := make([]string, len(s.Arms))
	for i, arm := range s.Arms {
		labels[i] = g.label("arm")
		v, err := g.expr(arm.Thick)
		if err != nil {
			return err
		}
		if v.isImm {
			arms[i] = isa.ArmImm(v.imm, labels[i])
		} else {
			arms[i] = isa.ArmReg(v.reg, labels[i])
		}
	}
	cont := g.label("join")
	g.b.Split(arms...)
	g.release(m)
	g.b.Jmp(cont) // the parent resumes here after all arms join
	for i, arm := range s.Arms {
		g.b.Label(labels[i])
		saved := g.loops
		g.loops = nil
		err := g.stmt(arm.Body)
		g.loops = saved
		if err != nil {
			return err
		}
		g.b.Op(isa.JOIN)
	}
	g.b.Label(cont)
	return nil
}
