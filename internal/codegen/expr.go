package codegen

import (
	"fmt"

	"tcfpram/internal/isa"
	"tcfpram/internal/lang"
	"tcfpram/internal/sema"
)

var binOps = map[lang.TokKind]isa.Op{
	lang.TokPlus:    isa.ADD,
	lang.TokMinus:   isa.SUB,
	lang.TokStar:    isa.MUL,
	lang.TokSlash:   isa.DIV,
	lang.TokPercent: isa.MOD,
	lang.TokAmp:     isa.AND,
	lang.TokPipe:    isa.OR,
	lang.TokCaret:   isa.XOR,
	lang.TokShl:     isa.SHL,
	lang.TokShr:     isa.SHR,
	lang.TokLt:      isa.SLT,
	lang.TokLe:      isa.SLE,
	lang.TokGt:      isa.SGT,
	lang.TokGe:      isa.SGE,
	lang.TokEq:      isa.SEQ,
	lang.TokNe:      isa.SNE,
}

var commutative = map[isa.Op]bool{
	isa.ADD: true, isa.MUL: true, isa.AND: true, isa.OR: true, isa.XOR: true,
	isa.SEQ: true, isa.SNE: true, isa.MIN: true, isa.MAX: true,
}

// foldBin evaluates a binary operation on constants.
func foldBin(op isa.Op, a, b int64) int64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.MUL:
		return a * b
	case isa.DIV:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.MOD:
		if b == 0 {
			return 0
		}
		return a % b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	// Shifts clamp to [0,63] exactly like the machine ALU: the constant
	// folder must not diverge from runtime semantics.
	case isa.SHL:
		return a << clampShift(b)
	case isa.SHR:
		return a >> clampShift(b)
	case isa.SLT:
		return b2i(a < b)
	case isa.SLE:
		return b2i(a <= b)
	case isa.SGT:
		return b2i(a > b)
	case isa.SGE:
		return b2i(a >= b)
	case isa.SEQ:
		return b2i(a == b)
	case isa.SNE:
		return b2i(a != b)
	}
	panic("codegen: foldBin on " + op.String())
}

func clampShift(b int64) uint {
	if b < 0 {
		return 0
	}
	if b > 63 {
		return 63
	}
	return uint(b)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// destFor allocates a result register of the right class: thick results use
// the V pool, scalars the S pool.
func (g *gen) destFor(thick bool) isa.Reg {
	if thick {
		return g.allocV()
	}
	return g.allocS()
}

// exprThick reports whether sema typed e as thick.
func (g *gen) exprThick(e lang.Expr) bool {
	return g.info.Kinds[e] == sema.KindThick
}

func (g *gen) expr(e lang.Expr) (value, error) {
	switch e := e.(type) {
	case *lang.IntLit:
		return immVal(e.Val), nil
	case *lang.Ident:
		return g.identExpr(e)
	case *lang.Unary:
		return g.unaryExpr(e)
	case *lang.Binary:
		return g.binaryExpr(e)
	case *lang.Index:
		return g.indexExpr(e)
	case *lang.AddrOf:
		return g.addrOfExpr(e)
	case *lang.Call:
		return g.callExpr(e)
	}
	return value{}, g.errf(e.GetPos(), "unhandled expression %T", e)
}

var builtinOps = map[string]isa.Op{
	"tid": isa.TID, "fid": isa.FID, "thickness": isa.THICK,
	"nproc": isa.NPROC, "ngroups": isa.NGRP, "gid": isa.GID, "pid": isa.PID,
}

func (g *gen) identExpr(e *lang.Ident) (value, error) {
	if op, ok := builtinOps[e.Name]; ok {
		dst := g.destFor(e.Name == "tid")
		g.b.Id(op, dst)
		return regVal(dst), nil
	}
	sym := g.info.Syms[e]
	if sym.Space != lang.SpaceReg {
		// Memory scalar: load the word.
		load := isa.LD
		if sym.Space == lang.SpaceLocal {
			load = isa.LDL
		}
		dst := g.allocS()
		g.b.Emit(isa.Instr{Op: load, Rd: dst, Ra: isa.RegNone, Imm: sym.Addr})
		return regVal(dst), nil
	}
	if sym.Thick {
		return regVal(g.vVarReg(sym)), nil
	}
	return regVal(g.sVarReg(sym)), nil
}

func (g *gen) unaryExpr(e *lang.Unary) (value, error) {
	m := g.mark()
	x, err := g.expr(e.X)
	if err != nil {
		return value{}, err
	}
	if x.isImm {
		switch e.Op {
		case lang.TokMinus:
			return immVal(-x.imm), nil
		case lang.TokTilde:
			return immVal(^x.imm), nil
		case lang.TokBang:
			return immVal(b2i(x.imm == 0)), nil
		}
	}
	// Operand temps are consumed by the single emitted instruction (which
	// reads its sources before writing any lane), so the destination may
	// reuse them — without this, wide expressions exhaust the register
	// file by holding every intermediate to the end of the statement.
	g.release(m)
	dst := g.destFor(x.thick)
	switch e.Op {
	case lang.TokMinus:
		g.b.Unary(isa.NEG, dst, x.reg)
	case lang.TokTilde:
		g.b.Unary(isa.NOT, dst, x.reg)
	case lang.TokBang:
		g.b.ALUI(isa.SEQ, dst, x.reg, 0)
	default:
		return value{}, g.errf(e.Pos, "unhandled unary operator %s", e.Op)
	}
	return regVal(dst), nil
}

func (g *gen) binaryExpr(e *lang.Binary) (value, error) {
	// Logical && / || without short-circuit: normalize both sides to 0/1.
	if e.Op == lang.TokAndAnd || e.Op == lang.TokOrOr {
		x, err := g.expr(e.X)
		if err != nil {
			return value{}, err
		}
		y, err := g.expr(e.Y)
		if err != nil {
			return value{}, err
		}
		if x.isImm && y.isImm {
			if e.Op == lang.TokAndAnd {
				return immVal(b2i(x.imm != 0 && y.imm != 0)), nil
			}
			return immVal(b2i(x.imm != 0 || y.imm != 0)), nil
		}
		norm := func(v value) isa.Reg {
			r := g.materialize(v)
			n := g.destFor(v.thick)
			g.b.ALUI(isa.SNE, n, r, 0)
			return n
		}
		nx, ny := norm(x), norm(y)
		dst := g.destFor(x.thick || y.thick)
		op := isa.AND
		if e.Op == lang.TokOrOr {
			op = isa.OR
		}
		g.b.ALU(op, dst, nx, ny)
		return regVal(dst), nil
	}

	op, ok := binOps[e.Op]
	if !ok {
		return value{}, g.errf(e.Pos, "unhandled binary operator %s", e.Op)
	}
	m := g.mark()
	x, err := g.expr(e.X)
	if err != nil {
		return value{}, err
	}
	y, err := g.expr(e.Y)
	if err != nil {
		return value{}, err
	}
	if x.isImm && y.isImm {
		return immVal(foldBin(op, x.imm, y.imm)), nil
	}
	// Immediate on the right: use the immediate ALU form. Operand temps
	// are released before allocating the destination (see unaryExpr).
	if y.isImm {
		g.release(m)
		dst := g.destFor(x.thick)
		g.b.ALUI(op, dst, x.reg, y.imm)
		return regVal(dst), nil
	}
	if x.isImm {
		if commutative[op] {
			g.release(m)
			dst := g.destFor(y.thick)
			g.b.ALUI(op, dst, y.reg, x.imm)
			return regVal(dst), nil
		}
		xr := g.materialize(x)
		g.release(m)
		dst := g.destFor(y.thick)
		g.b.ALU(op, dst, xr, y.reg)
		return regVal(dst), nil
	}
	g.release(m)
	dst := g.destFor(x.thick || y.thick)
	g.b.ALU(op, dst, x.reg, y.reg)
	return regVal(dst), nil
}

func (g *gen) indexExpr(e *lang.Index) (value, error) {
	sym := g.info.Syms[e]
	load := isa.LD
	if sym.Space == lang.SpaceLocal {
		load = isa.LDL
	}
	m := g.mark()
	idx, err := g.expr(e.Idx)
	if err != nil {
		return value{}, err
	}
	base, disp := g.memOperand(idx, sym.Addr)
	g.release(m)
	dst := g.destFor(g.exprThick(e))
	g.b.Emit(isa.Instr{Op: load, Rd: dst, Ra: base, Imm: disp})
	return regVal(dst), nil
}

func (g *gen) addrOfExpr(e *lang.AddrOf) (value, error) {
	sym := g.info.Syms[e]
	if e.Idx == nil {
		return immVal(sym.Addr), nil
	}
	m := g.mark()
	idx, err := g.expr(e.Idx)
	if err != nil {
		return value{}, err
	}
	if idx.isImm {
		return immVal(sym.Addr + idx.imm), nil
	}
	g.release(m)
	dst := g.destFor(idx.thick)
	g.b.ALUI(isa.ADD, dst, idx.reg, sym.Addr)
	return regVal(dst), nil
}

var multiprefixOps = map[string]isa.Op{
	"mpadd": isa.MPADD, "mpand": isa.MPAND, "mpor": isa.MPOR,
	"mpmax": isa.MPMAX, "mpmin": isa.MPMIN,
}

var multiOps = map[string]isa.Op{
	"madd": isa.MADD, "mand": isa.MAND, "mor": isa.MOR,
	"mmax": isa.MMAX, "mmin": isa.MMIN,
}

var reduceOps = map[string]isa.Op{
	"radd": isa.RADD, "rand": isa.RAND, "ror": isa.ROR,
	"rmax": isa.RMAX, "rmin": isa.RMIN,
}

func (g *gen) callExpr(e *lang.Call) (value, error) {
	if op, ok := multiprefixOps[e.Name]; ok {
		m := g.mark()
		addr, err := g.expr(e.Args[0])
		if err != nil {
			return value{}, err
		}
		val, err := g.expr(e.Args[1])
		if err != nil {
			return value{}, err
		}
		base, disp := g.memOperand(addr, 0)
		vr := g.materialize(val)
		g.release(m)
		dst := g.allocV()
		g.b.Emit(isa.Instr{Op: op, Rd: dst, Ra: base, Imm: disp, Rb: vr})
		return regVal(dst), nil
	}
	if op, ok := multiOps[e.Name]; ok {
		addr, err := g.expr(e.Args[0])
		if err != nil {
			return value{}, err
		}
		val, err := g.expr(e.Args[1])
		if err != nil {
			return value{}, err
		}
		base, disp := g.memOperand(addr, 0)
		g.b.Emit(isa.Instr{Op: op, Ra: base, Imm: disp, Rb: g.materialize(val)})
		return value{}, nil
	}
	if op, ok := reduceOps[e.Name]; ok {
		m := g.mark()
		v, err := g.expr(e.Args[0])
		if err != nil {
			return value{}, err
		}
		g.release(m)
		dst := g.allocS()
		g.b.Reduce(op, dst, v.reg)
		return regVal(dst), nil
	}
	switch e.Name {
	case "print":
		v, err := g.expr(e.Args[0])
		if err != nil {
			return value{}, err
		}
		if v.isImm {
			g.b.PrintImm(v.imm)
		} else {
			g.b.Print(v.reg)
		}
		return value{}, nil
	case "prints":
		g.b.Prints(e.Args[0].(*lang.StrLit).Val)
		return value{}, nil
	case "assert":
		// assert(cond): a failing flow announces the violation and halts.
		m := g.mark()
		v, err := g.expr(e.Args[0])
		if err != nil {
			return value{}, err
		}
		ok := g.label("assertok")
		g.b.Branch(isa.BNEZ, g.materialize(v), ok)
		g.release(m)
		g.b.Prints(fmt.Sprintf("assertion failed at %s", e.Pos))
		g.b.Halt()
		g.b.Label(ok)
		return value{}, nil
	}
	// User function call.
	fi := g.info.Funcs[e.Name]
	retReg, params := g.calleeFrameLayout(e.Name)
	// Evaluate arguments into caller temps first (argument expressions may
	// themselves call functions whose frames overlap the callee's).
	m := g.mark()
	temps := make([]value, len(e.Args))
	for i, a := range e.Args {
		v, err := g.expr(a)
		if err != nil {
			return value{}, err
		}
		temps[i] = v
	}
	for i, v := range temps {
		g.storeTo(params[i], v)
	}
	g.b.Call(funcLabel(e.Name))
	g.release(m)
	if fi.Returns {
		// Copy out: the callee's return slot may be reused by a following
		// call to the same or a deeper function.
		dst := g.allocS()
		g.b.Mov(dst, retReg)
		return regVal(dst), nil
	}
	return value{}, nil
}
