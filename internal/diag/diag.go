// Package diag defines the position-carrying diagnostics shared by the
// tcf-e front end, the sema checker and the tcfvet static analyzer. One
// stable rendering — "file:line:col: severity: message [check]" — is used
// by CLI output, golden tests and checked-in expected-findings files, so
// every producer of findings agrees on the format byte for byte.
package diag

import (
	"cmp"
	"fmt"
	"strings"

	"tcfpram/internal/lang"
)

// Severity grades a finding.
type Severity int

const (
	// Info findings are advisory notes that never affect exit status.
	Info Severity = iota
	// Warning findings are suspicious but possibly intentional (dead
	// stores, zero-thickness regions, overlapping placements).
	Warning
	// Error findings are model violations under the selected discipline
	// (concurrent-access conflicts, out-of-bounds constant indexing).
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Diagnostic is one position-carrying finding.
type Diagnostic struct {
	File     string
	Pos      lang.Pos
	Severity Severity
	// Check is the kebab-case identifier of the analyzer check that
	// produced the finding (e.g. "concurrent-write", "dead-store").
	Check string
	Msg   string

	// Addr and AddrEnd carry shared-memory address provenance for
	// memory-discipline findings: the conflict happens inside the word
	// range [Addr, AddrEnd). Addr is -1 when the analyzer cannot bound
	// the conflicting addresses.
	Addr, AddrEnd int64
}

// New builds a diagnostic with no address provenance.
func New(pos lang.Pos, sev Severity, check, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos: pos, Severity: sev, Check: check,
		Msg:  fmt.Sprintf(format, args...),
		Addr: -1, AddrEnd: -1,
	}
}

func (d Diagnostic) String() string {
	var b strings.Builder
	if d.File != "" {
		b.WriteString(d.File)
		b.WriteByte(':')
	}
	fmt.Fprintf(&b, "%s: %s: %s [%s]", d.Pos, d.Severity, d.Msg, d.Check)
	return b.String()
}

// Compare orders diagnostics for stable rendering: by file, position,
// check id, then message.
func Compare(a, b Diagnostic) int {
	if c := cmp.Compare(a.File, b.File); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Pos.Line, b.Pos.Line); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Pos.Col, b.Pos.Col); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Check, b.Check); c != 0 {
		return c
	}
	return cmp.Compare(a.Msg, b.Msg)
}

// Render formats diagnostics one per line in Compare order. The input
// slice is not modified; an empty input renders as the empty string.
func Render(ds []Diagnostic) string {
	sorted := append([]Diagnostic(nil), ds...)
	sortDiags(sorted)
	var b strings.Builder
	for _, d := range sorted {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func sortDiags(ds []Diagnostic) {
	// Insertion sort: diagnostic lists are short and this keeps the
	// package dependency-free beyond lang.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && Compare(ds[j-1], ds[j]) > 0; j-- {
			ds[j-1], ds[j] = ds[j], ds[j-1]
		}
	}
}

// Sort orders ds in place by Compare.
func Sort(ds []Diagnostic) { sortDiags(ds) }

// HasErrors reports whether any finding has Error severity.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}
