package isa

import (
	"fmt"
)

// Builder assembles a Program instruction by instruction, with forward label
// references resolved at Build time.
type Builder struct {
	name   string
	instrs []Instr
	labels map[string]int
	data   []DataSeg
	// fixups maps instruction index -> label to resolve into Target, and
	// (for SPLIT) arm index -> label.
	fixups    map[int]string
	armFixups map[int]map[int]string
	errs      []error
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:      name,
		labels:    make(map[string]int),
		fixups:    make(map[int]string),
		armFixups: make(map[int]map[int]string),
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("isa: builder %s: %s", b.name, fmt.Sprintf(format, args...)))
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.instrs) }

// Label defines name at the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
	}
	b.labels[name] = len(b.instrs)
	return b
}

// Data preloads words into shared memory at addr.
func (b *Builder) Data(addr int64, words ...int64) *Builder {
	b.data = append(b.data, DataSeg{Addr: addr, Words: words})
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

// Op emits a zero-operand instruction (NOP, RET, JOIN, BAR, PRAM, HALT).
func (b *Builder) Op(op Op) *Builder { return b.Emit(Instr{Op: op}) }

// Ldi emits LDI d, imm.
func (b *Builder) Ldi(d Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: LDI, Rd: d, Imm: imm, HasImm: true})
}

// Mov emits MOV d, a.
func (b *Builder) Mov(d, a Reg) *Builder { return b.Emit(Instr{Op: MOV, Rd: d, Ra: a}) }

// Unary emits a unary operation (NEG, NOT).
func (b *Builder) Unary(op Op, d, a Reg) *Builder { return b.Emit(Instr{Op: op, Rd: d, Ra: a}) }

// ALU emits a three-register ALU operation d <- a op rb.
func (b *Builder) ALU(op Op, d, a, rb Reg) *Builder {
	return b.Emit(Instr{Op: op, Rd: d, Ra: a, Rb: rb})
}

// ALUI emits an ALU operation with an immediate second source: d <- a op imm.
func (b *Builder) ALUI(op Op, d, a Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: op, Rd: d, Ra: a, Imm: imm, HasImm: true})
}

// Sel emits SEL d, c, x, y.
func (b *Builder) Sel(d, c, x, y Reg) *Builder {
	return b.Emit(Instr{Op: SEL, Rd: d, Ra: c, Rb: x, Rc: y})
}

// Id emits an identity-source instruction (TID, FID, THICK, GID, PID, NPROC,
// NGRP) into d.
func (b *Builder) Id(op Op, d Reg) *Builder { return b.Emit(Instr{Op: op, Rd: d}) }

// Ld emits LD d, a+imm (shared memory load).
func (b *Builder) Ld(d, a Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: LD, Rd: d, Ra: a, Imm: imm})
}

// St emits ST a+imm, v (shared memory store).
func (b *Builder) St(a Reg, imm int64, v Reg) *Builder {
	return b.Emit(Instr{Op: ST, Ra: a, Imm: imm, Rb: v})
}

// Ldl emits LDL d, a+imm (local memory load).
func (b *Builder) Ldl(d, a Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: LDL, Rd: d, Ra: a, Imm: imm})
}

// Stl emits STL a+imm, v (local memory store).
func (b *Builder) Stl(a Reg, imm int64, v Reg) *Builder {
	return b.Emit(Instr{Op: STL, Ra: a, Imm: imm, Rb: v})
}

// Multi emits a multioperation op a+imm, v.
func (b *Builder) Multi(op Op, a Reg, imm int64, v Reg) *Builder {
	if !op.IsMultiop() {
		b.errf("%s is not a multioperation", op)
	}
	return b.Emit(Instr{Op: op, Ra: a, Imm: imm, Rb: v})
}

// Prefix emits a multiprefix op d, a+imm, v.
func (b *Builder) Prefix(op Op, d, a Reg, imm int64, v Reg) *Builder {
	if !op.IsMultiprefix() {
		b.errf("%s is not a multiprefix", op)
	}
	return b.Emit(Instr{Op: op, Rd: d, Ra: a, Imm: imm, Rb: v})
}

// Reduce emits a reduction op s, v.
func (b *Builder) Reduce(op Op, s, v Reg) *Builder {
	if !op.IsReduction() {
		b.errf("%s is not a reduction", op)
	}
	return b.Emit(Instr{Op: op, Rd: s, Ra: v})
}

// Branch emits BEQZ/BNEZ cond, label.
func (b *Builder) Branch(op Op, cond Reg, label string) *Builder {
	b.fixups[len(b.instrs)] = label
	return b.Emit(Instr{Op: op, Ra: cond, Sym: label, Target: -1})
}

// Jmp emits JMP label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups[len(b.instrs)] = label
	return b.Emit(Instr{Op: JMP, Sym: label, Target: -1})
}

// Call emits CALL label.
func (b *Builder) Call(label string) *Builder {
	b.fixups[len(b.instrs)] = label
	return b.Emit(Instr{Op: CALL, Sym: label, Target: -1})
}

// SetThick emits SETTHICK s.
func (b *Builder) SetThick(s Reg) *Builder { return b.Emit(Instr{Op: SETTHICK, Ra: s}) }

// SetThickImm emits SETTHICK imm.
func (b *Builder) SetThickImm(t int64) *Builder {
	return b.Emit(Instr{Op: SETTHICK, Imm: t, HasImm: true})
}

// Numa emits NUMA s (enter NUMA mode, bunch length from scalar s).
func (b *Builder) Numa(s Reg) *Builder { return b.Emit(Instr{Op: NUMA, Ra: s}) }

// NumaImm emits NUMA imm.
func (b *Builder) NumaImm(t int64) *Builder {
	return b.Emit(Instr{Op: NUMA, Imm: t, HasImm: true})
}

// Arm describes a SPLIT arm for Builder.Split.
type Arm struct {
	Thick    Reg   // scalar register, or RegNone to use ThickImm
	ThickImm int64 // immediate thickness when Thick == RegNone
	Label    string
}

// ArmImm builds an immediate-thickness Arm.
func ArmImm(t int64, label string) Arm { return Arm{Thick: RegNone, ThickImm: t, Label: label} }

// ArmReg builds a register-thickness Arm.
func ArmReg(s Reg, label string) Arm { return Arm{Thick: s, Label: label} }

// Split emits a SPLIT with the given arms.
func (b *Builder) Split(arms ...Arm) *Builder {
	in := Instr{Op: SPLIT}
	af := make(map[int]string, len(arms))
	for i, a := range arms {
		in.Arms = append(in.Arms, SplitArm{Thick: a.Thick, ThickImm: a.ThickImm, Target: -1, Sym: a.Label})
		af[i] = a.Label
	}
	b.armFixups[len(b.instrs)] = af
	return b.Emit(in)
}

// Print emits PRINT a.
func (b *Builder) Print(a Reg) *Builder { return b.Emit(Instr{Op: PRINT, Ra: a}) }

// PrintImm emits PRINT imm.
func (b *Builder) PrintImm(v int64) *Builder {
	return b.Emit(Instr{Op: PRINT, Imm: v, HasImm: true})
}

// Prints emits PRINTS "s".
func (b *Builder) Prints(s string) *Builder { return b.Emit(Instr{Op: PRINTS, Sym: s}) }

// Halt emits HALT.
func (b *Builder) Halt() *Builder { return b.Op(HALT) }

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{Name: b.name, Instrs: b.instrs, Labels: b.labels, Data: b.data}
	for idx, label := range b.fixups {
		pc, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa: builder %s: undefined label %q at pc %d", b.name, label, idx)
		}
		p.Instrs[idx].Target = pc
	}
	for idx, arms := range b.armFixups {
		for ai, label := range arms {
			pc, ok := b.labels[label]
			if !ok {
				return nil, fmt.Errorf("isa: builder %s: undefined SPLIT label %q at pc %d", b.name, label, idx)
			}
			p.Instrs[idx].Arms[ai].Target = pc
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for tests and fixed workloads.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
