package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses TCF assembler source into a Program.
//
// Syntax, one statement per line:
//
//	; comment           (also "//")
//	.data ADDR: w0 w1 …  preload shared memory
//	label:               (may share a line with an instruction)
//	OP operand, operand, …
//
// Operands: registers (V0..V31, S0..S15), integer immediates, memory
// operands (Rx, Rx+imm, Rx-imm, or a bare absolute address), branch labels,
// quoted strings (PRINTS), and SPLIT arms of the form "thick -> label".
func Assemble(name, src string) (*Program, error) {
	a := &assembler{b: NewBuilder(name)}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo+1, err)
		}
	}
	p, err := a.b.Build()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for fixed test programs.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b *Builder
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			inStr = !inStr
		case inStr:
		case s[i] == ';':
			return s[:i]
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func (a *assembler) line(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, ".data") {
		return a.dataDirective(strings.TrimSpace(s[len(".data"):]))
	}
	// Leading labels (there may be several, and an instruction may follow).
	for {
		idx := strings.Index(s, ":")
		if idx < 0 {
			break
		}
		head := strings.TrimSpace(s[:idx])
		if !isIdent(head) {
			break
		}
		a.b.Label(head)
		s = strings.TrimSpace(s[idx+1:])
		if s == "" {
			return nil
		}
	}
	return a.instruction(s)
}

func (a *assembler) dataDirective(s string) error {
	idx := strings.Index(s, ":")
	if idx < 0 {
		return fmt.Errorf("malformed .data (missing ':')")
	}
	addr, err := strconv.ParseInt(strings.TrimSpace(s[:idx]), 0, 64)
	if err != nil {
		return fmt.Errorf("malformed .data address: %w", err)
	}
	var words []int64
	for _, f := range strings.Fields(s[idx+1:]) {
		w, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			return fmt.Errorf("malformed .data word %q: %w", f, err)
		}
		words = append(words, w)
	}
	a.b.Data(addr, words...)
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		digit := r >= '0' && r <= '9'
		if !alpha && !(digit && i > 0) {
			return false
		}
	}
	return true
}

// splitOperands splits on commas that are outside quoted strings.
func splitOperands(s string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inStr = !inStr
			cur.WriteByte(c)
		case c == ',' && !inStr:
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" || len(out) > 0 {
		out = append(out, t)
	}
	return out
}

func (a *assembler) instruction(s string) error {
	mnem := s
	rest := ""
	if idx := strings.IndexAny(s, " \t"); idx >= 0 {
		mnem, rest = s[:idx], strings.TrimSpace(s[idx+1:])
	}
	op, ok := OpByName(strings.ToUpper(mnem))
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	ops := splitOperands(rest)
	info := op.Info()
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operand(s), got %d", op, n, len(ops))
		}
		return nil
	}
	reg := func(s string) (Reg, error) { return ParseReg(s) }
	imm := func(s string) (int64, error) { return strconv.ParseInt(s, 0, 64) }

	switch info.Args {
	case ArgsNone:
		if err := need(0); err != nil {
			return err
		}
		a.b.Op(op)
	case ArgsDImm:
		if err := need(2); err != nil {
			return err
		}
		d, err := reg(ops[0])
		if err != nil {
			return err
		}
		v, err := imm(ops[1])
		if err != nil {
			return fmt.Errorf("%s immediate: %w", op, err)
		}
		a.b.Ldi(d, v)
	case ArgsDA:
		if err := need(2); err != nil {
			return err
		}
		d, err := reg(ops[0])
		if err != nil {
			return err
		}
		src, err := reg(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Instr{Op: op, Rd: d, Ra: src})
	case ArgsD:
		if err := need(1); err != nil {
			return err
		}
		d, err := reg(ops[0])
		if err != nil {
			return err
		}
		a.b.Id(op, d)
	case ArgsDAB:
		if err := need(3); err != nil {
			return err
		}
		d, err := reg(ops[0])
		if err != nil {
			return err
		}
		ra, err := reg(ops[1])
		if err != nil {
			return err
		}
		if rb, err2 := reg(ops[2]); err2 == nil {
			a.b.ALU(op, d, ra, rb)
		} else if v, err3 := imm(ops[2]); err3 == nil {
			a.b.ALUI(op, d, ra, v)
		} else {
			return fmt.Errorf("%s second source %q is neither register nor immediate", op, ops[2])
		}
	case ArgsDABC:
		if err := need(4); err != nil {
			return err
		}
		var rs [4]Reg
		for i := range rs {
			r, err := reg(ops[i])
			if err != nil {
				return err
			}
			rs[i] = r
		}
		a.b.Emit(Instr{Op: op, Rd: rs[0], Ra: rs[1], Rb: rs[2], Rc: rs[3]})
	case ArgsDMem:
		if err := need(2); err != nil {
			return err
		}
		d, err := reg(ops[0])
		if err != nil {
			return err
		}
		base, disp, err := parseMemOperand(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Instr{Op: op, Rd: d, Ra: base, Imm: disp})
	case ArgsMemB:
		if err := need(2); err != nil {
			return err
		}
		base, disp, err := parseMemOperand(ops[0])
		if err != nil {
			return err
		}
		v, err := reg(ops[1])
		if err != nil {
			return err
		}
		a.b.Emit(Instr{Op: op, Ra: base, Imm: disp, Rb: v})
	case ArgsDMemB:
		if err := need(3); err != nil {
			return err
		}
		d, err := reg(ops[0])
		if err != nil {
			return err
		}
		base, disp, err := parseMemOperand(ops[1])
		if err != nil {
			return err
		}
		v, err := reg(ops[2])
		if err != nil {
			return err
		}
		a.b.Emit(Instr{Op: op, Rd: d, Ra: base, Imm: disp, Rb: v})
	case ArgsSV:
		if err := need(2); err != nil {
			return err
		}
		d, err := reg(ops[0])
		if err != nil {
			return err
		}
		v, err := reg(ops[1])
		if err != nil {
			return err
		}
		a.b.Reduce(op, d, v)
	case ArgsCondTgt:
		if err := need(2); err != nil {
			return err
		}
		c, err := reg(ops[0])
		if err != nil {
			return err
		}
		if !isIdent(ops[1]) {
			return fmt.Errorf("%s target %q is not a label", op, ops[1])
		}
		a.b.Branch(op, c, ops[1])
	case ArgsTgt:
		if err := need(1); err != nil {
			return err
		}
		if !isIdent(ops[0]) {
			return fmt.Errorf("%s target %q is not a label", op, ops[0])
		}
		if op == CALL {
			a.b.Call(ops[0])
		} else {
			a.b.Jmp(ops[0])
		}
	case ArgsSrc:
		if err := need(1); err != nil {
			return err
		}
		if r, err := reg(ops[0]); err == nil {
			a.b.Emit(Instr{Op: op, Ra: r})
		} else if v, err2 := imm(ops[0]); err2 == nil {
			a.b.Emit(Instr{Op: op, Imm: v, HasImm: true})
		} else {
			return fmt.Errorf("%s source %q is neither register nor immediate", op, ops[0])
		}
	case ArgsStr:
		if err := need(1); err != nil {
			return err
		}
		str, err := strconv.Unquote(ops[0])
		if err != nil {
			return fmt.Errorf("%s wants a quoted string: %w", op, err)
		}
		a.b.Prints(str)
	case ArgsSplit:
		if len(ops) == 0 {
			return fmt.Errorf("SPLIT needs at least one arm")
		}
		var arms []Arm
		for _, o := range ops {
			parts := strings.SplitN(o, "->", 2)
			if len(parts) != 2 {
				return fmt.Errorf("malformed SPLIT arm %q (want 'thickness -> label')", o)
			}
			th := strings.TrimSpace(parts[0])
			lbl := strings.TrimSpace(parts[1])
			if !isIdent(lbl) {
				return fmt.Errorf("SPLIT arm target %q is not a label", lbl)
			}
			if r, err := reg(th); err == nil {
				arms = append(arms, ArmReg(r, lbl))
			} else if v, err2 := imm(th); err2 == nil {
				arms = append(arms, ArmImm(v, lbl))
			} else {
				return fmt.Errorf("SPLIT arm thickness %q is neither register nor immediate", th)
			}
		}
		a.b.Split(arms...)
	default:
		return fmt.Errorf("unhandled operand kind for %s", op)
	}
	return nil
}

// parseMemOperand parses "Rx", "Rx+imm", "Rx-imm" or a bare absolute
// address.
func parseMemOperand(s string) (base Reg, disp int64, err error) {
	s = strings.TrimSpace(s)
	if v, e := strconv.ParseInt(s, 0, 64); e == nil {
		return RegNone, v, nil
	}
	split := -1
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			split = i
			break
		}
	}
	regPart, dispPart := s, ""
	if split >= 0 {
		regPart, dispPart = s[:split], s[split:]
	}
	base, err = ParseReg(strings.TrimSpace(regPart))
	if err != nil {
		return RegNone, 0, fmt.Errorf("bad memory operand %q: %w", s, err)
	}
	if dispPart != "" {
		disp, err = strconv.ParseInt(strings.ReplaceAll(dispPart, " ", ""), 0, 64)
		if err != nil {
			return RegNone, 0, fmt.Errorf("bad displacement in %q: %w", s, err)
		}
	}
	return base, disp, nil
}
