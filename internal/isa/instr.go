package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SplitArm describes one arm of a SPLIT (parallel statement): a child flow
// of the given thickness starting at Target. Thickness comes from a scalar
// register or an immediate.
type SplitArm struct {
	Thick    Reg   // scalar register holding the arm thickness, or RegNone
	ThickImm int64 // immediate thickness when Thick == RegNone
	Target   int   // entry PC of the arm (resolved)
	Sym      string
}

// Instr is one machine instruction. A single Instr executes across the whole
// thickness of the flow that runs it (one "TCF instruction" of the paper).
type Instr struct {
	Op Op

	Rd Reg // destination
	Ra Reg // first source / address base / condition
	Rb Reg // second source
	Rc Reg // third source (SEL only)

	// Imm is the immediate operand: the second ALU source when HasImm, the
	// address displacement for memory ops, or the literal for LDI /
	// SETTHICK / NUMA / PRINT.
	Imm    int64
	HasImm bool

	// Target is the resolved instruction index for control transfers.
	Target int

	// Arms holds the SPLIT arms.
	Arms []SplitArm

	// Sym carries the label name of Target (for display) or the literal of
	// PRINTS.
	Sym string
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	info := in.Op.Info()
	var b strings.Builder
	b.WriteString(info.Name)
	arg := func(s string) {
		if strings.HasSuffix(b.String(), info.Name) {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(s)
	}
	mem := func(base Reg, imm int64) string {
		if base == RegNone {
			return strconv.FormatInt(imm, 10)
		}
		if imm == 0 {
			return base.String()
		}
		return fmt.Sprintf("%s%+d", base, imm)
	}
	tgt := func() string {
		if in.Sym != "" {
			return in.Sym
		}
		return "@" + strconv.Itoa(in.Target)
	}
	src := func() string {
		if in.HasImm {
			return strconv.FormatInt(in.Imm, 10)
		}
		return in.Ra.String()
	}
	switch info.Args {
	case ArgsNone:
	case ArgsDImm:
		arg(in.Rd.String())
		arg(strconv.FormatInt(in.Imm, 10))
	case ArgsDA:
		arg(in.Rd.String())
		arg(in.Ra.String())
	case ArgsD:
		arg(in.Rd.String())
	case ArgsDAB:
		arg(in.Rd.String())
		arg(in.Ra.String())
		if in.HasImm {
			arg(strconv.FormatInt(in.Imm, 10))
		} else {
			arg(in.Rb.String())
		}
	case ArgsDABC:
		arg(in.Rd.String())
		arg(in.Ra.String())
		arg(in.Rb.String())
		arg(in.Rc.String())
	case ArgsDMem:
		arg(in.Rd.String())
		arg(mem(in.Ra, in.Imm))
	case ArgsMemB:
		arg(mem(in.Ra, in.Imm))
		arg(in.Rb.String())
	case ArgsDMemB:
		arg(in.Rd.String())
		arg(mem(in.Ra, in.Imm))
		arg(in.Rb.String())
	case ArgsSV:
		arg(in.Rd.String())
		arg(in.Ra.String())
	case ArgsCondTgt:
		arg(in.Ra.String())
		arg(tgt())
	case ArgsTgt:
		arg(tgt())
	case ArgsSrc:
		arg(src())
	case ArgsStr:
		arg(strconv.Quote(in.Sym))
	case ArgsSplit:
		for _, a := range in.Arms {
			t := a.Sym
			if t == "" {
				t = "@" + strconv.Itoa(a.Target)
			}
			if a.Thick != RegNone {
				arg(a.Thick.String() + " -> " + t)
			} else {
				arg(strconv.FormatInt(a.ThickImm, 10) + " -> " + t)
			}
		}
	}
	return b.String()
}

// DataSeg preloads Words into shared memory starting at Addr before the
// program runs.
type DataSeg struct {
	Addr  int64
	Words []int64
}

// Program is an assembled TCF program.
type Program struct {
	Name   string
	Instrs []Instr
	Labels map[string]int
	Data   []DataSeg
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// At returns the instruction at pc.
func (p *Program) At(pc int) Instr { return p.Instrs[pc] }

// Entry returns the PC of label "main" if present, else 0.
func (p *Program) Entry() int {
	if pc, ok := p.Labels["main"]; ok {
		return pc
	}
	return 0
}

// Disassemble renders the whole program as reassemblable source. Control
// targets that lack a symbolic label get a synthesized "L<pc>" label.
func (p *Program) Disassemble() string {
	return p.render(false)
}

// Listing renders the program with numeric PCs for human consumption; the
// output is not meant to be reassembled.
func (p *Program) Listing() string {
	return p.render(true)
}

func (p *Program) render(withPC bool) string {
	byPC := make(map[int][]string)
	for name, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], name)
	}
	for pc := range byPC {
		sort.Strings(byPC[pc])
	}
	// Synthesize labels for anonymous targets so the output reassembles.
	synth := func(in *Instr) {
		fix := func(sym *string, target int) {
			if *sym != "" || target < 0 {
				return
			}
			name := "L" + strconv.Itoa(target)
			*sym = name
			found := false
			for _, l := range byPC[target] {
				if l == name {
					found = true
				}
			}
			if !found {
				byPC[target] = append(byPC[target], name)
			}
		}
		fix(&in.Sym, in.Target)
		for i := range in.Arms {
			fix(&in.Arms[i].Sym, in.Arms[i].Target)
		}
	}
	instrs := make([]Instr, len(p.Instrs))
	copy(instrs, p.Instrs)
	for i := range instrs {
		info := instrs[i].Op.Info()
		if info.Args == ArgsCondTgt || info.Args == ArgsTgt || info.Args == ArgsSplit {
			synth(&instrs[i])
		}
	}
	var b strings.Builder
	for _, d := range p.Data {
		fmt.Fprintf(&b, ".data %d:", d.Addr)
		for _, w := range d.Words {
			fmt.Fprintf(&b, " %d", w)
		}
		b.WriteByte('\n')
	}
	for pc, in := range instrs {
		for _, l := range byPC[pc] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		if withPC {
			fmt.Fprintf(&b, "%4d    %s\n", pc, in.String())
		} else {
			fmt.Fprintf(&b, "    %s\n", in.String())
		}
	}
	return b.String()
}

// Validate checks structural well-formedness: register classes per operand
// slot, resolved in-range targets, scalar branch conditions (the flow-level
// control rule of Section 2.2), and SPLIT arm sanity.
func (p *Program) Validate() error {
	check := func(pc int, cond bool, format string, args ...any) error {
		if cond {
			return nil
		}
		return fmt.Errorf("isa: %s: pc %d (%s): %s", p.Name, pc, p.Instrs[pc].Op, fmt.Sprintf(format, args...))
	}
	target := func(pc, t int) error {
		return check(pc, t >= 0 && t < len(p.Instrs), "target %d out of range [0,%d)", t, len(p.Instrs))
	}
	for pc, in := range p.Instrs {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: %s: pc %d: invalid opcode %d", p.Name, pc, in.Op)
		}
		info := in.Op.Info()
		var err error
		switch info.Args {
		case ArgsNone, ArgsStr:
		case ArgsDImm, ArgsD:
			err = check(pc, in.Rd.Valid(), "invalid destination %s", in.Rd)
		case ArgsDA:
			if err = check(pc, in.Rd.Valid(), "invalid destination %s", in.Rd); err == nil {
				err = check(pc, in.Ra.Valid(), "invalid source %s", in.Ra)
			}
		case ArgsDAB:
			err = check(pc, in.Rd.Valid() && in.Ra.Valid() && (in.HasImm || in.Rb.Valid()),
				"invalid operands %s, %s, %s", in.Rd, in.Ra, in.Rb)
		case ArgsDABC:
			err = check(pc, in.Rd.Valid() && in.Ra.Valid() && in.Rb.Valid() && in.Rc.Valid(),
				"invalid operands")
		// Memory address bases may be RegNone for absolute addressing
		// (effective address = Imm).
		case ArgsDMem:
			err = check(pc, in.Rd.Valid() && (in.Ra.Valid() || in.Ra == RegNone),
				"invalid operands %s, %s", in.Rd, in.Ra)
		case ArgsMemB:
			err = check(pc, (in.Ra.Valid() || in.Ra == RegNone) && in.Rb.Valid(),
				"invalid operands %s, %s", in.Ra, in.Rb)
		case ArgsDMemB:
			err = check(pc, in.Rd.Valid() && (in.Ra.Valid() || in.Ra == RegNone) && in.Rb.Valid(),
				"invalid operands")
			if err == nil {
				err = check(pc, in.Rd.IsVector(), "multiprefix destination %s must be thread-wise", in.Rd)
			}
		case ArgsSV:
			err = check(pc, in.Rd.IsScalar(), "reduction destination %s must be scalar", in.Rd)
			if err == nil {
				err = check(pc, in.Ra.IsVector(), "reduction source %s must be thread-wise", in.Ra)
			}
		case ArgsCondTgt:
			err = check(pc, in.Ra.IsScalar(), "branch condition %s must be scalar (flow-level control)", in.Ra)
			if err == nil {
				err = target(pc, in.Target)
			}
		case ArgsTgt:
			err = target(pc, in.Target)
		case ArgsSrc:
			if !in.HasImm {
				err = check(pc, in.Ra.Valid(), "invalid source %s", in.Ra)
				if err == nil && (in.Op == SETTHICK || in.Op == NUMA) {
					err = check(pc, in.Ra.IsScalar(), "%s source %s must be scalar", in.Op, in.Ra)
				}
			} else if in.Op == SETTHICK {
				err = check(pc, in.Imm >= 0, "negative thickness %d", in.Imm)
			} else if in.Op == NUMA {
				err = check(pc, in.Imm >= 1, "NUMA bunch length %d must be >= 1", in.Imm)
			}
		case ArgsSplit:
			err = check(pc, len(in.Arms) >= 1, "SPLIT needs at least one arm")
			for _, a := range in.Arms {
				if err != nil {
					break
				}
				if a.Thick != RegNone {
					err = check(pc, a.Thick.IsScalar(), "SPLIT arm thickness %s must be scalar", a.Thick)
				} else {
					err = check(pc, a.ThickImm >= 0, "negative SPLIT arm thickness %d", a.ThickImm)
				}
				if err == nil {
					err = target(pc, a.Target)
				}
			}
		}
		if err != nil {
			return err
		}
	}
	for name, pc := range p.Labels {
		if pc < 0 || pc > len(p.Instrs) {
			return fmt.Errorf("isa: %s: label %q out of range", p.Name, name)
		}
	}
	for _, d := range p.Data {
		if d.Addr < 0 {
			return fmt.Errorf("isa: %s: negative data address %d", p.Name, d.Addr)
		}
	}
	return nil
}
