package isa

import "testing"

func TestOpInfoComplete(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("opcode %d has no metadata", op)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		got, ok := OpByName(op.String())
		if !ok {
			t.Fatalf("OpByName(%q) not found", op.String())
		}
		if got != op {
			t.Fatalf("OpByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
}

func TestOpByNameUnknown(t *testing.T) {
	if _, ok := OpByName("FROBNICATE"); ok {
		t.Fatal("unexpected opcode FROBNICATE")
	}
}

func TestOpClassPredicates(t *testing.T) {
	cases := []struct {
		op                         Op
		multiop, multiprefix, redu bool
	}{
		{MADD, true, false, false},
		{MMIN, true, false, false},
		{MPADD, false, true, false},
		{MPMIN, false, true, false},
		{RADD, false, false, true},
		{RMIN, false, false, true},
		{ADD, false, false, false},
		{LD, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsMultiop(); got != c.multiop {
			t.Errorf("%s.IsMultiop() = %v, want %v", c.op, got, c.multiop)
		}
		if got := c.op.IsMultiprefix(); got != c.multiprefix {
			t.Errorf("%s.IsMultiprefix() = %v, want %v", c.op, got, c.multiprefix)
		}
		if got := c.op.IsReduction(); got != c.redu {
			t.Errorf("%s.IsReduction() = %v, want %v", c.op, got, c.redu)
		}
	}
}

func TestCombineKind(t *testing.T) {
	cases := map[Op]Op{
		MADD: ADD, MPADD: ADD, RADD: ADD,
		MAND: AND, MPAND: AND, RAND: AND,
		MOR: OR, MPOR: OR, ROR: OR,
		MMAX: MAX, MPMAX: MAX, RMAX: MAX,
		MMIN: MIN, MPMIN: MIN, RMIN: MIN,
	}
	for op, want := range cases {
		if got := op.CombineKind(); got != want {
			t.Errorf("%s.CombineKind() = %v, want %v", op, got, want)
		}
	}
}

func TestCombineKindPanicsOnNonCombining(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ADD.CombineKind()
}

func TestIsBinaryALU(t *testing.T) {
	for _, op := range []Op{ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, MIN, MAX, SEQ, SNE, SLT, SLE, SGT, SGE} {
		if !op.IsBinaryALU() {
			t.Errorf("%s should be binary ALU", op)
		}
	}
	for _, op := range []Op{NEG, NOT, SEL, LD, ST, MADD, BEQZ, HALT, NOP, LDI} {
		if op.IsBinaryALU() {
			t.Errorf("%s should not be binary ALU", op)
		}
	}
}

func TestControlFlag(t *testing.T) {
	for _, op := range []Op{BEQZ, BNEZ, JMP, CALL, RET, SPLIT, JOIN, BAR, SETTHICK, NUMA, PRAM, HALT} {
		if !op.Info().Control {
			t.Errorf("%s should be marked Control", op)
		}
	}
	for _, op := range []Op{ADD, LD, ST, MPADD, PRINT} {
		if op.Info().Control {
			t.Errorf("%s should not be marked Control", op)
		}
	}
}

func TestMemRefFlags(t *testing.T) {
	for _, op := range []Op{LD, ST, MADD, MOR, MPADD, MPMIN} {
		if !op.Info().MemRef {
			t.Errorf("%s should be a shared memory reference", op)
		}
	}
	for _, op := range []Op{LDL, STL} {
		if !op.Info().LocalRef || op.Info().MemRef {
			t.Errorf("%s should be a local (not shared) memory reference", op)
		}
	}
}
