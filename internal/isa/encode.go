package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Binary object format for assembled TCF programs ("TCFB"): a deterministic,
// versioned encoding of the instruction stream, labels and data segments,
// suitable for distributing compiled kernels between the assembler/compiler
// and the machine loader.
//
// Layout (all integers varint-encoded, signed values zigzag):
//
//	magic "TCFB", version byte
//	name: len, bytes
//	instrs: count, then per instruction:
//	    op, rd, ra, rb, rc (bytes)
//	    flags byte (bit0 = HasImm)
//	    imm (signed varint)
//	    target+1 (0 marks none)
//	    sym: len, bytes
//	    arms: count, then per arm: thickReg byte, thickImm, target+1, sym
//	labels: count, then (len, name, pc) sorted by name
//	data: count, then (addr, wordCount, words...)
const (
	binMagic   = "TCFB"
	binVersion = 1
)

// Encode serializes p into the TCFB object format.
func Encode(p *Program) []byte {
	var b bytes.Buffer
	b.WriteString(binMagic)
	b.WriteByte(binVersion)
	putString(&b, p.Name)
	putUvarint(&b, uint64(len(p.Instrs)))
	for _, in := range p.Instrs {
		b.WriteByte(byte(in.Op))
		b.WriteByte(byte(in.Rd))
		b.WriteByte(byte(in.Ra))
		b.WriteByte(byte(in.Rb))
		b.WriteByte(byte(in.Rc))
		var flags byte
		if in.HasImm {
			flags |= 1
		}
		b.WriteByte(flags)
		putVarint(&b, in.Imm)
		putUvarint(&b, uint64(in.Target+1))
		putString(&b, in.Sym)
		putUvarint(&b, uint64(len(in.Arms)))
		for _, arm := range in.Arms {
			b.WriteByte(byte(arm.Thick))
			putVarint(&b, arm.ThickImm)
			putUvarint(&b, uint64(arm.Target+1))
			putString(&b, arm.Sym)
		}
	}
	names := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		names = append(names, name)
	}
	sort.Strings(names)
	putUvarint(&b, uint64(len(names)))
	for _, name := range names {
		putString(&b, name)
		putUvarint(&b, uint64(p.Labels[name]))
	}
	putUvarint(&b, uint64(len(p.Data)))
	for _, d := range p.Data {
		putVarint(&b, d.Addr)
		putUvarint(&b, uint64(len(d.Words)))
		for _, w := range d.Words {
			putVarint(&b, w)
		}
	}
	return b.Bytes()
}

// Decode parses a TCFB object and validates the program.
func Decode(data []byte) (*Program, error) {
	r := &binReader{data: data}
	if string(r.bytes(4)) != binMagic {
		return nil, fmt.Errorf("isa: not a TCFB object")
	}
	if v := r.byte(); v != binVersion {
		return nil, fmt.Errorf("isa: unsupported TCFB version %d", v)
	}
	p := &Program{Labels: map[string]int{}}
	p.Name = r.string()
	n := int(r.uvarint())
	if r.err == nil && n > len(data) {
		return nil, fmt.Errorf("isa: corrupt TCFB: %d instructions in %d bytes", n, len(data))
	}
	for i := 0; i < n && r.err == nil; i++ {
		var in Instr
		in.Op = Op(r.byte())
		in.Rd = Reg(r.byte())
		in.Ra = Reg(r.byte())
		in.Rb = Reg(r.byte())
		in.Rc = Reg(r.byte())
		flags := r.byte()
		in.HasImm = flags&1 != 0
		in.Imm = r.varint()
		in.Target = int(r.uvarint()) - 1
		in.Sym = r.string()
		arms := int(r.uvarint())
		if r.err == nil && arms > len(data) {
			return nil, fmt.Errorf("isa: corrupt TCFB: %d arms", arms)
		}
		for a := 0; a < arms && r.err == nil; a++ {
			var arm SplitArm
			arm.Thick = Reg(r.byte())
			arm.ThickImm = r.varint()
			arm.Target = int(r.uvarint()) - 1
			arm.Sym = r.string()
			in.Arms = append(in.Arms, arm)
		}
		p.Instrs = append(p.Instrs, in)
	}
	labels := int(r.uvarint())
	if r.err == nil && labels > len(data) {
		return nil, fmt.Errorf("isa: corrupt TCFB: %d labels", labels)
	}
	for i := 0; i < labels && r.err == nil; i++ {
		name := r.string()
		pc := int(r.uvarint())
		p.Labels[name] = pc
	}
	segs := int(r.uvarint())
	if r.err == nil && segs > len(data) {
		return nil, fmt.Errorf("isa: corrupt TCFB: %d data segments", segs)
	}
	for i := 0; i < segs && r.err == nil; i++ {
		var d DataSeg
		d.Addr = r.varint()
		words := int(r.uvarint())
		if r.err == nil && words > len(data)*8 {
			return nil, fmt.Errorf("isa: corrupt TCFB: %d words", words)
		}
		for w := 0; w < words && r.err == nil; w++ {
			d.Words = append(d.Words, r.varint())
		}
		p.Data = append(p.Data, d)
	}
	if r.err != nil {
		return nil, fmt.Errorf("isa: corrupt TCFB: %w", r.err)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("isa: trailing garbage in TCFB object (%d bytes)", len(data)-r.off)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func putVarint(b *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func putString(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("truncated %s at offset %d", what, r.off)
	}
}

func (r *binReader) byte() byte {
	if r.err != nil || r.off >= len(r.data) {
		r.fail("byte")
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *binReader) bytes(n int) []byte {
	if r.err != nil || r.off+n > len(r.data) {
		r.fail("bytes")
		return make([]byte, n)
	}
	v := r.data[r.off : r.off+n]
	r.off += n
	return v
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) string() string {
	n := int(r.uvarint())
	if r.err != nil || n > len(r.data)-r.off {
		r.fail("string")
		return ""
	}
	return string(r.bytes(n))
}
