package isa

// Block discovery for the compiled (fused) backend: a program partitions
// into straight-line instruction runs bounded by control transfers, branch
// targets and memory-resolution boundaries. A run of Fusible instructions
// can execute as one superinstruction — no memory system, combining network,
// output buffer or flow-structure interaction can occur inside it, so an
// engine may execute the whole run back to back and touch the shared-memory
// resolver and fault machinery only at the run's boundary.

// Thick reports whether the instruction executes one operation per lane of
// the flow running it (as opposed to a single flow-level operation). The
// property depends only on the instruction encoding — register classes and
// the opcode — never on flow state.
func (in Instr) Thick() bool {
	switch in.Op.Info().Args {
	case ArgsDImm, ArgsD:
		return in.Rd.IsVector()
	case ArgsDA, ArgsDAB, ArgsDABC, ArgsDMem, ArgsDMemB:
		return in.Rd.IsVector()
	case ArgsMemB: // ST, STL, multioperations
		// Multioperations are inherently per-thread: every implicit
		// thread contributes, even when both operands are flow-common.
		if in.Op.IsMultiop() {
			return true
		}
		return in.Ra.IsVector() || in.Rb.IsVector()
	case ArgsSV: // reductions read every lane
		return true
	case ArgsSrc:
		return in.Op == PRINT && !in.HasImm && in.Ra.IsVector()
	}
	return false
}

// Sliceable reports whether the instruction can be split lane-by-lane across
// steps (the Balanced variant's budget discipline): thick, and not one of
// the flow-atomic thick forms (reductions, PRINT).
func (in Instr) Sliceable() bool {
	return in.Thick() && !in.Op.IsReduction() && in.Op != PRINT
}

// Fusible reports whether op may live inside a fused straight-line run: a
// pure register-file operation with no memory reference, no combining
// traffic, no output, and no flow-level control or structure effect. Every
// other opcode is a fusion boundary — it interacts with step-resolved
// machinery (shared/local memory, combiners, the output buffer) or with the
// flow population, so a compiled backend must surface at it.
func (op Op) Fusible() bool {
	info := op.Info()
	if info.Control || info.MemRef || info.LocalRef {
		return false
	}
	if op.IsReduction() {
		return false
	}
	switch op {
	case NOP, PRINT, PRINTS:
		// NOP is flow-atomic (it generates a scalar slice, not lane work);
		// PRINT/PRINTS append to the step-resolved output buffer.
		return false
	}
	return true
}

// Block is one discovered straight-line run: instructions [Start, End).
// Fused reports whether the run consists of Fusible instructions (a
// superinstruction candidate); non-fusible instructions appear as singleton
// blocks with Fused == false.
type Block struct {
	Start, End int
	Fused      bool
}

// Len returns the number of instructions in the block.
func (b Block) Len() int { return b.End - b.Start }

// leaders marks every PC that must start a new block: the program entry,
// every control-transfer target (branch, call, split arm), and every
// call-return continuation (CALL pushes PC+1, so PC+1 is reachable
// non-sequentially).
func leaders(p *Program) []bool {
	lead := make([]bool, p.Len()+1)
	if p.Len() > 0 {
		lead[p.Entry()] = true
		lead[0] = true
	}
	mark := func(pc int) {
		if pc >= 0 && pc < len(lead) {
			lead[pc] = true
		}
	}
	for pc, in := range p.Instrs {
		switch in.Op.Info().Args {
		case ArgsTgt, ArgsCondTgt:
			mark(in.Target)
			mark(pc + 1) // fall-through / continuation after the transfer
			if in.Op == CALL {
				mark(pc + 1)
			}
		case ArgsSplit:
			for _, arm := range in.Arms {
				mark(arm.Target)
			}
			mark(pc + 1) // the parent's resume PC
		default:
			if in.Op.Info().Control {
				mark(pc + 1)
			}
		}
	}
	return lead
}

// Blocks partitions p into straight-line runs: maximal sequences of Fusible
// instructions containing no interior branch target, plus singleton blocks
// for every fusion boundary (control transfers, memory-resolution ops,
// reductions, outputs). The blocks tile [0, p.Len()) exactly, in order.
func Blocks(p *Program) []Block {
	n := p.Len()
	if n == 0 {
		return nil
	}
	lead := leaders(p)
	var blocks []Block
	for pc := 0; pc < n; {
		if !p.Instrs[pc].Op.Fusible() {
			blocks = append(blocks, Block{Start: pc, End: pc + 1})
			pc++
			continue
		}
		end := pc + 1
		for end < n && p.Instrs[end].Op.Fusible() && !lead[end] {
			end++
		}
		blocks = append(blocks, Block{Start: pc, End: end, Fused: true})
		pc = end
	}
	return blocks
}

// RunLengths returns, for every PC, the length of the fused straight-line
// run starting there: rl[pc] > 1 means instructions [pc, pc+rl[pc]) are all
// Fusible with no interior branch target, so an engine may execute them as
// one superinstruction. Every suffix of a run is itself a run (a branch may
// land mid-block), so rl decreases by one along a run; fusion boundaries
// have rl == 1.
func RunLengths(p *Program) []int {
	n := p.Len()
	rl := make([]int, n)
	for _, b := range Blocks(p) {
		if !b.Fused {
			rl[b.Start] = 1
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			rl[pc] = b.End - pc
		}
	}
	return rl
}
