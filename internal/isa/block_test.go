package isa

import (
	"testing"
)

func TestFusible(t *testing.T) {
	fusible := []Op{ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR,
		MIN, MAX, SEQ, SLT, LDI, MOV, NEG, NOT, SEL,
		TID, FID, THICK, GID, PID, NPROC, NGRP}
	for _, op := range fusible {
		if !op.Fusible() {
			t.Errorf("%s: want fusible", op)
		}
	}
	boundaries := []Op{LD, ST, LDL, STL, MADD, MPADD,
		RADD, RMAX, JMP, BEQZ, BNEZ, CALL, RET,
		SETTHICK, NUMA, PRAM, SPLIT, JOIN, BAR, HALT,
		NOP, PRINT, PRINTS}
	for _, op := range boundaries {
		if op.Fusible() {
			t.Errorf("%s: want fusion boundary", op)
		}
	}
}

// tile checks that blocks partition [0, n) exactly, in order.
func tile(t *testing.T, blocks []Block, n int) {
	t.Helper()
	pc := 0
	for _, b := range blocks {
		if b.Start != pc || b.End <= b.Start {
			t.Fatalf("blocks do not tile: got %+v at pc %d", b, pc)
		}
		pc = b.End
	}
	if pc != n {
		t.Fatalf("blocks cover [0,%d), want [0,%d)", pc, n)
	}
}

func TestBlocksStraightLine(t *testing.T) {
	b := NewBuilder("straight")
	b.Ldi(V(0), 1)
	b.ALUI(ADD, V(1), V(0), 2)
	b.ALU(MUL, V(2), V(1), V(0))
	b.St(RegNone, 100, V(2))
	b.Op(HALT)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	blocks := Blocks(p)
	tile(t, blocks, p.Len())
	want := []Block{
		{Start: 0, End: 3, Fused: true},
		{Start: 3, End: 4},
		{Start: 4, End: 5},
	}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %+v, want %+v", blocks, want)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("block %d = %+v, want %+v", i, blocks[i], want[i])
		}
	}
	rl := RunLengths(p)
	wantRL := []int{3, 2, 1, 1, 1}
	for pc, w := range wantRL {
		if rl[pc] != w {
			t.Fatalf("rl[%d] = %d, want %d (all %v)", pc, rl[pc], w, rl)
		}
	}
}

func TestBlocksBranchTargetSplitsRun(t *testing.T) {
	// A backward branch lands in the middle of what would otherwise be one
	// fused run: the target must start its own block.
	b := NewBuilder("branch")
	b.Ldi(S(0), 4)                 // 0
	b.Label("loop")                //
	b.Ldi(V(0), 7)                 // 1  <- branch target
	b.ALUI(ADD, V(1), V(0), 1)     // 2
	b.ALUI(SUB, S(0), S(0), 1)     // 3
	b.Branch(BNEZ, S(0), "loop")   // 4
	b.Op(HALT)                     // 5
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	blocks := Blocks(p)
	tile(t, blocks, p.Len())
	rl := RunLengths(p)
	if rl[0] != 1 {
		t.Fatalf("rl[0] = %d, want 1 (run must stop at the branch target)", rl[0])
	}
	if rl[1] != 3 {
		t.Fatalf("rl[1] = %d, want 3 (the loop body run)", rl[1])
	}
	if rl[4] != 1 || rl[5] != 1 {
		t.Fatalf("control ops must be singleton runs, got %v", rl)
	}
}

func TestRunLengthsSuffixProperty(t *testing.T) {
	// Every suffix of a run is itself a run: rl decreases by exactly one
	// along a fused block. Checked over a program with several block shapes.
	src := `
		LDI V0, 3
		ADD V1, V0, 5
		MUL V2, V1, V1
		SUB V3, V2, V0
		ST 64, V3
		LDI V4, 9
		NEG V5, V4
		HALT
	`
	p := MustAssemble("suffix", src)
	rl := RunLengths(p)
	for _, b := range Blocks(p) {
		if !b.Fused {
			if rl[b.Start] != 1 {
				t.Fatalf("boundary block %+v has rl %d", b, rl[b.Start])
			}
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			if rl[pc] != b.End-pc {
				t.Fatalf("rl[%d] = %d inside block %+v, want %d", pc, rl[pc], b, b.End-pc)
			}
		}
	}
}
