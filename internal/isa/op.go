// Package isa defines the instruction set of the extended PRAM-NUMA TCF
// machine: a register machine whose instructions execute across the whole
// thickness of a thick control flow (TCF).
//
// Registers come in two classes, mirroring the paper's register economy
// (Section 3.3): thread-wise "vector" registers V0..V31 hold one value per
// implicit thread of the flow, while flow-common "scalar" registers S0..S15
// hold a single value shared by the entire flow. Control transfer is always
// flow-level: a branch condition must be scalar, because the whole flow
// selects exactly one path through a control statement (Section 2.2).
// Thread-dependent choice is expressed through thickness manipulation
// (SETTHICK), the parallel statement (SPLIT/JOIN), or predication (SEL).
package isa

import "fmt"

// Op identifies an instruction opcode.
type Op uint8

// Opcodes of the TCF machine.
const (
	NOP Op = iota

	// Data movement.
	LDI // LDI d, imm     : d <- imm (broadcast when d is thread-wise)
	MOV // MOV d, a       : d <- a

	// Binary arithmetic/logic: d <- a op b (or a op imm).
	ADD
	SUB
	MUL
	DIV // division by zero yields 0, as on the simulated hardware trap-free ALU
	MOD // modulo by zero yields 0
	AND
	OR
	XOR
	SHL
	SHR
	MIN
	MAX

	// Unary: d <- op a.
	NEG
	NOT

	// Comparisons producing 0/1: d <- a cmp b (or imm).
	SEQ
	SNE
	SLT
	SLE
	SGT
	SGE

	// Predicated select: d[i] <- c[i] != 0 ? a[i] : b[i].
	// Encoded as Rd, Ra=c, Rb=a, Rc=b.
	SEL

	// Identity sources.
	TID   // TID d   : d[i] <- i (thread index within the flow); scalar d gets 0
	FID   // FID d   : d <- flow id (scalar)
	THICK // THICK d : d <- current thickness (scalar)
	GID   // GID d   : d <- processor-group index executing the flow (scalar)
	PID   // PID d   : d <- processor index executing the flow (scalar)
	NPROC // NPROC d : d <- total number of TCF processors P*Tp (scalar)
	NGRP  // NGRP d  : d <- number of processor groups P (scalar)

	// Shared memory access; effective address = a + Imm (per-thread when a
	// is thread-wise).
	LD // LD d, a+imm  : d <- SM[a+imm]
	ST // ST a+imm, b  : SM[a+imm] <- b

	// Local memory access (the group's local memory block).
	LDL // LDL d, a+imm : d <- LM[a+imm]
	STL // STL a+imm, b : LM[a+imm] <- b

	// Multioperations: all participating threads (across all flows in the
	// step) combine into a shared memory word in one step.
	MADD // MADD a+imm, b : SM[a+imm] <- SM[a+imm] + sum(b[i])
	MAND
	MOR
	MMAX
	MMIN

	// Multiprefixes: like multioperations but each thread also receives the
	// running value before its own contribution, ordered by (flow id,
	// thread index) — the deterministic ordered multiprefix of the paper's
	// prefix(...) primitive.
	MPADD // MPADD d, a+imm, b : d[i] <- prefix; SM[a+imm] accumulates
	MPAND
	MPOR
	MPMAX
	MPMIN

	// Flow-internal reductions to a scalar register.
	RADD // RADD s, v : s <- sum_i v[i]
	RAND
	ROR
	RMAX
	RMIN

	// Flow-level control transfer (conditions must be scalar).
	BEQZ // BEQZ s, target
	BNEZ // BNEZ s, target
	JMP  // JMP target
	CALL // CALL target : push PC+1 on the flow call stack
	RET  // RET         : pop return address

	// Thickness and mode control.
	SETTHICK // SETTHICK s|imm : set flow thickness (PRAM mode), >=0; 0 parks the flow
	NUMA     // NUMA s|imm     : enter NUMA mode with bunch length T (thickness 1/T)
	PRAM     // PRAM           : return to PRAM mode with thickness 1

	// Parallel statement: split the flow into child flows (one per arm) and
	// suspend until all children JOIN.
	SPLIT
	JOIN

	// Global barrier: the flow waits until every live flow reaches a BAR.
	// Lockstep variants execute it in one step; the multi-instruction
	// variant pays real synchronization.
	BAR

	// Diagnostics.
	PRINT  // PRINT a : append a's value(s) to the machine output
	PRINTS // PRINTS "str"

	HALT // terminate the flow

	opCount // sentinel
)

// ArgKind describes how an instruction's operand fields are used.
type ArgKind uint8

const (
	ArgsNone    ArgKind = iota // no operands (NOP, RET, JOIN, BAR, PRAM, HALT)
	ArgsDImm                   // Rd, Imm                  (LDI)
	ArgsDA                     // Rd, Ra                   (MOV, NEG, NOT, identity sources use ArgsD)
	ArgsD                      // Rd                       (TID, FID, ...)
	ArgsDAB                    // Rd, Ra, Rb|Imm           (binary ops)
	ArgsDABC                   // Rd, Ra, Rb, Rc           (SEL)
	ArgsDMem                   // Rd, Ra+Imm               (LD, LDL)
	ArgsMemB                   // Ra+Imm, Rb               (ST, STL, multiops)
	ArgsDMemB                  // Rd, Ra+Imm, Rb           (multiprefixes)
	ArgsSV                     // Sd, Va                   (reductions)
	ArgsCondTgt                // Sa, Target               (BEQZ, BNEZ)
	ArgsTgt                    // Target                   (JMP, CALL)
	ArgsSrc                    // Ra|Imm                   (SETTHICK, NUMA, PRINT)
	ArgsStr                    // Sym                      (PRINTS)
	ArgsSplit                  // Arms                     (SPLIT)
)

// OpInfo holds static metadata about an opcode.
type OpInfo struct {
	Name string
	Args ArgKind
	// MemRef is true for instructions that reference shared memory.
	MemRef bool
	// LocalRef is true for instructions that reference local memory.
	LocalRef bool
	// Control is true for instructions that may change the flow PC
	// non-sequentially or alter flow structure.
	Control bool
}

var opInfos = [opCount]OpInfo{
	NOP:      {Name: "NOP", Args: ArgsNone},
	LDI:      {Name: "LDI", Args: ArgsDImm},
	MOV:      {Name: "MOV", Args: ArgsDA},
	ADD:      {Name: "ADD", Args: ArgsDAB},
	SUB:      {Name: "SUB", Args: ArgsDAB},
	MUL:      {Name: "MUL", Args: ArgsDAB},
	DIV:      {Name: "DIV", Args: ArgsDAB},
	MOD:      {Name: "MOD", Args: ArgsDAB},
	AND:      {Name: "AND", Args: ArgsDAB},
	OR:       {Name: "OR", Args: ArgsDAB},
	XOR:      {Name: "XOR", Args: ArgsDAB},
	SHL:      {Name: "SHL", Args: ArgsDAB},
	SHR:      {Name: "SHR", Args: ArgsDAB},
	MIN:      {Name: "MIN", Args: ArgsDAB},
	MAX:      {Name: "MAX", Args: ArgsDAB},
	NEG:      {Name: "NEG", Args: ArgsDA},
	NOT:      {Name: "NOT", Args: ArgsDA},
	SEQ:      {Name: "SEQ", Args: ArgsDAB},
	SNE:      {Name: "SNE", Args: ArgsDAB},
	SLT:      {Name: "SLT", Args: ArgsDAB},
	SLE:      {Name: "SLE", Args: ArgsDAB},
	SGT:      {Name: "SGT", Args: ArgsDAB},
	SGE:      {Name: "SGE", Args: ArgsDAB},
	SEL:      {Name: "SEL", Args: ArgsDABC},
	TID:      {Name: "TID", Args: ArgsD},
	FID:      {Name: "FID", Args: ArgsD},
	THICK:    {Name: "THICK", Args: ArgsD},
	GID:      {Name: "GID", Args: ArgsD},
	PID:      {Name: "PID", Args: ArgsD},
	NPROC:    {Name: "NPROC", Args: ArgsD},
	NGRP:     {Name: "NGRP", Args: ArgsD},
	LD:       {Name: "LD", Args: ArgsDMem, MemRef: true},
	ST:       {Name: "ST", Args: ArgsMemB, MemRef: true},
	LDL:      {Name: "LDL", Args: ArgsDMem, LocalRef: true},
	STL:      {Name: "STL", Args: ArgsMemB, LocalRef: true},
	MADD:     {Name: "MADD", Args: ArgsMemB, MemRef: true},
	MAND:     {Name: "MAND", Args: ArgsMemB, MemRef: true},
	MOR:      {Name: "MOR", Args: ArgsMemB, MemRef: true},
	MMAX:     {Name: "MMAX", Args: ArgsMemB, MemRef: true},
	MMIN:     {Name: "MMIN", Args: ArgsMemB, MemRef: true},
	MPADD:    {Name: "MPADD", Args: ArgsDMemB, MemRef: true},
	MPAND:    {Name: "MPAND", Args: ArgsDMemB, MemRef: true},
	MPOR:     {Name: "MPOR", Args: ArgsDMemB, MemRef: true},
	MPMAX:    {Name: "MPMAX", Args: ArgsDMemB, MemRef: true},
	MPMIN:    {Name: "MPMIN", Args: ArgsDMemB, MemRef: true},
	RADD:     {Name: "RADD", Args: ArgsSV},
	RAND:     {Name: "RAND", Args: ArgsSV},
	ROR:      {Name: "ROR", Args: ArgsSV},
	RMAX:     {Name: "RMAX", Args: ArgsSV},
	RMIN:     {Name: "RMIN", Args: ArgsSV},
	BEQZ:     {Name: "BEQZ", Args: ArgsCondTgt, Control: true},
	BNEZ:     {Name: "BNEZ", Args: ArgsCondTgt, Control: true},
	JMP:      {Name: "JMP", Args: ArgsTgt, Control: true},
	CALL:     {Name: "CALL", Args: ArgsTgt, Control: true},
	RET:      {Name: "RET", Args: ArgsNone, Control: true},
	SETTHICK: {Name: "SETTHICK", Args: ArgsSrc, Control: true},
	NUMA:     {Name: "NUMA", Args: ArgsSrc, Control: true},
	PRAM:     {Name: "PRAM", Args: ArgsNone, Control: true},
	SPLIT:    {Name: "SPLIT", Args: ArgsSplit, Control: true},
	JOIN:     {Name: "JOIN", Args: ArgsNone, Control: true},
	BAR:      {Name: "BAR", Args: ArgsNone, Control: true},
	PRINT:    {Name: "PRINT", Args: ArgsSrc},
	PRINTS:   {Name: "PRINTS", Args: ArgsStr},
	HALT:     {Name: "HALT", Args: ArgsNone, Control: true},
}

// Info returns the static metadata for op.
func (op Op) Info() OpInfo {
	if op >= opCount {
		return OpInfo{Name: fmt.Sprintf("OP(%d)", op)}
	}
	return opInfos[op]
}

// String returns the assembler mnemonic of op.
func (op Op) String() string { return op.Info().Name }

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opCount }

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

// IsMultiop reports whether op is a combining multioperation (no per-thread
// return value).
func (op Op) IsMultiop() bool { return op >= MADD && op <= MMIN }

// IsMultiprefix reports whether op is an ordered multiprefix.
func (op Op) IsMultiprefix() bool { return op >= MPADD && op <= MPMIN }

// IsReduction reports whether op is a flow-internal reduction.
func (op Op) IsReduction() bool { return op >= RADD && op <= RMIN }

// IsBinaryALU reports whether op is a plain three-operand ALU operation.
func (op Op) IsBinaryALU() bool {
	return (op >= ADD && op <= MAX) || (op >= SEQ && op <= SGE)
}

// CombineKind returns the combining operator underlying a multioperation,
// multiprefix or reduction, expressed as the equivalent binary ALU opcode
// (ADD, AND, OR, MAX or MIN). It panics for other opcodes.
func (op Op) CombineKind() Op {
	switch op {
	case MADD, MPADD, RADD:
		return ADD
	case MAND, MPAND, RAND:
		return AND
	case MOR, MPOR, ROR:
		return OR
	case MMAX, MPMAX, RMAX:
		return MAX
	case MMIN, MPMIN, RMIN:
		return MIN
	}
	panic("isa: CombineKind on non-combining opcode " + op.String())
}

// opsByName maps mnemonics to opcodes for the assembler.
var opsByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op := Op(0); op < opCount; op++ {
		m[opInfos[op].Name] = op
	}
	return m
}()

// OpByName looks up an opcode by its assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}
