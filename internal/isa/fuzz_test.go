package isa

import "testing"

// FuzzAssemble checks the assembler never panics and that anything it
// accepts disassembles to source it accepts again.
func FuzzAssemble(f *testing.F) {
	f.Add(sampleProgram)
	f.Add("main:\nLDI S0, 5\nHALT")
	f.Add("SPLIT 8 -> a, S1 -> a\na: JOIN")
	f.Add(".data 10: 1 2 3\nNOP")
	f.Add("BNEZ S0, main\nmain: HALT")
	f.Add("PRINTS \"x\\n\"")
	f.Add("LD V1, V0+100\nST 5, V1\nMPADD V2, S0-3, V1")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		dis := p.Disassemble()
		p2, err := Assemble("fuzz2", dis)
		if err != nil {
			t.Fatalf("accepted source does not round-trip: %v\noriginal:\n%s\ndisassembly:\n%s", err, src, dis)
		}
		if p2.Len() != p.Len() {
			t.Fatalf("round-trip changed length %d -> %d", p.Len(), p2.Len())
		}
	})
}

// FuzzDecode checks the TCFB decoder never panics or over-allocates on
// corrupt input, and that valid objects re-encode identically.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("TCFB"))
	f.Add(Encode(MustAssemble("s", "main:\nHALT")))
	f.Add(Encode(MustAssemble("s", sampleProgram)))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		blob := Encode(p)
		q, err := Decode(blob)
		if err != nil {
			t.Fatalf("re-encode of accepted object fails: %v", err)
		}
		if q.Len() != p.Len() {
			t.Fatal("re-encode changed instruction count")
		}
	})
}
