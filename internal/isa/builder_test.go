package isa

import (
	"strings"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	if b.PC() != 0 {
		t.Fatal("fresh PC")
	}
	b.Label("main")
	b.Ldi(S(0), 5)
	if b.PC() != 1 {
		t.Fatal("PC after one emit")
	}
	b.ALU(ADD, V(1), V(2), V(3))
	b.ALUI(SUB, S(1), S(0), 2)
	b.Mov(V(0), S(0))
	b.Unary(NEG, V(1), V(1))
	b.Sel(V(2), V(0), V(1), V(3))
	b.Id(TID, V(4))
	b.Ld(V(5), V(4), 100)
	b.St(V(4), 200, V(5))
	b.Ldl(V(6), V(4), 0)
	b.Stl(V(4), 8, V(6))
	b.Multi(MADD, V(4), 300, V(5))
	b.Prefix(MPADD, V(7), V(4), 400, V(5))
	b.Reduce(RADD, S(2), V(7))
	b.SetThick(S(0))
	b.SetThickImm(4)
	b.Numa(S(0))
	b.NumaImm(2)
	b.Print(V(7))
	b.PrintImm(9)
	b.Prints("x")
	b.Op(BAR)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 23 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestBuilderLabelErrors(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("dup label: %v", err)
	}

	b = NewBuilder("t")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("undefined: %v", err)
	}

	b = NewBuilder("t")
	b.Split(ArmImm(2, "ghost"))
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined SPLIT label") {
		t.Fatalf("split label: %v", err)
	}
}

func TestBuilderKindGuards(t *testing.T) {
	for _, f := range []func(b *Builder){
		func(b *Builder) { b.Multi(ADD, V(0), 0, V(1)) },
		func(b *Builder) { b.Prefix(MADD, V(0), V(1), 0, V(2)) },
		func(b *Builder) { b.Reduce(MPADD, S(0), V(1)) },
	} {
		b := NewBuilder("t")
		f(b)
		b.Halt()
		if _, err := b.Build(); err == nil {
			t.Fatal("kind-mismatched emit accepted")
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("t")
	b.Jmp("ghost")
	b.MustBuild()
}

func TestBuilderCallBranch(t *testing.T) {
	b := NewBuilder("t")
	b.Label("main")
	b.Call("fn")
	b.Branch(BEQZ, S(0), "main")
	b.Halt()
	b.Label("fn")
	b.Op(RET)
	p := b.MustBuild()
	if p.Instrs[0].Target != 3 || p.Instrs[1].Target != 0 {
		t.Fatalf("targets: %+v", p.Instrs[:2])
	}
}

func TestProgramEntryWithoutMain(t *testing.T) {
	b := NewBuilder("t")
	b.Label("start")
	b.Halt()
	p := b.MustBuild()
	if p.Entry() != 0 {
		t.Fatal("entry should default to 0")
	}
}
