package isa

import (
	"testing"
	"testing/quick"
)

func TestRegClasses(t *testing.T) {
	if !V(0).IsVector() || V(0).IsScalar() {
		t.Error("V0 must be vector")
	}
	if !V(31).IsVector() {
		t.Error("V31 must be vector")
	}
	if !S(0).IsScalar() || S(0).IsVector() {
		t.Error("S0 must be scalar")
	}
	if !S(15).IsScalar() {
		t.Error("S15 must be scalar")
	}
	if RegNone.Valid() {
		t.Error("RegNone must be invalid")
	}
}

func TestRegIndex(t *testing.T) {
	for i := 0; i < NumVRegs; i++ {
		if V(i).Index() != i {
			t.Fatalf("V(%d).Index() = %d", i, V(i).Index())
		}
	}
	for i := 0; i < NumSRegs; i++ {
		if S(i).Index() != i {
			t.Fatalf("S(%d).Index() = %d", i, S(i).Index())
		}
	}
}

func TestRegConstructorsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { V(-1) }, func() { V(NumVRegs) },
		func() { S(-1) }, func() { S(NumSRegs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register index")
				}
			}()
			f()
		}()
	}
}

// Property: every valid register name round-trips through String/ParseReg.
func TestRegStringParseRoundTrip(t *testing.T) {
	prop := func(n uint8) bool {
		r := Reg(n % NumRegs)
		got, err := ParseReg(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRegErrors(t *testing.T) {
	for _, s := range []string{"", "V", "S", "X3", "V32", "S16", "V-1", "S-2", "Vx", "7"} {
		if _, err := ParseReg(s); err == nil {
			t.Errorf("ParseReg(%q) should fail", s)
		}
	}
}

func TestParseRegLowercase(t *testing.T) {
	r, err := ParseReg("v5")
	if err != nil || r != V(5) {
		t.Fatalf("ParseReg(v5) = %v, %v", r, err)
	}
	r, err = ParseReg("s2")
	if err != nil || r != S(2) {
		t.Fatalf("ParseReg(s2) = %v, %v", r, err)
	}
}
