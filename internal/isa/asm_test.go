package isa

import (
	"math/rand"
	"strings"
	"testing"
)

const sampleProgram = `
; vector add: c = a + b with thickness = 8 (Section 4 example)
.data 100: 1 2 3 4 5 6 7 8
.data 200: 10 20 30 40 50 60 70 80

main:
    LDI S0, 8
    SETTHICK S0
    TID V0
    LD V1, V0+100     ; a[i]
    LD V2, V0+200     ; b[i]
    ADD V3, V1, V2
    ST V0+300, V3     ; c[i]
    HALT
`

func TestAssembleSample(t *testing.T) {
	p, err := Assemble("sample", sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 8 {
		t.Fatalf("got %d instructions, want 8", p.Len())
	}
	if p.Entry() != 0 {
		t.Fatalf("entry = %d, want 0", p.Entry())
	}
	if len(p.Data) != 2 || p.Data[0].Addr != 100 || len(p.Data[1].Words) != 8 {
		t.Fatalf("bad data segments: %+v", p.Data)
	}
	if p.Instrs[3].Op != LD || p.Instrs[3].Ra != V(0) || p.Instrs[3].Imm != 100 {
		t.Fatalf("bad LD: %+v", p.Instrs[3])
	}
}

func TestAssembleBranchesAndSplit(t *testing.T) {
	src := `
main:
    LDI S0, 1
    BNEZ S0, body
    JMP done
body:
    SPLIT 8 -> armA, S1 -> armB
    JMP done
armA:
    JOIN
armB:
    JOIN
done:
    HALT
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Instrs[1]
	if b.Op != BNEZ || b.Target != p.Labels["body"] {
		t.Fatalf("BNEZ target %d, want %d", b.Target, p.Labels["body"])
	}
	sp := p.Instrs[3]
	if sp.Op != SPLIT || len(sp.Arms) != 2 {
		t.Fatalf("bad SPLIT: %+v", sp)
	}
	if sp.Arms[0].Thick != RegNone || sp.Arms[0].ThickImm != 8 || sp.Arms[0].Target != p.Labels["armA"] {
		t.Fatalf("bad arm 0: %+v", sp.Arms[0])
	}
	if sp.Arms[1].Thick != S(1) || sp.Arms[1].Target != p.Labels["armB"] {
		t.Fatalf("bad arm 1: %+v", sp.Arms[1])
	}
}

func TestAssemblePrints(t *testing.T) {
	p, err := Assemble("t", `PRINTS "hello, world"`+"\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Op != PRINTS || p.Instrs[0].Sym != "hello, world" {
		t.Fatalf("bad PRINTS: %+v", p.Instrs[0])
	}
}

func TestAssembleComments(t *testing.T) {
	src := "NOP ; trailing\n// whole line\nNOP // other style\nPRINTS \"a;b//c\" ; keep quoted\nHALT"
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("got %d instructions, want 4", p.Len())
	}
	if p.Instrs[2].Sym != "a;b//c" {
		t.Fatalf("comment stripping corrupted string: %q", p.Instrs[2].Sym)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"unknown-op", "FOO V1, V2", "unknown mnemonic"},
		{"bad-reg", "MOV V1, X9", "invalid register"},
		{"missing-label", "JMP nowhere", "undefined label"},
		{"dup-label", "a:\nNOP\na:\nNOP", "duplicate label"},
		{"wrong-arity", "ADD V1, V2", "expects 3 operand"},
		{"vector-cond", "BEQZ V1, x\nx: NOP", "must be scalar"},
		{"bad-split", "SPLIT 8", "malformed SPLIT arm"},
		{"bad-data", ".data x: 1 2", "malformed .data"},
		{"neg-thick", "SETTHICK -3", "negative thickness"},
		{"zero-bunch", "NUMA 0", "must be >= 1"},
		{"red-scalar-src", "RADD S0, S1", "must be thread-wise"},
		{"red-vector-dst", "RADD V0, V1", "must be scalar"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.name, c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestAssembleAbsoluteAddress(t *testing.T) {
	p, err := Assemble("t", "LD V1, 500\nST 501, V1\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Ra != RegNone || p.Instrs[0].Imm != 500 {
		t.Fatalf("bad absolute LD: %+v", p.Instrs[0])
	}
	if p.Instrs[1].Ra != RegNone || p.Instrs[1].Imm != 501 {
		t.Fatalf("bad absolute ST: %+v", p.Instrs[1])
	}
}

func TestAssembleNegativeDisplacement(t *testing.T) {
	p, err := Assemble("t", "LD V1, V0-4\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Ra != V(0) || p.Instrs[0].Imm != -4 {
		t.Fatalf("bad displacement: %+v", p.Instrs[0])
	}
}

// randomInstr builds a random but valid instruction (no control transfers,
// which need label context).
func randomInstr(rng *rand.Rand) Instr {
	vec := func() Reg { return V(rng.Intn(NumVRegs)) }
	scl := func() Reg { return S(rng.Intn(NumSRegs)) }
	anyReg := func() Reg {
		if rng.Intn(2) == 0 {
			return vec()
		}
		return scl()
	}
	imm := func() int64 { return int64(rng.Intn(2001) - 1000) }
	switch rng.Intn(10) {
	case 0:
		return Instr{Op: LDI, Rd: anyReg(), Imm: imm(), HasImm: true}
	case 1:
		return Instr{Op: MOV, Rd: anyReg(), Ra: anyReg()}
	case 2:
		ops := []Op{ADD, SUB, MUL, DIV, AND, OR, XOR, SHL, SHR, MIN, MAX, SEQ, SNE, SLT, SLE, SGT, SGE}
		in := Instr{Op: ops[rng.Intn(len(ops))], Rd: anyReg(), Ra: anyReg()}
		if rng.Intn(2) == 0 {
			in.Rb = anyReg()
		} else {
			in.Imm, in.HasImm = imm(), true
		}
		return in
	case 3:
		return Instr{Op: SEL, Rd: vec(), Ra: vec(), Rb: vec(), Rc: vec()}
	case 4:
		ops := []Op{TID, FID, THICK, GID, PID, NPROC, NGRP}
		return Instr{Op: ops[rng.Intn(len(ops))], Rd: anyReg()}
	case 5:
		if rng.Intn(2) == 0 {
			return Instr{Op: LD, Rd: anyReg(), Ra: anyReg(), Imm: imm()}
		}
		return Instr{Op: STL, Ra: anyReg(), Imm: imm(), Rb: anyReg()}
	case 6:
		ops := []Op{MADD, MAND, MOR, MMAX, MMIN}
		return Instr{Op: ops[rng.Intn(len(ops))], Ra: anyReg(), Imm: imm(), Rb: anyReg()}
	case 7:
		ops := []Op{MPADD, MPAND, MPOR, MPMAX, MPMIN}
		return Instr{Op: ops[rng.Intn(len(ops))], Rd: vec(), Ra: anyReg(), Imm: imm(), Rb: anyReg()}
	case 8:
		ops := []Op{RADD, RAND, ROR, RMAX, RMIN}
		return Instr{Op: ops[rng.Intn(len(ops))], Rd: scl(), Ra: vec()}
	default:
		switch rng.Intn(3) {
		case 0:
			return Instr{Op: SETTHICK, Imm: int64(rng.Intn(100)), HasImm: true}
		case 1:
			return Instr{Op: NUMA, Ra: scl()}
		default:
			return Instr{Op: PRINT, Ra: anyReg()}
		}
	}
}

// Property: disassembling a random program and re-assembling it yields the
// same instruction stream.
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder("rt")
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			b.Emit(randomInstr(rng))
		}
		b.Halt()
		p := b.MustBuild()
		p2, err := Assemble("rt", p.Disassemble())
		if err != nil {
			t.Fatalf("trial %d: reassembly failed: %v\n%s", trial, err, p.Disassemble())
		}
		if p2.Len() != p.Len() {
			t.Fatalf("trial %d: length %d != %d", trial, p2.Len(), p.Len())
		}
		for pc := range p.Instrs {
			a, bI := p.Instrs[pc], p2.Instrs[pc]
			if a.String() != bI.String() {
				t.Fatalf("trial %d pc %d: %q != %q", trial, pc, a.String(), bI.String())
			}
		}
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	p := MustAssemble("t", "main:\nNOP\nloop:\nJMP loop\nHALT")
	dis := p.Disassemble()
	for _, want := range []string{"main:", "loop:", "JMP loop"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}
