package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Reg identifies a register. Values 0..NumVRegs-1 name the thread-wise
// registers V0..V31; values NumVRegs..NumVRegs+NumSRegs-1 name the
// flow-common scalar registers S0..S15.
type Reg uint8

// Register file dimensions.
const (
	NumVRegs = 32 // thread-wise registers per flow
	NumSRegs = 16 // flow-common scalar registers per flow
	NumRegs  = NumVRegs + NumSRegs

	// RegNone marks an unused register field.
	RegNone Reg = 0xFF
)

// V returns the i'th thread-wise register.
func V(i int) Reg {
	if i < 0 || i >= NumVRegs {
		panic(fmt.Sprintf("isa: V register index %d out of range", i))
	}
	return Reg(i)
}

// S returns the i'th flow-common scalar register.
func S(i int) Reg {
	if i < 0 || i >= NumSRegs {
		panic(fmt.Sprintf("isa: S register index %d out of range", i))
	}
	return Reg(NumVRegs + i)
}

// IsScalar reports whether r names a flow-common scalar register.
func (r Reg) IsScalar() bool { return r >= NumVRegs && r < NumRegs }

// IsVector reports whether r names a thread-wise register.
func (r Reg) IsVector() bool { return r < NumVRegs }

// Valid reports whether r names a register (and is not RegNone).
func (r Reg) Valid() bool { return r < NumRegs }

// Index returns the index of r within its class (V or S bank).
func (r Reg) Index() int {
	if r.IsScalar() {
		return int(r) - NumVRegs
	}
	return int(r)
}

// String returns the assembler name of r (V7, S3, or "-" for RegNone).
func (r Reg) String() string {
	switch {
	case r.IsVector():
		return "V" + strconv.Itoa(int(r))
	case r.IsScalar():
		return "S" + strconv.Itoa(int(r)-NumVRegs)
	case r == RegNone:
		return "-"
	default:
		return fmt.Sprintf("R?%d", int(r))
	}
}

// ParseReg parses an assembler register name ("V0".."V31", "S0".."S15").
func ParseReg(s string) (Reg, error) {
	if len(s) < 2 {
		return RegNone, fmt.Errorf("isa: invalid register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return RegNone, fmt.Errorf("isa: invalid register %q", s)
	}
	switch strings.ToUpper(s[:1]) {
	case "V":
		if n < 0 || n >= NumVRegs {
			return RegNone, fmt.Errorf("isa: V register %q out of range", s)
		}
		return V(n), nil
	case "S":
		if n < 0 || n >= NumSRegs {
			return RegNone, fmt.Errorf("isa: S register %q out of range", s)
		}
		return S(n), nil
	}
	return RegNone, fmt.Errorf("isa: invalid register %q", s)
}
