package isa

import (
	"math/rand"
	"testing"
)

// buildRandomProgram creates a program with random instructions plus some
// control flow and data.
func buildRandomProgram(rng *rand.Rand) *Program {
	b := NewBuilder("rand")
	b.Data(int64(rng.Intn(1000)), int64(rng.Intn(100)), -7, 42)
	b.Label("main")
	n := 1 + rng.Intn(25)
	for i := 0; i < n; i++ {
		b.Emit(randomInstr(rng))
	}
	b.Label("loop")
	b.Emit(randomInstr(rng))
	b.Branch(BNEZ, S(0), "loop")
	b.Split(ArmImm(int64(rng.Intn(10)), "arm"), ArmReg(S(1), "arm"))
	b.Jmp("end")
	b.Label("arm")
	b.Op(JOIN)
	b.Label("end")
	b.Prints("done\n\"quoted\"")
	b.Halt()
	return b.MustBuild()
}

func programsEqual(t *testing.T, a, b *Program) {
	t.Helper()
	if a.Name != b.Name {
		t.Fatalf("name %q != %q", a.Name, b.Name)
	}
	if len(a.Instrs) != len(b.Instrs) {
		t.Fatalf("instr count %d != %d", len(a.Instrs), len(b.Instrs))
	}
	for i := range a.Instrs {
		x, y := a.Instrs[i], b.Instrs[i]
		if x.Op != y.Op || x.Rd != y.Rd || x.Ra != y.Ra || x.Rb != y.Rb || x.Rc != y.Rc ||
			x.Imm != y.Imm || x.HasImm != y.HasImm || x.Target != y.Target || x.Sym != y.Sym {
			t.Fatalf("instr %d: %+v != %+v", i, x, y)
		}
		if len(x.Arms) != len(y.Arms) {
			t.Fatalf("instr %d arm count", i)
		}
		for j := range x.Arms {
			if x.Arms[j] != y.Arms[j] {
				t.Fatalf("instr %d arm %d: %+v != %+v", i, j, x.Arms[j], y.Arms[j])
			}
		}
	}
	if len(a.Labels) != len(b.Labels) {
		t.Fatalf("label count")
	}
	for name, pc := range a.Labels {
		if b.Labels[name] != pc {
			t.Fatalf("label %q: %d != %d", name, pc, b.Labels[name])
		}
	}
	if len(a.Data) != len(b.Data) {
		t.Fatalf("data count")
	}
	for i := range a.Data {
		if a.Data[i].Addr != b.Data[i].Addr || len(a.Data[i].Words) != len(b.Data[i].Words) {
			t.Fatalf("data seg %d", i)
		}
		for j := range a.Data[i].Words {
			if a.Data[i].Words[j] != b.Data[i].Words[j] {
				t.Fatalf("data seg %d word %d", i, j)
			}
		}
	}
}

// Property: Encode/Decode round-trips arbitrary valid programs exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		p := buildRandomProgram(rng)
		blob := Encode(p)
		q, err := Decode(blob)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		programsEqual(t, p, q)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE"),
		[]byte("TCFB\xff"), // bad version
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p := buildRandomProgram(rand.New(rand.NewSource(5)))
	blob := Encode(p)
	for cut := 5; cut < len(blob)-1; cut += 7 {
		if _, err := Decode(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	p := MustAssemble("t", "main: HALT")
	blob := append(Encode(p), 0xAB)
	if _, err := Decode(blob); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDecodeRejectsInvalidProgram(t *testing.T) {
	// Hand-corrupt an opcode to an invalid value: Validate must reject.
	p := MustAssemble("t", "main: NOP\nHALT")
	p2 := *p
	p2.Instrs = append([]Instr(nil), p.Instrs...)
	p2.Instrs[0].Op = Op(250)
	blob := Encode(&p2)
	if _, err := Decode(blob); err == nil {
		t.Fatal("invalid opcode accepted")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	p := buildRandomProgram(rand.New(rand.NewSource(11)))
	a, b := Encode(p), Encode(p)
	if string(a) != string(b) {
		t.Fatal("encoding is not deterministic")
	}
}
