package exper

import (
	"fmt"

	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
	"tcfpram/internal/workload"
)

// Table1Row is one measured column of the paper's Table 1 for a machine with
// P groups of Tp processors, R scalar registers and balanced bound b.
type Table1Row struct {
	Variant variant.Kind

	NumTCFs          int  // TCF storage slots: P*Tp
	ThreadsUnbounded bool // "u" in the paper
	Threads          int  // P*Tp when bounded

	// RegsPerThread is the measured register words held per implicit
	// thread at thickness u (paper: R/u + m for TCF variants, R for
	// thread variants).
	RegsPerThread float64

	// FetchesPerTCF is the measured machine-wide instruction fetches per
	// thick instruction of thickness u (paper: 1, u/b, or one per
	// thread).
	FetchesPerTCF float64

	// TaskSwitchCost is cycles per task switch. Measured for variants
	// whose task model is exercised by the multitask workload (TCF
	// variants); analytic (Table 1 formulas) otherwise.
	TaskSwitchCost     float64
	TaskSwitchMeasured bool

	// FlowBranchCost is cycles per flow branch (split child). Measured
	// for control-parallel variants; analytic otherwise.
	FlowBranchCost     float64
	FlowBranchMeasured bool

	PRAM, NUMA, MIMD bool
	SequentialVia    string
}

// fetchProgram builds a straight-line program of k thick instructions at
// thickness u for the TCF variants, or the equivalent per-thread scalar
// program for the fixed-thread variants.
func fetchProgram(kind variant.Kind, k, u int) (*isa.Program, int) {
	b := isa.NewBuilder("fetches")
	b.Label("main")
	prologue := 0
	if kind.Props().FixedThreads {
		for i := 0; i < k; i++ {
			b.ALUI(isa.ADD, isa.S(1), isa.S(1), 1)
		}
		b.Halt()
		return b.MustBuild(), prologue
	}
	if kind.Props().VariableThickness {
		b.SetThickImm(int64(u))
		prologue = 1
	}
	for i := 0; i < k; i++ {
		b.ALUI(isa.ADD, isa.V(1), isa.V(1), 1)
	}
	b.Halt()
	return b.MustBuild(), prologue
}

// measureFetchesAndRegs runs the straight-line workload and returns the
// machine-wide fetches per thick instruction and the register words per
// implicit thread.
func measureFetchesAndRegs(kind variant.Kind, k, u int) (fetches, regsPerThread float64, err error) {
	prog, prologue := fetchProgram(kind, k, u)
	cfg := machine.Default(kind)
	if kind == variant.FixedThickness {
		cfg.ProcsPerGroup = u
		cfg.VectorWidth = u
	}
	m, err := machine.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	if err := m.LoadProgram(prog); err != nil {
		return 0, 0, err
	}
	if _, err := m.Run(); err != nil {
		return 0, 0, err
	}
	var totalFetches, nonCompute int64
	var regWords int64
	var threads int64
	for _, f := range m.Flows() {
		totalFetches += f.InstrFetches
		regWords += f.RegWordsPeak
	}
	if kind.Props().FixedThreads {
		// Every thread fetches its own HALT.
		nonCompute = int64(len(m.Flows()))
		threads = int64(len(m.Flows()))
	} else {
		nonCompute = int64(prologue) + 1 // SETTHICK + HALT of the single flow
		threads = int64(u)
	}
	fetches = float64(totalFetches-nonCompute) / float64(k)
	regsPerThread = float64(regWords) / float64(threads)
	return fetches, regsPerThread, nil
}

// measureTaskSwitch oversubscribes the TCF slots with independent tasks and
// returns the measured cycles per task switch.
func measureTaskSwitch(kind variant.Kind) (float64, error) {
	m, err := runWorkload(kind, workload.Multitask(3*P*Tp, 4), nil)
	if err != nil {
		return 0, err
	}
	s := m.Stats()
	if s.TaskSwitches == 0 {
		return 0, fmt.Errorf("multitask workload produced no task switches on %v", kind)
	}
	return float64(s.TaskSwitchCycles) / float64(s.TaskSwitches), nil
}

// measureFlowBranch splits a flow and returns the measured cycles per
// created child.
func measureFlowBranch(kind variant.Kind) (float64, error) {
	m, err := runWorkload(kind, workload.ConditionalHalves(styleFor(kind), 8), nil)
	if err != nil {
		return 0, err
	}
	s := m.Stats()
	children := int64(0)
	for _, f := range m.Flows() {
		if f.Parent != nil {
			children++
		}
	}
	if children == 0 {
		return 0, fmt.Errorf("no splits on %v", kind)
	}
	return float64(s.FlowBranchCycles) / float64(children), nil
}

func styleFor(kind variant.Kind) workload.Style {
	switch kind {
	case variant.MultiInstruction:
		return workload.StyleFork
	default:
		return workload.StyleTCF
	}
}

// Table1 measures the cost/property table for thickness u and k straight-
// line instructions.
func Table1(k, u int) ([]Table1Row, error) {
	var rows []Table1Row
	for _, kind := range variant.Kinds() {
		props := kind.Props()
		analytic := variant.Analytic(kind, P, Tp, R, B)
		row := Table1Row{
			Variant: kind,
			NumTCFs: P * Tp,
			PRAM:    props.PRAMOperation, NUMA: props.NUMAOperation,
			MIMD: props.MIMD, SequentialVia: props.SequentialVia,
			ThreadsUnbounded: analytic.NumThreadsUnbounded,
			Threads:          analytic.NumThreads,
		}
		if kind == variant.FixedThickness {
			row.NumTCFs = 1 // one fixed-width flow on the single processor
		}
		f, r, err := measureFetchesAndRegs(kind, 8, u)
		if err != nil {
			return nil, err
		}
		row.FetchesPerTCF, row.RegsPerThread = f, r
		if props.ControlParallel {
			// TCF task model: measure.
			ts, err := measureTaskSwitch(kind)
			if err != nil {
				return nil, err
			}
			row.TaskSwitchCost, row.TaskSwitchMeasured = ts, true
			fb, err := measureFlowBranch(kind)
			if err != nil {
				return nil, err
			}
			row.FlowBranchCost, row.FlowBranchMeasured = fb, true
		} else {
			row.TaskSwitchCost = float64(analytic.TaskSwitchCost(Tp, R))
			row.FlowBranchCost = float64(analytic.FlowBranchCost(R))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders measured Table 1.
func FormatTable1(rows []Table1Row, u int) string {
	t := &table{header: []string{"property", "single-instr", "balanced", "multi-instr", "single-op", "conf-single-op", "fixed-thick"}}
	cell := func(f func(Table1Row) string) []string {
		out := make([]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, f(r))
		}
		return out
	}
	addRow := func(name string, f func(Table1Row) string) {
		t.add(append([]string{name}, cell(f)...)...)
	}
	addRow("number of TCFs", func(r Table1Row) string { return itoa(int64(r.NumTCFs)) })
	addRow("number of threads", func(r Table1Row) string {
		if r.ThreadsUnbounded {
			return "u (unbounded)"
		}
		return itoa(int64(r.Threads))
	})
	addRow(fmt.Sprintf("regs/thread @u=%d", u), func(r Table1Row) string { return f2(r.RegsPerThread) })
	addRow(fmt.Sprintf("fetches/TCF @u=%d", u), func(r Table1Row) string { return f2(r.FetchesPerTCF) })
	addRow("task switch (cyc)", func(r Table1Row) string {
		s := f2(r.TaskSwitchCost)
		if !r.TaskSwitchMeasured {
			s += "*"
		}
		return s
	})
	addRow("flow branch (cyc)", func(r Table1Row) string {
		s := f2(r.FlowBranchCost)
		if !r.FlowBranchMeasured {
			s += "*"
		}
		return s
	})
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	addRow("PRAM operation", func(r Table1Row) string { return yn(r.PRAM) })
	addRow("NUMA operation", func(r Table1Row) string { return yn(r.NUMA) })
	addRow("sequential via", func(r Table1Row) string { return r.SequentialVia })
	addRow("MIMD", func(r Table1Row) string { return yn(r.MIMD) })
	return t.String() + "(* analytic Table 1 value: the variant's task/branch model is not exercised by the TCF workloads)\n"
}
