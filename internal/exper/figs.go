package exper

import (
	"strings"
	"sync"

	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/network"
	"tcfpram/internal/trace"
	"tcfpram/internal/variant"
	"tcfpram/internal/workload"
)

// ---- Figure 1: ESM substrate — distance-aware network under random traffic ----

// Fig1Row is one network size under uniform random traffic.
type Fig1Row struct {
	Nodes      int
	Kind       network.Kind
	AvgLatency float64
	AvgHops    float64
	MaxLatency int64
	Throughput float64
}

// Fig1 sweeps mesh sizes under uniform random traffic (the bandwidth/latency
// assumption behind emulated shared memory).
func Fig1(perNode int) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, side := range []int{2, 4, 6, 8} {
		for _, kind := range []network.Kind{network.Mesh2D, network.Torus2D} {
			s, err := network.RandomTraffic(network.Config{
				Kind: kind, Width: side, Height: side, LinkCapacity: 2,
			}, perNode, 42)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig1Row{
				Nodes: side * side, Kind: kind,
				AvgLatency: s.AvgLatency, AvgHops: s.AvgHops,
				MaxLatency: s.MaxLatency, Throughput: s.Throughput,
			})
		}
	}
	return rows, nil
}

// FormatFig1 renders the Figure 1 sweep.
func FormatFig1(rows []Fig1Row) string {
	t := &table{header: []string{"nodes", "network", "avg latency", "avg hops", "max latency", "throughput"}}
	for _, r := range rows {
		t.add(itoa(int64(r.Nodes)), r.Kind.String(), f2(r.AvgLatency), f2(r.AvgHops),
			itoa(r.MaxLatency), f2(r.Throughput))
	}
	return t.String()
}

// ---- Figure 2: PRAM-NUMA — bunching recovers low-TLP utilization ----

// Fig2Row reports the sequential-chain cost at one NUMA bunch size.
type Fig2Row struct {
	Bunch  int
	Cycles int64
	Steps  int64
	// StepSpeedup is steps(bunch 1) / steps(bunch T): the paper's
	// proportional law — a bunch of T executes T instructions per step.
	StepSpeedup float64
	// CycleSpeedup is the wall-cycle gain; it saturates at roughly
	// 1 + PipelineDepth in this machine because the dynamic pipeline
	// charges only executed operations plus a fixed per-step fill.
	CycleSpeedup float64
}

// Fig2 runs the low-TLP chain with growing bunch lengths.
func Fig2(chain int) ([]Fig2Row, error) {
	var rows []Fig2Row
	var baseCycles, baseSteps int64
	for _, bunch := range []int{1, 2, 4, 8, 16} {
		m, err := runWorkload(variant.SingleInstruction, workload.LowTLP(chain, bunch), nil)
		if err != nil {
			return nil, err
		}
		s := m.Stats()
		if bunch == 1 {
			baseCycles, baseSteps = s.Cycles, s.Steps
		}
		rows = append(rows, Fig2Row{Bunch: bunch, Cycles: s.Cycles, Steps: s.Steps,
			StepSpeedup:  float64(baseSteps) / float64(s.Steps),
			CycleSpeedup: float64(baseCycles) / float64(s.Cycles)})
	}
	return rows, nil
}

// FormatFig2 renders the bunch sweep.
func FormatFig2(rows []Fig2Row) string {
	t := &table{header: []string{"bunch", "cycles", "steps", "step speedup", "cycle speedup"}}
	for _, r := range rows {
		t.add(itoa(int64(r.Bunch)), itoa(r.Cycles), itoa(r.Steps), f2(r.StepSpeedup), f2(r.CycleSpeedup))
	}
	return t.String()
}

// ---- Figures 3/4: TCF block structure and thickness evolution ----

// fig34Source is the paper's Figure 3 flow graph: a thickness-23 block, a
// thickness-15 block with a branching statement, and two parallel branches
// of thicknesses 12 and 3.
const fig34Source = `
shared int sink[32];

func main() {
    #23;
    sink[tid % 32] = tid;
    sink[tid % 32] += 1;
    #15;
    sink[tid % 32] += 2;
    int which = 1;
    if (which) {
        sink[0] = 99;
    }
    parallel {
        #12: sink[tid % 32] += 3;
        #3:  sink[tid] += 4;
    }
    #1;
}
`

// Fig34 runs the Figure 3/4 program under tracing and returns the flow
// spans (block structure) and flow 0's thickness timeline.
func Fig34() ([]trace.FlowSpan, []int, *machine.Machine, error) {
	cfg := machine.Default(variant.SingleInstruction)
	cfg.TraceEnabled = true
	m, err := machine.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	prog, err := compileFig34()
	if err != nil {
		return nil, nil, nil, err
	}
	if err := m.LoadProgram(prog); err != nil {
		return nil, nil, nil, err
	}
	if _, err := m.Run(); err != nil {
		return nil, nil, nil, err
	}
	return trace.Spans(m), trace.ThicknessTimeline(m, 0), m, nil
}

// ---- Figures 6-12: per-variant execution schedules ----

// scheduleProgram builds the two-flow workload of Figures 7/8: flows of
// thickness 12 and 3 each executing a few thick instructions. Programs are
// immutable once built, so the figure harness shares one copy across runs.
var scheduleProgram = sync.OnceValue(func() *isa.Program {
	b := isa.NewBuilder("schedule")
	b.Label("main")
	b.Split(isa.ArmImm(12, "thickArm"), isa.ArmImm(3, "thinArm"))
	b.Halt()
	b.Label("thickArm")
	for i := 0; i < 3; i++ {
		b.ALUI(isa.ADD, isa.V(1), isa.V(1), 1)
	}
	b.Op(isa.JOIN)
	b.Label("thinArm")
	for i := 0; i < 3; i++ {
		b.ALUI(isa.ADD, isa.V(1), isa.V(1), 1)
	}
	b.Op(isa.JOIN)
	return b.MustBuild()
})

// FigSchedule runs the 12/3 two-flow workload on the given variant with
// tracing and returns the machine (for rendering) plus summary measures.
type FigScheduleResult struct {
	Variant    variant.Kind
	Steps      int64
	Cycles     int64
	MaxStepOps int // largest per-step per-group lane count observed
	Machine    *machine.Machine
}

// FigSchedule reproduces the execution shape of Figures 7 (single
// instruction: thick slows thin), 8 (balanced: bounded slices) and 9
// (multi-instruction: several instructions per step).
func FigSchedule(kind variant.Kind, tweak func(*machine.Config)) (*FigScheduleResult, error) {
	cfg := machine.Default(kind)
	cfg.TraceEnabled = true
	cfg.Groups = 2
	cfg.ProcsPerGroup = 2
	cfg.Topology = nil
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadProgram(scheduleProgram()); err != nil {
		return nil, err
	}
	if _, err := m.Run(); err != nil {
		return nil, err
	}
	res := &FigScheduleResult{Variant: kind, Steps: m.Stats().Steps, Cycles: m.Stats().Cycles, Machine: m}
	perGroup := make([]int, cfg.Groups)
	for _, rec := range m.Trace() {
		for i := range perGroup {
			perGroup[i] = 0
		}
		for _, s := range rec.Slices {
			if !s.Op.Info().Control {
				perGroup[s.Group] += s.Lanes
			}
		}
		for _, n := range perGroup {
			if n > res.MaxStepOps {
				res.MaxStepOps = n
			}
		}
	}
	return res, nil
}

// Fig6 shows the single-processor latency-hiding view: two resident flows on
// one group execute their slices sequentially within each step.
func Fig6() (*machine.Machine, error) {
	cfg := machine.Default(variant.SingleInstruction)
	cfg.TraceEnabled = true
	cfg.Groups = 1
	// Three TCF slots: the suspended split parent keeps its buffer entry
	// while both children are resident.
	cfg.ProcsPerGroup = 3
	cfg.Topology = nil
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadProgram(scheduleProgram()); err != nil {
		return nil, err
	}
	if _, err := m.Run(); err != nil {
		return nil, err
	}
	return m, nil
}

// ---- Figures 10/11: low-TLP utilization of the thread machines ----

// Fig1011Row reports utilization of a thread machine at a given number of
// active threads, optionally with NUMA bunching.
type Fig1011Row struct {
	Variant       variant.Kind
	ActiveThreads int
	NUMABunch     int
	Utilization   float64
	Cycles        int64
}

// lowTLPThreadProgram keeps only `active` threads computing a chain of k
// dependent scalar instructions; the rest halt immediately. With bunch > 1
// the active threads declare NUMA execution (configurable single-operation
// variant only).
func lowTLPThreadProgram(active, k, bunch int) *isa.Program {
	b := isa.NewBuilder("lowtlp-threads")
	b.Label("main")
	b.Id(isa.FID, isa.S(0))
	b.ALUI(isa.SGE, isa.S(1), isa.S(0), int64(active))
	b.Branch(isa.BNEZ, isa.S(1), "done")
	if bunch > 1 {
		b.NumaImm(int64(bunch))
	}
	for i := 0; i < k; i++ {
		b.ALUI(isa.ADD, isa.S(2), isa.S(2), 1)
	}
	b.Label("done").Halt()
	return b.MustBuild()
}

// Fig1011 measures the low-TLP utilization problem (Figure 10: the
// single-operation ESM wastes the machine when few threads are active) and
// its PRAM-NUMA fix (Figure 11: bunching).
func Fig1011(k int) ([]Fig1011Row, error) {
	var rows []Fig1011Row
	run := func(kind variant.Kind, active, bunch int) error {
		cfg := machine.Default(kind)
		m, err := machine.New(cfg)
		if err != nil {
			return err
		}
		if err := m.LoadProgram(lowTLPThreadProgram(active, k, bunch)); err != nil {
			return err
		}
		if _, err := m.Run(); err != nil {
			return err
		}
		rows = append(rows, Fig1011Row{Variant: kind, ActiveThreads: active, NUMABunch: bunch,
			Utilization: m.Stats().Utilization(), Cycles: m.Stats().Cycles})
		return nil
	}
	for _, active := range []int{16, 4, 1} {
		if err := run(variant.SingleOperation, active, 1); err != nil {
			return nil, err
		}
	}
	for _, bunch := range []int{1, 4, 8} {
		if err := run(variant.ConfigurableSingleOperation, 1, bunch); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatFig1011 renders the utilization table.
func FormatFig1011(rows []Fig1011Row) string {
	t := &table{header: []string{"variant", "active threads", "NUMA bunch", "utilization", "cycles"}}
	for _, r := range rows {
		t.add(r.Variant.String(), itoa(int64(r.ActiveThreads)), itoa(int64(r.NUMABunch)),
			f2(r.Utilization), itoa(r.Cycles))
	}
	return t.String()
}

// ---- Figure 12: the vector/SIMD reduction pays for both branch paths ----

// Fig12 compares the two-way conditional on the TCF model (two parallel
// flows) versus the fixed-thickness vector model (sequential predicated
// execution of both paths).
type Fig12Result struct {
	TCFOps    int64
	SIMDOps   int64
	TCFCycles int64
	SIMDCycle int64
}

// Fig12 runs ConditionalHalves both ways.
func Fig12(size int) (*Fig12Result, error) {
	tcfM, err := runWorkload(variant.SingleInstruction, workload.ConditionalHalves(workload.StyleTCF, size), nil)
	if err != nil {
		return nil, err
	}
	simdM, err := runWorkload(variant.FixedThickness, workload.ConditionalHalves(workload.StyleSIMD, size),
		func(c *machine.Config) {
			c.ProcsPerGroup = size
			c.VectorWidth = size
		})
	if err != nil {
		return nil, err
	}
	return &Fig12Result{
		TCFOps: tcfM.Stats().Ops, SIMDOps: simdM.Stats().Ops,
		TCFCycles: tcfM.Stats().Cycles, SIMDCycle: simdM.Stats().Cycles,
	}, nil
}

// ---- Figure 13: the TCF pipeline fetches once per TCF instruction ----

// Fig13Row reports fetch amortization at one thickness.
type Fig13Row struct {
	Thickness    int
	TCFFetches   float64 // fetches per thick instruction, single-instruction variant
	XMTFetches   float64 // multi-instruction variant (per-thread delivery)
	BalFetches   float64 // balanced variant, bound B
	ThreadFetch  float64 // single-operation variant (u threads execute the code)
	TCFUtilPct   float64
	OverheadNote string
}

// Fig13 sweeps thickness and measures instruction-fetch amortization — the
// implementation argument of Section 3.3 (fetch the instruction word once
// per TCF).
func Fig13() ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, u := range []int{1, 4, 16} {
		si, _, err := measureFetchesAndRegs(variant.SingleInstruction, 8, u)
		if err != nil {
			return nil, err
		}
		mi, _, err := measureFetchesAndRegs(variant.MultiInstruction, 8, u)
		if err != nil {
			return nil, err
		}
		bal, _, err := measureFetchesAndRegs(variant.Balanced, 8, u)
		if err != nil {
			return nil, err
		}
		row := Fig13Row{Thickness: u, TCFFetches: si, XMTFetches: mi, BalFetches: bal}
		if u == 16 {
			th, _, err := measureFetchesAndRegs(variant.SingleOperation, 8, u)
			if err != nil {
				return nil, err
			}
			row.ThreadFetch = th
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig13 renders the fetch sweep.
func FormatFig13(rows []Fig13Row) string {
	t := &table{header: []string{"thickness", "tcf fetches/instr", "balanced", "xmt", "threads"}}
	for _, r := range rows {
		th := "-"
		if r.ThreadFetch > 0 {
			th = f2(r.ThreadFetch)
		}
		t.add(itoa(int64(r.Thickness)), f2(r.TCFFetches), f2(r.BalFetches), f2(r.XMTFetches), th)
	}
	return t.String()
}

// compileFig34 compiles the Figure 3/4 source through the tcf-e toolchain.
// (Defined here to avoid importing codegen in multiple files.)
var compileFig34 = func() func() (*isa.Program, error) {
	return func() (*isa.Program, error) {
		return compileSource("fig34", fig34Source)
	}
}()

// renderSchedule renders a schedule figure as timeline + gantt.
func RenderSchedule(m *machine.Machine) string {
	var b strings.Builder
	b.WriteString(trace.Timeline(m))
	b.WriteString("\n")
	b.WriteString(trace.Gantt(m))
	return b.String()
}
