package exper

import (
	"tcfpram/internal/codegen"
	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
	"tcfpram/internal/workload"
)

// compileSource routes tcf-e compilation for the experiments.
func compileSource(name, src string) (*isa.Program, error) {
	c, err := codegen.CompileSource(name, src)
	if err != nil {
		return nil, err
	}
	return c.Program, nil
}

// S4Row compares one Section 4 construct across programming styles.
type S4Row struct {
	Experiment string
	Style      string
	Variant    variant.Kind
	Size       int
	Steps      int64
	Cycles     int64
	Instrs     int64 // fetched instruction count (code-size/issue proxy)
	Ops        int64
}

func s4row(exp string, style workload.Style, kind variant.Kind, size int, m *machine.Machine) S4Row {
	return S4Row{
		Experiment: exp, Style: style.String(), Variant: kind, Size: size,
		Steps: m.Stats().Steps, Cycles: m.Stats().Cycles,
		Instrs: m.Stats().InstrFetches, Ops: m.Stats().Ops + m.Stats().ScalarOps,
	}
}

// S4a compares the vector-add kernel: the thickness statement versus the
// fixed-thread loop (more data elements than threads, Section 4's first
// example).
func S4a(sizes []int) ([]S4Row, error) {
	var rows []S4Row
	for _, size := range sizes {
		m, err := runWorkload(variant.SingleInstruction, workload.VectorAdd(workload.StyleTCF, size, 0, 0), nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, s4row("S4a-vecadd", workload.StyleTCF, variant.SingleInstruction, size, m))
		m, err = runWorkload(variant.SingleOperation, workload.VectorAdd(workload.StyleThread, size, P*Tp, 0), nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, s4row("S4a-vecadd", workload.StyleThread, variant.SingleOperation, size, m))
	}
	return rows, nil
}

// S4b is the fewer-data-than-threads case: the guard `if (tid < size)`
// versus just setting the thickness.
func S4b(size int) ([]S4Row, error) {
	var rows []S4Row
	m, err := runWorkload(variant.SingleInstruction, workload.VectorAdd(workload.StyleTCF, size, 0, 0), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4b-small", workload.StyleTCF, variant.SingleInstruction, size, m))
	m, err = runWorkload(variant.SingleOperation, workload.VectorAdd(workload.StyleThread, size, P*Tp, 0), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4b-small", workload.StyleThread, variant.SingleOperation, size, m))
	return rows, nil
}

// S4c is the low-TLP case: PRAM-mode thickness-1 execution versus declaring
// NUMA execution (#1/T).
func S4c(chain int) ([]S4Row, error) {
	var rows []S4Row
	m, err := runWorkload(variant.SingleInstruction, workload.LowTLP(chain, 0), nil)
	if err != nil {
		return nil, err
	}
	r := s4row("S4c-lowtlp", workload.StyleTCF, variant.SingleInstruction, chain, m)
	r.Style = "pram-thick1"
	rows = append(rows, r)
	m, err = runWorkload(variant.SingleInstruction, workload.LowTLP(chain, 8), nil)
	if err != nil {
		return nil, err
	}
	r = s4row("S4c-lowtlp", workload.StyleTCF, variant.SingleInstruction, chain, m)
	r.Style = "numa-1/8"
	rows = append(rows, r)
	return rows, nil
}

// S4d is the two-way conditional: two parallel TCFs versus the thread `if`
// versus predicated SIMD execution.
func S4d(size int) ([]S4Row, error) {
	var rows []S4Row
	m, err := runWorkload(variant.SingleInstruction, workload.ConditionalHalves(workload.StyleTCF, size), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4d-cond", workload.StyleTCF, variant.SingleInstruction, size, m))
	m, err = runWorkload(variant.SingleOperation, workload.ConditionalHalves(workload.StyleThread, size), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4d-cond", workload.StyleThread, variant.SingleOperation, size, m))
	m, err = runWorkload(variant.FixedThickness, workload.ConditionalHalves(workload.StyleSIMD, size),
		func(c *machine.Config) {
			c.ProcsPerGroup = size
			c.VectorWidth = size
		})
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4d-cond", workload.StyleSIMD, variant.FixedThickness, size, m))
	return rows, nil
}

// S4e is the multiprefix: the looping fixed-thread form versus the single
// thick prefix(...) call.
func S4e(size int) ([]S4Row, error) {
	var rows []S4Row
	m, err := runWorkload(variant.SingleInstruction, workload.PrefixSum(workload.StyleTCF, size, 0), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4e-prefix", workload.StyleTCF, variant.SingleInstruction, size, m))
	m, err = runWorkload(variant.SingleOperation, workload.PrefixSum(workload.StyleThread, size, P*Tp), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4e-prefix", workload.StyleThread, variant.SingleOperation, size, m))
	return rows, nil
}

// S4f is the dependent loop (log-step scan): lockstep TCF execution versus
// the fork/join rounds the multi-instruction (XMT) model needs.
func S4f(size int) ([]S4Row, error) {
	var rows []S4Row
	m, err := runWorkload(variant.SingleInstruction, workload.DependentLoop(workload.StyleTCF, size), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4f-deploop", workload.StyleTCF, variant.SingleInstruction, size, m))
	// Fork/join rounds on the same lockstep machine isolate the split/join
	// overhead the paper attributes to the XMT convention...
	m, err = runWorkload(variant.SingleInstruction, workload.DependentLoop(workload.StyleFork, size), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4f-deploop", workload.StyleFork, variant.SingleInstruction, size, m))
	// ...and the genuine multi-instruction engine shows the per-thread
	// instruction delivery cost (fetches) of XMT.
	m, err = runWorkload(variant.MultiInstruction, workload.DependentLoop(workload.StyleFork, size), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4f-deploop", workload.StyleFork, variant.MultiInstruction, size, m))
	m, err = runWorkload(variant.SingleOperation, workload.DependentLoop(workload.StyleThread, size), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, s4row("S4f-deploop", workload.StyleThread, variant.SingleOperation, size, m))
	return rows, nil
}

// S4gResult compares task switching: k tasks rotated through the TCF slots
// (free) versus the thread-machine context-switch cost model.
type S4gResult struct {
	Tasks               int
	TCFSwitches         int64
	TCFSwitchCycles     int64
	ThreadSwitchCycles  int64 // analytic: switches * Tp
	SingleThreadedModel int64 // switches * 1
}

// S4g measures multitasking cost.
func S4g(tasks int) (*S4gResult, error) {
	m, err := runWorkload(variant.SingleInstruction, workload.Multitask(tasks, 4), nil)
	if err != nil {
		return nil, err
	}
	s := m.Stats()
	return &S4gResult{
		Tasks:               tasks,
		TCFSwitches:         s.TaskSwitches,
		TCFSwitchCycles:     s.TaskSwitchCycles,
		ThreadSwitchCycles:  s.TaskSwitches * int64(Tp),
		SingleThreadedModel: s.TaskSwitches,
	}, nil
}

// S4hResult compares horizontal versus vertical allocation of an
// application's thickness.
type S4hResult struct {
	TApp             int
	VerticalCycles   int64
	HorizontalCycles int64
	Speedup          float64
}

// S4h measures the allocation experiment.
func S4h(tApp, iters int) (*S4hResult, error) {
	v, err := runWorkload(variant.SingleInstruction, workload.Allocation(tApp, 1, iters), nil)
	if err != nil {
		return nil, err
	}
	h, err := runWorkload(variant.SingleInstruction, workload.Allocation(tApp, P, iters), nil)
	if err != nil {
		return nil, err
	}
	return &S4hResult{
		TApp:             tApp,
		VerticalCycles:   v.Stats().Cycles,
		HorizontalCycles: h.Stats().Cycles,
		Speedup:          float64(v.Stats().Cycles) / float64(h.Stats().Cycles),
	}, nil
}

// FormatS4 renders Section 4 comparison rows.
func FormatS4(rows []S4Row) string {
	t := &table{header: []string{"experiment", "style", "variant", "size", "steps", "cycles", "fetches", "ops"}}
	for _, r := range rows {
		t.add(r.Experiment, r.Style, r.Variant.String(), itoa(int64(r.Size)),
			itoa(r.Steps), itoa(r.Cycles), itoa(r.Instrs), itoa(r.Ops))
	}
	return t.String()
}
