package exper

import (
	"fmt"
	"strings"

	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
	"tcfpram/internal/workload"
)

// SummaryCell is one (kernel, variant) measurement of the headline
// comparison matrix.
type SummaryCell struct {
	Kernel  string
	Variant variant.Kind
	Style   workload.Style
	Cycles  int64
	Steps   int64
	Fetches int64
	// Supported is false when the kernel is not expressible on the
	// variant (e.g. control parallelism on the vector machine).
	Supported bool
}

// Summary runs the four headline kernels on every variant that can express
// them (in its natural programming style) and returns the matrix.
func Summary(size int) ([]SummaryCell, error) {
	type job struct {
		kernel string
		kind   variant.Kind
		w      workload.Workload
		tweak  func(*machine.Config)
	}
	simdCfg := func(c *machine.Config) {
		c.ProcsPerGroup = size
		c.VectorWidth = size
	}
	nthreads := P * Tp
	jobs := []job{
		{"vecadd", variant.SingleInstruction, workload.VectorAdd(workload.StyleTCF, size, 0, 0), nil},
		{"vecadd", variant.Balanced, workload.VectorAdd(workload.StyleTCF, size, 0, 0), nil},
		{"vecadd", variant.MultiInstruction, workload.VectorAdd(workload.StyleFork, size, 0, 0), nil},
		{"vecadd", variant.SingleOperation, workload.VectorAdd(workload.StyleThread, size, nthreads, 0), nil},
		{"vecadd", variant.ConfigurableSingleOperation, workload.VectorAdd(workload.StyleThread, size, nthreads, 0), nil},
		{"vecadd", variant.FixedThickness, workload.VectorAdd(workload.StyleSIMD, size, 0, size), simdCfg},

		{"conditional", variant.SingleInstruction, workload.ConditionalHalves(workload.StyleTCF, size), nil},
		{"conditional", variant.Balanced, workload.ConditionalHalves(workload.StyleTCF, size), nil},
		{"conditional", variant.MultiInstruction, workload.ConditionalHalves(workload.StyleFork, size), nil},
		{"conditional", variant.SingleOperation, workload.ConditionalHalves(workload.StyleThread, size), nil},
		{"conditional", variant.ConfigurableSingleOperation, workload.ConditionalHalves(workload.StyleThread, size), nil},
		{"conditional", variant.FixedThickness, workload.ConditionalHalves(workload.StyleSIMD, size), simdCfg},

		{"prefix", variant.SingleInstruction, workload.PrefixSum(workload.StyleTCF, size, 0), nil},
		{"prefix", variant.Balanced, workload.PrefixSum(workload.StyleTCF, size, 0), nil},
		{"prefix", variant.SingleOperation, workload.PrefixSum(workload.StyleThread, size, nthreads), nil},
		{"prefix", variant.ConfigurableSingleOperation, workload.PrefixSum(workload.StyleThread, size, nthreads), nil},

		{"deploop", variant.SingleInstruction, workload.DependentLoop(workload.StyleTCF, size), nil},
		{"deploop", variant.Balanced, workload.DependentLoop(workload.StyleTCF, size), nil},
		{"deploop", variant.MultiInstruction, workload.DependentLoop(workload.StyleFork, size), nil},
		{"deploop", variant.SingleOperation, workload.DependentLoop(workload.StyleThread, size), nil},
	}
	var cells []SummaryCell
	for _, j := range jobs {
		m, err := runWorkload(j.kind, j.w, j.tweak)
		if err != nil {
			return nil, fmt.Errorf("summary %s on %v: %w", j.kernel, j.kind, err)
		}
		s := m.Stats()
		cells = append(cells, SummaryCell{
			Kernel: j.kernel, Variant: j.kind, Style: styleOf(j.w.Name),
			Cycles: s.Cycles, Steps: s.Steps, Fetches: s.InstrFetches, Supported: true,
		})
	}
	return cells, nil
}

func styleOf(name string) workload.Style {
	for _, s := range []workload.Style{workload.StyleTCF, workload.StyleThread, workload.StyleSIMD, workload.StyleFork} {
		if strings.Contains(name, "-"+s.String()+"-") {
			return s
		}
	}
	return workload.StyleTCF
}

// FormatSummary renders the matrix grouped by kernel.
func FormatSummary(cells []SummaryCell) string {
	t := &table{header: []string{"kernel", "variant", "style", "cycles", "steps", "fetches"}}
	for _, c := range cells {
		t.add(c.Kernel, c.Variant.String(), c.Style.String(), itoa(c.Cycles), itoa(c.Steps), itoa(c.Fetches))
	}
	return t.String()
}
