// Package exper implements the reproduction experiments: one function per
// paper artifact (Table 1, Figures 1-13, the Section 4 programming
// comparisons), each returning structured results that the cmd tools print
// and the benchmarks/tests assert shapes on. EXPERIMENTS.md records the
// outcomes.
package exper

import (
	"fmt"
	"strings"

	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
	"tcfpram/internal/workload"
)

// Machine parameters shared by the experiments (Table 1's P, Tp, R, b).
const (
	P  = 4
	Tp = 4
	R  = isa.NumSRegs
	B  = 4
)

// runWorkload executes w on a fresh machine of the given variant.
func runWorkload(kind variant.Kind, w workload.Workload, tweak func(*machine.Config)) (*machine.Machine, error) {
	cfg := machine.Default(kind)
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.LoadProgram(w.Program); err != nil {
		return nil, err
	}
	if _, err := m.Run(); err != nil {
		return m, fmt.Errorf("%s on %v: %w", w.Name, kind, err)
	}
	if err := w.Check(m); err != nil {
		return m, fmt.Errorf("%s on %v: %w", w.Name, kind, err)
	}
	return m, nil
}

// MustRun is runWorkload for fixed experiments that cannot fail.
func MustRun(kind variant.Kind, w workload.Workload, tweak func(*machine.Config)) *machine.Machine {
	m, err := runWorkload(kind, w, tweak)
	if err != nil {
		panic(err)
	}
	return m
}

// table is a tiny fixed-width text table builder for experiment reports.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
