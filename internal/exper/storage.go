package exper

import "tcfpram/internal/regcache"

// StorageRow compares the three Section 3.3 options for keeping thread-wise
// intermediate results at one thickness.
type StorageRow struct {
	Thickness int
	// Average extra cycles per thread-wise register-line access.
	MemoryToMemory float64
	CachedRegFile  float64
	LocalMemory    float64
	// CacheHitRate of the cached-register-file run.
	CacheHitRate float64
}

// Storage sweeps thickness for a kernel with `regsLive` live thread-wise
// registers re-touched over `instrs` instructions.
func Storage(regsLive, instrs int) ([]StorageRow, error) {
	cfg := regcache.DefaultConfig()
	const memLatency = 12
	var rows []StorageRow
	for _, u := range []int{8, 64, 512, 4096} {
		row := StorageRow{Thickness: u}
		var err error
		if row.MemoryToMemory, err = regcache.CostPerOp(regcache.MemoryToMemory, cfg, u, regsLive, instrs, memLatency); err != nil {
			return nil, err
		}
		if row.CachedRegFile, err = regcache.CostPerOp(regcache.CachedRegisterFile, cfg, u, regsLive, instrs, memLatency); err != nil {
			return nil, err
		}
		if row.LocalMemory, err = regcache.CostPerOp(regcache.LocalMemoryOperands, cfg, u, regsLive, instrs, memLatency); err != nil {
			return nil, err
		}
		// Re-run the cache to report its hit rate.
		c, err := regcache.New(cfg)
		if err != nil {
			return nil, err
		}
		regs := make([]int, regsLive)
		for i := range regs {
			regs[i] = i
		}
		for k := 0; k < instrs; k++ {
			c.AccessInstr(0, u, regs...)
		}
		_, _, _, row.CacheHitRate = c.Stats()
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatStorage renders the sweep.
func FormatStorage(rows []StorageRow) string {
	t := &table{header: []string{"thickness", "mem-to-mem cyc/acc", "cached-regfile", "local-mem", "cache hit rate"}}
	for _, r := range rows {
		t.add(itoa(int64(r.Thickness)), f2(r.MemoryToMemory), f2(r.CachedRegFile),
			f2(r.LocalMemory), f2(r.CacheHitRate))
	}
	return t.String()
}
