package exper

import (
	"strings"
	"testing"

	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/pipeline"
	"tcfpram/internal/variant"
)

// ---- Table 1 shapes ----

func TestTable1Shapes(t *testing.T) {
	const u = 16
	rows, err := Table1(8, u)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[variant.Kind]Table1Row{}
	for _, r := range rows {
		byKind[r.Variant] = r
	}
	si := byKind[variant.SingleInstruction]
	bal := byKind[variant.Balanced]
	mi := byKind[variant.MultiInstruction]
	so := byKind[variant.SingleOperation]
	cso := byKind[variant.ConfigurableSingleOperation]
	ft := byKind[variant.FixedThickness]

	// Fetches per TCF: 1 for single-instruction, ceil(u/b)=4 for balanced,
	// one per thread (u) for XMT-style delivery and thread machines.
	if si.FetchesPerTCF != 1 {
		t.Errorf("single-instruction fetches = %.2f, want 1", si.FetchesPerTCF)
	}
	if bal.FetchesPerTCF != float64(u/B) {
		t.Errorf("balanced fetches = %.2f, want %d", bal.FetchesPerTCF, u/B)
	}
	if mi.FetchesPerTCF != float64(u) {
		t.Errorf("multi-instruction fetches = %.2f, want %d", mi.FetchesPerTCF, u)
	}
	if so.FetchesPerTCF != float64(u) || cso.FetchesPerTCF != float64(u) {
		t.Errorf("thread-machine fetches = %.2f/%.2f, want %d", so.FetchesPerTCF, cso.FetchesPerTCF, u)
	}
	if ft.FetchesPerTCF != 1 {
		t.Errorf("fixed-thickness fetches = %.2f, want 1 (single vector instruction)", ft.FetchesPerTCF)
	}

	// Registers per thread: TCF variants share the common registers across
	// the thickness (R/u + m << R); thread variants hold R words each.
	if si.RegsPerThread >= so.RegsPerThread/2 {
		t.Errorf("TCF regs/thread %.2f should be far below thread-machine %.2f",
			si.RegsPerThread, so.RegsPerThread)
	}

	// Task switching: free for TCF variants, Tp for thread machines.
	for _, r := range []Table1Row{si, bal} {
		if r.TaskSwitchCost != 0 || !r.TaskSwitchMeasured {
			t.Errorf("%v task switch = %.2f (measured %v), want measured 0",
				r.Variant, r.TaskSwitchCost, r.TaskSwitchMeasured)
		}
	}
	if so.TaskSwitchCost != float64(Tp) {
		t.Errorf("single-operation task switch = %.2f, want %d", so.TaskSwitchCost, Tp)
	}

	// Flow branch: O(R) for TCF variants, O(1) for thread machines.
	if si.FlowBranchCost != float64(R) || !si.FlowBranchMeasured {
		t.Errorf("single-instruction flow branch = %.2f, want %d measured", si.FlowBranchCost, R)
	}
	if so.FlowBranchCost != 1 {
		t.Errorf("single-operation flow branch = %.2f, want 1", so.FlowBranchCost)
	}
	if mi.FlowBranchCost != 1 || !mi.FlowBranchMeasured {
		t.Errorf("multi-instruction flow branch = %.2f, want measured 1 (XMT parallel spawn)", mi.FlowBranchCost)
	}

	// Qualitative rows match the paper.
	if !si.PRAM || !si.NUMA || !si.MIMD {
		t.Error("single-instruction must support PRAM+NUMA+MIMD")
	}
	if mi.PRAM {
		t.Error("multi-instruction must not retain PRAM lockstep")
	}
	if so.NUMA {
		t.Error("single-operation has no NUMA mode")
	}
	if ft.MIMD {
		t.Error("fixed-thickness is not MIMD")
	}

	out := FormatTable1(rows, u)
	for _, want := range []string{"number of TCFs", "fetches/TCF", "task switch", "PRAM operation"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

// ---- Figure shapes ----

func TestFig1LatencyGrowsWithDistance(t *testing.T) {
	rows, err := Fig1(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Mesh latency grows with node count.
	var meshLat []float64
	for _, r := range rows {
		if r.Kind.String() == "mesh" {
			meshLat = append(meshLat, r.AvgLatency)
		}
	}
	for i := 1; i < len(meshLat); i++ {
		if meshLat[i] <= meshLat[i-1] {
			t.Fatalf("mesh latency not growing: %v", meshLat)
		}
	}
	if FormatFig1(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFig2BunchSpeedupProportional(t *testing.T) {
	rows, err := Fig2(128)
	if err != nil {
		t.Fatal(err)
	}
	// Both gains grow monotonically with bunch length.
	for i := 1; i < len(rows); i++ {
		if rows[i].StepSpeedup <= rows[i-1].StepSpeedup {
			t.Fatalf("step speedup not monotone: %+v", rows)
		}
		if rows[i].CycleSpeedup <= rows[i-1].CycleSpeedup {
			t.Fatalf("cycle speedup not monotone: %+v", rows)
		}
	}
	// The step-count law is proportional: a bunch of T executes T
	// instructions per step.
	for _, r := range rows {
		if r.StepSpeedup < 0.75*float64(r.Bunch) {
			t.Fatalf("bunch-%d step speedup only %.2f", r.Bunch, r.StepSpeedup)
		}
	}
	// Cycle gain is real but saturates near 1 + PipelineDepth.
	last := rows[len(rows)-1]
	if last.CycleSpeedup < 2 {
		t.Fatalf("bunch-%d cycle speedup only %.2f", last.Bunch, last.CycleSpeedup)
	}
	if FormatFig2(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFig34BlockStructure(t *testing.T) {
	spans, timeline, m, err := Fig34()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no machine")
	}
	// Three flows: main + two parallel branches of 12 and 3 lanes.
	if len(spans) != 3 {
		t.Fatalf("spans: %+v", spans)
	}
	lanes := map[int]bool{}
	for _, sp := range spans[1:] {
		lanes[sp.MaxLanes] = true
	}
	if !lanes[12] || !lanes[3] {
		t.Fatalf("branch thicknesses wrong: %+v", spans)
	}
	// Main's thickness timeline passes through 23 then 15.
	saw23, saw15 := false, false
	order := -1
	for i, l := range timeline {
		if l == 23 {
			saw23 = true
			order = i
		}
		if l == 15 && saw23 && i > order {
			saw15 = true
		}
	}
	if !saw23 || !saw15 {
		t.Fatalf("thickness timeline %v must pass 23 then 15", timeline)
	}
}

func TestFig6SingleProcessorInterleavesSlices(t *testing.T) {
	m, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// Both child flows are resident on the single group; some step must
	// execute slices of both (sequential slice-by-slice latency hiding).
	both := false
	for _, rec := range m.Trace() {
		flows := map[int]bool{}
		for _, s := range rec.Slices {
			flows[s.Flow] = true
		}
		if flows[1] && flows[2] {
			both = true
		}
	}
	if !both {
		t.Fatal("no step executed slices of both flows on the one processor")
	}
}

func TestFig7UnbalancedSingleInstruction(t *testing.T) {
	res, err := FigSchedule(variant.SingleInstruction, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One step carries a full 12-lane instruction: thick slows thin.
	if res.MaxStepOps < 12 {
		t.Fatalf("max per-step ops = %d, want >= 12", res.MaxStepOps)
	}
	if RenderSchedule(res.Machine) == "" {
		t.Fatal("empty render")
	}
}

func TestFig8BalancedBoundsSteps(t *testing.T) {
	res, err := FigSchedule(variant.Balanced, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxStepOps > B {
		t.Fatalf("balanced step executed %d ops > bound %d", res.MaxStepOps, B)
	}
	si, err := FigSchedule(variant.SingleInstruction, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps <= si.Steps {
		t.Fatalf("balanced steps (%d) must exceed single-instruction steps (%d)", res.Steps, si.Steps)
	}
}

func TestFig9MultiInstructionPacksSteps(t *testing.T) {
	mi, err := FigSchedule(variant.MultiInstruction, nil)
	if err != nil {
		t.Fatal(err)
	}
	si, err := FigSchedule(variant.SingleInstruction, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mi.Steps >= si.Steps {
		t.Fatalf("multi-instruction steps (%d) should undercut single-instruction (%d)", mi.Steps, si.Steps)
	}
}

func TestFig1011UtilizationShapes(t *testing.T) {
	rows, err := Fig1011(64)
	if err != nil {
		t.Fatal(err)
	}
	var full, low, bunched float64
	for _, r := range rows {
		switch {
		case r.Variant == variant.SingleOperation && r.ActiveThreads == 16:
			full = r.Utilization
		case r.Variant == variant.SingleOperation && r.ActiveThreads == 1:
			low = r.Utilization
		case r.Variant == variant.ConfigurableSingleOperation && r.NUMABunch == 8:
			bunched = r.Utilization
		}
	}
	// Figure 10: utilization collapses with one active thread.
	if low >= full/4 {
		t.Fatalf("low-TLP utilization %.3f should collapse versus full %.3f", low, full)
	}
	// Figure 11: bunching recovers a large factor.
	if bunched <= 2*low {
		t.Fatalf("bunching should recover utilization: %.3f vs %.3f", bunched, low)
	}
	if FormatFig1011(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFig12SIMDPaysBothPaths(t *testing.T) {
	res, err := Fig12(16)
	if err != nil {
		t.Fatal(err)
	}
	// The vector model executes both branch paths across the full width
	// (plus masking work); the TCF model splits into exactly-sized flows.
	if res.SIMDOps <= res.TCFOps {
		t.Fatalf("SIMD ops (%d) should exceed TCF ops (%d)", res.SIMDOps, res.TCFOps)
	}
}

func TestFig13FetchAmortization(t *testing.T) {
	rows, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TCFFetches != 1 {
			t.Fatalf("thickness %d: TCF fetches %.2f, want 1", r.Thickness, r.TCFFetches)
		}
		if r.XMTFetches != float64(r.Thickness) {
			t.Fatalf("thickness %d: XMT fetches %.2f, want %d", r.Thickness, r.XMTFetches, r.Thickness)
		}
		wantBal := float64((r.Thickness + B - 1) / B)
		if r.BalFetches != wantBal {
			t.Fatalf("thickness %d: balanced fetches %.2f, want %.2f", r.Thickness, r.BalFetches, wantBal)
		}
	}
	if FormatFig13(rows) == "" {
		t.Fatal("empty format")
	}
}

// ---- Section 4 shapes ----

func TestS4aThicknessBeatsThreadLoop(t *testing.T) {
	rows, err := S4a([]int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	// The thickness program issues far fewer instructions (no loop
	// arithmetic) than the thread loop.
	for i := 0; i < len(rows); i += 2 {
		tcf, thr := rows[i], rows[i+1]
		if tcf.Instrs >= thr.Instrs {
			t.Fatalf("size %d: TCF fetches %d should undercut thread loop %d", tcf.Size, tcf.Instrs, thr.Instrs)
		}
	}
	if FormatS4(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestS4bSmallSizes(t *testing.T) {
	rows, err := S4b(5)
	if err != nil {
		t.Fatal(err)
	}
	tcf, thr := rows[0], rows[1]
	// The guard version makes every thread fetch the guard code.
	if tcf.Instrs >= thr.Instrs {
		t.Fatalf("TCF %d fetches vs thread %d", tcf.Instrs, thr.Instrs)
	}
}

func TestS4cNUMAHelpsLowTLP(t *testing.T) {
	rows, err := S4c(128)
	if err != nil {
		t.Fatal(err)
	}
	pram, numa := rows[0], rows[1]
	if numa.Cycles*2 >= pram.Cycles {
		t.Fatalf("NUMA (%d cycles) should clearly beat PRAM thickness-1 (%d)", numa.Cycles, pram.Cycles)
	}
}

func TestS4dConditional(t *testing.T) {
	rows, err := S4d(16)
	if err != nil {
		t.Fatal(err)
	}
	var tcf, simd S4Row
	for _, r := range rows {
		switch r.Style {
		case "tcf":
			tcf = r
		case "simd":
			simd = r
		}
	}
	if simd.Ops <= tcf.Ops {
		t.Fatalf("SIMD must pay both paths: %d vs %d ops", simd.Ops, tcf.Ops)
	}
}

func TestS4ePrefix(t *testing.T) {
	rows, err := S4e(64)
	if err != nil {
		t.Fatal(err)
	}
	tcf, thr := rows[0], rows[1]
	if tcf.Steps >= thr.Steps {
		t.Fatalf("thick prefix (%d steps) should undercut looped prefix (%d)", tcf.Steps, thr.Steps)
	}
}

func TestS4fDependentLoop(t *testing.T) {
	rows, err := S4f(16)
	if err != nil {
		t.Fatal(err)
	}
	var tcf, forkSI, forkMI S4Row
	for _, r := range rows {
		switch {
		case r.Style == "tcf":
			tcf = r
		case r.Style == "fork" && r.Variant == variant.SingleInstruction:
			forkSI = r
		case r.Style == "fork" && r.Variant == variant.MultiInstruction:
			forkMI = r
		}
	}
	// On the same lockstep machine, the fork rounds pay split/join
	// overhead every round: more cycles and more steps.
	if forkSI.Cycles <= tcf.Cycles || forkSI.Steps <= tcf.Steps {
		t.Fatalf("fork rounds (%d cycles, %d steps) should cost more than plain TCF (%d cycles, %d steps)",
			forkSI.Cycles, forkSI.Steps, tcf.Cycles, tcf.Steps)
	}
	// The genuine XMT engine pays per-thread instruction delivery: its
	// fetch count dwarfs the fetch-once TCF execution.
	if forkMI.Instrs <= 4*tcf.Instrs {
		t.Fatalf("XMT fork fetches (%d) should dwarf TCF fetches (%d)", forkMI.Instrs, tcf.Instrs)
	}
}

func TestS4gMultitaskFree(t *testing.T) {
	res, err := S4g(48)
	if err != nil {
		t.Fatal(err)
	}
	if res.TCFSwitches == 0 {
		t.Fatal("no switches")
	}
	if res.TCFSwitchCycles != 0 {
		t.Fatalf("TCF switching cost %d, want 0", res.TCFSwitchCycles)
	}
	if res.ThreadSwitchCycles != res.TCFSwitches*int64(Tp) {
		t.Fatal("thread model mismatch")
	}
}

func TestS4hHorizontalAllocation(t *testing.T) {
	res, err := S4h(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 1.5 {
		t.Fatalf("horizontal allocation speedup %.2f too small", res.Speedup)
	}
}

// ---- Section 3.3: automatic splitting of overly thick flows ----

func TestAutoSplitSweep(t *testing.T) {
	rows, err := AutoSplit()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Threshold != 0 || rows[0].Fragments != 0 || rows[0].Planned != 0 || rows[0].Rejoins != 0 {
		t.Fatalf("baseline row wrong: %+v", rows[0])
	}
	base := rows[0]
	for _, r := range rows[1:] {
		if r.Fragments == 0 {
			t.Fatalf("threshold %d produced no fragments", r.Threshold)
		}
		// The frontend splitter is the single source of truth: the run must
		// create exactly the planned fragments (ceil(256/threshold)) and
		// every fragment must rejoin its container.
		if want := (256 + r.Threshold - 1) / r.Threshold; r.Planned != want {
			t.Fatalf("threshold %d planned %d fragments, want %d", r.Threshold, r.Planned, want)
		}
		if r.Fragments != int64(r.Planned) {
			t.Fatalf("threshold %d created %d fragments, splitter planned %d", r.Threshold, r.Fragments, r.Planned)
		}
		if r.Rejoins != r.Fragments {
			t.Fatalf("threshold %d rejoined %d of %d fragments", r.Threshold, r.Rejoins, r.Fragments)
		}
		if r.Cycles >= base.Cycles {
			t.Fatalf("threshold %d (%d cycles) should beat no splitting (%d)", r.Threshold, r.Cycles, base.Cycles)
		}
		// 256/threshold fragments occupy min(fragments, P) groups.
		wantBusy := int(r.Fragments)
		if wantBusy > 4 {
			wantBusy = 4
		}
		if r.GroupsBusy < wantBusy {
			t.Fatalf("threshold %d should occupy %d groups: %+v", r.Threshold, wantBusy, r)
		}
		if r.Utilization <= base.Utilization {
			t.Fatalf("threshold %d utilization %.2f should beat %.2f", r.Threshold, r.Utilization, base.Utilization)
		}
	}
	if FormatAutoSplit(rows) == "" {
		t.Fatal("empty format")
	}
}

// Cross-validation: the machine's per-step cost agrees with the slice-level
// pipeline model on a single-group, single-flow straight-line workload.
func TestMachineStepCostMatchesPipelineModel(t *testing.T) {
	const thickness, instrs = 24, 5
	b := isa.NewBuilder("crossval")
	b.Label("main")
	b.SetThickImm(thickness)
	for i := 0; i < instrs; i++ {
		b.ALUI(isa.ADD, isa.V(1), isa.V(1), 1)
	}
	b.Halt()
	cfg := machine.Default(variant.SingleInstruction)
	cfg.Groups = 1
	cfg.Topology = nil
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Each compute step executes one thickness-wide instruction; the
	// pipeline model prices it at thickness + depth.
	pcfg := pipeline.Config{Depth: cfg.PipelineDepth, MemLatency: cfg.MemLatencyBase}
	res, err := pipeline.Schedule(pcfg, []pipeline.Instr{{Thickness: thickness}})
	if err != nil {
		t.Fatal(err)
	}
	perStep := int64(res.Cycles)
	// SETTHICK and HALT are 1-op steps costing 1 + depth each.
	want := int64(instrs)*perStep + 2*int64(1+cfg.PipelineDepth)
	if m.Stats().Cycles != want {
		t.Fatalf("machine cycles %d != pipeline model %d", m.Stats().Cycles, want)
	}
}

// ---- Section 3.3: intermediate-result storage options ----

func TestStorageSchemes(t *testing.T) {
	rows, err := Storage(4, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MemoryToMemory != 12 || r.LocalMemory != 1 {
			t.Fatalf("fixed schemes wrong: %+v", r)
		}
	}
	// Fitting thickness: cached register file near zero; overflowing
	// thickness: thrash toward memory cost.
	if rows[0].CachedRegFile >= 1 {
		t.Fatalf("fitting cache cost %.2f", rows[0].CachedRegFile)
	}
	last := rows[len(rows)-1]
	if last.CachedRegFile <= rows[0].CachedRegFile {
		t.Fatalf("cache should thrash at thickness %d: %+v", last.Thickness, rows)
	}
	if last.CacheHitRate > 0.2 {
		t.Fatalf("thrashing hit rate %.2f", last.CacheHitRate)
	}
	if FormatStorage(rows) == "" {
		t.Fatal("empty format")
	}
}

// ---- headline summary matrix ----

func TestSummaryMatrix(t *testing.T) {
	cells, err := Summary(16)
	if err != nil {
		t.Fatal(err)
	}
	byKV := map[string]SummaryCell{}
	for _, c := range cells {
		byKV[c.Kernel+"/"+c.Variant.String()] = c
	}
	// Headline shapes: on every kernel, the single-instruction TCF machine
	// issues far fewer instruction fetches than the thread machine.
	for _, kernel := range []string{"vecadd", "conditional", "prefix", "deploop"} {
		tcf, ok1 := byKV[kernel+"/single-instruction"]
		thr, ok2 := byKV[kernel+"/single-operation"]
		if !ok1 || !ok2 {
			t.Fatalf("missing cells for %s", kernel)
		}
		if tcf.Fetches*2 >= thr.Fetches {
			t.Errorf("%s: TCF fetches %d should be far below thread %d", kernel, tcf.Fetches, thr.Fetches)
		}
		if tcf.Steps >= thr.Steps {
			t.Errorf("%s: TCF steps %d should undercut thread %d", kernel, tcf.Steps, thr.Steps)
		}
	}
	if FormatSummary(cells) == "" {
		t.Fatal("empty format")
	}
}

// ---- machine-size scaling ----

func TestScalingSweep(t *testing.T) {
	rows, err := Scaling(256, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Groups != 1 || rows[0].Speedup != 1 {
		t.Fatalf("baseline: %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup <= rows[i-1].Speedup {
			t.Fatalf("speedup not monotone: %+v", rows)
		}
	}
	// Parallel work divides cleanly: 4 groups must give >= 2.5x.
	for _, r := range rows {
		if r.Groups == 4 && r.Speedup < 2.5 {
			t.Fatalf("4-group speedup %.2f too low", r.Speedup)
		}
	}
	if FormatScaling(rows) == "" {
		t.Fatal("empty format")
	}
}

// ---- Figure 5: machine organization ----

func TestFig5MachineOrganization(t *testing.T) {
	cfg := machine.Default(variant.SingleInstruction)
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// P groups of Tp TCF processors.
	if cfg.Groups != P || cfg.ProcsPerGroup != Tp || cfg.TotalProcessors() != P*Tp {
		t.Fatalf("shape: %d x %d", cfg.Groups, cfg.ProcsPerGroup)
	}
	// Shared memory is partitioned into P modules; every address maps to
	// exactly one.
	if m.Shared().Modules() != P {
		t.Fatalf("modules = %d", m.Shared().Modules())
	}
	for addr := int64(0); addr < 64; addr++ {
		mod := m.Shared().ModuleOf(addr)
		if mod < 0 || mod >= P {
			t.Fatalf("module of %d = %d", addr, mod)
		}
	}
	// Each group owns a local memory block.
	for g := 0; g < P; g++ {
		if m.LocalMem(g) == nil || m.LocalMem(g).Group() != g {
			t.Fatalf("group %d local memory wrong", g)
		}
	}
	// The distance metric covers every (group, module) pair, is zero on
	// the diagonal and symmetric.
	topo := m.Config().Topology
	if topo.Size() != P {
		t.Fatalf("topology size %d", topo.Size())
	}
	for g := 0; g < P; g++ {
		if topo.Distance(g, g) != 0 {
			t.Fatal("self distance")
		}
		for mm := 0; mm < P; mm++ {
			if topo.Distance(g, mm) != topo.Distance(mm, g) {
				t.Fatal("asymmetric distance")
			}
		}
	}
}
