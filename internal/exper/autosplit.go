package exper

import (
	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// AutoSplitRow measures the Section 3.3 OS-splitting of overly thick flows
// at one threshold setting.
type AutoSplitRow struct {
	Threshold   int // 0 = splitting disabled
	Cycles      int64
	Utilization float64
	Planned     int   // fragments the frontend splitter plans for the kernel
	Fragments   int64 // flows actually created by splitting
	Rejoins     int64 // fragment completions folded back into the container
	GroupsBusy  int   // groups that executed a significant share
}

// autoSplitThickness is the kernel's SETTHICK operand, fed to the frontend
// splitter to obtain the planned fragmentation.
const autoSplitThickness = 256

// autoSplitKernel is a 256-lane elementwise kernel (8 thick instructions).
func autoSplitKernel() *isa.Program {
	b := isa.NewBuilder("autosplit-kernel")
	b.Label("main")
	b.SetThickImm(autoSplitThickness)
	b.Id(isa.TID, isa.V(0))
	for i := 0; i < 6; i++ {
		b.ALUI(isa.MUL, isa.V(1), isa.V(0), 3)
		b.ALU(isa.ADD, isa.V(0), isa.V(0), isa.V(1))
	}
	b.St(isa.V(0), 2000, isa.V(0))
	b.Halt()
	return b.MustBuild()
}

// AutoSplit sweeps the splitting threshold over the 256-lane kernel.
func AutoSplit() ([]AutoSplitRow, error) {
	prog := autoSplitKernel()
	var rows []AutoSplitRow
	for _, threshold := range []int{0, 128, 64, 32} {
		cfg := machine.Default(variant.SingleInstruction)
		cfg.AutoSplitThreshold = threshold
		m, err := machine.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := m.LoadProgram(prog); err != nil {
			return nil, err
		}
		// The frontend splitter is the single source of truth for how the
		// kernel's SETTHICK will fragment under this threshold; the run
		// must then create exactly that many fragments and rejoin them all.
		plan, err := m.SplitPlan(autoSplitThickness)
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(); err != nil {
			return nil, err
		}
		s := m.Stats()
		row := AutoSplitRow{
			Threshold:   threshold,
			Cycles:      s.Cycles,
			Utilization: s.Utilization(),
			Planned:     len(plan),
			Fragments:   s.FlowsCreated - 1,
			Rejoins:     s.Joins,
		}
		for _, ops := range s.PerGroupOps {
			if ops > 50 {
				row.GroupsBusy++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAutoSplit renders the threshold sweep.
func FormatAutoSplit(rows []AutoSplitRow) string {
	t := &table{header: []string{"threshold", "cycles", "utilization", "planned", "fragments", "rejoins", "groups busy"}}
	for _, r := range rows {
		th := "off"
		if r.Threshold > 0 {
			th = itoa(int64(r.Threshold))
		}
		t.add(th, itoa(r.Cycles), f2(r.Utilization), itoa(int64(r.Planned)),
			itoa(r.Fragments), itoa(r.Rejoins), itoa(int64(r.GroupsBusy)))
	}
	return t.String()
}
