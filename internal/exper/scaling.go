package exper

import (
	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/topology"
	"tcfpram/internal/variant"
)

// ScalingRow measures one machine size on the fixed workload.
type ScalingRow struct {
	Groups      int
	Cycles      int64
	Speedup     float64 // vs 1 group
	Utilization float64
}

// scalingKernel builds a fixed-size, embarrassingly parallel thick workload:
// `total` lanes of elementwise work, split into one flow per group via the
// parallel statement so every machine size can spread it.
func scalingKernel(total, groups, instrs int) *isa.Program {
	b := isa.NewBuilder("scaling")
	b.Label("main")
	per := total / groups
	arms := make([]isa.Arm, groups)
	for i := range arms {
		arms[i] = isa.ArmImm(int64(per), "work")
	}
	b.Split(arms...)
	b.Halt()
	b.Label("work")
	b.Id(isa.TID, isa.V(0))
	for i := 0; i < instrs; i++ {
		b.ALUI(isa.MUL, isa.V(1), isa.V(0), 3)
		b.ALU(isa.ADD, isa.V(0), isa.V(0), isa.V(1))
	}
	b.Op(isa.JOIN)
	return b.MustBuild()
}

// Scaling sweeps the group count for a fixed 256-lane workload on the
// single-instruction variant (ring topology grows with the machine).
func Scaling(total, instrs int) ([]ScalingRow, error) {
	var rows []ScalingRow
	var base int64
	for _, p := range []int{1, 2, 4, 8, 16} {
		cfg := machine.Default(variant.SingleInstruction)
		cfg.Groups = p
		cfg.Topology = topology.Must(topology.NewRing(p))
		m, err := machine.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := m.LoadProgram(scalingKernel(total, p, instrs)); err != nil {
			return nil, err
		}
		if _, err := m.Run(); err != nil {
			return nil, err
		}
		c := m.Stats().Cycles
		if p == 1 {
			base = c
		}
		rows = append(rows, ScalingRow{
			Groups: p, Cycles: c,
			Speedup:     float64(base) / float64(c),
			Utilization: m.Stats().Utilization(),
		})
	}
	return rows, nil
}

// FormatScaling renders the sweep.
func FormatScaling(rows []ScalingRow) string {
	t := &table{header: []string{"groups", "cycles", "speedup", "utilization"}}
	for _, r := range rows {
		t.add(itoa(int64(r.Groups)), itoa(r.Cycles), f2(r.Speedup), f2(r.Utilization))
	}
	return t.String()
}
