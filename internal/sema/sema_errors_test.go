package sema

import (
	"errors"
	"strings"
	"testing"

	"tcfpram/internal/lang"
)

// TestErrorTable drives every sema rejection path and asserts both the
// message and the reported source position: each case puts the offending
// construct on a known line, and the positioned *Error must point at it.
func TestErrorTable(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantSub  string
		wantLine int
	}{
		{"nonconst-global-init", "shared int x = tid;\nfunc main() { }", "global initializer of x must be constant", 1},
		{"dup-global", "shared int a;\nshared int a;\nfunc main() { }", "duplicate global a", 2},
		{"array-as-value", "shared int a[4];\nfunc main() {\nint x = a;\n}", "array a used as a value", 3},
		{"prints-nonstring", "func main() {\nprints(1);\n}", "prints expects a string literal", 2},
		{"thick-assert", "func main() {\n#4;\nassert(tid);\n}", "assert condition must be scalar", 3},
		{"scalar-reduction", "func main() {\nint x = radd(1);\n}", "radd reduces a thick value; argument 1 is scalar", 2},
		{"void-assign", "func f() { }\nfunc main() {\nint x = 1;\nx = f();\n}", "cannot assign a void call result", 4},
		{"global-shadows-builtin", "shared int tid;\nfunc main() { }", "tid shadows a builtin", 1},
		{"scalar-init-list", "shared int s = {1, 2};\nfunc main() { }", "initializer list on scalar s", 1},
		{"init-too-long", "shared int a[2] = {1, 2, 3};\nfunc main() { }", "has 3 elements for length 2", 1},
		{"dup-func", "func f() { }\nfunc f() { }\nfunc main() { }", "duplicate function f", 2},
		{"func-shadows-builtin", "func radd() { }\nfunc main() { }", "function radd shadows a builtin", 1},
		{"no-main", "func f() { }", "program has no main function", 1},
		{"main-params", "func main(a) { }", "main takes no parameters", 1},
		{"dup-param", "func f(a, a) { }\nfunc main() { }", "duplicate parameter a", 1},
		{"param-shadows-builtin", "func f(tid) { }\nfunc main() { }", "parameter tid shadows a builtin", 1},
		{"recursion", "func f() { f(); }\nfunc main() { f(); }", "recursive call cycle", 1},
		{"expr-stmt", "func main() {\n1 + 2;\n}", "expression statement must be a call", 2},
		{"thick-arm", "func main() {\nparallel {\n#tid: halt;\n}\n}", "parallel arm thickness must be scalar", 3},
		{"dup-default", "func main() {\nswitch (1) {\ndefault: halt;\ndefault: halt;\n}\n}", "duplicate default case", 4},
		{"thick-case", "func main() {\n#4;\nswitch (1) {\ncase tid: halt;\n}\n}", "switch case value must be scalar", 4},
		{"stray-break", "func main() {\nbreak;\n}", "break outside a loop", 2},
		{"stray-continue", "func main() {\ncontinue;\n}", "continue outside a loop", 2},
		{"thick-return", "func f() {\n#4;\nreturn tid;\n}\nfunc main() { f(); }", "return value must be scalar", 3},
		{"thick-cond", "func main() {\n#4;\nif (tid) { halt; }\n}", "condition must be scalar", 3},
		{"nested-shared", "func main() {\nshared int x;\n}", "shared/local declarations must be top-level", 2},
		{"reg-array", "func main() {\nint a[4];\n}", "register variable a cannot be an array", 2},
		{"reg-addr", "func main() {\nint x @ 5;\n}", "register variable x cannot bind an address", 2},
		{"dup-local", "func main() {\nint x = 1;\nint x = 2;\n}", "duplicate variable x in this scope", 3},
		{"local-shadows-builtin", "func main() {\nint tid = 1;\n}", "tid shadows a builtin", 2},
		{"thick-into-scalar-init", "func main() {\n#4;\nint x = tid;\n}", "cannot initialize scalar x with a thick value", 3},
		{"assign-builtin", "func main() {\ntid = 1;\n}", "cannot assign to builtin tid", 2},
		{"assign-undeclared", "func main() {\nx = 1;\n}", "undeclared variable x", 2},
		{"assign-array", "shared int a[4];\nfunc main() {\na = 1;\n}", "cannot assign whole array a", 3},
		{"thick-into-scalar", "func main() {\n#4;\nint x = 1;\nx = tid;\n}", "cannot assign thick value to scalar x", 4},
		{"undeclared-array", "func main() {\nq[0] = 1;\n}", "undeclared array q", 2},
		{"not-an-array", "func main() {\nint x = 1;\nx[0] = 2;\n}", "x is not an array", 3},
		{"thick-store-scalar-index", "shared int a[4];\nfunc main() {\n#4;\na[0] = tid;\n}", "storing a thick value needs a thick index", 4},
		{"undefined-func", "func main() {\ng();\n}", "undefined function g", 2},
		{"bad-arity", "func f(a) { }\nfunc main() {\nf(1, 2);\n}", "f expects 1 argument(s), got 2", 3},
		{"thick-arg", "func f(a) { }\nfunc main() {\n#4;\nf(tid);\n}", "function arguments must be scalar", 4},
		{"addr-of-reg", "func main() {\nint x = 1;\nmadd(&x, 1);\n}", "cannot take the address of register variable x", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := lang.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Check(prog)
			if err == nil {
				t.Fatalf("want error containing %q, got none", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("want error containing %q, got %v", tc.wantSub, err)
			}
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("error is not a positioned *sema.Error: %v", err)
			}
			if se.Pos.Line != tc.wantLine {
				t.Fatalf("error at line %d, want line %d: %v", se.Pos.Line, tc.wantLine, err)
			}
			if se.Pos.Col < 1 {
				t.Fatalf("error column %d < 1: %v", se.Pos.Col, err)
			}
		})
	}
}
