// Package sema resolves names and checks the typing/thickness rules of
// tcf-e: flow-level control conditions must be scalar (the whole flow takes
// one path, Section 2.2), scalar targets cannot receive thick values without
// a reduction, memory variables live at word addresses, and functions are
// flow-level and non-recursive (the flow call stack stores return addresses
// only; registers are statically allocated).
package sema

import (
	"fmt"

	"tcfpram/internal/lang"
)

// Kind classifies an expression's value shape.
type Kind int

const (
	// KindScalar values are flow-common.
	KindScalar Kind = iota
	// KindThick values are thread-wise (one per implicit thread).
	KindThick
	// KindVoid marks effect-only intrinsic calls.
	KindVoid
)

func (k Kind) String() string {
	switch k {
	case KindScalar:
		return "scalar"
	case KindThick:
		return "thick"
	case KindVoid:
		return "void"
	}
	return "kind?"
}

// Sym is a resolved variable.
type Sym struct {
	Name     string
	Decl     *lang.VarDecl // nil for parameters
	Space    lang.Space
	Thick    bool
	ArrayLen int   // -1 for scalars
	Addr     int64 // memory address (Shared/Local spaces)
	IsParam  bool
	FuncName string // owning function ("" for globals)
}

// Kind returns the value kind of reading the symbol.
func (s *Sym) Kind() Kind {
	if s.Thick {
		return KindThick
	}
	return KindScalar
}

// FuncInfo carries resolved function facts.
type FuncInfo struct {
	Decl    *lang.FuncDecl
	Params  []*Sym
	Returns bool // some return carries a value
	Calls   []string
}

// Info is the analysis result consumed by codegen.
type Info struct {
	Prog  *lang.Program
	Funcs map[string]*FuncInfo
	// Syms maps every resolved *lang.Ident, *lang.Index, *lang.AddrOf and
	// *lang.VarDecl to its symbol.
	Syms map[any]*Sym
	// Kinds maps every expression to its value kind.
	Kinds map[lang.Expr]Kind
	// Data are the preloaded shared-memory segments from initializers.
	Data []DataSeg
	// LocalData are per-group local-memory preloads.
	LocalData []DataSeg
	// SharedTop is the first shared address after static allocation.
	SharedTop int64
}

// DataSeg is an initialized memory region.
type DataSeg struct {
	Addr  int64
	Words []int64
}

// Builtin identifier kinds.
var builtins = map[string]Kind{
	"tid":       KindThick,
	"fid":       KindScalar,
	"thickness": KindScalar,
	"nproc":     KindScalar,
	"ngroups":   KindScalar,
	"gid":       KindScalar,
	"pid":       KindScalar,
}

// IsBuiltinIdent reports whether name is a builtin identifier.
func IsBuiltinIdent(name string) bool {
	_, ok := builtins[name]
	return ok
}

// Intrinsic call table: name -> (argc, result kind).
type intrinsicSig struct {
	argc   int
	result Kind
}

var intrinsics = map[string]intrinsicSig{
	"mpadd": {2, KindThick}, "mpand": {2, KindThick}, "mpor": {2, KindThick},
	"mpmax": {2, KindThick}, "mpmin": {2, KindThick},
	"madd": {2, KindVoid}, "mand": {2, KindVoid}, "mor": {2, KindVoid},
	"mmax": {2, KindVoid}, "mmin": {2, KindVoid},
	"radd": {1, KindScalar}, "rand": {1, KindScalar}, "ror": {1, KindScalar},
	"rmax": {1, KindScalar}, "rmin": {1, KindScalar},
	"print": {1, KindVoid}, "prints": {1, KindVoid}, "assert": {1, KindVoid},
}

// IsIntrinsic reports whether name is an intrinsic function.
func IsIntrinsic(name string) bool {
	_, ok := intrinsics[name]
	return ok
}

// autoBase is where automatically placed shared globals start; addresses
// below are free for explicit @ bindings.
const autoBase = 8192

// Check analyzes prog.
func Check(prog *lang.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:  prog,
			Funcs: map[string]*FuncInfo{},
			Syms:  map[any]*Sym{},
			Kinds: map[lang.Expr]Kind{},
		},
		globals:   map[string]*Sym{},
		nextAddr:  autoBase,
		nextLocal: 0,
	}
	if err := c.globalsPass(); err != nil {
		return nil, err
	}
	if err := c.funcsPass(); err != nil {
		return nil, err
	}
	if err := c.recursionPass(); err != nil {
		return nil, err
	}
	c.info.SharedTop = c.nextAddr
	return c.info, nil
}

type checker struct {
	info      *Info
	globals   map[string]*Sym
	nextAddr  int64
	nextLocal int64

	// Per-function state.
	fn        *FuncInfo
	scopes    []map[string]*Sym
	loopDepth int
}

// Error is a positioned sema diagnostic. Every error returned by Check is
// one of these, so tools (tcfvet, golden renderers) can extract the source
// position with errors.As instead of parsing the message.
type Error struct {
	Pos lang.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sema: %s: %s", e.Pos, e.Msg) }

func errf(pos lang.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) globalsPass() error {
	for _, d := range c.info.Prog.Globals {
		if d.Space == lang.SpaceReg {
			return errf(d.Pos, "top-level variable %s must be shared or local", d.Name)
		}
		if d.Thick {
			return errf(d.Pos, "memory variable %s cannot be thick (thick values live in registers)", d.Name)
		}
		if _, dup := c.globals[d.Name]; dup {
			return errf(d.Pos, "duplicate global %s", d.Name)
		}
		if IsBuiltinIdent(d.Name) || IsIntrinsic(d.Name) {
			return errf(d.Pos, "%s shadows a builtin", d.Name)
		}
		words := int64(1)
		if d.ArrayLen >= 0 {
			words = int64(d.ArrayLen)
		}
		sym := &Sym{Name: d.Name, Decl: d, Space: d.Space, ArrayLen: d.ArrayLen}
		switch d.Space {
		case lang.SpaceShared:
			if d.Addr >= 0 {
				sym.Addr = d.Addr
			} else {
				sym.Addr = c.nextAddr
				c.nextAddr += words
			}
		case lang.SpaceLocal:
			if d.Addr >= 0 {
				sym.Addr = d.Addr
			} else {
				sym.Addr = c.nextLocal
				c.nextLocal += words
			}
		}
		if sym.Addr < 0 {
			return errf(d.Pos, "negative address for %s", d.Name)
		}
		// Initializers become preloaded data.
		if d.InitList != nil {
			if d.ArrayLen < 0 {
				return errf(d.Pos, "initializer list on scalar %s", d.Name)
			}
			if len(d.InitList) > d.ArrayLen {
				return errf(d.Pos, "initializer of %s has %d elements for length %d", d.Name, len(d.InitList), d.ArrayLen)
			}
			seg := DataSeg{Addr: sym.Addr, Words: append([]int64(nil), d.InitList...)}
			if d.Space == lang.SpaceShared {
				c.info.Data = append(c.info.Data, seg)
			} else {
				c.info.LocalData = append(c.info.LocalData, seg)
			}
		} else if d.InitExpr != nil {
			v, ok := constFold(d.InitExpr)
			if !ok {
				return errf(d.Pos, "global initializer of %s must be constant", d.Name)
			}
			seg := DataSeg{Addr: sym.Addr, Words: []int64{v}}
			if d.Space == lang.SpaceShared {
				c.info.Data = append(c.info.Data, seg)
			} else {
				c.info.LocalData = append(c.info.LocalData, seg)
			}
		}
		c.globals[d.Name] = sym
		c.info.Syms[d] = sym
	}
	return nil
}

// constFold evaluates constant expressions (literals, unary minus/not,
// binary arithmetic on constants).
func constFold(e lang.Expr) (int64, bool) {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.Val, true
	case *lang.Unary:
		v, ok := constFold(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case lang.TokMinus:
			return -v, true
		case lang.TokTilde:
			return ^v, true
		case lang.TokBang:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *lang.Binary:
		a, ok1 := constFold(e.X)
		b, ok2 := constFold(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case lang.TokPlus:
			return a + b, true
		case lang.TokMinus:
			return a - b, true
		case lang.TokStar:
			return a * b, true
		case lang.TokSlash:
			if b == 0 {
				return 0, true
			}
			return a / b, true
		case lang.TokPercent:
			if b == 0 {
				return 0, true
			}
			return a % b, true
		// Shifts clamp to [0,63], matching the machine ALU.
		case lang.TokShl:
			return a << clampShift(b), true
		case lang.TokShr:
			return a >> clampShift(b), true
		}
	}
	return 0, false
}

func clampShift(b int64) uint {
	if b < 0 {
		return 0
	}
	if b > 63 {
		return 63
	}
	return uint(b)
}

func (c *checker) funcsPass() error {
	seen := map[string]bool{}
	for _, fn := range c.info.Prog.Funcs {
		if seen[fn.Name] {
			return errf(fn.Pos, "duplicate function %s", fn.Name)
		}
		seen[fn.Name] = true
		if IsIntrinsic(fn.Name) || IsBuiltinIdent(fn.Name) {
			return errf(fn.Pos, "function %s shadows a builtin", fn.Name)
		}
		fi := &FuncInfo{Decl: fn}
		for _, p := range fn.Params {
			fi.Params = append(fi.Params, &Sym{Name: p, ArrayLen: -1, IsParam: true, FuncName: fn.Name})
		}
		c.info.Funcs[fn.Name] = fi
	}
	if _, ok := c.info.Funcs["main"]; !ok {
		return errf(lang.Pos{Line: 1, Col: 1}, "program has no main function")
	}
	if len(c.info.Funcs["main"].Params) != 0 {
		return errf(c.info.Funcs["main"].Decl.Pos, "main takes no parameters")
	}
	// Pre-pass: a function "returns a value" if any of its returns carries
	// one; calls must see this regardless of declaration order.
	for _, fn := range c.info.Prog.Funcs {
		c.info.Funcs[fn.Name].Returns = hasValueReturn(fn.Body)
	}
	for _, fn := range c.info.Prog.Funcs {
		fi := c.info.Funcs[fn.Name]
		c.fn = fi
		c.scopes = []map[string]*Sym{{}}
		for _, p := range fi.Params {
			if _, dup := c.scopes[0][p.Name]; dup {
				return errf(fn.Pos, "duplicate parameter %s", p.Name)
			}
			if IsBuiltinIdent(p.Name) || IsIntrinsic(p.Name) {
				return errf(fn.Pos, "parameter %s shadows a builtin", p.Name)
			}
			c.scopes[0][p.Name] = p
		}
		if err := c.stmt(fn.Body); err != nil {
			return err
		}
	}
	return nil
}

// recursionPass rejects call cycles: the flow call stack stores return
// addresses only, so registers are statically allocated and recursion would
// clobber them.
func (c *checker) recursionPass() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return errf(c.info.Funcs[name].Decl.Pos, "recursive call cycle through %s (recursion is not supported: registers are statically allocated)", name)
		case black:
			return nil
		}
		color[name] = gray
		for _, callee := range c.info.Funcs[name].Calls {
			if err := visit(callee); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for name := range c.info.Funcs {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// hasValueReturn walks a statement tree looking for "return expr;".
func hasValueReturn(s lang.Stmt) bool {
	switch s := s.(type) {
	case *lang.ReturnStmt:
		return s.X != nil
	case *lang.BlockStmt:
		for _, sub := range s.Stmts {
			if hasValueReturn(sub) {
				return true
			}
		}
	case *lang.IfStmt:
		if hasValueReturn(s.Then) {
			return true
		}
		if s.Else != nil && hasValueReturn(s.Else) {
			return true
		}
	case *lang.WhileStmt:
		return hasValueReturn(s.Body)
	case *lang.ForStmt:
		return hasValueReturn(s.Body)
	case *lang.ParallelStmt:
		for _, arm := range s.Arms {
			if hasValueReturn(arm.Body) {
				return true
			}
		}
	}
	return false
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Sym{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *Sym {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) stmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.BlockStmt:
		c.pushScope()
		defer c.popScope()
		for _, sub := range s.Stmts {
			if err := c.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *lang.VarDecl:
		return c.localDecl(s)
	case *lang.AssignStmt:
		return c.assign(s)
	case *lang.ExprStmt:
		if _, ok := s.X.(*lang.Call); !ok {
			return errf(s.Pos, "expression statement must be a call")
		}
		_, err := c.expr(s.X)
		return err
	case *lang.IfStmt:
		if err := c.scalarCond(s.Cond, "if"); err != nil {
			return err
		}
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
		return nil
	case *lang.WhileStmt:
		if err := c.scalarCond(s.Cond, "while"); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmt(s.Body)
	case *lang.ForStmt:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.scalarCond(s.Cond, "for"); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.stmt(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmt(s.Body)
	case *lang.ParallelStmt:
		for _, arm := range s.Arms {
			k, err := c.expr(arm.Thick)
			if err != nil {
				return err
			}
			if k != KindScalar {
				return errf(arm.Pos, "parallel arm thickness must be scalar")
			}
			c.pushScope()
			// Arms run as separate flows: a surrounding loop's break/
			// continue cannot cross the split.
			saved := c.loopDepth
			c.loopDepth = 0
			err = c.stmt(arm.Body)
			c.loopDepth = saved
			c.popScope()
			if err != nil {
				return err
			}
		}
		return nil
	case *lang.ThickStmt:
		return c.scalarCond(s.X, "thickness statement")
	case *lang.NumaStmt:
		return c.scalarCond(s.X, "NUMA statement")
	case *lang.BarrierStmt, *lang.HaltStmt:
		return nil
	case *lang.SwitchStmt:
		if err := c.scalarCond(s.Subject, "switch"); err != nil {
			return err
		}
		sawDefault := false
		for _, cs := range s.Cases {
			if cs.Values == nil {
				if sawDefault {
					return errf(cs.Pos, "duplicate default case")
				}
				sawDefault = true
			}
			for _, v := range cs.Values {
				k, err := c.expr(v)
				if err != nil {
					return err
				}
				if k != KindScalar {
					return errf(v.GetPos(), "switch case value must be scalar")
				}
			}
			c.pushScope()
			for _, sub := range cs.Body {
				if err := c.stmt(sub); err != nil {
					c.popScope()
					return err
				}
			}
			c.popScope()
		}
		return nil
	case *lang.BreakStmt:
		if c.loopDepth == 0 {
			return errf(s.Pos, "break outside a loop")
		}
		return nil
	case *lang.ContinueStmt:
		if c.loopDepth == 0 {
			return errf(s.Pos, "continue outside a loop")
		}
		return nil
	case *lang.ReturnStmt:
		if s.X != nil {
			k, err := c.expr(s.X)
			if err != nil {
				return err
			}
			if k != KindScalar {
				return errf(s.Pos, "return value must be scalar (reduce thick values first)")
			}
			c.fn.Returns = true
		}
		return nil
	}
	return errf(s.GetPos(), "unhandled statement %T", s)
}

func (c *checker) scalarCond(e lang.Expr, what string) error {
	k, err := c.expr(e)
	if err != nil {
		return err
	}
	if k != KindScalar {
		return errf(e.GetPos(), "%s condition must be scalar: the whole flow selects one path (use thickness manipulation or parallel for thread-dependent choice)", what)
	}
	return nil
}

func (c *checker) localDecl(d *lang.VarDecl) error {
	if d.Space != lang.SpaceReg {
		return errf(d.Pos, "shared/local declarations must be top-level")
	}
	if d.ArrayLen >= 0 {
		return errf(d.Pos, "register variable %s cannot be an array (use a shared/local array)", d.Name)
	}
	if d.Addr >= 0 {
		return errf(d.Pos, "register variable %s cannot bind an address", d.Name)
	}
	if d.InitList != nil {
		return errf(d.Pos, "register variable %s cannot take an initializer list", d.Name)
	}
	scope := c.scopes[len(c.scopes)-1]
	if _, dup := scope[d.Name]; dup {
		return errf(d.Pos, "duplicate variable %s in this scope", d.Name)
	}
	if IsBuiltinIdent(d.Name) || IsIntrinsic(d.Name) {
		return errf(d.Pos, "%s shadows a builtin", d.Name)
	}
	sym := &Sym{Name: d.Name, Decl: d, Space: lang.SpaceReg, Thick: d.Thick,
		ArrayLen: -1, FuncName: c.fn.Decl.Name}
	if d.InitExpr != nil {
		k, err := c.expr(d.InitExpr)
		if err != nil {
			return err
		}
		if !d.Thick && k == KindThick {
			return errf(d.Pos, "cannot initialize scalar %s with a thick value", d.Name)
		}
	}
	scope[d.Name] = sym
	c.info.Syms[d] = sym
	return nil
}

func (c *checker) assign(s *lang.AssignStmt) error {
	rk, err := c.expr(s.RHS)
	if err != nil {
		return err
	}
	if rk == KindVoid {
		return errf(s.Pos, "cannot assign a void call result")
	}
	switch lhs := s.LHS.(type) {
	case *lang.Ident:
		if IsBuiltinIdent(lhs.Name) {
			return errf(lhs.Pos, "cannot assign to builtin %s", lhs.Name)
		}
		sym := c.lookup(lhs.Name)
		if sym == nil {
			return errf(lhs.Pos, "undeclared variable %s", lhs.Name)
		}
		if sym.ArrayLen >= 0 {
			return errf(lhs.Pos, "cannot assign whole array %s", lhs.Name)
		}
		c.info.Syms[lhs] = sym
		lk := sym.Kind()
		if sym.Space != lang.SpaceReg {
			lk = KindScalar // memory scalar word
		}
		if lk == KindScalar && rk == KindThick {
			return errf(s.Pos, "cannot assign thick value to scalar %s (use a reduction: radd/rmax/...)", lhs.Name)
		}
		return nil
	case *lang.Index:
		sym := c.lookup(lhs.Name)
		if sym == nil {
			return errf(lhs.Pos, "undeclared array %s", lhs.Name)
		}
		if sym.ArrayLen < 0 && sym.Space == lang.SpaceReg {
			return errf(lhs.Pos, "%s is not an array", lhs.Name)
		}
		c.info.Syms[lhs] = sym
		ik, err := c.expr(lhs.Idx)
		if err != nil {
			return err
		}
		if ik == KindVoid {
			return errf(lhs.Pos, "array index cannot be void")
		}
		if ik == KindScalar && rk == KindThick {
			return errf(s.Pos, "storing a thick value needs a thick index (each thread stores its own element)")
		}
		return nil
	}
	return errf(s.Pos, "invalid assignment target")
}

// expr computes and records the kind of e.
func (c *checker) expr(e lang.Expr) (Kind, error) {
	k, err := c.exprKind(e)
	if err != nil {
		return k, err
	}
	c.info.Kinds[e] = k
	return k, nil
}

func (c *checker) exprKind(e lang.Expr) (Kind, error) {
	switch e := e.(type) {
	case *lang.IntLit:
		return KindScalar, nil
	case *lang.StrLit:
		return KindVoid, errf(e.Pos, "string literal only valid as prints(...) argument")
	case *lang.Ident:
		if k, ok := builtins[e.Name]; ok {
			return k, nil
		}
		sym := c.lookup(e.Name)
		if sym == nil {
			return KindScalar, errf(e.Pos, "undeclared variable %s", e.Name)
		}
		if sym.ArrayLen >= 0 {
			return KindScalar, errf(e.Pos, "array %s used as a value (index it or take &%s)", e.Name, e.Name)
		}
		c.info.Syms[e] = sym
		if sym.Space != lang.SpaceReg {
			return KindScalar, nil
		}
		return sym.Kind(), nil
	case *lang.Unary:
		return c.expr(e.X)
	case *lang.Binary:
		xk, err := c.expr(e.X)
		if err != nil {
			return xk, err
		}
		yk, err := c.expr(e.Y)
		if err != nil {
			return yk, err
		}
		if xk == KindVoid || yk == KindVoid {
			return KindVoid, errf(e.Pos, "void value in expression")
		}
		if xk == KindThick || yk == KindThick {
			return KindThick, nil
		}
		return KindScalar, nil
	case *lang.Index:
		sym := c.lookup(e.Name)
		if sym == nil {
			return KindScalar, errf(e.Pos, "undeclared array %s", e.Name)
		}
		if sym.ArrayLen < 0 && sym.Space == lang.SpaceReg {
			return KindScalar, errf(e.Pos, "%s is not an array", e.Name)
		}
		c.info.Syms[e] = sym
		ik, err := c.expr(e.Idx)
		if err != nil {
			return ik, err
		}
		if ik == KindVoid {
			return KindVoid, errf(e.Pos, "array index cannot be void")
		}
		return ik, nil
	case *lang.AddrOf:
		sym := c.lookup(e.Name)
		if sym == nil {
			return KindScalar, errf(e.Pos, "undeclared variable %s", e.Name)
		}
		if sym.Space == lang.SpaceReg {
			return KindScalar, errf(e.Pos, "cannot take the address of register variable %s", e.Name)
		}
		c.info.Syms[e] = sym
		if e.Idx == nil {
			return KindScalar, nil
		}
		ik, err := c.expr(e.Idx)
		if err != nil {
			return ik, err
		}
		if ik == KindVoid {
			return KindVoid, errf(e.Pos, "address index cannot be void")
		}
		return ik, nil
	case *lang.Call:
		return c.call(e)
	}
	return KindScalar, errf(e.GetPos(), "unhandled expression %T", e)
}

func (c *checker) call(e *lang.Call) (Kind, error) {
	if sig, ok := intrinsics[e.Name]; ok {
		if len(e.Args) != sig.argc {
			return sig.result, errf(e.Pos, "%s expects %d argument(s), got %d", e.Name, sig.argc, len(e.Args))
		}
		if e.Name == "prints" {
			if _, ok := e.Args[0].(*lang.StrLit); !ok {
				return sig.result, errf(e.Pos, "prints expects a string literal")
			}
			c.info.Kinds[e.Args[0]] = KindVoid
			return sig.result, nil
		}
		for i, a := range e.Args {
			k, err := c.expr(a)
			if err != nil {
				return sig.result, err
			}
			if k == KindVoid {
				return sig.result, errf(e.Pos, "void argument to %s", e.Name)
			}
			// Reductions need a thick argument.
			if sig.argc == 1 && e.Name[0] == 'r' && e.Name != "assert" && k != KindThick {
				return sig.result, errf(e.Pos, "%s reduces a thick value; argument %d is scalar", e.Name, i+1)
			}
			if e.Name == "assert" && k != KindScalar {
				return sig.result, errf(e.Pos, "assert condition must be scalar (reduce thick conditions with rand/ror)")
			}
		}
		return sig.result, nil
	}
	fi, ok := c.info.Funcs[e.Name]
	if !ok {
		return KindScalar, errf(e.Pos, "undefined function %s", e.Name)
	}
	if len(e.Args) != len(fi.Params) {
		return KindScalar, errf(e.Pos, "%s expects %d argument(s), got %d", e.Name, len(fi.Params), len(e.Args))
	}
	for _, a := range e.Args {
		k, err := c.expr(a)
		if err != nil {
			return KindScalar, err
		}
		if k != KindScalar {
			return KindScalar, errf(a.GetPos(), "function arguments must be scalar (thick data passes through memory)")
		}
	}
	c.fn.Calls = append(c.fn.Calls, e.Name)
	if fi.Returns {
		return KindScalar, nil
	}
	return KindVoid, nil
}
