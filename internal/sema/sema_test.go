package sema

import (
	"strings"
	"testing"

	"tcfpram/internal/lang"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func wantErr(t *testing.T, src, sub string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil || !strings.Contains(err.Error(), sub) {
		t.Fatalf("want error containing %q, got %v", sub, err)
	}
}

func TestGlobalsLayout(t *testing.T) {
	info := mustCheck(t, `
shared int a[8] @ 100 = {1, 2, 3};
shared int b[4];
shared int c;
local int d[16];
local int e;
func main() { }
`)
	var a, b, c, d, e *Sym
	for _, g := range info.Prog.Globals {
		sym := info.Syms[g]
		switch g.Name {
		case "a":
			a = sym
		case "b":
			b = sym
		case "c":
			c = sym
		case "d":
			d = sym
		case "e":
			e = sym
		}
	}
	if a.Addr != 100 {
		t.Fatalf("a at %d", a.Addr)
	}
	if b.Addr < 8192 || c.Addr != b.Addr+4 {
		t.Fatalf("auto layout: b=%d c=%d", b.Addr, c.Addr)
	}
	if d.Addr != 0 || e.Addr != 16 {
		t.Fatalf("local layout: d=%d e=%d", d.Addr, e.Addr)
	}
	if len(info.Data) != 1 || info.Data[0].Addr != 100 || len(info.Data[0].Words) != 3 {
		t.Fatalf("data segs: %+v", info.Data)
	}
	if info.SharedTop <= 8192 {
		t.Fatalf("shared top = %d", info.SharedTop)
	}
}

func TestConstInitializers(t *testing.T) {
	info := mustCheck(t, `
shared int x @ 50 = 6 * 7;
local int y @ 3 = -(1 << 4);
func main() { }
`)
	if len(info.Data) != 1 || info.Data[0].Words[0] != 42 {
		t.Fatalf("shared const init: %+v", info.Data)
	}
	if len(info.LocalData) != 1 || info.LocalData[0].Words[0] != -16 {
		t.Fatalf("local const init: %+v", info.LocalData)
	}
}

func TestKindsAnnotation(t *testing.T) {
	info := mustCheck(t, `
shared int a[8];
func main() {
    #8;
    thick int v = tid;
    int s = 3;
    a[v] = v + s;
    a[s] = s;
}
`)
	thickCount, scalarCount := 0, 0
	for _, k := range info.Kinds {
		switch k {
		case KindThick:
			thickCount++
		case KindScalar:
			scalarCount++
		}
	}
	if thickCount == 0 || scalarCount == 0 {
		t.Fatalf("kinds not annotated: %d thick, %d scalar", thickCount, scalarCount)
	}
}

func TestReturnsInference(t *testing.T) {
	info := mustCheck(t, `
func main() { g(); print(f()); }
func f() { return 1; }
func g() { return; }
`)
	if !info.Funcs["f"].Returns {
		t.Fatal("f must return a value")
	}
	if info.Funcs["g"].Returns {
		t.Fatal("g must not return a value")
	}
}

func TestForwardCallSeesReturnValue(t *testing.T) {
	// main calls f before f is declared; f returns a value.
	mustCheck(t, `
func main() { int x = f(); print(x); }
func f() { return 7; }
`)
}

func TestErrorCases(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no-main", "func other() { }", "no main"},
		{"main-params", "func main(x) { }", "main takes no parameters"},
		{"dup-global", "shared int x;\nshared int x;\nfunc main() { }", "duplicate global"},
		{"dup-func", "func f() { }\nfunc f() { }\nfunc main() { }", "duplicate function"},
		{"dup-param", "func f(a, a) { }\nfunc main() { }", "duplicate parameter"},
		{"dup-local", "func main() { int x; int x; }", "duplicate variable"},
		{"undeclared", "func main() { x = 1; }", "undeclared"},
		{"undeclared-read", "func main() { print(x); }", "undeclared"},
		{"undefined-func", "func main() { nope(); }", "undefined function"},
		{"recursion", "func main() { f(); }\nfunc f() { f(); }", "recursive"},
		{"mutual-recursion", "func main() { f(); }\nfunc f() { g(); }\nfunc g() { f(); }", "recursive"},
		{"thick-if", "func main() { #4; thick int v = tid; if (v) { } }", "must be scalar"},
		{"thick-while", "func main() { #4; thick int v = tid; while (v > 0) { } }", "must be scalar"},
		{"thick-to-scalar", "func main() { #4; int s; thick int v = tid; s = v; }", "reduction"},
		{"thick-init-scalar", "func main() { #4; int s = tid; }", "thick value"},
		{"thick-return", "func main() { print(f()); }\nfunc f() { #4; thick int v = tid; return v; }", "must be scalar"},
		{"thick-arg", "func main() { #4; thick int v = tid; f(v); }\nfunc f(x) { }", "must be scalar"},
		{"thick-arm", "func main() { #4; thick int v = tid; parallel { #v: halt; } }", "must be scalar"},
		{"global-thick", "shared thick int v;\nfunc main() { }", "cannot be thick"},
		{"global-nonconst", "shared int x = fid;\nfunc main() { }", "must be constant"},
		{"scalar-init-list", "shared int x = {1, 2};\nfunc main() { }", "initializer list on scalar"},
		{"init-too-long", "shared int a[2] = {1, 2, 3};\nfunc main() { }", "3 elements for length 2"},
		{"local-shared-decl", "func main() { shared int x; }", "must be top-level"},
		{"reg-array", "func main() { int a; thick int b; int c; { int d; } }", ""},
		{"array-as-value", "shared int a[4];\nfunc main() { print(a); }", "used as a value"},
		{"whole-array-assign", "shared int a[4];\nfunc main() { a = 1; }", "whole array"},
		{"not-array", "func main() { int x; print(x[0]); }", "not an array"},
		{"addr-of-reg", "func main() { int x; print(&x); }", "address of register"},
		{"builtin-assign", "func main() { tid = 1; }", "builtin"},
		{"builtin-shadow-var", "func main() { int tid; }", "shadows a builtin"},
		{"builtin-shadow-func", "func mpadd() { }\nfunc main() { }", "shadows a builtin"},
		{"builtin-shadow-global", "shared int tid;\nfunc main() { }", "shadows a builtin"},
		{"intrinsic-arity", "func main() { print(radd(1, 2)); }", "expects 1"},
		{"reduce-scalar", "func main() { print(radd(3)); }", "argument 1 is scalar"},
		{"prints-nonstring", "func main() { prints(3); }", "string literal"},
		{"string-in-expr", `func main() { print("x" + 1); }`, "string literal"},
		{"void-in-expr", "func main() { print(f() + 1); }\nfunc f() { }", "void"},
		{"void-assign", "func main() { int x; x = f(); }\nfunc f() { }", "void"},
		{"expr-stmt", "func main() { 1 + 2; }", "must be a call"},
		{"call-arity", "func f(a) { }\nfunc main() { f(); }", "expects 1"},
		{"thick-numa", "func main() { #4; thick int v = tid; #1/v; }", "must be scalar"},
		{"thick-store-scalar-idx", "shared int a[4];\nfunc main() { #4; thick int v = tid; a[0] = v; }", "thick index"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.want == "" {
				mustCheck(t, c.src)
				return
			}
			wantErr(t, c.src, c.want)
		})
	}
}

func TestScoping(t *testing.T) {
	mustCheck(t, `
func main() {
    int x = 1;
    {
        int x = 2;
        print(x);
    }
    for (int x = 0; x < 3; x += 1) { }
    print(x);
}
`)
}

func TestIsBuiltinHelpers(t *testing.T) {
	if !IsBuiltinIdent("tid") || IsBuiltinIdent("foo") {
		t.Fatal("IsBuiltinIdent")
	}
	if !IsIntrinsic("mpadd") || IsIntrinsic("bar") {
		t.Fatal("IsIntrinsic")
	}
	if KindScalar.String() != "scalar" || KindThick.String() != "thick" || KindVoid.String() != "void" {
		t.Fatal("kind names")
	}
}

func TestParallelArmScopes(t *testing.T) {
	mustCheck(t, `
func main() {
    parallel {
        #2: { int x = 1; print(x); }
        #2: { int x = 2; print(x); }
    }
}
`)
}

// Kitchen-sink happy path: every statement and expression form checks.
func TestFullLanguageChecks(t *testing.T) {
	info := mustCheck(t, `
shared int a[16] @ 100 = {1, 2, 3};
shared int total = 2 + 3 * 4 - (10 / 2) % 3 + (1 << 3) - (16 >> 2) + -1 + ~0 + !0;
local int buf[8];

func main() {
    #16;
    thick int v = a[tid] * 2 + (tid & 1) | (tid ^ 3);
    int s = radd(v) + rmax(v) - rmin(v) + rand(v) + ror(v);
    a[tid] = mpadd(&total, v) + mpmax(&a[0], v) + mpmin(&a[1], v)
           + mpand(&a[2], v) + mpor(&a[3], v);
    madd(&total, 1);
    mand(&total, -1);
    mor(&total, 0);
    mmax(&total, s);
    mmin(&total, s);
    if (s > 0 && s < 100 || !s) {
        buf[0] = s;
    } else {
        buf[1] = s;
    }
    while (s > 0) {
        s -= 1;
        if (s == 3) { continue; }
        if (s == 1) { break; }
    }
    for (int i = 0; i < 4; i += 1) {
        switch (i) {
        case 0, 1:
            buf[i] = i;
        default:
            buf[i] = -i;
        }
    }
    parallel {
        #8: a[tid] += 1;
        #8: a[tid + 8] += helper(2, 3);
    }
    #1/4;
    total += buf[0];
    #1;
    print(total);
    prints("done");
    assert(1);
    halt;
}

func helper(x, y) {
    return x * y;
}
`)
	if info.SharedTop <= 8192 {
		t.Fatal("no auto allocation happened")
	}
	if !info.Funcs["helper"].Returns {
		t.Fatal("helper returns")
	}
}

func TestConstFoldForms(t *testing.T) {
	// Exercise every folding operator through global initializers.
	info := mustCheck(t, `
shared int a = 1 + 2;
shared int b = 5 - 1;
shared int c = 3 * 4;
shared int d = 9 / 2;
shared int e = 9 % 2;
shared int f = 6 / 0;
shared int g = 6 % 0;
shared int h = 1 << 70;
shared int i = 1 << -1;
shared int j = 16 >> 2;
shared int k = -(3);
shared int l = ~0;
shared int m = !5;
shared int n = !0;
func main() { }
`)
	want := map[int]int64{0: 3, 1: 4, 2: 12, 3: 4, 4: 1, 5: 0, 6: 0,
		7: -1 << 63, 8: 1, 9: 4, 10: -3, 11: -1, 12: 0, 13: 1}
	for i, seg := range info.Data {
		if seg.Words[0] != want[i] {
			t.Fatalf("const %d = %d, want %d", i, seg.Words[0], want[i])
		}
	}
}
