package trace

import (
	"fmt"
	"strings"

	"tcfpram/internal/machine"
)

// SVG renders the execution schedule as a scalable vector graphic in the
// style of the paper's Figures 7-12: time (steps) on the X axis, one band
// per processor group on the Y axis, one rectangle per executed slice whose
// height is proportional to its lane count, colored by flow.
func SVG(m *machine.Machine) string {
	recs := m.Trace()
	groups := m.Config().Groups

	// Vertical scale: the largest per-step per-group lane total.
	maxLanes := 1
	for _, rec := range recs {
		perGroup := map[int]int{}
		for _, s := range rec.Slices {
			n := s.Lanes
			if n < 1 {
				n = 1
			}
			perGroup[s.Group] += n
		}
		for _, n := range perGroup {
			if n > maxLanes {
				maxLanes = n
			}
		}
	}

	const (
		cellW    = 26
		laneH    = 6
		bandGap  = 24
		marginX  = 70
		marginY  = 30
		labelPad = 8
	)
	bandH := maxLanes*laneH + bandGap
	width := marginX + len(recs)*cellW + 20
	height := marginY + groups*bandH + 20

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16">schedule: %d steps, %d groups (height = lanes per slice)</text>`+"\n",
		marginX, len(recs), groups)

	for g := 0; g < groups; g++ {
		bandTop := marginY + g*bandH
		fmt.Fprintf(&b, `<text x="%d" y="%d">G%d</text>`+"\n", labelPad, bandTop+12, g)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ccc"/>`+"\n",
			marginX, bandTop+bandH-bandGap/2, marginX+len(recs)*cellW, bandTop+bandH-bandGap/2)
	}
	for i, rec := range recs {
		x := marginX + i*cellW
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#888">%d</text>`+"\n", x, marginY-6, rec.Step)
		yOff := map[int]int{}
		for _, s := range rec.Slices {
			n := s.Lanes
			if n < 1 {
				n = 1
			}
			bandTop := marginY + s.Group*bandH
			y := bandTop + yOff[s.Group]*laneH
			yOff[s.Group] += n
			h := n * laneH
			fmt.Fprintf(&b,
				`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333" stroke-width="0.5"><title>step %d: flow %d %s x%d</title></rect>`+"\n",
				x, y, cellW-2, h, flowColor(s.Flow), rec.Step, s.Flow, s.Op, s.Lanes)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// flowColor assigns a stable, readable color per flow id.
func flowColor(flow int) string {
	palette := []string{
		"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
		"#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
	}
	return palette[((flow%len(palette))+len(palette))%len(palette)]
}
