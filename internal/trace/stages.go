package trace

import (
	"fmt"
	"strings"

	"tcfpram/internal/machine"
)

// StageCollector accumulates per-step, per-stage cost attribution through
// the machine's Config.StageObserver hook — the live-streaming counterpart
// of the cumulative Stats.Stages array. Install it before the run:
//
//	var sc trace.StageCollector
//	cfg.StageObserver = &sc
type StageCollector struct {
	Totals [machine.NumStages]machine.StageStats
	Steps  int64
}

// ObserveStage implements machine.StageObserver.
func (c *StageCollector) ObserveStage(step int64, stage machine.Stage, d machine.StageStats) {
	c.Totals[stage].Cycles += d.Cycles
	c.Totals[stage].Events += d.Events
	if stage == machine.Stage(0) {
		c.Steps++
	}
}

func (c *StageCollector) String() string {
	return formatStages(c.Totals, c.Steps)
}

// StageTable renders the cumulative per-stage attribution of a finished
// run: how the simulated cycles and stage events distribute over the
// Figure 13 pipeline stages (frontend, operation generation, memory
// resolution, commit).
func StageTable(s *machine.Stats) string {
	return formatStages(s.Stages, s.Steps)
}

func formatStages(stages [machine.NumStages]machine.StageStats, steps int64) string {
	var totalCycles, totalEvents int64
	for _, st := range stages {
		totalCycles += st.Cycles
		totalEvents += st.Events
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %8s %12s\n", "stage", "cycles", "share", "events")
	for s := machine.Stage(0); s < machine.NumStages; s++ {
		share := 0.0
		if totalCycles > 0 {
			share = float64(stages[s].Cycles) / float64(totalCycles)
		}
		fmt.Fprintf(&b, "%-10s %12d %7.1f%% %12d\n",
			s, stages[s].Cycles, 100*share, stages[s].Events)
	}
	fmt.Fprintf(&b, "%-10s %12d %8s %12d  (%d steps)\n", "total", totalCycles, "", totalEvents, steps)
	return b.String()
}
