package trace

import (
	"strings"
	"testing"

	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
	"tcfpram/internal/workload"
)

func tracedRun(t *testing.T, kind variant.Kind, w workload.Workload, tweak func(*machine.Config)) *machine.Machine {
	t.Helper()
	cfg := machine.Default(kind)
	cfg.TraceEnabled = true
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(w.Program); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTimelineAndGanttRender(t *testing.T) {
	m := tracedRun(t, variant.SingleInstruction, workload.VectorAdd(workload.StyleTCF, 8, 16, 0), nil)
	tl := Timeline(m)
	if !strings.Contains(tl, "step") || !strings.Contains(tl, "G0") {
		t.Fatalf("timeline header missing:\n%s", tl)
	}
	if !strings.Contains(tl, "ADDx8") {
		t.Fatalf("timeline missing thick ADD:\n%s", tl)
	}
	g := Gantt(m)
	if !strings.Contains(g, "00000000") {
		t.Fatalf("gantt missing 8-lane occupancy of flow 0:\n%s", g)
	}
}

func TestNUMAMarkedInTimeline(t *testing.T) {
	src := `
main:
    NUMA 4
    LDI S0, 1
    ADD S0, S0, S0
    ADD S0, S0, S0
    ADD S0, S0, S0
    PRAM
    HALT
`
	cfg := machine.Default(variant.SingleInstruction)
	cfg.TraceEnabled = true
	m, _ := machine.New(cfg)
	m.LoadProgram(isa.MustAssemble("t", src))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if tl := Timeline(m); !strings.Contains(tl, "/1") {
		t.Fatalf("NUMA slices not marked:\n%s", tl)
	}
}

func TestThicknessTimeline(t *testing.T) {
	src := `
main:
    SETTHICK 4
    TID V0
    SETTHICK 8
    TID V0
    SETTHICK 2
    TID V0
    HALT
`
	cfg := machine.Default(variant.SingleInstruction)
	cfg.TraceEnabled = true
	m, _ := machine.New(cfg)
	m.LoadProgram(isa.MustAssemble("t", src))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tlm := ThicknessTimeline(m, 0)
	// The TID steps must show 4, then 8, then 2 lanes, in order.
	var thick []int
	for _, l := range tlm {
		if l > 1 {
			thick = append(thick, l)
		}
	}
	want := []int{4, 8, 2}
	if len(thick) != 3 || thick[0] != want[0] || thick[1] != want[1] || thick[2] != want[2] {
		t.Fatalf("thickness timeline = %v (thick %v), want %v", tlm, thick, want)
	}
}

func TestSpans(t *testing.T) {
	m := tracedRun(t, variant.SingleInstruction, workload.ConditionalHalves(workload.StyleTCF, 12), nil)
	spans := Spans(m)
	if len(spans) != 3 { // parent + two arms
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Flow != 0 {
		t.Fatalf("spans not sorted: %v", spans)
	}
	for _, sp := range spans[1:] {
		if sp.MaxLanes != 6 {
			t.Fatalf("arm lanes = %d, want 6", sp.MaxLanes)
		}
		if sp.FirstStep <= spans[0].FirstStep {
			t.Fatalf("child started before parent: %v", spans)
		}
	}
}

func TestCSV(t *testing.T) {
	m := tracedRun(t, variant.SingleInstruction, workload.VectorAdd(workload.StyleTCF, 4, 16, 0), nil)
	csv := CSV(m)
	if !strings.HasPrefix(csv, "step,group,slot,flow,pc,op,lanes,numa\n") {
		t.Fatalf("csv header:\n%s", csv)
	}
	if !strings.Contains(csv, ",ADD,4,false") {
		t.Fatalf("csv missing ADD row:\n%s", csv)
	}
}

func TestGroupOccupancySpreads(t *testing.T) {
	m := tracedRun(t, variant.SingleInstruction, workload.Allocation(64, 4, 4), nil)
	occ := GroupOccupancy(m)
	busy := 0
	for _, o := range occ {
		if o > 16 {
			busy++
		}
	}
	if busy < 4 {
		t.Fatalf("horizontal allocation should occupy all 4 groups: %v", occ)
	}
}

func TestBalancedGanttBounded(t *testing.T) {
	m := tracedRun(t, variant.Balanced, workload.VectorAdd(workload.StyleTCF, 12, 16, 0),
		func(c *machine.Config) { c.BalancedBound = 4 })
	// No step row of group 0 may show more than 4 slice characters for
	// elementwise ops; the Gantt makes that visible as short rows.
	for _, rec := range m.Trace() {
		lanes := 0
		for _, s := range rec.Slices {
			if s.Group == 0 && !s.Op.Info().Control && !s.Op.IsReduction() {
				lanes += s.Lanes
			}
		}
		if lanes > 4 {
			t.Fatalf("step %d executed %d lanes > bound", rec.Step, lanes)
		}
	}
}

func TestSVGRendering(t *testing.T) {
	m := tracedRun(t, variant.SingleInstruction, workload.ConditionalHalves(workload.StyleTCF, 12), nil)
	svg := SVG(m)
	if !strings.HasPrefix(svg, "<svg xmlns=") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatalf("not an svg document:\n%.200s", svg)
	}
	// Both arms and the parent must appear as colored rectangles with
	// descriptive titles.
	for _, want := range []string{"flow 0", "flow 1", "flow 2", "x6", "<rect", "<title>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Distinct flows get distinct colors.
	if flowColor(0) == flowColor(1) {
		t.Fatal("flow colors collide")
	}
}
