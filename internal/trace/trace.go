// Package trace renders machine execution traces as ASCII schedules,
// reproducing the shape of the paper's execution figures (Figures 4 and
// 6-12): which flow executed how many operation slices on which processor
// group in each step.
package trace

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"tcfpram/internal/machine"
)

// Timeline renders one row per step and one column per group; each cell
// lists the executed slices as "f<id>:<OP>xN" (N = lanes; "/N" marks NUMA
// bunch instructions).
func Timeline(m *machine.Machine) string {
	recs := m.Trace()
	groups := m.Config().Groups
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "step")
	for g := 0; g < groups; g++ {
		fmt.Fprintf(&b, " | %-28s", fmt.Sprintf("G%d", g))
	}
	b.WriteByte('\n')
	for _, rec := range recs {
		cells := make([][]string, groups)
		for _, s := range rec.Slices {
			sep := "x"
			if s.NUMA {
				sep = "/"
			}
			cells[s.Group] = append(cells[s.Group],
				fmt.Sprintf("f%d:%s%s%d", s.Flow, s.Op, sep, s.Lanes))
		}
		fmt.Fprintf(&b, "%-6d", rec.Step)
		for g := 0; g < groups; g++ {
			fmt.Fprintf(&b, " | %-28s", strings.Join(cells[g], " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Gantt renders the operation-slice occupancy of each group per step: one
// character per executed operation slice, labelled by the flow id (mod 10).
// The unbalanced execution of thick vs thin flows (Figure 7), the bounded
// slices of the balanced variant (Figure 8) and the thin stripes of
// thickness-1 thread machines (Figures 10-11) are directly visible.
func Gantt(m *machine.Machine) string {
	recs := m.Trace()
	groups := m.Config().Groups
	var b strings.Builder
	for g := 0; g < groups; g++ {
		fmt.Fprintf(&b, "G%d:\n", g)
		for _, rec := range recs {
			var row strings.Builder
			for _, s := range rec.Slices {
				if s.Group != g {
					continue
				}
				ch := byte('0' + s.Flow%10)
				n := s.Lanes
				if n < 1 {
					n = 1
				}
				for i := 0; i < n; i++ {
					row.WriteByte(ch)
				}
				row.WriteByte(' ')
			}
			if row.Len() == 0 {
				continue
			}
			fmt.Fprintf(&b, "  step %-4d |%s\n", rec.Step, strings.TrimRight(row.String(), " "))
		}
	}
	return b.String()
}

// ThicknessTimeline reports the lane count the given flow executed per step
// — the thickness evolution of a TCF (Figure 4). Steps where the flow did
// not execute are omitted.
func ThicknessTimeline(m *machine.Machine, flowID int) []int {
	var out []int
	for _, rec := range m.Trace() {
		lanes, saw := 0, false
		for _, s := range rec.Slices {
			if s.Flow != flowID {
				continue
			}
			saw = true
			if s.Lanes > lanes {
				lanes = s.Lanes
			}
		}
		if saw {
			out = append(out, lanes)
		}
	}
	return out
}

// FlowSpans summarizes, per flow, the first and last step it executed and
// the total operation slices — the block structure of a TCF program
// (Figure 3).
type FlowSpan struct {
	Flow        int
	FirstStep   int64
	LastStep    int64
	TotalSlices int
	MaxLanes    int
}

// Spans computes the FlowSpan of every flow that executed.
func Spans(m *machine.Machine) []FlowSpan {
	byFlow := map[int]*FlowSpan{}
	for _, rec := range m.Trace() {
		for _, s := range rec.Slices {
			sp, ok := byFlow[s.Flow]
			if !ok {
				sp = &FlowSpan{Flow: s.Flow, FirstStep: rec.Step}
				byFlow[s.Flow] = sp
			}
			sp.LastStep = rec.Step
			sp.TotalSlices += s.Lanes
			if s.Lanes > sp.MaxLanes {
				sp.MaxLanes = s.Lanes
			}
		}
	}
	out := make([]FlowSpan, 0, len(byFlow))
	for _, sp := range byFlow {
		out = append(out, *sp)
	}
	slices.SortFunc(out, func(a, b FlowSpan) int { return cmp.Compare(a.Flow, b.Flow) })
	return out
}

// CSV exports the trace as "step,group,slot,flow,pc,op,lanes,numa" rows.
func CSV(m *machine.Machine) string {
	var b strings.Builder
	b.WriteString("step,group,slot,flow,pc,op,lanes,numa\n")
	for _, rec := range m.Trace() {
		for _, s := range rec.Slices {
			fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%s,%d,%t\n",
				rec.Step, s.Group, s.Slot, s.Flow, s.PC, s.Op, s.Lanes, s.NUMA)
		}
	}
	return b.String()
}

// GroupOccupancy returns, per group, the total operation slices executed —
// the load balance view behind the horizontal-allocation discussion.
func GroupOccupancy(m *machine.Machine) []int {
	out := make([]int, m.Config().Groups)
	for _, rec := range m.Trace() {
		for _, s := range rec.Slices {
			out[s.Group] += s.Lanes
		}
	}
	return out
}
