package multiop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcfpram/internal/isa"
)

func TestApplyOperators(t *testing.T) {
	cases := []struct {
		kind isa.Op
		a, b int64
		want int64
	}{
		{isa.ADD, 3, 4, 7},
		{isa.AND, 0b1100, 0b1010, 0b1000},
		{isa.OR, 0b1100, 0b1010, 0b1110},
		{isa.MAX, 3, 9, 9},
		{isa.MAX, 9, 3, 9},
		{isa.MIN, 3, 9, 3},
		{isa.MIN, -5, 2, -5},
	}
	for _, c := range cases {
		if got := Apply(c.kind, c.a, c.b); got != c.want {
			t.Errorf("Apply(%s, %d, %d) = %d, want %d", c.kind, c.a, c.b, got, c.want)
		}
	}
}

func TestApplyPanicsOnBadOperator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Apply(isa.SUB, 1, 2)
}

func TestNewCombinerRejectsBadOperator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCombiner(isa.XOR)
}

func TestResolveEmpty(t *testing.T) {
	c := NewCombiner(isa.ADD)
	finals, prefixes := c.Resolve(func(int64) int64 { return 0 })
	if finals != nil || prefixes != nil {
		t.Fatal("empty resolve should return nils")
	}
}

func TestMultioperationSum(t *testing.T) {
	c := NewCombiner(isa.ADD)
	for i := 0; i < 8; i++ {
		c.Add(Contribution{Addr: 10, Val: int64(i + 1), Key: Key{Thread: i}})
	}
	finals, prefixes := c.Resolve(func(int64) int64 { return 100 })
	if len(prefixes) != 0 {
		t.Fatalf("no prefixes requested, got %d", len(prefixes))
	}
	if finals[10] != 100+36 {
		t.Fatalf("final = %d, want 136", finals[10])
	}
}

func TestMultiprefixOrderedByKey(t *testing.T) {
	c := NewCombiner(isa.ADD)
	// Insert in scrambled order; prefixes must follow key order.
	order := []int{3, 0, 2, 1}
	for _, i := range order {
		c.Add(Contribution{Addr: 5, Val: 1, Key: Key{Thread: i}, WantPrefix: true, Dest: i})
	}
	finals, prefixes := c.Resolve(func(int64) int64 { return 0 })
	if finals[5] != 4 {
		t.Fatalf("final = %d, want 4", finals[5])
	}
	if len(prefixes) != 4 {
		t.Fatalf("got %d prefixes", len(prefixes))
	}
	for i, p := range prefixes {
		if p.Key.Thread != i {
			t.Fatalf("prefix %d has key thread %d", i, p.Key.Thread)
		}
		if p.Prefix != int64(i) {
			t.Fatalf("prefix for thread %d = %d, want %d", i, p.Prefix, i)
		}
		if p.Dest != i {
			t.Fatalf("dest echo broken: %d", p.Dest)
		}
	}
}

func TestMultiprefixSeparateAddresses(t *testing.T) {
	c := NewCombiner(isa.ADD)
	c.Add(Contribution{Addr: 1, Val: 10, Key: Key{Thread: 0}, WantPrefix: true})
	c.Add(Contribution{Addr: 2, Val: 20, Key: Key{Thread: 1}, WantPrefix: true})
	finals, prefixes := c.Resolve(func(addr int64) int64 { return addr * 100 })
	if finals[1] != 110 || finals[2] != 220 {
		t.Fatalf("finals = %v", finals)
	}
	if prefixes[0].Prefix != 100 || prefixes[1].Prefix != 200 {
		t.Fatalf("prefixes = %v", prefixes)
	}
}

func TestResolveClearsState(t *testing.T) {
	c := NewCombiner(isa.ADD)
	c.Add(Contribution{Addr: 1, Val: 1})
	c.Resolve(func(int64) int64 { return 0 })
	if c.Len() != 0 {
		t.Fatal("combiner should be empty after resolve")
	}
	finals, _ := c.Resolve(func(int64) int64 { return 0 })
	if finals != nil {
		t.Fatal("second resolve should be empty")
	}
}

// Property: multiprefix over ADD equals the sequential exclusive prefix sum
// in key order, and the final is initial + total.
func TestMultiprefixMatchesSequentialScan(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%32) + 1
		vals := make([]int64, count)
		for i := range vals {
			vals[i] = int64(rng.Intn(100) - 50)
		}
		c := NewCombiner(isa.ADD)
		perm := rng.Perm(count)
		for _, i := range perm {
			c.Add(Contribution{Addr: 7, Val: vals[i], Key: Key{Flow: i / 8, Thread: i % 8}, WantPrefix: true, Dest: i})
		}
		initial := int64(rng.Intn(1000))
		finals, prefixes := c.Resolve(func(int64) int64 { return initial })
		acc := initial
		for idx, p := range prefixes {
			i := idx // key order == construction order (flow-major then thread)
			if p.Prefix != acc {
				return false
			}
			if p.Dest != i {
				return false
			}
			acc += vals[i]
		}
		return finals[7] == acc
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for every combining operator, the final value equals a left fold
// over key-sorted contributions.
func TestResolveEqualsFold(t *testing.T) {
	kinds := []isa.Op{isa.ADD, isa.AND, isa.OR, isa.MAX, isa.MIN}
	prop := func(seed int64, kindSel uint8) bool {
		kind := kinds[int(kindSel)%len(kinds)]
		rng := rand.New(rand.NewSource(seed))
		count := rng.Intn(20) + 1
		c := NewCombiner(kind)
		vals := make([]int64, count)
		for i := range vals {
			vals[i] = int64(rng.Intn(64))
			c.Add(Contribution{Addr: 3, Val: vals[i], Key: Key{Thread: i}})
		}
		initial := int64(rng.Intn(64))
		finals, _ := c.Resolve(func(int64) int64 { return initial })
		want := initial
		for _, v := range vals {
			want = Apply(kind, want, v)
		}
		return finals[3] == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeLatency(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := TreeLatency(n); got != want {
			t.Errorf("TreeLatency(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestIdentity(t *testing.T) {
	for _, kind := range []isa.Op{isa.ADD, isa.AND, isa.OR, isa.MAX, isa.MIN} {
		id := Identity(kind)
		for _, v := range []int64{-17, 0, 3, 1 << 40} {
			if got := Apply(kind, id, v); got != v {
				t.Errorf("%s identity broken: Apply(id, %d) = %d", kind, v, got)
			}
		}
	}
}

func TestKeyOrderingTotal(t *testing.T) {
	prop := func(f1, t1, s1, f2, t2, s2 uint8) bool {
		a := Key{int(f1 % 4), int(t1 % 4), int(s1 % 4)}
		b := Key{int(f2 % 4), int(t2 % 4), int(s2 % 4)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
