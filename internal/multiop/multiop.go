// Package multiop implements the step-granular combining memory operations
// of the (extended) PRAM-NUMA model: multioperations (all participating
// threads of a step combine into one shared-memory word) and multiprefixes
// (each thread additionally receives the running value before its own
// contribution, ordered by flow id and thread index).
//
// The model assumes the active-memory/combining hardware of ESM machines
// executes these with constant latency per step; this package reproduces the
// semantics and provides a combining-tree latency estimate for the cost
// model.
package multiop

import (
	"cmp"
	"fmt"
	"slices"

	"tcfpram/internal/isa"
)

// Contribution is one thread's participation in a combining operation on a
// word during a step.
type Contribution struct {
	Addr int64
	Val  int64
	Key  Key
	// WantPrefix marks multiprefix participants that receive the running
	// value; plain multioperation participants set it false.
	WantPrefix bool
	// Dest tags where the caller wants the prefix routed (opaque to this
	// package; the machine stores flow/thread indices here again, but the
	// combiner just echoes it).
	Dest int
}

// Key orders contributions: lower (Flow, Thread, Seq) combines earlier.
// This is the deterministic ordered multiprefix of the paper's prefix(...)
// primitive.
type Key struct {
	Flow   int
	Thread int
	Seq    int
}

// Less compares keys lexicographically.
func (k Key) Less(o Key) bool {
	if k.Flow != o.Flow {
		return k.Flow < o.Flow
	}
	if k.Thread != o.Thread {
		return k.Thread < o.Thread
	}
	return k.Seq < o.Seq
}

// Result delivers the prefix value for one WantPrefix contribution.
type Result struct {
	Key    Key
	Dest   int
	Prefix int64
}

// Combiner accumulates one step's combining traffic for a single combining
// operator (ADD, AND, OR, MAX or MIN, expressed as the isa opcode).
type Combiner struct {
	kind isa.Op
	cs   []Contribution
	// finals and prefixes are reused across Resolve calls so steady-state
	// steps allocate nothing.
	finals   map[int64]int64
	prefixes []Result
}

// NewCombiner returns a Combiner for the given combining operator.
func NewCombiner(kind isa.Op) *Combiner {
	switch kind {
	case isa.ADD, isa.AND, isa.OR, isa.MAX, isa.MIN:
	default:
		panic(fmt.Sprintf("multiop: invalid combining operator %s", kind))
	}
	return &Combiner{kind: kind}
}

// NewCombinerBank builds one combiner per kind, all backed by a single
// allocation (a machine carries five; fresh machines are built in hot
// harness loops).
func NewCombinerBank(kinds []isa.Op) []*Combiner {
	arr := make([]Combiner, len(kinds))
	out := make([]*Combiner, len(kinds))
	for i, kind := range kinds {
		switch kind {
		case isa.ADD, isa.AND, isa.OR, isa.MAX, isa.MIN:
		default:
			panic(fmt.Sprintf("multiop: invalid combining operator %s", kind))
		}
		arr[i].kind = kind
		out[i] = &arr[i]
	}
	return out
}

// Kind returns the combining operator.
func (c *Combiner) Kind() isa.Op { return c.kind }

// Add records a contribution.
func (c *Combiner) Add(ct Contribution) { c.cs = append(c.cs, ct) }

// Len returns the number of recorded contributions.
func (c *Combiner) Len() int { return len(c.cs) }

// Reset discards any recorded contributions, keeping the backing arenas. A
// run that stops between Add and Resolve (quota abort, cancellation) leaves
// traffic behind; pooled machines clear it here before reuse.
func (c *Combiner) Reset() { c.cs = c.cs[:0] }

// Apply combines a pair under the operator.
func (c *Combiner) Apply(a, b int64) int64 {
	return Apply(c.kind, a, b)
}

// Apply combines a pair under the given operator.
func Apply(kind isa.Op, a, b int64) int64 {
	switch kind {
	case isa.ADD:
		return a + b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.MAX:
		if a > b {
			return a
		}
		return b
	case isa.MIN:
		if a < b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("multiop: invalid combining operator %s", kind))
}

// Resolve combines all contributions against the read function (pre-step
// memory state), returning the final value per touched address and the
// prefix results for WantPrefix contributions. The contribution order is
// (Flow, Thread, Seq); the prefix a participant sees is the combined value
// of the memory word and all lower-keyed contributions. The step's traffic
// is cleared. The returned map and slice are owned by the Combiner and
// valid only until the next Resolve call.
func (c *Combiner) Resolve(read func(addr int64) int64) (finals map[int64]int64, prefixes []Result) {
	if len(c.cs) == 0 {
		return nil, nil
	}
	slices.SortFunc(c.cs, func(a, b Contribution) int {
		if r := cmp.Compare(a.Addr, b.Addr); r != 0 {
			return r
		}
		if r := cmp.Compare(a.Key.Flow, b.Key.Flow); r != 0 {
			return r
		}
		if r := cmp.Compare(a.Key.Thread, b.Key.Thread); r != 0 {
			return r
		}
		return cmp.Compare(a.Key.Seq, b.Key.Seq)
	})
	if c.finals == nil {
		c.finals = make(map[int64]int64)
	} else {
		clear(c.finals)
	}
	c.prefixes = c.prefixes[:0]
	for i := 0; i < len(c.cs); {
		addr := c.cs[i].Addr
		acc := read(addr)
		j := i
		for ; j < len(c.cs) && c.cs[j].Addr == addr; j++ {
			if c.cs[j].WantPrefix {
				c.prefixes = append(c.prefixes, Result{Key: c.cs[j].Key, Dest: c.cs[j].Dest, Prefix: acc})
			}
			acc = c.Apply(acc, c.cs[j].Val)
		}
		c.finals[addr] = acc
		i = j
	}
	c.cs = c.cs[:0]
	return c.finals, c.prefixes
}

// TreeLatency estimates the combining latency in cycles for n participants
// combined by a binary combining tree inside the network/memory modules:
// ceil(log2 n) levels, constant per step as the paper's architectures
// assume, but exposed so ablation benches can charge it explicitly.
func TreeLatency(n int) int {
	if n <= 1 {
		return 0
	}
	l := 0
	for p := 1; p < n; p <<= 1 {
		l++
	}
	return l
}

// Identity returns the identity element of the combining operator, the value
// an empty combining subtree contributes.
func Identity(kind isa.Op) int64 {
	switch kind {
	case isa.ADD:
		return 0
	case isa.AND:
		return -1 // all ones
	case isa.OR:
		return 0
	case isa.MAX:
		return -1 << 63
	case isa.MIN:
		return 1<<63 - 1
	}
	panic(fmt.Sprintf("multiop: invalid combining operator %s", kind))
}
