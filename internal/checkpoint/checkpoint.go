// Package checkpoint implements the versioned, checksummed binary container
// used for machine snapshots: a magic string, a format version, a sequence of
// named sections of primitive values (varints, byte strings, int64 slices),
// and a CRC-64 trailer over everything before it.
//
// The container deliberately knows nothing about machines: the machine layer
// (and any future producer) writes its state through the Encoder primitives
// and reads it back through the mirroring Decoder. Section markers carry
// their names in the stream, so a reader that has drifted out of sync fails
// with "expected section X, found Y" instead of decoding garbage, and the
// trailing checksum rejects truncation and bit rot before any partial state
// escapes.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// ErrCorrupt reports a malformed, truncated or checksum-mismatched
// container. All Decoder failures that indicate bad data (rather than an
// underlying I/O error) wrap it.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// maxBlob bounds one length-prefixed byte string or slice so a corrupted
// length cannot drive a multi-gigabyte allocation before the checksum check.
const maxBlob = 1 << 30

// crcTable is the ECMA polynomial table shared by Encoder and Decoder.
var crcTable = crc64.MakeTable(crc64.ECMA)

// tag bytes distinguishing stream elements; each primitive is tagged so a
// writer/reader mismatch surfaces as a structural error at the exact spot.
const (
	tagSection = 0xA1
	tagUvarint = 0xA2
	tagBytes   = 0xA3
	tagInt64s  = 0xA4
)

// Encoder writes one container. Errors are sticky: after the first failure
// every call is a no-op and Close returns the error.
type Encoder struct {
	w   *bufio.Writer
	crc uint64
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewEncoder starts a container on w: magic bytes, then the format version.
func NewEncoder(w io.Writer, magic string, version uint64) *Encoder {
	e := &Encoder{w: bufio.NewWriter(w)}
	e.raw([]byte(magic))
	e.Uvarint(version)
	return e
}

// raw writes b, folding it into the running checksum.
func (e *Encoder) raw(b []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(b); err != nil {
		e.err = err
		return
	}
	e.crc = crc64.Update(e.crc, crcTable, b)
}

// Uvarint writes one unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.raw([]byte{tagUvarint})
	n := binary.PutUvarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

// Varint writes one signed varint (zig-zag).
func (e *Encoder) Varint(v int64) { e.Uvarint(zigzag(v)) }

// Int writes an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Bool writes a boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uvarint(1)
	} else {
		e.Uvarint(0)
	}
}

// Bytes writes a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.raw([]byte{tagBytes})
	n := binary.PutUvarint(e.buf[:], uint64(len(b)))
	e.raw(e.buf[:n])
	e.raw(b)
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) { e.Bytes([]byte(s)) }

// Int64s writes a length-prefixed slice of signed varints.
func (e *Encoder) Int64s(vs []int64) {
	e.raw([]byte{tagInt64s})
	n := binary.PutUvarint(e.buf[:], uint64(len(vs)))
	e.raw(e.buf[:n])
	for _, v := range vs {
		n := binary.PutUvarint(e.buf[:], zigzag(v))
		e.raw(e.buf[:n])
	}
}

// Ints writes a length-prefixed slice of ints.
func (e *Encoder) Ints(vs []int) {
	e.raw([]byte{tagInt64s})
	n := binary.PutUvarint(e.buf[:], uint64(len(vs)))
	e.raw(e.buf[:n])
	for _, v := range vs {
		n := binary.PutUvarint(e.buf[:], zigzag(int64(v)))
		e.raw(e.buf[:n])
	}
}

// Section writes a named section marker.
func (e *Encoder) Section(name string) {
	e.raw([]byte{tagSection})
	n := binary.PutUvarint(e.buf[:], uint64(len(name)))
	e.raw(e.buf[:n])
	e.raw([]byte(name))
}

// Close writes the CRC-64 trailer and flushes. It returns the first error
// encountered anywhere in the encode.
func (e *Encoder) Close() error {
	if e.err != nil {
		return e.err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], e.crc)
	if _, err := e.w.Write(tail[:]); err != nil {
		return err
	}
	return e.w.Flush()
}

// Err returns the sticky error, if any.
func (e *Encoder) Err() error { return e.err }

// Decoder reads one container written by Encoder. Errors are sticky; the
// caller checks Err (or Close) once after reading, not after every field.
type Decoder struct {
	r       *bufio.Reader
	crc     uint64
	version uint64
	err     error
}

// NewDecoder opens a container, verifying the magic and reading the version.
func NewDecoder(r io.Reader, magic string) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r)}
	got := make([]byte, len(magic))
	d.full(got)
	if d.err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, d.err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, got, magic)
	}
	d.version = d.Uvarint()
	if d.err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrCorrupt, d.err)
	}
	return d, nil
}

// Version returns the container's format version.
func (d *Decoder) Version() uint64 { return d.version }

// full reads len(b) bytes, folding them into the running checksum.
func (d *Decoder) full(b []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return
	}
	d.crc = crc64.Update(d.crc, crcTable, b)
}

// byteIn reads one byte through the checksum.
func (d *Decoder) byteIn() byte {
	if d.err != nil {
		return 0
	}
	c, err := d.r.ReadByte()
	if err != nil {
		d.err = err
		return 0
	}
	d.crc = crc64.Update(d.crc, crcTable, []byte{c})
	return c
}

// uvarintRaw reads a bare varint (no tag) through the checksum.
func (d *Decoder) uvarintRaw() uint64 {
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		c := d.byteIn()
		if d.err != nil {
			return 0
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v
		}
		shift += 7
	}
	d.fail("varint overflow")
	return 0
}

// expect consumes a tag byte, failing with a structural error on mismatch.
func (d *Decoder) expect(tag byte, what string) bool {
	c := d.byteIn()
	if d.err != nil {
		return false
	}
	if c != tag {
		d.fail("expected %s, found tag 0x%02x", what, c)
		return false
	}
	return true
}

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Uvarint reads one unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if !d.expect(tagUvarint, "varint") {
		return 0
	}
	return d.uvarintRaw()
}

// Varint reads one signed varint.
func (d *Decoder) Varint() int64 { return unzigzag(d.Uvarint()) }

// Int reads an int-sized signed varint.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.Uvarint() != 0 }

// Bytes reads a length-prefixed byte string.
func (d *Decoder) Bytes() []byte {
	if !d.expect(tagBytes, "bytes") {
		return nil
	}
	n := d.uvarintRaw()
	if d.err != nil {
		return nil
	}
	if n > maxBlob {
		d.fail("byte string length %d exceeds limit", n)
		return nil
	}
	b := make([]byte, n)
	d.full(b)
	if d.err != nil {
		return nil
	}
	return b
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Int64s reads a length-prefixed slice of signed varints. A zero length
// returns nil.
func (d *Decoder) Int64s() []int64 {
	if !d.expect(tagInt64s, "int64 slice") {
		return nil
	}
	n := d.uvarintRaw()
	if d.err != nil {
		return nil
	}
	if n > maxBlob {
		d.fail("slice length %d exceeds limit", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = unzigzag(d.uvarintRaw())
		if d.err != nil {
			return nil
		}
	}
	return vs
}

// Ints reads a length-prefixed slice of ints. A zero length returns nil.
func (d *Decoder) Ints() []int {
	vs := d.Int64s()
	if vs == nil {
		return nil
	}
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}

// Section consumes a section marker, failing unless its name matches.
func (d *Decoder) Section(name string) {
	if !d.expect(tagSection, fmt.Sprintf("section %q", name)) {
		return
	}
	n := d.uvarintRaw()
	if d.err != nil {
		return
	}
	if n > 256 {
		d.fail("section name length %d exceeds limit", n)
		return
	}
	got := make([]byte, n)
	d.full(got)
	if d.err != nil {
		return
	}
	if string(got) != name {
		d.fail("expected section %q, found %q", name, got)
	}
}

// Close reads and verifies the CRC-64 trailer. It returns the sticky decode
// error if one happened earlier.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	want := d.crc // the trailer itself is not part of the checksum
	var tail [8]byte
	if _, err := io.ReadFull(d.r, tail[:]); err != nil {
		return fmt.Errorf("%w: reading checksum trailer: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint64(tail[:]); got != want {
		return fmt.Errorf("%w: checksum mismatch (stored %016x, computed %016x)", ErrCorrupt, got, want)
	}
	return nil
}

// Err returns the sticky error, if any.
func (d *Decoder) Err() error { return d.err }

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
