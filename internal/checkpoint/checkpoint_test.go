package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestContainerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "TESTMAGC", 3)
	e.Section("hdr")
	e.Uvarint(42)
	e.Varint(-7)
	e.Int(123456)
	e.Bool(true)
	e.Bool(false)
	e.String("hello")
	e.Bytes([]byte{0, 1, 2, 255})
	e.Int64s([]int64{-1, 0, 1, 1 << 40, -(1 << 40)})
	e.Int64s(nil)
	e.Ints([]int{3, 1, 4})
	e.Section("tail")
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()), "TESTMAGC")
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if d.Version() != 3 {
		t.Fatalf("version = %d, want 3", d.Version())
	}
	d.Section("hdr")
	if got := d.Uvarint(); got != 42 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -7 {
		t.Errorf("Varint = %d", got)
	}
	if got := d.Int(); got != 123456 {
		t.Errorf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round-trip broken")
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{0, 1, 2, 255}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Int64s(); !reflect.DeepEqual(got, []int64{-1, 0, 1, 1 << 40, -(1 << 40)}) {
		t.Errorf("Int64s = %v", got)
	}
	if got := d.Int64s(); got != nil {
		t.Errorf("empty Int64s = %v, want nil", got)
	}
	if got := d.Ints(); !reflect.DeepEqual(got, []int{3, 1, 4}) {
		t.Errorf("Ints = %v", got)
	}
	d.Section("tail")
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestDecoderRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "MAGICONE", 1)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(bytes.NewReader(buf.Bytes()), "MAGICTWO"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic err = %v, want ErrCorrupt", err)
	}
}

func TestDecoderDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "TESTMAGC", 1)
	e.Section("data")
	e.Int64s([]int64{1, 2, 3, 4, 5})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip one payload bit (past magic+version, before the trailer).
	for flip := len("TESTMAGC") + 2; flip < len(data)-8; flip++ {
		mut := append([]byte(nil), data...)
		mut[flip] ^= 0x10
		d, err := NewDecoder(bytes.NewReader(mut), "TESTMAGC")
		if err != nil {
			continue // corruption already detected at open
		}
		d.Section("data")
		d.Int64s()
		if err := d.Close(); err == nil {
			t.Fatalf("flipping byte %d went undetected", flip)
		}
	}
}

func TestDecoderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "TESTMAGC", 1)
	e.Section("data")
	e.Bytes(bytes.Repeat([]byte{7}, 100))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	trunc := data[:len(data)-20]

	d, err := NewDecoder(bytes.NewReader(trunc), "TESTMAGC")
	if err != nil {
		return // truncated in the header, fine
	}
	d.Section("data")
	d.Bytes()
	if err := d.Close(); err == nil {
		t.Fatal("truncation went undetected")
	}
}

func TestDecoderSectionMismatch(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "TESTMAGC", 1)
	e.Section("alpha")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()), "TESTMAGC")
	if err != nil {
		t.Fatal(err)
	}
	d.Section("beta")
	if err := d.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("section mismatch err = %v, want ErrCorrupt", err)
	}
}

func TestDecoderTagMismatch(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "TESTMAGC", 1)
	e.Uvarint(9)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()), "TESTMAGC")
	if err != nil {
		t.Fatal(err)
	}
	d.Bytes() // wrong type: the stream holds a varint
	if err := d.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tag mismatch err = %v, want ErrCorrupt", err)
	}
}

func TestFileSinkAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	sink := &FileSink{Path: filepath.Join(dir, "ckpt")}

	var steps []int64
	sink.OnWrite = func(step int64) { steps = append(steps, step) }

	write := func(step int64, payload string) {
		t.Helper()
		err := sink.Checkpoint(step, func(w io.Writer) error {
			_, err := w.Write([]byte(payload))
			return err
		})
		if err != nil {
			t.Fatalf("Checkpoint(%d): %v", step, err)
		}
	}
	write(4, "first")
	write(8, "second")

	got, err := os.ReadFile(sink.Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("checkpoint file holds %q, want the latest snapshot", got)
	}
	if sink.LastStep() != 8 {
		t.Fatalf("LastStep = %d, want 8", sink.LastStep())
	}
	if !reflect.DeepEqual(steps, []int64{4, 8}) {
		t.Fatalf("OnWrite steps = %v", steps)
	}

	// A failing snapshot leaves the previous checkpoint intact and no temp
	// litter behind.
	wantErr := errors.New("boom")
	if err := sink.Checkpoint(12, func(io.Writer) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("failing Checkpoint err = %v", err)
	}
	got, err = os.ReadFile(sink.Path)
	if err != nil || string(got) != "second" {
		t.Fatalf("after failed write: %q, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries, want just the checkpoint", len(ents))
	}
	if sink.LastStep() != 8 {
		t.Fatalf("LastStep after failure = %d, want 8", sink.LastStep())
	}

	if err := sink.Remove(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Remove(); err != nil {
		t.Fatalf("second Remove: %v", err)
	}
}
