package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FileSink persists each checkpoint atomically to Path: the snapshot is
// written to a temporary file in the same directory, fsynced, and renamed
// over Path, so a reader (including a recovering server after SIGKILL) only
// ever observes either the previous complete snapshot or the new one — never
// a torn write. Later checkpoints replace earlier ones; Path always holds
// the latest.
//
// The callback signature matches machine.CheckpointSink, keeping this
// package free of machine imports: the machine hands its Snapshot method to
// the sink, the sink hands back the destination writer.
//
// A FileSink is driven from one run at a time (the step loop is
// single-threaded); LastStep may be read concurrently.
type FileSink struct {
	// Path is the checkpoint file location.
	Path string

	// OnWrite, when non-nil, is called after each successful checkpoint
	// write with the step number — the serve layer's metrics hook.
	OnWrite func(step int64)

	mu   sync.Mutex
	last int64
}

// Checkpoint writes one snapshot: snap receives the destination writer and
// streams the state into it.
func (s *FileSink) Checkpoint(step int64, snap func(w io.Writer) error) error {
	dir := filepath.Dir(s.Path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.Path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := snap(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing snapshot at step %d: %w", step, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.mu.Lock()
	s.last = step
	s.mu.Unlock()
	if s.OnWrite != nil {
		s.OnWrite(step)
	}
	return nil
}

// LastStep returns the step of the most recent successful checkpoint (0
// before the first).
func (s *FileSink) LastStep() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Remove deletes the checkpoint file, ignoring "does not exist".
func (s *FileSink) Remove() error {
	if err := os.Remove(s.Path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
