package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSharedBasics(t *testing.T) {
	s := mustShared(t, 64, 4, Arbitrary)
	if s.Size() != 64 || s.Modules() != 4 {
		t.Fatalf("bad dimensions: %d words %d modules", s.Size(), s.Modules())
	}
	s.Poke(5, 42)
	if got := s.Read(5); got != 42 {
		t.Fatalf("Read(5) = %d, want 42", got)
	}
	if got := s.Read(1000); got != 0 {
		t.Fatalf("out-of-range read = %d, want 0", got)
	}
	if got := s.Read(-1); got != 0 {
		t.Fatalf("negative read = %d, want 0", got)
	}
}

func TestSharedModuleInterleaving(t *testing.T) {
	s := mustShared(t, 64, 4, Arbitrary)
	for addr := int64(0); addr < 64; addr++ {
		if got, want := s.ModuleOf(addr), int(addr%4); got != want {
			t.Fatalf("ModuleOf(%d) = %d, want %d", addr, got, want)
		}
	}
}

func TestStepSemanticsReadsSeePreStepState(t *testing.T) {
	s := mustShared(t, 16, 2, Arbitrary)
	s.Poke(3, 7)
	s.BufferWrite(3, 99, Key{Flow: 0, Thread: 0})
	if got := s.Read(3); got != 7 {
		t.Fatalf("mid-step read = %d, want pre-step 7", got)
	}
	s.ApplyStep()
	if got := s.Read(3); got != 99 {
		t.Fatalf("post-step read = %d, want 99", got)
	}
}

func TestArbitraryLowestKeyWins(t *testing.T) {
	s := mustShared(t, 16, 2, Arbitrary)
	s.BufferWrite(4, 30, Key{Flow: 2, Thread: 0})
	s.BufferWrite(4, 10, Key{Flow: 0, Thread: 5})
	s.BufferWrite(4, 20, Key{Flow: 0, Thread: 9})
	if c := s.ApplyStep(); len(c) != 0 {
		t.Fatalf("unexpected conflicts under Arbitrary: %v", c)
	}
	if got := s.Peek(4); got != 10 {
		t.Fatalf("winner = %d, want 10 (lowest key)", got)
	}
}

func TestPrioritySeqTieBreak(t *testing.T) {
	s := mustShared(t, 16, 2, Priority)
	s.BufferWrite(4, 2, Key{Flow: 1, Thread: 1, Seq: 1})
	s.BufferWrite(4, 1, Key{Flow: 1, Thread: 1, Seq: 0})
	s.ApplyStep()
	if got := s.Peek(4); got != 1 {
		t.Fatalf("winner = %d, want 1 (seq 0)", got)
	}
}

func TestCommonConflictDetection(t *testing.T) {
	s := mustShared(t, 16, 2, Common)
	s.BufferWrite(4, 5, Key{Flow: 0})
	s.BufferWrite(4, 5, Key{Flow: 1})
	if c := s.ApplyStep(); len(c) != 0 {
		t.Fatalf("same-value writes must not conflict: %v", c)
	}
	s.BufferWrite(4, 5, Key{Flow: 0})
	s.BufferWrite(4, 6, Key{Flow: 1})
	c := s.ApplyStep()
	if len(c) != 1 || c[0].Addr != 4 {
		t.Fatalf("expected one conflict at 4, got %v", c)
	}
	if c[0].String() == "" {
		t.Fatal("conflict should render")
	}
}

func TestOutOfRangeWritesDropped(t *testing.T) {
	s := mustShared(t, 8, 2, Arbitrary)
	s.BufferWrite(100, 1, Key{})
	s.BufferWrite(-3, 1, Key{})
	if s.PendingWrites() != 0 {
		t.Fatalf("out-of-range writes should be dropped, have %d pending", s.PendingWrites())
	}
	s.ApplyStep()
}

func TestLoadSegment(t *testing.T) {
	s := mustShared(t, 16, 2, Arbitrary)
	if err := s.Load(4, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := s.Snapshot(4, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("snapshot = %v", got)
	}
	if err := s.Load(15, []int64{1, 2}); err == nil {
		t.Fatal("expected out-of-range load error")
	}
	if err := s.Load(-1, []int64{1}); err == nil {
		t.Fatal("expected negative-address load error")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := mustShared(t, 16, 2, Arbitrary)
	s.Read(0)
	s.Read(1)
	s.BufferWrite(0, 1, Key{})
	s.BufferWrite(0, 2, Key{Flow: 1})
	s.ApplyStep()
	reads, committed, issued := s.Stats()
	if reads != 2 || committed != 1 || issued != 2 {
		t.Fatalf("stats = %d %d %d, want 2 1 2", reads, committed, issued)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewShared(0, 1, Arbitrary); !errors.Is(err, ErrBadSize) {
		t.Errorf("NewShared(0,1): err = %v, want ErrBadSize", err)
	}
	if _, err := NewShared(8, 0, Arbitrary); !errors.Is(err, ErrBadSize) {
		t.Errorf("NewShared(8,0): err = %v, want ErrBadSize", err)
	}
	if _, err := NewLocal(0, 0); !errors.Is(err, ErrBadSize) {
		t.Errorf("NewLocal(0,0): err = %v, want ErrBadSize", err)
	}
}

// mustShared is the test-side constructor for known-good shapes.
func mustShared(tb testing.TB, words, modules int, policy Policy) *Shared {
	tb.Helper()
	s, err := NewShared(words, modules, policy)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// mustLocal is the test-side constructor for known-good shapes.
func mustLocal(tb testing.TB, group, words int) *Local {
	tb.Helper()
	l, err := NewLocal(group, words)
	if err != nil {
		tb.Fatal(err)
	}
	return l
}

func TestPolicyString(t *testing.T) {
	if Arbitrary.String() != "arbitrary" || Priority.String() != "priority" || Common.String() != "common" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

// Property: the winner of a write set is the value carried by the minimal
// key, for every address, independent of insertion order.
func TestResolutionMatchesMinKey(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := mustShared(t, 8, 2, Arbitrary)
		type w struct {
			addr, val int64
			key       Key
		}
		var ws []w
		for i := 0; i < int(n%40)+1; i++ {
			ws = append(ws, w{
				addr: int64(rng.Intn(8)),
				val:  int64(rng.Intn(1000)),
				key:  Key{Flow: rng.Intn(4), Thread: rng.Intn(4), Seq: rng.Intn(4)},
			})
		}
		for _, x := range ws {
			s.BufferWrite(x.addr, x.val, x.key)
		}
		s.ApplyStep()
		// Reference: min key per address. Ties on equal keys may carry
		// different values (two flows can share a key only if the machine
		// mis-keys writes, which the generator can produce); resolve the
		// reference the same way the implementation sorts: stable order
		// not guaranteed, so skip addresses with duplicate minimal keys.
		for addr := int64(0); addr < 8; addr++ {
			var best *w
			dupMin := false
			for i := range ws {
				x := &ws[i]
				if x.addr != addr {
					continue
				}
				switch {
				case best == nil || x.key.Less(best.key):
					best = x
					dupMin = false
				case !best.key.Less(x.key): // equal keys
					dupMin = true
				}
			}
			if best == nil || dupMin {
				continue
			}
			if s.Peek(addr) != best.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: key ordering is a strict total order on distinct keys.
func TestKeyOrdering(t *testing.T) {
	prop := func(f1, t1, s1, f2, t2, s2 uint8) bool {
		a := Key{Flow: int(f1 % 8), Thread: int(t1 % 8), Seq: int(s1 % 8)}
		b := Key{Flow: int(f2 % 8), Thread: int(t2 % 8), Seq: int(s2 % 8)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalMemory(t *testing.T) {
	l := mustLocal(t, 2, 32)
	if l.Group() != 2 || l.Size() != 32 {
		t.Fatal("bad local dimensions")
	}
	l.Write(5, 11)
	if got := l.Read(5); got != 11 {
		t.Fatalf("local read = %d, want 11", got)
	}
	l.Write(100, 1) // dropped
	if got := l.Read(100); got != 0 {
		t.Fatalf("out-of-range local read = %d", got)
	}
	if err := l.Load(30, []int64{1, 2, 3}); err == nil {
		t.Fatal("expected out-of-range local load error")
	}
	if err := l.Load(0, []int64{9}); err != nil {
		t.Fatal(err)
	}
	if l.Peek(0) != 9 {
		t.Fatal("local load failed")
	}
	r, w := l.Stats()
	if r != 2 || w != 2 {
		t.Fatalf("local stats = %d %d", r, w)
	}
}

func TestModuleFailover(t *testing.T) {
	s := mustShared(t, 64, 4, Arbitrary)
	for a := int64(0); a < 8; a++ {
		if s.ModuleOf(a) != s.HomeModuleOf(a) {
			t.Fatal("remap must start as identity")
		}
	}
	s.Poke(2, 77) // addr 2 interleaves onto module 2
	if err := s.FailModule(2); err != nil {
		t.Fatal(err)
	}
	if !s.ModuleFailed(2) || s.Failovers() != 1 {
		t.Fatal("failure not recorded")
	}
	if got := s.ModuleOf(2); got != 0 {
		t.Fatalf("module 2 traffic served by %d, want spare 0", got)
	}
	if s.HomeModuleOf(2) != 2 {
		t.Fatal("home module must not change on failover")
	}
	// Failover never touches contents: the spare holds the mirror.
	if got := s.Peek(2); got != 77 {
		t.Fatalf("failover lost data: %d", got)
	}
	// Chained failure: the spare dies too; both remap to the next survivor.
	if err := s.FailModule(0); err != nil {
		t.Fatal(err)
	}
	if s.ModuleOf(2) != 1 || s.ModuleOf(0) != 1 {
		t.Fatalf("chained failover: ModuleOf(2)=%d ModuleOf(0)=%d, want 1,1", s.ModuleOf(2), s.ModuleOf(0))
	}
	// Idempotent on an already-dead module.
	if err := s.FailModule(2); err != nil || s.Failovers() != 2 {
		t.Fatalf("re-failing dead module: err=%v failovers=%d", err, s.Failovers())
	}
}

func TestModuleFailoverUnrecoverable(t *testing.T) {
	s := mustShared(t, 16, 2, Arbitrary)
	if err := s.FailModule(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailModule(1); err == nil {
		t.Fatal("last surviving module failed silently")
	}
	if err := s.FailModule(7); err == nil {
		t.Fatal("out-of-range module accepted")
	}
}

// TestSharedPagedBacking exercises the lazy page table: reads of untouched
// pages return zero without materializing anything, and writes land on the
// right page.
func TestSharedPagedBacking(t *testing.T) {
	s := mustShared(t, 3*pageWords+17, 4, Arbitrary)
	for _, p := range s.pages {
		if p != nil {
			t.Fatal("page materialized before any write")
		}
	}
	if got := s.Peek(2 * pageWords); got != 0 {
		t.Fatalf("untouched read = %d, want 0", got)
	}
	s.Poke(2*pageWords+5, 42)
	if s.pages[0] != nil || s.pages[1] != nil || s.pages[3] != nil {
		t.Fatal("Poke materialized an unrelated page")
	}
	if got := s.Peek(2*pageWords + 5); got != 42 {
		t.Fatalf("paged read = %d, want 42", got)
	}
	// The tail page is partial in the address space but full-size as a page;
	// the last valid word must be addressable.
	last := int64(s.Size() - 1)
	s.Poke(last, 7)
	if got := s.Peek(last); got != 7 {
		t.Fatalf("last-word read = %d, want 7", got)
	}
}

// TestSnapshotPagedAndClamped checks the direct-copy Snapshot across page
// boundaries, unmaterialized holes and the end of the address space.
func TestSnapshotPagedAndClamped(t *testing.T) {
	s := mustShared(t, 2*pageWords+8, 4, Arbitrary)
	s.Poke(pageWords-1, 11)
	s.Poke(pageWords, 22) // next page
	s.Poke(2*pageWords+7, 33)
	got := s.Snapshot(pageWords-2, 4)
	want := []int64{0, 11, 22, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot across pages = %v, want %v", got, want)
		}
	}
	// Past-the-end words read as zero, and the whole-range snapshot sees
	// unmaterialized middle words as zero.
	got = s.Snapshot(2*pageWords+6, 4)
	want = []int64{0, 33, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clamped Snapshot = %v, want %v", got, want)
		}
	}
	if out := s.Snapshot(-3, 2); out[0] != 0 || out[1] != 0 {
		t.Fatalf("negative-range Snapshot = %v, want zeros", out)
	}
}

// TestApplyStepShardedMatchesSerial cross-checks the sharded (and parallel)
// resolution against a straightforward single-buffer reference on random
// write batches, for every policy.
func TestApplyStepShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, policy := range []Policy{Arbitrary, Priority, Common} {
		for round := 0; round < 20; round++ {
			n := 1 + rng.Intn(6000) // straddles applyParallelMin
			type w struct {
				addr, val int64
				key       Key
			}
			batch := make([]w, n)
			for i := range batch {
				batch[i] = w{
					addr: int64(rng.Intn(512)),
					val:  int64(rng.Intn(4)), // collisions likely
					key:  Key{Flow: rng.Intn(4), Thread: rng.Intn(8), Seq: rng.Intn(2)},
				}
			}
			serial := mustShared(t, 512, 5, policy)
			parallel := mustShared(t, 512, 5, policy)
			parallel.SetParallel(true)
			for _, b := range batch {
				serial.BufferWrite(b.addr, b.val, b.key)
				parallel.BufferWrite(b.addr, b.val, b.key)
			}
			cs := serial.ApplyStep()
			cp := parallel.ApplyStep()
			if len(cs) != len(cp) {
				t.Fatalf("%v: conflict count %d vs %d", policy, len(cs), len(cp))
			}
			for i := range cs {
				if cs[i] != cp[i] {
					t.Fatalf("%v: conflict %d: %v vs %v", policy, i, cs[i], cp[i])
				}
			}
			a := serial.Snapshot(0, 512)
			b := parallel.Snapshot(0, 512)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: word %d: %d vs %d", policy, i, a[i], b[i])
				}
			}
			_, doneA, issuedA := serial.Stats()
			_, doneB, issuedB := parallel.Stats()
			if doneA != doneB || issuedA != issuedB {
				t.Fatalf("%v: write counters diverged: %d/%d vs %d/%d", policy, doneA, issuedA, doneB, issuedB)
			}
		}
	}
}
