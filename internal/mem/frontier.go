package mem

import (
	"math"
	"sync"
	"sync/atomic"
)

// FrontierPageWords is the dependency-tracking granularity of Frontier: one
// version per backing-store page (the same pages Shared allocates lazily).
const FrontierPageWords = pageWords

// frontierNone marks a page with no uncommitted writes.
const frontierNone = math.MaxInt64

// Frontier tracks, per shared-memory page, the read/write frontier the
// dataflow scheduler synchronizes on: which step numbers have published
// buffered writes to the page that have not yet committed. A group executing
// step n may read a page only once every write to it from steps < n has
// committed — that is the only shared-memory dependency edge PRAM step
// semantics actually require between groups, so it is the only place an
// asynchronous group ever blocks on memory.
//
// The protocol has three parties:
//
//   - runners call Publish(step, pages) after generating a step, before
//     announcing the step's packet (so a later reader that has observed the
//     packet also observes the pending writes);
//   - the committer calls Commit(step, pages) after applying the step's
//     writes to the backing store;
//   - readers call WaitRead(page, step) before peeking a page, blocking
//     until no write from a step < their own remains uncommitted.
//
// The fast path is one atomic load per read: minPending[page] holds the
// lowest uncommitted step writing the page (frontierNone when clean), with
// release/acquire ordering against the page contents written under Commit.
type Frontier struct {
	npages  int
	stopped atomic.Bool

	// minPending[p] is the lowest step with published-but-uncommitted
	// writes to page p, or frontierNone. Stored atomically under mu;
	// loaded lock-free on the read fast path.
	minPending []atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	pending [][]int64 // per page, ascending pending steps (guarded by mu)
}

// NewFrontier builds a frontier covering a shared memory of the given word
// count.
func NewFrontier(words int) *Frontier {
	np := (words + pageWords - 1) >> pageShift
	if np < 1 {
		np = 1
	}
	f := &Frontier{
		npages:     np,
		minPending: make([]atomic.Int64, np),
		pending:    make([][]int64, np),
	}
	for i := range f.minPending {
		f.minPending[i].Store(frontierNone)
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Pages returns the number of tracked pages.
func (f *Frontier) Pages() int { return f.npages }

// PageOf maps a word address to its page index, or -1 for out-of-range
// addresses (which are never written and need no gating).
func (f *Frontier) PageOf(addr int64) int {
	p := int(addr >> pageShift)
	if addr < 0 || p >= f.npages {
		return -1
	}
	return p
}

// Publish records that step has buffered (not yet committed) writes to the
// given pages. Steps must be published in nondecreasing order per page —
// guaranteed by the dataflow watermark: a group generates step n only after
// every group has published step n-1.
func (f *Frontier) Publish(step int64, pages []int32) {
	if len(pages) == 0 {
		return
	}
	f.mu.Lock()
	for _, pg := range pages {
		f.pending[pg] = append(f.pending[pg], step)
		if len(f.pending[pg]) == 1 {
			f.minPending[pg].Store(step)
		}
	}
	f.mu.Unlock()
}

// Commit marks step's writes to the given pages as applied to the backing
// store. The committer applies steps strictly in order, so step is always
// the head of each page's pending list. Waiting readers are released.
func (f *Frontier) Commit(step int64, pages []int32) {
	if len(pages) == 0 {
		return
	}
	f.mu.Lock()
	for _, pg := range pages {
		q := f.pending[pg]
		// Drop every entry for this step (multiple groups may have
		// published the same step against the page).
		i := 0
		for i < len(q) && q[i] == step {
			i++
		}
		q = q[:copy(q, q[i:])]
		f.pending[pg] = q
		if len(q) == 0 {
			f.minPending[pg].Store(frontierNone)
		} else {
			f.minPending[pg].Store(q[0])
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// WaitRead blocks until page has no published-but-uncommitted writes from
// any step < step (i.e. the reader, executing step, sees exactly the
// pre-step image lockstep execution would). page -1 (out of range) returns
// immediately, as does a stopped frontier — the run is aborting and its
// results are discarded.
func (f *Frontier) WaitRead(page int, step int64) {
	if page < 0 {
		return
	}
	if f.minPending[page].Load() >= step {
		return
	}
	f.mu.Lock()
	for f.minPending[page].Load() < step && !f.stopped.Load() {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Stop releases every waiting reader unconditionally: the run is stopping
// (error, cancellation) and whatever the readers compute next is discarded.
func (f *Frontier) Stop() {
	f.stopped.Store(true)
	f.mu.Lock()
	f.cond.Broadcast()
	f.mu.Unlock()
}
