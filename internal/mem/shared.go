// Package mem implements the memory system of the extended PRAM-NUMA
// machine: a word-addressable shared memory partitioned into P modules with
// PRAM step semantics (reads observe the state at step start, writes are
// buffered and resolved deterministically at step end), plus per-group local
// memory blocks with immediate semantics for NUMA-mode execution.
package mem

import (
	"fmt"
	"sort"
)

// Policy selects the concurrent-write resolution rule of the CRCW PRAM.
type Policy int

const (
	// Arbitrary resolves concurrent writes to one deterministic winner:
	// the write with the lowest (flow, thread, seq) key. The model allows
	// any winner; fixing the lowest key keeps simulation reproducible.
	Arbitrary Policy = iota
	// Priority lets the lowest-keyed write win and is the classic
	// PRIORITY CRCW rule (lower flow/thread index = higher priority).
	Priority
	// Common requires all concurrent writes to a word within a step to
	// carry the same value; differing values are reported as conflicts.
	Common
)

func (p Policy) String() string {
	switch p {
	case Arbitrary:
		return "arbitrary"
	case Priority:
		return "priority"
	case Common:
		return "common"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Key orders writes within a step. Lower keys win under Priority (and are
// the deterministic choice under Arbitrary).
type Key struct {
	Flow   int // flow id
	Thread int // thread index within the flow
	Seq    int // issue sequence within the thread (NUMA bunches issue many)
}

// Less compares keys lexicographically.
func (k Key) Less(o Key) bool {
	if k.Flow != o.Flow {
		return k.Flow < o.Flow
	}
	if k.Thread != o.Thread {
		return k.Thread < o.Thread
	}
	return k.Seq < o.Seq
}

// Write is one buffered shared-memory store.
type Write struct {
	Addr int64
	Val  int64
	Key  Key
}

// Conflict records a Common-policy violation: two same-step writes to Addr
// with different values.
type Conflict struct {
	Addr int64
	A, B int64
}

func (c Conflict) String() string {
	return fmt.Sprintf("common-CRCW conflict at %d: %d vs %d", c.Addr, c.A, c.B)
}

// Shared is the emulated shared memory: Words words spread over Modules
// modules with low-order interleaving (module = addr mod Modules), the
// standard ESM address hashing approximation.
//
// Modules can fail-stop (FailModule): every module's contents are mirrored,
// so a failure remaps the dead module's traffic onto the lowest-indexed
// surviving module at a step boundary — results are unaffected, only the
// locality (and hence latency) of the remapped references changes. With no
// survivor left the failure is unrecoverable.
type Shared struct {
	words   []int64
	modules int
	policy  Policy

	// remap[m] is the module serving traffic addressed to m (identity
	// until failover); failed marks dead modules.
	remap     []int
	failed    []bool
	failovers int64

	writes []Write

	// Counters.
	reads      int64
	writesDone int64
	stepWrites int64
}

// NewShared allocates a shared memory of size words over modules modules.
func NewShared(words, modules int, policy Policy) *Shared {
	if words <= 0 {
		panic("mem: shared memory size must be positive")
	}
	if modules <= 0 {
		panic("mem: module count must be positive")
	}
	remap := make([]int, modules)
	for i := range remap {
		remap[i] = i
	}
	return &Shared{
		words: make([]int64, words), modules: modules, policy: policy,
		remap: remap, failed: make([]bool, modules),
	}
}

// Size returns the number of words.
func (s *Shared) Size() int { return len(s.words) }

// Modules returns the number of memory modules.
func (s *Shared) Modules() int { return s.modules }

// Policy returns the concurrent-write policy.
func (s *Shared) Policy() Policy { return s.policy }

// ModuleOf returns the module serving addr: low-order interleaving, then the
// failover remap table.
func (s *Shared) ModuleOf(addr int64) int {
	return s.remap[s.HomeModuleOf(addr)]
}

// HomeModuleOf returns the module addr interleaves onto before failover.
func (s *Shared) HomeModuleOf(addr int64) int {
	return int(((addr % int64(s.modules)) + int64(s.modules)) % int64(s.modules))
}

// ModuleFailed reports whether module m has fail-stopped.
func (s *Shared) ModuleFailed(m int) bool {
	return m >= 0 && m < s.modules && s.failed[m]
}

// Failovers returns the number of module failovers performed.
func (s *Shared) Failovers() int64 { return s.failovers }

// FailModule fail-stops module m: its traffic (and any traffic already
// remapped onto it) moves to the lowest-indexed surviving module. Failing an
// already-dead module is a no-op. With no survivor the memory is lost and an
// error is returned.
func (s *Shared) FailModule(m int) error {
	if m < 0 || m >= s.modules {
		return fmt.Errorf("mem: FailModule(%d) outside [0,%d)", m, s.modules)
	}
	if s.failed[m] {
		return nil
	}
	s.failed[m] = true
	spare := -1
	for i := 0; i < s.modules; i++ {
		if !s.failed[i] {
			spare = i
			break
		}
	}
	if spare < 0 {
		return fmt.Errorf("mem: module %d failed and no surviving module remains", m)
	}
	for i, t := range s.remap {
		if t == m {
			s.remap[i] = spare
		}
	}
	s.failovers++
	return nil
}

// InRange reports whether addr is a valid word address.
func (s *Shared) InRange(addr int64) bool { return addr >= 0 && addr < int64(len(s.words)) }

// Read returns the word at addr as of the start of the current step.
// Out-of-range reads return 0, like the trap-free simulated hardware.
func (s *Shared) Read(addr int64) int64 {
	s.reads++
	if !s.InRange(addr) {
		return 0
	}
	return s.words[addr]
}

// Peek reads without counting (for inspection and tests).
func (s *Shared) Peek(addr int64) int64 {
	if !s.InRange(addr) {
		return 0
	}
	return s.words[addr]
}

// Poke writes immediately without buffering (program loading, tests).
func (s *Shared) Poke(addr int64, val int64) {
	if s.InRange(addr) {
		s.words[addr] = val
	}
}

// Load preloads a data segment.
func (s *Shared) Load(addr int64, words []int64) error {
	if addr < 0 || addr+int64(len(words)) > int64(len(s.words)) {
		return fmt.Errorf("mem: data segment [%d,%d) out of range [0,%d)", addr, addr+int64(len(words)), len(s.words))
	}
	copy(s.words[addr:], words)
	return nil
}

// BufferWrite records a store to be applied at the end of the step.
// Out-of-range stores are dropped.
func (s *Shared) BufferWrite(addr, val int64, key Key) {
	if !s.InRange(addr) {
		return
	}
	s.writes = append(s.writes, Write{Addr: addr, Val: val, Key: key})
}

// PendingWrites returns the number of writes buffered in the current step.
func (s *Shared) PendingWrites() int { return len(s.writes) }

// ApplyStep resolves the buffered writes of the step against the policy and
// applies the winners. It returns the Common-policy conflicts (empty under
// Arbitrary/Priority). The write buffer is cleared.
func (s *Shared) ApplyStep() []Conflict {
	if len(s.writes) == 0 {
		return nil
	}
	ws := s.writes
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Addr != ws[j].Addr {
			return ws[i].Addr < ws[j].Addr
		}
		return ws[i].Key.Less(ws[j].Key)
	})
	var conflicts []Conflict
	for i := 0; i < len(ws); {
		j := i + 1
		for j < len(ws) && ws[j].Addr == ws[i].Addr {
			if s.policy == Common && ws[j].Val != ws[i].Val {
				conflicts = append(conflicts, Conflict{Addr: ws[i].Addr, A: ws[i].Val, B: ws[j].Val})
			}
			j++
		}
		// Lowest key wins (deterministic Arbitrary; exact Priority).
		s.words[ws[i].Addr] = ws[i].Val
		s.writesDone++
		i = j
	}
	s.stepWrites += int64(len(ws))
	s.writes = s.writes[:0]
	return conflicts
}

// Stats reports cumulative access counts.
func (s *Shared) Stats() (reads, committedWrites, issuedWrites int64) {
	return s.reads, s.writesDone, s.stepWrites
}

// Snapshot copies words [addr, addr+n) for inspection.
func (s *Shared) Snapshot(addr int64, n int) []int64 {
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = s.Peek(addr + int64(i))
	}
	return out
}
