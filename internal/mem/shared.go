// Package mem implements the memory system of the extended PRAM-NUMA
// machine: a word-addressable shared memory partitioned into P modules with
// PRAM step semantics (reads observe the state at step start, writes are
// buffered and resolved deterministically at step end), plus per-group local
// memory blocks with immediate semantics for NUMA-mode execution.
package mem

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// ErrBadSize reports a nonpositive memory size or module count. The
// constructors return it (wrapped, with the offending value) instead of
// panicking: machine shapes arrive from untrusted requests on the serve
// path, so a bad size must fail the one request, not the process.
var ErrBadSize = errors.New("mem: nonpositive size")

// Policy selects the concurrent-write resolution rule of the CRCW PRAM.
type Policy int

const (
	// Arbitrary resolves concurrent writes to one deterministic winner:
	// the write with the lowest (flow, thread, seq) key. The model allows
	// any winner; fixing the lowest key keeps simulation reproducible.
	Arbitrary Policy = iota
	// Priority lets the lowest-keyed write win and is the classic
	// PRIORITY CRCW rule (lower flow/thread index = higher priority).
	Priority
	// Common requires all concurrent writes to a word within a step to
	// carry the same value; differing values are reported as conflicts.
	Common
)

func (p Policy) String() string {
	switch p {
	case Arbitrary:
		return "arbitrary"
	case Priority:
		return "priority"
	case Common:
		return "common"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Key orders writes within a step. Lower keys win under Priority (and are
// the deterministic choice under Arbitrary).
type Key struct {
	Flow   int // flow id
	Thread int // thread index within the flow
	Seq    int // issue sequence within the thread (NUMA bunches issue many)
}

// Less compares keys lexicographically.
func (k Key) Less(o Key) bool {
	if k.Flow != o.Flow {
		return k.Flow < o.Flow
	}
	if k.Thread != o.Thread {
		return k.Thread < o.Thread
	}
	return k.Seq < o.Seq
}

// Write is one buffered shared-memory store.
type Write struct {
	Addr int64
	Val  int64
	Key  Key
}

// compareWrites orders a step's writes for resolution: by address, then by
// key (lowest key first, so the winner of each address run is ws[i]).
func compareWrites(a, b Write) int {
	if a.Addr != b.Addr {
		if a.Addr < b.Addr {
			return -1
		}
		return 1
	}
	if a.Key.Less(b.Key) {
		return -1
	}
	if b.Key.Less(a.Key) {
		return 1
	}
	return 0
}

// Conflict records a Common-policy violation: two same-step writes to Addr
// with different values.
type Conflict struct {
	Addr int64
	A, B int64
}

func (c Conflict) String() string {
	return fmt.Sprintf("common-CRCW conflict at %d: %d vs %d", c.Addr, c.A, c.B)
}

// pageWords is the granularity of the lazily allocated backing store: pages
// materialize on first write (or preload), so a machine whose program touches
// a few hundred words never pays for zeroing the whole address space. 1024
// words = 8 KiB per page, small enough to stay in the allocator's size
// classes (32 KiB pages fell into the large-object path, whose span setup
// dominated short-lived machines).
const (
	pageShift = 10
	pageWords = 1 << pageShift
)

// applyParallelMin is the buffered-write count below which ApplyStep resolves
// shards serially; small steps stay allocation- and goroutine-free.
const applyParallelMin = 2048

// Shared is the emulated shared memory: Words words spread over Modules
// modules with low-order interleaving (module = addr mod Modules), the
// standard ESM address hashing approximation.
//
// The backing store is paged and lazily allocated: unwritten pages read as
// zero without ever being materialized.
//
// Buffered step writes are sharded by home memory module; ApplyStep resolves
// the shards independently (in parallel when SetParallel(true) and the step
// is write-heavy) with identical results to a global resolution, because a
// word's writes all land in one shard and shards touch disjoint words.
//
// Modules can fail-stop (FailModule): every module's contents are mirrored,
// so a failure remaps the dead module's traffic onto the lowest-indexed
// surviving module at a step boundary — results are unaffected, only the
// locality (and hence latency) of the remapped references changes. With no
// survivor left the failure is unrecoverable.
type Shared struct {
	pages   [][]int64 // lazily materialized pageWords-sized pages
	size    int64     // total words
	modules int
	modMask int64 // modules-1 when modules is a power of two, else -1
	policy  Policy
	par     bool // resolve write shards on multiple goroutines

	// remap[m] is the module serving traffic addressed to m (identity
	// until failover); failed marks dead modules.
	remap     []int
	failed    []bool
	failovers int64

	// shards[m] buffers the step's writes whose home module is m. The
	// per-shard backing arrays are retained across steps.
	shards [][]Write
	// bwScratch holds BufferWrites' per-module counts/cursors between its
	// two passes (lazily sized, retained across calls).
	bwScratch []int

	// Counters.
	reads      int64
	writesDone int64
	stepWrites int64
}

// NewShared allocates a shared memory of size words over modules modules.
// Nonpositive sizes return an error wrapping ErrBadSize.
func NewShared(words, modules int, policy Policy) (*Shared, error) {
	if words <= 0 {
		return nil, fmt.Errorf("shared memory size %d must be positive: %w", words, ErrBadSize)
	}
	if modules <= 0 {
		return nil, fmt.Errorf("module count %d must be positive: %w", modules, ErrBadSize)
	}
	remap := make([]int, modules)
	for i := range remap {
		remap[i] = i
	}
	modMask := int64(-1)
	if modules&(modules-1) == 0 {
		modMask = int64(modules - 1)
	}
	// The page table itself materializes on first write: a machine whose
	// program never touches shared memory pays nothing for it.
	return &Shared{
		size:    int64(words),
		modules: modules, modMask: modMask, policy: policy,
		remap: remap, failed: make([]bool, modules),
		shards: make([][]Write, modules),
	}, nil
}

// Reset restores the memory to its zeroed initial state while keeping the
// materialized pages and the write-shard backing arrays — the reuse that
// makes pooled machines cheap. Pages are zeroed in place, the failover
// remap returns to identity, dead modules revive, and all counters clear.
// The resulting state is observably identical to a fresh NewShared.
func (s *Shared) Reset() {
	for _, p := range s.pages {
		if p != nil {
			clear(p)
		}
	}
	for i := range s.remap {
		s.remap[i] = i
	}
	clear(s.failed)
	s.failovers = 0
	for i := range s.shards {
		s.shards[i] = s.shards[i][:0]
	}
	s.reads, s.writesDone, s.stepWrites = 0, 0, 0
}

// SetParallel enables multi-goroutine shard resolution in ApplyStep. Results
// are bit-identical either way; only wall-clock changes.
func (s *Shared) SetParallel(on bool) { s.par = on }

// Size returns the number of words.
func (s *Shared) Size() int { return int(s.size) }

// Modules returns the number of memory modules.
func (s *Shared) Modules() int { return s.modules }

// Policy returns the concurrent-write policy.
func (s *Shared) Policy() Policy { return s.policy }

// ModuleOf returns the module serving addr: low-order interleaving, then the
// failover remap table.
func (s *Shared) ModuleOf(addr int64) int {
	return s.remap[s.HomeModuleOf(addr)]
}

// HomeModuleOf returns the module addr interleaves onto before failover.
// Power-of-two module counts mask instead of dividing (two's-complement AND
// is exactly the Euclidean remainder for negative addresses too) — this
// sits on the hot path of every shared reference.
func (s *Shared) HomeModuleOf(addr int64) int {
	if s.modMask >= 0 {
		return int(addr & s.modMask)
	}
	return int(((addr % int64(s.modules)) + int64(s.modules)) % int64(s.modules))
}

// ModuleFailed reports whether module m has fail-stopped.
func (s *Shared) ModuleFailed(m int) bool {
	return m >= 0 && m < s.modules && s.failed[m]
}

// Failovers returns the number of module failovers performed.
func (s *Shared) Failovers() int64 { return s.failovers }

// FailModule fail-stops module m: its traffic (and any traffic already
// remapped onto it) moves to the lowest-indexed surviving module. Failing an
// already-dead module is a no-op. With no survivor the memory is lost and an
// error is returned.
func (s *Shared) FailModule(m int) error {
	if m < 0 || m >= s.modules {
		return fmt.Errorf("mem: FailModule(%d) outside [0,%d)", m, s.modules)
	}
	if s.failed[m] {
		return nil
	}
	s.failed[m] = true
	spare := -1
	for i := 0; i < s.modules; i++ {
		if !s.failed[i] {
			spare = i
			break
		}
	}
	if spare < 0 {
		return fmt.Errorf("mem: module %d failed and no surviving module remains", m)
	}
	for i, t := range s.remap {
		if t == m {
			s.remap[i] = spare
		}
	}
	s.failovers++
	return nil
}

// InRange reports whether addr is a valid word address.
func (s *Shared) InRange(addr int64) bool { return addr >= 0 && addr < s.size }

// page returns the page backing addr, or nil if it was never written.
func (s *Shared) page(addr int64) []int64 {
	if s.pages == nil {
		return nil
	}
	return s.pages[addr>>pageShift]
}

// ensurePage materializes the page backing addr and returns it.
func (s *Shared) ensurePage(addr int64) []int64 {
	if s.pages == nil {
		s.pages = make([][]int64, (s.size+pageWords-1)>>pageShift)
	}
	i := addr >> pageShift
	p := s.pages[i]
	if p == nil {
		p = make([]int64, pageWords)
		s.pages[i] = p
	}
	return p
}

// EnsurePageTable materializes the page table (not the pages) eagerly. The
// dataflow scheduler calls this once before its runners start: with the
// table in place, ensurePage only ever stores into a fixed slot of it, so a
// committer materializing a page races with nothing — concurrent readers of
// *other* slots touch disjoint memory, and readers of the same slot are
// ordered behind the commit by the Frontier handshake.
func (s *Shared) EnsurePageTable() {
	if s.pages == nil {
		s.pages = make([][]int64, (s.size+pageWords-1)>>pageShift)
	}
}

// Read returns the word at addr as of the start of the current step.
// Out-of-range reads return 0, like the trap-free simulated hardware.
func (s *Shared) Read(addr int64) int64 {
	s.reads++
	return s.Peek(addr)
}

// Peek reads without counting (for inspection and tests).
func (s *Shared) Peek(addr int64) int64 {
	if !s.InRange(addr) {
		return 0
	}
	p := s.page(addr)
	if p == nil {
		return 0
	}
	return p[addr&(pageWords-1)]
}

// Reader is a page-cached read cursor for dense read runs: Peek through a
// Reader resolves the page table only when the address crosses a page
// boundary. Value type, zero-allocation; reads see the same pre-step image
// as Shared.Peek.
type Reader struct {
	s     *Shared
	pgIdx int64
	pg    []int64
}

// Reader returns a fresh read cursor over s.
func (s *Shared) Reader() Reader { return Reader{s: s, pgIdx: -1} }

// Peek reads without counting, caching the last-touched page.
func (r *Reader) Peek(addr int64) int64 {
	if !r.s.InRange(addr) {
		return 0
	}
	if idx := addr >> pageShift; idx != r.pgIdx {
		r.pgIdx, r.pg = idx, nil
		if r.s.pages != nil {
			r.pg = r.s.pages[idx]
		}
	}
	if r.pg == nil {
		return 0
	}
	return r.pg[addr&(pageWords-1)]
}

// Poke writes immediately without buffering (program loading, tests).
func (s *Shared) Poke(addr int64, val int64) {
	if s.InRange(addr) {
		s.ensurePage(addr)[addr&(pageWords-1)] = val
	}
}

// Load preloads a data segment, page-wise.
func (s *Shared) Load(addr int64, words []int64) error {
	if addr < 0 || addr+int64(len(words)) > s.size {
		return fmt.Errorf("mem: data segment [%d,%d) out of range [0,%d)", addr, addr+int64(len(words)), s.size)
	}
	for len(words) > 0 {
		p := s.ensurePage(addr)
		n := copy(p[addr&(pageWords-1):], words)
		words = words[n:]
		addr += int64(n)
	}
	return nil
}

// BufferWrite records a store to be applied at the end of the step, bucketed
// by its home memory module. Out-of-range stores are dropped. In parallel
// mode the target page is materialized here, in serial context, so that the
// concurrent shard resolution of ApplyStep never mutates the page table;
// serial resolution materializes pages lazily in applyShard instead.
func (s *Shared) BufferWrite(addr, val int64, key Key) {
	if !s.InRange(addr) {
		return
	}
	if s.par {
		s.ensurePage(addr)
	}
	m := s.HomeModuleOf(addr)
	s.shards[m] = append(s.shards[m], Write{Addr: addr, Val: val, Key: key})
}

// BufferWrites buffers a batch of stores with the per-call overhead (range
// check, parallel-mode page touch, module lookup) amortized over the batch.
// The result is identical to calling BufferWrite per element in order: shard
// resolution sorts each shard by (addr, key) in ApplyStep, so insertion
// order never matters. Two passes — count per module, grow each shard once,
// fill by index — so the hot loop stores plain values instead of running an
// append (with its slice-header write barrier) per element.
func (s *Shared) BufferWrites(ws []Write) {
	if len(s.bwScratch) < s.modules {
		s.bwScratch = make([]int, s.modules)
	}
	cur := s.bwScratch[:s.modules]
	clear(cur)
	for i := range ws {
		w := &ws[i]
		if !s.InRange(w.Addr) {
			continue
		}
		if s.par {
			s.ensurePage(w.Addr)
		}
		cur[s.HomeModuleOf(w.Addr)]++
	}
	for m, n := range cur {
		if n == 0 {
			continue
		}
		sh := s.shards[m]
		cur[m] = len(sh) // becomes the fill cursor
		if need := len(sh) + n; need > cap(sh) {
			sh = append(make([]Write, 0, max(need, 2*cap(sh))), sh...)
		}
		s.shards[m] = sh[:len(sh)+n]
	}
	for i := range ws {
		w := &ws[i]
		if !s.InRange(w.Addr) {
			continue
		}
		m := s.HomeModuleOf(w.Addr)
		s.shards[m][cur[m]] = *w
		cur[m]++
	}
}

// PendingWrites returns the number of writes buffered in the current step.
func (s *Shared) PendingWrites() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh)
	}
	return n
}

// ApplyStep resolves the buffered writes of the step against the policy and
// applies the winners. It returns the Common-policy conflicts (empty under
// Arbitrary/Priority), ordered by address. The write buffer is cleared (its
// capacity is retained for the next step).
func (s *Shared) ApplyStep() []Conflict {
	total := 0
	for _, sh := range s.shards {
		total += len(sh)
	}
	if total == 0 {
		return nil
	}

	var conflicts []Conflict
	if s.par && total >= applyParallelMin && s.modules > 1 {
		workers := runtime.GOMAXPROCS(0)
		if workers > s.modules {
			workers = s.modules
		}
		perShard := make([][]Conflict, s.modules)
		done := make([]int64, s.modules)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= s.modules {
						return
					}
					perShard[i], done[i] = s.applyShard(s.shards[i])
				}
			}()
		}
		wg.Wait()
		for i := 0; i < s.modules; i++ {
			conflicts = append(conflicts, perShard[i]...)
			s.writesDone += done[i]
		}
		// Shards interleave the address space (addr mod modules), so the
		// per-shard address order must be merged into a global one; the
		// stable sort preserves the within-address key order.
		slices.SortStableFunc(conflicts, func(a, b Conflict) int {
			if a.Addr < b.Addr {
				return -1
			}
			if a.Addr > b.Addr {
				return 1
			}
			return 0
		})
	} else {
		for i := range s.shards {
			cs, done := s.applyShard(s.shards[i])
			conflicts = append(conflicts, cs...)
			s.writesDone += done
		}
		slices.SortStableFunc(conflicts, func(a, b Conflict) int {
			if a.Addr < b.Addr {
				return -1
			}
			if a.Addr > b.Addr {
				return 1
			}
			return 0
		})
	}

	s.stepWrites += int64(total)
	for i := range s.shards {
		s.shards[i] = s.shards[i][:0]
	}
	return conflicts
}

// applyShard resolves one shard: sort by (addr, key), detect Common
// conflicts, apply the lowest-keyed write per address. In parallel mode all
// pages touched were materialized by BufferWrite, so ensurePage below never
// mutates the page table and concurrent shards (disjoint address sets) are
// race-free; in serial mode ensurePage materializes lazily here.
func (s *Shared) applyShard(ws []Write) (conflicts []Conflict, done int64) {
	if len(ws) == 0 {
		return nil, 0
	}
	// Bulk store kernels emit writes in ascending thread (= address) order,
	// so shards very often arrive sorted; the O(n) check beats re-sorting.
	if !slices.IsSortedFunc(ws, compareWrites) {
		slices.SortFunc(ws, compareWrites)
	}
	pgIdx, pg := int64(-1), []int64(nil)
	for i := 0; i < len(ws); {
		j := i + 1
		for j < len(ws) && ws[j].Addr == ws[i].Addr {
			if s.policy == Common && ws[j].Val != ws[i].Val {
				conflicts = append(conflicts, Conflict{Addr: ws[i].Addr, A: ws[i].Val, B: ws[j].Val})
			}
			j++
		}
		// Lowest key wins (deterministic Arbitrary; exact Priority). The
		// address order makes the page change rarely; cache it.
		a := ws[i].Addr
		if idx := a >> pageShift; idx != pgIdx {
			pgIdx, pg = idx, s.ensurePage(a)
		}
		pg[a&(pageWords-1)] = ws[i].Val
		done++
		i = j
	}
	return conflicts, done
}

// Stats reports cumulative access counts.
func (s *Shared) Stats() (reads, committedWrites, issuedWrites int64) {
	return s.reads, s.writesDone, s.stepWrites
}

// Snapshot copies words [addr, addr+n) for inspection. The range is clamped
// to the address space once; out-of-range (and never-written) words read as
// zero. Materialized pages are copied wholesale instead of word by word.
func (s *Shared) Snapshot(addr int64, n int) []int64 {
	out := make([]int64, n)
	if n <= 0 || addr >= s.size || addr+int64(n) <= 0 {
		return out
	}
	// Clamp to the valid window [lo, hi); everything outside stays zero.
	lo, hi := addr, addr+int64(n)
	if lo < 0 {
		lo = 0
	}
	if hi > s.size {
		hi = s.size
	}
	for a := lo; a < hi; {
		p := s.page(a)
		off := a & (pageWords - 1)
		end := a - off + pageWords // first word past this page
		if end > hi {
			end = hi
		}
		if p != nil {
			copy(out[a-addr:hi-addr], p[off:off+(end-a)])
		}
		a = end
	}
	return out
}
