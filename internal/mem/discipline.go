package mem

import "fmt"

// Discipline selects the PRAM memory-access discipline the machine (and
// the tcfvet analyzer) enforces on shared memory within one machine step.
// The baseline machine is CRCW — concurrent reads and writes are legal and
// write conflicts resolve through Policy / multioperations — so CRCW
// checking never fires on write sets the hardware can resolve. EREW and
// CREW restrict that: CREW forbids two writes (or a write overlapping a
// read) to the same word in one step; EREW additionally forbids two reads
// of the same word in one step.
type Discipline int

const (
	// DisciplineOff disables checking (the default).
	DisciplineOff Discipline = iota
	// DisciplineEREW: exclusive read, exclusive write.
	DisciplineEREW
	// DisciplineCREW: concurrent read, exclusive write.
	DisciplineCREW
	// DisciplineCRCW: concurrent read, concurrent write — the machine's
	// native model. Selecting it enables access recording but flags
	// nothing; it exists so tooling can name the baseline explicitly.
	DisciplineCRCW
)

func (d Discipline) String() string {
	switch d {
	case DisciplineOff:
		return "off"
	case DisciplineEREW:
		return "erew"
	case DisciplineCREW:
		return "crew"
	case DisciplineCRCW:
		return "crcw"
	}
	return fmt.Sprintf("Discipline(%d)", int(d))
}

// ParseDiscipline maps a flag value to a Discipline.
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "", "off", "none":
		return DisciplineOff, nil
	case "erew":
		return DisciplineEREW, nil
	case "crew":
		return DisciplineCREW, nil
	case "crcw":
		return DisciplineCRCW, nil
	}
	return DisciplineOff, fmt.Errorf("unknown memory discipline %q (want erew, crew, crcw or off)", s)
}

// Checks reports whether the discipline actually restricts accesses
// (EREW or CREW); CRCW records but never flags.
func (d Discipline) Checks() bool {
	return d == DisciplineEREW || d == DisciplineCREW
}
