package mem

import "fmt"

// Local is one processor group's local memory block. NUMA-mode bunches access
// it with immediate (sequential) semantics and unit latency; the model's
// distance metric applies only when a group references another group's block
// through the interconnect.
type Local struct {
	group int
	size  int
	words []int64 // allocated lazily on first write/preload

	reads  int64
	writes int64
}

// NewLocal sizes the local memory block of the given group. The backing
// store materializes on first write; an untouched block reads as zero and
// costs nothing. Nonpositive sizes return an error wrapping ErrBadSize.
func NewLocal(group, words int) (*Local, error) {
	if words <= 0 {
		return nil, fmt.Errorf("local memory size %d must be positive: %w", words, ErrBadSize)
	}
	return &Local{group: group, size: words}, nil
}

// Reset zeroes the block in place (keeping the backing store) and clears the
// access counters, restoring the observable state of a fresh NewLocal.
func (l *Local) Reset() {
	if l.words != nil {
		clear(l.words)
	}
	l.reads, l.writes = 0, 0
}

// ensure materializes the backing store.
func (l *Local) ensure() []int64 {
	if l.words == nil {
		l.words = make([]int64, l.size)
	}
	return l.words
}

// Group returns the owning processor group index.
func (l *Local) Group() int { return l.group }

// Size returns the number of words.
func (l *Local) Size() int { return l.size }

// InRange reports whether addr is a valid word address.
func (l *Local) InRange(addr int64) bool { return addr >= 0 && addr < int64(l.size) }

// Read returns the word at addr. Out-of-range reads return 0.
func (l *Local) Read(addr int64) int64 {
	l.reads++
	return l.Peek(addr)
}

// Write stores val at addr immediately. Out-of-range stores are dropped.
func (l *Local) Write(addr, val int64) {
	l.writes++
	if !l.InRange(addr) {
		return
	}
	l.ensure()[addr] = val
}

// Peek reads without counting.
func (l *Local) Peek(addr int64) int64 {
	if !l.InRange(addr) || l.words == nil {
		return 0
	}
	return l.words[addr]
}

// Stats reports cumulative access counts.
func (l *Local) Stats() (reads, writes int64) { return l.reads, l.writes }

// Load preloads a data segment.
func (l *Local) Load(addr int64, words []int64) error {
	if addr < 0 || addr+int64(len(words)) > int64(l.size) {
		return fmt.Errorf("mem: local segment [%d,%d) out of range [0,%d)", addr, addr+int64(len(words)), l.size)
	}
	copy(l.ensure()[addr:], words)
	return nil
}
