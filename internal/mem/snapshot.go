package mem

import (
	"fmt"

	"tcfpram/internal/checkpoint"
)

// EncodeTo streams the shared memory's step-boundary state into e: shape
// identity (for restore-time validation), the failover remap, the access
// counters, and every materialized page that holds a non-zero word. Pages
// that are unmaterialized or all-zero are skipped — they read as zero either
// way, so materialization state is not observable and need not survive.
//
// The write shards must be empty (snapshots are taken at step boundaries,
// after ApplyStep); buffered writes are an error, not state to serialize.
func (s *Shared) EncodeTo(e *checkpoint.Encoder) error {
	if n := s.PendingWrites(); n != 0 {
		return fmt.Errorf("mem: snapshot with %d buffered writes (not at a step boundary)", n)
	}
	e.Varint(s.size)
	e.Int(s.modules)
	e.Int(int(s.policy))
	e.Ints(s.remap)
	failed := make([]int64, len(s.failed))
	for i, f := range s.failed {
		if f {
			failed[i] = 1
		}
	}
	e.Int64s(failed)
	e.Varint(s.failovers)
	e.Varint(s.reads)
	e.Varint(s.writesDone)
	e.Varint(s.stepWrites)

	nonzero := 0
	for _, p := range s.pages {
		if pageHasData(p) {
			nonzero++
		}
	}
	e.Int(nonzero)
	for i, p := range s.pages {
		if pageHasData(p) {
			e.Int(i)
			e.Int64s(p)
		}
	}
	return e.Err()
}

// DecodeFrom restores the state written by EncodeTo onto a freshly built (or
// Reset) memory of the same shape. Shape mismatches fail with an error
// naming the field.
func (s *Shared) DecodeFrom(d *checkpoint.Decoder) error {
	if size := d.Varint(); size != s.size {
		return fmt.Errorf("mem: snapshot shared size %d != machine %d", size, s.size)
	}
	if mods := d.Int(); mods != s.modules {
		return fmt.Errorf("mem: snapshot module count %d != machine %d", mods, s.modules)
	}
	if pol := Policy(d.Int()); pol != s.policy {
		return fmt.Errorf("mem: snapshot write policy %v != machine %v", pol, s.policy)
	}
	remap := d.Ints()
	if len(remap) != len(s.remap) {
		return fmt.Errorf("mem: snapshot remap length %d != %d", len(remap), len(s.remap))
	}
	for i, t := range remap {
		if t < 0 || t >= s.modules {
			return fmt.Errorf("mem: snapshot remap[%d]=%d outside [0,%d)", i, t, s.modules)
		}
		s.remap[i] = t
	}
	failed := d.Int64s()
	if len(failed) != len(s.failed) {
		return fmt.Errorf("mem: snapshot failed length %d != %d", len(failed), len(s.failed))
	}
	for i, f := range failed {
		s.failed[i] = f != 0
	}
	s.failovers = d.Varint()
	s.reads = d.Varint()
	s.writesDone = d.Varint()
	s.stepWrites = d.Varint()

	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	// The page table is lazily materialized, so validate against the
	// address-space capacity, not the (possibly still nil) table.
	nPages := int((s.size + pageWords - 1) >> pageShift)
	if n < 0 || n > nPages {
		return fmt.Errorf("mem: snapshot page count %d outside [0,%d]", n, nPages)
	}
	if n > 0 && s.pages == nil {
		s.pages = make([][]int64, nPages)
	}
	for k := 0; k < n; k++ {
		i := d.Int()
		words := d.Int64s()
		if err := d.Err(); err != nil {
			return err
		}
		if i < 0 || i >= nPages {
			return fmt.Errorf("mem: snapshot page index %d outside [0,%d)", i, nPages)
		}
		if len(words) != pageWords {
			return fmt.Errorf("mem: snapshot page %d holds %d words, want %d", i, len(words), pageWords)
		}
		if s.pages[i] == nil {
			s.pages[i] = make([]int64, pageWords)
		}
		copy(s.pages[i], words)
	}
	return d.Err()
}

// pageHasData reports whether p is materialized and holds any non-zero word.
func pageHasData(p []int64) bool {
	for _, w := range p {
		if w != 0 {
			return true
		}
	}
	return false
}

// EncodeTo streams the local memory's state into e: shape identity, access
// counters, and the words (skipped entirely while all-zero, matching the
// lazily materialized backing store).
func (l *Local) EncodeTo(e *checkpoint.Encoder) error {
	e.Int(l.group)
	e.Int(l.size)
	e.Varint(l.reads)
	e.Varint(l.writes)
	hasData := false
	if l.words != nil {
		for _, w := range l.words {
			if w != 0 {
				hasData = true
				break
			}
		}
	}
	e.Bool(hasData)
	if hasData {
		e.Int64s(l.words)
	}
	return e.Err()
}

// DecodeFrom restores the state written by EncodeTo onto a freshly built (or
// Reset) local memory of the same shape.
func (l *Local) DecodeFrom(d *checkpoint.Decoder) error {
	if g := d.Int(); g != l.group {
		return fmt.Errorf("mem: snapshot local group %d != %d", g, l.group)
	}
	if size := d.Int(); size != l.size {
		return fmt.Errorf("mem: snapshot local size %d != %d", size, l.size)
	}
	l.reads = d.Varint()
	l.writes = d.Varint()
	if d.Bool() {
		words := d.Int64s()
		if err := d.Err(); err != nil {
			return err
		}
		if len(words) != l.size {
			return fmt.Errorf("mem: snapshot local block holds %d words, want %d", len(words), l.size)
		}
		copy(l.ensure(), words)
	}
	return d.Err()
}
