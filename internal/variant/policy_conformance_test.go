// Conformance suite for the variant.Policy interface: every registered
// policy must (a) declare the step shape and boot population its Section
// 3.2 variant prescribes, (b) charge exactly the Table 1 costs that
// cmd/tablegen emits for its column, and (c) drive the staged engine over
// the tcf-e corpus such that the measured Stats decompose according to the
// policy's cost model — or reject the program with a typed capability
// error when the corpus uses a feature the variant lacks.
package variant_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcfpram/internal/codegen"
	"tcfpram/internal/exper"
	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/sema"
	"tcfpram/internal/variant"
)

// corpusFiles returns every tcf-e corpus program, sorted.
func corpusFiles(tb testing.TB) []string {
	tb.Helper()
	files, err := filepath.Glob(filepath.Join("..", "codegen", "testdata", "*.te"))
	if err != nil {
		tb.Fatal(err)
	}
	if len(files) < 10 {
		tb.Fatalf("corpus too small: %d programs", len(files))
	}
	return files
}

func policyFor(tb testing.TB, kind variant.Kind) variant.Policy {
	tb.Helper()
	pol, err := variant.PolicyFor(kind)
	if err != nil {
		tb.Fatal(err)
	}
	return pol
}

// TestPolicyRegistry checks every Section 3.2 variant has a registered
// policy whose kind, properties and step shape match the variant's
// documented discipline.
func TestPolicyRegistry(t *testing.T) {
	ms := variant.MachineShape{Groups: 4, ProcsPerGroup: 4, BalancedBound: 4,
		MultiInstrWindow: 8, VectorWidth: 16}
	for _, kind := range variant.Kinds() {
		pol := policyFor(t, kind)
		if pol.Kind() != kind {
			t.Fatalf("policy for %v reports kind %v", kind, pol.Kind())
		}
		if pol.Props() != kind.Props() {
			t.Fatalf("policy for %v disagrees with the static properties", kind)
		}
		shape := pol.Shape(ms)
		if shape.Lockstep != kind.Props().Lockstep {
			t.Fatalf("%v: shape lockstep %v, props say %v", kind, shape.Lockstep, kind.Props().Lockstep)
		}
		boot := pol.BootFlows(ms)
		switch kind {
		case variant.SingleInstruction, variant.Balanced, variant.MultiInstruction:
			if len(boot) != 1 || boot[0].Thickness != 1 {
				t.Fatalf("%v: TCF variants boot one thin flow, got %+v", kind, boot)
			}
		case variant.SingleOperation, variant.ConfigurableSingleOperation:
			if len(boot) != ms.Groups*ms.ProcsPerGroup {
				t.Fatalf("%v: thread machines boot P*Tp flows, got %d", kind, len(boot))
			}
			for _, bf := range boot {
				if bf.Thickness != 1 {
					t.Fatalf("%v: thread flows must have thickness 1: %+v", kind, bf)
				}
			}
		case variant.FixedThickness:
			if len(boot) != 1 || boot[0].Thickness != ms.VectorWidth {
				t.Fatalf("%v: SIMD boots one vector-wide flow, got %+v", kind, boot)
			}
		}
		switch kind {
		case variant.Balanced:
			if shape.Budget != ms.BalancedBound || !shape.Slice || !shape.Rotate {
				t.Fatalf("balanced shape wrong: %+v", shape)
			}
		case variant.MultiInstruction:
			if shape.Window != ms.MultiInstrWindow || !shape.PerThreadFetch {
				t.Fatalf("multi-instruction shape wrong: %+v", shape)
			}
		default:
			if shape.Window != 1 || shape.Budget != 0 || shape.Slice || shape.PerThreadFetch {
				t.Fatalf("%v: single-instruction-per-step shape wrong: %+v", kind, shape)
			}
		}
	}
}

// TestPolicyCostsMatchTable1 cross-checks each policy's cost methods
// against the Table 1 columns emitted by cmd/tablegen (exper.Table1 on the
// reference P=4, Tp=4, R=16, b=4 machine): the measured-or-analytic task
// switch and flow branch costs must equal the policy's rates, and the
// measured fetches per thick instruction must follow the policy's fetch
// discipline.
func TestPolicyCostsMatchTable1(t *testing.T) {
	const u = 16
	rows, err := exper.Table1(8, u)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		pol := policyFor(t, row.Variant)
		if want := float64(pol.TaskSwitchCycles(exper.Tp)); row.TaskSwitchCost != want {
			t.Errorf("%v: Table 1 task switch %.1f, policy charges %.1f (measured=%v)",
				row.Variant, row.TaskSwitchCost, want, row.TaskSwitchMeasured)
		}
		if want := float64(pol.FlowBranchCycles(exper.R)); row.FlowBranchCost != want {
			t.Errorf("%v: Table 1 flow branch %.1f, policy charges %.1f (measured=%v)",
				row.Variant, row.FlowBranchCost, want, row.FlowBranchMeasured)
		}
		// Fetch discipline: per-thread delivery costs u fetches per thick
		// instruction (whether the u threads share one flow, as in XMT, or
		// are u separate thread flows), the balanced discipline re-fetches
		// once per budgeted slice, and fetch-once costs exactly 1.
		shape := pol.Shape(variant.MachineShape{Groups: exper.P, ProcsPerGroup: exper.Tp,
			BalancedBound: exper.B, MultiInstrWindow: 8, VectorWidth: u})
		var wantFetches float64
		switch {
		case shape.PerThreadFetch || pol.Props().FixedThreads:
			wantFetches = u
		case shape.Slice:
			wantFetches = float64((u + shape.Budget - 1) / shape.Budget)
		default:
			wantFetches = 1
		}
		if row.FetchesPerTCF != wantFetches {
			t.Errorf("%v: Table 1 fetches/TCF %.2f, policy shape implies %.2f",
				row.Variant, row.FetchesPerTCF, wantFetches)
		}
	}
}

// portableProgram is a scalar straight-line program every variant can run:
// no SETTHICK, SPLIT or NUMA, so even the fixed-thread and SIMD machines
// accept it.
func portableProgram() *isa.Program {
	b := isa.NewBuilder("portable")
	b.Label("main")
	for i := 0; i < 6; i++ {
		b.ALUI(isa.ADD, isa.S(1), isa.S(1), 3)
	}
	b.Halt()
	return b.MustBuild()
}

// runUnderPolicy runs one compiled program on kind's default machine and
// checks the measured Stats decompose per the policy's cost model. It
// returns false when the machine rejected the program.
func runUnderPolicy(t *testing.T, kind variant.Kind, prog *isa.Program, local []sema.DataSeg) bool {
	t.Helper()
	pol := policyFor(t, kind)
	cfg := machine.Default(kind)
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	for _, seg := range local {
		for g := 0; g < cfg.Groups; g++ {
			if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Run(); err != nil {
		// The only legitimate rejection is a capability the variant lacks
		// (SETTHICK / SPLIT / NUMA / PRAM on a machine without it), and
		// only variants missing a capability may reject at all.
		props := pol.Props()
		if props.VariableThickness && props.ControlParallel && props.NUMAOperation {
			t.Fatalf("%v rejected a program despite full capabilities: %v", kind, err)
		}
		if !strings.Contains(err.Error(), "unsupported") {
			t.Fatalf("%v rejected with a non-capability error: %v", kind, err)
		}
		return false
	}

	s := m.Stats()
	props := pol.Props()
	tp := cfg.ProcsPerGroup

	// Task rotation: with no time slicing configured, every switch is a
	// buffer rotation charged at the policy's Table 1 rate.
	if want := s.TaskSwitches * pol.TaskSwitchCycles(tp); s.TaskSwitchCycles != want {
		t.Fatalf("%v: %d task switches cost %d cycles, policy rate implies %d",
			kind, s.TaskSwitches, s.TaskSwitchCycles, want)
	}
	// Flow branching: every split child pays the policy's branch cost
	// (fragments pay the TCF rate, but the default config never splits).
	var children int64
	for _, f := range m.Flows() {
		if f.Parent != nil {
			children++
		}
	}
	if s.AutoSplits != 0 {
		t.Fatalf("%v: unexpected auto-splits with threshold 0", kind)
	}
	if want := children * pol.FlowBranchCycles(isa.NumSRegs); s.FlowBranchCycles != want {
		t.Fatalf("%v: %d split children cost %d cycles, policy rate implies %d",
			kind, children, s.FlowBranchCycles, want)
	}
	if !props.ControlParallel && s.Splits != 0 {
		t.Fatalf("%v: splits on a variant without control parallelism", kind)
	}

	// Stage attribution (Figure 13): the staged engine must account every
	// cost category to exactly one stage.
	st := s.Stages
	if st[machine.StageOpGen].Cycles != s.Ops+s.ScalarOps {
		t.Fatalf("%v: opgen stage %d cycles != ops %d", kind, st[machine.StageOpGen].Cycles, s.Ops+s.ScalarOps)
	}
	if st[machine.StageOpGen].Events != s.InstrFetches {
		t.Fatalf("%v: opgen stage %d events != fetches %d", kind, st[machine.StageOpGen].Events, s.InstrFetches)
	}
	if want := s.OverheadCycles + s.StallCycles + s.FaultStallCycles; st[machine.StageMemory].Cycles != want {
		t.Fatalf("%v: memory stage %d cycles != overhead+stalls %d", kind, st[machine.StageMemory].Cycles, want)
	}
	if want := s.FlowBranchCycles + s.TaskSwitchCycles; st[machine.StageFrontend].Cycles != want {
		t.Fatalf("%v: frontend stage %d cycles != branch+switch %d", kind, st[machine.StageFrontend].Cycles, want)
	}
	if want := s.Splits + s.Joins + s.AutoSplits + s.TaskSwitches; st[machine.StageFrontend].Events != want {
		t.Fatalf("%v: frontend stage %d events != %d", kind, st[machine.StageFrontend].Events, want)
	}
	return true
}

// TestPolicyConformanceCorpus is the table-driven suite: every corpus
// program under all six policies, plus a portable scalar program that every
// variant must accept, so even the capability-poor variants prove the
// policy cost decomposition on at least one successful run.
func TestPolicyConformanceCorpus(t *testing.T) {
	files := corpusFiles(t)
	portable := portableProgram()
	for _, kind := range variant.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			succeeded := 0
			for _, file := range files {
				src, err := os.ReadFile(file)
				if err != nil {
					t.Fatal(err)
				}
				c, err := codegen.CompileSource(file, string(src))
				if err != nil {
					t.Fatalf("compile %s: %v", file, err)
				}
				if runUnderPolicy(t, kind, c.Program, c.LocalData) {
					succeeded++
				}
			}
			if !runUnderPolicy(t, kind, portable, nil) {
				t.Fatalf("%v rejected the portable scalar program", kind)
			}
			props := kind.Props()
			if props.VariableThickness && succeeded != len(files) {
				t.Fatalf("%v: only %d/%d corpus programs ran", kind, succeeded, len(files))
			}
			t.Logf("%v: %d/%d corpus programs ran (+portable)", kind, succeeded, len(files))
		})
	}
}
