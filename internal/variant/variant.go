// Package variant enumerates the execution-model variants of the extended
// PRAM-NUMA model (Section 3.2) and carries their static properties and
// analytic cost estimates — the left-hand side of the paper's Table 1 that
// the machine measurements are checked against.
package variant

import "fmt"

// Kind selects one of the six execution variants.
type Kind int

const (
	// SingleInstruction: per step every TCF processor executes exactly one
	// TCF instruction of each resident flow — a variable number of
	// identical operations (PRAM mode) or consecutive instructions (NUMA
	// mode). The most general variant, realizing the TCF model in full.
	SingleInstruction Kind = iota
	// Balanced: per step every TCF processor executes a bounded number of
	// operations out of TCF instructions; incomplete instructions continue
	// next step from the first unexecuted operation.
	Balanced
	// MultiInstruction: multiple instructions per logical step and no
	// lockstep between flows — the execution model of the XMT
	// architecture. Synchronization only at split/join and barriers.
	MultiInstruction
	// SingleOperation: thickness of all TCFs fixed to one — the standard
	// interleaved ESM architecture (SB-PRAM, ECLIPSE).
	SingleOperation
	// ConfigurableSingleOperation: thickness one plus NUMA bunching of
	// processors — the original PRAM-NUMA model (TOTAL ECLIPSE).
	ConfigurableSingleOperation
	// FixedThickness: a single flow of fixed thickness with a scalar unit
	// and no control parallelism — the traditional vector/SIMD model.
	FixedThickness

	numKinds
)

// Kinds lists all variants in Table 1 column order.
func Kinds() []Kind {
	return []Kind{SingleInstruction, Balanced, MultiInstruction,
		SingleOperation, ConfigurableSingleOperation, FixedThickness}
}

func (k Kind) String() string {
	switch k {
	case SingleInstruction:
		return "single-instruction"
	case Balanced:
		return "balanced"
	case MultiInstruction:
		return "multi-instruction"
	case SingleOperation:
		return "single-operation"
	case ConfigurableSingleOperation:
		return "configurable-single-operation"
	case FixedThickness:
		return "fixed-thickness"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a variant by its String name (and a few aliases).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "single-instruction", "si", "tcf":
		return SingleInstruction, nil
	case "balanced", "bal":
		return Balanced, nil
	case "multi-instruction", "mi", "xmt":
		return MultiInstruction, nil
	case "single-operation", "so", "esm", "sb-pram":
		return SingleOperation, nil
	case "configurable-single-operation", "cso", "pram-numa", "total-eclipse":
		return ConfigurableSingleOperation, nil
	case "fixed-thickness", "ft", "simd", "vector":
		return FixedThickness, nil
	}
	return 0, fmt.Errorf("variant: unknown kind %q", s)
}

// Valid reports whether k is a defined variant.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Properties are the qualitative rows of Table 1 plus execution-shape flags
// the engine needs.
type Properties struct {
	Kind Kind
	// RelatedModel names the existing execution model / architecture the
	// variant corresponds to (Section 3.2).
	RelatedModel string

	// VariableThickness: TCFs may change thickness (SETTHICK legal).
	VariableThickness bool
	// PRAMOperation / NUMAOperation / MIMD as in Table 1.
	PRAMOperation bool
	NUMAOperation bool
	MIMD          bool
	// SequentialVia describes how sequential code runs efficiently.
	SequentialVia string
	// ControlParallel: SPLIT/JOIN supported.
	ControlParallel bool
	// Lockstep: instruction-level synchrony of the PRAM model retained.
	Lockstep bool
	// FixedThreads: machine boots a fixed set of thickness-1 flows
	// (thread programming model, thread id = flow id).
	FixedThreads bool
}

var props = map[Kind]Properties{
	SingleInstruction: {
		Kind: SingleInstruction, RelatedModel: "extended PRAM-NUMA (this paper)",
		VariableThickness: true, PRAMOperation: true, NUMAOperation: true,
		MIMD: true, SequentialVia: "NUMA", ControlParallel: true, Lockstep: true,
	},
	Balanced: {
		Kind: Balanced, RelatedModel: "extended PRAM-NUMA, balanced scheduling",
		VariableThickness: true, PRAMOperation: true, NUMAOperation: true,
		MIMD: true, SequentialVia: "NUMA", ControlParallel: true, Lockstep: true,
	},
	MultiInstruction: {
		Kind: MultiInstruction, RelatedModel: "XMT",
		VariableThickness: true, PRAMOperation: false, NUMAOperation: true,
		MIMD: true, SequentialVia: "single thr.", ControlParallel: true, Lockstep: false,
	},
	SingleOperation: {
		Kind: SingleOperation, RelatedModel: "SB-PRAM / ECLIPSE (interleaved ESM)",
		VariableThickness: false, PRAMOperation: true, NUMAOperation: false,
		MIMD: true, SequentialVia: "single thr.", ControlParallel: false, Lockstep: true,
		FixedThreads: true,
	},
	ConfigurableSingleOperation: {
		Kind: ConfigurableSingleOperation, RelatedModel: "PRAM-NUMA / TOTAL ECLIPSE",
		VariableThickness: false, PRAMOperation: true, NUMAOperation: true,
		MIMD: true, SequentialVia: "NUMA", ControlParallel: false, Lockstep: true,
		FixedThreads: true,
	},
	FixedThickness: {
		Kind: FixedThickness, RelatedModel: "vector/SIMD",
		VariableThickness: false, PRAMOperation: false, NUMAOperation: false,
		MIMD: false, SequentialVia: "scalar unit", ControlParallel: false, Lockstep: true,
	},
}

// Props returns the static properties of k.
func (k Kind) Props() Properties {
	p, ok := props[k]
	if !ok {
		panic(fmt.Sprintf("variant: no properties for %v", k))
	}
	return p
}

// AnalyticRow is one column of Table 1 evaluated for a machine configuration
// (P processor cores, Tp threads/TCF slots per processor, R registers, u the
// unbounded thickness, b the balanced bound).
type AnalyticRow struct {
	Kind Kind
	// NumTCFs is the number of simultaneously resident TCFs ("P x Tp" for
	// all variants: the TCF storage block has Tp slots per processor).
	NumTCFs int
	// NumThreadsUnbounded is true when the number of implicit threads is
	// unbounded (u); otherwise NumThreads = P*Tp holds.
	NumThreadsUnbounded bool
	NumThreads          int
	// RegistersPerThreadShared is true when a thread effectively gets
	// R/u + m words (TCF variants share the common registers across the
	// thickness); otherwise each thread owns R words.
	RegistersPerThreadShared bool
	// FetchesPerTCF: instruction fetches needed to execute one TCF
	// instruction across its whole thickness u: 1 (single instruction),
	// ceil(u/b) (balanced), Tp for the thread-based variants (one fetch
	// per thread executing the same code).
	FetchesPerTCF func(u int) int
	// TaskSwitchCost in context words moved: 0 for TCF variants (tasks are
	// TCFs, switching is a buffer rotation), O(1) for single-threaded
	// sequential switch, O(Tp) for the thread-based variants.
	TaskSwitchCost func(tp, r int) int
	// FlowBranchCost in words copied when a flow splits: O(R) for TCF
	// variants (children inherit the R common registers), O(1) for thread
	// machines (threads branch in place).
	FlowBranchCost func(r int) int
}

// Analytic returns the Table 1 analytic row for k given the balanced bound b.
func Analytic(k Kind, p, tp, r, b int) AnalyticRow {
	ceilDiv := func(a, b int) int { return (a + b - 1) / b }
	row := AnalyticRow{Kind: k, NumTCFs: p * tp}
	switch k {
	case SingleInstruction:
		row.NumThreadsUnbounded = true
		row.RegistersPerThreadShared = true
		row.FetchesPerTCF = func(int) int { return 1 }
		row.TaskSwitchCost = func(int, int) int { return 0 }
		row.FlowBranchCost = func(r int) int { return r }
	case Balanced:
		row.NumThreadsUnbounded = true
		row.RegistersPerThreadShared = true
		row.FetchesPerTCF = func(u int) int {
			if u <= 0 {
				return 1
			}
			return ceilDiv(u, b)
		}
		row.TaskSwitchCost = func(int, int) int { return 0 }
		row.FlowBranchCost = func(r int) int { return r }
	case MultiInstruction:
		row.NumThreads = p * tp
		row.FetchesPerTCF = func(int) int { return tp }
		row.TaskSwitchCost = func(int, int) int { return 1 }
		row.FlowBranchCost = func(int) int { return 1 }
	case SingleOperation:
		row.NumThreads = p * tp
		row.FetchesPerTCF = func(int) int { return tp }
		row.TaskSwitchCost = func(tp, r int) int { return tp }
		row.FlowBranchCost = func(int) int { return 1 }
	case ConfigurableSingleOperation:
		row.NumThreads = p * tp
		row.FetchesPerTCF = func(int) int { return tp }
		row.TaskSwitchCost = func(tp, r int) int { return tp }
		row.FlowBranchCost = func(int) int { return 1 }
	case FixedThickness:
		row.NumThreads = p * tp
		row.FetchesPerTCF = func(int) int { return tp }
		row.TaskSwitchCost = func(tp, r int) int { return tp }
		row.FlowBranchCost = func(int) int { return 1 }
	default:
		panic(fmt.Sprintf("variant: no analytic row for %v", k))
	}
	return row
}
