package variant

import "testing"

func TestKindsCoverAll(t *testing.T) {
	ks := Kinds()
	if len(ks) != int(numKinds) {
		t.Fatalf("Kinds() has %d entries, want %d", len(ks), numKinds)
	}
	seen := map[Kind]bool{}
	for _, k := range ks {
		if !k.Valid() {
			t.Fatalf("invalid kind %v", k)
		}
		if seen[k] {
			t.Fatalf("duplicate kind %v", k)
		}
		seen[k] = true
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("expected error")
	}
	aliases := map[string]Kind{
		"tcf": SingleInstruction, "xmt": MultiInstruction, "esm": SingleOperation,
		"pram-numa": ConfigurableSingleOperation, "simd": FixedThickness, "bal": Balanced,
	}
	for a, want := range aliases {
		got, err := ParseKind(a)
		if err != nil || got != want {
			t.Fatalf("alias %q = %v, %v", a, got, err)
		}
	}
}

// Table 1 qualitative rows: PRAM / NUMA / MIMD operation per variant.
func TestTable1QualitativeRows(t *testing.T) {
	type row struct{ pram, numa, mimd bool }
	want := map[Kind]row{
		SingleInstruction:           {true, true, true},
		Balanced:                    {true, true, true},
		MultiInstruction:            {false, true, true},
		SingleOperation:             {true, false, true},
		ConfigurableSingleOperation: {true, true, true},
		FixedThickness:              {false, false, false},
	}
	for k, w := range want {
		p := k.Props()
		if p.PRAMOperation != w.pram || p.NUMAOperation != w.numa || p.MIMD != w.mimd {
			t.Errorf("%v: PRAM/NUMA/MIMD = %v/%v/%v, want %v/%v/%v",
				k, p.PRAMOperation, p.NUMAOperation, p.MIMD, w.pram, w.numa, w.mimd)
		}
	}
}

func TestLockstepAndControlParallel(t *testing.T) {
	for _, k := range Kinds() {
		p := k.Props()
		if k == MultiInstruction && p.Lockstep {
			t.Error("multi-instruction must not be lockstep (XMT loses PRAM synchronicity)")
		}
		if k != MultiInstruction && !p.Lockstep {
			t.Errorf("%v must be lockstep", k)
		}
		wantCP := k == SingleInstruction || k == Balanced || k == MultiInstruction
		if p.ControlParallel != wantCP {
			t.Errorf("%v ControlParallel = %v, want %v", k, p.ControlParallel, wantCP)
		}
	}
}

func TestFixedThreadsFlags(t *testing.T) {
	for _, k := range Kinds() {
		want := k == SingleOperation || k == ConfigurableSingleOperation
		if got := k.Props().FixedThreads; got != want {
			t.Errorf("%v FixedThreads = %v, want %v", k, got, want)
		}
	}
}

// Table 1 cost rows, evaluated analytically.
func TestTable1AnalyticCosts(t *testing.T) {
	const P, Tp, R, B = 4, 4, 16, 4
	for _, k := range Kinds() {
		row := Analytic(k, P, Tp, R, B)
		if row.NumTCFs != P*Tp {
			t.Errorf("%v NumTCFs = %d, want %d", k, row.NumTCFs, P*Tp)
		}
		switch k {
		case SingleInstruction, Balanced:
			if !row.NumThreadsUnbounded {
				t.Errorf("%v must have unbounded threads", k)
			}
			if !row.RegistersPerThreadShared {
				t.Errorf("%v must share registers across thickness", k)
			}
			if got := row.TaskSwitchCost(Tp, R); got != 0 {
				t.Errorf("%v task switch = %d, want 0", k, got)
			}
			if got := row.FlowBranchCost(R); got != R {
				t.Errorf("%v flow branch = %d, want O(R)=%d", k, got, R)
			}
		default:
			if row.NumThreadsUnbounded {
				t.Errorf("%v threads must be bounded", k)
			}
			if row.NumThreads != P*Tp {
				t.Errorf("%v NumThreads = %d, want %d", k, row.NumThreads, P*Tp)
			}
			if got := row.FlowBranchCost(R); got != 1 {
				t.Errorf("%v flow branch = %d, want O(1)", k, got)
			}
		}
	}
	// Fetches per TCF across a thickness-u instruction.
	for _, u := range []int{1, 3, 4, 5, 16, 17} {
		if got := Analytic(SingleInstruction, P, Tp, R, B).FetchesPerTCF(u); got != 1 {
			t.Errorf("single-instruction fetches(%d) = %d, want 1", u, got)
		}
		want := (u + B - 1) / B
		if got := Analytic(Balanced, P, Tp, R, B).FetchesPerTCF(u); got != want {
			t.Errorf("balanced fetches(%d) = %d, want %d", u, got, want)
		}
		if got := Analytic(SingleOperation, P, Tp, R, B).FetchesPerTCF(u); got != Tp {
			t.Errorf("single-operation fetches(%d) = %d, want Tp=%d", u, got, Tp)
		}
	}
	if got := Analytic(Balanced, P, Tp, R, B).FetchesPerTCF(0); got != 1 {
		t.Errorf("balanced fetches(0) = %d, want 1", got)
	}
	// Thread-machine task switch is O(Tp); multi-instruction (XMT) spawns
	// from a master thread at O(1).
	if got := Analytic(SingleOperation, P, Tp, R, B).TaskSwitchCost(Tp, R); got != Tp {
		t.Errorf("single-operation task switch = %d, want %d", got, Tp)
	}
	if got := Analytic(MultiInstruction, P, Tp, R, B).TaskSwitchCost(Tp, R); got != 1 {
		t.Errorf("multi-instruction task switch = %d, want 1", got)
	}
}

func TestPropsPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Kind(99).Props()
}

func TestAnalyticPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Analytic(Kind(99), 1, 1, 1, 1)
}

func TestRelatedModels(t *testing.T) {
	for _, k := range Kinds() {
		if k.Props().RelatedModel == "" {
			t.Errorf("%v lacks a related model", k)
		}
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
