package variant

import "fmt"

// MachineShape is the slice of the machine configuration a Policy may
// consult when shaping execution: the physical organization (P groups of Tp
// TCF processor slots) and the per-variant tuning knobs.
type MachineShape struct {
	Groups           int // P
	ProcsPerGroup    int // Tp
	BalancedBound    int // b, the Balanced operation budget per group-step
	MultiInstrWindow int // XMT instructions per flow per step
	VectorWidth      int // fixed thickness of the SIMD datapath
}

// StepShape is the execution discipline a Policy hands the step engine: how
// the backend fetches, budgets and synchronizes the operations of one step.
// Together with the step index it forms the engine's StepPlan, so the whole
// per-step behavior of a variant is captured by this one structure.
type StepShape struct {
	// Lockstep retains the PRAM step semantics: memory effects buffer until
	// the step boundary and flows advance in instruction-level synchrony.
	// False selects immediate (XMT-style) memory semantics with groups
	// executed serially.
	Lockstep bool
	// Window is the maximum number of TCF instructions one flow executes
	// per step.
	Window int
	// Budget bounds the operation slices per group per step (the Balanced
	// variant's b); 0 means unbounded.
	Budget int
	// Rotate rotates the resident slot served first each step, so a thick
	// flow cannot starve its slot-mates of the budget.
	Rotate bool
	// Slice lets a partially executed thick instruction continue next step
	// from its first unexecuted operation (the Balanced discipline); the
	// instruction is re-fetched each step it continues.
	Slice bool
	// PerThreadFetch charges one instruction fetch per implicit thread
	// (a thickness-u instruction costs u fetches) instead of the TCF
	// variants' fetch-once-per-instruction discipline.
	PerThreadFetch bool
}

// BootFlow seeds one initial flow at machine boot.
type BootFlow struct {
	Group     int
	Thickness int
}

// Policy is the pluggable execution policy of one Section 3.2 variant: the
// fetch discipline, operation budget, lockstep rule and boot population the
// step engine consumes, plus the Table 1 cost properties the frontend
// charges for task switches and flow branches. The engine itself contains
// no per-variant conditionals; everything variant-specific flows through
// this interface.
type Policy interface {
	// Kind identifies the variant the policy implements.
	Kind() Kind
	// Props returns the variant's static qualitative properties.
	Props() Properties
	// Shape returns the step-execution discipline for a machine shape.
	Shape(ms MachineShape) StepShape
	// BootFlows returns the initial flow population (Section 2.2: TCF
	// variants start with one flow of thickness one; thread machines boot
	// their fixed thread set; SIMD boots one vector-wide flow).
	BootFlows(ms MachineShape) []BootFlow
	// TaskSwitchCycles is the cost of rotating one task through the TCF
	// storage buffer (Table 1 task-switch row): free for TCF variants, 1
	// for XMT spawning, a full Tp-context switch for thread machines.
	TaskSwitchCycles(tp int) int64
	// PreemptCycles is the cost of demoting a resident flow at a
	// time-slice quantum boundary. It differs from TaskSwitchCycles only
	// for MultiInstruction, whose O(1) spawn cost does not apply to a
	// buffer rotation.
	PreemptCycles(tp int) int64
	// FlowBranchCycles is the cost of creating one split child (Table 1
	// flow-branch row): the TCF variants copy the R common registers into
	// the child, O(R); thread machines branch in place, O(1).
	FlowBranchCycles(regs int) int64
}

// tcfBase carries the shape-independent behavior shared by the
// thickness-aware TCF variants: buffer rotation is free, a split child
// inherits the R common registers, and a program boots as a single flow of
// thickness one.
type tcfBase struct{ kind Kind }

func (b tcfBase) Kind() Kind                      { return b.kind }
func (b tcfBase) Props() Properties               { return b.kind.Props() }
func (tcfBase) TaskSwitchCycles(int) int64        { return 0 }
func (tcfBase) PreemptCycles(int) int64           { return 0 }
func (tcfBase) FlowBranchCycles(regs int) int64   { return int64(regs) }
func (tcfBase) BootFlows(MachineShape) []BootFlow { return []BootFlow{{Group: 0, Thickness: 1}} }

// threadBase is the thread-machine counterpart: the machine boots P*Tp
// thickness-1 flows (flow id = global thread id), switching a task moves all
// Tp thread contexts of a slot set, and threads branch in place.
type threadBase struct{ kind Kind }

func (b threadBase) Kind() Kind                  { return b.kind }
func (b threadBase) Props() Properties           { return b.kind.Props() }
func (threadBase) TaskSwitchCycles(tp int) int64 { return int64(tp) }
func (threadBase) PreemptCycles(tp int) int64    { return int64(tp) }
func (threadBase) FlowBranchCycles(int) int64    { return 1 }
func (threadBase) Shape(MachineShape) StepShape  { return StepShape{Lockstep: true, Window: 1} }
func (threadBase) BootFlows(ms MachineShape) []BootFlow {
	out := make([]BootFlow, 0, ms.Groups*ms.ProcsPerGroup)
	for g := 0; g < ms.Groups; g++ {
		for s := 0; s < ms.ProcsPerGroup; s++ {
			out = append(out, BootFlow{Group: g, Thickness: 1})
		}
	}
	return out
}

// SingleInstructionPolicy realizes the TCF model in full: one TCF
// instruction of every resident flow per step, fetched once regardless of
// thickness, under PRAM lockstep (Figure 7).
type SingleInstructionPolicy struct{ tcfBase }

func (SingleInstructionPolicy) Shape(MachineShape) StepShape {
	return StepShape{Lockstep: true, Window: 1}
}

// BalancedPolicy bounds each group to b operation slices per step;
// incomplete thick instructions continue next step from the first
// unexecuted lane, and the serving order rotates across slots (Figure 8).
type BalancedPolicy struct{ tcfBase }

func (BalancedPolicy) Shape(ms MachineShape) StepShape {
	return StepShape{Lockstep: true, Window: 1, Budget: ms.BalancedBound, Rotate: true, Slice: true}
}

// MultiInstructionPolicy is the XMT-style model: up to MultiInstrWindow
// instructions per flow per step with immediate memory semantics and no
// lockstep between flows; instruction delivery is per thread, and spawning
// replaces register copying at splits (Figure 9).
type MultiInstructionPolicy struct{ tcfBase }

func (MultiInstructionPolicy) Shape(ms MachineShape) StepShape {
	return StepShape{Window: ms.MultiInstrWindow, PerThreadFetch: true}
}
func (MultiInstructionPolicy) TaskSwitchCycles(int) int64 { return 1 }
func (MultiInstructionPolicy) FlowBranchCycles(int) int64 { return 1 }

// SingleOperationPolicy is the interleaved ESM machine (SB-PRAM, ECLIPSE):
// a fixed set of P*Tp thickness-1 threads in lockstep.
type SingleOperationPolicy struct{ threadBase }

// ConfigurableSingleOperationPolicy is the original PRAM-NUMA machine
// (TOTAL ECLIPSE): the fixed thread set plus NUMA bunching of processors.
type ConfigurableSingleOperationPolicy struct{ threadBase }

// FixedThicknessPolicy is the vector/SIMD reduction: a single flow of the
// fixed vector width on the one processor, with a scalar unit and no
// control parallelism. Its switch/branch costs are the thread-machine ones
// from Table 1; with a single bootable flow they are never actually paid.
type FixedThicknessPolicy struct{ threadBase }

func (FixedThicknessPolicy) BootFlows(ms MachineShape) []BootFlow {
	return []BootFlow{{Group: 0, Thickness: ms.VectorWidth}}
}

var policies [numKinds]Policy

// Register installs p as the policy for its Kind, replacing any previous
// registration. The six paper variants register themselves at package init;
// experiments may swap in instrumented wrappers.
func Register(p Policy) {
	k := p.Kind()
	if !k.Valid() {
		panic(fmt.Sprintf("variant: Register with invalid kind %v", k))
	}
	policies[k] = p
}

func init() {
	Register(SingleInstructionPolicy{tcfBase{SingleInstruction}})
	Register(BalancedPolicy{tcfBase{Balanced}})
	Register(MultiInstructionPolicy{tcfBase{MultiInstruction}})
	Register(SingleOperationPolicy{threadBase{SingleOperation}})
	Register(ConfigurableSingleOperationPolicy{threadBase{ConfigurableSingleOperation}})
	Register(FixedThicknessPolicy{threadBase{FixedThickness}})
}

// PolicyFor returns the registered execution policy for k.
func PolicyFor(k Kind) (Policy, error) {
	if !k.Valid() || policies[k] == nil {
		return nil, fmt.Errorf("variant: no policy registered for %v", k)
	}
	return policies[k], nil
}
