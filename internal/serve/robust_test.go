package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"testing"
)

// TestPanicRecoveryBitIdentity: after the serve layer recovers a mid-run
// panic (discarding the poisoned machine), the very next runs on the same
// server must be bit-identical to runs on a server that never panicked —
// and the panic path must not leak goroutines.
func TestPanicRecoveryBitIdentity(t *testing.T) {
	peek := []peekRange{{Addr: 300, N: 8}}

	_, oracleTS := newTestServer(t, Options{})
	_, _, oracle := post(t, oracleTS, "", runRequest{Source: ckptSrc, Peek: peek})
	if oracle.Outcome != outcomeOK {
		t.Fatalf("oracle: %q (%s)", oracle.Outcome, oracle.Error)
	}

	s, ts := newTestServer(t, Options{})
	s.hookLoaded = func(tenant, name string) {
		if name == "bomb" {
			panic("injected test panic")
		}
	}
	// Warm-up, then capture the goroutine baseline the panic path must
	// settle back to.
	post(t, ts, "", runRequest{Source: validSrc})
	baseline := runtime.NumGoroutine()

	for i := 0; i < 3; i++ {
		status, _, resp := post(t, ts, "", runRequest{Name: "bomb", Source: ckptSrc})
		if status != http.StatusInternalServerError || resp.Outcome != outcomePanic {
			t.Fatalf("panic %d: %d %q", i, status, resp.Outcome)
		}
		status, _, resp = post(t, ts, "", runRequest{Source: ckptSrc, Peek: peek})
		if status != http.StatusOK {
			t.Fatalf("run after panic %d: %d %q (%s)", i, status, resp.Outcome, resp.Error)
		}
		if resp.Steps != oracle.Steps || resp.Cycles != oracle.Cycles {
			t.Fatalf("after panic %d: stats diverged: steps %d/%d cycles %d/%d",
				i, resp.Steps, oracle.Steps, resp.Cycles, oracle.Cycles)
		}
		gotMem, _ := json.Marshal(resp.Memory)
		wantMem, _ := json.Marshal(oracle.Memory)
		if !bytes.Equal(gotMem, wantMem) {
			t.Fatalf("after panic %d: memory diverged: %s vs %s", i, gotMem, wantMem)
		}
	}
	if d := s.Metrics().Pool.Discards; d != 3 {
		t.Fatalf("pool discards = %d, want 3 (one per panic)", d)
	}
	settleGoroutines(t, baseline)
}

// TestConcurrentBadSourceSingleCompile: many concurrent requests for the
// same broken program share ONE compile — the failure is memoized exactly
// like a success — and the pile-up leaves no goroutines behind.
func TestConcurrentBadSourceSingleCompile(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxConcurrent: 8, MaxQueue: 64, QueueWait: 0})

	// Warm-up and baselines.
	post(t, ts, "", runRequest{Source: validSrc})
	baseline := runtime.NumGoroutine()
	c0 := s.Metrics().Cache

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, resp := post(t, ts, "", runRequest{Source: parseBadSrc})
			if status != http.StatusBadRequest || resp.Outcome != outcomeCompileError {
				t.Errorf("bad source: %d %q", status, resp.Outcome)
			}
			if resp.Diagnostics == "" {
				t.Error("bad source: no diagnostics")
			}
		}()
	}
	wg.Wait()

	c1 := s.Metrics().Cache
	if misses := c1.Misses - c0.Misses; misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (single-flight broke)", misses)
	}
	if hits := c1.Hits - c0.Hits; hits != n-1 {
		t.Fatalf("cache hits = %d, want %d", hits, n-1)
	}

	// A second wave answers purely from the memoized failure.
	for i := 0; i < 4; i++ {
		if status, _, _ := post(t, ts, "", runRequest{Source: parseBadSrc}); status != http.StatusBadRequest {
			t.Fatalf("memoized failure wave: %d", status)
		}
	}
	if misses := s.Metrics().Cache.Misses - c0.Misses; misses != 1 {
		t.Fatalf("second wave recompiled: %d misses", misses)
	}
	// Drop the keep-alive connections the concurrent wave opened before
	// checking for leaks; their read loops are client-side state, not ours.
	ts.Client().CloseIdleConnections()
	settleGoroutines(t, baseline)
}
