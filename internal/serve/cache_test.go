package serve

import (
	"fmt"
	"sync"
	"testing"

	"tcfpram/internal/mem"
	"tcfpram/internal/variant"
)

// TestCacheSingleFlight: concurrent requests for one program share exactly
// one vet+compile.
func TestCacheSingleFlight(t *testing.T) {
	c := NewProgramCache(64)
	var wg sync.WaitGroup
	entries := make([]*cacheEntry, 16)
	for i := range entries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries[i] = c.Get(validSrc, variant.SingleInstruction, mem.DisciplineCREW)
		}(i)
	}
	wg.Wait()
	first := entries[0]
	for i, e := range entries {
		if e != first {
			t.Fatalf("request %d got a different entry", i)
		}
	}
	if first.rejected || first.err != nil || first.compiled == nil {
		t.Fatalf("bad entry: %+v", first)
	}
	cc := c.Counters()
	if cc.Misses != 1 || cc.Hits != 15 || cc.Entries != 1 {
		t.Fatalf("counters: %+v", cc)
	}
}

// TestCacheMemoizesFailures: broken programs are compiled once and the
// rejection class (frontend vs analyzer) is preserved.
func TestCacheMemoizesFailures(t *testing.T) {
	c := NewProgramCache(64)
	for i := 0; i < 3; i++ {
		e := c.Get(vetBadSrc, variant.SingleInstruction, mem.DisciplineCREW)
		if !e.rejected || e.frontend {
			t.Fatalf("vet-bad entry: rejected=%v frontend=%v", e.rejected, e.frontend)
		}
		e = c.Get(parseBadSrc, variant.SingleInstruction, mem.DisciplineCREW)
		if !e.rejected || !e.frontend {
			t.Fatalf("parse-bad entry: rejected=%v frontend=%v", e.rejected, e.frontend)
		}
	}
	if cc := c.Counters(); cc.Misses != 2 || cc.Hits != 4 {
		t.Fatalf("counters: %+v", cc)
	}
}

// TestCacheKeyedByDiscipline: the same source vets differently under CRCW
// (where concurrent writes are legal) than under CREW.
func TestCacheKeyedByDiscipline(t *testing.T) {
	c := NewProgramCache(64)
	crew := c.Get(vetBadSrc, variant.SingleInstruction, mem.DisciplineCREW)
	crcw := c.Get(vetBadSrc, variant.SingleInstruction, mem.DisciplineCRCW)
	if !crew.rejected {
		t.Fatal("CREW accepted a concurrent write")
	}
	if crcw.rejected {
		t.Fatal("CRCW rejected a legal concurrent write")
	}
}

// TestCacheEviction: the cache stays bounded, evicting settled entries.
func TestCacheEviction(t *testing.T) {
	c := NewProgramCache(16)
	for i := 0; i < 24; i++ {
		src := fmt.Sprintf(`func main() { print(%d); }`, i)
		if e := c.Get(src, variant.SingleInstruction, mem.DisciplineCREW); e.rejected || e.err != nil {
			t.Fatalf("program %d rejected", i)
		}
	}
	cc := c.Counters()
	if cc.Entries > 16 {
		t.Fatalf("cache grew past its bound: %+v", cc)
	}
	if cc.Evictions < 8 {
		t.Fatalf("expected at least 8 evictions: %+v", cc)
	}
}
