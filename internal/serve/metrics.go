package serve

import (
	"sync/atomic"

	"tcfpram/internal/machine"
)

// metrics holds the server's atomic counters. Outcome counters are indexed
// by the same outcome strings the /run responses carry, so a client and the
// /metrics endpoint always agree on terminology.
type metrics struct {
	admitted atomic.Int64 // requests that acquired a run slot

	ok           atomic.Int64
	shed         atomic.Int64 // load-shed at the admission queue
	tenantBusy   atomic.Int64 // per-tenant concurrency cap
	draining     atomic.Int64 // rejected because the server is draining
	badRequest   atomic.Int64
	tooLarge     atomic.Int64
	vetRejected  atomic.Int64
	compileError atomic.Int64
	quota        atomic.Int64 // MaxSteps / MaxThickness / shared-memory quota
	deadline     atomic.Int64 // wall-clock deadline or client cancel
	runtimeFault atomic.Int64 // deadlock, discipline violation, machine fault
	panics       atomic.Int64 // isolated request panics

	steps       atomic.Int64 // machine steps executed, all runs
	cycles      atomic.Int64 // simulated cycles, all runs
	stageCycles [machine.NumStages]atomic.Int64
}

// count records one finished request under its outcome string.
func (m *metrics) count(outcome string) {
	switch outcome {
	case outcomeOK:
		m.ok.Add(1)
	case outcomeShed:
		m.shed.Add(1)
	case outcomeTenantBusy:
		m.tenantBusy.Add(1)
	case outcomeDraining:
		m.draining.Add(1)
	case outcomeBadRequest:
		m.badRequest.Add(1)
	case outcomeTooLarge:
		m.tooLarge.Add(1)
	case outcomeVetRejected:
		m.vetRejected.Add(1)
	case outcomeCompileError:
		m.compileError.Add(1)
	case outcomeQuota:
		m.quota.Add(1)
	case outcomeDeadline:
		m.deadline.Add(1)
	case outcomeRuntimeFault:
		m.runtimeFault.Add(1)
	case outcomePanic:
		m.panics.Add(1)
	}
}

// observe folds one run's statistics into the cumulative counters,
// including the Figure 13 per-stage cycle attribution.
func (m *metrics) observe(st *machine.Stats) {
	if st == nil {
		return
	}
	m.steps.Add(st.Steps)
	m.cycles.Add(st.Cycles)
	for i := range st.Stages {
		m.stageCycles[i].Add(st.Stages[i].Cycles)
	}
}

// MetricsSnapshot is the JSON document served by /metrics.
type MetricsSnapshot struct {
	QueueDepth int64 `json:"queue_depth"` // requests waiting for a run slot
	Running    int64 `json:"running"`     // requests holding a run slot
	Draining   bool  `json:"draining"`

	Admitted int64            `json:"admitted"`
	Outcomes map[string]int64 `json:"outcomes"`

	Steps       int64            `json:"steps"`
	Cycles      int64            `json:"cycles"`
	StageCycles map[string]int64 `json:"stage_cycles"`

	Pool  PoolCounters  `json:"pool"`
	Cache CacheCounters `json:"cache"`
}

// Metrics returns a point-in-time snapshot of the server's counters.
func (s *Server) Metrics() MetricsSnapshot {
	m := &s.metrics
	snap := MetricsSnapshot{
		QueueDepth: s.queued.Load(),
		Running:    s.running.Load(),
		Draining:   s.drainFlag.Load(),
		Admitted:   m.admitted.Load(),
		Outcomes: map[string]int64{
			outcomeOK:           m.ok.Load(),
			outcomeShed:         m.shed.Load(),
			outcomeTenantBusy:   m.tenantBusy.Load(),
			outcomeDraining:     m.draining.Load(),
			outcomeBadRequest:   m.badRequest.Load(),
			outcomeTooLarge:     m.tooLarge.Load(),
			outcomeVetRejected:  m.vetRejected.Load(),
			outcomeCompileError: m.compileError.Load(),
			outcomeQuota:        m.quota.Load(),
			outcomeDeadline:     m.deadline.Load(),
			outcomeRuntimeFault: m.runtimeFault.Load(),
			outcomePanic:        m.panics.Load(),
		},
		Steps:       m.steps.Load(),
		Cycles:      m.cycles.Load(),
		StageCycles: make(map[string]int64, machine.NumStages),
		Pool:        s.pool.Counters(),
		Cache:       s.cache.Counters(),
	}
	for i := range m.stageCycles {
		snap.StageCycles[machine.Stage(i).String()] = m.stageCycles[i].Load()
	}
	return snap
}
