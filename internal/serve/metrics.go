package serve

import (
	"sync/atomic"

	"tcfpram/internal/analysis"
	"tcfpram/internal/machine"
)

// metrics holds the server's atomic counters. Outcome counters are indexed
// by the same outcome strings the /run responses carry, so a client and the
// /metrics endpoint always agree on terminology.
type metrics struct {
	admitted atomic.Int64 // requests that acquired a run slot

	ok           atomic.Int64
	shed         atomic.Int64 // load-shed at the admission queue
	tenantBusy   atomic.Int64 // per-tenant concurrency cap
	draining     atomic.Int64 // rejected because the server is draining
	badRequest   atomic.Int64
	tooLarge     atomic.Int64
	vetRejected  atomic.Int64
	compileError atomic.Int64
	quota        atomic.Int64 // MaxSteps / MaxThickness / shared-memory quota
	deadline     atomic.Int64 // wall-clock deadline or client cancel
	runtimeFault atomic.Int64 // deadlock, discipline violation, machine fault
	panics       atomic.Int64 // isolated request panics

	duplicate      atomic.Int64 // request id already in flight (recovery mode)
	internal       atomic.Int64 // server-side failures (journal unavailable, ...)
	predictedQuota atomic.Int64 // rejected at admission by the cost predictor

	// Predicted-vs-actual accounting for the cost analyzer: runs that
	// carried an exact prediction, how many of those matched the measured
	// cycles exactly, and the absolute/total cycle sums behind the mean
	// relative error.
	predictedRuns     atomic.Int64
	predictedExact    atomic.Int64
	predictedCycleErr atomic.Int64 // sum |predicted - measured| cycles
	predictedCycles   atomic.Int64 // sum measured cycles of predicted runs

	steps       atomic.Int64 // machine steps executed, all runs
	cycles      atomic.Int64 // simulated cycles, all runs
	stageCycles [machine.NumStages]atomic.Int64

	// Run-time accounting behind the derived Retry-After hint.
	runNanos     atomic.Int64 // summed wall clock of measured runs
	runsMeasured atomic.Int64

	// Crash-recovery counters (recovery mode only).
	checkpoints atomic.Int64 // machine snapshots written mid-run
	restores    atomic.Int64 // machines restored from a checkpoint file
	recovered   atomic.Int64 // journal-replayed runs finished at startup
	replayed    atomic.Int64 // idempotent answers served from the memo
}

// count records one finished request under its outcome string.
func (m *metrics) count(outcome string) {
	switch outcome {
	case outcomeOK:
		m.ok.Add(1)
	case outcomeShed:
		m.shed.Add(1)
	case outcomeTenantBusy:
		m.tenantBusy.Add(1)
	case outcomeDraining:
		m.draining.Add(1)
	case outcomeBadRequest:
		m.badRequest.Add(1)
	case outcomeTooLarge:
		m.tooLarge.Add(1)
	case outcomeVetRejected:
		m.vetRejected.Add(1)
	case outcomeCompileError:
		m.compileError.Add(1)
	case outcomeQuota:
		m.quota.Add(1)
	case outcomeDeadline:
		m.deadline.Add(1)
	case outcomeRuntimeFault:
		m.runtimeFault.Add(1)
	case outcomePanic:
		m.panics.Add(1)
	case outcomeDuplicate:
		m.duplicate.Add(1)
	case outcomeInternal:
		m.internal.Add(1)
	case outcomePredictedQuota:
		m.predictedQuota.Add(1)
	}
}

// observePrediction folds one finished run's predicted-vs-measured cycle
// error into the counters. Only clean runs with an exact (resolved, no
// predicted abnormal stop) prediction count: an aborted run measures a
// prefix of the program, which the prediction never claimed to match.
func (m *metrics) observePrediction(rep *analysis.CostReport, st *machine.Stats, runErr error) {
	if rep == nil || st == nil || runErr != nil || !rep.Resolved || rep.Note != "" {
		return
	}
	d := rep.Cycles.Min - st.Cycles
	if d < 0 {
		d = -d
	}
	m.predictedRuns.Add(1)
	if d == 0 {
		m.predictedExact.Add(1)
	}
	m.predictedCycleErr.Add(d)
	m.predictedCycles.Add(st.Cycles)
}

// observe folds one run's statistics into the cumulative counters,
// including the Figure 13 per-stage cycle attribution.
func (m *metrics) observe(st *machine.Stats) {
	if st == nil {
		return
	}
	m.steps.Add(st.Steps)
	m.cycles.Add(st.Cycles)
	for i := range st.Stages {
		m.stageCycles[i].Add(st.Stages[i].Cycles)
	}
}

// MetricsSnapshot is the JSON document served by /metrics.
type MetricsSnapshot struct {
	QueueDepth int64 `json:"queue_depth"` // requests waiting for a run slot
	Running    int64 `json:"running"`     // requests holding a run slot
	Draining   bool  `json:"draining"`

	Admitted int64            `json:"admitted"`
	Outcomes map[string]int64 `json:"outcomes"`

	Steps       int64            `json:"steps"`
	Cycles      int64            `json:"cycles"`
	StageCycles map[string]int64 `json:"stage_cycles"`

	Pool       PoolCounters       `json:"pool"`
	Cache      CacheCounters      `json:"cache"`
	Recovery   RecoveryCounters   `json:"recovery"`
	Prediction PredictionCounters `json:"prediction"`
}

// PredictionCounters is the cost-predictor section of /metrics: how often
// predictive admission rejected a job, and how the analyzer's exact
// predictions tracked the measured runs.
type PredictionCounters struct {
	// RejectedOverQuota counts jobs rejected at admission because their
	// predicted cost provably exceeded the tenant quota.
	RejectedOverQuota int64 `json:"rejected_over_quota"`
	// PredictedRuns counts clean runs that carried an exact prediction;
	// ExactRuns of those matched the measured cycle count exactly.
	PredictedRuns int64 `json:"predicted_runs"`
	ExactRuns     int64 `json:"exact_runs"`
	// CycleErrorSum is Σ|predicted − measured| cycles over PredictedRuns;
	// MeasuredCycleSum is the matching Σ measured cycles, so
	// CycleErrorSum/MeasuredCycleSum is the mean relative error.
	CycleErrorSum    int64 `json:"cycle_error_sum"`
	MeasuredCycleSum int64 `json:"measured_cycle_sum"`
}

// RecoveryCounters is the crash-recovery section of /metrics.
type RecoveryCounters struct {
	// CheckpointsWritten counts mid-run machine snapshots.
	CheckpointsWritten int64 `json:"checkpoints_written"`
	// Restores counts machines rebuilt from a checkpoint file.
	Restores int64 `json:"restores"`
	// RecoveredRuns counts journal-replayed runs finished at startup.
	RecoveredRuns int64 `json:"recovered_runs"`
	// ReplayedResponses counts idempotent answers served for request ids
	// that had already finished.
	ReplayedResponses int64 `json:"replayed_responses"`
}

// Metrics returns a point-in-time snapshot of the server's counters.
func (s *Server) Metrics() MetricsSnapshot {
	m := &s.metrics
	snap := MetricsSnapshot{
		QueueDepth: s.queued.Load(),
		Running:    s.running.Load(),
		Draining:   s.drainFlag.Load(),
		Admitted:   m.admitted.Load(),
		Outcomes: map[string]int64{
			outcomeOK:             m.ok.Load(),
			outcomeShed:           m.shed.Load(),
			outcomeTenantBusy:     m.tenantBusy.Load(),
			outcomeDraining:       m.draining.Load(),
			outcomeBadRequest:     m.badRequest.Load(),
			outcomeTooLarge:       m.tooLarge.Load(),
			outcomeVetRejected:    m.vetRejected.Load(),
			outcomeCompileError:   m.compileError.Load(),
			outcomeQuota:          m.quota.Load(),
			outcomeDeadline:       m.deadline.Load(),
			outcomeRuntimeFault:   m.runtimeFault.Load(),
			outcomePanic:          m.panics.Load(),
			outcomeDuplicate:      m.duplicate.Load(),
			outcomeInternal:       m.internal.Load(),
			outcomePredictedQuota: m.predictedQuota.Load(),
		},
		Steps:       m.steps.Load(),
		Cycles:      m.cycles.Load(),
		StageCycles: make(map[string]int64, machine.NumStages),
		Pool:        s.pool.Counters(),
		Cache:       s.cache.Counters(),
		Recovery: RecoveryCounters{
			CheckpointsWritten: m.checkpoints.Load(),
			Restores:           m.restores.Load(),
			RecoveredRuns:      m.recovered.Load(),
			ReplayedResponses:  m.replayed.Load(),
		},
		Prediction: PredictionCounters{
			RejectedOverQuota: m.predictedQuota.Load(),
			PredictedRuns:     m.predictedRuns.Load(),
			ExactRuns:         m.predictedExact.Load(),
			CycleErrorSum:     m.predictedCycleErr.Load(),
			MeasuredCycleSum:  m.predictedCycles.Load(),
		},
	}
	for i := range m.stageCycles {
		snap.StageCycles[machine.Stage(i).String()] = m.stageCycles[i].Load()
	}
	return snap
}
